# Empty dependencies file for siphoc_tests.
# This may be replaced when dependencies are built.
