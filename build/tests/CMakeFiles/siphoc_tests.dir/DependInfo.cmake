
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aodv.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_aodv.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_aodv.cpp.o.d"
  "/root/repo/tests/test_auth.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_auth.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_auth.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_logging.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_logging.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_logging.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_olsr.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_olsr.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_olsr.cpp.o.d"
  "/root/repo/tests/test_outbound_proxy.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_outbound_proxy.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_outbound_proxy.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_proxy.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_proxy.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_proxy.cpp.o.d"
  "/root/repo/tests/test_reinvite.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_reinvite.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_reinvite.cpp.o.d"
  "/root/repo/tests/test_resilience.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_resilience.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_resilience.cpp.o.d"
  "/root/repo/tests/test_routing_codec.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_routing_codec.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_routing_codec.cpp.o.d"
  "/root/repo/tests/test_rtcp.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_rtcp.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_rtcp.cpp.o.d"
  "/root/repo/tests/test_rtp.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_rtp.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_rtp.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_sip_message.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_sip_message.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_sip_message.cpp.o.d"
  "/root/repo/tests/test_slp.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_slp.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_slp.cpp.o.d"
  "/root/repo/tests/test_softphone.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_softphone.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_softphone.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_transactions.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_transactions.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_transactions.cpp.o.d"
  "/root/repo/tests/test_tunnel.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_tunnel.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_tunnel.cpp.o.d"
  "/root/repo/tests/test_user_agent.cpp" "tests/CMakeFiles/siphoc_tests.dir/test_user_agent.cpp.o" "gcc" "tests/CMakeFiles/siphoc_tests.dir/test_user_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/siphoc_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_voip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_sip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_slp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
