file(REMOVE_RECURSE
  "CMakeFiles/siphoc_core.dir/siphoc/connection_provider.cpp.o"
  "CMakeFiles/siphoc_core.dir/siphoc/connection_provider.cpp.o.d"
  "CMakeFiles/siphoc_core.dir/siphoc/gateway_provider.cpp.o"
  "CMakeFiles/siphoc_core.dir/siphoc/gateway_provider.cpp.o.d"
  "CMakeFiles/siphoc_core.dir/siphoc/node_stack.cpp.o"
  "CMakeFiles/siphoc_core.dir/siphoc/node_stack.cpp.o.d"
  "CMakeFiles/siphoc_core.dir/siphoc/proxy.cpp.o"
  "CMakeFiles/siphoc_core.dir/siphoc/proxy.cpp.o.d"
  "CMakeFiles/siphoc_core.dir/siphoc/tunnel.cpp.o"
  "CMakeFiles/siphoc_core.dir/siphoc/tunnel.cpp.o.d"
  "libsiphoc_core.a"
  "libsiphoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siphoc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
