# Empty dependencies file for siphoc_core.
# This may be replaced when dependencies are built.
