file(REMOVE_RECURSE
  "libsiphoc_core.a"
)
