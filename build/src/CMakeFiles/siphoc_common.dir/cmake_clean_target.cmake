file(REMOVE_RECURSE
  "libsiphoc_common.a"
)
