# Empty compiler generated dependencies file for siphoc_common.
# This may be replaced when dependencies are built.
