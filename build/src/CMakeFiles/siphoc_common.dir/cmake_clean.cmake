file(REMOVE_RECURSE
  "CMakeFiles/siphoc_common.dir/common/bytes.cpp.o"
  "CMakeFiles/siphoc_common.dir/common/bytes.cpp.o.d"
  "CMakeFiles/siphoc_common.dir/common/logging.cpp.o"
  "CMakeFiles/siphoc_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/siphoc_common.dir/common/md5.cpp.o"
  "CMakeFiles/siphoc_common.dir/common/md5.cpp.o.d"
  "CMakeFiles/siphoc_common.dir/common/random.cpp.o"
  "CMakeFiles/siphoc_common.dir/common/random.cpp.o.d"
  "CMakeFiles/siphoc_common.dir/common/strings.cpp.o"
  "CMakeFiles/siphoc_common.dir/common/strings.cpp.o.d"
  "libsiphoc_common.a"
  "libsiphoc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siphoc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
