file(REMOVE_RECURSE
  "CMakeFiles/siphoc_rtp.dir/rtp/jitter_buffer.cpp.o"
  "CMakeFiles/siphoc_rtp.dir/rtp/jitter_buffer.cpp.o.d"
  "CMakeFiles/siphoc_rtp.dir/rtp/quality.cpp.o"
  "CMakeFiles/siphoc_rtp.dir/rtp/quality.cpp.o.d"
  "CMakeFiles/siphoc_rtp.dir/rtp/rtcp.cpp.o"
  "CMakeFiles/siphoc_rtp.dir/rtp/rtcp.cpp.o.d"
  "CMakeFiles/siphoc_rtp.dir/rtp/rtp.cpp.o"
  "CMakeFiles/siphoc_rtp.dir/rtp/rtp.cpp.o.d"
  "CMakeFiles/siphoc_rtp.dir/rtp/session.cpp.o"
  "CMakeFiles/siphoc_rtp.dir/rtp/session.cpp.o.d"
  "CMakeFiles/siphoc_rtp.dir/rtp/voice_source.cpp.o"
  "CMakeFiles/siphoc_rtp.dir/rtp/voice_source.cpp.o.d"
  "libsiphoc_rtp.a"
  "libsiphoc_rtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siphoc_rtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
