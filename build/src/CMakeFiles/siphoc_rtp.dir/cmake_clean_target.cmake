file(REMOVE_RECURSE
  "libsiphoc_rtp.a"
)
