# Empty compiler generated dependencies file for siphoc_rtp.
# This may be replaced when dependencies are built.
