
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtp/jitter_buffer.cpp" "src/CMakeFiles/siphoc_rtp.dir/rtp/jitter_buffer.cpp.o" "gcc" "src/CMakeFiles/siphoc_rtp.dir/rtp/jitter_buffer.cpp.o.d"
  "/root/repo/src/rtp/quality.cpp" "src/CMakeFiles/siphoc_rtp.dir/rtp/quality.cpp.o" "gcc" "src/CMakeFiles/siphoc_rtp.dir/rtp/quality.cpp.o.d"
  "/root/repo/src/rtp/rtcp.cpp" "src/CMakeFiles/siphoc_rtp.dir/rtp/rtcp.cpp.o" "gcc" "src/CMakeFiles/siphoc_rtp.dir/rtp/rtcp.cpp.o.d"
  "/root/repo/src/rtp/rtp.cpp" "src/CMakeFiles/siphoc_rtp.dir/rtp/rtp.cpp.o" "gcc" "src/CMakeFiles/siphoc_rtp.dir/rtp/rtp.cpp.o.d"
  "/root/repo/src/rtp/session.cpp" "src/CMakeFiles/siphoc_rtp.dir/rtp/session.cpp.o" "gcc" "src/CMakeFiles/siphoc_rtp.dir/rtp/session.cpp.o.d"
  "/root/repo/src/rtp/voice_source.cpp" "src/CMakeFiles/siphoc_rtp.dir/rtp/voice_source.cpp.o" "gcc" "src/CMakeFiles/siphoc_rtp.dir/rtp/voice_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/siphoc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
