# Empty compiler generated dependencies file for siphoc_scenario.
# This may be replaced when dependencies are built.
