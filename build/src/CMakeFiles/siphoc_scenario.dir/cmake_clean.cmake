file(REMOVE_RECURSE
  "CMakeFiles/siphoc_scenario.dir/scenario/scenario.cpp.o"
  "CMakeFiles/siphoc_scenario.dir/scenario/scenario.cpp.o.d"
  "CMakeFiles/siphoc_scenario.dir/scenario/trace.cpp.o"
  "CMakeFiles/siphoc_scenario.dir/scenario/trace.cpp.o.d"
  "libsiphoc_scenario.a"
  "libsiphoc_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siphoc_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
