file(REMOVE_RECURSE
  "libsiphoc_scenario.a"
)
