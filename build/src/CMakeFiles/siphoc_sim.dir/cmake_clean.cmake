file(REMOVE_RECURSE
  "CMakeFiles/siphoc_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/siphoc_sim.dir/sim/simulator.cpp.o.d"
  "libsiphoc_sim.a"
  "libsiphoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siphoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
