file(REMOVE_RECURSE
  "libsiphoc_sim.a"
)
