# Empty dependencies file for siphoc_sim.
# This may be replaced when dependencies are built.
