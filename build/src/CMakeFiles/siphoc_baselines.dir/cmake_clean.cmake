file(REMOVE_RECURSE
  "CMakeFiles/siphoc_baselines.dir/baselines/flooding_sip.cpp.o"
  "CMakeFiles/siphoc_baselines.dir/baselines/flooding_sip.cpp.o.d"
  "CMakeFiles/siphoc_baselines.dir/baselines/pico_sip.cpp.o"
  "CMakeFiles/siphoc_baselines.dir/baselines/pico_sip.cpp.o.d"
  "CMakeFiles/siphoc_baselines.dir/baselines/push_gateway.cpp.o"
  "CMakeFiles/siphoc_baselines.dir/baselines/push_gateway.cpp.o.d"
  "libsiphoc_baselines.a"
  "libsiphoc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siphoc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
