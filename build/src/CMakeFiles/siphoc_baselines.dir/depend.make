# Empty dependencies file for siphoc_baselines.
# This may be replaced when dependencies are built.
