file(REMOVE_RECURSE
  "libsiphoc_baselines.a"
)
