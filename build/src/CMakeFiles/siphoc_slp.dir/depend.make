# Empty dependencies file for siphoc_slp.
# This may be replaced when dependencies are built.
