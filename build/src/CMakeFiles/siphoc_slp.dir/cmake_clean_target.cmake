file(REMOVE_RECURSE
  "libsiphoc_slp.a"
)
