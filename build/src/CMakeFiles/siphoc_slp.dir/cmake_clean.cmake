file(REMOVE_RECURSE
  "CMakeFiles/siphoc_slp.dir/slp/manet_slp.cpp.o"
  "CMakeFiles/siphoc_slp.dir/slp/manet_slp.cpp.o.d"
  "CMakeFiles/siphoc_slp.dir/slp/multicast_slp.cpp.o"
  "CMakeFiles/siphoc_slp.dir/slp/multicast_slp.cpp.o.d"
  "CMakeFiles/siphoc_slp.dir/slp/service.cpp.o"
  "CMakeFiles/siphoc_slp.dir/slp/service.cpp.o.d"
  "libsiphoc_slp.a"
  "libsiphoc_slp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siphoc_slp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
