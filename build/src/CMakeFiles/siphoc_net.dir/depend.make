# Empty dependencies file for siphoc_net.
# This may be replaced when dependencies are built.
