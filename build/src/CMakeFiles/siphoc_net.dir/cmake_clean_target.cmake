file(REMOVE_RECURSE
  "libsiphoc_net.a"
)
