file(REMOVE_RECURSE
  "CMakeFiles/siphoc_net.dir/net/address.cpp.o"
  "CMakeFiles/siphoc_net.dir/net/address.cpp.o.d"
  "CMakeFiles/siphoc_net.dir/net/host.cpp.o"
  "CMakeFiles/siphoc_net.dir/net/host.cpp.o.d"
  "CMakeFiles/siphoc_net.dir/net/internet.cpp.o"
  "CMakeFiles/siphoc_net.dir/net/internet.cpp.o.d"
  "CMakeFiles/siphoc_net.dir/net/medium.cpp.o"
  "CMakeFiles/siphoc_net.dir/net/medium.cpp.o.d"
  "CMakeFiles/siphoc_net.dir/net/mobility.cpp.o"
  "CMakeFiles/siphoc_net.dir/net/mobility.cpp.o.d"
  "CMakeFiles/siphoc_net.dir/net/packet.cpp.o"
  "CMakeFiles/siphoc_net.dir/net/packet.cpp.o.d"
  "libsiphoc_net.a"
  "libsiphoc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siphoc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
