
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cpp" "src/CMakeFiles/siphoc_net.dir/net/address.cpp.o" "gcc" "src/CMakeFiles/siphoc_net.dir/net/address.cpp.o.d"
  "/root/repo/src/net/host.cpp" "src/CMakeFiles/siphoc_net.dir/net/host.cpp.o" "gcc" "src/CMakeFiles/siphoc_net.dir/net/host.cpp.o.d"
  "/root/repo/src/net/internet.cpp" "src/CMakeFiles/siphoc_net.dir/net/internet.cpp.o" "gcc" "src/CMakeFiles/siphoc_net.dir/net/internet.cpp.o.d"
  "/root/repo/src/net/medium.cpp" "src/CMakeFiles/siphoc_net.dir/net/medium.cpp.o" "gcc" "src/CMakeFiles/siphoc_net.dir/net/medium.cpp.o.d"
  "/root/repo/src/net/mobility.cpp" "src/CMakeFiles/siphoc_net.dir/net/mobility.cpp.o" "gcc" "src/CMakeFiles/siphoc_net.dir/net/mobility.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/siphoc_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/siphoc_net.dir/net/packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/siphoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
