
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/aodv.cpp" "src/CMakeFiles/siphoc_routing.dir/routing/aodv.cpp.o" "gcc" "src/CMakeFiles/siphoc_routing.dir/routing/aodv.cpp.o.d"
  "/root/repo/src/routing/aodv_codec.cpp" "src/CMakeFiles/siphoc_routing.dir/routing/aodv_codec.cpp.o" "gcc" "src/CMakeFiles/siphoc_routing.dir/routing/aodv_codec.cpp.o.d"
  "/root/repo/src/routing/extension.cpp" "src/CMakeFiles/siphoc_routing.dir/routing/extension.cpp.o" "gcc" "src/CMakeFiles/siphoc_routing.dir/routing/extension.cpp.o.d"
  "/root/repo/src/routing/olsr.cpp" "src/CMakeFiles/siphoc_routing.dir/routing/olsr.cpp.o" "gcc" "src/CMakeFiles/siphoc_routing.dir/routing/olsr.cpp.o.d"
  "/root/repo/src/routing/olsr_codec.cpp" "src/CMakeFiles/siphoc_routing.dir/routing/olsr_codec.cpp.o" "gcc" "src/CMakeFiles/siphoc_routing.dir/routing/olsr_codec.cpp.o.d"
  "/root/repo/src/routing/routing_table.cpp" "src/CMakeFiles/siphoc_routing.dir/routing/routing_table.cpp.o" "gcc" "src/CMakeFiles/siphoc_routing.dir/routing/routing_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/siphoc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
