# Empty compiler generated dependencies file for siphoc_routing.
# This may be replaced when dependencies are built.
