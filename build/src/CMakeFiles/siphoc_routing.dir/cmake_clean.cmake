file(REMOVE_RECURSE
  "CMakeFiles/siphoc_routing.dir/routing/aodv.cpp.o"
  "CMakeFiles/siphoc_routing.dir/routing/aodv.cpp.o.d"
  "CMakeFiles/siphoc_routing.dir/routing/aodv_codec.cpp.o"
  "CMakeFiles/siphoc_routing.dir/routing/aodv_codec.cpp.o.d"
  "CMakeFiles/siphoc_routing.dir/routing/extension.cpp.o"
  "CMakeFiles/siphoc_routing.dir/routing/extension.cpp.o.d"
  "CMakeFiles/siphoc_routing.dir/routing/olsr.cpp.o"
  "CMakeFiles/siphoc_routing.dir/routing/olsr.cpp.o.d"
  "CMakeFiles/siphoc_routing.dir/routing/olsr_codec.cpp.o"
  "CMakeFiles/siphoc_routing.dir/routing/olsr_codec.cpp.o.d"
  "CMakeFiles/siphoc_routing.dir/routing/routing_table.cpp.o"
  "CMakeFiles/siphoc_routing.dir/routing/routing_table.cpp.o.d"
  "libsiphoc_routing.a"
  "libsiphoc_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siphoc_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
