file(REMOVE_RECURSE
  "libsiphoc_routing.a"
)
