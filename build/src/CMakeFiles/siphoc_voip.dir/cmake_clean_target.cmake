file(REMOVE_RECURSE
  "libsiphoc_voip.a"
)
