file(REMOVE_RECURSE
  "CMakeFiles/siphoc_voip.dir/voip/softphone.cpp.o"
  "CMakeFiles/siphoc_voip.dir/voip/softphone.cpp.o.d"
  "libsiphoc_voip.a"
  "libsiphoc_voip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siphoc_voip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
