# Empty compiler generated dependencies file for siphoc_voip.
# This may be replaced when dependencies are built.
