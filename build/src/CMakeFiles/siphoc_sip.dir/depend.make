# Empty dependencies file for siphoc_sip.
# This may be replaced when dependencies are built.
