file(REMOVE_RECURSE
  "CMakeFiles/siphoc_sip.dir/sip/auth.cpp.o"
  "CMakeFiles/siphoc_sip.dir/sip/auth.cpp.o.d"
  "CMakeFiles/siphoc_sip.dir/sip/dialog.cpp.o"
  "CMakeFiles/siphoc_sip.dir/sip/dialog.cpp.o.d"
  "CMakeFiles/siphoc_sip.dir/sip/headers.cpp.o"
  "CMakeFiles/siphoc_sip.dir/sip/headers.cpp.o.d"
  "CMakeFiles/siphoc_sip.dir/sip/message.cpp.o"
  "CMakeFiles/siphoc_sip.dir/sip/message.cpp.o.d"
  "CMakeFiles/siphoc_sip.dir/sip/outbound_proxy.cpp.o"
  "CMakeFiles/siphoc_sip.dir/sip/outbound_proxy.cpp.o.d"
  "CMakeFiles/siphoc_sip.dir/sip/registrar.cpp.o"
  "CMakeFiles/siphoc_sip.dir/sip/registrar.cpp.o.d"
  "CMakeFiles/siphoc_sip.dir/sip/sdp.cpp.o"
  "CMakeFiles/siphoc_sip.dir/sip/sdp.cpp.o.d"
  "CMakeFiles/siphoc_sip.dir/sip/transaction.cpp.o"
  "CMakeFiles/siphoc_sip.dir/sip/transaction.cpp.o.d"
  "CMakeFiles/siphoc_sip.dir/sip/transport.cpp.o"
  "CMakeFiles/siphoc_sip.dir/sip/transport.cpp.o.d"
  "CMakeFiles/siphoc_sip.dir/sip/uri.cpp.o"
  "CMakeFiles/siphoc_sip.dir/sip/uri.cpp.o.d"
  "CMakeFiles/siphoc_sip.dir/sip/user_agent.cpp.o"
  "CMakeFiles/siphoc_sip.dir/sip/user_agent.cpp.o.d"
  "libsiphoc_sip.a"
  "libsiphoc_sip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siphoc_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
