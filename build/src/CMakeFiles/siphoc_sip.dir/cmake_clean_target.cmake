file(REMOVE_RECURSE
  "libsiphoc_sip.a"
)
