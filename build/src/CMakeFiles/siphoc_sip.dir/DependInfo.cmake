
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sip/auth.cpp" "src/CMakeFiles/siphoc_sip.dir/sip/auth.cpp.o" "gcc" "src/CMakeFiles/siphoc_sip.dir/sip/auth.cpp.o.d"
  "/root/repo/src/sip/dialog.cpp" "src/CMakeFiles/siphoc_sip.dir/sip/dialog.cpp.o" "gcc" "src/CMakeFiles/siphoc_sip.dir/sip/dialog.cpp.o.d"
  "/root/repo/src/sip/headers.cpp" "src/CMakeFiles/siphoc_sip.dir/sip/headers.cpp.o" "gcc" "src/CMakeFiles/siphoc_sip.dir/sip/headers.cpp.o.d"
  "/root/repo/src/sip/message.cpp" "src/CMakeFiles/siphoc_sip.dir/sip/message.cpp.o" "gcc" "src/CMakeFiles/siphoc_sip.dir/sip/message.cpp.o.d"
  "/root/repo/src/sip/outbound_proxy.cpp" "src/CMakeFiles/siphoc_sip.dir/sip/outbound_proxy.cpp.o" "gcc" "src/CMakeFiles/siphoc_sip.dir/sip/outbound_proxy.cpp.o.d"
  "/root/repo/src/sip/registrar.cpp" "src/CMakeFiles/siphoc_sip.dir/sip/registrar.cpp.o" "gcc" "src/CMakeFiles/siphoc_sip.dir/sip/registrar.cpp.o.d"
  "/root/repo/src/sip/sdp.cpp" "src/CMakeFiles/siphoc_sip.dir/sip/sdp.cpp.o" "gcc" "src/CMakeFiles/siphoc_sip.dir/sip/sdp.cpp.o.d"
  "/root/repo/src/sip/transaction.cpp" "src/CMakeFiles/siphoc_sip.dir/sip/transaction.cpp.o" "gcc" "src/CMakeFiles/siphoc_sip.dir/sip/transaction.cpp.o.d"
  "/root/repo/src/sip/transport.cpp" "src/CMakeFiles/siphoc_sip.dir/sip/transport.cpp.o" "gcc" "src/CMakeFiles/siphoc_sip.dir/sip/transport.cpp.o.d"
  "/root/repo/src/sip/uri.cpp" "src/CMakeFiles/siphoc_sip.dir/sip/uri.cpp.o" "gcc" "src/CMakeFiles/siphoc_sip.dir/sip/uri.cpp.o.d"
  "/root/repo/src/sip/user_agent.cpp" "src/CMakeFiles/siphoc_sip.dir/sip/user_agent.cpp.o" "gcc" "src/CMakeFiles/siphoc_sip.dir/sip/user_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/siphoc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
