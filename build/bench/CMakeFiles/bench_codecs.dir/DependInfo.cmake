
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_codecs.cpp" "bench/CMakeFiles/bench_codecs.dir/bench_codecs.cpp.o" "gcc" "bench/CMakeFiles/bench_codecs.dir/bench_codecs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/siphoc_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_voip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_sip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_slp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/siphoc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
