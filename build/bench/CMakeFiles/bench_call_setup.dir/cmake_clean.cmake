file(REMOVE_RECURSE
  "CMakeFiles/bench_call_setup.dir/bench_call_setup.cpp.o"
  "CMakeFiles/bench_call_setup.dir/bench_call_setup.cpp.o.d"
  "bench_call_setup"
  "bench_call_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_call_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
