# Empty compiler generated dependencies file for bench_call_setup.
# This may be replaced when dependencies are built.
