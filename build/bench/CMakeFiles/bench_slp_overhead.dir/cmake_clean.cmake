file(REMOVE_RECURSE
  "CMakeFiles/bench_slp_overhead.dir/bench_slp_overhead.cpp.o"
  "CMakeFiles/bench_slp_overhead.dir/bench_slp_overhead.cpp.o.d"
  "bench_slp_overhead"
  "bench_slp_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slp_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
