# Empty compiler generated dependencies file for bench_slp_overhead.
# This may be replaced when dependencies are built.
