file(REMOVE_RECURSE
  "CMakeFiles/bench_voice.dir/bench_voice.cpp.o"
  "CMakeFiles/bench_voice.dir/bench_voice.cpp.o.d"
  "bench_voice"
  "bench_voice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_voice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
