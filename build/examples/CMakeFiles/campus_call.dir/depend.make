# Empty dependencies file for campus_call.
# This may be replaced when dependencies are built.
