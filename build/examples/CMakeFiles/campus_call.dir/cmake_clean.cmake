file(REMOVE_RECURSE
  "CMakeFiles/campus_call.dir/campus_call.cpp.o"
  "CMakeFiles/campus_call.dir/campus_call.cpp.o.d"
  "campus_call"
  "campus_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
