file(REMOVE_RECURSE
  "CMakeFiles/field_chat.dir/field_chat.cpp.o"
  "CMakeFiles/field_chat.dir/field_chat.cpp.o.d"
  "field_chat"
  "field_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
