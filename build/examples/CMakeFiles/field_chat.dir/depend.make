# Empty dependencies file for field_chat.
# This may be replaced when dependencies are built.
