# Empty compiler generated dependencies file for internet_call.
# This may be replaced when dependencies are built.
