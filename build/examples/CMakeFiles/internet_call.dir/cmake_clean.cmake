file(REMOVE_RECURSE
  "CMakeFiles/internet_call.dir/internet_call.cpp.o"
  "CMakeFiles/internet_call.dir/internet_call.cpp.o.d"
  "internet_call"
  "internet_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/internet_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
