// Experiment E4: Internet attachment -- gateway discovery, tunnel setup,
// and failover.
//
// Measures, per hop distance from the gateway:
//   (a) time from "gateway uplink appears" to "node is attached to the
//       Internet" for SIPHoc's Connection Provider (SLP discovery + tunnel)
//       and for the fixed-gateway baseline [8] (endpoint provisioned, so
//       discovery is free -- the best case for the baseline);
//   (b) failover: the original gateway dies while a second one exists;
//       SIPHoc re-discovers, the fixed scheme never recovers.
#include "baselines/push_gateway.hpp"
#include "bench_table.hpp"
#include "routing/aodv.hpp"
#include "siphoc/connection_provider.hpp"
#include "siphoc/gateway_provider.hpp"
#include "slp/manet_slp.hpp"

using namespace siphoc;

namespace {

struct Net {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::RadioMedium> medium;
  std::unique_ptr<net::Internet> internet;
  std::vector<std::unique_ptr<net::Host>> hosts;
  std::vector<std::unique_ptr<routing::Aodv>> daemons;
  std::vector<std::unique_ptr<slp::ManetSlp>> dirs;

  explicit Net(std::size_t n, std::uint64_t seed) {
    sim = std::make_unique<sim::Simulator>(seed);
    medium = std::make_unique<net::RadioMedium>(*sim, net::RadioConfig{});
    internet = std::make_unique<net::Internet>(*sim, milliseconds(20));
    for (std::size_t i = 0; i < n; ++i) {
      hosts.push_back(std::make_unique<net::Host>(
          *sim, static_cast<net::NodeId>(i), "n" + std::to_string(i)));
      hosts.back()->attach_radio(
          *medium,
          net::Address{net::kManetPrefix.value() +
                       static_cast<std::uint32_t>(i) + 1},
          std::make_shared<net::StaticMobility>(
              net::Position{100.0 * static_cast<double>(i), 0}));
      daemons.push_back(std::make_unique<routing::Aodv>(*hosts.back()));
      dirs.push_back(std::make_unique<slp::ManetSlp>(
          *hosts.back(), *daemons.back(), slp::ManetSlpConfig::for_aodv()));
      daemons.back()->start();
    }
  }
};

/// Time from uplink-up to attachment at the node `hops` away.
double attach_time_siphoc(int hops, std::uint64_t seed) {
  Net net(static_cast<std::size_t>(hops) + 1, seed);
  GatewayProvider gateway(*net.hosts[0], *net.dirs[0]);
  ConnectionProvider client(*net.hosts.back(), *net.dirs.back());
  net.sim->run_for(seconds(2));  // routing warm-up, no gateway yet
  net.hosts[0]->attach_wired(*net.internet, net::Address(192, 0, 2, 100));
  const TimePoint t0 = net.sim->now();
  gateway.start();
  client.start();
  const TimePoint deadline = t0 + seconds(60);
  while (!client.internet_available() && net.sim->now() < deadline) {
    net.sim->run_for(milliseconds(10));
  }
  return client.internet_available() ? to_millis(net.sim->now() - t0) : -1;
}

double attach_time_fixed(int hops, std::uint64_t seed) {
  Net net(static_cast<std::size_t>(hops) + 1, seed);
  TunnelServer server(*net.hosts[0]);
  baselines::FixedGatewayConfig config;
  config.gateway = {net.hosts[0]->manet_address(), net::kTunnelPort};
  baselines::FixedGatewayClient client(*net.hosts.back(), config);
  net.sim->run_for(seconds(2));
  net.hosts[0]->attach_wired(*net.internet, net::Address(192, 0, 2, 100));
  const TimePoint t0 = net.sim->now();
  server.start();
  client.start();
  const TimePoint deadline = t0 + seconds(60);
  while (!client.internet_available() && net.sim->now() < deadline) {
    net.sim->run_for(milliseconds(10));
  }
  return client.internet_available() ? to_millis(net.sim->now() - t0) : -1;
}

/// Failover: gateway at n0 dies at t0; a second gateway exists at the far
/// end. Returns recovery time in ms, or -1 if never recovered (120 s cap).
double failover_time_siphoc(std::uint64_t seed) {
  Net net(4, seed);
  GatewayProvider gw0(*net.hosts[0], *net.dirs[0]);
  GatewayProvider gw3(*net.hosts[3], *net.dirs[3]);
  ConnectionProvider client(*net.hosts[1], *net.dirs[1]);
  net.hosts[0]->attach_wired(*net.internet, net::Address(192, 0, 2, 100));
  net.hosts[3]->attach_wired(*net.internet, net::Address(192, 0, 2, 103));
  gw0.start();
  gw3.start();
  client.start();
  net.sim->run_for(seconds(20));
  if (!client.internet_available()) return -1;

  gw0.stop();
  net.hosts[0]->detach_wired();
  net.medium->set_enabled(0, false);
  const TimePoint t0 = net.sim->now();
  // Wait for loss detection + re-attachment.
  const TimePoint deadline = t0 + seconds(120);
  bool lost = false;
  while (net.sim->now() < deadline) {
    net.sim->run_for(milliseconds(50));
    if (!client.internet_available()) lost = true;
    if (lost && client.internet_available()) {
      return to_millis(net.sim->now() - t0);
    }
  }
  return -1;
}

double failover_time_fixed(std::uint64_t seed) {
  Net net(4, seed);
  TunnelServer server0(*net.hosts[0]);
  TunnelServer server3(*net.hosts[3]);
  baselines::FixedGatewayConfig config;
  config.gateway = {net.hosts[0]->manet_address(), net::kTunnelPort};
  baselines::FixedGatewayClient client(*net.hosts[1], config);
  net.hosts[0]->attach_wired(*net.internet, net::Address(192, 0, 2, 100));
  net.hosts[3]->attach_wired(*net.internet, net::Address(192, 0, 2, 103));
  server0.start();
  server3.start();
  client.start();
  net.sim->run_for(seconds(20));
  if (!client.internet_available()) return -1;

  server0.stop();
  net.hosts[0]->detach_wired();
  net.medium->set_enabled(0, false);
  const TimePoint t0 = net.sim->now();
  const TimePoint deadline = t0 + seconds(120);
  bool lost = false;
  while (net.sim->now() < deadline) {
    net.sim->run_for(milliseconds(50));
    if (!client.internet_available()) lost = true;
    if (lost && client.internet_available()) {
      return to_millis(net.sim->now() - t0);
    }
  }
  return -1;
}

void print_cell(double ms) {
  if (ms < 0) {
    std::printf(" %14s", "never");
  } else {
    std::printf(" %12.0f ms", ms);
  }
}

}  // namespace

int main() {
  bench::print_header(
      "E4a: time to Internet attachment vs distance from gateway",
      "chain topology; uplink appears at t0; SIPHoc discovers the gateway\n"
      "via MANET SLP then opens the L2 tunnel; the fixed baseline [8] has\n"
      "the endpoint pre-provisioned (no discovery at all).");

  std::printf("%5s | %15s | %18s\n", "hops", "SIPHoc", "fixed gateway [8]");
  std::printf("------+-----------------+--------------------\n");
  for (const int hops : {1, 2, 3, 4, 5}) {
    std::printf("%5d |", hops);
    print_cell(attach_time_siphoc(hops, 600 + static_cast<std::uint64_t>(hops)));
    std::printf(" |");
    print_cell(attach_time_fixed(hops, 600 + static_cast<std::uint64_t>(hops)));
    std::printf("\n");
  }

  bench::print_header(
      "E4b: gateway failover (gateway dies, another exists 3 hops away)",
      "time from gateway death to restored Internet attachment.");
  std::printf("%22s | %18s\n", "SIPHoc", "fixed gateway [8]");
  std::printf("-----------------------+--------------------\n");
  for (int run = 0; run < 3; ++run) {
    const double s = failover_time_siphoc(700 + static_cast<std::uint64_t>(run));
    const double f = failover_time_fixed(700 + static_cast<std::uint64_t>(run));
    std::printf("      ");
    print_cell(s);
    std::printf("  |");
    print_cell(f);
    std::printf("\n");
  }
  std::printf(
      "\nshape check: SIPHoc's gateway-discovery flood doubles as the route\n"
      "establishment (the answering RREP installs the path), so it attaches\n"
      "at least as fast as the pre-provisioned baseline, whose CONNECT must\n"
      "still wait for its own AODV discovery. And only SIPHoc recovers from\n"
      "gateway loss -- the fixed-topology limitation the paper's related-\n"
      "work section calls out in [8].\n");
  bench::write_metrics_sidecar("bench_gateway");
  return 0;
}
