// Experiment E9: scalability with network size -- the paper's explicit
// next step ("As a next step, we plan to explore the scalability of the
// system as the number of nodes grows", section 4).
//
// Networks of 10..80 nodes at constant density (area scales with N), with
// N/5 registered user pairs and one call attempt per pair. Reported per
// size and routing protocol: registration success, call success, mean
// setup time, and the control-plane load (routing + piggyback) per node
// per second during the workload.
#include <cmath>

#include "bench_table.hpp"
#include "scenario/parallel.hpp"
#include "scenario/scenario.hpp"

using namespace siphoc;

namespace {

struct ScaleRow {
  int pairs = 0;
  int calls_ok = 0;
  double setup_ms = 0;
  double control_frames_per_node_s = 0;
  double piggyback_bytes_per_node = 0;
  double events = 0;        // simulator events executed by the cell
};

ScaleRow run(std::size_t nodes, RoutingKind routing, std::uint64_t seed,
             SimContext& ctx, std::uint32_t regions, unsigned sim_threads) {
  scenario::Options options;
  options.context = &ctx;
  options.seed = seed;
  options.nodes = nodes;
  options.topology = scenario::Topology::kRandomArea;
  // Constant density: ~1 node per (75 m)^2 keeps the network connected
  // with the 120 m radio range at every size.
  options.area = 75.0 * std::sqrt(static_cast<double>(nodes));
  options.routing = routing;
  // --regions shards each cell's simulation (content: changes the rows);
  // --sim-threads is execution-only. bench_cityscale drives the >=1000-node
  // end of this curve with both.
  options.sim_regions = regions;
  options.sim_threads = sim_threads;

  scenario::Testbed bed(options);
  bed.start();

  const int pairs = static_cast<int>(nodes) / 5;
  std::vector<voip::SoftPhone*> callers, callees;
  for (int p = 0; p < pairs; ++p) {
    voip::SoftPhoneConfig pc;
    pc.domain = "voicehoc.ch";
    pc.answer_delay = Duration::zero();
    pc.username = "caller" + std::to_string(p);
    callers.push_back(&bed.add_phone(static_cast<std::size_t>(p), pc));
    pc.username = "callee" + std::to_string(p);
    callees.push_back(
        &bed.add_phone(nodes - 1 - static_cast<std::size_t>(p), pc));
  }
  bed.settle(routing == RoutingKind::kOlsr ? seconds(20) : seconds(5));
  for (auto* p : callers) bed.register_and_wait(*p);
  for (auto* p : callees) bed.register_and_wait(*p);
  if (routing == RoutingKind::kOlsr) bed.run_for(seconds(10));

  bed.medium().reset_stats();
  const TimePoint t0 = bed.sim().now();

  ScaleRow row;
  row.pairs = pairs;
  std::vector<double> setups;
  for (int p = 0; p < pairs; ++p) {
    const auto call = bed.call_and_wait(
        *callers[static_cast<std::size_t>(p)],
        "callee" + std::to_string(p) + "@voicehoc.ch", seconds(10));
    if (call.established) {
      ++row.calls_ok;
      setups.push_back(to_millis(call.setup_time));
    }
  }
  bed.run_for(seconds(10));  // calls talking concurrently
  const double window_s = to_seconds(bed.sim().now() - t0);

  row.setup_ms = bench::mean(setups);
  const auto& by_class = bed.medium().stats().by_class;
  if (const auto it = by_class.find(net::TrafficClass::kRouting);
      it != by_class.end()) {
    row.control_frames_per_node_s = static_cast<double>(it->second.frames) /
                                    static_cast<double>(nodes) / window_s;
  }
  std::uint64_t ext = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    ext += bed.stack(i).routing().stats().extension_bytes_sent;
  }
  row.piggyback_bytes_per_node =
      static_cast<double>(ext) / static_cast<double>(nodes);
  row.events = static_cast<double>(bed.sim().events_executed());
  bed.finalize_metrics();  // fold region-lane registries before export
  return row;
}

void add_json_row(bench::JsonReport& report, const char* routing,
                  std::size_t nodes, const ScaleRow& row) {
  report.add_row(std::string(routing) + "/" + std::to_string(nodes),
                 {{"nodes", static_cast<double>(nodes)},
                  {"pairs", row.pairs},
                  {"calls_ok", row.calls_ok},
                  {"setup_ms", row.setup_ms},
                  {"ctrl_frames_per_node_s", row.control_frames_per_node_s},
                  {"piggyback_bytes_per_node", row.piggyback_bytes_per_node},
                  {"events", row.events}});
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "E9: scalability with network size (the paper's stated next step)",
      "random area at constant density, N/5 caller/callee pairs, one call\n"
      "per pair + 10 s of concurrent voice. 'ctrl f/n/s' = routing-plane\n"
      "frames per node per second during the workload.");

  std::printf("%6s | %28s | %28s\n", "nodes", "SIPHoc+AODV", "SIPHoc+OLSR");
  std::printf("%6s | %8s %9s %9s | %8s %9s %9s\n", "", "calls", "setup",
              "ctrl f/n/s", "calls", "setup", "ctrl f/n/s");
  std::printf("-------+------------------------------+--------------------"
              "----------\n");
  bench::JsonReport report("bench_scalability");
  const std::vector<std::size_t> sizes =
      args.quick ? std::vector<std::size_t>{10} : std::vector<std::size_t>{
                                                      10, 20, 40, 80};

  // One cell per (size, protocol): every cell simulates in its own
  // SimContext, so the grid fans across worker threads and still prints /
  // exports in submission order (byte-identical for any --threads value).
  std::vector<ScaleRow> rows(sizes.size() * 2);
  std::vector<scenario::Cell> cells;
  const bench::WallTimer wall;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t nodes = sizes[i];
    cells.push_back({3000 + nodes, [&rows, i, nodes, &args](SimContext& ctx) {
                       rows[2 * i] =
                           run(nodes, RoutingKind::kAodv, 3000 + nodes, ctx,
                               args.regions, args.sim_threads);
                     }});
    cells.push_back({3000 + nodes, [&rows, i, nodes, &args](SimContext& ctx) {
                       rows[2 * i + 1] =
                           run(nodes, RoutingKind::kOlsr, 3000 + nodes, ctx,
                               args.regions, args.sim_threads);
                     }});
  }
  const auto contexts = scenario::run_cells(std::move(cells), args.threads);

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t nodes = sizes[i];
    const ScaleRow& aodv = rows[2 * i];
    const ScaleRow& olsr = rows[2 * i + 1];
    std::printf("%6zu | %4d/%-3d %7.1fms %9.2f | %4d/%-3d %7.1fms %9.2f\n",
                nodes, aodv.calls_ok, aodv.pairs, aodv.setup_ms,
                aodv.control_frames_per_node_s, olsr.calls_ok, olsr.pairs,
                olsr.setup_ms, olsr.control_frames_per_node_s);
    add_json_row(report, "aodv", nodes, aodv);
    add_json_row(report, "olsr", nodes, olsr);
  }
  std::printf("\ngrid wall time: %.1f ms (%u thread%s)\n", wall.elapsed_ms(),
              args.threads, args.threads == 1 ? "" : "s");
  report.write(args.json_path);
  bench::write_merged_sidecar("bench_scalability", contexts);
  std::printf(
      "\nshape check: call success and setup time hold up as the network\n"
      "grows at constant density (setup tracks the growing diameter).\n"
      "Control load is workload-dependent: during this call-heavy window\n"
      "AODV pays a network-wide discovery flood per call (N/5 calls -> per-\n"
      "node load grows with N), while OLSR's proactive load is lower here\n"
      "but never goes away -- compare E8c, where the *idle* ordering\n"
      "reverses. That pairing is the reactive/proactive scalability trade\n"
      "the paper's deferred evaluation would have reported.\n");
  return 0;
}
