// Experiment E3: cost of SIP registration.
//
// Paper claim (section 3.1 + related work): with SIPHoc a REGISTER never
// leaves the node -- the phone registers with its local proxy, and the
// contact advertisement rides existing routing traffic. The broadcast-
// REGISTER approach [12] floods the whole network once per registration
// (and again on every refresh).
//
// Workload: a 16-node grid; U users register, then the network idles 60 s.
// Reported: radio frames put on the air attributable to registration and
// its upkeep.
#include "baselines/flooding_sip.hpp"
#include "bench_table.hpp"
#include "routing/aodv.hpp"
#include "scenario/scenario.hpp"

using namespace siphoc;

namespace {

std::uint64_t run_siphoc(int users, std::uint64_t seed) {
  scenario::Options options;
  options.seed = seed;
  options.nodes = 16;
  options.topology = scenario::Topology::kGrid;
  options.spacing = 90;
  options.routing = RoutingKind::kAodv;
  scenario::Testbed bed(options);
  bed.start();
  std::vector<voip::SoftPhone*> phones;
  for (int u = 0; u < users; ++u) {
    phones.push_back(
        &bed.add_phone(static_cast<std::size_t>(u), "user" + std::to_string(u)));
  }
  bed.settle(seconds(3));

  // Baseline idle cost over the same duration (HELLO beacons etc.).
  scenario::Testbed idle(options);
  idle.start();
  idle.settle(seconds(3));
  idle.medium().reset_stats();
  idle.run_for(seconds(70));
  const std::uint64_t idle_frames = idle.medium().stats().frames_sent;

  bed.medium().reset_stats();
  for (auto* phone : phones) bed.register_and_wait(*phone);
  bed.run_for(seconds(60));
  const std::uint64_t total = bed.medium().stats().frames_sent;
  return total > idle_frames ? total - idle_frames : 0;
}

std::uint64_t run_flooding(int users, std::uint64_t seed) {
  sim::Simulator sim(seed);
  net::RadioMedium medium(sim, net::RadioConfig{});
  const auto positions = net::grid_positions(16, 90);
  std::vector<std::unique_ptr<net::Host>> hosts;
  std::vector<std::unique_ptr<routing::Aodv>> daemons;
  std::vector<std::unique_ptr<baselines::FloodingSipDirectory>> dirs;
  for (std::size_t i = 0; i < 16; ++i) {
    hosts.push_back(std::make_unique<net::Host>(
        sim, static_cast<net::NodeId>(i), "n" + std::to_string(i)));
    hosts.back()->attach_radio(
        medium,
        net::Address{net::kManetPrefix.value() +
                     static_cast<std::uint32_t>(i) + 1},
        std::make_shared<net::StaticMobility>(positions[i]));
    daemons.push_back(std::make_unique<routing::Aodv>(*hosts.back()));
    dirs.push_back(
        std::make_unique<baselines::FloodingSipDirectory>(*hosts.back()));
    daemons.back()->start();
  }
  sim.run_for(seconds(3));

  // Idle comparison network (routing beacons only).
  sim::Simulator idle_sim(seed);
  net::RadioMedium idle_medium(idle_sim, net::RadioConfig{});
  std::vector<std::unique_ptr<net::Host>> idle_hosts;
  std::vector<std::unique_ptr<routing::Aodv>> idle_daemons;
  for (std::size_t i = 0; i < 16; ++i) {
    idle_hosts.push_back(std::make_unique<net::Host>(
        idle_sim, static_cast<net::NodeId>(i), "n" + std::to_string(i)));
    idle_hosts.back()->attach_radio(
        idle_medium,
        net::Address{net::kManetPrefix.value() +
                     static_cast<std::uint32_t>(i) + 1},
        std::make_shared<net::StaticMobility>(positions[i]));
    idle_daemons.push_back(std::make_unique<routing::Aodv>(*idle_hosts.back()));
    idle_daemons.back()->start();
  }
  idle_sim.run_for(seconds(3));
  idle_medium.reset_stats();
  idle_sim.run_for(seconds(60));
  const std::uint64_t idle_frames = idle_medium.stats().frames_sent;

  medium.reset_stats();
  for (int u = 0; u < users; ++u) {
    dirs[static_cast<std::size_t>(u)]->register_service(
        "sip-contact", "user" + std::to_string(u) + "@x",
        hosts[static_cast<std::size_t>(u)]->manet_address().to_string() +
            ":5060",
        minutes(5));
  }
  sim.run_for(seconds(60));
  const std::uint64_t total = medium.stats().frames_sent;
  return total > idle_frames ? total - idle_frames : 0;
}

}  // namespace

int main() {
  bench::print_header(
      "E3: network cost of SIP registration (16-node grid, 60 s window)",
      "radio frames attributable to registration + upkeep, idle-network\n"
      "baseline subtracted. SIPHoc: REGISTER stays on the node; the\n"
      "binding rides routing packets. Flooding-SIP [12]: one network-wide\n"
      "flood per registration plus periodic refresh floods.");

  std::printf("%6s | %18s | %22s\n", "users", "SIPHoc frames",
              "flooding-SIP[12] frames");
  std::printf("-------+--------------------+------------------------\n");
  for (const int users : {1, 2, 4, 8, 12}) {
    const auto siphoc_frames = run_siphoc(users, 500);
    const auto flood_frames = run_flooding(users, 500);
    std::printf("%6d | %18llu | %22llu\n", users,
                static_cast<unsigned long long>(siphoc_frames),
                static_cast<unsigned long long>(flood_frames));
  }
  std::printf(
      "\nshape check: SIPHoc's cost stays near zero and flat in the number\n"
      "of users; the flooding baseline grows linearly with users and keeps\n"
      "paying refresh floods during the idle window.\n");
  return 0;
}
