// Experiment E5: call setup under mobility.
//
// 15 nodes, random waypoint in a 350x350 m area, node speed swept from
// static to 10 m/s. 10 call attempts per configuration (re-registering
// between attempts). Reported per routing protocol: success rate and mean
// setup time of the successful calls.
//
// Expected shape: success degrades with speed; the reactive protocol
// (AODV) degrades more gracefully at high speed because it discovers
// routes on demand, while OLSR serves stale topology between TC rounds.
#include "bench_table.hpp"
#include "scenario/scenario.hpp"

using namespace siphoc;

namespace {

struct MobilityResult {
  int attempts = 0;
  int successes = 0;
  std::vector<double> setup_ms;
};

MobilityResult run_one(RoutingKind routing, double speed,
                       std::uint64_t seed) {
  scenario::Options options;
  options.seed = seed;
  options.nodes = 16;
  // A grid with 85 m spacing is connected when static; mobility then
  // perturbs it (nodes start on the grid, roam the same bounding box).
  options.topology = scenario::Topology::kGrid;
  options.spacing = 85;
  options.routing = routing;
  if (speed > 0) {
    options.mobile = true;
    options.waypoint.width = 3 * 85;
    options.waypoint.height = 3 * 85;
    options.waypoint.min_speed = std::max(0.5, speed / 2);
    options.waypoint.max_speed = speed;
    options.waypoint.pause = seconds(1);
  }

  scenario::Testbed bed(options);
  bed.start();
  voip::SoftPhoneConfig pc;
  pc.username = "alice";
  pc.domain = "voicehoc.ch";
  pc.answer_delay = Duration::zero();
  auto& alice = bed.add_phone(0, pc);
  pc.username = "bob";
  auto& bob = bed.add_phone(15, pc);
  bed.settle(routing == RoutingKind::kOlsr ? seconds(15) : seconds(4));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  if (routing == RoutingKind::kOlsr) bed.run_for(seconds(6));

  MobilityResult result;
  for (int i = 0; i < 5; ++i) {
    ++result.attempts;
    const auto call = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(10));
    if (call.established) {
      ++result.successes;
      result.setup_ms.push_back(to_millis(call.setup_time));
      bed.run_for(seconds(2));
      alice.hang_up(call.call);
    }
    bed.run_for(seconds(5));  // topology keeps churning between attempts
  }
  return result;
}

MobilityResult run(RoutingKind routing, double speed, std::uint64_t seed) {
  MobilityResult total;
  for (int s = 0; s < 3; ++s) {
    const auto r = run_one(routing, speed, seed + static_cast<std::uint64_t>(s));
    total.attempts += r.attempts;
    total.successes += r.successes;
    total.setup_ms.insert(total.setup_ms.end(), r.setup_ms.begin(),
                          r.setup_ms.end());
  }
  return total;
}

}  // namespace

int main() {
  bench::print_header(
      "E5: call setup under mobility (16 nodes, random waypoint over a "
      "255x255 m box)",
      "15 call attempts per cell (3 seeds x 5); 'ok' = established within 10 s.");

  std::printf("%7s | %22s | %22s\n", "speed", "SIPHoc+AODV", "SIPHoc+OLSR");
  std::printf("%7s | %10s %11s | %10s %11s\n", "m/s", "ok", "setup ms",
              "ok", "setup ms");
  std::printf("--------+------------------------+------------------------\n");
  for (const double speed : {0.0, 1.0, 2.0, 5.0, 10.0}) {
    const auto aodv = run(RoutingKind::kAodv, speed, 900);
    const auto olsr = run(RoutingKind::kOlsr, speed, 900);
    std::printf("%7.0f | %6d/%-3d %11.1f | %6d/%-3d %11.1f\n", speed,
                aodv.successes, aodv.attempts, bench::mean(aodv.setup_ms),
                olsr.successes, olsr.attempts, bench::mean(olsr.setup_ms));
  }
  std::printf(
      "\nshape check: success rate decreases with node speed; setup times\n"
      "rise as discoveries/repairs get involved. On-demand AODV tolerates\n"
      "churn better than periodically-refreshed OLSR state at high speed.\n");
  return 0;
}
