// Experiment E6: voice quality vs hop count.
//
// The paper demonstrates calls on laptops/iPAQs but reports no audio
// metrics; this bench quantifies what the listener gets. A 30 s G.711 call
// (constant 50 pps, VAD off, so loss statistics are dense) is run over
// 1..8 wireless hops, with and without 2% per-link radio loss. Reported:
// effective loss after the jitter buffer, RFC 3550 jitter, one-way delay,
// and the E-model MOS.
#include "bench_table.hpp"
#include "scenario/scenario.hpp"

using namespace siphoc;

namespace {

struct VoiceRow {
  bool ok = false;
  double loss_percent = 0;
  double jitter_ms = 0;
  double delay_ms = 0;
  double mos = 0;
};

VoiceRow run(int hops, double link_loss, std::uint64_t seed) {
  scenario::Options options;
  options.seed = seed;
  options.nodes = static_cast<std::size_t>(hops) + 1;
  options.topology = scenario::Topology::kChain;
  options.spacing = 100;
  options.routing = RoutingKind::kAodv;
  options.radio.loss_probability = link_loss;

  scenario::Testbed bed(options);
  bed.start();
  voip::SoftPhoneConfig pc;
  pc.username = "alice";
  pc.domain = "voicehoc.ch";
  pc.voice.always_on = true;
  pc.answer_delay = Duration::zero();
  auto& alice = bed.add_phone(0, pc);
  pc.username = "bob";
  auto& bob = bed.add_phone(bed.size() - 1, pc);
  bed.settle(seconds(3));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);

  const auto call = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(20));
  VoiceRow row;
  if (!call.established) return row;
  bed.run_for(seconds(30));
  const auto report = alice.call_report(call.call);
  alice.hang_up(call.call);
  bed.run_for(seconds(1));
  if (!report) return row;
  row.ok = true;
  row.loss_percent = report->effective_loss_percent;
  row.jitter_ms = report->jitter_ms;
  row.delay_ms = report->mean_delay_ms;
  row.mos = report->quality.mos;
  return row;
}

void print_table(double link_loss) {
  std::printf("per-link radio loss = %.0f%%\n", link_loss * 100);
  std::printf("%5s | %9s %9s %9s %7s\n", "hops", "loss %", "jitter", "delay",
              "MOS");
  std::printf("------+----------------------------------------\n");
  for (int hops = 1; hops <= 8; ++hops) {
    const auto row = run(hops, link_loss,
                         1100 + static_cast<std::uint64_t>(hops));
    if (!row.ok) {
      std::printf("%5d | call failed\n", hops);
      continue;
    }
    std::printf("%5d | %8.2f%% %7.2fms %7.2fms %7.2f\n", hops,
                row.loss_percent, row.jitter_ms, row.delay_ms, row.mos);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header(
      "E6: voice quality vs hop count (30 s G.711 call, 50 pps)",
      "listener-side metrics at the caller; jitter per RFC 3550; MOS from\n"
      "the E-model (G.107) with a 60 ms playout buffer.");
  print_table(0.0);
  print_table(0.02);
  std::printf(
      "shape check: delay grows linearly with hops (~per-hop MAC latency);\n"
      "with lossy links, effective loss compounds per hop (1-(1-p)^h) and\n"
      "MOS declines accordingly -- multihop audio stays usable for the hop\n"
      "counts the paper's testbed used (<= ~5).\n");
  return 0;
}
