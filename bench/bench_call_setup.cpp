// Experiment E1: SIP session establishment time vs hop count.
//
// Reproduces the headline measurement of the SIPHoc evaluation the paper
// defers to: how long from INVITE to established call over 1..8 wireless
// hops, for
//   * SIPHoc over AODV  (reactive: lookup+route ride one RREQ/RREP flood)
//   * SIPHoc over OLSR  (proactive: binding already cached, routes ready)
//   * flooding-SIP baseline [12] over AODV (dedicated broadcast floods)
// Expected shape: AODV setup grows with hop count (flood round trip);
// OLSR setup is flat and small (cache hit + existing route); the baseline
// tracks AODV but costs far more packets (reported alongside).
#include "baselines/flooding_sip.hpp"
#include "bench_table.hpp"
#include "scenario/parallel.hpp"
#include "scenario/scenario.hpp"

using namespace siphoc;

namespace {

struct Sample {
  double setup_ms = 0;
  double routing_packets = 0;
  double slp_packets = 0;
  bool ok = false;
};

/// One SIPHoc run: chain of hops+1 nodes, register both ends, call.
Sample run_siphoc(int hops, RoutingKind routing, std::uint64_t seed,
                  SimContext& ctx) {
  scenario::Options options;
  options.context = &ctx;
  options.seed = seed;
  options.nodes = static_cast<std::size_t>(hops) + 1;
  options.topology = scenario::Topology::kChain;
  options.spacing = 100;
  options.routing = routing;

  scenario::Testbed bed(options);
  bed.start();
  voip::SoftPhoneConfig pc;
  pc.username = "alice";
  pc.domain = "voicehoc.ch";
  pc.answer_delay = Duration::zero();  // measure the network, not the ring
  auto& alice = bed.add_phone(0, pc);
  pc.username = "bob";
  auto& bob = bed.add_phone(bed.size() - 1, pc);
  // OLSR needs time to elect MPRs and flood TCs; AODV only needs HELLOs.
  bed.settle(routing == RoutingKind::kOlsr ? seconds(12) : seconds(3));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  if (routing == RoutingKind::kOlsr) bed.run_for(seconds(8));

  const auto before = bed.medium().stats();
  const auto result = bed.call_and_wait(alice, "bob@voicehoc.ch");
  const auto after = bed.medium().stats();

  Sample s;
  s.ok = result.established;
  s.setup_ms = to_millis(result.setup_time);
  s.routing_packets = static_cast<double>(
      after.by_class.contains(net::TrafficClass::kRouting)
          ? after.by_class.at(net::TrafficClass::kRouting).frames
          : 0) -
      static_cast<double>(
          before.by_class.contains(net::TrafficClass::kRouting)
              ? before.by_class.at(net::TrafficClass::kRouting).frames
              : 0);
  return s;
}

/// Baseline: same chain, AODV routing, but the proxies resolve contacts via
/// the flooding-SIP directory instead of MANET SLP piggybacking.
Sample run_flooding_baseline(int hops, std::uint64_t seed, SimContext& ctx) {
  scenario::Options options;
  options.context = &ctx;
  options.seed = seed;
  options.nodes = static_cast<std::size_t>(hops) + 1;
  options.topology = scenario::Topology::kChain;
  options.spacing = 100;
  options.routing = RoutingKind::kAodv;
  // Disable the SIPHoc piggyback plugin entirely: MANET SLP stays empty.
  slp::ManetSlpConfig off = slp::ManetSlpConfig::for_aodv();
  off.piggyback_enabled = false;
  options.stack.slp = off;

  scenario::Testbed bed(options);
  bed.start();

  // Swap in the baseline directory + a second proxy instance per endpoint
  // node (on a different port the phones point at).
  const std::size_t last = bed.size() - 1;
  std::vector<std::unique_ptr<baselines::FloodingSipDirectory>> dirs;
  std::vector<std::unique_ptr<SiphocProxy>> proxies;
  for (std::size_t i = 0; i < bed.size(); ++i) {
    dirs.push_back(
        std::make_unique<baselines::FloodingSipDirectory>(bed.host(i)));
    ProxyConfig pc;
    pc.port = 5061;
    proxies.push_back(
        std::make_unique<SiphocProxy>(bed.host(i), *dirs[i], pc));
  }

  voip::SoftPhoneConfig caller_config;
  caller_config.username = "alice";
  caller_config.domain = "voicehoc.ch";
  caller_config.answer_delay = Duration::zero();
  caller_config.outbound_proxy = {net::kLoopbackAddress, 5061};
  auto& alice = bed.add_phone(0, caller_config);
  voip::SoftPhoneConfig callee_config = caller_config;
  callee_config.username = "bob";
  auto& bob = bed.add_phone(last, callee_config);

  bed.settle(seconds(3));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  bed.run_for(seconds(2));  // let the registration floods propagate

  std::uint64_t flood_before = 0;
  for (const auto& d : dirs) flood_before += d->packets_sent();
  const auto result = bed.call_and_wait(alice, "bob@voicehoc.ch");
  std::uint64_t flood_after = 0;
  for (const auto& d : dirs) flood_after += d->packets_sent();

  Sample s;
  s.ok = result.established;
  s.setup_ms = to_millis(result.setup_time);
  s.slp_packets = static_cast<double>(flood_after - flood_before);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::print_header(
      "E1: session establishment time vs hop count",
      "chain topology, 100 m spacing, 120 m range; mean of 5 seeds.\n"
      "columns: setup time [ms] / call success");

  std::printf("%5s | %22s | %22s | %26s\n", "hops", "SIPHoc+AODV",
              "SIPHoc+OLSR", "flooding-SIP[12]+AODV");
  std::printf("%5s | %22s | %22s | %26s\n", "", "ms      ok", "ms      ok",
              "ms      ok");
  std::printf("------+------------------------+------------------------+--"
              "--------------------------\n");

  bench::JsonReport report("bench_call_setup");
  const int max_hops = args.quick ? 2 : 8;
  const int runs = args.quick ? 1 : 5;

  // Every (hops, variant, repeat) triple is one independent cell; results
  // land in a pre-sized grid indexed by submission order, so aggregation
  // below is identical no matter how many worker threads ran the cells.
  const int kVariants = 3;  // 0 = aodv, 1 = olsr, 2 = flooding baseline
  std::vector<Sample> samples(
      static_cast<std::size_t>(max_hops) * kVariants * runs);
  std::vector<scenario::Cell> cells;
  const bench::WallTimer wall;
  for (int hops = 1; hops <= max_hops; ++hops) {
    for (int r = 0; r < runs; ++r) {
      const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(r);
      const std::size_t base =
          (static_cast<std::size_t>(hops - 1) * runs + r) * kVariants;
      cells.push_back({seed, [&samples, base, hops, seed](SimContext& ctx) {
                         samples[base] =
                             run_siphoc(hops, RoutingKind::kAodv, seed, ctx);
                       }});
      cells.push_back({seed, [&samples, base, hops, seed](SimContext& ctx) {
                         samples[base + 1] =
                             run_siphoc(hops, RoutingKind::kOlsr, seed, ctx);
                       }});
      cells.push_back({seed, [&samples, base, hops, seed](SimContext& ctx) {
                         samples[base + 2] =
                             run_flooding_baseline(hops, seed, ctx);
                       }});
    }
  }
  const auto contexts = scenario::run_cells(std::move(cells), args.threads);

  for (int hops = 1; hops <= max_hops; ++hops) {
    std::vector<double> aodv_ms, olsr_ms, flood_ms;
    int aodv_ok = 0, olsr_ok = 0, flood_ok = 0;
    for (int r = 0; r < runs; ++r) {
      const std::size_t base =
          (static_cast<std::size_t>(hops - 1) * runs + r) * kVariants;
      if (samples[base].ok) {
        aodv_ms.push_back(samples[base].setup_ms);
        ++aodv_ok;
      }
      if (samples[base + 1].ok) {
        olsr_ms.push_back(samples[base + 1].setup_ms);
        ++olsr_ok;
      }
      if (samples[base + 2].ok) {
        flood_ms.push_back(samples[base + 2].setup_ms);
        ++flood_ok;
      }
    }
    std::printf("%5d | %12.1f  %3d/%-3d | %12.1f  %3d/%-3d | %16.1f  %3d/%-3d\n",
                hops, bench::mean(aodv_ms), aodv_ok, runs,
                bench::mean(olsr_ms), olsr_ok, runs, bench::mean(flood_ms),
                flood_ok, runs);
    report.add_row("hops/" + std::to_string(hops),
                   {{"hops", hops},
                    {"runs", runs},
                    {"aodv_setup_ms", bench::mean(aodv_ms)},
                    {"aodv_ok", aodv_ok},
                    {"olsr_setup_ms", bench::mean(olsr_ms)},
                    {"olsr_ok", olsr_ok},
                    {"flooding_setup_ms", bench::mean(flood_ms)},
                    {"flooding_ok", flood_ok}});
  }
  std::printf("\ngrid wall time: %.1f ms (%u thread%s)\n", wall.elapsed_ms(),
              args.threads, args.threads == 1 ? "" : "s");
  report.write(args.json_path);

  std::printf(
      "\nshape check (paper/SIPHoc claims):\n"
      "  * reactive (AODV) setup grows with hops: RREQ/RREP round trip\n"
      "  * proactive (OLSR) setup is flat: contact cached, route in FIB\n"
      "  * SIPHoc resolves contact and route in ONE flood; the broadcast\n"
      "    baseline pays separate network-wide floods\n");
  bench::write_merged_sidecar("bench_call_setup", contexts);
  return 0;
}
