// Shared helpers for the benchmark binaries.
//
// The benches reproduce *evaluation tables/figures*: each prints the rows
// of one experiment, measured in virtual time inside the deterministic
// emulation (the interesting quantity; wall time only tells you how fast
// the simulator runs). Repeated runs use distinct seeds and report means.
#pragma once

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "common/metrics.hpp"

namespace siphoc::bench {

inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

inline double maximum(const std::vector<double>& xs) {
  double m = 0;
  for (const double x : xs) m = std::max(m, x);
  return m;
}

inline void print_header(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("\n");
}

/// Clears the registry between bench cells so each run's sidecar reflects
/// only that run. Invalidates previously bound instrument references --
/// call only between simulator builds, never mid-run.
inline void reset_metrics() { MetricsRegistry::instance().reset(); }

/// Writes `<name>.metrics.json` (and `.csv`) next to the bench's stdout
/// tables: the machine-readable version of the run, in the schema
/// documented in docs/METRICS.md. Returns false (after a stderr note) if
/// the files cannot be written.
inline bool write_metrics_sidecar(const std::string& name) {
  auto& registry = MetricsRegistry::instance();
  const bool json_ok =
      MetricsRegistry::write_file(name + ".metrics.json", registry.to_json());
  const bool csv_ok =
      MetricsRegistry::write_file(name + ".metrics.csv", registry.to_csv());
  if (json_ok) {
    std::printf("metrics sidecar: %s.metrics.json\n", name.c_str());
  }
  return json_ok && csv_ok;
}

}  // namespace siphoc::bench
