// Shared helpers for the benchmark binaries.
//
// The benches reproduce *evaluation tables/figures*: each prints the rows
// of one experiment, measured in virtual time inside the deterministic
// emulation (the interesting quantity; wall time only tells you how fast
// the simulator runs). Repeated runs use distinct seeds and report means.
#pragma once

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

namespace siphoc::bench {

inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

inline double maximum(const std::vector<double>& xs) {
  double m = 0;
  for (const double x : xs) m = std::max(m, x);
  return m;
}

inline void print_header(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("\n");
}

}  // namespace siphoc::bench
