// Shared helpers for the benchmark binaries.
//
// The benches reproduce *evaluation tables/figures*: each prints the rows
// of one experiment, measured in virtual time inside the deterministic
// emulation (the interesting quantity; wall time only tells you how fast
// the simulator runs). Repeated runs use distinct seeds and report means.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/context.hpp"
#include "common/metrics.hpp"

namespace siphoc::bench {

inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

inline double maximum(const std::vector<double>& xs) {
  double m = 0;
  for (const double x : xs) m = std::max(m, x);
  return m;
}

inline void print_header(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) std::printf("%s\n", note.c_str());
  std::printf("\n");
}

/// Clears the registry between bench cells so each run's sidecar reflects
/// only that run. Invalidates previously bound instrument references --
/// call only between simulator builds, never mid-run.
inline void reset_metrics() { MetricsRegistry::instance().reset(); }

/// Writes `<name>.metrics.json` (and `.csv`) next to the bench's stdout
/// tables: the machine-readable version of the run, in the schema
/// documented in docs/METRICS.md. Returns false (after a stderr note) if
/// the files cannot be written.
inline bool write_metrics_sidecar(const std::string& name) {
  auto& registry = MetricsRegistry::instance();
  const bool json_ok =
      MetricsRegistry::write_file(name + ".metrics.json", registry.to_json());
  const bool csv_ok =
      MetricsRegistry::write_file(name + ".metrics.csv", registry.to_csv());
  if (json_ok) {
    std::printf("metrics sidecar: %s.metrics.json\n", name.c_str());
  }
  return json_ok && csv_ok;
}

/// The parallel-bench variant of write_metrics_sidecar: folds the per-cell
/// registries (submission order) into one export carrying "merged_cells"
/// provenance. Identical bytes for any --threads value.
inline bool write_merged_sidecar(
    const std::string& name,
    const std::vector<std::unique_ptr<SimContext>>& contexts) {
  MetricsRegistry merged;
  for (const auto& context : contexts) merged.merge_from(context->metrics());
  const bool json_ok = MetricsRegistry::write_file(
      name + ".metrics.json", merged.to_json(contexts.size()));
  const bool csv_ok =
      MetricsRegistry::write_file(name + ".metrics.csv", merged.to_csv());
  if (json_ok) {
    std::printf("metrics sidecar: %s.metrics.json (%zu cells merged)\n",
                name.c_str(), contexts.size());
  }
  return json_ok && csv_ok;
}

/// Common bench command line:
///   --quick         shrink the experiment to a seconds-scale smoke run
///                   (ctest uses this so the benches cannot bit-rot)
///   --json <path>   additionally emit the result rows as JSON in the
///                   schema documented in docs/PERFORMANCE.md
///   --threads <n>   fan independent experiment cells across n worker
///                   threads (default 1). Tables, --json output and metrics
///                   sidecars are byte-identical for every value.
///   --regions <r>   shard each simulation into r spatial region lanes
///                   (benches that honor it pass this to
///                   Options::sim_regions). Simulation *content*: rows
///                   change with r, exactly like changing the seed, so the
///                   committed baselines use the default 0.
///   --sim-threads <n>
///                   worker threads inside each (sharded) simulation. Pure
///                   execution policy: byte-identical output for any value.
struct BenchArgs {
  bool quick = false;
  std::string json_path;
  unsigned threads = 1;
  std::uint32_t regions = 0;
  unsigned sim_threads = 1;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        args.quick = true;
      } else if (arg == "--json" && i + 1 < argc) {
        args.json_path = argv[++i];
      } else if (arg == "--threads" && i + 1 < argc) {
        const long n = std::strtol(argv[++i], nullptr, 10);
        args.threads = n > 1 ? static_cast<unsigned>(n) : 1;
      } else if (arg == "--regions" && i + 1 < argc) {
        const long n = std::strtol(argv[++i], nullptr, 10);
        args.regions = n > 0 ? static_cast<std::uint32_t>(n) : 0;
      } else if (arg == "--sim-threads" && i + 1 < argc) {
        const long n = std::strtol(argv[++i], nullptr, 10);
        args.sim_threads = n > 1 ? static_cast<unsigned>(n) : 1;
      } else {
        std::fprintf(stderr,
                     "usage: %s [--quick] [--json <path>] [--threads <n>] "
                     "[--regions <r>] [--sim-threads <n>]\n",
                     argv[0]);
      }
    }
    return args;
  }
};

/// Wall-clock stopwatch for the "how fast does the simulator itself run"
/// axis of the perf work (virtual-time results are wall-clock independent).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Machine-readable bench report ("siphoc.bench.v1"): one row per table
/// cell, each a flat label -> numeric-metric map. BENCH_baseline.json is a
/// committed snapshot of these files so PRs leave a perf trajectory.
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  void add_row(std::string label,
               std::vector<std::pair<std::string, double>> metrics) {
    rows_.push_back({std::move(label), std::move(metrics)});
  }

  std::string to_json() const {
    std::string out = "{\n  \"schema\": \"siphoc.bench.v1\",\n  \"bench\": \"" +
                      bench_ + "\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += "    {\"label\": \"" + rows_[i].label + "\"";
      for (const auto& [key, value] : rows_[i].metrics) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        out += ", \"" + key + "\": " + buf;
      }
      out += i + 1 < rows_.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  /// Writes the report if `path` is non-empty; reuses the metrics file
  /// writer so failures behave identically to sidecar failures.
  bool write(const std::string& path) const {
    if (path.empty()) return true;
    const bool ok = MetricsRegistry::write_file(path, to_json());
    if (ok) std::printf("bench json: %s\n", path.c_str());
    return ok;
  }

 private:
  struct Row {
    std::string label;
    std::vector<std::pair<std::string, double>> metrics;
  };
  std::string bench_;
  std::vector<Row> rows_;
};

}  // namespace siphoc::bench
