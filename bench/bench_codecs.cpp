// Micro-benchmarks (google-benchmark): wall-clock throughput of the wire
// codecs on the hot paths -- every SIP message, routing packet, SLP
// extension and RTP frame in the emulation (and on a real device) passes
// through these. The paper targets iPAQ-class hardware, so parser cost
// matters.
#include <benchmark/benchmark.h>

#include "routing/aodv_codec.hpp"
#include "rtp/quality.hpp"
#include "rtp/rtp.hpp"
#include "sip/message.hpp"
#include "sip/sdp.hpp"
#include "slp/service.hpp"

namespace {

using namespace siphoc;

const std::string kInviteWire =
    "INVITE sip:bob@voicehoc.ch SIP/2.0\r\n"
    "Via: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bKphoc77\r\n"
    "Via: SIP/2.0/UDP 127.0.0.1:5070;branch=z9hG4bK74bf9\r\n"
    "Max-Forwards: 69\r\n"
    "From: \"Alice\" <sip:alice@voicehoc.ch>;tag=9fxced76sl\r\n"
    "To: <sip:bob@voicehoc.ch>\r\n"
    "Call-ID: 3848276298220188511@voicehoc.ch\r\n"
    "CSeq: 1 INVITE\r\n"
    "Contact: <sip:alice@10.0.0.1:5060>\r\n"
    "Content-Type: application/sdp\r\n"
    "\r\n"
    "v=0\r\no=- 4711 1 IN IP4 10.0.0.1\r\ns=-\r\nc=IN IP4 10.0.0.1\r\n"
    "t=0 0\r\nm=audio 8000 RTP/AVP 0\r\na=rtpmap:0 PCMU/8000\r\n";

void BM_SipParse(benchmark::State& state) {
  for (auto _ : state) {
    auto m = sip::Message::parse(kInviteWire);
    benchmark::DoNotOptimize(m);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kInviteWire.size()));
}
BENCHMARK(BM_SipParse);

void BM_SipSerialize(benchmark::State& state) {
  auto m = sip::Message::parse(kInviteWire).value();
  for (auto _ : state) {
    auto wire = m.serialize();
    benchmark::DoNotOptimize(wire);
  }
}
BENCHMARK(BM_SipSerialize);

void BM_SdpParse(benchmark::State& state) {
  const std::string sdp = sip::Sdp::audio(net::Address(10, 0, 0, 1), 8000, 1)
                              .serialize();
  for (auto _ : state) {
    auto parsed = sip::Sdp::parse(sdp);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_SdpParse);

void BM_AodvEncodeDecode(benchmark::State& state) {
  routing::aodv::Rreq rreq;
  rreq.rreq_id = 42;
  rreq.dst = net::Address(10, 0, 0, 9);
  rreq.orig = net::Address(10, 0, 0, 1);
  const Bytes ext(32, 0xab);
  for (auto _ : state) {
    const Bytes wire = routing::aodv::encode(rreq, ext);
    auto decoded = routing::aodv::decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_AodvEncodeDecode);

void BM_SlpExtensionRoundTrip(benchmark::State& state) {
  slp::ExtensionBlock block;
  for (int i = 0; i < state.range(0); ++i) {
    slp::ServiceEntry e;
    e.type = "sip-contact";
    e.key = "user" + std::to_string(i) + "@voicehoc.ch";
    e.value = "10.0.0.1:5060";
    e.origin = net::Address(10, 0, 0, 1);
    e.expires = TimePoint{} + seconds(60);
    block.advertisements.push_back(std::move(e));
  }
  for (auto _ : state) {
    const Bytes wire = slp::encode_extension(block, TimePoint{});
    auto decoded = slp::decode_extension(wire, TimePoint{});
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_SlpExtensionRoundTrip)->Arg(1)->Arg(4)->Arg(8);

void BM_RtpEncodeDecode(benchmark::State& state) {
  const rtp::RtpPacket packet =
      rtp::make_voice_packet(7, 160, 0xcafe, false, TimePoint{} + seconds(1));
  for (auto _ : state) {
    const Bytes wire = packet.encode();
    auto decoded = rtp::RtpPacket::decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_RtpEncodeDecode);

void BM_EModelScore(benchmark::State& state) {
  double loss = 0;
  for (auto _ : state) {
    loss = loss > 40 ? 0 : loss + 0.1;
    benchmark::DoNotOptimize(rtp::score_call({120.0, loss}));
  }
}
BENCHMARK(BM_EModelScore);

}  // namespace

BENCHMARK_MAIN();
