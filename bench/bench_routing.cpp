// Experiment E8: routing substrate validation.
//
// Not a SIPHoc result per se, but the foundation every other number rests
// on: (a) AODV route-discovery latency must grow linearly with hop count,
// (b) OLSR must converge to full reachability in bounded time, and (c) the
// idle control overhead of both protocols per node must be small and flat
// -- otherwise the SLP-piggybacking savings measured in E2/E3 would be
// artifacts of a broken substrate.
#include "bench_table.hpp"
#include "routing/aodv.hpp"
#include "routing/olsr.hpp"
#include "scenario/parallel.hpp"
#include "siphoc/node_stack.hpp"  // RoutingKind

using namespace siphoc;

namespace {

struct Net {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<net::RadioMedium> medium;
  std::vector<std::unique_ptr<net::Host>> hosts;
  std::vector<std::unique_ptr<routing::Protocol>> daemons;

  Net(const std::vector<net::Position>& positions, RoutingKind kind,
      std::uint64_t seed, SimContext& ctx) {
    sim = std::make_unique<sim::Simulator>(seed, &ctx);
    medium = std::make_unique<net::RadioMedium>(*sim, net::RadioConfig{});
    for (std::size_t i = 0; i < positions.size(); ++i) {
      hosts.push_back(std::make_unique<net::Host>(
          *sim, static_cast<net::NodeId>(i), "n" + std::to_string(i)));
      hosts.back()->attach_radio(
          *medium,
          net::Address{net::kManetPrefix.value() +
                       static_cast<std::uint32_t>(i) + 1},
          std::make_shared<net::StaticMobility>(positions[i]));
      if (kind == RoutingKind::kAodv) {
        daemons.push_back(std::make_unique<routing::Aodv>(*hosts.back()));
      } else {
        daemons.push_back(std::make_unique<routing::Olsr>(*hosts.back()));
      }
      daemons.back()->start();
    }
  }

  net::Address addr(std::size_t i) const {
    return net::Address{net::kManetPrefix.value() +
                        static_cast<std::uint32_t>(i) + 1};
  }
};

/// AODV: time from first packet to delivery at a cold destination.
double aodv_discovery_ms(int hops, std::uint64_t seed, SimContext& ctx) {
  Net net(net::chain_positions(static_cast<std::size_t>(hops) + 1, 100),
          RoutingKind::kAodv, seed, ctx);
  net.sim->run_for(seconds(2));
  bool got = false;
  const std::size_t dst = static_cast<std::size_t>(hops);
  net.hosts[dst]->bind(9000, [&](const net::Datagram&, const net::RxInfo&) {
    got = true;
  });
  const TimePoint t0 = net.sim->now();
  net.hosts[0]->send_udp(9000, {net.addr(dst), 9000}, to_bytes("probe"));
  const TimePoint deadline = t0 + seconds(20);
  while (!got && net.sim->now() < deadline) net.sim->run_for(milliseconds(1));
  return got ? to_millis(net.sim->now() - t0) : -1;
}

/// OLSR: time from cold start until every pair is mutually routable.
double olsr_convergence_s(std::size_t nodes, std::uint64_t seed,
                          SimContext& ctx) {
  Net net(net::grid_positions(nodes, 90), RoutingKind::kOlsr, seed, ctx);
  const TimePoint t0 = net.sim->now();
  const TimePoint deadline = t0 + seconds(120);
  while (net.sim->now() < deadline) {
    net.sim->run_for(milliseconds(500));
    bool full = true;
    for (std::size_t i = 0; i < nodes && full; ++i) {
      for (std::size_t j = 0; j < nodes && full; ++j) {
        if (i != j && !net.hosts[i]->lookup_route(net.addr(j))) full = false;
      }
    }
    if (full) return to_seconds(net.sim->now() - t0);
  }
  return -1;
}

/// Idle control overhead: frames per node per second over a minute.
double idle_overhead_fps(std::size_t nodes, RoutingKind kind,
                         std::uint64_t seed, SimContext& ctx) {
  Net net(net::grid_positions(nodes, 90), kind, seed, ctx);
  net.sim->run_for(seconds(30));  // warm up / converge
  net.medium->reset_stats();
  net.sim->run_for(seconds(60));
  return static_cast<double>(net.medium->stats().frames_sent) /
         static_cast<double>(nodes) / 60.0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::JsonReport report("bench_routing");

  const int max_hops = args.quick ? 2 : 8;
  const std::vector<std::size_t> olsr_sizes =
      args.quick ? std::vector<std::size_t>{4} : std::vector<std::size_t>{
                                                     4, 9, 16, 25};
  const std::vector<std::size_t> idle_sizes =
      args.quick ? std::vector<std::size_t>{9} : std::vector<std::size_t>{
                                                     9, 25, 49};

  // All three experiments are flat lists of independent cells; fan them
  // out together and print each table from the in-order results.
  std::vector<double> discovery(static_cast<std::size_t>(max_hops));
  std::vector<double> convergence(olsr_sizes.size());
  std::vector<double> idle_aodv(idle_sizes.size());
  std::vector<double> idle_olsr(idle_sizes.size());
  std::vector<scenario::Cell> cells;
  const bench::WallTimer wall;
  for (int hops = 1; hops <= max_hops; ++hops) {
    const std::uint64_t seed = 1200 + static_cast<std::uint64_t>(hops);
    cells.push_back({seed, [&discovery, hops, seed](SimContext& ctx) {
                       discovery[static_cast<std::size_t>(hops - 1)] =
                           aodv_discovery_ms(hops, seed, ctx);
                     }});
  }
  for (std::size_t i = 0; i < olsr_sizes.size(); ++i) {
    const std::size_t nodes = olsr_sizes[i];
    cells.push_back({1300 + nodes, [&convergence, i, nodes](SimContext& ctx) {
                       convergence[i] =
                           olsr_convergence_s(nodes, 1300 + nodes, ctx);
                     }});
  }
  for (std::size_t i = 0; i < idle_sizes.size(); ++i) {
    const std::size_t nodes = idle_sizes[i];
    cells.push_back({1400 + nodes, [&idle_aodv, i, nodes](SimContext& ctx) {
                       idle_aodv[i] = idle_overhead_fps(
                           nodes, RoutingKind::kAodv, 1400 + nodes, ctx);
                     }});
    cells.push_back({1400 + nodes, [&idle_olsr, i, nodes](SimContext& ctx) {
                       idle_olsr[i] = idle_overhead_fps(
                           nodes, RoutingKind::kOlsr, 1400 + nodes, ctx);
                     }});
  }
  scenario::run_cells(std::move(cells), args.threads);

  bench::print_header("E8a: AODV route discovery latency vs hop count",
                      "cold route, expanding ring search enabled.");
  std::printf("%5s | %12s\n", "hops", "latency");
  std::printf("------+--------------\n");
  for (int hops = 1; hops <= max_hops; ++hops) {
    const double ms = discovery[static_cast<std::size_t>(hops - 1)];
    std::printf("%5d | %9.1f ms\n", hops, ms);
    report.add_row("aodv_discovery/" + std::to_string(hops),
                   {{"hops", hops}, {"discovery_ms", ms}});
  }

  bench::print_header("E8b: OLSR convergence time to full reachability",
                      "grid topologies from cold start.");
  std::printf("%6s | %12s\n", "nodes", "convergence");
  std::printf("-------+--------------\n");
  for (std::size_t i = 0; i < olsr_sizes.size(); ++i) {
    std::printf("%6zu | %10.1f s\n", olsr_sizes[i], convergence[i]);
    report.add_row("olsr_convergence/" + std::to_string(olsr_sizes[i]),
                   {{"nodes", static_cast<double>(olsr_sizes[i])},
                    {"convergence_s", convergence[i]}});
  }

  bench::print_header("E8c: idle routing control overhead",
                      "radio frames per node per second, converged network.");
  std::printf("%6s | %12s | %12s\n", "nodes", "AODV", "OLSR");
  std::printf("-------+--------------+--------------\n");
  for (std::size_t i = 0; i < idle_sizes.size(); ++i) {
    std::printf("%6zu | %9.2f /s | %9.2f /s\n", idle_sizes[i], idle_aodv[i],
                idle_olsr[i]);
    report.add_row("idle_overhead/" + std::to_string(idle_sizes[i]),
                   {{"nodes", static_cast<double>(idle_sizes[i])},
                    {"aodv_fps", idle_aodv[i]},
                    {"olsr_fps", idle_olsr[i]}});
  }
  std::printf("\ngrid wall time: %.1f ms (%u thread%s)\n", wall.elapsed_ms(),
              args.threads, args.threads == 1 ? "" : "s");
  report.write(args.json_path);
  std::printf(
      "\nshape check: AODV discovery grows ~linearly in hops; OLSR\n"
      "converges within a few HELLO/TC periods; idle overhead per node is\n"
      "a few frames/s (HELLO beacons; OLSR adds MPR-forwarded TCs).\n");
  return 0;
}
