// Experiment E11: production registrar backend -- sharded store vs the
// single-map baseline vs P2P (Chord-lite) resolution.
//
// Two parts:
//
//  A. Store kernel (wall clock): preload 1M bindings (50k under --quick)
//     into each backend, then drive a mixed workload (90% lookup, 10%
//     REGISTER refresh) and report registrations/sec, lookups/sec and
//     p50/p99 lookup latency. A fourth row runs the sharded store's
//     lock-free read path from 4 concurrent reader threads. The bench
//     self-asserts that the sharded store beats the single map on both
//     lookups/sec and p99 latency and exits non-zero otherwise.
//
//  B. Resolution path (virtual time): a MANET caller behind a gateway
//     dials internet-side callees registered at the provider, once with
//     the provider on the sharded registrar store and once resolving
//     through a Chord-lite ring (Testbed ProviderOptions). Setup delay is
//     measured in virtual ms, so the rows are wall-clock independent; each
//     configuration runs at --sim-threads 1 and 2 and the bench exits
//     non-zero if any column (or the merged metrics registry) differs.
//
//  C. Churn (experiment E12, virtual time): a standalone live ring under
//     crash/cold-restart churn at 0 / 2 / 6 / 12 membership events per
//     virtual minute, with a steady lookup load from a stable member.
//     Reports lookup success rate and mean hop count per churn rate; the
//     zero-churn row must stay at 100% success.
#include <algorithm>
#include <cstring>
#include <thread>

#include "bench_table.hpp"
#include "common/random.hpp"
#include "net/internet.hpp"
#include "scenario/scenario.hpp"
#include "sip/p2p_resolver.hpp"
#include "sip/registrar_store.hpp"
#include "sip/user_agent.hpp"

using namespace siphoc;

namespace {

// ---------------------------------------------------------------------------
// Part A: store kernel
// ---------------------------------------------------------------------------

struct StoreRow {
  std::string label;
  double preload_per_s = 0;   // registrations/sec while filling the store
  double refresh_per_s = 0;   // refresh upserts/sec in the mixed phase
  double lookups_per_s = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  double threads = 1;
};

std::string key_of(std::size_t i) {
  return "user" + std::to_string(i) + "@voicehoc.ch";
}

sip::Uri contact_of(std::size_t i) {
  return sip::Uri::from_endpoint(
      {net::Address(10, static_cast<std::uint32_t>((i >> 16) & 0xff),
                    static_cast<std::uint32_t>((i >> 8) & 0xff),
                    static_cast<std::uint32_t>(i & 0xff)),
       5060},
      "u");
}

double percentile(std::vector<double>& sorted_ns, double p) {
  if (sorted_ns.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ns.size() - 1));
  return sorted_ns[idx];
}

/// Preload + mixed workload against one backend. Key choice uses a fixed
/// LCG so every backend sees the identical op stream.
StoreRow run_store(sip::BindingStore& store, const std::string& label,
                   std::size_t bindings, std::size_t ops) {
  const TimePoint expiry = TimePoint{} + hours(1);
  StoreRow row;
  row.label = label;

  {
    const bench::WallTimer wall;
    for (std::size_t i = 0; i < bindings; ++i) {
      store.upsert(key_of(i), contact_of(i), expiry);
    }
    row.preload_per_s =
        static_cast<double>(bindings) / (wall.elapsed_ms() / 1000.0);
  }

  std::vector<double> lookup_ns;
  lookup_ns.reserve(ops);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  std::size_t refreshes = 0, hits = 0;
  const bench::WallTimer wall;
  double refresh_ms = 0;
  for (std::size_t op = 0; op < ops; ++op) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t i = static_cast<std::size_t>(x >> 33) % bindings;
    if (op % 10 == 0) {
      const bench::WallTimer t;
      store.upsert(key_of(i), contact_of(i), expiry + seconds(op % 600));
      refresh_ms += t.elapsed_ms();
      ++refreshes;
    } else {
      const auto t0 = std::chrono::steady_clock::now();
      const auto found = store.lookup(key_of(i), TimePoint{});
      const auto t1 = std::chrono::steady_clock::now();
      lookup_ns.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
      if (found) ++hits;
    }
  }
  const double total_ms = wall.elapsed_ms();
  row.refresh_per_s =
      refresh_ms > 0 ? static_cast<double>(refreshes) / (refresh_ms / 1000.0)
                     : 0;
  row.lookups_per_s = static_cast<double>(lookup_ns.size()) /
                      ((total_ms - refresh_ms) / 1000.0);
  std::sort(lookup_ns.begin(), lookup_ns.end());
  row.p50_ns = percentile(lookup_ns, 0.50);
  row.p99_ns = percentile(lookup_ns, 0.99);
  if (hits != lookup_ns.size()) {
    std::fprintf(stderr, "!! %s: %zu/%zu lookups missed preloaded keys\n",
                 label.c_str(), lookup_ns.size() - hits, lookup_ns.size());
  }
  return row;
}

/// The lock-free read path under real concurrency: 4 reader threads over a
/// preloaded sharded store, aggregate lookups/sec (latency percentiles come
/// from the single-thread row; here the axis is scaling).
StoreRow run_sharded_parallel(sip::ShardedBindingStore& store,
                              std::size_t bindings, std::size_t ops) {
  constexpr unsigned kReaders = 4;
  StoreRow row;
  row.label = "sharded, " + std::to_string(kReaders) + " readers";
  row.threads = kReaders;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> total{0};
  const bench::WallTimer wall;
  for (unsigned t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t x = 0x9e3779b97f4a7c15ull + t;
      std::uint64_t done = 0;
      for (std::size_t op = 0; op < ops / kReaders; ++op) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const std::size_t i = static_cast<std::size_t>(x >> 33) % bindings;
        if (store.lookup(key_of(i), TimePoint{})) ++done;
      }
      total.fetch_add(done);
    });
  }
  for (auto& t : threads) t.join();
  row.lookups_per_s =
      static_cast<double>(total.load()) / (wall.elapsed_ms() / 1000.0);
  return row;
}

void print_store_row(const StoreRow& r) {
  std::printf("%-22s | %10.0f %10.0f %12.0f | %8.0f %8.0f\n", r.label.c_str(),
              r.preload_per_s, r.refresh_per_s, r.lookups_per_s, r.p50_ns,
              r.p99_ns);
}

// ---------------------------------------------------------------------------
// Part B: resolution path (virtual time)
// ---------------------------------------------------------------------------

struct CallRow {
  int calls_ok = 0;
  int calls = 0;
  double setup_ms = 0;   // virtual time, INVITE -> established
  double events = 0;
  std::string metrics;   // registry snapshot for the identity check
};

CallRow run_calls(scenario::Testbed::Resolution resolution,
                  unsigned sim_threads, bool quick, std::uint64_t seed) {
  SimContext context;
  scenario::Options options;
  options.context = &context;
  options.seed = seed;
  options.nodes = quick ? 3 : 6;
  options.topology = scenario::Topology::kChain;
  options.spacing = 100;
  options.routing = RoutingKind::kAodv;
  options.sim_regions = 4;
  options.sim_threads = sim_threads;

  scenario::Testbed bed(options);
  scenario::Testbed::ProviderOptions po;
  po.resolution = resolution;
  po.store_shards = 8;
  po.p2p_nodes = quick ? 3 : 6;
  auto& provider = bed.add_provider("voicehoc.ch", po);
  (void)provider;
  bed.start();
  bed.make_gateway(0);
  bed.settle(seconds(8));

  // Internet-side callees registered straight at the front door.
  const net::Endpoint front_door{*bed.internet().resolve("voicehoc.ch"), 5060};
  const int callees = quick ? 1 : 3;
  std::vector<std::unique_ptr<sip::UserAgent>> agents;
  for (int c = 0; c < callees; ++c) {
    auto& host = bed.add_internet_host("callee-" + std::to_string(c));
    sip::UserAgentConfig uc;
    uc.aor = *sip::Uri::parse("sip:callee" + std::to_string(c) +
                              "@voicehoc.ch");
    uc.outbound_proxy = front_door;
    uc.media_address = host.wired_address();
    agents.push_back(std::make_unique<sip::UserAgent>(host, uc));
    agents.back()->start_registration();
  }
  bed.run_for(seconds(3));

  // The MANET caller registers through the gateway, then dials each
  // internet callee: INVITE resolution happens provider-side, either a
  // sharded-store lookup or a ring traversal.
  voip::SoftPhoneConfig pc;
  pc.username = "alice";
  pc.domain = "voicehoc.ch";
  pc.answer_delay = Duration::zero();
  auto& alice = bed.add_phone(bed.size() - 1, pc);
  bed.register_and_wait(alice);

  CallRow row;
  row.calls = callees;
  std::vector<double> setups;
  for (int c = 0; c < callees; ++c) {
    const auto call = bed.call_and_wait(
        alice, "callee" + std::to_string(c) + "@voicehoc.ch", seconds(15));
    if (call.established) {
      ++row.calls_ok;
      setups.push_back(to_millis(call.setup_time));
    }
    bed.run_for(seconds(1));
  }
  bed.finalize_metrics();
  row.setup_ms = bench::mean(setups);
  row.events = static_cast<double>(bed.sim().events_executed());
  row.metrics = bed.ctx().metrics().to_json();
  return row;
}

bool same_run(const CallRow& a, const CallRow& b) {
  return a.calls == b.calls && a.calls_ok == b.calls_ok &&
         a.setup_ms == b.setup_ms && a.events == b.events &&
         a.metrics == b.metrics;
}

void print_call_row(const char* label, const CallRow& r) {
  std::printf("%-22s | %4d/%-4d %10.1f | %10.0f\n", label, r.calls_ok,
              r.calls, r.setup_ms, r.events);
}

// ---------------------------------------------------------------------------
// Part C: live-ring churn (experiment E12, virtual time)
// ---------------------------------------------------------------------------

struct ChurnRow {
  double rate = 0;        // membership events per virtual minute
  std::size_t lookups = 0;
  std::size_t hits = 0;
  double mean_hops = 0;   // over successful lookups
  std::size_t churn_events = 0;
};

/// A standalone live ring under crash/cold-restart churn: every churn
/// event toggles a random non-bootstrap member (alive -> hard crash,
/// down -> cold restart + join_ring through node 0) while node 0 issues a
/// lookup every 500 virtual ms across a fixed key population.
ChurnRow run_churn(double per_minute, bool quick, std::uint64_t seed) {
  sim::Simulator sim(seed);
  net::Internet internet(sim, milliseconds(5));
  const std::size_t n = quick ? 5 : 8;
  std::vector<std::unique_ptr<net::Host>> hosts;
  std::vector<std::unique_ptr<sip::P2pResolver>> ring;
  std::vector<net::Endpoint> members;
  for (std::size_t i = 0; i < n; ++i) {
    hosts.push_back(std::make_unique<net::Host>(
        sim, static_cast<net::NodeId>(300 + i),
        "churn-" + std::to_string(i)));
    hosts.back()->attach_wired(internet,
                               net::Address(192, 0, 2, 100 + static_cast<int>(i)));
    ring.push_back(std::make_unique<sip::P2pResolver>(*hosts.back()));
    members.push_back(ring.back()->endpoint());
  }
  for (auto& r : ring) r->join(members);

  const std::size_t keys = quick ? 20 : 40;
  std::vector<std::string> aors;
  for (std::size_t i = 0; i < keys; ++i) {
    aors.push_back("user" + std::to_string(i) + "@churn.bench");
    ring[0]->publish(aors.back(), contact_of(i), sim.now() + hours(1));
  }
  sim.run_for(seconds(2));

  ChurnRow row;
  row.rate = per_minute;
  double hop_sum = 0;
  std::size_t hop_n = 0;
  Rng rng(seed ^ 0xc42u);
  const TimePoint end = sim.now() + (quick ? seconds(60) : seconds(120));
  const Duration churn_interval =
      per_minute > 0
          ? milliseconds(static_cast<std::int64_t>(60000.0 / per_minute))
          : Duration::zero();
  TimePoint next_churn = sim.now() + churn_interval;
  TimePoint next_lookup = sim.now();
  std::size_t aor_index = 0;
  while (sim.now() < end) {
    if (per_minute > 0 && sim.now() >= next_churn) {
      next_churn += churn_interval;
      const std::size_t victim =
          1 + rng.uniform_int(0, static_cast<std::uint32_t>(n - 2));
      if (ring[victim]) {
        ring[victim].reset();  // hard crash: port dark, replicas lost
      } else {
        ring[victim] = std::make_unique<sip::P2pResolver>(*hosts[victim]);
        ring[victim]->join_ring(ring[0]->endpoint());
      }
      ++row.churn_events;
    }
    if (sim.now() >= next_lookup) {
      next_lookup += milliseconds(500);
      ++row.lookups;
      ring[0]->resolve(aors[aor_index++ % aors.size()],
                       [&row, &hop_sum, &hop_n](
                           std::optional<sip::ContactBinding> b, int hops) {
                         if (!b) return;
                         ++row.hits;
                         if (hops >= 0) {
                           hop_sum += hops;
                           ++hop_n;
                         }
                       });
    }
    sim.run_for(milliseconds(100));
  }
  sim.run_for(seconds(3));  // drain in-flight lookups
  row.mean_hops = hop_n > 0 ? hop_sum / static_cast<double>(hop_n) : 0;
  return row;
}

void print_churn_row(const ChurnRow& r) {
  std::printf("%8.0f | %4zu/%-4zu %7.1f%% | %9.2f | %6zu\n", r.rate, r.hits,
              r.lookups,
              100.0 * static_cast<double>(r.hits) /
                  static_cast<double>(r.lookups == 0 ? 1 : r.lookups),
              r.mean_hops, r.churn_events);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t bindings = args.quick ? 50'000 : 1'000'000;
  const std::size_t ops = args.quick ? 100'000 : 1'000'000;
  const unsigned sim_threads = args.sim_threads > 1 ? args.sim_threads : 2;

  bench::print_header(
      "E11: registrar backends -- sharded store vs single map vs P2P",
      "Part A preloads the stores and drives a 90/10 lookup/refresh mix\n"
      "(wall clock; latency per lookup). Part B measures call-setup delay\n"
      "in virtual ms with provider-side resolution on the sharded store\n"
      "vs a Chord-lite ring, byte-identical across --sim-threads.");

  std::printf("store kernel: %zu bindings, %zu mixed ops\n\n", bindings, ops);
  std::printf("%-22s | %10s %10s %12s | %8s %8s\n", "backend", "preload/s",
              "refresh/s", "lookups/s", "p50 ns", "p99 ns");
  std::printf("-----------------------+-------------------------------------+"
              "------------------\n");

  bench::JsonReport report("bench_registrar");
  auto add_store_row = [&](const std::string& label, const StoreRow& r) {
    report.add_row("store/" + label,
                   {{"bindings", static_cast<double>(bindings)},
                    {"ops", static_cast<double>(ops)},
                    {"threads", r.threads},
                    {"preload_per_s", r.preload_per_s},
                    {"refresh_per_s", r.refresh_per_s},
                    {"lookups_per_s", r.lookups_per_s},
                    {"p50_ns", r.p50_ns},
                    {"p99_ns", r.p99_ns}});
  };

  StoreRow single;
  {
    sip::SingleMapStore store;
    single = run_store(store, "single-map", bindings, ops);
    print_store_row(single);
    add_store_row("single-map", single);
  }
  StoreRow sharded;
  {
    sip::ShardedBindingStore::Config config;
    config.shards = 16;
    config.initial_capacity = bindings / config.shards;
    sip::ShardedBindingStore store(config);
    sharded = run_store(store, "sharded (16)", bindings, ops);
    print_store_row(sharded);
    add_store_row("sharded", sharded);
    const StoreRow parallel = run_sharded_parallel(store, bindings, ops);
    print_store_row(parallel);
    add_store_row("sharded-4-readers", parallel);
  }

  bool failed = false;
  if (sharded.lookups_per_s <= single.lookups_per_s ||
      sharded.p99_ns >= single.p99_ns) {
    std::printf("\n!! sharded store does not beat the single map "
                "(lookups/s %.0f vs %.0f, p99 %.0f vs %.0f ns)\n",
                sharded.lookups_per_s, single.lookups_per_s, sharded.p99_ns,
                single.p99_ns);
    failed = true;
  } else {
    std::printf("\nsharded beats single map: lookups/s %.1fx, p99 %.1fx\n",
                sharded.lookups_per_s / single.lookups_per_s,
                single.p99_ns / sharded.p99_ns);
  }

  std::printf("\nresolution path: MANET caller -> gateway -> provider, "
              "virtual-time setup\n\n");
  std::printf("%-22s | %-9s %10s | %10s\n", "resolution", "calls", "setup ms",
              "events");
  std::printf("-----------------------+----------------------+-----------\n");

  const std::uint64_t seed = 1100;
  auto add_call_row = [&](const std::string& label, const CallRow& r) {
    report.add_row("call/" + label, {{"calls", r.calls},
                                     {"calls_ok", r.calls_ok},
                                     {"setup_ms", r.setup_ms},
                                     {"events", r.events}});
  };
  const struct {
    const char* label;
    scenario::Testbed::Resolution resolution;
  } modes[] = {
      {"registrar-sharded", scenario::Testbed::Resolution::kRegistrar},
      {"p2p-chord", scenario::Testbed::Resolution::kP2p},
  };
  for (const auto& mode : modes) {
    const CallRow at1 = run_calls(mode.resolution, 1, args.quick, seed);
    const CallRow atN = run_calls(mode.resolution, sim_threads, args.quick,
                                  seed);
    print_call_row(mode.label, at1);
    if (!same_run(at1, atN)) {
      std::printf("!! %s diverged between --sim-threads 1 and %u -- "
                  "determinism bug\n", mode.label, sim_threads);
      failed = true;
    }
    add_call_row(mode.label, at1);
    if (at1.calls_ok != at1.calls) {
      std::printf("!! %s: only %d/%d calls established\n", mode.label,
                  at1.calls_ok, at1.calls);
      failed = true;
    }
  }
  std::printf("\nrows byte-identical across --sim-threads (1 vs %u): %s\n",
              sim_threads, failed ? "NO" : "yes");

  std::printf("\nE12: live-ring churn -- lookup success and hops vs churn "
              "rate\n\n");
  std::printf("%8s | %-16s | %9s | %6s\n", "per min", "lookups ok",
              "mean hops", "events");
  std::printf("---------+------------------+-----------+-------\n");
  for (const double rate : {0.0, 2.0, 6.0, 12.0}) {
    const ChurnRow r = run_churn(rate, args.quick, seed + 12);
    print_churn_row(r);
    report.add_row(
        "churn/r" + std::to_string(static_cast<int>(rate)),
        {{"rate_per_min", r.rate},
         {"lookups", static_cast<double>(r.lookups)},
         {"hits", static_cast<double>(r.hits)},
         {"success_pct", 100.0 * static_cast<double>(r.hits) /
                             static_cast<double>(r.lookups ? r.lookups : 1)},
         {"mean_hops", r.mean_hops},
         {"churn_events", static_cast<double>(r.churn_events)}});
    if (rate == 0.0 && r.hits != r.lookups) {
      std::printf("!! zero churn must resolve every lookup (%zu/%zu)\n",
                  r.hits, r.lookups);
      failed = true;
    }
  }

  report.write(args.json_path);
  return failed ? 1 : 0;
}
