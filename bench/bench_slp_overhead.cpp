// Experiment E2: service-discovery control overhead vs network size.
//
// The SIPHoc claim under test: piggybacking service information onto
// routing messages makes MANET SLP (nearly) free -- the only cost is extra
// bytes inside packets the routing protocol sends anyway -- while classic
// multicast SLP [7] and proactive HELLO mapping [13] pay dedicated
// network-wide floods.
//
// Workload: an N-node grid; one service registered at the far corner; 10
// lookups issued from the near corner over 60 s. Reported per mechanism:
//   * dedicated discovery packets put on the air (whole network),
//   * extension bytes piggybacked inside routing packets (SIPHoc only),
//   * lookup success count.
#include "baselines/pico_sip.hpp"
#include "bench_table.hpp"
#include "routing/aodv.hpp"
#include "slp/manet_slp.hpp"
#include "slp/multicast_slp.hpp"

using namespace siphoc;

namespace {

enum class Mechanism { kManetSlp, kMulticastSlp, kPicoSip };

const char* name_of(Mechanism m) {
  switch (m) {
    case Mechanism::kManetSlp: return "MANET-SLP (piggyback)";
    case Mechanism::kMulticastSlp: return "multicast SLP [7]";
    case Mechanism::kPicoSip: return "proactive HELLO [13]";
  }
  return "?";
}

struct Row {
  std::uint64_t discovery_packets = 0;
  std::uint64_t discovery_bytes = 0;
  std::uint64_t piggyback_bytes = 0;
  int lookups_ok = 0;
};

Row run(Mechanism mechanism, std::size_t nodes, std::uint64_t seed) {
  sim::Simulator sim(seed);
  net::RadioMedium medium(sim, net::RadioConfig{});
  const auto positions = net::grid_positions(nodes, 90);

  std::vector<std::unique_ptr<net::Host>> hosts;
  std::vector<std::unique_ptr<routing::Aodv>> daemons;
  std::vector<std::unique_ptr<slp::Directory>> dirs;
  for (std::size_t i = 0; i < nodes; ++i) {
    hosts.push_back(std::make_unique<net::Host>(
        sim, static_cast<net::NodeId>(i), "n" + std::to_string(i)));
    hosts.back()->attach_radio(
        medium,
        net::Address{net::kManetPrefix.value() +
                     static_cast<std::uint32_t>(i) + 1},
        std::make_shared<net::StaticMobility>(positions[i]));
    daemons.push_back(std::make_unique<routing::Aodv>(*hosts.back()));
    switch (mechanism) {
      case Mechanism::kManetSlp:
        dirs.push_back(std::make_unique<slp::ManetSlp>(
            *hosts.back(), *daemons.back(), slp::ManetSlpConfig::for_aodv()));
        break;
      case Mechanism::kMulticastSlp:
        dirs.push_back(std::make_unique<slp::MulticastSlp>(*hosts.back()));
        break;
      case Mechanism::kPicoSip:
        dirs.push_back(
            std::make_unique<baselines::PicoSipDirectory>(*hosts.back()));
        break;
    }
    daemons.back()->start();
  }
  sim.run_for(seconds(2));

  dirs[nodes - 1]->register_service("sip-contact", "bob@x",
                                    hosts[nodes - 1]->manet_address()
                                            .to_string() +
                                        ":5060",
                                    minutes(5));
  sim.run_for(seconds(2));
  medium.reset_stats();
  std::uint64_t routing_ext_before = 0;
  for (const auto& d : daemons) {
    routing_ext_before += d->stats().extension_bytes_sent;
  }

  Row row;
  for (int i = 0; i < 10; ++i) {
    bool done = false, ok = false;
    dirs[0]->lookup("sip-contact", "bob@x", seconds(5),
                    [&](std::optional<slp::ServiceEntry> e) {
                      done = true;
                      ok = e.has_value();
                    });
    const TimePoint deadline = sim.now() + seconds(6);
    while (!done && sim.now() < deadline) sim.run_for(milliseconds(10));
    if (ok) ++row.lookups_ok;
    sim.run_for(seconds(6));  // idle gap: proactive schemes keep paying
  }

  const auto& stats = medium.stats();
  const auto slp_class = stats.by_class.find(net::TrafficClass::kSlp);
  const auto other_class = stats.by_class.find(net::TrafficClass::kOther);
  // Multicast SLP rides the SLP port; the baselines use their own ports
  // (classified kOther). MANET SLP has no dedicated traffic at all.
  if (slp_class != stats.by_class.end()) {
    row.discovery_packets += slp_class->second.frames;
    row.discovery_bytes += slp_class->second.bytes;
  }
  if (other_class != stats.by_class.end()) {
    row.discovery_packets += other_class->second.frames;
    row.discovery_bytes += other_class->second.bytes;
  }
  for (const auto& d : daemons) {
    row.piggyback_bytes += d->stats().extension_bytes_sent;
  }
  row.piggyback_bytes -= routing_ext_before;
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "E2: service discovery overhead vs network size",
      "grid topology, AODV routing underneath all mechanisms; workload =\n"
      "1 registration + 10 lookups + idle gaps over ~60 s virtual time.\n"
      "'disc pkts/bytes' = dedicated discovery frames on the air;\n"
      "'piggy B' = extension bytes inside existing routing packets.");

  std::printf("%6s | %-22s | %10s %12s %10s %6s\n", "nodes", "mechanism",
              "disc pkts", "disc bytes", "piggy B", "ok");
  std::printf("-------+------------------------+-----------+-------------+--"
              "---------+-------\n");
  for (const std::size_t nodes : {4u, 9u, 16u, 25u, 36u, 49u}) {
    for (const auto mechanism :
         {Mechanism::kManetSlp, Mechanism::kMulticastSlp,
          Mechanism::kPicoSip}) {
      const Row row = run(mechanism, nodes, 100 + nodes);
      std::printf("%6zu | %-22s | %10llu %12llu %10llu %5d/10\n", nodes,
                  name_of(mechanism),
                  static_cast<unsigned long long>(row.discovery_packets),
                  static_cast<unsigned long long>(row.discovery_bytes),
                  static_cast<unsigned long long>(row.piggyback_bytes),
                  row.lookups_ok);
    }
    std::printf("-------+------------------------+-----------+-------------+"
                "-----------+-------\n");
  }
  std::printf(
      "\nshape check: MANET SLP rides routing packets (0 dedicated frames;\n"
      "bytes grow only with answered queries); multicast SLP floods per\n"
      "lookup; the proactive HELLO scheme floods every interval whether or\n"
      "not anyone looks anything up.\n");
  bench::write_metrics_sidecar("bench_slp_overhead");
  return 0;
}
