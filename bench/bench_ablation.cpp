// Ablation study of the SIPHoc design choices (DESIGN.md section 5).
//
// Four variants of the middleware run the identical workload (register two
// users on a 5-hop chain, then 5 calls with cold and warm caches):
//   full            -- shipping defaults (reactive plugin)
//   no-piggyback    -- RoutingHandler seam disabled: MANET SLP caches
//                      never fill; shows the mechanism is load-bearing
//   owner-only      -- intermediate nodes never answer queries from cache;
//                      every lookup flood must reach the binding's owner
//   hello-gossip    -- advertisements additionally ride AODV HELLOs
//                      (proactive hybrid): pays bytes on every beacon to
//                      warm caches before anyone asks
#include "bench_table.hpp"
#include "scenario/scenario.hpp"

using namespace siphoc;

namespace {

struct AblationRow {
  int calls_ok = 0;
  double first_setup_ms = -1;   // cold caches
  double later_setup_ms = 0;    // warm caches (mean of the rest)
  std::uint64_t extension_bytes = 0;
  std::uint64_t routing_frames = 0;
};

AblationRow run(const slp::ManetSlpConfig& slp_config, std::uint64_t seed) {
  scenario::Options options;
  options.seed = seed;
  options.nodes = 6;  // 5 hops
  options.topology = scenario::Topology::kChain;
  options.spacing = 100;
  options.routing = RoutingKind::kAodv;
  options.stack.slp = slp_config;

  scenario::Testbed bed(options);
  bed.start();
  voip::SoftPhoneConfig pc;
  pc.username = "alice";
  pc.domain = "voicehoc.ch";
  pc.answer_delay = Duration::zero();
  auto& alice = bed.add_phone(0, pc);
  pc.username = "bob";
  auto& bob = bed.add_phone(5, pc);
  bed.settle(seconds(3));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);
  bed.run_for(seconds(5));

  AblationRow row;
  std::vector<double> later;
  for (int i = 0; i < 5; ++i) {
    const auto call = bed.call_and_wait(alice, "bob@voicehoc.ch", seconds(10));
    if (call.established) {
      ++row.calls_ok;
      if (i == 0) {
        row.first_setup_ms = to_millis(call.setup_time);
      } else {
        later.push_back(to_millis(call.setup_time));
      }
      bed.run_for(seconds(1));
      alice.hang_up(call.call);
    }
    bed.run_for(seconds(4));
  }
  row.later_setup_ms = bench::mean(later);
  for (std::size_t i = 0; i < bed.size(); ++i) {
    row.extension_bytes += bed.stack(i).routing().stats().extension_bytes_sent;
  }
  const auto& by_class = bed.medium().stats().by_class;
  if (const auto it = by_class.find(net::TrafficClass::kRouting);
      it != by_class.end()) {
    row.routing_frames = it->second.frames;
  }
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: SIPHoc design choices (5-hop chain, 2 users, 5 calls)",
      "cold = first call after registration; warm = subsequent calls;\n"
      "ext B = piggybacked bytes across all nodes over the whole run.");

  struct Variant {
    const char* name;
    slp::ManetSlpConfig config;
  };
  std::vector<Variant> variants;
  variants.push_back({"full (default)", slp::ManetSlpConfig::for_aodv()});
  {
    auto c = slp::ManetSlpConfig::for_aodv();
    c.piggyback_enabled = false;
    variants.push_back({"no-piggyback", c});
  }
  {
    auto c = slp::ManetSlpConfig::for_aodv();
    c.answer_from_cache = false;
    variants.push_back({"owner-only answers", c});
  }
  {
    auto c = slp::ManetSlpConfig::for_aodv();
    c.advertise_on_hello = true;
    variants.push_back({"hello-gossip", c});
  }

  std::printf("%-20s | %6s | %9s | %9s | %8s | %9s\n", "variant", "ok",
              "cold ms", "warm ms", "ext B", "rt frames");
  std::printf("---------------------+--------+-----------+-----------+------"
              "----+-----------\n");
  for (const auto& v : variants) {
    const auto row = run(v.config, 2100);
    std::printf("%-20s | %4d/5 | %9.1f | %9.1f | %8llu | %9llu\n", v.name,
                row.calls_ok, row.first_setup_ms, row.later_setup_ms,
                static_cast<unsigned long long>(row.extension_bytes),
                static_cast<unsigned long long>(row.routing_frames));
  }
  std::printf(
      "\nreading: 'no-piggyback' fails every call -- the piggyback seam IS\n"
      "the system. 'owner-only' ties 'full' on this single-owner workload;\n"
      "it pays full-depth floods where caches could answer closer (visible\n"
      "with more callers). 'hello-gossip' nearly triples extension bytes\n"
      "for no setup win: AODV HELLOs only reach 1 hop and only carry local\n"
      "entries, so gossip cannot warm distant caches -- a negative result\n"
      "that justifies the default (gossip off, on-demand floods on).\n");
  return 0;
}
