// Experiment E10: city-scale single-simulation parallelism.
//
// E9 (bench_scalability) fans *independent* cells across cores; this bench
// takes the other axis the paper's deferred evaluation would have needed: a
// single simulation too big for one event loop -- 1,000+ OLSR nodes at
// constant density -- sharded into spatial region lanes that execute
// concurrently inside a conservative lookahead window (the per-hop MAC
// latency; docs/ARCHITECTURE.md).
//
// Three runs of the identical scenario:
//   regions 0               -- the classic sequential kernel (baseline)
//   regions 8, 1 thread     -- sharded content, inline execution
//   regions 8, N threads    -- sharded content, worker-pool execution
// The two sharded runs must agree byte for byte (rows + merged metrics);
// the bench exits non-zero if they diverge. Wall-clock for all three goes
// to stdout and --json; on a multi-core host the last line is the
// single-simulation speedup, on a single-core host it records overhead.
#include <cmath>
#include <cstring>

#include "bench_table.hpp"
#include "scenario/scenario.hpp"

using namespace siphoc;

namespace {

struct CityRow {
  int pairs = 0;
  int registered = 0;
  int calls_ok = 0;
  double setup_ms = 0;
  double events = 0;
  double windows = 0;      // lookahead windows executed (0 when regions=0)
  double serialized = 0;   // windows forced sequential by scenario traffic
  double wall_ms = 0;
  std::string metrics;     // merged registry snapshot (identity check)
};

CityRow run(std::size_t nodes, std::uint32_t regions, unsigned sim_threads,
            std::uint64_t seed) {
  SimContext context;
  scenario::Options options;
  options.context = &context;
  options.seed = seed;
  options.nodes = nodes;
  options.topology = scenario::Topology::kRandomArea;
  options.area = 75.0 * std::sqrt(static_cast<double>(nodes));
  options.routing = RoutingKind::kOlsr;
  options.sim_regions = regions;
  options.sim_threads = sim_threads;

  const bench::WallTimer wall;
  scenario::Testbed bed(options);
  bed.start();

  // A sampled workload (not N/5 pairs: at city scale the interesting cost
  // is the control plane, and a fixed call sample keeps the workload
  // comparable across sizes): 8 corner-to-corner pairs.
  const int pairs = 8;
  std::vector<voip::SoftPhone*> callers;
  for (int p = 0; p < pairs; ++p) {
    voip::SoftPhoneConfig pc;
    pc.domain = "voicehoc.ch";
    pc.answer_delay = Duration::zero();
    pc.username = "caller" + std::to_string(p);
    callers.push_back(&bed.add_phone(static_cast<std::size_t>(p), pc));
    pc.username = "callee" + std::to_string(p);
    bed.add_phone(nodes - 1 - static_cast<std::size_t>(p), pc);
  }
  bed.settle(seconds(25));  // OLSR convergence at diameter ~15 hops

  CityRow row;
  row.pairs = pairs;
  for (int p = 0; p < pairs; ++p) {
    if (bed.register_and_wait(*callers[static_cast<std::size_t>(p)])) {
      ++row.registered;
    }
    if (bed.register_and_wait(bed.phone(2 * static_cast<std::size_t>(p) + 1))) {
      ++row.registered;
    }
  }
  bed.run_for(seconds(5));  // let the piggybacked bindings flood out

  std::vector<double> setups;
  for (int p = 0; p < pairs; ++p) {
    const auto call = bed.call_and_wait(
        *callers[static_cast<std::size_t>(p)],
        "callee" + std::to_string(p) + "@voicehoc.ch", seconds(15));
    if (call.established) {
      ++row.calls_ok;
      setups.push_back(to_millis(call.setup_time));
    }
  }
  bed.run_for(seconds(5));  // concurrent voice

  bed.finalize_metrics();
  row.setup_ms = bench::mean(setups);
  row.events = static_cast<double>(bed.sim().events_executed());
  row.windows = static_cast<double>(bed.sim().windows_run());
  row.serialized = static_cast<double>(bed.sim().windows_serialized());
  row.metrics = bed.ctx().metrics().to_json();
  row.wall_ms = wall.elapsed_ms();
  return row;
}

/// Everything except wall time (which is the one legitimately
/// nondeterministic column) must match between the two sharded runs.
bool same_simulation(const CityRow& a, const CityRow& b) {
  return a.pairs == b.pairs && a.registered == b.registered &&
         a.calls_ok == b.calls_ok && a.setup_ms == b.setup_ms &&
         a.events == b.events && a.windows == b.windows &&
         a.serialized == b.serialized && a.metrics == b.metrics;
}

void print_row(const char* label, const CityRow& r) {
  std::printf("%-22s | %2d/%-2d %4d/%-2d %8.1fms | %10.0f %8.0f %6.1f%% | %9.1f\n",
              label, r.registered, 2 * r.pairs, r.calls_ok, r.pairs,
              r.setup_ms, r.events, r.windows,
              r.windows > 0 ? 100.0 * r.serialized / r.windows : 0.0,
              r.wall_ms);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const std::size_t nodes = args.quick ? 120 : 1000;
  const std::uint32_t regions = args.regions > 0 ? args.regions : 8;
  const unsigned threads = args.sim_threads > 1 ? args.sim_threads : 2;
  const std::uint64_t seed = 9000 + nodes;

  bench::print_header(
      "E10: city-scale single-simulation parallelism",
      "One OLSR MANET at constant density, sharded into spatial region\n"
      "lanes (conservative lookahead = MAC latency). The sharded rows must\n"
      "be byte-identical regardless of --sim-threads; wall time is the one\n"
      "honest wall-clock column.");

  std::printf("%zu nodes, %u regions, lookahead = MAC latency\n\n", nodes,
              regions);
  std::printf("%-22s | %-5s %-7s %-10s | %10s %8s %7s | %9s\n", "kernel",
              "reg", "calls", "setup", "events", "windows", "serial",
              "wall ms");
  std::printf("-----------------------+----------------------------+---------"
              "--------------------+----------\n");

  const CityRow sequential = run(nodes, 0, 1, seed);
  print_row("sequential (regions 0)", sequential);
  const CityRow sharded1 = run(nodes, regions, 1, seed);
  print_row("sharded, 1 thread", sharded1);
  const CityRow shardedN = run(nodes, regions, threads, seed);
  {
    char label[32];
    std::snprintf(label, sizeof label, "sharded, %u threads", threads);
    print_row(label, shardedN);
  }

  if (!same_simulation(sharded1, shardedN)) {
    std::printf("\n!! sharded runs diverged between --sim-threads 1 and %u "
                "-- determinism bug\n", threads);
    return 1;
  }
  std::printf("\nsharded rows byte-identical across thread counts: yes\n");
  std::printf("single-simulation wall ratio (sharded@1 / sharded@%u): %.2f\n",
              threads, shardedN.wall_ms > 0
                           ? sharded1.wall_ms / shardedN.wall_ms
                           : 0.0);

  bench::JsonReport report("bench_cityscale");
  auto add = [&](const std::string& label, const CityRow& r,
                 double used_regions, double used_threads) {
    report.add_row(label,
                   {{"nodes", static_cast<double>(nodes)},
                    {"regions", used_regions},
                    {"sim_threads", used_threads},
                    {"registered", r.registered},
                    {"calls_ok", r.calls_ok},
                    {"pairs", r.pairs},
                    {"setup_ms", r.setup_ms},
                    {"events", r.events},
                    {"windows", r.windows},
                    {"windows_serialized", r.serialized},
                    {"wall_ms", r.wall_ms}});
  };
  add("olsr/" + std::to_string(nodes) + "/seq", sequential, 0, 1);
  add("olsr/" + std::to_string(nodes) + "/sharded@1", sharded1, regions, 1);
  add("olsr/" + std::to_string(nodes) + "/sharded@" + std::to_string(threads),
      shardedN, regions, threads);
  report.write(args.json_path);
  return 0;
}
