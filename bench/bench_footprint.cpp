// Experiment E7: footprint.
//
// The paper (section 4): the C rewrite of the middleware "has a footprint
// of 1.2M. The system includes four services (proxy, Gateway Provider,
// Connection Provider and MANET SLP) ... This fits well into the flash
// memory of the iPAQ, which is 32M."
//
// Two measurements here:
//   * code footprint: the size of this statically linked binary, which
//     contains the entire middleware (all four services + routing + SIP +
//     RTP stacks) -- the analog of the paper's flash-footprint number;
//   * runtime state: bytes of live protocol state per component on a busy
//     25-node deployment (bindings, SLP caches, routing tables, FIB).
#include <sys/stat.h>

#include <fstream>
#include <sstream>

#include "bench_table.hpp"
#include "scenario/scenario.hpp"

using namespace siphoc;

namespace {

std::size_t entry_bytes(const slp::ServiceEntry& e) {
  return sizeof(e) + e.type.size() + e.key.size() + e.value.size();
}

struct StateReport {
  std::size_t slp_bytes = 0;
  std::size_t slp_entries = 0;
  std::size_t proxy_bindings = 0;
  std::size_t proxy_bytes = 0;
  std::size_t fib_routes = 0;
  std::size_t fib_bytes = 0;
};

/// Sum of this binary's loadable segments (text+rodata+data as mapped),
/// i.e. what would actually occupy device flash/RAM -- the build's debug
/// info inflates the on-disk file but would be stripped for an iPAQ image.
std::size_t mapped_binary_bytes() {
  std::ifstream maps("/proc/self/maps");
  std::string line;
  std::size_t total = 0;
  while (std::getline(maps, line)) {
    if (line.find("bench_footprint") == std::string::npos) continue;
    std::istringstream is(line);
    std::string range;
    is >> range;
    const auto dash = range.find('-');
    const auto lo = std::stoull(range.substr(0, dash), nullptr, 16);
    const auto hi = std::stoull(range.substr(dash + 1), nullptr, 16);
    total += hi - lo;
  }
  return total;
}

StateReport measure_node(NodeStack& stack) {
  StateReport report;
  for (const auto& entry : stack.slp().snapshot()) {
    ++report.slp_entries;
    report.slp_bytes += entry_bytes(entry);
  }
  report.proxy_bindings = stack.proxy().binding_count();
  report.proxy_bytes =
      report.proxy_bindings * (sizeof(SiphocProxy::Binding) + 32);
  report.fib_routes = stack.host().routes().size();
  report.fib_bytes = report.fib_routes * sizeof(net::RouteEntry);
  return report;
}

}  // namespace

int main(int, char** argv) {
  bench::print_header(
      "E7: footprint (paper section 4: 1.2 MB middleware on a 32 MB iPAQ)",
      "code footprint = this statically linked binary (entire middleware);\n"
      "state footprint = live protocol state on a loaded 25-node testbed.");

  struct stat st{};
  if (stat(argv[0], &st) == 0) {
    std::printf(
        "code footprint: %.2f MB loadable segments (text+rodata+data),\n"
        "  %.2f MB on disk incl. debug info; statically linked, includes\n"
        "  routing + SLP + SIP + RTP + tunnel + proxy\n"
        "paper's figure: 1.2 MB for the 4 services + ~20 shared libs\n\n",
        static_cast<double>(mapped_binary_bytes()) / (1024.0 * 1024.0),
        static_cast<double>(st.st_size) / (1024.0 * 1024.0));
  }

  scenario::Options options;
  options.nodes = 25;
  options.topology = scenario::Topology::kGrid;
  options.spacing = 90;
  options.routing = RoutingKind::kOlsr;  // proactive: fullest caches/FIBs
  scenario::Testbed bed(options);
  bed.start();
  std::vector<voip::SoftPhone*> phones;
  for (std::size_t i = 0; i < 10; ++i) {
    phones.push_back(&bed.add_phone(i, "user" + std::to_string(i)));
  }
  bed.settle(seconds(15));
  for (auto* p : phones) bed.register_and_wait(*p);
  bed.run_for(seconds(20));  // let advertisements converge everywhere

  std::printf("runtime state per node (25-node OLSR grid, 10 registered "
              "users):\n");
  std::printf("%5s | %10s %10s | %9s %9s | %7s %9s\n", "node", "slp ent",
              "slp B", "bindings", "proxy B", "routes", "fib B");
  std::printf("------+-----------------------+---------------------+--------"
              "-----------\n");
  std::size_t total = 0;
  for (const std::size_t node : {0u, 6u, 12u, 18u, 24u}) {
    const auto r = measure_node(bed.stack(node));
    total += r.slp_bytes + r.proxy_bytes + r.fib_bytes;
    std::printf("%5zu | %10zu %10zu | %9zu %9zu | %7zu %9zu\n", node,
                r.slp_entries, r.slp_bytes, r.proxy_bindings, r.proxy_bytes,
                r.fib_routes, r.fib_bytes);
  }
  std::printf(
      "\nmean state per sampled node: %.1f KB -- protocol state is\n"
      "kilobytes, i.e. negligible next to the code footprint, matching the\n"
      "paper's 'fits easily on a handheld' conclusion.\n",
      static_cast<double>(total) / 5.0 / 1024.0);
  return 0;
}
