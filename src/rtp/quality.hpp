// Voice quality assessment: RFC 3550 receiver statistics and the ITU-T
// G.107 E-model mapped to a MOS score.
//
// The paper demos calls but never quantifies audio quality; bench E6 uses
// this to report what a listener would experience over 1..N wireless hops
// (the substitute for "we talked on iPAQs and it worked").
#pragma once

#include <cstdint>

#include "common/metrics.hpp"
#include "common/time.hpp"
#include "rtp/rtp.hpp"

namespace siphoc::rtp {

/// Interarrival jitter and loss bookkeeping per RFC 3550 6.4 / A.8.
class ReceiverStats {
 public:
  /// Publishes this receiver's counters/gauges as series on `registry`
  /// labeled with `node` (component "rtp"). Unbound stats keep working
  /// standalone (unit tests construct them without a host); binding is how
  /// the RTP session reports into its simulation's observability surface
  /// instead of duplicating the bookkeeping.
  void bind_metrics(MetricsRegistry& registry, std::string_view node);

  void on_packet(const RtpPacket& packet, TimePoint arrival, TimePoint sent);

  std::uint64_t received() const { return received_; }
  /// Expected = highest seq - first seq + 1 (RFC A.3).
  std::uint64_t expected() const;
  std::uint64_t lost() const;
  double loss_fraction() const;
  /// Smoothed interarrival jitter (RFC 6.4.1), in milliseconds.
  double jitter_ms() const { return jitter_us_ / 1000.0; }
  double mean_delay_ms() const;
  double max_delay_ms() const { return to_millis(max_delay_); }

  /// RFC 3550 A.3: fraction (/256) of packets lost since the previous call
  /// (RTCP report interval accounting); resets the interval window.
  std::uint8_t take_interval_fraction_lost();
  std::uint32_t extended_highest_seq() const;
  /// Jitter in RTP timestamp units (8 kHz clock) for RTCP report blocks.
  std::uint32_t jitter_rtp_units() const {
    return static_cast<std::uint32_t>(jitter_us_ * 8.0 / 1000.0);
  }

 private:
  bool first_ = true;
  std::uint16_t first_seq_ = 0;
  std::uint16_t highest_seq_ = 0;
  std::uint32_t seq_cycles_ = 0;
  std::uint64_t received_ = 0;
  double jitter_us_ = 0;
  Duration last_transit_{};
  Duration total_delay_{};
  Duration max_delay_{};
  std::uint64_t expected_prior_ = 0;
  std::uint64_t received_prior_ = 0;

  Counter* rx_counter_ = nullptr;
  Counter* reordered_counter_ = nullptr;
  Gauge* lost_gauge_ = nullptr;
  Gauge* jitter_gauge_ = nullptr;
};

/// E-model inputs: end-to-end (mouth-to-ear) delay and effective packet
/// loss after the jitter buffer.
struct QualityInput {
  double one_way_delay_ms = 0;
  double loss_percent = 0;  // network loss + late drops
};

struct QualityScore {
  double r_factor = 0;  // 0..100
  double mos = 1.0;     // 1..4.5
};

/// Simplified G.107 for G.711 without PLC (Ie=0, Bpl=25.1).
QualityScore score_call(const QualityInput& input);

}  // namespace siphoc::rtp
