// RTCP (RFC 3550 section 6, SR/RR subset).
//
// Each voice session periodically sends a Sender Report (if it sent media
// since the last report) or Receiver Report, carrying one report block per
// received stream: fraction lost, cumulative loss, extended highest
// sequence, interarrival jitter. This gives each phone the *far-end* view
// of its own stream -- what the listener is actually experiencing -- which
// the session exposes alongside its local receive statistics.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/time.hpp"

namespace siphoc::rtp {

inline constexpr Duration kRtcpInterval = seconds(5);

struct ReportBlock {
  std::uint32_t ssrc = 0;           // stream being reported on
  std::uint8_t fraction_lost = 0;   // fixed point /256 since last report
  std::uint32_t cumulative_lost = 0;
  std::uint32_t highest_seq = 0;    // extended highest sequence received
  std::uint32_t jitter = 0;         // in RTP timestamp units
};

struct SenderInfo {
  std::uint64_t ntp_time = 0;  // virtual microseconds in this emulation
  std::uint32_t rtp_timestamp = 0;
  std::uint32_t packet_count = 0;
  std::uint32_t octet_count = 0;
};

/// One RTCP packet: SR (with sender info) or RR.
struct RtcpPacket {
  bool is_sender_report = false;
  std::uint32_t sender_ssrc = 0;
  SenderInfo sender_info;  // valid when is_sender_report
  std::vector<ReportBlock> reports;

  Bytes encode() const;
  static Result<RtcpPacket> decode(std::span<const std::uint8_t> data);
};

/// Converts RFC 3550 fraction_lost (/256) to percent.
inline double fraction_lost_percent(std::uint8_t fraction) {
  return 100.0 * static_cast<double>(fraction) / 256.0;
}

}  // namespace siphoc::rtp
