// RTP session: binds a UDP port on the host, streams voice frames to the
// remote endpoint negotiated via SDP, and collects receive-side quality
// statistics through the jitter buffer and E-model.
#pragma once

#include "common/logging.hpp"
#include "net/host.hpp"
#include "rtp/jitter_buffer.hpp"
#include "rtp/quality.hpp"
#include "rtp/rtcp.hpp"
#include "rtp/voice_source.hpp"

namespace siphoc::rtp {

struct SessionConfig {
  std::uint16_t local_port = net::kRtpPortBase;
  net::Endpoint remote;
  TalkSpurtConfig voice;
  Duration playout_delay = milliseconds(60);
};

class Session {
 public:
  Session(net::Host& host, SessionConfig config);
  ~Session();

  void start();
  void stop();
  bool running() const { return running_; }

  struct Report {
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t packets_lost = 0;     // never arrived
    std::uint64_t late_drops = 0;       // arrived past playout deadline
    double network_loss_percent = 0;
    double effective_loss_percent = 0;  // network + late, what the ear hears
    double jitter_ms = 0;
    double mean_delay_ms = 0;
    double max_delay_ms = 0;
    QualityScore quality;
    /// Far-end view of OUR stream, from the peer's RTCP report blocks
    /// (what the listener on the other side is experiencing).
    std::optional<double> remote_loss_percent;
    std::optional<double> remote_jitter_ms;
  };
  Report report() const;

  std::uint64_t rtcp_sent() const { return rtcp_sent_; }
  std::uint64_t rtcp_received() const { return rtcp_received_; }

 private:
  void on_frame_timer();
  void on_datagram(const net::Datagram& d);
  void on_playout_timer();
  void on_rtcp_timer();
  void on_rtcp_datagram(const net::Datagram& d);

  net::Host& host_;
  SessionConfig config_;
  Logger log_;
  VoiceSource source_;
  JitterBuffer jitter_;
  ReceiverStats stats_;
  bool running_ = false;

  std::uint32_t ssrc_;
  std::uint16_t seq_;
  std::uint32_t timestamp_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t sent_octets_ = 0;
  std::uint64_t sent_at_last_rtcp_ = 0;
  std::uint64_t rtcp_sent_ = 0;
  std::uint64_t rtcp_received_ = 0;
  std::uint32_t remote_ssrc_ = 0;
  std::optional<ReportBlock> last_remote_report_;
  sim::PeriodicTimer frame_timer_;
  sim::PeriodicTimer playout_timer_;
  sim::PeriodicTimer rtcp_timer_;
};

}  // namespace siphoc::rtp
