#include "rtp/session.hpp"

namespace siphoc::rtp {

Session::Session(net::Host& host, SessionConfig config)
    : host_(host),
      config_(config),
      log_("rtp", host.name()),
      source_(config.voice, host.rng().fork()),
      jitter_(config.playout_delay),
      ssrc_(host.rng().uniform_int(1, 0xffffffff)),
      seq_(static_cast<std::uint16_t>(host.rng().uniform_int(0, 0xffff))) {
  stats_.bind_metrics(host.sim().ctx().metrics(), host.name());
  jitter_.bind_metrics(host.sim().ctx().metrics(), host.name());
}

Session::~Session() { stop(); }

void Session::start() {
  if (running_) return;
  running_ = true;
  host_.bind(config_.local_port,
             [this](const net::Datagram& d, const net::RxInfo&) {
               on_datagram(d);
             });
  frame_timer_.start(host_.sim(), kFrameInterval,
                     [this] { on_frame_timer(); });
  playout_timer_.start(host_.sim(), kFrameInterval / 2,
                       [this] { on_playout_timer(); });
  // RTCP on the next odd port, per RTP convention.
  host_.bind(static_cast<std::uint16_t>(config_.local_port + 1),
             [this](const net::Datagram& d, const net::RxInfo&) {
               on_rtcp_datagram(d);
             });
  rtcp_timer_.start(host_.sim(), kRtcpInterval, [this] { on_rtcp_timer(); },
                    milliseconds(500));
}

void Session::stop() {
  if (!running_) return;
  running_ = false;
  frame_timer_.stop();
  playout_timer_.stop();
  rtcp_timer_.stop();
  host_.unbind(config_.local_port);
  host_.unbind(static_cast<std::uint16_t>(config_.local_port + 1));
}

void Session::on_frame_timer() {
  timestamp_ += kTimestampPerFrame;
  const auto tick = source_.tick(host_.sim().now());
  if (!tick.emit) return;
  const RtpPacket packet = make_voice_packet(
      ++seq_, timestamp_, ssrc_, tick.spurt_start, host_.sim().now());
  ++sent_;
  sent_octets_ += packet.payload.size();
  host_.sim().ctx().metrics()
      .counter("rtp.packets_tx_total", host_.name(), "rtp")
      .add();
  host_.send_udp(config_.local_port, config_.remote, packet.encode());
}

void Session::on_rtcp_timer() {
  RtcpPacket rtcp;
  rtcp.sender_ssrc = ssrc_;
  rtcp.is_sender_report = sent_ > sent_at_last_rtcp_;
  sent_at_last_rtcp_ = sent_;
  if (rtcp.is_sender_report) {
    rtcp.sender_info.ntp_time = static_cast<std::uint64_t>(
        host_.sim().now().time_since_epoch().count());
    rtcp.sender_info.rtp_timestamp = timestamp_;
    rtcp.sender_info.packet_count = static_cast<std::uint32_t>(sent_);
    rtcp.sender_info.octet_count = static_cast<std::uint32_t>(sent_octets_);
  }
  if (stats_.received() > 0) {
    ReportBlock block;
    block.ssrc = remote_ssrc_;
    block.fraction_lost = stats_.take_interval_fraction_lost();
    block.cumulative_lost = static_cast<std::uint32_t>(stats_.lost());
    block.highest_seq = stats_.extended_highest_seq();
    block.jitter = stats_.jitter_rtp_units();
    rtcp.reports.push_back(block);
  }
  ++rtcp_sent_;
  host_.send_udp(static_cast<std::uint16_t>(config_.local_port + 1),
                 {config_.remote.address,
                  static_cast<std::uint16_t>(config_.remote.port + 1)},
                 rtcp.encode());
}

void Session::on_rtcp_datagram(const net::Datagram& d) {
  auto packet = RtcpPacket::decode(d.payload);
  if (!packet) {
    log_.warn("bad RTCP packet: ", packet.error().message);
    return;
  }
  ++rtcp_received_;
  // Our stream as heard at the far end.
  for (const auto& block : packet->reports) {
    if (block.ssrc == ssrc_ || block.ssrc == 0) {
      last_remote_report_ = block;
    }
  }
}

void Session::on_datagram(const net::Datagram& d) {
  auto packet = RtpPacket::decode(d.payload);
  if (!packet) {
    log_.warn("bad RTP packet: ", packet.error().message);
    return;
  }
  auto sent = voice_packet_sent_time(*packet);
  if (!sent) return;
  remote_ssrc_ = packet->ssrc;
  const TimePoint arrival = host_.sim().now();
  stats_.on_packet(*packet, arrival, *sent);
  jitter_.insert(*packet, arrival, *sent);
}

void Session::on_playout_timer() {
  // Drain everything due; the "audio device" is a counter.
  while (jitter_.pop_due(host_.sim().now())) {
  }
}

Session::Report Session::report() const {
  Report rep;
  rep.packets_sent = sent_;
  rep.packets_received = stats_.received();
  rep.packets_lost = stats_.lost();
  rep.late_drops = jitter_.late_drops();
  rep.network_loss_percent = stats_.loss_fraction() * 100.0;
  const auto expected = stats_.expected();
  rep.effective_loss_percent =
      expected == 0 ? 0.0
                    : 100.0 *
                          static_cast<double>(stats_.lost() +
                                              jitter_.late_drops()) /
                          static_cast<double>(expected);
  rep.jitter_ms = stats_.jitter_ms();
  rep.mean_delay_ms = stats_.mean_delay_ms();
  rep.max_delay_ms = stats_.max_delay_ms();
  rep.quality = score_call(
      {rep.mean_delay_ms + to_millis(jitter_.playout_delay()),
       rep.effective_loss_percent});
  if (last_remote_report_) {
    rep.remote_loss_percent =
        fraction_lost_percent(last_remote_report_->fraction_lost);
    rep.remote_jitter_ms =
        static_cast<double>(last_remote_report_->jitter) / 8.0;
  }
  return rep;
}

}  // namespace siphoc::rtp
