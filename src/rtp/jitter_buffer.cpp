#include "rtp/jitter_buffer.hpp"

namespace siphoc::rtp {

bool JitterBuffer::insert(const RtpPacket& packet, TimePoint arrival,
                          TimePoint sent) {
  const TimePoint playout = sent + playout_delay_;
  if (arrival > playout) {
    ++late_drops_;
    return false;
  }
  if (queue_.contains(packet.sequence)) {
    ++duplicate_drops_;
    return false;
  }
  // A frame older than the most recently played one is also too late.
  if (last_played_seq_ &&
      static_cast<std::int16_t>(packet.sequence - *last_played_seq_) <= 0) {
    ++late_drops_;
    return false;
  }
  queue_[packet.sequence] = Slot{packet, playout};
  return true;
}

std::optional<RtpPacket> JitterBuffer::pop_due(TimePoint now) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->second.playout <= now) {
      RtpPacket packet = std::move(it->second.packet);
      last_played_seq_ = packet.sequence;
      queue_.erase(it);
      ++played_;
      return packet;
    }
  }
  return std::nullopt;
}

}  // namespace siphoc::rtp
