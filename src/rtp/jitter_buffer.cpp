#include "rtp/jitter_buffer.hpp"

namespace siphoc::rtp {

void JitterBuffer::bind_metrics(MetricsRegistry& r, std::string_view node) {
  late_counter_ = &r.counter("rtp.late_drops_total", node, "rtp");
  duplicate_counter_ = &r.counter("rtp.duplicate_drops_total", node, "rtp");
  played_counter_ = &r.counter("rtp.played_total", node, "rtp");
}

bool JitterBuffer::insert(const RtpPacket& packet, TimePoint arrival,
                          TimePoint sent) {
  const TimePoint playout = sent + playout_delay_;
  if (arrival > playout) {
    ++late_drops_;
    if (late_counter_ != nullptr) late_counter_->add();
    return false;
  }
  if (queue_.contains(packet.sequence)) {
    ++duplicate_drops_;
    if (duplicate_counter_ != nullptr) duplicate_counter_->add();
    return false;
  }
  // A frame older than the most recently played one is also too late.
  if (last_played_seq_ &&
      static_cast<std::int16_t>(packet.sequence - *last_played_seq_) <= 0) {
    ++late_drops_;
    if (late_counter_ != nullptr) late_counter_->add();
    return false;
  }
  queue_[packet.sequence] = Slot{packet, playout};
  return true;
}

std::optional<RtpPacket> JitterBuffer::pop_due(TimePoint now) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->second.playout <= now) {
      RtpPacket packet = std::move(it->second.packet);
      last_played_seq_ = packet.sequence;
      queue_.erase(it);
      ++played_;
      if (played_counter_ != nullptr) played_counter_->add();
      return packet;
    }
  }
  return std::nullopt;
}

}  // namespace siphoc::rtp
