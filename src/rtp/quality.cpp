#include "rtp/quality.hpp"

#include <algorithm>
#include <cmath>

namespace siphoc::rtp {

void ReceiverStats::bind_metrics(MetricsRegistry& r, std::string_view node) {
  rx_counter_ = &r.counter("rtp.packets_rx_total", node, "rtp");
  reordered_counter_ = &r.counter("rtp.packets_reordered_total", node, "rtp");
  lost_gauge_ = &r.gauge("rtp.packets_lost", node, "rtp");
  jitter_gauge_ = &r.gauge("rtp.jitter_ms", node, "rtp");
}

void ReceiverStats::on_packet(const RtpPacket& packet, TimePoint arrival,
                              TimePoint sent) {
  const Duration transit = arrival - sent;
  if (first_) {
    first_ = false;
    first_seq_ = packet.sequence;
    highest_seq_ = packet.sequence;
    last_transit_ = transit;
  } else {
    // Track the extended highest sequence with wraparound (RFC A.1).
    const auto delta =
        static_cast<std::int16_t>(packet.sequence - highest_seq_);
    if (delta > 0) {
      if (packet.sequence < highest_seq_) ++seq_cycles_;
      highest_seq_ = packet.sequence;
    } else if (reordered_counter_ != nullptr) {
      reordered_counter_->add();
    }
    // Interarrival jitter (RFC 6.4.1): J += (|D| - J) / 16.
    const double d = std::abs(
        std::chrono::duration<double, std::micro>(transit - last_transit_)
            .count());
    jitter_us_ += (d - jitter_us_) / 16.0;
    last_transit_ = transit;
  }
  ++received_;
  total_delay_ += transit;
  max_delay_ = std::max(max_delay_, transit);
  if (rx_counter_ != nullptr) {
    rx_counter_->add();
    lost_gauge_->set(static_cast<double>(lost()));
    jitter_gauge_->set(jitter_us_ / 1000.0);
  }
}

std::uint64_t ReceiverStats::expected() const {
  if (received_ == 0) return 0;
  const std::uint64_t extended =
      (static_cast<std::uint64_t>(seq_cycles_) << 16) | highest_seq_;
  return extended - first_seq_ + 1;
}

std::uint64_t ReceiverStats::lost() const {
  const auto exp = expected();
  return exp > received_ ? exp - received_ : 0;
}

double ReceiverStats::loss_fraction() const {
  const auto exp = expected();
  return exp == 0 ? 0.0 : static_cast<double>(lost()) / static_cast<double>(exp);
}

std::uint8_t ReceiverStats::take_interval_fraction_lost() {
  const std::uint64_t expected_now = expected();
  const std::uint64_t expected_interval = expected_now - expected_prior_;
  const std::uint64_t received_interval = received_ - received_prior_;
  expected_prior_ = expected_now;
  received_prior_ = received_;
  if (expected_interval == 0 || received_interval >= expected_interval) {
    return 0;
  }
  const std::uint64_t lost_interval = expected_interval - received_interval;
  return static_cast<std::uint8_t>((lost_interval << 8) / expected_interval);
}

std::uint32_t ReceiverStats::extended_highest_seq() const {
  return (seq_cycles_ << 16) | highest_seq_;
}

double ReceiverStats::mean_delay_ms() const {
  if (received_ == 0) return 0;
  return to_millis(total_delay_) / static_cast<double>(received_);
}

QualityScore score_call(const QualityInput& input) {
  // G.107 default-parameter simplification: R = Ro - Id - Ie,eff with
  // Ro - (Is and friends) folded into the 93.2 constant.
  const double d = input.one_way_delay_ms;
  double id = 0.024 * d;
  if (d > 177.3) id += 0.11 * (d - 177.3);

  // G.711 without packet loss concealment: Ie = 0, Bpl = 25.1.
  const double ppl = std::clamp(input.loss_percent, 0.0, 100.0);
  const double ie_eff = 0.0 + (95.0 - 0.0) * ppl / (ppl + 25.1);

  QualityScore score;
  score.r_factor = std::clamp(93.2 - id - ie_eff, 0.0, 100.0);
  const double r = score.r_factor;
  if (r <= 0) {
    score.mos = 1.0;
  } else if (r >= 100) {
    score.mos = 4.5;
  } else {
    score.mos = 1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6;
  }
  score.mos = std::clamp(score.mos, 1.0, 4.5);
  return score;
}

}  // namespace siphoc::rtp
