// RTP packet format (RFC 3550, fixed header, no CSRC/extensions).
//
// Voice frames travel as real RTP packets over the emulated MANET so the
// voice-quality bench (E6) measures genuine per-packet loss, reordering and
// jitter as produced by multihop forwarding, route breaks and repairs.
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/time.hpp"

namespace siphoc::rtp {

inline constexpr std::uint8_t kPayloadPcmu = 0;  // G.711 u-law
inline constexpr std::size_t kPcmuFrameBytes = 160;  // 20 ms @ 8 kHz
inline constexpr Duration kFrameInterval = milliseconds(20);
inline constexpr std::uint32_t kTimestampPerFrame = 160;  // 8 kHz clock

struct RtpPacket {
  std::uint8_t payload_type = kPayloadPcmu;
  bool marker = false;  // set on the first packet of a talk spurt
  std::uint16_t sequence = 0;
  std::uint32_t timestamp = 0;  // media clock (8 kHz for PCMU)
  std::uint32_t ssrc = 0;
  Bytes payload;

  Bytes encode() const;
  static Result<RtpPacket> decode(std::span<const std::uint8_t> data);

  std::size_t wire_size() const { return 12 + payload.size(); }
};

/// The emulation embeds the virtual send time in the first 8 payload bytes
/// (the rest is synthetic audio), giving the receiver exact one-way delay
/// -- the testbed equivalent of NTP-synchronized hosts.
RtpPacket make_voice_packet(std::uint16_t sequence, std::uint32_t timestamp,
                            std::uint32_t ssrc, bool marker, TimePoint sent);
Result<TimePoint> voice_packet_sent_time(const RtpPacket& packet);

}  // namespace siphoc::rtp
