#include "rtp/voice_source.hpp"

namespace siphoc::rtp {

VoiceSource::Tick VoiceSource::tick(TimePoint now) {
  if (config_.always_on) {
    const bool first = !started_;
    started_ = true;
    return Tick{true, first};
  }
  bool spurt_start = false;
  if (!started_ || now >= state_until_) {
    if (!started_ || !talking_) {
      talking_ = true;
      spurt_start = true;
      state_until_ = now + rng_.exponential(config_.mean_talk);
    } else {
      talking_ = false;
      state_until_ = now + rng_.exponential(config_.mean_silence);
    }
    started_ = true;
  }
  return Tick{talking_, spurt_start};
}

}  // namespace siphoc::rtp
