// Synthetic voice source: G.711 frames shaped by an on/off talk-spurt
// model (exponential talk ~1.0 s / silence ~1.35 s, the classic Brady
// conversational-speech parameters). During silence no packets are sent
// (VAD), so the traffic pattern matches what a real softphone with silence
// suppression puts on the air -- this is the substitute for the paper's
// microphone input.
#pragma once

#include "common/random.hpp"

namespace siphoc::rtp {

struct TalkSpurtConfig {
  Duration mean_talk = milliseconds(1000);
  Duration mean_silence = milliseconds(1350);
  bool always_on = false;  // disable VAD: constant 50 pps stream
};

class VoiceSource {
 public:
  VoiceSource(TalkSpurtConfig config, Rng rng)
      : config_(config), rng_(rng) {}

  /// Called once per frame interval; returns whether a frame is emitted and
  /// whether it starts a new talk spurt (RTP marker bit).
  struct Tick {
    bool emit = false;
    bool spurt_start = false;
  };
  Tick tick(TimePoint now);

 private:
  TalkSpurtConfig config_;
  Rng rng_;
  bool talking_ = false;
  bool started_ = false;
  TimePoint state_until_{};
};

}  // namespace siphoc::rtp
