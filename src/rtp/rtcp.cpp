#include "rtp/rtcp.hpp"

namespace siphoc::rtp {

namespace {
constexpr std::uint8_t kTypeSenderReport = 200;    // RFC 3550 PT values
constexpr std::uint8_t kTypeReceiverReport = 201;
}  // namespace

Bytes RtcpPacket::encode() const {
  Bytes out;
  BufferWriter w(out);
  // V=2, P=0, RC = report count.
  w.u8(static_cast<std::uint8_t>(0x80 | (reports.size() & 0x1f)));
  w.u8(is_sender_report ? kTypeSenderReport : kTypeReceiverReport);
  w.u16(0);  // length placeholder (unused by this decoder; kept for shape)
  w.u32(sender_ssrc);
  if (is_sender_report) {
    w.u64(sender_info.ntp_time);
    w.u32(sender_info.rtp_timestamp);
    w.u32(sender_info.packet_count);
    w.u32(sender_info.octet_count);
  }
  for (const auto& r : reports) {
    w.u32(r.ssrc);
    w.u8(r.fraction_lost);
    // 24-bit cumulative loss.
    w.u8(static_cast<std::uint8_t>((r.cumulative_lost >> 16) & 0xff));
    w.u16(static_cast<std::uint16_t>(r.cumulative_lost & 0xffff));
    w.u32(r.highest_seq);
    w.u32(r.jitter);
  }
  return out;
}

Result<RtcpPacket> RtcpPacket::decode(std::span<const std::uint8_t> data) {
  BufferReader r(data);
  RtcpPacket p;
  auto vprc = r.u8();
  if (!vprc) return vprc.error();
  if ((*vprc >> 6) != 2) return fail("rtcp: bad version");
  const int count = *vprc & 0x1f;
  auto type = r.u8();
  if (!type) return type.error();
  if (*type == kTypeSenderReport) {
    p.is_sender_report = true;
  } else if (*type == kTypeReceiverReport) {
    p.is_sender_report = false;
  } else {
    return fail("rtcp: unsupported packet type " + std::to_string(*type));
  }
  if (auto len = r.u16(); !len) return len.error();
  auto ssrc = r.u32();
  if (!ssrc) return ssrc.error();
  p.sender_ssrc = *ssrc;
  if (p.is_sender_report) {
    auto ntp = r.u64();
    if (!ntp) return ntp.error();
    p.sender_info.ntp_time = *ntp;
    auto ts = r.u32();
    if (!ts) return ts.error();
    p.sender_info.rtp_timestamp = *ts;
    auto pc = r.u32();
    if (!pc) return pc.error();
    p.sender_info.packet_count = *pc;
    auto oc = r.u32();
    if (!oc) return oc.error();
    p.sender_info.octet_count = *oc;
  }
  for (int i = 0; i < count; ++i) {
    ReportBlock block;
    auto ssrc2 = r.u32();
    if (!ssrc2) return ssrc2.error();
    block.ssrc = *ssrc2;
    auto frac = r.u8();
    if (!frac) return frac.error();
    block.fraction_lost = *frac;
    auto hi = r.u8();
    if (!hi) return hi.error();
    auto lo = r.u16();
    if (!lo) return lo.error();
    block.cumulative_lost =
        (static_cast<std::uint32_t>(*hi) << 16) | *lo;
    auto seq = r.u32();
    if (!seq) return seq.error();
    block.highest_seq = *seq;
    auto jitter = r.u32();
    if (!jitter) return jitter.error();
    block.jitter = *jitter;
    p.reports.push_back(block);
  }
  return p;
}

}  // namespace siphoc::rtp
