#include "rtp/rtp.hpp"

namespace siphoc::rtp {

Bytes RtpPacket::encode() const {
  Bytes out;
  BufferWriter w(out);
  // V=2, P=0, X=0, CC=0.
  w.u8(0x80);
  w.u8(static_cast<std::uint8_t>((marker ? 0x80 : 0x00) |
                                 (payload_type & 0x7f)));
  w.u16(sequence);
  w.u32(timestamp);
  w.u32(ssrc);
  w.raw(payload);
  return out;
}

Result<RtpPacket> RtpPacket::decode(std::span<const std::uint8_t> data) {
  BufferReader r(data);
  RtpPacket p;
  auto vpxcc = r.u8();
  if (!vpxcc) return vpxcc.error();
  if ((*vpxcc >> 6) != 2) return fail("rtp: bad version");
  auto mpt = r.u8();
  if (!mpt) return mpt.error();
  p.marker = (*mpt & 0x80) != 0;
  p.payload_type = *mpt & 0x7f;
  auto seq = r.u16();
  if (!seq) return seq.error();
  p.sequence = *seq;
  auto ts = r.u32();
  if (!ts) return ts.error();
  p.timestamp = *ts;
  auto ssrc = r.u32();
  if (!ssrc) return ssrc.error();
  p.ssrc = *ssrc;
  auto payload = r.raw(r.remaining());
  if (!payload) return payload.error();
  p.payload = std::move(*payload);
  return p;
}

RtpPacket make_voice_packet(std::uint16_t sequence, std::uint32_t timestamp,
                            std::uint32_t ssrc, bool marker, TimePoint sent) {
  RtpPacket p;
  p.sequence = sequence;
  p.timestamp = timestamp;
  p.ssrc = ssrc;
  p.marker = marker;
  p.payload.resize(kPcmuFrameBytes, 0xd5);  // u-law silence pattern
  BufferWriter w(p.payload);
  // Overwrite the first 8 bytes in place via a scratch buffer.
  Bytes stamp;
  BufferWriter sw(stamp);
  sw.u64(static_cast<std::uint64_t>(sent.time_since_epoch().count()));
  std::copy(stamp.begin(), stamp.end(), p.payload.begin());
  return p;
}

Result<TimePoint> voice_packet_sent_time(const RtpPacket& packet) {
  if (packet.payload.size() < 8) return fail("rtp: payload too short");
  BufferReader r(packet.payload);
  auto value = r.u64();
  if (!value) return value.error();
  return TimePoint{} + microseconds(static_cast<std::int64_t>(*value));
}

}  // namespace siphoc::rtp
