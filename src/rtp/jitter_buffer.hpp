// Receiver-side playout (jitter) buffer.
//
// Packets are held for a fixed playout delay measured from their send time;
// a frame that has not arrived by its deadline is a playout loss (what the
// listener actually hears as a gap), which together with network loss feeds
// the E-model in quality.hpp.
#pragma once

#include <map>
#include <optional>

#include "common/metrics.hpp"
#include "common/time.hpp"
#include "rtp/rtp.hpp"

namespace siphoc::rtp {

class JitterBuffer {
 public:
  explicit JitterBuffer(Duration playout_delay = milliseconds(60))
      : playout_delay_(playout_delay) {}

  /// Publishes drop/playout counters as series on `registry` labeled with
  /// `node` (component "rtp"); optional, like ReceiverStats::bind_metrics.
  void bind_metrics(MetricsRegistry& registry, std::string_view node);

  /// Inserts a received packet; returns false when the packet arrived after
  /// its playout deadline (late loss) or is a duplicate.
  bool insert(const RtpPacket& packet, TimePoint arrival, TimePoint sent);

  /// Pops the frame scheduled for playout at `now`, if due.
  std::optional<RtpPacket> pop_due(TimePoint now);

  std::size_t depth() const { return queue_.size(); }
  std::uint64_t late_drops() const { return late_drops_; }
  std::uint64_t duplicate_drops() const { return duplicate_drops_; }
  std::uint64_t played() const { return played_; }
  Duration playout_delay() const { return playout_delay_; }

 private:
  struct Slot {
    RtpPacket packet;
    TimePoint playout{};
  };

  Duration playout_delay_;
  std::map<std::uint16_t, Slot> queue_;  // keyed by sequence number
  std::optional<std::uint16_t> last_played_seq_;
  std::uint64_t late_drops_ = 0;
  std::uint64_t duplicate_drops_ = 0;
  std::uint64_t played_ = 0;

  Counter* late_counter_ = nullptr;
  Counter* duplicate_counter_ = nullptr;
  Counter* played_counter_ = nullptr;
};

}  // namespace siphoc::rtp
