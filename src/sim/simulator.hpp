// Discrete-event simulation kernel.
//
// This is the substitute for the paper's physical testbed (10 laptops +
// iPAQ handhelds on 802.11 ad hoc): an event loop over virtual time.
// Everything above it -- radio medium, routing daemons, SIP transactions,
// RTP streams -- is driven purely by scheduled callbacks, so a whole
// multihop call setup runs deterministically in microseconds of wall time
// and can be replayed from a seed.
//
// Hot-path design (see docs/PERFORMANCE.md): event closures live in a
// slab-allocated pool of records that are recycled through a free list, so
// steady-state scheduling performs no per-event heap allocation beyond
// what the closure itself captures. The priority queue orders small POD
// entries (when, seq, slot); cancellation is a generation-checked slot
// handle instead of a shared_ptr<bool> per event.
//
// Sharded mode (docs/ARCHITECTURE.md, "Region sharding"): the kernel can
// be partitioned into *lanes* -- one scenario lane (lane 0) plus one lane
// per spatial region -- each with its own event queue, RNG stream,
// sequence counter and metrics context. Lanes execute concurrently inside
// a conservative lookahead window (the per-hop MAC latency: no cross-node
// interaction can take effect sooner), exchange cross-lane events at the
// barrier between windows, and serialize any window that contains a
// scenario-lane event. Results are byte-identical for any `threads` value
// because every source of ordering (per-lane queues, per-lane RNG, barrier
// drain order) is independent of which OS thread ran which lane.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/context.hpp"
#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/time.hpp"

namespace siphoc::sim {

class WorkerPool;

namespace detail {

inline constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

/// One pooled event. `generation` increments every time the slot is
/// recycled, so stale handles (cancel-after-fire) become harmless no-ops.
struct EventRecord {
  std::function<void()> fn;
  std::uint32_t generation = 0;
  std::uint32_t next_free = kInvalidSlot;
  bool cancelled = false;
  bool live = false;
};

/// The slab. Shared with handles via weak_ptr so a handle outliving its
/// Simulator degrades to an inert no-op exactly like the old weak_ptr<bool>
/// scheme did. Sharded simulators keep one pool per lane.
struct EventPool {
  std::vector<EventRecord> records;
  std::uint32_t free_head = kInvalidSlot;

  std::uint32_t acquire() {
    if (free_head != kInvalidSlot) {
      const std::uint32_t slot = free_head;
      free_head = records[slot].next_free;
      return slot;
    }
    records.emplace_back();
    return static_cast<std::uint32_t>(records.size() - 1);
  }

  void release(std::uint32_t slot) {
    EventRecord& rec = records[slot];
    rec.fn = nullptr;
    ++rec.generation;
    rec.live = false;
    rec.cancelled = false;
    rec.next_free = free_head;
    free_head = slot;
  }
};

}  // namespace detail

/// Handle to a scheduled event; allows cancellation (e.g. a SIP timer that
/// is stopped because the response arrived).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the callback from firing. Safe to call multiple times and
  /// after the event fired.
  void cancel() {
    if (auto pool = pool_.lock()) {
      auto& rec = pool->records[slot_];
      if (rec.live && rec.generation == generation_) rec.cancelled = true;
    }
  }

  bool pending() const {
    auto pool = pool_.lock();
    if (!pool) return false;
    const auto& rec = pool->records[slot_];
    return rec.live && rec.generation == generation_ && !rec.cancelled;
  }

 private:
  friend class Simulator;
  EventHandle(std::weak_ptr<detail::EventPool> pool, std::uint32_t slot,
              std::uint32_t generation)
      : pool_(std::move(pool)), slot_(slot), generation_(generation) {}

  std::weak_ptr<detail::EventPool> pool_;
  std::uint32_t slot_ = detail::kInvalidSlot;
  std::uint32_t generation_ = 0;
};

class Simulator {
 public:
  /// `context` is the SimContext this simulation reports into (metrics,
  /// logging, time source); null means the process-default global context,
  /// which preserves the historical singleton behavior for single-sim
  /// entry points. The simulator does not own the context.
  explicit Simulator(std::uint64_t seed = 1, SimContext* context = nullptr);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time of the calling lane (lane 0 outside execution;
  /// between run calls all lanes agree).
  TimePoint now() const;
  /// RNG stream of the calling lane. Sharded simulations give every region
  /// lane its own derived stream, so draw sequences are independent of
  /// thread count.
  Rng& rng();
  /// Context of the calling lane: the main context on lane 0, a per-lane
  /// child context on region lanes (merged via merge_lane_metrics()).
  SimContext& ctx();

  // --- sharding ----------------------------------------------------------
  /// Conservative-parallel configuration. `regions` is part of the
  /// *simulation content* (it fixes RNG stream assignment and event
  /// interleavings); `threads` is pure execution policy and never affects
  /// results. `lookahead` must be a lower bound on every cross-lane
  /// interaction latency (the radio MAC latency in this codebase).
  struct ShardConfig {
    std::uint32_t regions = 1;
    Duration lookahead = microseconds(500);
    unsigned threads = 1;
  };

  /// Switches the kernel into parallel mode. Must be called before any
  /// event is scheduled. With regions == 1 no lanes are added (the classic
  /// sequential loop runs), but the worker pool becomes available to
  /// parallel_for() hot loops.
  void enable_parallelism(const ShardConfig& config);

  bool sharded() const { return lanes_.size() > 1; }
  bool parallel_enabled() const { return pool_ != nullptr; }
  std::uint32_t lane_count() const {
    return static_cast<std::uint32_t>(lanes_.size());
  }
  /// Lane the calling thread is executing/scoped on (0 when none).
  std::uint32_t current_lane() const;
  /// True while the calling thread is inside a concurrent lane window (in
  /// which case helpers must not fan out nested parallel work).
  bool in_parallel_window() const;

  /// RAII: routes schedule()/rng()/ctx() on this thread to `lane` -- used
  /// by the testbed to construct and drive each node on its home lane so
  /// the node's timers, RNG draws and metrics live with its region.
  class LaneScope {
   public:
    LaneScope(Simulator& sim, std::uint32_t lane);
    ~LaneScope();
    LaneScope(const LaneScope&) = delete;
    LaneScope& operator=(const LaneScope&) = delete;

   private:
    Simulator* prev_sim_;
    std::uint32_t prev_lane_;
    bool prev_in_window_;
  };

  /// Runs `fn(i)` for i in [0, n) on the worker pool (inline when the pool
  /// is absent, single-threaded, or the caller is already inside a lane
  /// window). Tasks must be independent and results must not depend on
  /// execution order -- callers keep determinism by writing to disjoint
  /// slots and reducing sequentially afterwards.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Called after every lookahead window (and once before the first), with
  /// all lanes quiescent: the radio medium uses it to rebuild its spatial
  /// index and refresh the mobile-position cache that in-window delivery
  /// decisions read.
  void set_epoch_hook(std::function<void()> hook) { epoch_hook_ = std::move(hook); }

  /// One-shot: folds every region lane's child metrics registry into the
  /// main context, in lane order (deterministic). Call after the last run_*
  /// and before exporting metrics; the testbed destructor calls it too.
  void merge_lane_metrics();

  // --- scheduling --------------------------------------------------------
  /// Schedules `fn` to run `delay` from now on the calling lane. Returns a
  /// cancellation handle.
  EventHandle schedule(Duration delay, std::function<void()> fn);

  /// Schedules at an absolute virtual time (must not be in the past) on the
  /// calling lane.
  EventHandle schedule_at(TimePoint when, std::function<void()> fn);

  /// Schedules onto an explicit lane (the radio medium targets a frame's
  /// receiving region; the Internet segment targets lane 0). From inside a
  /// concurrent window a cross-lane event travels through the source
  /// lane's outbox and is enqueued at the next barrier, in which case the
  /// returned handle is inert (cross-lane deliveries are never cancelled).
  EventHandle schedule_on(std::uint32_t lane, Duration delay,
                          std::function<void()> fn);

  /// Runs until the event queue drains or `until` is reached, whichever is
  /// first. Time advances to `until` even if the queue drains earlier, so
  /// back-to-back run_until calls observe monotonic time.
  void run_until(TimePoint until);

  /// Convenience: advance by a relative amount.
  void run_for(Duration d) { run_until(lanes_[0].now + d); }

  /// Runs until the queue is completely empty (use with care: periodic
  /// timers never drain).
  void run_to_completion();

  /// Number of events executed so far, summed over lanes (sanity metric
  /// for benches).
  std::uint64_t events_executed() const;

  /// Window accounting (sharded runs only): how many lookahead windows
  /// executed, and how many of those the serial-window rule forced
  /// sequential (docs/ARCHITECTURE.md). Surfaced by bench_cityscale rows.
  std::uint64_t windows_run() const { return windows_run_; }
  std::uint64_t windows_serialized() const { return windows_serialized_; }

 private:
  /// What the priority queue orders: 24 trivially-copyable bytes. The
  /// record (and its closure) stays put in the pool until popped.
  struct QueueEntry {
    TimePoint when;
    std::uint64_t seq;  // FIFO tie-break for same-timestamp events
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  /// A cross-lane event parked in its source lane's outbox until the
  /// barrier (drained in source-lane order, preserving per-source FIFO,
  /// so enqueue order is thread-count independent).
  struct OutboxEntry {
    std::uint32_t target;
    TimePoint when;
    std::function<void()> fn;
  };

  struct Lane {
    explicit Lane(std::uint64_t rng_seed)
        : pool(std::make_shared<detail::EventPool>()), rng(rng_seed) {}
    std::shared_ptr<detail::EventPool> pool;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue;
    TimePoint now{};
    std::uint64_t next_seq = 0;
    std::uint64_t events_executed = 0;
    Rng rng;
    std::unique_ptr<SimContext> ctx;  // region lanes only; lane 0 uses ctx_
    std::vector<OutboxEntry> outbox;
  };

  EventHandle push_event(Lane& lane, TimePoint when, std::function<void()> fn);
  bool step(TimePoint limit);  // classic sequential loop over lane 0
  void run_until_sharded(TimePoint until);
  void run_lane_window(std::uint32_t lane_index, TimePoint wend,
                       TimePoint until);
  void exec_top(std::uint32_t lane_index);
  void prune_cancelled(Lane& lane);
  void drain_outboxes();
  SimContext& lane_context(std::uint32_t lane_index) {
    Lane& lane = lanes_[lane_index];
    return lane.ctx ? *lane.ctx : *ctx_;
  }

  SimContext* ctx_;
  std::uint64_t seed_;
  std::vector<Lane> lanes_;  // lane 0 always exists
  Duration lookahead_{microseconds(500)};
  std::unique_ptr<WorkerPool> pool_;
  std::function<void()> epoch_hook_;
  std::uint64_t windows_run_ = 0;
  std::uint64_t windows_serialized_ = 0;
  bool lanes_merged_ = false;
};

/// Repeating timer built on the kernel: reschedules itself until stopped.
/// Optionally jitters each period to avoid synchronized beacons, mirroring
/// the jitter AODV/OLSR mandate for HELLO emission.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;

  void start(Simulator& sim, Duration period, std::function<void()> fn,
             Duration jitter = Duration::zero());
  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Simulator* sim_ = nullptr;
  Duration period_{};
  Duration jitter_{};
  std::function<void()> fn_;
  EventHandle handle_;
  bool running_ = false;
};

}  // namespace siphoc::sim
