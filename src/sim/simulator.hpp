// Discrete-event simulation kernel.
//
// This is the substitute for the paper's physical testbed (10 laptops +
// iPAQ handhelds on 802.11 ad hoc): a single-threaded event loop over
// virtual time. Everything above it -- radio medium, routing daemons, SIP
// transactions, RTP streams -- is driven purely by scheduled callbacks, so
// a whole multihop call setup runs deterministically in microseconds of
// wall time and can be replayed from a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/time.hpp"

namespace siphoc::sim {

/// Handle to a scheduled event; allows cancellation (e.g. a SIP timer that
/// is stopped because the response arrived).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the callback from firing. Safe to call multiple times and
  /// after the event fired.
  void cancel() {
    if (auto c = cancelled_.lock()) *c = true;
  }

  bool pending() const {
    auto c = cancelled_.lock();
    return c && !*c;
  }

 private:
  friend class Simulator;
  explicit EventHandle(std::weak_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::weak_ptr<bool> cancelled_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }

  /// Schedules `fn` to run `delay` from now. Returns a cancellation handle.
  EventHandle schedule(Duration delay, std::function<void()> fn);

  /// Schedules at an absolute virtual time (must not be in the past).
  EventHandle schedule_at(TimePoint when, std::function<void()> fn);

  /// Runs until the event queue drains or `until` is reached, whichever is
  /// first. Time advances to `until` even if the queue drains earlier, so
  /// back-to-back run_until calls observe monotonic time.
  void run_until(TimePoint until);

  /// Convenience: advance by a relative amount.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Runs until the queue is completely empty (use with care: periodic
  /// timers never drain).
  void run_to_completion();

  /// Number of events executed so far (sanity metric for benches).
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;  // FIFO tie-break for same-timestamp events
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  bool step(TimePoint limit);

  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Rng rng_;
};

/// Repeating timer built on the kernel: reschedules itself until stopped.
/// Optionally jitters each period to avoid synchronized beacons, mirroring
/// the jitter AODV/OLSR mandate for HELLO emission.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;

  void start(Simulator& sim, Duration period, std::function<void()> fn,
             Duration jitter = Duration::zero());
  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Simulator* sim_ = nullptr;
  Duration period_{};
  Duration jitter_{};
  std::function<void()> fn_;
  EventHandle handle_;
  bool running_ = false;
};

}  // namespace siphoc::sim
