// Discrete-event simulation kernel.
//
// This is the substitute for the paper's physical testbed (10 laptops +
// iPAQ handhelds on 802.11 ad hoc): a single-threaded event loop over
// virtual time. Everything above it -- radio medium, routing daemons, SIP
// transactions, RTP streams -- is driven purely by scheduled callbacks, so
// a whole multihop call setup runs deterministically in microseconds of
// wall time and can be replayed from a seed.
//
// Hot-path design (see docs/PERFORMANCE.md): event closures live in a
// slab-allocated pool of records that are recycled through a free list, so
// steady-state scheduling performs no per-event heap allocation beyond
// what the closure itself captures. The priority queue orders small POD
// entries (when, seq, slot); cancellation is a generation-checked slot
// handle instead of a shared_ptr<bool> per event.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/context.hpp"
#include "common/logging.hpp"
#include "common/random.hpp"
#include "common/time.hpp"

namespace siphoc::sim {

namespace detail {

inline constexpr std::uint32_t kInvalidSlot = 0xffffffffu;

/// One pooled event. `generation` increments every time the slot is
/// recycled, so stale handles (cancel-after-fire) become harmless no-ops.
struct EventRecord {
  std::function<void()> fn;
  std::uint32_t generation = 0;
  std::uint32_t next_free = kInvalidSlot;
  bool cancelled = false;
  bool live = false;
};

/// The slab. Shared with handles via weak_ptr so a handle outliving its
/// Simulator degrades to an inert no-op exactly like the old weak_ptr<bool>
/// scheme did.
struct EventPool {
  std::vector<EventRecord> records;
  std::uint32_t free_head = kInvalidSlot;

  std::uint32_t acquire() {
    if (free_head != kInvalidSlot) {
      const std::uint32_t slot = free_head;
      free_head = records[slot].next_free;
      return slot;
    }
    records.emplace_back();
    return static_cast<std::uint32_t>(records.size() - 1);
  }

  void release(std::uint32_t slot) {
    EventRecord& rec = records[slot];
    rec.fn = nullptr;
    ++rec.generation;
    rec.live = false;
    rec.cancelled = false;
    rec.next_free = free_head;
    free_head = slot;
  }
};

}  // namespace detail

/// Handle to a scheduled event; allows cancellation (e.g. a SIP timer that
/// is stopped because the response arrived).
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the callback from firing. Safe to call multiple times and
  /// after the event fired.
  void cancel() {
    if (auto pool = pool_.lock()) {
      auto& rec = pool->records[slot_];
      if (rec.live && rec.generation == generation_) rec.cancelled = true;
    }
  }

  bool pending() const {
    auto pool = pool_.lock();
    if (!pool) return false;
    const auto& rec = pool->records[slot_];
    return rec.live && rec.generation == generation_ && !rec.cancelled;
  }

 private:
  friend class Simulator;
  EventHandle(std::weak_ptr<detail::EventPool> pool, std::uint32_t slot,
              std::uint32_t generation)
      : pool_(std::move(pool)), slot_(slot), generation_(generation) {}

  std::weak_ptr<detail::EventPool> pool_;
  std::uint32_t slot_ = detail::kInvalidSlot;
  std::uint32_t generation_ = 0;
};

class Simulator {
 public:
  /// `context` is the SimContext this simulation reports into (metrics,
  /// logging, time source); null means the process-default global context,
  /// which preserves the historical singleton behavior for single-sim
  /// entry points. The simulator does not own the context.
  explicit Simulator(std::uint64_t seed = 1, SimContext* context = nullptr);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  TimePoint now() const { return now_; }
  Rng& rng() { return rng_; }
  SimContext& ctx() { return *ctx_; }

  /// Schedules `fn` to run `delay` from now. Returns a cancellation handle.
  EventHandle schedule(Duration delay, std::function<void()> fn);

  /// Schedules at an absolute virtual time (must not be in the past).
  EventHandle schedule_at(TimePoint when, std::function<void()> fn);

  /// Runs until the event queue drains or `until` is reached, whichever is
  /// first. Time advances to `until` even if the queue drains earlier, so
  /// back-to-back run_until calls observe monotonic time.
  void run_until(TimePoint until);

  /// Convenience: advance by a relative amount.
  void run_for(Duration d) { run_until(now_ + d); }

  /// Runs until the queue is completely empty (use with care: periodic
  /// timers never drain).
  void run_to_completion();

  /// Number of events executed so far (sanity metric for benches).
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  /// What the priority queue orders: 24 trivially-copyable bytes. The
  /// record (and its closure) stays put in the pool until popped.
  struct QueueEntry {
    TimePoint when;
    std::uint64_t seq;  // FIFO tie-break for same-timestamp events
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  bool step(TimePoint limit);

  SimContext* ctx_;
  TimePoint now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::shared_ptr<detail::EventPool> pool_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue_;
  Rng rng_;
};

/// Repeating timer built on the kernel: reschedules itself until stopped.
/// Optionally jitters each period to avoid synchronized beacons, mirroring
/// the jitter AODV/OLSR mandate for HELLO emission.
class PeriodicTimer {
 public:
  PeriodicTimer() = default;

  void start(Simulator& sim, Duration period, std::function<void()> fn,
             Duration jitter = Duration::zero());
  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Simulator* sim_ = nullptr;
  Duration period_{};
  Duration jitter_{};
  std::function<void()> fn_;
  EventHandle handle_;
  bool running_ = false;
};

}  // namespace siphoc::sim
