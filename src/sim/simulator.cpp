#include "sim/simulator.hpp"

#include <cassert>

#include "common/metrics.hpp"

namespace siphoc::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {
  Logging::instance().set_time_source([this] { return now_; });
  MetricsRegistry::instance().set_time_source([this] { return now_; });
}

Simulator::~Simulator() {
  Logging::instance().set_time_source(nullptr);
  MetricsRegistry::instance().set_time_source(nullptr);
}

EventHandle Simulator::schedule(Duration delay, std::function<void()> fn) {
  assert(delay >= Duration::zero());
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  assert(when >= now_);
  Event ev;
  ev.when = when;
  ev.seq = next_seq_++;
  ev.fn = std::move(fn);
  ev.cancelled = std::make_shared<bool>(false);
  EventHandle handle{std::weak_ptr<bool>(ev.cancelled)};
  queue_.push(std::move(ev));
  return handle;
}

bool Simulator::step(TimePoint limit) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > limit) return false;
    // Move the event out before executing: the callback may schedule more.
    Event ev = top;
    queue_.pop();
    now_ = ev.when;
    if (*ev.cancelled) continue;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run_until(TimePoint until) {
  while (step(until)) {
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_to_completion() {
  while (step(TimePoint::max())) {
  }
}

void PeriodicTimer::start(Simulator& sim, Duration period,
                          std::function<void()> fn, Duration jitter) {
  stop();
  sim_ = &sim;
  period_ = period;
  jitter_ = jitter;
  fn_ = std::move(fn);
  running_ = true;
  arm();
}

void PeriodicTimer::stop() {
  handle_.cancel();
  running_ = false;
}

void PeriodicTimer::arm() {
  Duration delay = period_;
  if (jitter_ > Duration::zero()) {
    delay += sim_->rng().jitter(-jitter_, jitter_);
    if (delay < Duration::zero()) delay = Duration::zero();
  }
  handle_ = sim_->schedule(delay, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm();
  });
}

}  // namespace siphoc::sim
