#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>

#include "common/metrics.hpp"
#include "sim/worker_pool.hpp"

namespace siphoc::sim {

namespace {

/// Which lane the calling thread is currently executing or scoped on.
/// Written by the window executor and LaneScope only; each thread sees its
/// own copy, so lane-aware accessors are race-free by construction.
struct ExecState {
  Simulator* sim = nullptr;
  std::uint32_t lane = 0;
  bool in_window = false;
};
thread_local ExecState t_exec;

/// RAII exec-state swap used by the window/serial executors.
class ExecGuard {
 public:
  ExecGuard(Simulator* sim, std::uint32_t lane, bool in_window)
      : prev_(t_exec) {
    t_exec = ExecState{sim, lane, in_window};
  }
  ~ExecGuard() { t_exec = prev_; }
  ExecGuard(const ExecGuard&) = delete;
  ExecGuard& operator=(const ExecGuard&) = delete;

 private:
  ExecState prev_;
};

constexpr std::uint32_t kNoLane = 0xffffffffu;

}  // namespace

Simulator::Simulator(std::uint64_t seed, SimContext* context)
    : ctx_(context != nullptr ? context : &SimContext::global()), seed_(seed) {
  lanes_.emplace_back(seed);
  ctx_->set_root_seed(seed);
  ctx_->adopt_time_source(this, [this] { return lanes_[0].now; });
}

Simulator::~Simulator() {
  // Owner-tagged release: if a later simulator adopted the same context's
  // time source, a dying earlier one must not clobber it.
  ctx_->release_time_source(this);
  for (std::size_t l = 1; l < lanes_.size(); ++l) {
    if (lanes_[l].ctx) lanes_[l].ctx->release_time_source(this);
  }
}

void Simulator::enable_parallelism(const ShardConfig& config) {
  assert(lanes_.size() == 1 && lanes_[0].queue.empty() &&
         "enable_parallelism must run before any event is scheduled");
  assert(config.lookahead > Duration::zero());
  lookahead_ = config.lookahead;
  lanes_.reserve(1 + config.regions);
  if (config.regions > 1) {
    for (std::uint32_t r = 1; r <= config.regions; ++r) {
      // Region lanes draw from streams derived the same way sweep cells
      // do: a function of (root seed, lane index) only -- never of thread
      // count or execution order.
      Lane& lane = lanes_.emplace_back(SimContext::derive_seed(seed_, r));
      lane.ctx = std::make_unique<SimContext>();
      lane.ctx->set_root_seed(SimContext::derive_seed(seed_, r));
      const std::uint32_t index = r;
      lane.ctx->adopt_time_source(this,
                                  [this, index] { return lanes_[index].now; });
    }
  }
  pool_ = std::make_unique<WorkerPool>(config.threads == 0 ? 1 : config.threads);
}

std::uint32_t Simulator::current_lane() const {
  return t_exec.sim == this ? t_exec.lane : 0;
}

bool Simulator::in_parallel_window() const {
  return t_exec.sim == this && t_exec.in_window;
}

Simulator::LaneScope::LaneScope(Simulator& sim, std::uint32_t lane)
    : prev_sim_(t_exec.sim),
      prev_lane_(t_exec.lane),
      prev_in_window_(t_exec.in_window) {
  assert(lane < sim.lane_count());
  t_exec = ExecState{&sim, lane, false};
}

Simulator::LaneScope::~LaneScope() {
  t_exec = ExecState{prev_sim_, prev_lane_, prev_in_window_};
}

TimePoint Simulator::now() const { return lanes_[current_lane()].now; }

Rng& Simulator::rng() { return lanes_[current_lane()].rng; }

SimContext& Simulator::ctx() { return lane_context(current_lane()); }

void Simulator::parallel_for(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (pool_ != nullptr && !in_parallel_window()) {
    pool_->run(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

void Simulator::merge_lane_metrics() {
  if (lanes_merged_) return;
  lanes_merged_ = true;
  for (std::size_t l = 1; l < lanes_.size(); ++l) {
    if (lanes_[l].ctx) ctx_->metrics().merge_from(lanes_[l].ctx->metrics());
  }
}

EventHandle Simulator::push_event(Lane& lane, TimePoint when,
                                  std::function<void()> fn) {
  assert(when >= lane.now);
  const std::uint32_t slot = lane.pool->acquire();
  detail::EventRecord& rec = lane.pool->records[slot];
  rec.fn = std::move(fn);
  rec.cancelled = false;
  rec.live = true;
  lane.queue.push(QueueEntry{when, lane.next_seq++, slot});
  return EventHandle{lane.pool, slot, rec.generation};
}

EventHandle Simulator::schedule(Duration delay, std::function<void()> fn) {
  assert(delay >= Duration::zero());
  Lane& lane = lanes_[current_lane()];
  return push_event(lane, lane.now + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  return push_event(lanes_[current_lane()], when, std::move(fn));
}

EventHandle Simulator::schedule_on(std::uint32_t lane_index, Duration delay,
                                   std::function<void()> fn) {
  assert(lane_index < lanes_.size());
  const std::uint32_t src = current_lane();
  const TimePoint when = lanes_[src].now + delay;
  if (t_exec.sim == this && t_exec.in_window && lane_index != src) {
    // Concurrent window: park in the source outbox; enqueued (with a
    // deterministic sequence number) at the barrier. The lookahead
    // guarantee makes `when` land at or beyond the window end, so the
    // event cannot have been needed inside this window.
    lanes_[src].outbox.push_back(OutboxEntry{lane_index, when, std::move(fn)});
    return EventHandle{};
  }
  return push_event(lanes_[lane_index], when, std::move(fn));
}

bool Simulator::step(TimePoint limit) {
  Lane& lane = lanes_[0];
  while (!lane.queue.empty()) {
    const QueueEntry top = lane.queue.top();  // POD copy; closure stays pooled
    if (top.when > limit) return false;
    lane.queue.pop();
    lane.now = top.when;
    detail::EventRecord& rec = lane.pool->records[top.slot];
    const bool cancelled = rec.cancelled;
    // Move the closure out before releasing the slot: the callback may
    // schedule more events, which can recycle the slot and grow the slab.
    std::function<void()> fn = std::move(rec.fn);
    lane.pool->release(top.slot);
    if (cancelled) continue;
    ++lane.events_executed;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(TimePoint until) {
  if (sharded()) {
    run_until_sharded(until);
    return;
  }
  // Bind our context for the duration of the run loop so leaf code
  // (Logger, default ScopedSpan) resolving via current() lands here.
  SimContext::Bind bind(*ctx_);
  while (step(until)) {
  }
  if (lanes_[0].now < until) lanes_[0].now = until;
}

void Simulator::run_to_completion() {
  if (sharded()) {
    run_until_sharded(TimePoint::max());
    return;
  }
  SimContext::Bind bind(*ctx_);
  while (step(TimePoint::max())) {
  }
}

void Simulator::prune_cancelled(Lane& lane) {
  while (!lane.queue.empty()) {
    const QueueEntry top = lane.queue.top();
    if (!lane.pool->records[top.slot].cancelled) return;
    lane.queue.pop();
    lane.pool->release(top.slot);
  }
}

void Simulator::exec_top(std::uint32_t lane_index) {
  Lane& lane = lanes_[lane_index];
  const QueueEntry top = lane.queue.top();
  lane.queue.pop();
  lane.now = top.when;
  detail::EventRecord& rec = lane.pool->records[top.slot];
  std::function<void()> fn = std::move(rec.fn);
  lane.pool->release(top.slot);
  ++lane.events_executed;
  ExecGuard guard(this, lane_index, /*in_window=*/false);
  SimContext::Bind bind(lane_context(lane_index));
  fn();
}

void Simulator::run_lane_window(std::uint32_t lane_index, TimePoint wend,
                                TimePoint until) {
  Lane& lane = lanes_[lane_index];
  ExecGuard guard(this, lane_index, /*in_window=*/true);
  SimContext::Bind bind(lane_context(lane_index));
  for (;;) {
    prune_cancelled(lane);
    if (lane.queue.empty()) return;
    const QueueEntry top = lane.queue.top();
    if (top.when >= wend || top.when > until) return;
    lane.queue.pop();
    lane.now = top.when;
    detail::EventRecord& rec = lane.pool->records[top.slot];
    std::function<void()> fn = std::move(rec.fn);
    lane.pool->release(top.slot);
    ++lane.events_executed;
    fn();
  }
}

void Simulator::drain_outboxes() {
  for (Lane& src : lanes_) {
    for (OutboxEntry& msg : src.outbox) {
      push_event(lanes_[msg.target], msg.when, std::move(msg.fn));
    }
    src.outbox.clear();
  }
}

void Simulator::run_until_sharded(TimePoint until) {
  SimContext::Bind bind(*ctx_);
  // Barrier-equivalent state before the first window: caches the medium
  // reads in-window must be fresh before any lane runs concurrently.
  if (epoch_hook_) epoch_hook_();
  for (;;) {
    TimePoint window_start = TimePoint::max();
    for (Lane& lane : lanes_) {
      prune_cancelled(lane);
      if (!lane.queue.empty()) {
        window_start = std::min(window_start, lane.queue.top().when);
      }
    }
    if (window_start == TimePoint::max() || window_start > until) break;
    const TimePoint wend =
        window_start > TimePoint::max() - lookahead_
            ? TimePoint::max()
            : window_start + lookahead_;
    ++windows_run_;

    // A window containing a scenario-lane (lane 0) event runs fully
    // sequentially in global (when, lane, seq) order: lane-0 events --
    // Internet deliveries, provider/monitor timers, chaos actions -- may
    // touch any node's state, and serializing their windows makes that
    // correct without per-object locking. The decision depends only on
    // event content, never on thread count, so it cannot break identity.
    Lane& scenario = lanes_[0];
    const bool serial = !scenario.queue.empty() &&
                        scenario.queue.top().when < wend &&
                        scenario.queue.top().when <= until;
    if (serial) {
      ++windows_serialized_;
      for (;;) {
        std::uint32_t best = kNoLane;
        TimePoint best_when{};
        for (std::uint32_t l = 0; l < lanes_.size(); ++l) {
          prune_cancelled(lanes_[l]);
          if (lanes_[l].queue.empty()) continue;
          const TimePoint w = lanes_[l].queue.top().when;
          if (w >= wend || w > until) continue;
          if (best == kNoLane || w < best_when) {
            best = l;
            best_when = w;
          }
        }
        if (best == kNoLane) break;
        exec_top(best);
      }
    } else {
      pool_->run(lanes_.size() - 1, [this, wend, until](std::size_t k) {
        run_lane_window(static_cast<std::uint32_t>(k + 1), wend, until);
      });
    }

    // Advance every lane to the window end (all remaining events are at or
    // beyond it -- see the window-exit conditions above), so barrier-time
    // reads (the epoch hook's mobile-position snapshot) observe a single
    // up-to-date clock instead of whichever lane last ran an event.
    const TimePoint barrier_now = std::min(wend, until);
    for (Lane& lane : lanes_) lane.now = std::max(lane.now, barrier_now);
    drain_outboxes();
    if (epoch_hook_) epoch_hook_();
  }
  for (Lane& lane : lanes_) lane.now = std::max(lane.now, until);
}

std::uint64_t Simulator::events_executed() const {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.events_executed;
  return total;
}

void PeriodicTimer::start(Simulator& sim, Duration period,
                          std::function<void()> fn, Duration jitter) {
  stop();
  sim_ = &sim;
  period_ = period;
  jitter_ = jitter;
  fn_ = std::move(fn);
  running_ = true;
  arm();
}

void PeriodicTimer::stop() {
  handle_.cancel();
  running_ = false;
}

void PeriodicTimer::arm() {
  Duration delay = period_;
  if (jitter_ > Duration::zero()) {
    delay += sim_->rng().jitter(-jitter_, jitter_);
    if (delay < Duration::zero()) delay = Duration::zero();
  }
  handle_ = sim_->schedule(delay, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm();
  });
}

}  // namespace siphoc::sim
