#include "sim/simulator.hpp"

#include <cassert>

#include "common/metrics.hpp"

namespace siphoc::sim {

Simulator::Simulator(std::uint64_t seed, SimContext* context)
    : ctx_(context != nullptr ? context : &SimContext::global()),
      pool_(std::make_shared<detail::EventPool>()),
      rng_(seed) {
  ctx_->set_root_seed(seed);
  ctx_->adopt_time_source(this, [this] { return now_; });
}

Simulator::~Simulator() {
  // Owner-tagged release: if a later simulator adopted the same context's
  // time source, a dying earlier one must not clobber it.
  ctx_->release_time_source(this);
}

EventHandle Simulator::schedule(Duration delay, std::function<void()> fn) {
  assert(delay >= Duration::zero());
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  assert(when >= now_);
  const std::uint32_t slot = pool_->acquire();
  detail::EventRecord& rec = pool_->records[slot];
  rec.fn = std::move(fn);
  rec.cancelled = false;
  rec.live = true;
  queue_.push(QueueEntry{when, next_seq_++, slot});
  return EventHandle{pool_, slot, rec.generation};
}

bool Simulator::step(TimePoint limit) {
  while (!queue_.empty()) {
    const QueueEntry top = queue_.top();  // POD copy; closure stays pooled
    if (top.when > limit) return false;
    queue_.pop();
    now_ = top.when;
    detail::EventRecord& rec = pool_->records[top.slot];
    const bool cancelled = rec.cancelled;
    // Move the closure out before releasing the slot: the callback may
    // schedule more events, which can recycle the slot and grow the slab.
    std::function<void()> fn = std::move(rec.fn);
    pool_->release(top.slot);
    if (cancelled) continue;
    ++events_executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::run_until(TimePoint until) {
  // Bind our context for the duration of the run loop so leaf code
  // (Logger, default ScopedSpan) resolving via current() lands here.
  SimContext::Bind bind(*ctx_);
  while (step(until)) {
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_to_completion() {
  SimContext::Bind bind(*ctx_);
  while (step(TimePoint::max())) {
  }
}

void PeriodicTimer::start(Simulator& sim, Duration period,
                          std::function<void()> fn, Duration jitter) {
  stop();
  sim_ = &sim;
  period_ = period;
  jitter_ = jitter;
  fn_ = std::move(fn);
  running_ = true;
  arm();
}

void PeriodicTimer::stop() {
  handle_.cancel();
  running_ = false;
}

void PeriodicTimer::arm() {
  Duration delay = period_;
  if (jitter_ > Duration::zero()) {
    delay += sim_->rng().jitter(-jitter_, jitter_);
    if (delay < Duration::zero()) delay = Duration::zero();
  }
  handle_ = sim_->schedule(delay, [this] {
    if (!running_) return;
    fn_();
    if (running_) arm();
  });
}

}  // namespace siphoc::sim
