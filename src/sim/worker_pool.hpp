// Persistent worker pool for intra-simulation parallelism.
//
// One pool per sharded Simulator: region lanes (and the parallel hot-loop
// helpers -- delivery prefilter, OLSR route recalculation) dispatch chunky
// tasks onto it at every lookahead window. The calling thread always
// participates, so a pool built with `threads == 1` degenerates to an
// inline loop with zero synchronization -- which is what keeps
// `--sim-threads 1` and `--sim-threads N` on the *same* code path, a
// precondition for the byte-identity guarantee (docs/ARCHITECTURE.md).
//
// Tasks must not call back into run() from a worker thread; nested calls
// fall back to inline execution on the calling worker.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace siphoc::sim {

class WorkerPool {
 public:
  /// `threads` is the total parallelism including the caller: a pool of
  /// `threads == n` spawns `n - 1` helper threads.
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs `task(i)` for every i in [0, n), distributing indices across the
  /// helper threads and the calling thread (atomic claim, no ordering
  /// guarantee -- tasks must be independent). Blocks until all n are done.
  void run(std::size_t n, const std::function<void(std::size_t)>& task);

  unsigned thread_count() const { return threads_; }

 private:
  void worker_loop();

  const unsigned threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t task_count_ = 0;
  std::size_t next_index_ = 0;
  std::size_t finished_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace siphoc::sim
