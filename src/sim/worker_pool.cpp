#include "sim/worker_pool.hpp"

namespace siphoc::sim {

namespace {
// Set while a thread is inside WorkerPool::run as a worker/participant;
// guards against nested dispatch (run() from inside a task runs inline).
thread_local bool t_in_pool_task = false;
}  // namespace

WorkerPool::WorkerPool(unsigned threads) : threads_(threads == 0 ? 1 : threads) {
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::run(std::size_t n, const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_in_pool_task) {
    // Inline path: single-threaded pools and nested calls execute on the
    // caller with no synchronization at all.
    for (std::size_t i = 0; i < n; ++i) task(i);
    return;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  task_ = &task;
  task_count_ = n;
  next_index_ = 0;
  finished_ = 0;
  ++generation_;
  work_cv_.notify_all();

  // The caller participates: claim indices until none remain.
  t_in_pool_task = true;
  while (next_index_ < task_count_) {
    const std::size_t i = next_index_++;
    lock.unlock();
    task(i);
    lock.lock();
    ++finished_;
  }
  t_in_pool_task = false;
  done_cv_.wait(lock, [this] { return finished_ == task_count_; });
  task_ = nullptr;
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    t_in_pool_task = true;
    while (task_ != nullptr && next_index_ < task_count_) {
      const std::size_t i = next_index_++;
      const auto* task = task_;
      lock.unlock();
      (*task)(i);
      lock.lock();
      if (++finished_ == task_count_) done_cv_.notify_all();
    }
    t_in_pool_task = false;
  }
}

}  // namespace siphoc::sim
