#include "slp/multicast_slp.hpp"

#include <algorithm>

namespace siphoc::slp {

namespace {

enum class SlpMsg : std::uint8_t {
  kSrvRqst = 1,
  kSrvRply = 2,
};

}  // namespace

MulticastSlp::MulticastSlp(net::Host& host, MulticastSlpConfig config)
    : host_(host), config_(config), log_("mslp", host.name()) {
  host_.bind(net::kSlpPort,
             [this](const net::Datagram& d, const net::RxInfo&) {
               on_packet(d);
             });
}

MulticastSlp::~MulticastSlp() { host_.unbind(net::kSlpPort); }

void MulticastSlp::register_service(std::string type, std::string key,
                                    std::string value, Duration lifetime) {
  ServiceEntry e;
  e.type = std::move(type);
  e.key = std::move(key);
  e.value = std::move(value);
  e.origin = host_.manet_address();
  e.version = version_counter_++;
  e.expires = now() + lifetime;
  local_[{e.type, e.key}] = std::move(e);
}

void MulticastSlp::deregister_service(const std::string& type,
                                      const std::string& key) {
  local_.erase({type, key});
}

void MulticastSlp::lookup(std::string type, std::string key, Duration timeout,
                          LookupCallback callback) {
  ++stats_.lookups;
  // Local registrations answer immediately.
  for (const auto& [k, e] : local_) {
    if (e.matches(type, key) && e.expires > now()) {
      ++stats_.hits_local;
      host_.sim().schedule(microseconds(1),
                           [callback = std::move(callback), e] {
                             callback(e);
                           });
      return;
    }
  }

  ServiceQuery q;
  q.id = next_xid_++;
  q.origin = host_.manet_address();
  q.type = std::move(type);
  q.key = std::move(key);

  PendingLookup pending;
  pending.id = q.id;
  pending.callback = std::move(callback);
  const std::uint32_t id = q.id;
  pending.timeout = host_.sim().schedule(timeout, [this, id] {
    const auto it =
        std::find_if(pending_.begin(), pending_.end(),
                     [&](const PendingLookup& p) { return p.id == id; });
    if (it == pending_.end()) return;
    auto cb = std::move(it->callback);
    pending_.erase(it);
    ++stats_.misses;
    cb(std::nullopt);
  });
  pending_.push_back(std::move(pending));

  seen_.insert({q.origin, q.id});
  send_request(q, config_.flood_ttl);
}

std::vector<ServiceEntry> MulticastSlp::snapshot() const {
  std::vector<ServiceEntry> out;
  for (const auto& [k, e] : local_) out.push_back(e);
  return out;
}

void MulticastSlp::send_request(const ServiceQuery& q, std::uint8_t ttl) {
  Bytes wire;
  BufferWriter w(wire);
  w.u8(static_cast<std::uint8_t>(SlpMsg::kSrvRqst));
  w.u8(ttl);
  w.u32(q.id);
  w.u32(q.origin.value());
  w.str(q.type);
  w.str(q.key);
  ++packets_sent_;
  host_.send_broadcast(net::kSlpPort, net::kSlpPort, std::move(wire));
}

void MulticastSlp::on_packet(const net::Datagram& d) {
  BufferReader r(d.payload);
  auto type = r.u8();
  if (!type) return;

  if (static_cast<SlpMsg>(*type) == SlpMsg::kSrvRqst) {
    auto ttl = r.u8();
    auto xid = r.u32();
    auto origin = r.u32();
    auto srv_type = r.str();
    auto srv_key = r.str();
    if (!ttl || !xid || !origin || !srv_type || !srv_key) return;
    ServiceQuery q{*xid, net::Address{*origin}, std::move(*srv_type),
                   std::move(*srv_key)};
    if (q.origin == host_.manet_address()) return;
    if (!seen_.insert({q.origin, q.id}).second) return;  // duplicate
    handle_request(q, *ttl);
    return;
  }

  if (static_cast<SlpMsg>(*type) == SlpMsg::kSrvRply) {
    auto xid = r.u32();
    auto count = r.u8();
    if (!xid || !count) return;
    ServiceReply reply;
    reply.id = *xid;
    for (std::uint8_t i = 0; i < *count; ++i) {
      ServiceEntry e;
      auto t = r.str();
      auto k = r.str();
      auto v = r.str();
      auto o = r.u32();
      auto ver = r.u32();
      auto life = r.u32();
      if (!t || !k || !v || !o || !ver || !life) return;
      e.type = std::move(*t);
      e.key = std::move(*k);
      e.value = std::move(*v);
      e.origin = net::Address{*o};
      e.version = *ver;
      e.expires = now() + milliseconds(*life);
      reply.entries.push_back(std::move(e));
    }
    handle_reply(reply);
  }
}

void MulticastSlp::handle_request(const ServiceQuery& q, std::uint8_t ttl) {
  // Answer when we own a match.
  for (const auto& [k, e] : local_) {
    if (!e.matches(q.type, q.key) || e.expires <= now()) continue;
    Bytes wire;
    BufferWriter w(wire);
    w.u8(static_cast<std::uint8_t>(SlpMsg::kSrvRply));
    w.u32(q.id);
    w.u8(1);
    w.str(e.type);
    w.str(e.key);
    w.str(e.value);
    w.u32(e.origin.value());
    w.u32(e.version);
    w.u32(static_cast<std::uint32_t>(to_millis(e.expires - now())));
    ++packets_sent_;
    // Unicast back to the requester -- this is the step that typically
    // costs an extra route discovery under a reactive protocol.
    host_.send_udp(net::kSlpPort, {q.origin, net::kSlpPort}, std::move(wire));
    return;
  }
  // Relay the flood.
  if (ttl <= 1) return;
  const std::uint8_t next_ttl = static_cast<std::uint8_t>(ttl - 1);
  host_.sim().schedule(
      host_.rng().jitter(Duration::zero(), config_.forward_jitter),
      [this, q, next_ttl] { send_request(q, next_ttl); });
}

void MulticastSlp::handle_reply(const ServiceReply& reply) {
  const auto it =
      std::find_if(pending_.begin(), pending_.end(),
                   [&](const PendingLookup& p) { return p.id == reply.id; });
  if (it == pending_.end() || reply.entries.empty()) return;
  it->timeout.cancel();
  auto cb = std::move(it->callback);
  pending_.erase(it);
  ++stats_.hits_remote;
  cb(reply.entries.front());
}

}  // namespace siphoc::slp
