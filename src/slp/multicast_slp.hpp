// Classic multicast SLP (baseline).
//
// RFC 2608-style operation mapped onto a MANET: a service request is
// multicast -- here emulated the only way a MANET can, by network-wide
// flooding with duplicate suppression -- and the owner of a matching
// registration unicasts a reply back. This is the mechanism the paper's
// related work [7] found "very inefficient in MANETs due to its heavy use
// of multicast messages": every lookup floods the network with dedicated
// SLP packets, and the unicast reply usually triggers an extra route
// discovery on top. Bench E2 quantifies both effects against MANET SLP.
//
// Every node must run a MulticastSlp agent (they relay the flood).
#pragma once

#include <map>
#include <set>

#include "common/logging.hpp"
#include "net/host.hpp"
#include "slp/directory.hpp"

namespace siphoc::slp {

struct MulticastSlpConfig {
  std::uint8_t flood_ttl = 16;
  Duration default_lookup_timeout = seconds(4);
  /// Forwarding jitter decorrelates rebroadcasts (broadcast storm relief).
  Duration forward_jitter = milliseconds(10);
};

class MulticastSlp final : public Directory {
 public:
  MulticastSlp(net::Host& host, MulticastSlpConfig config = {});
  ~MulticastSlp() override;

  void register_service(std::string type, std::string key, std::string value,
                        Duration lifetime) override;
  void deregister_service(const std::string& type,
                          const std::string& key) override;
  void lookup(std::string type, std::string key, Duration timeout,
              LookupCallback callback) override;
  std::vector<ServiceEntry> snapshot() const override;
  const DirectoryStats& stats() const override { return stats_; }

  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  using Key = std::pair<std::string, std::string>;

  TimePoint now() const { return host_.sim().now(); }
  void on_packet(const net::Datagram& d);
  void handle_request(const ServiceQuery& q, std::uint8_t ttl);
  void handle_reply(const ServiceReply& reply);
  void send_request(const ServiceQuery& q, std::uint8_t ttl);

  struct PendingLookup {
    std::uint32_t id = 0;
    LookupCallback callback;
    sim::EventHandle timeout;
  };

  net::Host& host_;
  MulticastSlpConfig config_;
  Logger log_;

  std::map<Key, ServiceEntry> local_;
  std::vector<PendingLookup> pending_;
  std::set<std::pair<net::Address, std::uint32_t>> seen_;  // flood dedupe
  std::uint32_t next_xid_ = 1;
  std::uint32_t version_counter_ = 1;
  std::uint64_t packets_sent_ = 0;
  DirectoryStats stats_;
};

}  // namespace siphoc::slp
