// Service model and the piggyback TLV format.
//
// SLP entries are (type, key, value) triples with a lifetime:
//   type  "sip-contact"  key "alice@voicehoc.ch"  value "10.0.0.1:5060"
//   type  "gateway"      key "default"            value "10.0.0.3:5100"
// -- exactly the state the paper shows in Figure 4 ("the MANET SLP process
// after the proxy has advertised its contact address").
//
// Three record kinds travel inside routing-packet extension blocks:
//   advertisement  (unsolicited state, piggybacked on HELLO/TC/RREP)
//   query          (piggybacked on a destination-less AODV RREQ flood)
//   reply          (piggybacked on the answering RREP)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/time.hpp"
#include "net/address.hpp"

namespace siphoc::slp {

/// Well-known service types of the deployment.
inline constexpr std::string_view kSipContactService = "sip-contact";
inline constexpr std::string_view kGatewayService = "gateway";

struct ServiceEntry {
  std::string type;
  std::string key;
  std::string value;
  net::Address origin;    // node that owns the registration
  std::uint32_t version = 0;  // bumped on re-registration; newer wins
  TimePoint expires{};

  /// "service:<type>:<key> -> <value>" (Figure 4 rendering).
  std::string to_string() const;

  bool matches(std::string_view want_type, std::string_view want_key) const {
    return type == want_type && (want_key.empty() || key == want_key);
  }
};

struct ServiceQuery {
  std::uint32_t id = 0;
  net::Address origin;
  std::string type;
  std::string key;  // empty = any key of this type (gateway discovery)
};

struct ServiceReply {
  std::uint32_t id = 0;
  std::vector<ServiceEntry> entries;
};

/// One extension block = any mix of records.
struct ExtensionBlock {
  std::vector<ServiceEntry> advertisements;
  std::vector<ServiceQuery> queries;
  std::vector<ServiceReply> replies;

  bool empty() const {
    return advertisements.empty() && queries.empty() && replies.empty();
  }
};

/// Serializes a block; lifetimes are encoded relative to `now` as
/// milliseconds-remaining (absolute virtual time is node-local).
Bytes encode_extension(const ExtensionBlock& block, TimePoint now);

/// Parses a block; remaining lifetimes are rebased onto `now`.
Result<ExtensionBlock> decode_extension(std::span<const std::uint8_t> data,
                                        TimePoint now);

}  // namespace siphoc::slp
