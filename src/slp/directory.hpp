// Service directory interface -- the "regular SLP interface" the paper's
// components program against (section 2: "A MANET SLP layer providing a
// regular SLP interface but implementing efficient and decentralized
// service lookup functionality").
//
// Both implementations satisfy it:
//   * slp::ManetSlp       -- routing-message piggybacking (the contribution)
//   * slp::MulticastSlp   -- classic multicast/flooding SLP (the baseline
//                            the related work [7] measures as inefficient)
// so the SIPHoc proxy and the gateway/connection providers are oblivious to
// which discovery mechanism runs underneath (ablation seam for bench E2).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "slp/service.hpp"

namespace siphoc::slp {

using LookupCallback = std::function<void(std::optional<ServiceEntry>)>;

class Directory {
 public:
  virtual ~Directory() = default;

  /// Registers/refreshes a service owned by this node.
  virtual void register_service(std::string type, std::string key,
                                std::string value,
                                Duration lifetime = minutes(1)) = 0;
  virtual void deregister_service(const std::string& type,
                                  const std::string& key) = 0;

  /// Resolves (type, key); an empty key matches any entry of the type
  /// (gateway discovery). The callback fires exactly once: with an entry,
  /// or with nullopt after `timeout`.
  virtual void lookup(std::string type, std::string key, Duration timeout,
                      LookupCallback callback) = 0;

  /// Everything this node currently knows (local + learned). The Figure 4
  /// state dump.
  virtual std::vector<ServiceEntry> snapshot() const = 0;

  struct DirectoryStats {
    std::uint64_t lookups = 0;
    std::uint64_t hits_local = 0;   // answered from local/cache immediately
    std::uint64_t hits_remote = 0;  // answered after a network round trip
    std::uint64_t misses = 0;       // timed out
  };
  virtual const DirectoryStats& stats() const = 0;
};

}  // namespace siphoc::slp
