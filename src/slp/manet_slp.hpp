// MANET SLP: decentralized service location via routing-message
// piggybacking -- the paper's central mechanism.
//
// The daemon implements routing::RoutingHandler and is installed into the
// local routing protocol as its extension plugin ("we have to load the
// right plugin for the routing protocol we are using", section 3.1 /
// Figure 4's second line). Behaviour per protocol:
//
//   AODV (reactive plugin):
//     - local registrations ride on RREP answers and (optionally) HELLOs;
//     - a cache-miss lookup piggybacks a ServiceQuery on a destination-less
//       RREQ flood; whichever node owns a match answers with an RREP that
//       carries the ServiceReply *and establishes the route back to it* --
//       service resolution and route setup in one round trip (Figure 5);
//   OLSR (proactive plugin):
//     - local registrations ride on periodic HELLO and TC messages, so TC's
//       MPR flooding converges every node's cache with zero extra packets;
//       lookups are then answered locally.
#pragma once

#include <map>

#include "common/logging.hpp"
#include "net/host.hpp"
#include "routing/protocol.hpp"
#include "slp/directory.hpp"

namespace siphoc::slp {

struct ManetSlpConfig {
  /// Which routing packet kinds carry local advertisements.
  bool advertise_on_hello = false;
  bool advertise_on_tc = true;
  bool advertise_on_rrep = true;
  /// Disables piggybacking entirely (ablation: MANET SLP degenerates to a
  /// cache that never fills; lookups always miss).
  bool piggyback_enabled = true;
  /// Per-packet cap on advertisement records, to bound routing-packet
  /// growth on nodes with many registrations.
  std::size_t max_adverts_per_packet = 8;
  /// Intermediate nodes may answer a flooded query from their cache (like
  /// AODV intermediate-node RREPs); disable to make only the owner answer
  /// (ablation: measures what cache answering buys).
  bool answer_from_cache = true;
  Duration default_lookup_timeout = seconds(4);

  /// Reactive plugin defaults (AODV).
  static ManetSlpConfig for_aodv() {
    ManetSlpConfig c;
    c.advertise_on_hello = false;  // on-demand resolution carries the state
    c.advertise_on_tc = false;
    c.advertise_on_rrep = true;
    return c;
  }
  /// Proactive plugin defaults (OLSR).
  static ManetSlpConfig for_olsr() {
    ManetSlpConfig c;
    c.advertise_on_hello = true;
    c.advertise_on_tc = true;
    c.advertise_on_rrep = false;
    return c;
  }
};

class ManetSlp final : public Directory, public routing::RoutingHandler {
 public:
  /// Installs itself as the protocol's routing handler.
  ManetSlp(net::Host& host, routing::Protocol& protocol, ManetSlpConfig config);
  ~ManetSlp() override;

  // --- Directory ---------------------------------------------------------
  void register_service(std::string type, std::string key, std::string value,
                        Duration lifetime) override;
  void deregister_service(const std::string& type,
                          const std::string& key) override;
  void lookup(std::string type, std::string key, Duration timeout,
              LookupCallback callback) override;
  std::vector<ServiceEntry> snapshot() const override;
  const DirectoryStats& stats() const override { return stats_; }

  // --- RoutingHandler ------------------------------------------------------
  Bytes on_outgoing(const routing::PacketInfo& info) override;
  routing::HandlerVerdict on_incoming(const routing::PacketInfo& info,
                                      std::span<const std::uint8_t> extension,
                                      net::Address from) override;

  /// Learned-entry count (tests).
  std::size_t cache_size() const { return cache_.size(); }

  /// Drops cached entries whose `expires` has passed. Lookups already
  /// filter expired entries, but the invariant monitor wants the directory
  /// itself to forget dead nodes' registrations, not merely ignore them.
  void purge_expired();

  /// Raw cache view including expired entries (invariant monitor / tests);
  /// snapshot() is the filtered public view.
  std::vector<ServiceEntry> cache_contents() const;

 private:
  using Key = std::pair<std::string, std::string>;  // (type, key)

  TimePoint now() const { return host_.sim().now(); }
  std::optional<ServiceEntry> find_match(const std::string& type,
                                         const std::string& key) const;
  void absorb(const ServiceEntry& entry);
  void resolve_pending(const ServiceEntry& entry);
  bool should_advertise(const routing::PacketInfo& info) const;

  struct PendingLookup {
    std::uint32_t id = 0;
    std::string type;
    std::string key;
    LookupCallback callback;
    sim::EventHandle timeout;
    TimePoint started{};  // resolve latency span start
  };

  struct Metrics {
    Metrics(MetricsRegistry& registry, std::string_view node);
    MetricsRegistry* registry;  // the simulation's registry (spans)
    Counter& lookups;
    Counter& cache_hits;
    Counter& remote_resolves;
    Counter& lookup_timeouts;
    Counter& adverts_piggybacked;
    Counter& queries_answered;
    Counter& entries_absorbed;
    Counter& decode_errors;
    Gauge& cache_entries;
    Histogram& resolve_ms;
  };

  net::Host& host_;
  routing::Protocol& protocol_;
  ManetSlpConfig config_;
  Logger log_;

  std::map<Key, ServiceEntry> local_;  // authoritative registrations
  std::map<Key, ServiceEntry> cache_;  // learned from the network
  std::vector<PendingLookup> pending_;
  std::uint32_t next_query_id_ = 1;
  std::uint32_t version_counter_ = 1;
  DirectoryStats stats_;
  Metrics metrics_;
};

}  // namespace siphoc::slp
