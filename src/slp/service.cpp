#include "slp/service.hpp"

namespace siphoc::slp {

namespace {

enum class RecordType : std::uint8_t {
  kAdvertisement = 1,
  kQuery = 2,
  kReply = 3,
};

void encode_entry(BufferWriter& w, const ServiceEntry& e, TimePoint now) {
  w.str(e.type);
  w.str(e.key);
  w.str(e.value);
  w.u32(e.origin.value());
  w.u32(e.version);
  const auto remaining = e.expires > now ? e.expires - now : Duration::zero();
  w.u32(static_cast<std::uint32_t>(to_millis(remaining)));
}

Result<ServiceEntry> decode_entry(BufferReader& r, TimePoint now) {
  ServiceEntry e;
  auto type = r.str();
  if (!type) return type.error();
  e.type = std::move(*type);
  auto key = r.str();
  if (!key) return key.error();
  e.key = std::move(*key);
  auto value = r.str();
  if (!value) return value.error();
  e.value = std::move(*value);
  auto origin = r.u32();
  if (!origin) return origin.error();
  e.origin = net::Address{*origin};
  auto version = r.u32();
  if (!version) return version.error();
  e.version = *version;
  auto lifetime = r.u32();
  if (!lifetime) return lifetime.error();
  e.expires = now + milliseconds(*lifetime);
  return e;
}

}  // namespace

std::string ServiceEntry::to_string() const {
  return "service:" + type + ":" + key + " -> " + value + " (origin " +
         origin.to_string() + ")";
}

Bytes encode_extension(const ExtensionBlock& block, TimePoint now) {
  Bytes out;
  if (block.empty()) return out;
  BufferWriter w(out);
  const auto records = block.advertisements.size() + block.queries.size() +
                       block.replies.size();
  w.u8(static_cast<std::uint8_t>(records));
  for (const auto& e : block.advertisements) {
    w.u8(static_cast<std::uint8_t>(RecordType::kAdvertisement));
    encode_entry(w, e, now);
  }
  for (const auto& q : block.queries) {
    w.u8(static_cast<std::uint8_t>(RecordType::kQuery));
    w.u32(q.id);
    w.u32(q.origin.value());
    w.str(q.type);
    w.str(q.key);
  }
  for (const auto& rep : block.replies) {
    w.u8(static_cast<std::uint8_t>(RecordType::kReply));
    w.u32(rep.id);
    w.u8(static_cast<std::uint8_t>(rep.entries.size()));
    for (const auto& e : rep.entries) encode_entry(w, e, now);
  }
  return out;
}

Result<ExtensionBlock> decode_extension(std::span<const std::uint8_t> data,
                                        TimePoint now) {
  ExtensionBlock block;
  if (data.empty()) return block;
  BufferReader r(data);
  auto count = r.u8();
  if (!count) return count.error();
  for (std::uint8_t i = 0; i < *count; ++i) {
    auto rec_type = r.u8();
    if (!rec_type) return rec_type.error();
    switch (static_cast<RecordType>(*rec_type)) {
      case RecordType::kAdvertisement: {
        auto e = decode_entry(r, now);
        if (!e) return e.error();
        block.advertisements.push_back(std::move(*e));
        break;
      }
      case RecordType::kQuery: {
        ServiceQuery q;
        auto id = r.u32();
        if (!id) return id.error();
        q.id = *id;
        auto origin = r.u32();
        if (!origin) return origin.error();
        q.origin = net::Address{*origin};
        auto type = r.str();
        if (!type) return type.error();
        q.type = std::move(*type);
        auto key = r.str();
        if (!key) return key.error();
        q.key = std::move(*key);
        block.queries.push_back(std::move(q));
        break;
      }
      case RecordType::kReply: {
        ServiceReply rep;
        auto id = r.u32();
        if (!id) return id.error();
        rep.id = *id;
        auto n = r.u8();
        if (!n) return n.error();
        for (std::uint8_t j = 0; j < *n; ++j) {
          auto e = decode_entry(r, now);
          if (!e) return e.error();
          rep.entries.push_back(std::move(*e));
        }
        block.replies.push_back(std::move(rep));
        break;
      }
      default:
        return fail("slp: unknown record type " + std::to_string(*rec_type));
    }
  }
  return block;
}

}  // namespace siphoc::slp
