#include "slp/manet_slp.hpp"

#include <algorithm>

namespace siphoc::slp {

ManetSlp::Metrics::Metrics(MetricsRegistry& r, std::string_view node)
    : registry(&r),
      lookups(r.counter("slp.lookups_total", node, "slp")),
      cache_hits(r.counter("slp.cache_hits_total", node, "slp")),
      remote_resolves(r.counter("slp.remote_resolves_total", node, "slp")),
      lookup_timeouts(r.counter("slp.lookup_timeouts_total", node, "slp")),
      adverts_piggybacked(
          r.counter("slp.adverts_piggybacked_total", node, "slp")),
      queries_answered(r.counter("slp.queries_answered_total", node, "slp")),
      entries_absorbed(r.counter("slp.entries_absorbed_total", node, "slp")),
      decode_errors(r.counter("slp.decode_errors_total", node, "slp")),
      cache_entries(r.gauge("slp.cache_entries", node, "slp")),
      resolve_ms(
          r.histogram("slp.resolve_ms", kLatencyBucketsMs, node, "slp")) {}

ManetSlp::ManetSlp(net::Host& host, routing::Protocol& protocol,
                   ManetSlpConfig config)
    : host_(host),
      protocol_(protocol),
      config_(config),
      log_("slp", host.name()),
      metrics_(host.sim().ctx().metrics(), host.name()) {
  protocol_.set_handler(this);
}

ManetSlp::~ManetSlp() {
  protocol_.set_handler(nullptr);
  // The chaos engine destroys and respawns whole node stacks mid-run;
  // pending lookup timeouts capture `this`, so they must die with us.
  for (auto& p : pending_) p.timeout.cancel();
}

// --------------------------------------------------------------------------
// Directory
// --------------------------------------------------------------------------

void ManetSlp::register_service(std::string type, std::string key,
                                std::string value, Duration lifetime) {
  ServiceEntry e;
  e.type = std::move(type);
  e.key = std::move(key);
  e.value = std::move(value);
  e.origin = host_.manet_address();
  e.version = version_counter_++;
  e.expires = now() + lifetime;
  log_.info("registered ", e.to_string());
  local_[{e.type, e.key}] = std::move(e);
  // Proactive plugins push the new binding out promptly instead of waiting
  // a full HELLO/TC period.
  protocol_.nudge_advertisement();
}

void ManetSlp::deregister_service(const std::string& type,
                                  const std::string& key) {
  local_.erase({type, key});
}

void ManetSlp::lookup(std::string type, std::string key, Duration timeout,
                      LookupCallback callback) {
  purge_expired();
  ++stats_.lookups;
  metrics_.lookups.add();
  if (auto hit = find_match(type, key)) {
    ++stats_.hits_local;
    metrics_.cache_hits.add();
    metrics_.registry->record_span("slp_resolve", "slp", host_.name(), now(),
                                   now());
    metrics_.resolve_ms.observe(0);
    // Resolve asynchronously: callers must not observe reentrant callbacks.
    host_.sim().schedule(microseconds(1),
                         [callback = std::move(callback),
                          entry = std::move(*hit)] { callback(entry); });
    return;
  }

  PendingLookup pending;
  pending.id = next_query_id_++;
  pending.type = type;
  pending.key = key;
  pending.callback = std::move(callback);
  pending.started = now();
  const std::uint32_t id = pending.id;
  pending.timeout = host_.sim().schedule(timeout, [this, id] {
    const auto it =
        std::find_if(pending_.begin(), pending_.end(),
                     [&](const PendingLookup& p) { return p.id == id; });
    if (it == pending_.end()) return;
    auto cb = std::move(it->callback);
    pending_.erase(it);
    ++stats_.misses;
    metrics_.lookup_timeouts.add();
    cb(std::nullopt);
  });
  pending_.push_back(std::move(pending));

  if (config_.piggyback_enabled) {
    // Reactive protocols flood the query piggybacked on a RREQ; proactive
    // ones return false and we simply wait for cache convergence.
    ExtensionBlock block;
    block.queries.push_back(
        {id, host_.manet_address(), std::move(type), std::move(key)});
    protocol_.flood_query(encode_extension(block, now()));
  }
}

void ManetSlp::purge_expired() {
  const std::size_t before = cache_.size();
  std::erase_if(cache_, [this](const auto& kv) {
    return kv.second.expires <= now();
  });
  if (cache_.size() != before) {
    metrics_.cache_entries.set(static_cast<double>(cache_.size()));
  }
}

std::vector<ServiceEntry> ManetSlp::cache_contents() const {
  std::vector<ServiceEntry> out;
  out.reserve(cache_.size());
  for (const auto& [k, e] : cache_) out.push_back(e);
  return out;
}

std::vector<ServiceEntry> ManetSlp::snapshot() const {
  std::vector<ServiceEntry> out;
  out.reserve(local_.size() + cache_.size());
  for (const auto& [k, e] : local_) out.push_back(e);
  for (const auto& [k, e] : cache_) {
    if (e.expires > now()) out.push_back(e);
  }
  return out;
}

std::optional<ServiceEntry> ManetSlp::find_match(const std::string& type,
                                                 const std::string& key) const {
  // Local registrations win; among cached matches prefer the freshest
  // version (re-registrations supersede stale bindings).
  for (const auto& [k, e] : local_) {
    if (e.matches(type, key) && e.expires > now()) return e;
  }
  const ServiceEntry* best = nullptr;
  for (const auto& [k, e] : cache_) {
    if (!e.matches(type, key) || e.expires <= now()) continue;
    if (best == nullptr || e.version > best->version) best = &e;
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

// --------------------------------------------------------------------------
// RoutingHandler
// --------------------------------------------------------------------------

bool ManetSlp::should_advertise(const routing::PacketInfo& info) const {
  using routing::PacketKind;
  switch (info.kind) {
    case PacketKind::kAodvHello:
    case PacketKind::kOlsrHello:
      return config_.advertise_on_hello;
    case PacketKind::kOlsrTc:
      return config_.advertise_on_tc;
    case PacketKind::kAodvRrep:
      return config_.advertise_on_rrep;
    case PacketKind::kAodvRreq:
    case PacketKind::kAodvRerr:
      return false;
  }
  return false;
}

Bytes ManetSlp::on_outgoing(const routing::PacketInfo& info) {
  if (!config_.piggyback_enabled || !should_advertise(info)) return {};
  ExtensionBlock block;
  for (const auto& [k, e] : local_) {
    if (e.expires <= now()) continue;
    block.advertisements.push_back(e);
    if (block.advertisements.size() >= config_.max_adverts_per_packet) break;
  }
  metrics_.adverts_piggybacked.add(block.advertisements.size());
  return encode_extension(block, now());
}

routing::HandlerVerdict ManetSlp::on_incoming(
    const routing::PacketInfo& info, std::span<const std::uint8_t> extension,
    net::Address from) {
  routing::HandlerVerdict verdict;
  if (extension.empty()) return verdict;
  // Housekeeping on packet arrival: dead nodes' registrations leave the
  // cache as soon as their lifetime lapses (invariant monitor checks this).
  purge_expired();
  auto block = decode_extension(extension, now());
  if (!block) {
    metrics_.decode_errors.add();
    log_.warn("malformed SLP extension on ", routing::to_string(info.kind),
              " from ", from.to_string(), ": ", block.error().message);
    return verdict;
  }

  for (const auto& e : block->advertisements) absorb(e);
  for (const auto& rep : block->replies) {
    for (const auto& e : rep.entries) absorb(e);
  }

  // Queries: answer when we own (or know) a match. Answering from cache is
  // allowed -- like AODV intermediate-node RREP -- and shortens the flood.
  for (const auto& q : block->queries) {
    if (q.origin == host_.manet_address()) continue;
    auto match = find_match(q.type, q.key);
    if (!match) continue;
    if (!config_.answer_from_cache &&
        match->origin != host_.manet_address()) {
      continue;  // ablation: only the owner replies
    }
    ExtensionBlock reply;
    reply.replies.push_back({q.id, {*match}});
    // Carry our own registrations along for free cache warming.
    for (const auto& [k, e] : local_) {
      if (e.expires > now() &&
          reply.replies.front().entries.size() <
              config_.max_adverts_per_packet) {
        if (e.type != match->type || e.key != match->key) {
          reply.replies.front().entries.push_back(e);
        }
      }
    }
    verdict.answer = true;
    verdict.reply_extension = encode_extension(reply, now());
    metrics_.queries_answered.add();
    break;
  }
  return verdict;
}

void ManetSlp::absorb(const ServiceEntry& entry) {
  if (entry.origin == host_.manet_address()) return;
  if (entry.expires <= now()) return;
  const Key key{entry.type, entry.key};
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    // Same origin: take newer version / extended lifetime. Different
    // origin: newer version wins (user re-registered elsewhere).
    if (entry.version < it->second.version) return;
    if (entry.version == it->second.version &&
        entry.expires <= it->second.expires) {
      return;
    }
  }
  cache_[key] = entry;
  metrics_.entries_absorbed.add();
  metrics_.cache_entries.set(static_cast<double>(cache_.size()));
  log_.debug("learned ", entry.to_string());
  resolve_pending(entry);
}

void ManetSlp::resolve_pending(const ServiceEntry& entry) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (entry.matches(it->type, it->key)) {
      it->timeout.cancel();
      auto cb = std::move(it->callback);
      const TimePoint started = it->started;
      it = pending_.erase(it);
      ++stats_.hits_remote;
      metrics_.remote_resolves.add();
      metrics_.resolve_ms.observe(to_millis(now() - started));
      metrics_.registry->record_span("slp_resolve", "slp", host_.name(),
                                     started, now());
      cb(entry);
    } else {
      ++it;
    }
  }
}

}  // namespace siphoc::slp
