// Connection Provider (paper section 2): "manages connections of the node
// to the Internet when there is a gateway in the MANET. It periodically
// checks whether it can find an gateway service (using MANET SLP) and open
// a layer two tunnel connection to the node offering the tunnel server."
#pragma once

#include "siphoc/tunnel.hpp"
#include "slp/directory.hpp"

namespace siphoc {

struct ConnectionProviderConfig {
  Duration check_interval = seconds(5);
  Duration lookup_timeout = seconds(3);
};

class ConnectionProvider {
 public:
  /// `on_change` fires when Internet reachability flips.
  ConnectionProvider(net::Host& host, slp::Directory& directory,
                     ConnectionProviderConfig config = {},
                     std::function<void(bool online)> on_change = {});
  ~ConnectionProvider();

  void start();
  void stop();

  /// The node is online when it has native wired connectivity or an open
  /// tunnel to a gateway.
  bool internet_available() const;
  /// The address this node is reachable at from the Internet (wired or
  /// tunnel-assigned), or unspecified when offline.
  net::Address internet_address() const;

  bool tunnel_up() const { return tunnel_.connected(); }
  net::Endpoint current_gateway() const { return tunnel_.gateway(); }

  std::uint64_t gateway_discoveries() const { return discoveries_; }

 private:
  void tick();

  net::Host& host_;
  slp::Directory& directory_;
  ConnectionProviderConfig config_;
  Logger log_;
  std::function<void(bool)> on_change_;
  TunnelClient tunnel_;
  sim::PeriodicTimer timer_;
  bool started_ = false;
  bool lookup_in_flight_ = false;
  bool failover_pending_ = false;  // tunnel lost; next attach is a failover
  TimePoint loss_time_{};          // when the tunnel went down
  std::uint64_t discoveries_ = 0;
};

}  // namespace siphoc
