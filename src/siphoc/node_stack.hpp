// NodeStack: the full per-node SIPHoc deployment (paper Figure 1).
//
// Assembles, in the same composition the paper runs as five operating
// system processes on each laptop/iPAQ:
//   * the MANET routing daemon (AODV or OLSR),
//   * MANET SLP, installed as the routing protocol's piggyback plugin,
//   * the SIPHoc proxy (outbound proxy for the local VoIP application),
//   * the Gateway Provider (activates when the node has an uplink),
//   * the Connection Provider (discovers gateways, maintains the tunnel).
// The VoIP application itself (voip::SoftPhone) attaches on top through
// nothing but the standard SIP interface on localhost:5060.
//
// This is the library's primary public entry point: construct a Host per
// node, wrap it in a NodeStack, start() -- the node is a SIPHoc node.
#pragma once

#include <memory>
#include <optional>

#include "routing/aodv.hpp"
#include "routing/olsr.hpp"
#include "siphoc/connection_provider.hpp"
#include "siphoc/gateway_provider.hpp"
#include "siphoc/proxy.hpp"
#include "slp/manet_slp.hpp"

namespace siphoc {

enum class RoutingKind { kAodv, kOlsr };

struct NodeStackConfig {
  RoutingKind routing = RoutingKind::kAodv;
  routing::AodvConfig aodv;
  routing::OlsrConfig olsr;
  /// Defaults to the plugin matching the routing protocol.
  std::optional<slp::ManetSlpConfig> slp;
  ProxyConfig proxy;
  GatewayProviderConfig gateway;
  ConnectionProviderConfig connection;
  bool run_gateway_provider = true;
  bool run_connection_provider = true;
};

class NodeStack {
 public:
  /// `internet` supplies DNS for provider domains; pass nullptr for nodes
  /// that will never reach the Internet.
  NodeStack(net::Host& host, net::Internet* internet,
            NodeStackConfig config = {});
  ~NodeStack();

  NodeStack(const NodeStack&) = delete;
  NodeStack& operator=(const NodeStack&) = delete;

  void start();
  void stop();

  net::Host& host() { return host_; }
  routing::Protocol& routing() { return *routing_; }
  slp::ManetSlp& slp() { return *slp_; }
  SiphocProxy& proxy() { return *proxy_; }
  GatewayProvider* gateway_provider() { return gateway_.get(); }
  ConnectionProvider* connection_provider() { return connection_.get(); }

  bool internet_available() const {
    return connection_ ? connection_->internet_available()
                       : host_.has_wired();
  }

 private:
  net::Host& host_;
  NodeStackConfig config_;
  std::unique_ptr<routing::Protocol> routing_;
  std::unique_ptr<slp::ManetSlp> slp_;
  std::unique_ptr<SiphocProxy> proxy_;
  std::unique_ptr<GatewayProvider> gateway_;
  std::unique_ptr<ConnectionProvider> connection_;
  bool started_ = false;
};

}  // namespace siphoc
