#include "siphoc/gateway_provider.hpp"

#include "common/metrics.hpp"

namespace siphoc {

GatewayProvider::GatewayProvider(net::Host& host, slp::Directory& directory,
                                 GatewayProviderConfig config)
    : host_(host),
      directory_(directory),
      config_(config),
      log_("gateway", host.name()),
      server_(host) {}

GatewayProvider::~GatewayProvider() { stop(); }

void GatewayProvider::start() {
  if (started_) return;
  started_ = true;
  tick();
  timer_.start(host_.sim(), config_.advertise_interval, [this] { tick(); });
}

void GatewayProvider::stop() {
  if (!started_) return;
  started_ = false;
  timer_.stop();
  server_.stop();
  directory_.deregister_service(std::string(slp::kGatewayService),
                                host_.manet_address().to_string());
}

void GatewayProvider::tick() {
  const bool online = host_.has_wired();
  if (online && !server_.running()) {
    server_.start();
    log_.info("internet uplink present, tunnel server started");
  } else if (!online && server_.running()) {
    server_.stop();
    directory_.deregister_service(std::string(slp::kGatewayService),
                                  host_.manet_address().to_string());
    log_.info("internet uplink lost, tunnel server stopped");
    return;
  }
  if (!online) return;
  // Refresh the gateway advertisement; the value is the MANET endpoint of
  // our tunnel server. The key is this gateway's own address so multiple
  // gateways coexist in every cache (clients find any via wildcard lookup).
  const net::Endpoint ep{host_.manet_address(), net::kTunnelPort};
  host_.sim().ctx().metrics()
      .counter("gateway.advertisements_total", host_.name(), "gateway")
      .add();
  directory_.register_service(std::string(slp::kGatewayService),
                              host_.manet_address().to_string(),
                              ep.to_string(), config_.advertise_lifetime);
}

}  // namespace siphoc
