#include "siphoc/node_stack.hpp"

namespace siphoc {

NodeStack::NodeStack(net::Host& host, net::Internet* internet,
                     NodeStackConfig config)
    : host_(host), config_(std::move(config)) {
  if (config_.routing == RoutingKind::kAodv) {
    routing_ = std::make_unique<routing::Aodv>(host_, config_.aodv);
  } else {
    routing_ = std::make_unique<routing::Olsr>(host_, config_.olsr);
  }

  const slp::ManetSlpConfig slp_config = config_.slp.value_or(
      config_.routing == RoutingKind::kAodv
          ? slp::ManetSlpConfig::for_aodv()
          : slp::ManetSlpConfig::for_olsr());
  slp_ = std::make_unique<slp::ManetSlp>(host_, *routing_, slp_config);

  proxy_ = std::make_unique<SiphocProxy>(host_, *slp_, config_.proxy);
  if (internet != nullptr) {
    proxy_->set_dns_resolver([internet](const std::string& domain) {
      return internet->resolve(domain);
    });
  }

  if (config_.run_gateway_provider) {
    gateway_ = std::make_unique<GatewayProvider>(host_, *slp_,
                                                 config_.gateway);
  }
  if (config_.run_connection_provider) {
    // Reachability flips reach the proxy: a re-attach may carry a fresh
    // tunnel lease, and upstream provider bindings must follow it.
    connection_ = std::make_unique<ConnectionProvider>(
        host_, *slp_, config_.connection,
        [this](bool online) { proxy_->on_internet_change(online); });
  }
  proxy_->set_internet_address_fn([this] {
    if (connection_) return connection_->internet_address();
    return host_.has_wired() ? host_.wired_address() : net::Address{};
  });
}

NodeStack::~NodeStack() { stop(); }

void NodeStack::start() {
  if (started_) return;
  started_ = true;
  routing_->start();
  if (gateway_) gateway_->start();
  if (connection_) connection_->start();
}

void NodeStack::stop() {
  if (!started_) return;
  started_ = false;
  if (connection_) connection_->stop();
  if (gateway_) gateway_->stop();
  routing_->stop();
}

}  // namespace siphoc
