// The SIPHoc Proxy (paper section 2, Figure 1):
//
//   "A proxy with a standard SIP interface but implementing MANET-specific
//    functionality. Each proxy serves as an outbound SIP proxy for the
//    local VoIP application."
//
// Behaviour (paper section 3.1, Figure 3):
//   * REGISTER from the local VoIP app (step 1): store the binding locally
//     and advertise this proxy's own MANET endpoint as the user's contact
//     in MANET SLP (step 2, Figure 4). When the node is attached to the
//     Internet and the user's provider domain resolves, the REGISTER is
//     additionally relayed upstream (section 3.2) with the Contact
//     rewritten to the node's Internet-visible endpoint.
//   * INVITE from the local app (step 5): resolve the callee's AOR through
//     MANET SLP (steps 6-7) and forward to the remote proxy's endpoint;
//     on SLP miss, fall back to the Internet via DNS on the URI domain --
//     which is exactly the step that cannot work for providers requiring
//     their own outbound proxy (the polyphone.ethz.ch open issue).
//   * Requests arriving from the network for a locally registered user
//     (step 8) are delivered to the VoIP app's registered contact.
//
// The proxy is stateless (RFC 3261 16.11): it pushes/pops Via and lets the
// user agents' transactions provide reliability. Crossing between the MANET
// and the Internet realm it also rewrites loopback Contacts to the proper
// realm endpoint and runs a small SDP ALG so RTP flows over the tunnel.
#pragma once

#include <map>
#include <vector>

#include "common/logging.hpp"
#include "sim/simulator.hpp"
#include "sip/transport.hpp"
#include "slp/directory.hpp"

namespace siphoc {

struct ProxyConfig {
  std::uint16_t port = 5060;
  Duration slp_lookup_timeout = seconds(4);
  Duration slp_advertise_lifetime = minutes(2);
  Duration binding_lifetime_cap = seconds(3600);
  /// Fix for the paper's §3.2 open issue: providers that require their own
  /// outbound proxy cannot be reached via the URI domain's DNS entry
  /// (SIPHoc overwrote the client's outbound-proxy setting). Provisioning
  /// the provider's proxy endpoint per domain lets the SIPHoc proxy relay
  /// through it instead.
  std::map<std::string, net::Endpoint> provider_outbound_proxies;
  /// Upstream REGISTER refresh coalescing. Zero (default) relays every
  /// REGISTER upstream immediately, as before. A positive window answers
  /// pure *refreshes* (same user, same contact, binding still unexpired)
  /// locally with 200 and batches the upstream relays: per window at most
  /// one burst goes out, carrying only the latest REGISTER per AOR -- so a
  /// provider facing thousands of phones sees one refresh per phone per
  /// window instead of one per refresh timer firing.
  Duration upstream_refresh_window = Duration::zero();
};

class SiphocProxy {
 public:
  SiphocProxy(net::Host& host, slp::Directory& directory,
              ProxyConfig config = {});
  ~SiphocProxy();

  /// Wiring for Internet-connected operation: the current Internet-visible
  /// address (unspecified = offline) and a DNS resolver for SIP domains.
  void set_internet_address_fn(std::function<net::Address()> fn) {
    internet_address_ = std::move(fn);
  }
  void set_dns_resolver(
      std::function<std::optional<net::Address>(const std::string&)> fn) {
    dns_ = std::move(fn);
  }

  /// Connection-provider hook: Internet reachability flipped. On re-attach
  /// the node's Internet-visible address may have changed (a new tunnel
  /// lease, possibly from a different gateway), which silently invalidates
  /// every contact this proxy registered upstream -- so each locally bound
  /// AOR's REGISTER is replayed toward its provider with the new address.
  void on_internet_change(bool online);

  net::Endpoint manet_endpoint() const {
    return {host_.manet_address(), config_.port};
  }

  struct ProxyStats {
    std::uint64_t registrations = 0;
    std::uint64_t upstream_registers = 0;
    std::uint64_t requests_forwarded = 0;
    std::uint64_t slp_lookups = 0;
    std::uint64_t slp_hits = 0;
    std::uint64_t internet_forwards = 0;
    std::uint64_t not_found = 0;
    std::uint64_t delivered_local = 0;
    std::uint64_t upstream_refreshes_coalesced = 0;
    std::uint64_t upstream_refresh_flushes = 0;
    std::uint64_t retry_after_retries = 0;
    std::uint64_t upstream_rebinds = 0;
  };
  const ProxyStats& stats() const { return stats_; }

  struct Binding {
    std::string aor;
    net::Endpoint contact;  // the local VoIP app (loopback)
    TimePoint expires{};
  };
  std::optional<Binding> binding(const std::string& user) const;
  std::size_t binding_count() const;

 private:
  void on_message(sip::Message message, net::Endpoint from);
  void handle_register(sip::Message request, net::Endpoint from);
  void route_request(sip::Message request, net::Endpoint from);
  void forward_request(sip::Message request, net::Endpoint dst);
  void deliver_to_local(sip::Message request, const Binding& binding);
  void forward_via_internet(sip::Message request, const std::string& domain,
                            net::Endpoint from);
  void forward_response(sip::Message response);
  void respond_error(const sip::Message& request, int status,
                     net::Endpoint from);

  /// Sends every pending coalesced upstream REGISTER as one burst.
  void flush_upstream_refreshes();

  bool egress_is_internet(net::Address dst) const;
  net::Address current_internet_address() const;
  /// Where requests for `domain` go on the Internet: the provisioned
  /// provider outbound proxy if any, else DNS on the domain.
  std::optional<net::Endpoint> resolve_provider(const std::string& domain);
  /// Rewrites a loopback Contact to this proxy's endpoint in the target
  /// realm, and the SDP connection address when leaving toward the
  /// Internet.
  void rewrite_for_egress(sip::Message& message, net::Endpoint dst);

  net::Host& host_;
  slp::Directory& directory_;
  ProxyConfig config_;
  Logger log_;
  sip::Transport transport_;
  std::function<net::Address()> internet_address_;
  std::function<std::optional<net::Address>(const std::string&)> dns_;

  std::map<std::string, Binding> bindings_;  // by user name
  std::uint64_t branch_counter_ = 0;
  ProxyStats stats_;

  // Coalesced upstream refreshes, latest REGISTER per AOR, flushed in one
  // burst when the window timer fires.
  struct PendingUpstream {
    sip::Message request;
    net::Endpoint provider;
  };
  std::map<std::string, PendingUpstream> pending_upstream_;
  bool upstream_flush_scheduled_ = false;
  sim::EventHandle upstream_flush_;

  // Last REGISTER relayed upstream per AOR (pre-Via, pre-rewrite), kept so
  // a re-attach under a fresh tunnel lease can replay it -- the provider
  // would otherwise keep serving the dead address until the phone's own
  // refresh, hours later.
  std::map<std::string, PendingUpstream> upstream_replay_;
  net::Address last_upstream_inet_;

  // Internet-forwarded requests kept around briefly so a provider's
  // 480 + Retry-After (P2P ring mid-repair) can be answered with ONE
  // delayed re-forward instead of surfacing the failure to the caller.
  struct RetryableForward {
    sip::Message request;  // pre-Via copy
    std::string domain;
    net::Endpoint from;
    TimePoint expires{};
  };
  static constexpr std::size_t kMaxRetryable = 16;
  std::map<std::string, RetryableForward> retryable_;  // call-id + cseq
  std::vector<sim::EventHandle> retry_timers_;
};

}  // namespace siphoc
