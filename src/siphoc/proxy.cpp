#include "siphoc/proxy.hpp"

#include <charconv>

#include "common/metrics.hpp"
#include "sip/sdp.hpp"

namespace siphoc {

using sip::Message;

namespace {

Counter& proxy_counter(net::Host& host, const std::string& name) {
  return host.sim().ctx().metrics().counter(name, host.name(), "proxy");
}

}  // namespace

SiphocProxy::SiphocProxy(net::Host& host, slp::Directory& directory,
                         ProxyConfig config)
    : host_(host),
      directory_(directory),
      config_(config),
      log_("proxy", host.name()),
      transport_(host, config_.port) {
  transport_.set_handler([this](Message m, net::Endpoint from) {
    on_message(std::move(m), from);
  });
}

SiphocProxy::~SiphocProxy() {
  upstream_flush_.cancel();
  for (auto& timer : retry_timers_) timer.cancel();
}

std::optional<SiphocProxy::Binding> SiphocProxy::binding(
    const std::string& user) const {
  const auto it = bindings_.find(user);
  if (it == bindings_.end() || it->second.expires <= host_.sim().now()) {
    return std::nullopt;
  }
  return it->second;
}

std::size_t SiphocProxy::binding_count() const {
  std::size_t n = 0;
  for (const auto& [user, b] : bindings_) {
    if (b.expires > host_.sim().now()) ++n;
  }
  return n;
}

net::Address SiphocProxy::current_internet_address() const {
  return internet_address_ ? internet_address_() : net::Address{};
}

std::optional<net::Endpoint> SiphocProxy::resolve_provider(
    const std::string& domain) {
  if (const auto it = config_.provider_outbound_proxies.find(domain);
      it != config_.provider_outbound_proxies.end()) {
    return it->second;
  }
  if (dns_) {
    if (const auto addr = dns_(domain)) return net::Endpoint{*addr, 5060};
  }
  return std::nullopt;
}

bool SiphocProxy::egress_is_internet(net::Address dst) const {
  return dst.in_prefix(net::kInternetPrefix, net::kInternetPrefixLen) ||
         dst.in_prefix(net::kTunnelPrefix, net::kTunnelPrefixLen);
}

// --------------------------------------------------------------------------
// Dispatch
// --------------------------------------------------------------------------

void SiphocProxy::on_message(Message message, net::Endpoint from) {
  if (message.is_response()) {
    forward_response(std::move(message));
    return;
  }
  if (message.method() == sip::kRegister && from.address.is_loopback()) {
    handle_register(std::move(message), from);
    return;
  }
  route_request(std::move(message), from);
}

void SiphocProxy::respond_error(const Message& request, int status,
                                net::Endpoint from) {
  if (request.method() == sip::kAck) return;  // never answer an ACK
  Message response = Message::response_to(request, status);
  if (!transport_.send_response(response)) {
    transport_.send(response, from);
  }
}

// --------------------------------------------------------------------------
// REGISTER (Figure 3 steps 1-2)
// --------------------------------------------------------------------------

void SiphocProxy::handle_register(Message request, net::Endpoint from) {
  const auto to = request.to();
  const auto contact = request.contact();
  if (!to || !contact) {
    respond_error(request, 400, from);
    return;
  }
  const std::string aor = to->uri.aor();
  const std::string user = to->uri.user;

  std::uint32_t expires =
      static_cast<std::uint32_t>(to_seconds(config_.binding_lifetime_cap));
  if (const auto h = request.header("expires")) {
    std::from_chars(h->data(), h->data() + h->size(), expires);
  }

  // A pure refresh re-asserts an unexpired binding with the same contact;
  // only those are eligible for upstream coalescing -- new registrations
  // and contact changes must reach the provider (and the phone must see
  // the provider's verdict) right away.
  const auto prev = binding(user);
  const bool is_refresh = prev.has_value() && contact &&
                          contact->uri.numeric_endpoint() &&
                          prev->contact == *contact->uri.numeric_endpoint();

  if (expires == 0) {
    bindings_.erase(user);
    upstream_replay_.erase(aor);
    directory_.deregister_service(std::string(slp::kSipContactService), aor);
  } else {
    const auto contact_ep = contact->uri.numeric_endpoint();
    if (!contact_ep) {
      respond_error(request, 400, from);
      return;
    }
    Binding b;
    b.aor = aor;
    b.contact = *contact_ep;
    b.expires = host_.sim().now() + seconds(expires);
    bindings_[user] = std::move(b);
    ++stats_.registrations;
    proxy_counter(host_, "proxy.registrations_total").add();

    // Step 2: advertise *this proxy's* MANET endpoint as the responsible
    // contact for the user -- the Figure 4 state.
    directory_.register_service(
        std::string(slp::kSipContactService), aor,
        manet_endpoint().to_string(),
        std::min(config_.slp_advertise_lifetime, Duration(seconds(expires))));
    log_.info("registered ", aor, " -> ", contact_ep->to_string(),
              "; advertised ", manet_endpoint().to_string(), " via SLP");
  }

  // Section 3.2: with Internet connectivity, relay the REGISTER to the
  // user's provider so the official SIP address works transparently. The
  // provider's response (200 -- or 403 from an outbound-proxy-requiring
  // provider) is what the VoIP app then sees.
  const net::Address inet = current_internet_address();
  if (!inet.is_unspecified()) {
    if (const auto provider = resolve_provider(to->uri.host)) {
      if (expires != 0) {
        // Keep the pristine REGISTER around: a later re-attach under a new
        // tunnel lease replays it so the provider learns the new contact.
        upstream_replay_[aor] = PendingUpstream{request, *provider};
        last_upstream_inet_ = inet;
      }
      if (is_refresh && expires != 0 &&
          config_.upstream_refresh_window > Duration::zero()) {
        // Coalesce: answer the phone locally, park the upstream relay --
        // latest REGISTER per AOR wins -- and flush once per window. The
        // provider's eventual 200 re-traverses a transaction the phone
        // already completed and is absorbed as a retransmission. The
        // upstream Expires is stretched to cover the window, so the
        // provider binding outlives the gap between flushes even though
        // the phone refreshes on its own shorter lifetime.
        Message parked = request;
        parked.set_header(
            "expires",
            std::to_string(expires + static_cast<std::uint32_t>(to_seconds(
                                         config_.upstream_refresh_window))));
        pending_upstream_[aor] = PendingUpstream{std::move(parked), *provider};
        ++stats_.upstream_refreshes_coalesced;
        proxy_counter(host_, "proxy.upstream_refreshes_coalesced_total").add();
        if (!upstream_flush_scheduled_) {
          upstream_flush_scheduled_ = true;
          upstream_flush_ = host_.sim().schedule(
              config_.upstream_refresh_window,
              [this] { flush_upstream_refreshes(); });
        }
      } else {
        Message upstream = request;
        if (expires != 0 &&
            config_.upstream_refresh_window > Duration::zero()) {
          upstream.set_header(
              "expires",
              std::to_string(expires + static_cast<std::uint32_t>(to_seconds(
                                           config_.upstream_refresh_window))));
        }
        ++stats_.upstream_registers;
        proxy_counter(host_, "proxy.upstream_registers_total").add();
        forward_request(std::move(upstream), *provider);
        return;
      }
    }
  }

  // Isolated MANET: the proxy itself acts as the registrar.
  Message ok = Message::response_to(request, 200);
  ok.add_header("contact", contact->to_string() + ";expires=" +
                               std::to_string(expires));
  if (!transport_.send_response(ok)) transport_.send(ok, from);
}

void SiphocProxy::flush_upstream_refreshes() {
  upstream_flush_scheduled_ = false;
  if (pending_upstream_.empty()) return;
  ++stats_.upstream_refresh_flushes;
  proxy_counter(host_, "proxy.upstream_refresh_flushes_total").add();
  auto pending = std::move(pending_upstream_);
  pending_upstream_.clear();
  const net::Address inet = current_internet_address();
  for (auto& [aor, p] : pending) {
    if (inet.is_unspecified()) break;  // went offline: drop, next refresh
                                       // re-queues
    ++stats_.upstream_registers;
    proxy_counter(host_, "proxy.upstream_registers_total").add();
    forward_request(std::move(p.request), p.provider);
  }
}

void SiphocProxy::on_internet_change(bool online) {
  if (!online) return;
  const net::Address inet = current_internet_address();
  if (inet.is_unspecified() || inet == last_upstream_inet_) return;
  last_upstream_inet_ = inet;
  const TimePoint now = host_.sim().now();
  for (auto it = upstream_replay_.begin(); it != upstream_replay_.end();) {
    // Drop replays whose local binding is gone or expired.
    const auto to = it->second.request.to();
    std::optional<Binding> bound;
    if (to) bound = binding(to->uri.user);
    if (!bound || bound->expires <= now) {
      it = upstream_replay_.erase(it);
      continue;
    }
    ++stats_.upstream_rebinds;
    proxy_counter(host_, "proxy.upstream_rebinds_total").add();
    ++stats_.upstream_registers;
    proxy_counter(host_, "proxy.upstream_registers_total").add();
    log_.info("re-attached as ", inet.to_string(), "; rebinding ", it->first,
              " upstream");
    forward_request(it->second.request, it->second.provider);
    ++it;
  }
}

// --------------------------------------------------------------------------
// Request routing (Figure 3 steps 5-8)
// --------------------------------------------------------------------------

void SiphocProxy::route_request(Message request, net::Endpoint from) {
  const int mf = request.max_forwards();
  if (mf <= 0) {
    respond_error(request, 483, from);
    return;
  }
  request.set_max_forwards(mf - 1);

  const sip::Uri& uri = request.request_uri();
  const auto numeric = uri.numeric_endpoint();

  // Step 8: a request for one of our registered users is handed to the
  // local VoIP application -- either addressed to our own endpoint
  // (in-dialog / provider-routed) or still carrying the AOR.
  const bool addressed_to_us =
      numeric && host_.owns_address(numeric->address);
  if (addressed_to_us || !numeric) {
    if (const auto b = binding(uri.user)) {
      deliver_to_local(std::move(request), *b);
      return;
    }
    // An AOR bound here by full AOR match (user registered under another
    // domain spelling) -- check before resolving further.
    if (!numeric) {
      for (const auto& [user, b] : bindings_) {
        if (b.aor == uri.aor() && b.expires > host_.sim().now()) {
          deliver_to_local(std::move(request), b);
          return;
        }
      }
    }
    if (addressed_to_us) {
      ++stats_.not_found;
    proxy_counter(host_, "proxy.not_found_total").add();
      respond_error(request, 404, from);
      return;
    }
  }

  // Direct forward: in-dialog requests address a concrete remote endpoint.
  if (numeric && !host_.owns_address(numeric->address)) {
    forward_request(std::move(request), *numeric);
    return;
  }

  // Steps 6-7: consult MANET SLP for the callee's proxy endpoint.
  const std::string aor = uri.aor();
  const std::string domain = uri.host;
  ++stats_.slp_lookups;
  proxy_counter(host_, "proxy.slp_lookups_total").add();
  log_.info("resolving ", aor, " via MANET SLP");
  directory_.lookup(
      std::string(slp::kSipContactService), aor, config_.slp_lookup_timeout,
      [this, request = std::move(request), from,
       domain](std::optional<slp::ServiceEntry> entry) mutable {
        if (entry) {
          const auto ep = net::Endpoint::parse(entry->value);
          if (ep) {
            ++stats_.slp_hits;
            proxy_counter(host_, "proxy.slp_hits_total").add();
            log_.info("SLP resolved ", request.request_uri().aor(), " -> ",
                      ep->to_string());
            forward_request(std::move(request), *ep);
            return;
          }
        }
        // Not in the MANET: try the Internet (section 3.2).
        forward_via_internet(std::move(request), domain, from);
      });
}

void SiphocProxy::forward_via_internet(Message request,
                                       const std::string& domain,
                                       net::Endpoint from) {
  const net::Address inet = current_internet_address();
  if (inet.is_unspecified()) {
    ++stats_.not_found;
    proxy_counter(host_, "proxy.not_found_total").add();
    log_.info("cannot resolve ", request.request_uri().aor(),
              ": not in MANET, no Internet connectivity");
    respond_error(request, 404, from);
    return;
  }
  // Provisioned provider outbound proxy wins over DNS (§3.2 open-issue
  // fix: some providers only accept requests through their own proxy).
  const auto provider = resolve_provider(domain);
  if (!provider) {
    ++stats_.not_found;
    proxy_counter(host_, "proxy.not_found_total").add();
    log_.info("cannot resolve provider domain '", domain, "'");
    respond_error(request, 404, from);
    return;
  }
  ++stats_.internet_forwards;
  proxy_counter(host_, "proxy.internet_forwards_total").add();

  // Park a pre-Via copy so a 480 + Retry-After from the provider (its P2P
  // ring is mid-repair) can trigger one delayed re-forward. Bounded: prune
  // what expired, and when the window is full just forgo retryability.
  if (request.method() != sip::kAck) {
    const TimePoint now = host_.sim().now();
    for (auto it = retryable_.begin(); it != retryable_.end();) {
      it = it->second.expires <= now ? retryable_.erase(it) : std::next(it);
    }
    if (retryable_.size() < kMaxRetryable) {
      std::string key = request.call_id();
      if (const auto cseq = request.cseq()) {
        key += " " + cseq->to_string();
      }
      retryable_[key] = RetryableForward{request, domain, from,
                                         now + seconds(32)};
    }
  }
  forward_request(std::move(request), *provider);
}

void SiphocProxy::deliver_to_local(Message request, const Binding& binding) {
  ++stats_.delivered_local;
  proxy_counter(host_, "proxy.delivered_local_total").add();
  sip::Via via;
  via.host = net::kLoopbackAddress.to_string();
  via.port = config_.port;
  via.params["branch"] =
      std::string(sip::kBranchCookie) + "phoc" +
      std::to_string(++branch_counter_);
  request.push_via(via);
  transport_.send(request, binding.contact);
}

void SiphocProxy::forward_request(Message request, net::Endpoint dst) {
  rewrite_for_egress(request, dst);
  sip::Via via;
  via.host = egress_is_internet(dst.address)
                 ? current_internet_address().to_string()
                 : host_.manet_address().to_string();
  via.port = config_.port;
  via.params["branch"] =
      std::string(sip::kBranchCookie) + "phoc" +
      std::to_string(++branch_counter_);
  request.push_via(via);
  ++stats_.requests_forwarded;
  proxy_counter(host_, "proxy.requests_forwarded_total").add();
  transport_.send(request, dst);
}

void SiphocProxy::forward_response(Message response) {
  // Pop our Via (whichever realm endpoint it names) and relay to the next.
  auto vias = response.vias();
  if (vias.empty()) return;
  const std::string& top_host = vias.front().host;
  const bool ours = top_host == host_.manet_address().to_string() ||
                    top_host == current_internet_address().to_string() ||
                    top_host == net::kLoopbackAddress.to_string();
  if (!ours || vias.front().port != config_.port) {
    log_.warn("response with foreign top Via ", top_host, ", dropping");
    return;
  }
  response.pop_via();

  // 480 + Retry-After from a provider whose resolution ring is still
  // stabilizing: swallow the failure and re-forward the parked request
  // once, after the indicated delay, instead of relaying it to the caller.
  if (response.status() == 480) {
    if (const auto after = response.header("retry-after")) {
      std::string key = response.call_id();
      if (const auto cseq = response.cseq()) {
        key += " " + cseq->to_string();
      }
      const auto it = retryable_.find(key);
      if (it != retryable_.end() &&
          it->second.expires > host_.sim().now()) {
        RetryableForward parked = std::move(it->second);
        retryable_.erase(it);  // one retry per forwarded request
        int delay_s = 1;
        int parsed = 0;
        const auto [ptr, ec] = std::from_chars(
            after->data(), after->data() + after->size(), parsed);
        if (ec == std::errc{} && parsed > 0 && parsed <= 16) delay_s = parsed;
        ++stats_.retry_after_retries;
        proxy_counter(host_, "proxy.retry_after_retries_total").add();
        log_.info("provider asked to retry ",
                  parked.request.request_uri().aor(), " after ", delay_s,
                  "s (ring stabilizing)");
        std::erase_if(retry_timers_,
                      [](const sim::EventHandle& h) { return !h.pending(); });
        retry_timers_.push_back(host_.sim().schedule(
            seconds(delay_s), [this, parked = std::move(parked)]() mutable {
              forward_via_internet(std::move(parked.request), parked.domain,
                                   parked.from);
            }));
        return;
      }
    }
  }

  const auto next = response.top_via();
  if (!next) return;
  auto dst = next->response_endpoint();
  if (!dst) {
    log_.warn("cannot route response: unresolvable Via");
    return;
  }
  rewrite_for_egress(response, *dst);
  transport_.send(response, *dst);
}

// --------------------------------------------------------------------------
// Realm crossing: Contact rewriting + SDP ALG
// --------------------------------------------------------------------------

void SiphocProxy::rewrite_for_egress(Message& message, net::Endpoint dst) {
  if (dst.address.is_loopback()) return;  // staying on this node
  const bool to_internet = egress_is_internet(dst.address);

  // Loopback Contact (the local VoIP app) must become an address the peer
  // can route to: this proxy's realm endpoint, keeping the user part so
  // in-dialog requests can be matched back to the binding.
  if (const auto contact = message.contact()) {
    if (const auto ep = contact->uri.numeric_endpoint();
        ep && ep->address.is_loopback()) {
      sip::NameAddr rewritten = *contact;
      const net::Address realm_addr =
          to_internet ? current_internet_address() : host_.manet_address();
      rewritten.uri = sip::Uri::from_endpoint({realm_addr, config_.port},
                                              contact->uri.user);
      message.set_header("contact", rewritten.to_string());
    }
  }

  // SDP ALG: media leaving toward the Internet must carry the
  // Internet-visible address (RTP then rides the tunnel).
  if (to_internet && message.header("content-type") &&
      *message.header("content-type") == sip::kSdpContentType) {
    auto sdp = sip::Sdp::parse(message.body());
    if (sdp && (sdp->connection.in_prefix(net::kManetPrefix,
                                          net::kManetPrefixLen) ||
                sdp->connection.is_loopback())) {
      sdp->connection = current_internet_address();
      message.set_body(sdp->serialize(), std::string(sip::kSdpContentType));
    }
  }
}

}  // namespace siphoc
