// Layer-2 tunnel between a MANET node and a gateway node (paper section 2).
//
// "It also starts a layer two tunnel server ready to accept connections ...
//  Since the gateway node will directly forward all the traffic it receives
//  on the tunnel interface to the Internet, any node with a tunnel
//  connection is automatically attached to the Internet as well."
//
// Emulation: IP-in-UDP encapsulation on port 5100. The server assigns the
// client an address from its own slice of 10.8.0.0/16 (the /24 keyed by
// the gateway's MANET octet, so concurrent gateways never hand out the
// same lease), attaches that address to the Internet
// segment on the client's behalf (bridging, as an L2 tunnel does), and
// relays datagrams both ways. The client installs a tunnel interface plus
// routes for the Internet and tunnel prefixes, with keepalive-based failure
// detection so mobility-induced gateway loss tears the attachment down.
#pragma once

#include <functional>
#include <map>

#include "common/logging.hpp"
#include "net/host.hpp"

namespace siphoc {

class TunnelServer {
 public:
  explicit TunnelServer(net::Host& host);
  ~TunnelServer();

  void start();
  void stop();
  bool running() const { return running_; }

  std::size_t client_count() const { return clients_.size(); }

  struct TunnelStats {
    std::uint64_t datagrams_to_internet = 0;
    std::uint64_t datagrams_to_clients = 0;
    std::uint64_t bytes_relayed = 0;
  };
  const TunnelStats& stats() const { return stats_; }

 private:
  struct Client {
    net::Address tunnel_address;
    net::Endpoint manet_endpoint;  // where to send encapsulated traffic
    TimePoint last_seen{};
  };

  void on_packet(const net::Datagram& d);
  void relay_to_client(const Client& client, const net::Datagram& inner);
  void expire_clients();

  net::Host& host_;
  Logger log_;
  bool running_ = false;
  std::map<net::Address, Client> clients_;  // by tunnel address
  std::uint8_t next_client_octet_ = 1;
  sim::PeriodicTimer expiry_timer_;
  TunnelStats stats_;
};

class TunnelClient {
 public:
  /// Invoked on state changes: connected(tunnel address) / disconnected.
  using StateCallback =
      std::function<void(bool connected, net::Address tunnel_address)>;

  TunnelClient(net::Host& host, StateCallback on_state);
  ~TunnelClient();

  /// Opens a tunnel to a gateway's tunnel server endpoint.
  void connect(net::Endpoint gateway);
  void disconnect();
  bool connected() const { return connected_; }
  bool connecting() const { return connecting_; }
  net::Address tunnel_address() const { return tunnel_address_; }
  net::Endpoint gateway() const { return gateway_; }

 private:
  void on_packet(const net::Datagram& d);
  void encapsulate(net::Datagram inner);
  void send_keepalive();
  void teardown(bool notify);

  net::Host& host_;
  Logger log_;
  StateCallback on_state_;
  bool connecting_ = false;
  bool connected_ = false;
  TimePoint connect_started_{};  // tunnel_connect span start
  net::Endpoint gateway_;
  net::Address tunnel_address_;
  int missed_keepalives_ = 0;
  sim::PeriodicTimer keepalive_timer_;
  sim::EventHandle connect_timeout_;
};

/// Tunnel wire protocol (shared by client/server and the tests).
namespace tunnel {
enum class MsgType : std::uint8_t {
  kConnect = 1,
  kAccept = 2,
  kData = 3,
  kKeepalive = 4,
  kKeepaliveAck = 5,
  kDisconnect = 6,
};
inline constexpr Duration kKeepaliveInterval = seconds(2);
inline constexpr int kMaxMissedKeepalives = 3;
inline constexpr Duration kClientExpiry = seconds(10);

/// Checksum-framed tunnel message: [u8 type][payload][u32 CRC trailer],
/// CRC over everything before it. decode_frame rejects truncated input,
/// CRC mismatches and unknown MsgType values, so a corrupted frame can
/// never hand believable bytes to the inner Datagram parser or flip a
/// keepalive into a disconnect.
Bytes encode_frame(MsgType type, std::span<const std::uint8_t> payload = {});

struct Decoded {
  MsgType type = MsgType::kConnect;
  Bytes payload;
};
Result<Decoded> decode_frame(std::span<const std::uint8_t> data);
}  // namespace tunnel

}  // namespace siphoc
