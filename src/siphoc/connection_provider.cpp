#include "siphoc/connection_provider.hpp"

#include "common/metrics.hpp"

namespace siphoc {

ConnectionProvider::ConnectionProvider(net::Host& host,
                                       slp::Directory& directory,
                                       ConnectionProviderConfig config,
                                       std::function<void(bool)> on_change)
    : host_(host),
      directory_(directory),
      config_(config),
      log_("connprov", host.name()),
      on_change_(std::move(on_change)),
      tunnel_(host, [this](bool connected, net::Address address) {
        if (connected) {
          log_.info("attached to the Internet as ", address.to_string());
        } else {
          log_.info("detached from the Internet");
          // The next successful reattach is a failover from this loss.
          host_.sim().ctx().metrics()
              .counter("connprov.tunnel_losses_total", host_.name(),
                       "connprov")
              .add();
          failover_pending_ = true;
          loss_time_ = host_.sim().now();
        }
        if (connected && failover_pending_) {
          failover_pending_ = false;
          host_.sim().ctx().metrics()
              .counter("connprov.failovers_total", host_.name(), "connprov")
              .add();
          // Tunnel-loss -> re-attach latency: the recovery time the chaos
          // soak and docs/RESILIENCE.md bound.
          host_.sim().ctx().metrics()
              .histogram("connprov.failover_duration_ms", kLatencyBucketsMs,
                         host_.name(), "connprov")
              .observe(to_millis(host_.sim().now() - loss_time_));
        }
        if (on_change_) on_change_(internet_available());
      }) {}

ConnectionProvider::~ConnectionProvider() { stop(); }

void ConnectionProvider::start() {
  if (started_) return;
  started_ = true;
  tick();
  timer_.start(host_.sim(), config_.check_interval, [this] { tick(); },
               milliseconds(500));
}

void ConnectionProvider::stop() {
  if (!started_) return;
  started_ = false;
  timer_.stop();
  if (tunnel_.connected()) tunnel_.disconnect();
}

bool ConnectionProvider::internet_available() const {
  return host_.has_wired() || tunnel_.connected();
}

net::Address ConnectionProvider::internet_address() const {
  if (host_.has_wired()) return host_.wired_address();
  if (tunnel_.connected()) return tunnel_.tunnel_address();
  return {};
}

void ConnectionProvider::tick() {
  if (!started_) return;
  if (host_.has_wired()) {
    // Native uplink: a tunnel is redundant (and this node may now be a
    // gateway itself, serving others on the tunnel port).
    if (tunnel_.connected() || tunnel_.connecting()) tunnel_.disconnect();
    return;
  }
  if (tunnel_.connected() || tunnel_.connecting() || lookup_in_flight_) {
    return;
  }
  lookup_in_flight_ = true;
  ++discoveries_;
  host_.sim().ctx().metrics()
      .counter("connprov.gateway_discoveries_total", host_.name(), "connprov")
      .add();
  directory_.lookup(
      std::string(slp::kGatewayService), "", config_.lookup_timeout,
      [this](std::optional<slp::ServiceEntry> entry) {
        lookup_in_flight_ = false;
        if (!started_ || !entry || tunnel_.connected()) return;
        const auto ep = net::Endpoint::parse(entry->value);
        if (!ep) {
          log_.warn("gateway advertisement with bad endpoint '",
                    entry->value, "'");
          return;
        }
        log_.info("found gateway at ", ep->to_string(), ", opening tunnel");
        tunnel_.connect(*ep);
      });
}

}  // namespace siphoc
