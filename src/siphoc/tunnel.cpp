#include "siphoc/tunnel.hpp"

#include "common/metrics.hpp"

namespace siphoc {

using tunnel::MsgType;

namespace {

Counter& tun_counter(net::Host& host, const std::string& name) {
  return host.sim().ctx().metrics().counter(name, host.name(), "tunnel");
}

}  // namespace

namespace tunnel {

Bytes encode_frame(MsgType type, std::span<const std::uint8_t> payload) {
  Bytes out;
  out.reserve(1 + payload.size() + 4);
  BufferWriter w(out);
  w.u8(static_cast<std::uint8_t>(type));
  w.raw(payload);
  w.u32(crc32(out));
  return out;
}

Result<Decoded> decode_frame(std::span<const std::uint8_t> data) {
  if (data.size() < 5) return fail("tunnel: frame shorter than header+CRC");
  const std::span<const std::uint8_t> head = data.first(data.size() - 4);
  BufferReader trailer(data.subspan(data.size() - 4));
  if (const auto want = trailer.u32(); !want || *want != crc32(head)) {
    return fail("tunnel: CRC mismatch");
  }
  const auto raw_type = head[0];
  if (raw_type < static_cast<std::uint8_t>(MsgType::kConnect) ||
      raw_type > static_cast<std::uint8_t>(MsgType::kDisconnect)) {
    return fail("tunnel: unknown message type " + std::to_string(raw_type));
  }
  Decoded out;
  out.type = static_cast<MsgType>(raw_type);
  out.payload.assign(head.begin() + 1, head.end());
  return out;
}

}  // namespace tunnel

// ===========================================================================
// TunnelServer
// ===========================================================================

TunnelServer::TunnelServer(net::Host& host)
    : host_(host), log_("tunnel-srv", host.name()) {}

TunnelServer::~TunnelServer() { stop(); }

void TunnelServer::start() {
  if (running_) return;
  running_ = true;
  host_.bind(net::kTunnelPort,
             [this](const net::Datagram& d, const net::RxInfo&) {
               on_packet(d);
             });
  expiry_timer_.start(host_.sim(), seconds(2), [this] { expire_clients(); });
}

void TunnelServer::stop() {
  if (!running_) return;
  running_ = false;
  expiry_timer_.stop();
  host_.unbind(net::kTunnelPort);
  if (host_.internet() != nullptr) {
    for (const auto& [addr, client] : clients_) {
      host_.internet()->detach(addr);
    }
  }
  clients_.clear();
}

void TunnelServer::on_packet(const net::Datagram& d) {
  auto frame = tunnel::decode_frame(d.payload);
  if (!frame) {
    tun_counter(host_, "tunnel.decode_errors_total").add();
    log_.debug("rejected tunnel frame from ", d.src.to_string(), ": ",
               frame.error().message);
    return;
  }
  if (d.corrupted) {
    // A bit-flipped frame survived the CRC trailer; the chaos soak asserts
    // this counter stays zero.
    host_.sim().ctx().metrics()
        .counter("chaos.corrupt_accepted_total", host_.name(), "tunnel")
        .add();
  }

  switch (frame->type) {
    case MsgType::kConnect: {
      if (host_.internet() == nullptr) return;  // lost our uplink
      // Reuse the existing lease when the same client reconnects.
      net::Address assigned;
      for (auto& [addr, client] : clients_) {
        if (client.manet_endpoint == d.source()) {
          assigned = addr;
          break;
        }
      }
      if (assigned.is_unspecified()) {
        // Lease from this gateway's own /24 slice of the tunnel realm
        // (10.8.<manet octet>.N): with several gateways up at once, every
        // lease must stay globally unique on the Internet segment or
        // responses to one client would be relayed down another's tunnel.
        const std::uint32_t slice =
            (host_.manet_address().value() & 0xffu) << 8;
        assigned = net::Address{net::kTunnelPrefix.value() | slice |
                                next_client_octet_++};
        Client client;
        client.tunnel_address = assigned;
        client.manet_endpoint = d.source();
        client.last_seen = host_.sim().now();
        clients_[assigned] = client;
        // Bridge: the gateway answers for the client's tunnel address on
        // the Internet segment and relays inbound traffic down the tunnel.
        host_.internet()->attach(assigned, [this, assigned](
                                               const net::Datagram& inbound) {
          const auto it = clients_.find(assigned);
          if (it == clients_.end()) return;
          relay_to_client(it->second, inbound);
        });
        log_.info("client ", d.src.to_string(), " attached as ",
                  assigned.to_string());
        tun_counter(host_, "tunnel.clients_attached_total").add();
        host_.sim().ctx().metrics()
            .gauge("tunnel.clients", host_.name(), "tunnel")
            .set(static_cast<double>(clients_.size()));
      }
      clients_[assigned].last_seen = host_.sim().now();
      Bytes lease;
      BufferWriter w(lease);
      w.u32(assigned.value());
      host_.send_udp(net::kTunnelPort, d.source(),
                     tunnel::encode_frame(MsgType::kAccept, lease));
      break;
    }
    case MsgType::kData: {
      auto inner = net::Datagram::decode(frame->payload);
      if (!inner) {
        tun_counter(host_, "tunnel.decode_errors_total").add();
        log_.warn("undecodable tunneled datagram from ", d.src.to_string());
        return;
      }
      const auto it = clients_.find(inner->src);
      if (it == clients_.end()) return;  // not a leased address: drop
      it->second.last_seen = host_.sim().now();
      ++stats_.datagrams_to_internet;
      stats_.bytes_relayed += inner->wire_size();
      tun_counter(host_, "tunnel.datagrams_up_total").add();
      tun_counter(host_, "tunnel.bytes_relayed_total")
          .add(inner->wire_size());
      if (host_.internet() != nullptr) host_.internet()->send(*inner);
      break;
    }
    case MsgType::kKeepalive: {
      for (auto& [addr, client] : clients_) {
        if (client.manet_endpoint == d.source()) {
          client.last_seen = host_.sim().now();
        }
      }
      host_.send_udp(net::kTunnelPort, d.source(),
                     tunnel::encode_frame(MsgType::kKeepaliveAck));
      break;
    }
    case MsgType::kDisconnect: {
      for (auto it = clients_.begin(); it != clients_.end();) {
        if (it->second.manet_endpoint == d.source()) {
          if (host_.internet() != nullptr) host_.internet()->detach(it->first);
          log_.info("client ", it->first.to_string(), " disconnected");
          it = clients_.erase(it);
          host_.sim().ctx().metrics()
              .gauge("tunnel.clients", host_.name(), "tunnel")
              .set(static_cast<double>(clients_.size()));
        } else {
          ++it;
        }
      }
      break;
    }
    default:
      break;
  }
}

void TunnelServer::relay_to_client(const Client& client,
                                   const net::Datagram& inner) {
  ++stats_.datagrams_to_clients;
  stats_.bytes_relayed += inner.wire_size();
  tun_counter(host_, "tunnel.datagrams_down_total").add();
  tun_counter(host_, "tunnel.bytes_relayed_total")
      .add(inner.wire_size());
  const Bytes inner_wire = inner.encode();
  host_.send_udp(net::kTunnelPort, client.manet_endpoint,
                 tunnel::encode_frame(MsgType::kData, inner_wire));
}

void TunnelServer::expire_clients() {
  const TimePoint cutoff = host_.sim().now() - tunnel::kClientExpiry;
  for (auto it = clients_.begin(); it != clients_.end();) {
    if (it->second.last_seen < cutoff) {
      if (host_.internet() != nullptr) host_.internet()->detach(it->first);
      log_.info("client ", it->first.to_string(), " expired");
      it = clients_.erase(it);
      tun_counter(host_, "tunnel.clients_expired_total").add();
      host_.sim().ctx().metrics()
          .gauge("tunnel.clients", host_.name(), "tunnel")
          .set(static_cast<double>(clients_.size()));
    } else {
      ++it;
    }
  }
}

// ===========================================================================
// TunnelClient
// ===========================================================================

TunnelClient::TunnelClient(net::Host& host, StateCallback on_state)
    : host_(host), log_("tunnel-cli", host.name()),
      on_state_(std::move(on_state)) {}

TunnelClient::~TunnelClient() {
  if (connected_ || connecting_) teardown(false);
}

void TunnelClient::connect(net::Endpoint gateway) {
  if (connected_ || connecting_) return;
  connecting_ = true;
  connect_started_ = host_.sim().now();
  gateway_ = gateway;
  host_.bind(net::kTunnelClientPort,
             [this](const net::Datagram& d, const net::RxInfo&) {
               on_packet(d);
             });
  host_.send_udp(net::kTunnelClientPort, gateway_,
                 tunnel::encode_frame(MsgType::kConnect));
  connect_timeout_ = host_.sim().schedule(seconds(5), [this] {
    if (!connected_) teardown(true);
  });
}

void TunnelClient::disconnect() {
  if (!connected_ && !connecting_) return;
  host_.send_udp(net::kTunnelClientPort, gateway_,
                 tunnel::encode_frame(MsgType::kDisconnect));
  teardown(true);
}

void TunnelClient::on_packet(const net::Datagram& d) {
  auto frame = tunnel::decode_frame(d.payload);
  if (!frame) {
    tun_counter(host_, "tunnel.decode_errors_total").add();
    log_.debug("rejected tunnel frame from ", d.src.to_string(), ": ",
               frame.error().message);
    return;
  }
  if (d.corrupted) {
    host_.sim().ctx().metrics()
        .counter("chaos.corrupt_accepted_total", host_.name(), "tunnel")
        .add();
  }
  BufferReader r(frame->payload);

  switch (frame->type) {
    case MsgType::kAccept: {
      auto assigned = r.u32();
      if (!assigned || connected_) return;
      connect_timeout_.cancel();
      connecting_ = false;
      connected_ = true;
      tunnel_address_ = net::Address{*assigned};
      log_.info("tunnel up, address ", tunnel_address_.to_string(), " via ",
                gateway_.to_string());
      tun_counter(host_, "tunnel.connects_total").add();
      host_.sim().ctx().metrics()
          .histogram("tunnel.connect_ms", kLatencyBucketsMs, host_.name(),
                     "tunnel")
          .observe(to_millis(host_.sim().now() - connect_started_));
      host_.sim().ctx().metrics().record_span(
          "tunnel_connect", "tunnel", host_.name(), connect_started_,
          host_.sim().now());

      host_.attach_tunnel(tunnel_address_, [this](net::Datagram inner) {
        encapsulate(std::move(inner));
      });
      // Internet + sibling tunnel clients route through the tunnel.
      host_.add_route({net::kInternetPrefix, net::kInternetPrefixLen,
                       std::nullopt, net::Interface::kTunnel, 10});
      host_.add_route({net::kTunnelPrefix, net::kTunnelPrefixLen,
                       std::nullopt, net::Interface::kTunnel, 10});
      missed_keepalives_ = 0;
      keepalive_timer_.start(host_.sim(), tunnel::kKeepaliveInterval,
                             [this] { send_keepalive(); });
      if (on_state_) on_state_(true, tunnel_address_);
      break;
    }
    case MsgType::kData: {
      auto inner = net::Datagram::decode(frame->payload);
      if (!inner) {
        tun_counter(host_, "tunnel.decode_errors_total").add();
        return;
      }
      tun_counter(host_, "tunnel.bytes_rx_total")
          .add(inner->wire_size());
      host_.inject(std::move(*inner), net::Interface::kTunnel);
      break;
    }
    case MsgType::kKeepaliveAck: {
      missed_keepalives_ = 0;
      break;
    }
    default:
      break;
  }
}

void TunnelClient::encapsulate(net::Datagram inner) {
  tun_counter(host_, "tunnel.bytes_tx_total").add(inner.wire_size());
  const Bytes inner_wire = inner.encode();
  host_.send_udp(net::kTunnelClientPort, gateway_,
                 tunnel::encode_frame(MsgType::kData, inner_wire));
}

void TunnelClient::send_keepalive() {
  if (++missed_keepalives_ > tunnel::kMaxMissedKeepalives) {
    tun_counter(host_, "tunnel.keepalive_timeouts_total").add();
    log_.info("gateway ", gateway_.to_string(), " unreachable, tunnel down");
    teardown(true);
    return;
  }
  host_.send_udp(net::kTunnelClientPort, gateway_,
                 tunnel::encode_frame(MsgType::kKeepalive));
}

void TunnelClient::teardown(bool notify) {
  const bool was_connected = connected_;
  connecting_ = false;
  connected_ = false;
  keepalive_timer_.stop();
  connect_timeout_.cancel();
  host_.unbind(net::kTunnelClientPort);
  host_.detach_tunnel();  // also clears the tunnel routes
  tunnel_address_ = net::Address{};
  if (was_connected) {
    tun_counter(host_, "tunnel.disconnects_total").add();
  }
  if (notify && on_state_ && was_connected) on_state_(false, net::Address{});
}

}  // namespace siphoc
