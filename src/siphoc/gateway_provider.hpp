// Gateway Provider (paper section 2): on a node with Internet connectivity,
// "makes this information available to other nodes by publishing an SLP
// gateway service. It also starts a layer two tunnel server ready to accept
// connections."
#pragma once

#include "siphoc/tunnel.hpp"
#include "slp/directory.hpp"

namespace siphoc {

struct GatewayProviderConfig {
  Duration advertise_interval = seconds(5);
  Duration advertise_lifetime = seconds(15);
};

class GatewayProvider {
 public:
  GatewayProvider(net::Host& host, slp::Directory& directory,
                  GatewayProviderConfig config = {});
  ~GatewayProvider();

  /// Starts advertising + serving if (and only if) the host currently has
  /// a wired Internet attachment; re-checked every advertise interval, so
  /// connectivity gained or lost at runtime is picked up.
  void start();
  void stop();

  bool serving() const { return server_.running(); }
  const TunnelServer& tunnel_server() const { return server_; }

 private:
  void tick();

  net::Host& host_;
  slp::Directory& directory_;
  GatewayProviderConfig config_;
  Logger log_;
  TunnelServer server_;
  sim::PeriodicTimer timer_;
  bool started_ = false;
};

}  // namespace siphoc
