// IPv4-style addressing for the emulated networks.
//
// The testbed uses three address realms, mirroring the paper's deployment:
//   * 10.0.0.0/24      -- the MANET (one address per node, as on the laptops)
//   * 192.0.2.0/24     -- the emulated public Internet (SIP providers)
//   * 10.8.0.0/16      -- tunnel addresses handed out by gateway nodes;
//                         each gateway owns the /24 slice 10.8.<G>.0/24
//                         keyed by its own MANET octet, so leases from
//                         different gateways never collide on the Internet
//   * 127.0.0.1        -- loopback; the out-of-the-box VoIP clients talk to
//                         their SIPHoc proxy via "outbound proxy = localhost"
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace siphoc::net {

class Address {
 public:
  constexpr Address() = default;
  constexpr explicit Address(std::uint32_t value) : value_(value) {}
  constexpr Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                    std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const { return value_; }
  std::string to_string() const;

  /// Parses dotted-quad notation; returns nullopt on malformed input.
  static std::optional<Address> parse(std::string_view text);

  constexpr bool is_broadcast() const { return value_ == 0xffffffffu; }
  constexpr bool is_loopback() const { return (value_ >> 24) == 127; }
  constexpr bool is_unspecified() const { return value_ == 0; }

  /// True when this address falls inside prefix/len.
  constexpr bool in_prefix(Address prefix, int len) const {
    if (len <= 0) return true;
    const std::uint32_t mask = len >= 32 ? 0xffffffffu : ~(0xffffffffu >> len);
    return (value_ & mask) == (prefix.value_ & mask);
  }

  friend constexpr auto operator<=>(Address, Address) = default;

 private:
  std::uint32_t value_ = 0;
};

inline constexpr Address kAnyAddress{};
inline constexpr Address kBroadcastAddress{0xffffffffu};
inline constexpr Address kLoopbackAddress{127, 0, 0, 1};

/// Well-known prefixes of the emulated deployment.
inline constexpr Address kManetPrefix{10, 0, 0, 0};
inline constexpr int kManetPrefixLen = 24;
inline constexpr Address kInternetPrefix{192, 0, 2, 0};
inline constexpr int kInternetPrefixLen = 24;
inline constexpr Address kTunnelPrefix{10, 8, 0, 0};
inline constexpr int kTunnelPrefixLen = 16;

/// UDP endpoint: address + port.
struct Endpoint {
  Address address;
  std::uint16_t port = 0;

  std::string to_string() const;
  static std::optional<Endpoint> parse(std::string_view text);

  friend constexpr auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

}  // namespace siphoc::net

template <>
struct std::hash<siphoc::net::Address> {
  std::size_t operator()(siphoc::net::Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<siphoc::net::Endpoint> {
  std::size_t operator()(const siphoc::net::Endpoint& e) const noexcept {
    return std::hash<std::uint32_t>{}(e.address.value()) * 31 + e.port;
  }
};
