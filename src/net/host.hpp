// Host: the emulated node operating-system network stack.
//
// One Host corresponds to one laptop/iPAQ of the paper's testbed. It owns:
//   * a loopback interface (the VoIP app reaches its SIPHoc proxy via
//     127.0.0.1, exactly as the paper configures "outbound proxy =
//     localhost"),
//   * optionally a radio interface on the shared wireless medium,
//   * optionally a wired interface on the Internet segment (gateway nodes
//     and SIP provider servers),
//   * optionally a tunnel interface installed by the Connection Provider,
//   * a prefix routing table with longest-prefix-match lookup, populated by
//     the MANET routing daemon (AODV/OLSR) and by the tunnel code,
//   * a UDP port space with bind/sendto semantics.
//
// IP forwarding is on by default: datagrams addressed elsewhere are
// re-routed with TTL decrement, which is what turns a set of hosts plus a
// routing protocol into a multihop MANET.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "net/internet.hpp"
#include "net/medium.hpp"
#include "net/mobility.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace siphoc::net {

enum class Interface : std::uint8_t {
  kLoopback,
  kRadio,
  kWired,
  kTunnel,
};

struct RouteEntry {
  Address prefix;
  int prefix_len = 32;
  std::optional<Address> next_hop;  // nullopt: destination is on-link
  Interface iface = Interface::kRadio;
  int metric = 1;

  bool matches(Address dst) const { return dst.in_prefix(prefix, prefix_len); }
};

/// Delivery context handed to UDP handlers alongside the datagram.
struct RxInfo {
  Interface iface = Interface::kLoopback;
  NodeId prev_hop_mac = 0;  // radio only: MAC of the transmitting neighbor
  /// Mirrors Datagram::corrupted for handlers that only look at the
  /// delivery context (chaos-engine ground truth, never on the wire).
  bool corrupted = false;
};

using UdpHandler = std::function<void(const Datagram&, const RxInfo&)>;

class Host {
 public:
  Host(sim::Simulator& sim, NodeId id, std::string name);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  sim::Simulator& sim() { return sim_; }
  Rng& rng() { return rng_; }

  // --- interfaces -------------------------------------------------------
  void attach_radio(RadioMedium& medium, Address address,
                    std::shared_ptr<MobilityModel> mobility);
  void attach_wired(Internet& internet, Address address);
  void detach_wired();

  /// Installs a tunnel interface: datagrams routed to it are handed to
  /// `encapsulate` (the tunnel client wraps and ships them over the MANET).
  void attach_tunnel(Address address, std::function<void(Datagram)> encap);
  void detach_tunnel();

  Address manet_address() const { return radio_address_; }
  Address wired_address() const { return wired_address_; }
  Address tunnel_address() const { return tunnel_address_; }
  bool has_wired() const { return internet_ != nullptr; }
  bool has_tunnel() const { return static_cast<bool>(tunnel_encap_); }
  bool owns_address(Address a) const;

  Position position() const;
  RadioMedium* medium() { return medium_; }
  Internet* internet() { return internet_; }

  // --- UDP --------------------------------------------------------------
  void bind(std::uint16_t port, UdpHandler handler);
  void unbind(std::uint16_t port);
  bool bound(std::uint16_t port) const { return udp_.contains(port); }

  /// Sends a UDP payload; the source address is picked from the egress
  /// interface. Returns false when no route exists and no resolver claimed
  /// the datagram.
  bool send_udp(std::uint16_t src_port, Endpoint dst, Bytes payload);

  /// One-hop link-local broadcast on the radio (TTL 1). Routing daemons and
  /// the multicast-SLP baseline use this as their flooding primitive.
  void send_broadcast(std::uint16_t src_port, std::uint16_t dst_port,
                      Bytes payload);

  /// Full-control send (routing daemons forward buffered datagrams with it).
  bool send_datagram(Datagram d);

  // --- routing table ------------------------------------------------------
  void add_route(RouteEntry entry);
  /// Removes routes with this exact prefix/len (any next hop).
  void remove_route(Address prefix, int prefix_len);
  void clear_routes(Interface iface);
  std::optional<RouteEntry> lookup_route(Address dst) const;
  const std::vector<RouteEntry>& routes() const { return routes_; }

  /// The MANET routing daemon claims datagrams that have no route yet
  /// (on-demand protocols buffer them and start a route discovery). Return
  /// true to take ownership; false lets the host drop the datagram.
  void set_route_resolver(std::function<bool(Datagram)> resolver) {
    route_resolver_ = std::move(resolver);
  }

  /// Notified when a unicast radio frame found no reachable target (missing
  /// 802.11 ACK); AODV turns this into a RERR.
  void set_link_failure_listener(std::function<void(const Frame&)> listener) {
    link_failure_ = std::move(listener);
  }

  /// Observes every datagram this host forwards (not locally addressed);
  /// AODV refreshes active-route lifetimes from it.
  void set_forward_tap(std::function<void(const Datagram&)> tap) {
    forward_tap_ = std::move(tap);
  }

  void set_forwarding(bool enabled) { forwarding_ = enabled; }

  struct HostStats {
    std::uint64_t udp_sent = 0;
    std::uint64_t udp_delivered = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t no_route_drops = 0;
    std::uint64_t ttl_drops = 0;
    std::uint64_t no_listener_drops = 0;
  };
  const HostStats& stats() const { return stats_; }

  /// Entry point for tunnel decapsulation: injects a datagram as if it
  /// arrived on the tunnel interface.
  void inject(Datagram d, Interface iface);

 private:
  void on_radio_frame(const Frame& frame);
  void route_and_send(Datagram d);
  void deliver_local(const Datagram& d, const RxInfo& info);
  bool transmit_radio(const Datagram& d, Address next_hop);

  sim::Simulator& sim_;
  NodeId id_;
  std::string name_;
  Rng rng_;
  Logger log_;

  RadioMedium* medium_ = nullptr;
  Address radio_address_;
  std::shared_ptr<MobilityModel> mobility_;

  Internet* internet_ = nullptr;
  Address wired_address_;

  Address tunnel_address_;
  std::function<void(Datagram)> tunnel_encap_;

  std::vector<RouteEntry> routes_;
  std::map<std::uint16_t, UdpHandler> udp_;
  std::function<bool(Datagram)> route_resolver_;
  std::function<void(const Frame&)> link_failure_;
  std::function<void(const Datagram&)> forward_tap_;
  bool forwarding_ = true;
  HostStats stats_;
};

}  // namespace siphoc::net
