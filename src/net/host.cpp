#include "net/host.hpp"

#include <algorithm>

namespace siphoc::net {

Host::Host(sim::Simulator& sim, NodeId id, std::string name)
    : sim_(sim),
      id_(id),
      name_(std::move(name)),
      rng_(sim.rng().fork()),
      log_("host", name_) {}

void Host::attach_radio(RadioMedium& medium, Address address,
                        std::shared_ptr<MobilityModel> mobility) {
  medium_ = &medium;
  radio_address_ = address;
  mobility_ = std::move(mobility);
  RadioAttachment att;
  att.mac = id_;
  att.address = address;
  att.position = [this] { return position(); };
  // No mobility model means Position{} forever; both cases let the medium
  // cache the position in its spatial index.
  att.fixed_position = mobility_ == nullptr || mobility_->is_fixed();
  att.deliver = [this](const Frame& f) { on_radio_frame(f); };
  att.unicast_failed = [this](const Frame& f) {
    if (link_failure_) link_failure_(f);
  };
  medium.attach(std::move(att));
  // The radio's own subnet is always on-link.
  add_route({kManetPrefix, kManetPrefixLen, std::nullopt, Interface::kRadio,
             /*metric=*/100});
}

void Host::attach_wired(Internet& internet, Address address) {
  internet_ = &internet;
  wired_address_ = address;
  internet.attach(address, [this](const Datagram& d) {
    inject(d, Interface::kWired);
  });
  add_route({kInternetPrefix, kInternetPrefixLen, std::nullopt,
             Interface::kWired, /*metric=*/1});
  // Tunnel-client leases are publicly routable on the emulated Internet:
  // the owning gateway attaches them and relays (see siphoc::TunnelServer).
  add_route({kTunnelPrefix, kTunnelPrefixLen, std::nullopt,
             Interface::kWired, /*metric=*/2});
}

void Host::detach_wired() {
  if (internet_ == nullptr) return;
  internet_->detach(wired_address_);
  clear_routes(Interface::kWired);
  internet_ = nullptr;
  wired_address_ = Address{};
}

void Host::attach_tunnel(Address address, std::function<void(Datagram)> encap) {
  tunnel_address_ = address;
  tunnel_encap_ = std::move(encap);
}

void Host::detach_tunnel() {
  tunnel_address_ = Address{};
  tunnel_encap_ = nullptr;
  clear_routes(Interface::kTunnel);
}

bool Host::owns_address(Address a) const {
  if (a.is_loopback()) return true;
  return (a == radio_address_ && !radio_address_.is_unspecified()) ||
         (a == wired_address_ && !wired_address_.is_unspecified()) ||
         (a == tunnel_address_ && !tunnel_address_.is_unspecified());
}

Position Host::position() const {
  return mobility_ ? mobility_->position_at(sim_.now()) : Position{};
}

void Host::bind(std::uint16_t port, UdpHandler handler) {
  udp_[port] = std::move(handler);
}

void Host::unbind(std::uint16_t port) { udp_.erase(port); }

bool Host::send_udp(std::uint16_t src_port, Endpoint dst, Bytes payload) {
  Datagram d;
  d.dst = dst.address;
  d.dst_port = dst.port;
  d.src_port = src_port;
  d.payload = std::move(payload);
  // Source address is filled in by route_and_send once the egress interface
  // is known; loopback traffic keeps 127.0.0.1.
  ++stats_.udp_sent;
  return send_datagram(std::move(d));
}

void Host::send_broadcast(std::uint16_t src_port, std::uint16_t dst_port,
                          Bytes payload) {
  if (medium_ == nullptr) return;
  Datagram d;
  d.src = radio_address_;
  d.dst = kBroadcastAddress;
  d.src_port = src_port;
  d.dst_port = dst_port;
  d.ttl = 1;
  d.payload = std::move(payload);
  ++stats_.udp_sent;
  Frame frame{id_, kBroadcastMac, std::move(d)};
  medium_->transmit(frame);
}

bool Host::send_datagram(Datagram d) {
  route_and_send(std::move(d));
  return true;
}

void Host::add_route(RouteEntry entry) {
  // Replace an identical prefix/len/iface entry instead of duplicating.
  std::erase_if(routes_, [&](const RouteEntry& r) {
    return r.prefix == entry.prefix && r.prefix_len == entry.prefix_len &&
           r.iface == entry.iface;
  });
  routes_.push_back(entry);
}

void Host::remove_route(Address prefix, int prefix_len) {
  std::erase_if(routes_, [&](const RouteEntry& r) {
    return r.prefix == prefix && r.prefix_len == prefix_len;
  });
}

void Host::clear_routes(Interface iface) {
  std::erase_if(routes_, [&](const RouteEntry& r) { return r.iface == iface; });
}

std::optional<RouteEntry> Host::lookup_route(Address dst) const {
  const RouteEntry* best = nullptr;
  for (const auto& r : routes_) {
    if (!r.matches(dst)) continue;
    if (best == nullptr || r.prefix_len > best->prefix_len ||
        (r.prefix_len == best->prefix_len && r.metric < best->metric)) {
      best = &r;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

void Host::on_radio_frame(const Frame& frame) {
  const Datagram& d = frame.datagram;
  if (d.dst.is_broadcast() || owns_address(d.dst)) {
    RxInfo info{Interface::kRadio, frame.src_mac, d.corrupted};
    deliver_local(d, info);
    return;
  }
  if (!forwarding_) return;
  Datagram fwd = d;
  if (fwd.ttl <= 1) {
    ++stats_.ttl_drops;
    return;
  }
  fwd.ttl -= 1;
  ++stats_.forwarded;
  if (forward_tap_) forward_tap_(fwd);
  route_and_send(std::move(fwd));
}

void Host::route_and_send(Datagram d) {
  // Loopback and local addresses short-circuit.
  if (d.dst.is_loopback() || owns_address(d.dst)) {
    if (d.src.is_unspecified()) d.src = kLoopbackAddress;
    // Defer delivery so callers finish their own processing first (matches
    // kernel loopback semantics and avoids reentrancy in the SIP stack).
    sim_.schedule(microseconds(10), [this, d = std::move(d)] {
      deliver_local(d, RxInfo{Interface::kLoopback, id_, d.corrupted});
    });
    return;
  }
  if (d.dst.is_broadcast()) {
    if (medium_ != nullptr) {
      if (d.src.is_unspecified()) d.src = radio_address_;
      d.ttl = 1;
      medium_->transmit(Frame{id_, kBroadcastMac, std::move(d)});
    }
    return;
  }

  const auto route = lookup_route(d.dst);
  if (!route) {
    // Originated and forwarded datagrams alike may be claimed by the
    // routing daemon (on-demand discovery buffers them).
    if (route_resolver_ && route_resolver_(d)) return;
    ++stats_.no_route_drops;
    log_.debug("no route to ", d.dst.to_string(), ", dropping ", d.summary());
    return;
  }

  switch (route->iface) {
    case Interface::kRadio: {
      if (d.src.is_unspecified()) d.src = radio_address_;
      const Address next_hop = route->next_hop.value_or(d.dst);
      if (!transmit_radio(d, next_hop)) ++stats_.no_route_drops;
      break;
    }
    case Interface::kWired: {
      if (d.src.is_unspecified()) d.src = wired_address_;
      if (internet_ != nullptr) internet_->send(d);
      break;
    }
    case Interface::kTunnel: {
      if (d.src.is_unspecified()) d.src = tunnel_address_;
      if (tunnel_encap_) tunnel_encap_(std::move(d));
      break;
    }
    case Interface::kLoopback: {
      sim_.schedule(microseconds(10), [this, d = std::move(d)] {
        deliver_local(d, RxInfo{Interface::kLoopback, id_, d.corrupted});
      });
      break;
    }
  }
}

bool Host::transmit_radio(const Datagram& d, Address next_hop) {
  if (medium_ == nullptr) return false;
  const auto mac = medium_->resolve(next_hop);
  if (!mac) {
    log_.debug("cannot resolve next hop ", next_hop.to_string());
    return false;
  }
  medium_->transmit(Frame{id_, *mac, d});
  return true;
}

void Host::deliver_local(const Datagram& d, const RxInfo& info) {
  const auto it = udp_.find(d.dst_port);
  if (it == udp_.end()) {
    ++stats_.no_listener_drops;
    return;
  }
  ++stats_.udp_delivered;
  it->second(d, info);
}

void Host::inject(Datagram d, Interface iface) {
  if (d.dst.is_broadcast() || owns_address(d.dst)) {
    deliver_local(d, RxInfo{iface, id_, d.corrupted});
    return;
  }
  if (!forwarding_) return;
  if (d.ttl <= 1) {
    ++stats_.ttl_drops;
    return;
  }
  d.ttl -= 1;
  ++stats_.forwarded;
  if (forward_tap_) forward_tap_(d);
  route_and_send(std::move(d));
}

}  // namespace siphoc::net
