#include "net/mobility.hpp"

#include <cmath>

namespace siphoc::net {

double distance(Position a, Position b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

RandomWaypointMobility::RandomWaypointMobility(Position start,
                                               RandomWaypointConfig config,
                                               Rng rng)
    : config_(config), rng_(rng), origin_(start), target_(start) {
  // Start paused at the initial position; first leg begins at pause end.
  pause_end_ = TimePoint{} + config_.pause;
  leg_start_ = leg_end_ = TimePoint{};
}

void RandomWaypointMobility::next_leg(TimePoint now) {
  origin_ = target_;
  target_ = Position{rng_.uniform(0, config_.width),
                     rng_.uniform(0, config_.height)};
  const double speed = rng_.uniform(config_.min_speed, config_.max_speed);
  const double dist = distance(origin_, target_);
  const auto travel = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(dist / speed));
  leg_start_ = now;
  leg_end_ = now + travel;
  pause_end_ = leg_end_ + config_.pause;
}

Position RandomWaypointMobility::position_at(TimePoint t) {
  while (t >= pause_end_) next_leg(pause_end_);
  if (t >= leg_end_) return target_;  // pausing at the waypoint
  if (t <= leg_start_) return origin_;
  const double f = std::chrono::duration<double>(t - leg_start_).count() /
                   std::chrono::duration<double>(leg_end_ - leg_start_).count();
  return Position{origin_.x + (target_.x - origin_.x) * f,
                  origin_.y + (target_.y - origin_.y) * f};
}

std::vector<Position> chain_positions(std::size_t count, double spacing) {
  std::vector<Position> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({spacing * static_cast<double>(i), 0});
  }
  return out;
}

std::vector<Position> grid_positions(std::size_t count, double spacing) {
  std::vector<Position> out;
  out.reserve(count);
  const auto side = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(count))));
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back({spacing * static_cast<double>(i % side),
                   spacing * static_cast<double>(i / side)});
  }
  return out;
}

}  // namespace siphoc::net
