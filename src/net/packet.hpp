// Packet model: L3 datagrams carrying UDP, and L2 frames on the radio.
//
// Every protocol in this project exchanges real serialized payload bytes
// (SIP as RFC 3261 text, AODV/OLSR/SLP/RTP as big-endian binary), so the
// datagram body is an opaque byte vector exactly as on a real wire. The
// datagram itself also has a binary encoding -- that is what rides inside
// the gateway's layer-2 tunnel (IP-in-UDP encapsulation).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/address.hpp"

namespace siphoc::net {

/// Node identity at the link layer ("MAC address"). In the emulation each
/// host owns exactly one radio with mac == host id.
using NodeId = std::uint32_t;
inline constexpr NodeId kBroadcastMac = 0xffffffffu;

/// IANA-style protocol numbers for the datagram `protocol` field.
enum class IpProto : std::uint8_t {
  kUdp = 17,
};

inline constexpr std::uint8_t kDefaultTtl = 64;

/// An IP datagram with the UDP header folded in (the emulation carries only
/// UDP traffic, as does the paper's stack: SIP, SLP, RTP and the tunnel all
/// run over UDP).
struct Datagram {
  Address src;
  Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t ttl = kDefaultTtl;
  IpProto protocol = IpProto::kUdp;
  /// Shared immutable buffer: copying a Datagram (per-receiver broadcast
  /// delivery, per-hop forwarding) does not copy the payload bytes.
  SharedBytes payload;
  /// Ground truth for the chaos engine: set by the radio medium's
  /// bit-corruption injector, never serialized in encode(). Receivers that
  /// manage to decode a corrupted payload anyway are counted
  /// (`chaos.corrupt_accepted_total`) -- the chaos soak asserts zero.
  bool corrupted = false;

  Endpoint source() const { return {src, src_port}; }
  Endpoint destination() const { return {dst, dst_port}; }

  /// Wire size: 20-byte IP header + 8-byte UDP header + payload. Used for
  /// transmission-delay and overhead accounting.
  std::size_t wire_size() const { return 28 + payload.size(); }

  /// Binary encoding for tunnel encapsulation.
  Bytes encode() const;
  static Result<Datagram> decode(std::span<const std::uint8_t> data);

  std::string summary() const;
};

/// A link-layer frame as put on the radio medium.
struct Frame {
  NodeId src_mac = 0;
  NodeId dst_mac = kBroadcastMac;  // kBroadcastMac = link broadcast
  Datagram datagram;

  /// 802.11-ish framing overhead on top of the datagram.
  std::size_t wire_size() const { return 34 + datagram.wire_size(); }
};

}  // namespace siphoc::net
