#include "net/packet.hpp"

namespace siphoc::net {

Bytes Datagram::encode() const {
  Bytes out;
  BufferWriter w(out);
  w.u32(src.value());
  w.u32(dst.value());
  w.u16(src_port);
  w.u16(dst_port);
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(protocol));
  w.u16(static_cast<std::uint16_t>(payload.size()));
  w.raw(payload);
  return out;
}

Result<Datagram> Datagram::decode(std::span<const std::uint8_t> data) {
  BufferReader r(data);
  Datagram d;
  auto src = r.u32();
  if (!src) return src.error();
  d.src = Address{*src};
  auto dst = r.u32();
  if (!dst) return dst.error();
  d.dst = Address{*dst};
  auto sport = r.u16();
  if (!sport) return sport.error();
  d.src_port = *sport;
  auto dport = r.u16();
  if (!dport) return dport.error();
  d.dst_port = *dport;
  auto ttl = r.u8();
  if (!ttl) return ttl.error();
  d.ttl = *ttl;
  auto proto = r.u8();
  if (!proto) return proto.error();
  d.protocol = static_cast<IpProto>(*proto);
  auto len = r.u16();
  if (!len) return len.error();
  auto payload = r.raw(*len);
  if (!payload) return payload.error();
  d.payload = std::move(*payload);
  return d;
}

std::string Datagram::summary() const {
  return source().to_string() + " -> " + destination().to_string() + " (" +
         std::to_string(payload.size()) + "B, ttl=" + std::to_string(ttl) +
         ")";
}

}  // namespace siphoc::net
