#include "net/medium.hpp"

#include <algorithm>

namespace siphoc::net {

RadioMedium::RadioMedium(sim::Simulator& sim, RadioConfig config)
    : sim_(sim), config_(config) {}

void RadioMedium::attach(RadioAttachment attachment) {
  arp_[attachment.address] = attachment.mac;
  radios_.push_back(std::move(attachment));
}

void RadioMedium::detach(NodeId mac) {
  std::erase_if(radios_, [&](const RadioAttachment& r) {
    if (r.mac != mac) return false;
    return true;
  });
  std::erase_if(arp_, [&](const auto& kv) { return kv.second == mac; });
}

void RadioMedium::set_enabled(NodeId mac, bool enabled) {
  for (auto& r : radios_) {
    if (r.mac == mac) r.enabled = enabled;
  }
}

const RadioAttachment* RadioMedium::find(NodeId mac) const {
  const auto it = std::find_if(radios_.begin(), radios_.end(),
                               [&](const auto& r) { return r.mac == mac; });
  return it == radios_.end() ? nullptr : &*it;
}

TrafficClass RadioMedium::classify(const Datagram& d) {
  switch (d.dst_port) {
    case kAodvPort:
    case kOlsrPort:
      return TrafficClass::kRouting;
    case kSlpPort:
      return TrafficClass::kSlp;
    case kSipPort:
      return TrafficClass::kSip;
    case kTunnelPort:
    case kTunnelClientPort:
      return TrafficClass::kTunnel;
    default:
      return d.dst_port >= kRtpPortBase && d.dst_port < kRtpPortBase + 1000
                 ? TrafficClass::kRtp
                 : TrafficClass::kOther;
  }
}

void RadioMedium::transmit(const Frame& frame) {
  const RadioAttachment* sender = find(frame.src_mac);
  if (sender == nullptr || !sender->enabled) return;

  ++stats_.frames_sent;
  stats_.bytes_sent += frame.wire_size();
  auto& cls = stats_.by_class[classify(frame.datagram)];
  ++cls.frames;
  cls.bytes += frame.wire_size();
  if (tap_) tap_(frame, sim_.now());

  const Position from = sender->position();
  const Duration tx_delay = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(static_cast<double>(frame.wire_size()) *
                                    8.0 / config_.bitrate_bps));
  const Duration arrival = tx_delay + config_.mac_latency;

  bool unicast_reached = frame.dst_mac == kBroadcastMac;
  for (const auto& rx : radios_) {
    if (rx.mac == frame.src_mac || !rx.enabled) continue;
    if (frame.dst_mac != kBroadcastMac && rx.mac != frame.dst_mac) continue;
    if (link_filter_ && !link_filter_(frame.src_mac, rx.mac)) continue;
    if (distance(from, rx.position()) > config_.range) continue;
    unicast_reached = true;
    if (config_.loss_probability > 0 &&
        sim_.rng().chance(config_.loss_probability)) {
      ++stats_.frames_lost;
      continue;
    }
    ++stats_.frames_delivered;
    // Copy what the closure needs: the attachment may move as radios_ grows.
    auto deliver = rx.deliver;
    sim_.schedule(arrival, [deliver, frame] { deliver(frame); });
  }

  if (!unicast_reached) {
    ++stats_.unicast_unreachable;
    if (sender->unicast_failed) {
      auto notify = sender->unicast_failed;
      sim_.schedule(arrival, [notify, frame] { notify(frame); });
    }
  }
}

std::optional<Address> RadioMedium::address_of(NodeId mac) const {
  const RadioAttachment* r = find(mac);
  if (r == nullptr) return std::nullopt;
  return r->address;
}

std::optional<NodeId> RadioMedium::resolve(Address address) const {
  const auto it = arp_.find(address);
  if (it == arp_.end()) return std::nullopt;
  return it->second;
}

bool RadioMedium::connected(NodeId a, NodeId b) const {
  const RadioAttachment* ra = find(a);
  const RadioAttachment* rb = find(b);
  if (ra == nullptr || rb == nullptr || !ra->enabled || !rb->enabled)
    return false;
  if (link_filter_ && (!link_filter_(a, b) || !link_filter_(b, a)))
    return false;
  return distance(ra->position(), rb->position()) <= config_.range;
}

}  // namespace siphoc::net
