#include "net/medium.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/metrics.hpp"

namespace siphoc::net {

namespace {
// Broadcasts with at least this many candidate receivers fan the pure
// pre-checks (enabled/jammed/filter/distance) out over the worker pool;
// smaller sets are not worth the dispatch. Loss/corrupt draws always stay
// sequential in candidate order, so results are identical either way.
constexpr std::size_t kPrefilterThreshold = 64;

void merge_stats(MediumStats& into, const MediumStats& from) {
  into.frames_sent += from.frames_sent;
  into.bytes_sent += from.bytes_sent;
  into.frames_delivered += from.frames_delivered;
  into.frames_lost += from.frames_lost;
  into.unicast_unreachable += from.unicast_unreachable;
  into.frames_corrupted += from.frames_corrupted;
  into.frames_duplicated += from.frames_duplicated;
  into.frames_reordered += from.frames_reordered;
  for (const auto& [cls, s] : from.by_class) {
    ClassStats& dst = into.by_class[cls];
    dst.frames += s.frames;
    dst.bytes += s.bytes;
  }
}
}  // namespace

RadioMedium::RadioMedium(sim::Simulator& sim, RadioConfig config)
    : sim_(sim), config_(config) {}

void RadioMedium::configure_lanes(std::function<std::uint32_t(NodeId)> lane_of) {
  sharded_ = true;
  lane_of_ = std::move(lane_of);
  lane_stats_.assign(sim_.lane_count(), MediumStats{});
  lane_scratch_.resize(sim_.lane_count());
  index_dirty_ = true;
  sim_.set_epoch_hook([this] { epoch_refresh(); });
}

void RadioMedium::epoch_refresh() {
  if (index_dirty_) rebuild_index();
  mobile_position_cache_.resize(radios_.size());
  for (const std::uint32_t i : mobile_) {
    mobile_position_cache_[i] = radios_[i].position();
  }
}

const MediumStats& RadioMedium::stats() const {
  if (!sharded_) return stats_;
  agg_stats_ = MediumStats{};
  for (const MediumStats& shard : lane_stats_) merge_stats(agg_stats_, shard);
  return agg_stats_;
}

void RadioMedium::reset_stats() {
  stats_ = {};
  for (MediumStats& shard : lane_stats_) shard = {};
}

void RadioMedium::attach(RadioAttachment attachment) {
  arp_[attachment.address] = attachment.mac;
  mac_index_.emplace(attachment.mac,
                     static_cast<std::uint32_t>(radios_.size()));
  radios_.push_back(std::move(attachment));
  index_dirty_ = true;
}

void RadioMedium::detach(NodeId mac) {
  std::erase_if(radios_,
                [&](const RadioAttachment& r) { return r.mac == mac; });
  std::erase_if(arp_, [&](const auto& kv) { return kv.second == mac; });
  // Indices shifted; rebuild the mac map eagerly (detach is rare) and let
  // the spatial grid follow lazily.
  mac_index_.clear();
  for (std::uint32_t i = 0; i < radios_.size(); ++i) {
    mac_index_.emplace(radios_[i].mac, i);
  }
  index_dirty_ = true;
}

void RadioMedium::set_enabled(NodeId mac, bool enabled) {
  const auto it = mac_index_.find(mac);
  if (it != mac_index_.end()) radios_[it->second].enabled = enabled;
}

void RadioMedium::set_jammed(NodeId mac, bool jammed) {
  if (jammed) {
    jammed_.insert(mac);
  } else {
    jammed_.erase(mac);
  }
}

double RadioMedium::fault_loss_probability(TimePoint now) const {
  double p = faults_.extra_loss;
  if (ramp_) {
    if (now >= ramp_->t1 || ramp_->t1 <= ramp_->t0) {
      p += ramp_->p1;
    } else if (now <= ramp_->t0) {
      p += ramp_->p0;
    } else {
      const double f =
          std::chrono::duration<double>(now - ramp_->t0).count() /
          std::chrono::duration<double>(ramp_->t1 - ramp_->t0).count();
      p += ramp_->p0 + f * (ramp_->p1 - ramp_->p0);
    }
  }
  return std::clamp(p, 0.0, 1.0);
}

Frame RadioMedium::corrupt_copy(const Frame& frame) {
  Frame out = frame;
  out.datagram.corrupted = true;
  const Bytes& clean = frame.datagram.payload.bytes();
  if (!clean.empty()) {
    Bytes mangled = clean;
    const std::uint32_t flips = sim_.rng().uniform_int(1, 4);
    const auto max_bit = static_cast<std::uint32_t>(mangled.size() * 8 - 1);
    for (std::uint32_t k = 0; k < flips; ++k) {
      const std::uint32_t bit = sim_.rng().uniform_int(0u, max_bit);
      mangled[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    out.datagram.payload = std::move(mangled);
  }
  return out;
}

void RadioMedium::bump_fault_counter(const char* name) {
  sim_.ctx().metrics().counter(name, "radio", "medium").add();
}

const RadioAttachment* RadioMedium::find(NodeId mac) const {
  const auto it = mac_index_.find(mac);
  return it == mac_index_.end() ? nullptr : &radios_[it->second];
}

std::uint64_t RadioMedium::pack_cell(std::int32_t cx, std::int32_t cy) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint32_t>(cy);
}

std::pair<std::int32_t, std::int32_t> RadioMedium::cell_coords(
    Position p) const {
  const double cell = config_.range > 0 ? config_.range : 1.0;
  return {static_cast<std::int32_t>(std::floor(p.x / cell)),
          static_cast<std::int32_t>(std::floor(p.y / cell))};
}

void RadioMedium::rebuild_index() {
  grid_.clear();
  mobile_.clear();
  fixed_positions_.assign(radios_.size(), Position{});
  lane_by_radio_.assign(radios_.size(), 0);
  for (std::uint32_t i = 0; i < radios_.size(); ++i) {
    const RadioAttachment& r = radios_[i];
    if (lane_of_) lane_by_radio_[i] = lane_of_(r.mac);
    if (r.fixed_position) {
      const Position p = r.position();
      fixed_positions_[i] = p;
      const auto [cx, cy] = cell_coords(p);
      grid_[pack_cell(cx, cy)].push_back(i);
    } else {
      mobile_.push_back(i);
    }
  }
  index_dirty_ = false;
}

void RadioMedium::collect_candidates(Position from,
                                     std::vector<std::uint32_t>& out) const {
  const auto [cx, cy] = cell_coords(from);
  for (std::int32_t dx = -1; dx <= 1; ++dx) {
    for (std::int32_t dy = -1; dy <= 1; ++dy) {
      const auto it = grid_.find(pack_cell(cx + dx, cy + dy));
      if (it != grid_.end()) {
        out.insert(out.end(), it->second.begin(), it->second.end());
      }
    }
  }
  out.insert(out.end(), mobile_.begin(), mobile_.end());
  // Attachment order == the order the old brute-force scan visited radios
  // == the order per-receiver loss draws consume the RNG. Keep it.
  std::sort(out.begin(), out.end());
}

TrafficClass RadioMedium::classify(const Datagram& d) {
  switch (d.dst_port) {
    case kAodvPort:
    case kOlsrPort:
      return TrafficClass::kRouting;
    case kSlpPort:
      return TrafficClass::kSlp;
    case kSipPort:
      return TrafficClass::kSip;
    case kTunnelPort:
    case kTunnelClientPort:
      return TrafficClass::kTunnel;
    default:
      return d.dst_port >= kRtpPortBase && d.dst_port < kRtpPortBase + 1000
                 ? TrafficClass::kRtp
                 : TrafficClass::kOther;
  }
}

void RadioMedium::transmit(const Frame& frame) {
  const RadioAttachment* sender = find(frame.src_mac);
  if (sender == nullptr || !sender->enabled) return;
  // A jammed radio transmits nothing intelligible; drop at the source like
  // a disabled one, but without touching the attachment state.
  if (!jammed_.empty() && jammed_.contains(frame.src_mac)) return;

  // Sharded runs keep one stats shard and one candidate scratch buffer per
  // lane; aggregation happens in stats() at barrier time.
  const std::uint32_t lane = sharded_ ? sim_.current_lane() : 0;
  MediumStats& st = sharded_ ? lane_stats_[lane] : stats_;
  ++st.frames_sent;
  st.bytes_sent += frame.wire_size();
  auto& cls = st.by_class[classify(frame.datagram)];
  ++cls.frames;
  cls.bytes += frame.wire_size();
  if (tap_) tap_(frame, sim_.now());

  // Attachments mutate only outside concurrent windows (setup, serial
  // scenario windows), so a dirty index can always be rebuilt right here
  // on the calling thread.
  if (index_dirty_) {
    assert(!sim_.in_parallel_window());
    rebuild_index();
  }
  const bool in_window = sim_.in_parallel_window();

  const Position from = sender->position();
  const Duration tx_delay = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(static_cast<double>(frame.wire_size()) *
                                    8.0 / config_.bitrate_bps));
  const Duration arrival = tx_delay + config_.mac_latency;

  // Receiver set: unicast resolves the addressed MAC directly; broadcast
  // asks the spatial index for everything possibly in range.
  std::vector<std::uint32_t>& scratch =
      sharded_ ? lane_scratch_[lane] : scratch_;
  scratch.clear();
  if (frame.dst_mac == kBroadcastMac) {
    collect_candidates(from, scratch);
  } else if (const auto it = mac_index_.find(frame.dst_mac);
             it != mac_index_.end()) {
    scratch.push_back(it->second);
  }

  // Wide broadcasts run the pure pre-checks (enabled/jammed/filter/range)
  // in parallel over the worker pool; the subsequent loss/corruption draws
  // still consume the RNG in candidate order, so the outcome is identical
  // to the sequential scan. prefilter_[k]: 0 = skip, 1 = deliverable,
  // 2 = mobile radio, finish the range check inline (mobility models are
  // not safe to advance from worker threads).
  const bool prefiltered = !in_window && sim_.parallel_enabled() &&
                           frame.dst_mac == kBroadcastMac &&
                           scratch.size() >= kPrefilterThreshold;
  if (prefiltered) {
    prefilter_.assign(scratch.size(), 0);
    sim_.parallel_for(scratch.size(), [&](std::size_t k) {
      const std::uint32_t i = scratch[k];
      const RadioAttachment& rx = radios_[i];
      if (rx.mac == frame.src_mac || !rx.enabled) return;
      if (!jammed_.empty() && jammed_.contains(rx.mac)) return;
      if (link_filter_ && !link_filter_(frame.src_mac, rx.mac)) return;
      if (!rx.fixed_position) {
        prefilter_[k] = 2;
        return;
      }
      if (distance(from, fixed_positions_[i]) > config_.range) return;
      prefilter_[k] = 1;
    });
  }

  // Injected loss is time-dependent (ramps); evaluate once per frame.
  const double fault_loss = fault_loss_probability(sim_.now());

  bool unicast_reached = frame.dst_mac == kBroadcastMac;
  for (std::size_t k = 0; k < scratch.size(); ++k) {
    const std::uint32_t i = scratch[k];
    const RadioAttachment& rx = radios_[i];
    if (prefiltered) {
      if (prefilter_[k] == 0) continue;
      if (prefilter_[k] == 2 &&
          distance(from, rx.position()) > config_.range) {
        continue;
      }
    } else {
      if (rx.mac == frame.src_mac || !rx.enabled) continue;
      if (!jammed_.empty() && jammed_.contains(rx.mac)) continue;
      if (link_filter_ && !link_filter_(frame.src_mac, rx.mac)) continue;
      // Concurrent windows read the barrier snapshot of mobile positions
      // (never the live model, which belongs to the radio's home lane);
      // the snapshot is at most one lookahead window old.
      const Position at = rx.fixed_position
                              ? fixed_positions_[i]
                              : (in_window ? mobile_position_cache_[i]
                                           : rx.position());
      if (distance(from, at) > config_.range) continue;
    }
    unicast_reached = true;
    // Fault draws happen in a fixed documented order (base loss, injected
    // loss, corrupt, duplicate, reorder), each gated on its probability
    // being non-zero, so default-configured runs consume an unchanged RNG
    // stream and chaos runs are seed-reproducible.
    if (config_.loss_probability > 0 &&
        sim_.rng().chance(config_.loss_probability)) {
      ++st.frames_lost;
      continue;
    }
    if (fault_loss > 0 && sim_.rng().chance(fault_loss)) {
      ++st.frames_lost;
      continue;
    }
    const bool corrupt = faults_.corrupt_probability > 0 &&
                         sim_.rng().chance(faults_.corrupt_probability);
    const bool duplicate = faults_.duplicate_probability > 0 &&
                           sim_.rng().chance(faults_.duplicate_probability);
    Duration rx_arrival = arrival;
    if (faults_.reorder_probability > 0 &&
        sim_.rng().chance(faults_.reorder_probability)) {
      ++st.frames_reordered;
      bump_fault_counter("medium.frames_reordered_total");
      rx_arrival += std::chrono::duration_cast<Duration>(
          faults_.reorder_delay * sim_.rng().uniform());
    }
    ++st.frames_delivered;
    // Copy what the closure needs: the attachment may move as radios_
    // grows. The frame copy is cheap -- the payload is a shared buffer.
    // Delivery lands on the receiver's home lane (lane 0 when unsharded);
    // the MAC latency floor under rx_arrival is what makes the lookahead
    // window sound.
    const std::uint32_t rx_lane = sharded_ ? lane_by_radio_[i] : 0;
    auto deliver = rx.deliver;
    if (corrupt) {
      ++st.frames_corrupted;
      bump_fault_counter("medium.frames_corrupted_total");
      Frame mangled = corrupt_copy(frame);
      sim_.schedule_on(rx_lane, rx_arrival,
                       [deliver, mangled = std::move(mangled)] { deliver(mangled); });
    } else {
      sim_.schedule_on(rx_lane, rx_arrival, [deliver, frame] { deliver(frame); });
    }
    if (duplicate) {
      ++st.frames_duplicated;
      bump_fault_counter("medium.frames_duplicated_total");
      // The duplicate is a clean copy arriving a few MAC slots later, the
      // way a lost 802.11 ACK makes the sender retransmit a received frame.
      const Duration dup_arrival =
          rx_arrival +
          config_.mac_latency * (1 + sim_.rng().uniform_int(0, 3));
      sim_.schedule_on(rx_lane, dup_arrival, [deliver, frame] { deliver(frame); });
    }
  }

  if (!unicast_reached) {
    ++st.unicast_unreachable;
    if (sender->unicast_failed) {
      auto notify = sender->unicast_failed;
      sim_.schedule(arrival, [notify, frame] { notify(frame); });
    }
  }
}

std::optional<Address> RadioMedium::address_of(NodeId mac) const {
  const RadioAttachment* r = find(mac);
  if (r == nullptr) return std::nullopt;
  return r->address;
}

std::optional<NodeId> RadioMedium::resolve(Address address) const {
  const auto it = arp_.find(address);
  if (it == arp_.end()) return std::nullopt;
  return it->second;
}

bool RadioMedium::connected(NodeId a, NodeId b) const {
  const RadioAttachment* ra = find(a);
  const RadioAttachment* rb = find(b);
  if (ra == nullptr || rb == nullptr || !ra->enabled || !rb->enabled)
    return false;
  if (link_filter_ && (!link_filter_(a, b) || !link_filter_(b, a)))
    return false;
  return distance(ra->position(), rb->position()) <= config_.range;
}

}  // namespace siphoc::net
