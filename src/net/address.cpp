#include "net/address.hpp"

#include <charconv>
#include <cstdio>

#include "common/strings.hpp"

namespace siphoc::net {

std::string Address::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

std::optional<Address> Address::parse(std::string_view text) {
  const auto parts = split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned octet = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), octet);
    if (ec != std::errc{} || ptr != part.data() + part.size() || octet > 255)
      return std::nullopt;
    value = (value << 8) | octet;
  }
  return Address{value};
}

std::string Endpoint::to_string() const {
  return address.to_string() + ":" + std::to_string(port);
}

std::optional<Endpoint> Endpoint::parse(std::string_view text) {
  const auto colon = text.rfind(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const auto addr = Address::parse(text.substr(0, colon));
  if (!addr) return std::nullopt;
  const auto port_text = text.substr(colon + 1);
  unsigned port = 0;
  const auto [ptr, ec] = std::from_chars(
      port_text.data(), port_text.data() + port_text.size(), port);
  if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
      port > 65535)
    return std::nullopt;
  return Endpoint{*addr, static_cast<std::uint16_t>(port)};
}

}  // namespace siphoc::net
