#include "net/internet.hpp"

// Header-only; kept as a translation unit for build structure.
