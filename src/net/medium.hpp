// Shared wireless medium (unit-disk radio model).
//
// A frame transmitted by a radio is delivered to every other radio within
// `range` metres, after transmission delay (frame size / bitrate) plus a
// small propagation/MAC latency, and subject to an independent per-receiver
// loss probability. Unicast frames are filtered to the addressed MAC.
//
// A link filter lets scenarios forbid individual links regardless of
// distance -- the software equivalent of the firewalls the paper installs
// between testbed laptops "to enforce multihop communication".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/mobility.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace siphoc::net {

struct RadioConfig {
  double range = 120.0;              // metres (indoor 802.11b ballpark)
  double loss_probability = 0.0;     // independent per receiver
  double bitrate_bps = 11e6;         // 802.11b
  Duration mac_latency = microseconds(500);  // contention + propagation
};

/// Traffic class, derived from UDP ports, for overhead accounting.
enum class TrafficClass { kRouting, kSlp, kSip, kRtp, kTunnel, kOther };

struct ClassStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
};

struct MediumStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;        // random loss draws
  std::uint64_t unicast_unreachable = 0;  // addressed MAC out of range
  std::unordered_map<TrafficClass, ClassStats> by_class;
};

/// What a node plugs into the medium.
struct RadioAttachment {
  NodeId mac = 0;
  Address address;  // the radio's IP address (for ARP-style resolution)
  std::function<Position()> position;
  std::function<void(const Frame&)> deliver;
  /// Invoked on the *sender* when a unicast frame had no reachable target
  /// (802.11 missing-ACK feedback; AODV uses it to trigger RERR).
  std::function<void(const Frame&)> unicast_failed;
  bool enabled = true;
  /// True when `position` never changes (StaticMobility). The medium keeps
  /// fixed radios in a spatial grid; mobile radios are re-queried per frame.
  bool fixed_position = false;
};

class RadioMedium {
 public:
  RadioMedium(sim::Simulator& sim, RadioConfig config);

  /// Registers a radio; the attachment's callbacks must outlive the medium
  /// or be detached first.
  void attach(RadioAttachment attachment);
  void detach(NodeId mac);
  void set_enabled(NodeId mac, bool enabled);

  /// Scenario hook: return false to forbid the (a, b) link entirely.
  void set_link_filter(std::function<bool(NodeId, NodeId)> filter) {
    link_filter_ = std::move(filter);
  }

  /// Observer invoked for every transmitted frame (packet_trace example and
  /// tests use this as their "Wireshark").
  void set_tap(std::function<void(const Frame&, TimePoint)> tap) {
    tap_ = std::move(tap);
  }

  void transmit(const Frame& frame);

  /// ARP substitute: IP address -> MAC of the owning radio.
  std::optional<NodeId> resolve(Address address) const;

  /// Reverse lookup: MAC -> the radio's IP address.
  std::optional<Address> address_of(NodeId mac) const;

  /// True when the two radios are currently within range (and not filtered).
  bool connected(NodeId a, NodeId b) const;

  const MediumStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  const RadioConfig& config() const { return config_; }
  sim::Simulator& simulator() { return sim_; }

  static TrafficClass classify(const Datagram& d);

 private:
  const RadioAttachment* find(NodeId mac) const;

  /// Uniform spatial grid over the cached positions of fixed radios, cell
  /// size = radio range: all in-range fixed receivers of a transmission
  /// live in the sender's 3x3 cell neighborhood. Mobile radios are kept in
  /// a side list and scanned per frame, so delivery sets stay *exactly*
  /// equal to the brute-force scan (tested against it). Rebuilt lazily
  /// after attach/detach.
  void rebuild_index();
  static std::uint64_t pack_cell(std::int32_t cx, std::int32_t cy);
  std::pair<std::int32_t, std::int32_t> cell_coords(Position p) const;
  /// Appends every radio index that could be within `config_.range` of
  /// `from` (fixed: 3x3 grid cells; mobile: all) in attachment order --
  /// iteration order determines RNG draw order, so it must match the
  /// brute-force scan for run-for-run reproducibility.
  void collect_candidates(Position from, std::vector<std::uint32_t>& out) const;

  sim::Simulator& sim_;
  RadioConfig config_;
  std::vector<RadioAttachment> radios_;
  std::vector<Position> fixed_positions_;  // parallel to radios_ (fixed only)
  std::unordered_map<NodeId, std::uint32_t> mac_index_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> grid_;
  std::vector<std::uint32_t> mobile_;  // indices of non-fixed radios
  mutable std::vector<std::uint32_t> scratch_;  // reused per transmit
  bool index_dirty_ = true;
  std::unordered_map<Address, NodeId> arp_;
  std::function<bool(NodeId, NodeId)> link_filter_;
  std::function<void(const Frame&, TimePoint)> tap_;
  MediumStats stats_;
};

/// Well-known UDP ports of the emulated deployment.
inline constexpr std::uint16_t kAodvPort = 654;
inline constexpr std::uint16_t kOlsrPort = 698;
inline constexpr std::uint16_t kSlpPort = 427;
inline constexpr std::uint16_t kSipPort = 5060;
inline constexpr std::uint16_t kTunnelPort = 5100;        // server side
inline constexpr std::uint16_t kTunnelClientPort = 5101;  // client side
inline constexpr std::uint16_t kRtpPortBase = 8000;

}  // namespace siphoc::net
