// Shared wireless medium (unit-disk radio model).
//
// A frame transmitted by a radio is delivered to every other radio within
// `range` metres, after transmission delay (frame size / bitrate) plus a
// small propagation/MAC latency, and subject to an independent per-receiver
// loss probability. Unicast frames are filtered to the addressed MAC.
//
// A link filter lets scenarios forbid individual links regardless of
// distance -- the software equivalent of the firewalls the paper installs
// between testbed laptops "to enforce multihop communication".
//
// The chaos engine (src/scenario/faults.*) additionally drives the medium's
// fault knobs: per-node jamming, scheduled loss ramps, payload
// bit-corruption, frame duplication and bounded reordering. Every fault
// decision is drawn from the simulation RNG, and each draw is gated on its
// probability being non-zero, so runs with all knobs off consume the exact
// RNG stream they did before the knobs existed (seed reproducibility).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/mobility.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace siphoc::net {

struct RadioConfig {
  double range = 120.0;              // metres (indoor 802.11b ballpark)
  double loss_probability = 0.0;     // independent per receiver
  double bitrate_bps = 11e6;         // 802.11b
  Duration mac_latency = microseconds(500);  // contention + propagation
};

/// Traffic class, derived from UDP ports, for overhead accounting.
enum class TrafficClass { kRouting, kSlp, kSip, kRtp, kTunnel, kOther };

struct ClassStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
};

struct MediumStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_lost = 0;        // random loss draws
  std::uint64_t unicast_unreachable = 0;  // addressed MAC out of range
  std::uint64_t frames_corrupted = 0;   // delivered with flipped payload bits
  std::uint64_t frames_duplicated = 0;  // extra copy scheduled
  std::uint64_t frames_reordered = 0;   // delivery delayed past later frames
  std::unordered_map<TrafficClass, ClassStats> by_class;
};

/// Chaos-engine fault injection knobs, all per-receiver and drawn from the
/// simulation RNG in a fixed order (extra loss, corrupt, duplicate,
/// reorder) after the base loss draw. Corruption flips 1-4 random bits in
/// the UDP payload -- headers stay intact, modeling mangled bytes that slip
/// past the L2 checksum, which is exactly what the codecs must reject.
struct FaultKnobs {
  double extra_loss = 0.0;           // added on top of loss_probability
  double corrupt_probability = 0.0;  // deliver a bit-flipped copy
  double duplicate_probability = 0.0;
  double reorder_probability = 0.0;
  Duration reorder_delay = milliseconds(20);  // max extra delivery delay
};

/// What a node plugs into the medium.
struct RadioAttachment {
  NodeId mac = 0;
  Address address;  // the radio's IP address (for ARP-style resolution)
  std::function<Position()> position;
  std::function<void(const Frame&)> deliver;
  /// Invoked on the *sender* when a unicast frame had no reachable target
  /// (802.11 missing-ACK feedback; AODV uses it to trigger RERR).
  std::function<void(const Frame&)> unicast_failed;
  bool enabled = true;
  /// True when `position` never changes (StaticMobility). The medium keeps
  /// fixed radios in a spatial grid; mobile radios are re-queried per frame.
  bool fixed_position = false;
};

class RadioMedium {
 public:
  RadioMedium(sim::Simulator& sim, RadioConfig config);

  /// Registers a radio; the attachment's callbacks must outlive the medium
  /// or be detached first.
  void attach(RadioAttachment attachment);
  void detach(NodeId mac);
  void set_enabled(NodeId mac, bool enabled);

  /// Scenario hook: return false to forbid the (a, b) link entirely.
  void set_link_filter(std::function<bool(NodeId, NodeId)> filter) {
    link_filter_ = std::move(filter);
  }

  /// Observer invoked for every transmitted frame (packet_trace example and
  /// tests use this as their "Wireshark").
  void set_tap(std::function<void(const Frame&, TimePoint)> tap) {
    tap_ = std::move(tap);
  }

  // --- chaos-engine fault knobs ----------------------------------------
  void set_fault_knobs(FaultKnobs knobs) { faults_ = knobs; }
  const FaultKnobs& fault_knobs() const { return faults_; }

  /// Scheduled loss epoch: the injected loss probability ramps linearly
  /// from `p0` at `t0` to `p1` at `t1` and stays at `p1` afterwards (on top
  /// of both the base loss_probability and FaultKnobs::extra_loss).
  void set_loss_ramp(TimePoint t0, double p0, TimePoint t1, double p1) {
    ramp_ = LossRamp{t0, t1, p0, p1};
  }
  void clear_loss_ramp() { ramp_.reset(); }

  /// Radio blackout: a jammed node neither transmits nor receives, but
  /// unlike set_enabled(false) the attachment state is untouched, so the
  /// node's own stack keeps running (it just shouts into the void).
  void set_jammed(NodeId mac, bool jammed);
  bool jammed(NodeId mac) const { return jammed_.contains(mac); }

  /// Current injected loss probability (extra_loss + active ramp), clamped
  /// to [0, 1]. Exposed so tests and the fault engine can audit the ramp.
  double fault_loss_probability(TimePoint now) const;

  void transmit(const Frame& frame);

  // --- region sharding (docs/ARCHITECTURE.md) ---------------------------
  /// Installs the MAC -> lane mapping for a sharded simulation: frame
  /// deliveries are scheduled onto the receiving radio's lane, per-lane
  /// stats shards replace the single counter block, and the medium
  /// registers itself as the simulator's epoch hook (spatial index rebuild
  /// + mobile-position snapshot at every window barrier). Call after
  /// Simulator::enable_parallelism and before attaching radios.
  void configure_lanes(std::function<std::uint32_t(NodeId)> lane_of);

  /// Barrier-time refresh: rebuilds the spatial index if dirty and
  /// snapshots every mobile radio's position. In-window delivery decisions
  /// read the snapshot, so concurrent lanes never touch a mobility model
  /// they don't own.
  void epoch_refresh();

  /// ARP substitute: IP address -> MAC of the owning radio.
  std::optional<NodeId> resolve(Address address) const;

  /// Reverse lookup: MAC -> the radio's IP address.
  std::optional<Address> address_of(NodeId mac) const;

  /// True when the two radios are currently within range (and not filtered).
  bool connected(NodeId a, NodeId b) const;

  /// Aggregated over lane shards in sharded mode; read at a barrier (i.e.
  /// not from concurrently-running region events).
  const MediumStats& stats() const;
  void reset_stats();
  const RadioConfig& config() const { return config_; }
  sim::Simulator& simulator() { return sim_; }

  static TrafficClass classify(const Datagram& d);

 private:
  const RadioAttachment* find(NodeId mac) const;

  /// Bit-flipped copy of `frame` with Datagram::corrupted set (ground truth
  /// for the corrupt-accepted soak assertion).
  Frame corrupt_copy(const Frame& frame);
  void bump_fault_counter(const char* name);

  /// Uniform spatial grid over the cached positions of fixed radios, cell
  /// size = radio range: all in-range fixed receivers of a transmission
  /// live in the sender's 3x3 cell neighborhood. Mobile radios are kept in
  /// a side list and scanned per frame, so delivery sets stay *exactly*
  /// equal to the brute-force scan (tested against it). Rebuilt lazily
  /// after attach/detach.
  void rebuild_index();
  static std::uint64_t pack_cell(std::int32_t cx, std::int32_t cy);
  std::pair<std::int32_t, std::int32_t> cell_coords(Position p) const;
  /// Appends every radio index that could be within `config_.range` of
  /// `from` (fixed: 3x3 grid cells; mobile: all) in attachment order --
  /// iteration order determines RNG draw order, so it must match the
  /// brute-force scan for run-for-run reproducibility.
  void collect_candidates(Position from, std::vector<std::uint32_t>& out) const;

  sim::Simulator& sim_;
  RadioConfig config_;
  std::vector<RadioAttachment> radios_;
  std::vector<Position> fixed_positions_;  // parallel to radios_ (fixed only)
  std::unordered_map<NodeId, std::uint32_t> mac_index_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> grid_;
  std::vector<std::uint32_t> mobile_;  // indices of non-fixed radios
  mutable std::vector<std::uint32_t> scratch_;  // reused per transmit
  bool index_dirty_ = true;

  // Sharded-mode state. `lane_by_radio_` mirrors radios_ (rebuilt with the
  // index); `mobile_position_cache_` is the barrier snapshot concurrent
  // windows read; scratch and stats become per-lane to keep region lanes
  // from sharing mutable state.
  bool sharded_ = false;
  std::function<std::uint32_t(NodeId)> lane_of_;
  std::vector<std::uint32_t> lane_by_radio_;
  std::vector<Position> mobile_position_cache_;
  mutable std::vector<std::vector<std::uint32_t>> lane_scratch_;
  std::vector<MediumStats> lane_stats_;
  mutable MediumStats agg_stats_;
  // Parallel candidate prefilter (unsharded hot loop; docs/PERFORMANCE.md).
  mutable std::vector<std::uint8_t> prefilter_;
  std::unordered_map<Address, NodeId> arp_;
  std::function<bool(NodeId, NodeId)> link_filter_;
  std::function<void(const Frame&, TimePoint)> tap_;
  MediumStats stats_;

  struct LossRamp {
    TimePoint t0;
    TimePoint t1;
    double p0 = 0.0;
    double p1 = 0.0;
  };
  FaultKnobs faults_;
  std::optional<LossRamp> ramp_;
  std::unordered_set<NodeId> jammed_;
};

/// Well-known UDP ports of the emulated deployment.
inline constexpr std::uint16_t kAodvPort = 654;
inline constexpr std::uint16_t kOlsrPort = 698;
inline constexpr std::uint16_t kSlpPort = 427;
inline constexpr std::uint16_t kSipPort = 5060;
inline constexpr std::uint16_t kTunnelPort = 5100;        // server side
inline constexpr std::uint16_t kTunnelClientPort = 5101;  // client side
inline constexpr std::uint16_t kRtpPortBase = 8000;

}  // namespace siphoc::net
