// Emulated Internet segment.
//
// A wired backbone connecting SIP provider servers and the Internet-facing
// interfaces of MANET gateway nodes. Delivery is reliable with a fixed
// latency (the paper's providers -- siphoc.ch, netvoip.ch, polyphone.ethz.ch
// -- live here as registrar/proxy hosts). Attachments are per-address, so a
// gateway can additionally attach tunnel-client addresses on behalf of MANET
// nodes, which is exactly how the layer-2 tunnel makes a node "automatically
// attached to the Internet as well" (paper section 2).
//
// Also provides the DNS substitute: SIP domains resolve to Internet
// addresses so a proxy can route "sip:alice@voicehoc.ch" to its provider.
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace siphoc::net {

class Internet {
 public:
  using DeliverFn = std::function<void(const Datagram&)>;

  explicit Internet(sim::Simulator& sim, Duration latency = milliseconds(20))
      : sim_(sim), latency_(latency) {}

  void attach(Address address, DeliverFn deliver) {
    attachments_[address] = std::move(deliver);
  }
  void detach(Address address) { attachments_.erase(address); }
  bool attached(Address address) const {
    return attachments_.contains(address);
  }

  /// Delivers to the attachment owning `dst`; silently drops otherwise
  /// (like any Internet path to an unrouted address).
  ///
  /// Sharded simulations serialize the wired backbone on the scenario lane
  /// (lane 0): gateways on different region lanes may send concurrently, so
  /// the attachment/DNS lookup is deferred into the lane-0 delivery event
  /// and only relaxed atomic counters are touched here. The wired latency
  /// must be at least the lookahead window for the cross-lane hop to be
  /// admissible (the testbed asserts this).
  void send(const Datagram& datagram) {
    datagrams_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(datagram.wire_size(), std::memory_order_relaxed);
    if (sim_.sharded()) {
      sim_.schedule_on(0, latency_, [this, datagram] {
        const auto it = attachments_.find(datagram.dst);
        if (it == attachments_.end()) {
          datagrams_dropped_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        it->second(datagram);
      });
      return;
    }
    const auto it = attachments_.find(datagram.dst);
    if (it == attachments_.end()) {
      datagrams_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    auto deliver = it->second;
    sim_.schedule(latency_, [deliver, datagram] { deliver(datagram); });
  }

  // --- DNS substitute -------------------------------------------------
  void register_domain(std::string domain, Address address) {
    dns_[std::move(domain)] = address;
  }
  std::optional<Address> resolve(const std::string& domain) const {
    const auto it = dns_.find(domain);
    if (it == dns_.end()) return std::nullopt;
    return it->second;
  }

  std::uint64_t datagrams_sent() const {
    return datagrams_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t datagrams_dropped() const {
    return datagrams_dropped_.load(std::memory_order_relaxed);
  }
  Duration latency() const { return latency_; }

 private:
  sim::Simulator& sim_;
  Duration latency_;
  std::unordered_map<Address, DeliverFn> attachments_;
  std::unordered_map<std::string, Address> dns_;
  std::atomic<std::uint64_t> datagrams_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> datagrams_dropped_{0};
};

}  // namespace siphoc::net
