// Emulated Internet segment.
//
// A wired backbone connecting SIP provider servers and the Internet-facing
// interfaces of MANET gateway nodes. Delivery is reliable with a fixed
// latency (the paper's providers -- siphoc.ch, netvoip.ch, polyphone.ethz.ch
// -- live here as registrar/proxy hosts). Attachments are per-address, so a
// gateway can additionally attach tunnel-client addresses on behalf of MANET
// nodes, which is exactly how the layer-2 tunnel makes a node "automatically
// attached to the Internet as well" (paper section 2).
//
// Also provides the DNS substitute: SIP domains resolve to Internet
// addresses so a proxy can route "sip:alice@voicehoc.ch" to its provider.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace siphoc::net {

class Internet {
 public:
  using DeliverFn = std::function<void(const Datagram&)>;

  explicit Internet(sim::Simulator& sim, Duration latency = milliseconds(20))
      : sim_(sim), latency_(latency) {}

  void attach(Address address, DeliverFn deliver) {
    attachments_[address] = std::move(deliver);
  }
  void detach(Address address) { attachments_.erase(address); }
  bool attached(Address address) const {
    return attachments_.contains(address);
  }

  /// Delivers to the attachment owning `dst`; silently drops otherwise
  /// (like any Internet path to an unrouted address).
  void send(const Datagram& datagram) {
    ++datagrams_sent_;
    bytes_sent_ += datagram.wire_size();
    const auto it = attachments_.find(datagram.dst);
    if (it == attachments_.end()) {
      ++datagrams_dropped_;
      return;
    }
    auto deliver = it->second;
    sim_.schedule(latency_, [deliver, datagram] { deliver(datagram); });
  }

  // --- DNS substitute -------------------------------------------------
  void register_domain(std::string domain, Address address) {
    dns_[std::move(domain)] = address;
  }
  std::optional<Address> resolve(const std::string& domain) const {
    const auto it = dns_.find(domain);
    if (it == dns_.end()) return std::nullopt;
    return it->second;
  }

  std::uint64_t datagrams_sent() const { return datagrams_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t datagrams_dropped() const { return datagrams_dropped_; }
  Duration latency() const { return latency_; }

 private:
  sim::Simulator& sim_;
  Duration latency_;
  std::unordered_map<Address, DeliverFn> attachments_;
  std::unordered_map<std::string, Address> dns_;
  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t datagrams_dropped_ = 0;
};

}  // namespace siphoc::net
