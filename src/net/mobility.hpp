// Node positions and mobility models.
//
// The medium asks each radio for its position at transmit time, so mobility
// models only need to answer "where are you now?". RandomWaypoint -- the
// standard MANET evaluation model -- moves between uniformly drawn waypoints
// at a uniformly drawn speed with pause times, computing positions
// analytically along the current segment (no per-tick update events).
#pragma once

#include <memory>
#include <vector>

#include "common/random.hpp"
#include "sim/simulator.hpp"

namespace siphoc::net {

struct Position {
  double x = 0;
  double y = 0;
};

double distance(Position a, Position b);

/// Interface: answers the node position at a given virtual time. Time must
/// be non-decreasing across calls (simulation time only moves forward).
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Position position_at(TimePoint t) = 0;

  /// True when the position can never change. The radio medium caches
  /// fixed positions in its spatial index instead of querying per frame,
  /// so a model returning true here must be genuinely immutable.
  virtual bool is_fixed() const { return false; }
};

/// A node that never moves (the paper's laptops on desks). Immutable:
/// the medium indexes fixed nodes spatially and never re-asks.
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Position p) : pos_(p) {}
  Position position_at(TimePoint) override { return pos_; }
  bool is_fixed() const override { return true; }

 private:
  const Position pos_;
};

struct RandomWaypointConfig {
  double width = 500;       // metres
  double height = 500;      // metres
  double min_speed = 0.5;   // m/s; must be > 0 to avoid the frozen-node
  double max_speed = 5.0;   // m/s   degenerate case of random waypoint
  Duration pause = seconds(2);
};

/// Random waypoint: pick a destination uniformly in the area, travel there
/// at a uniform random speed, pause, repeat.
class RandomWaypointMobility final : public MobilityModel {
 public:
  RandomWaypointMobility(Position start, RandomWaypointConfig config, Rng rng);

  Position position_at(TimePoint t) override;

 private:
  void next_leg(TimePoint now);

  RandomWaypointConfig config_;
  Rng rng_;
  Position origin_;
  Position target_;
  TimePoint leg_start_{};
  TimePoint leg_end_{};   // arrival at target
  TimePoint pause_end_{};  // end of the pause after arrival
};

/// Positions for common test topologies.
std::vector<Position> chain_positions(std::size_t count, double spacing);
std::vector<Position> grid_positions(std::size_t count, double spacing);

}  // namespace siphoc::net
