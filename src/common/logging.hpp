// Lightweight structured logging.
//
// Log lines carry the simulated timestamp, a component tag ("aodv", "proxy",
// "slp", ...) and the node that emitted them, so a run reads like a merged
// testbed log. The default sink is silent; tests and examples install a
// stderr sink or a capturing sink. Benchmarks leave logging off.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "common/time.hpp"

namespace siphoc {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

std::string_view to_string(LogLevel level);

struct LogRecord {
  TimePoint time;
  LogLevel level;
  std::string component;
  std::string node;  // empty for node-less contexts
  std::string message;
};

using LogSink = std::function<void(const LogRecord&)>;

/// Logging configuration: sink, level, time source. One instance per
/// SimContext; instance() is the default context's (process-wide) one and
/// current() resolves the thread-bound context's (see common/context.hpp).
/// The simulator sets the time source on its own context's instance.
class Logging {
 public:
  Logging() = default;

  static Logging& instance();
  static Logging& current();

  void set_sink(LogSink sink) { sink_ = std::move(sink); }
  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// The simulator registers itself here so log lines carry virtual time.
  void set_time_source(std::function<TimePoint()> now) {
    now_ = std::move(now);
  }

  void emit(LogLevel level, std::string_view component, std::string_view node,
            std::string message);

  /// Installs a sink that prints "t=1.234567s [level] component node: msg"
  /// to stderr. Used by the examples.
  void use_stderr();

 private:
  LogSink sink_;
  LogLevel level_ = LogLevel::kOff;
  std::function<TimePoint()> now_;
};

/// Per-component logger handle; cheap to copy.
class Logger {
 public:
  Logger() = default;
  Logger(std::string component, std::string node = {})
      : component_(std::move(component)), node_(std::move(node)) {}

  template <typename... Args>
  void log(LogLevel level, Args&&... args) const {
    auto& g = Logging::current();
    if (level < g.level()) return;
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    g.emit(level, component_, node_, std::move(os).str());
  }

  template <typename... Args>
  void trace(Args&&... args) const {
    log(LogLevel::kTrace, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void debug(Args&&... args) const {
    log(LogLevel::kDebug, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void info(Args&&... args) const {
    log(LogLevel::kInfo, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void warn(Args&&... args) const {
    log(LogLevel::kWarn, std::forward<Args>(args)...);
  }
  template <typename... Args>
  void error(Args&&... args) const {
    log(LogLevel::kError, std::forward<Args>(args)...);
  }

 private:
  std::string component_;
  std::string node_;
};

}  // namespace siphoc
