// Metrics registry and span tracer.
//
// Every layer of the stack reports into one registry so benches, examples
// and tests read a single machine-readable surface instead of scraping
// per-component stats structs. Three instrument kinds (counter, gauge,
// histogram with fixed bucket boundaries) are labeled by (node, component)
// -- the same pair a LogRecord carries -- and a ring-buffer tracer records
// (t_start, t_end, component, node, name) spans for latency-shaped
// quantities (route discovery, SLP resolution, INVITE transactions).
//
// Registries are per-simulation: each SimContext owns one, and instance()
// is merely the default context's registry (see common/context.hpp and
// docs/METRICS.md "Per-simulation registries"). A registry instance is
// single-threaded by design -- parallel experiment cells each get their
// own and are merged afterwards via merge_from(), in submission order, so
// merged sidecars are independent of thread count.
//
// Timestamps come from the same virtual-time hook Logging uses: the
// simulator registers itself as the time source, so exports line up with
// log lines and trace captures. Export is JSON and CSV; the schemas and
// the full metric catalog are the contract documented in docs/METRICS.md
// (CI validates both directions: sidecar names must be documented, and
// documented source literals must exist).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace siphoc {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time measurement; may go up and down.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Distribution over fixed bucket upper bounds (a value lands in the first
/// bucket whose bound is >= it; values above every bound land in +inf).
/// Bounds are fixed at first registration of the metric name.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; the last entry is the +inf bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

  /// Accumulates another histogram's buckets/count/sum. Both sides must
  /// share bucket bounds (guaranteed when both were registered under the
  /// same metric name); mismatched extra buckets are ignored defensively.
  void merge(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

/// One traced interval, virtual-time-stamped.
struct SpanRecord {
  TimePoint t_start{};
  TimePoint t_end{};
  std::string component;
  std::string node;
  std::string name;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  /// The process-default registry (the one SimContext::global() wraps).
  static MetricsRegistry& instance();

  /// The registry of the thread-bound SimContext; instance() when no
  /// context is bound. Leaf code with no path to a simulator uses this.
  static MetricsRegistry& current();

  /// The simulator registers itself here (same hook shape as Logging) so
  /// span timestamps and export headers carry virtual time.
  void set_time_source(std::function<TimePoint()> now) {
    now_ = std::move(now);
  }
  TimePoint now() const { return now_ ? now_() : TimePoint{}; }

  // --- instruments --------------------------------------------------------
  // References stay valid until reset(). Creating a series beyond the
  // per-name label cardinality cap returns the shared overflow series
  // (node/component "(overflow)") instead of growing without bound.
  Counter& counter(std::string_view name, std::string_view node = {},
                   std::string_view component = {});
  Gauge& gauge(std::string_view name, std::string_view node = {},
               std::string_view component = {});
  Histogram& histogram(std::string_view name, std::span<const double> bounds,
                       std::string_view node = {},
                       std::string_view component = {});

  /// Max distinct (node, component) pairs per metric name.
  void set_label_cardinality_cap(std::size_t cap) { label_cap_ = cap; }
  std::size_t label_cardinality_cap() const { return label_cap_; }

  // --- tracer -------------------------------------------------------------
  void record_span(std::string_view name, std::string_view component,
                   std::string_view node, TimePoint t_start, TimePoint t_end);
  /// Ring capacity; shrinking drops the oldest retained spans.
  void set_span_capacity(std::size_t capacity);
  std::size_t span_capacity() const { return span_capacity_; }
  /// Retained spans, oldest first.
  std::vector<SpanRecord> spans() const;
  std::uint64_t spans_recorded() const { return spans_recorded_; }
  std::uint64_t spans_dropped() const;

  // --- queries (tests, benches) ------------------------------------------
  /// Sum of a counter across every label set (0 when absent).
  std::uint64_t counter_total(std::string_view name) const;
  /// The series if it exists; does not create.
  const Counter* find_counter(std::string_view name, std::string_view node,
                              std::string_view component) const;

  // --- export -------------------------------------------------------------
  /// Schema "siphoc.metrics.v1"; see docs/METRICS.md. A registry that was
  /// merge_from()'d out of parallel cells passes the cell count so the
  /// sidecar records its provenance ("merged_cells": N).
  std::string to_json(std::size_t merged_cells = 0) const;
  std::string to_csv() const;
  /// Writes `contents` to `path`; false (with a stderr note) on failure.
  static bool write_file(const std::string& path, const std::string& contents);

  /// Drops every series and span. Caps and the time source survive --
  /// benches call this between runs, the simulator outlives none of it.
  void reset();

  /// Folds another registry into this one: counters and histograms
  /// accumulate, gauges take the other side's value (last write wins, like
  /// a sequential run would), spans append through the ring. The parallel
  /// cell runner merges per-cell registries in submission order, which
  /// makes the merged export a pure function of the cell list -- identical
  /// for any thread count.
  void merge_from(const MetricsRegistry& other);

 private:
  struct SeriesKey {
    std::string name;
    std::string node;
    std::string component;
    auto operator<=>(const SeriesKey&) const = default;
  };

  /// Applies the cardinality cap: the key itself, or the overflow key.
  SeriesKey admit(std::string_view name, std::string_view node,
                  std::string_view component);

  std::function<TimePoint()> now_;
  std::size_t label_cap_ = 512;
  std::map<SeriesKey, std::unique_ptr<Counter>> counters_;
  std::map<SeriesKey, std::unique_ptr<Gauge>> gauges_;
  std::map<SeriesKey, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::map<SeriesKey, int>> cardinality_;

  std::vector<SpanRecord> span_ring_;
  std::size_t span_capacity_ = 4096;
  std::size_t span_head_ = 0;  // next write slot once the ring is full
  std::uint64_t spans_recorded_ = 0;
};

/// RAII span over virtual time: records [construction, destruction] on the
/// given registry, defaulting to the thread-bound context's registry.
class ScopedSpan {
 public:
  ScopedSpan(std::string name, std::string component, std::string node = {},
             MetricsRegistry* registry = nullptr)
      : registry_(registry != nullptr ? registry
                                      : &MetricsRegistry::current()),
        name_(std::move(name)),
        component_(std::move(component)),
        node_(std::move(node)),
        start_(registry_->now()) {}
  ~ScopedSpan() {
    registry_->record_span(name_, component_, node_, start_,
                           registry_->now());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::string component_;
  std::string node_;
  TimePoint start_;
};

/// Shared latency bucket boundaries, in milliseconds. One scale for every
/// *_ms histogram keeps sidecars comparable across layers and benches.
inline constexpr double kLatencyBucketsMs[] = {
    0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000};

}  // namespace siphoc
