// Binary wire-format helpers.
//
// All on-the-wire encodings in this project (AODV, OLSR, SLP extensions,
// RTP, tunnel frames) are big-endian, mirroring the network byte order the
// real protocols use. BufferWriter appends fields; BufferReader consumes
// them with explicit bounds checking so a truncated or hostile packet can
// never read past the end of the buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace siphoc {

using Bytes = std::vector<std::uint8_t>;

/// Immutable, cheaply-copyable byte buffer (shared ownership).
///
/// Datagram payloads use this so that delivering a broadcast frame to k
/// receivers schedules k closures over ONE payload allocation instead of k
/// deep copies; the same applies to multihop forwarding, which copies the
/// datagram once per hop. Construction from `Bytes` takes ownership of the
/// vector; all further copies are a reference-count bump. The buffer is
/// immutable after construction -- to change a payload, build a new one.
class SharedBytes {
 public:
  SharedBytes() = default;
  SharedBytes(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : data_(bytes.empty()
                  ? nullptr
                  : std::make_shared<const Bytes>(std::move(bytes))) {}
  SharedBytes(std::initializer_list<std::uint8_t> il)
      : SharedBytes(Bytes(il)) {}

  const Bytes& bytes() const { return data_ ? *data_ : empty_bytes(); }
  const std::uint8_t* data() const { return bytes().data(); }
  std::size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }
  auto begin() const { return bytes().begin(); }
  auto end() const { return bytes().end(); }

  operator const Bytes&() const {  // NOLINT(google-explicit-constructor)
    return bytes();
  }
  operator std::span<const std::uint8_t>() const {  // NOLINT
    return bytes();
  }

  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    return a.bytes() == b.bytes();
  }
  friend bool operator==(const SharedBytes& a, const Bytes& b) {
    return a.bytes() == b;
  }

 private:
  static const Bytes& empty_bytes() {
    static const Bytes empty;
    return empty;
  }
  std::shared_ptr<const Bytes> data_;
};

/// Appends big-endian encoded primitive fields to a byte vector.
class BufferWriter {
 public:
  explicit BufferWriter(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
    out_.push_back(static_cast<std::uint8_t>(v >> 16));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void raw(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  /// Length-prefixed (u16) string, the framing used by all our TLVs.
  void str(std::string_view s) {
    u16(static_cast<std::uint16_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  std::size_t size() const { return out_.size(); }

 private:
  Bytes& out_;
};

/// Bounds-checked big-endian reader over a byte span.
class BufferReader {
 public:
  explicit BufferReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

  Result<std::uint8_t> u8() {
    if (remaining() < 1) return fail("u8: buffer underrun");
    return data_[pos_++];
  }
  Result<std::uint16_t> u16() {
    if (remaining() < 2) return fail("u16: buffer underrun");
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8) |
                      static_cast<std::uint16_t>(data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  Result<std::uint32_t> u32() {
    if (remaining() < 4) return fail("u32: buffer underrun");
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                      static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }
  Result<std::uint64_t> u64() {
    auto hi = u32();
    if (!hi) return hi.error();
    auto lo = u32();
    if (!lo) return lo.error();
    return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
  }
  Result<std::string> str() {
    auto len = u16();
    if (!len) return len.error();
    if (remaining() < *len) return fail("str: buffer underrun");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *len);
    pos_ += *len;
    return s;
  }
  Result<Bytes> raw(std::size_t n) {
    if (remaining() < n) return fail("raw: buffer underrun");
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return b;
  }
  Result<void> skip(std::size_t n) {
    if (remaining() < n) return fail("skip: buffer underrun");
    pos_ += n;
    return {};
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected). The binary codecs append it
/// as an integrity trailer so frames mangled by the chaos engine's
/// bit-corruption injector are rejected at decode instead of poisoning
/// routing tables or SLP caches (see docs/RESILIENCE.md).
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Converts ASCII text to bytes (SIP messages travel as text over UDP).
Bytes to_bytes(std::string_view text);

/// Interprets bytes as ASCII text.
std::string to_string(std::span<const std::uint8_t> data);

/// Hex dump with 16 bytes per row and an ASCII gutter, in the style of a
/// packet analyzer pane (used by examples/packet_trace to render Figure 5).
std::string hex_dump(std::span<const std::uint8_t> data);

}  // namespace siphoc
