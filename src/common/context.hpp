// Per-simulation context: the bundle of process services a simulation
// observes -- metrics registry, log sink, virtual-time source, root RNG
// seed.
//
// Historically MetricsRegistry and Logging were process-wide singletons,
// which meant two simulators could not coexist in one process (the second
// one's counters landed in the first one's registry, and destroying either
// clobbered the shared time source). SimContext makes the bundle a value:
// each Simulator/Testbed owns (or borrows) one, and every layer that used
// to call MetricsRegistry::instance() now reaches the registry through its
// simulator's context.
//
// Two access paths coexist deliberately:
//   * explicit: components that hold a Host/Simulator reach
//     sim.ctx().metrics() and capture instrument references at
//     construction. This is the primary path; it is what makes per-cell
//     isolation deterministic rather than dependent on runtime state.
//   * thread-bound: SimContext::current() resolves a thread_local pointer
//     installed by SimContext::Bind (the Simulator binds its context for
//     the duration of every run loop, the parallel cell runner binds it
//     around a whole cell). Leaf code with no path to a simulator (Logger,
//     ScopedSpan default) resolves through it and degrades to the global
//     context when nothing is bound -- so existing single-simulation entry
//     points compile and behave unchanged.
//
// The default context (SimContext::global()) wraps the legacy singletons,
// keeping the old "one process, one registry" world intact for code that
// never asks for isolation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/time.hpp"

namespace siphoc {

class Logging;
class MetricsRegistry;

class SimContext {
 public:
  /// A fresh, fully isolated context: its own registry and log sink.
  SimContext();
  ~SimContext();

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  /// The default context wrapping the process-wide MetricsRegistry and
  /// Logging singletons.
  static SimContext& global();

  /// The context bound to this thread (via Bind), or global() when none.
  static SimContext& current();

  MetricsRegistry& metrics() { return *metrics_; }
  const MetricsRegistry& metrics() const { return *metrics_; }
  Logging& log() { return *log_; }

  /// Root seed of the simulation this context belongs to; the parallel
  /// cell runner records the derived per-cell seed here.
  std::uint64_t root_seed() const { return root_seed_; }
  void set_root_seed(std::uint64_t seed) { root_seed_ = seed; }

  /// Deterministic per-cell seed derivation (splitmix64 over root+index):
  /// cell k of a sweep always simulates with derive_seed(root, k),
  /// independent of thread count or completion order. Never returns 0, so
  /// derived seeds are always valid mt19937_64 seeds distinct per index.
  static std::uint64_t derive_seed(std::uint64_t root, std::uint64_t index);

  /// The simulator registers its virtual clock on both the registry and
  /// the log sink through this, tagged by owner, so a simulator being
  /// destroyed only clears the time source if no later simulator has taken
  /// it over (the pre-context code clobbered it unconditionally).
  void adopt_time_source(const void* owner, std::function<TimePoint()> now);
  void release_time_source(const void* owner);

  /// RAII thread-local binding: while alive, SimContext::current() on this
  /// thread resolves to the bound context. Nests (restores the previous
  /// binding on destruction).
  class Bind {
   public:
    explicit Bind(SimContext& context);
    ~Bind();
    Bind(const Bind&) = delete;
    Bind& operator=(const Bind&) = delete;

   private:
    SimContext* previous_;
  };

 private:
  struct GlobalTag {};
  explicit SimContext(GlobalTag);

  std::unique_ptr<MetricsRegistry> owned_metrics_;
  std::unique_ptr<Logging> owned_log_;
  MetricsRegistry* metrics_;
  Logging* log_;
  std::uint64_t root_seed_ = 0;
  const void* time_owner_ = nullptr;
};

}  // namespace siphoc
