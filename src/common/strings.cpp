#include "common/strings.hpp"

#include <algorithm>
#include <cctype>

namespace siphoc {

std::string_view trim(std::string_view s) {
  const auto not_space = [](char c) { return c != ' ' && c != '\t'; };
  while (!s.empty() && !not_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && !not_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_trimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const auto& field : split(s, sep)) {
    auto t = trim(field);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out;
  to_lower_into(s, out);
  return out;
}

void to_lower_into(std::string_view s, std::string& out) {
  out.assign(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool istarts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         iequals(s.substr(0, prefix.size()), prefix);
}

std::pair<std::string, std::string> split_kv(std::string_view s, char sep) {
  const auto pos = s.find(sep);
  if (pos == std::string_view::npos) {
    return {std::string(trim(s)), std::string()};
  }
  return {std::string(trim(s.substr(0, pos))),
          std::string(trim(s.substr(pos + 1)))};
}

}  // namespace siphoc
