// Small string utilities shared by the text-protocol parsers (SIP, SDP, SLP
// service URLs). SIP header names are case-insensitive per RFC 3261, hence
// the ASCII case-folding helpers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace siphoc {

/// Removes leading and trailing spaces and tabs.
std::string_view trim(std::string_view s);

/// Splits on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on a character, trimming each field; empty fields are dropped.
std::vector<std::string> split_trimmed(std::string_view s, char sep);

/// ASCII lower-casing (locale independent).
std::string to_lower(std::string_view s);

/// ASCII lower-casing into a caller-owned buffer, so hot parse paths can
/// reuse one string's capacity instead of allocating per call.
void to_lower_into(std::string_view s, std::string& out);

/// Case-insensitive ASCII equality (SIP header names, methods in URIs).
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view s, std::string_view prefix);
bool istarts_with(std::string_view s, std::string_view prefix);

/// Splits "key=value" at the first '=' ; value is empty when no '='.
std::pair<std::string, std::string> split_kv(std::string_view s, char sep);

}  // namespace siphoc
