// MD5 (RFC 1321), self-contained.
//
// Present solely because SIP HTTP-Digest authentication (RFC 3261 section
// 22 / RFC 2617) is specified over MD5; this is an authentication
// checksum, not a security boundary, exactly as deployed SIP uses it.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace siphoc {

using Md5Digest = std::array<std::uint8_t, 16>;

Md5Digest md5(std::string_view data);

/// Lowercase hex rendering, as digest auth headers carry it.
std::string md5_hex(std::string_view data);

}  // namespace siphoc
