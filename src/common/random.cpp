#include "common/random.hpp"

// Header-only today; this translation unit pins the module into the build so
// a future out-of-line method has a home.
