#include "common/bytes.hpp"

#include <array>
#include <cctype>
#include <cstdio>

namespace siphoc {

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const std::uint8_t b : data) {
    crc = table[(crc ^ b) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

Bytes to_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string to_string(std::span<const std::uint8_t> data) {
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

std::string hex_dump(std::span<const std::uint8_t> data) {
  std::string out;
  char line[24];
  for (std::size_t row = 0; row < data.size(); row += 16) {
    std::snprintf(line, sizeof(line), "%04zx  ", row);
    out += line;
    for (std::size_t i = 0; i < 16; ++i) {
      if (row + i < data.size()) {
        std::snprintf(line, sizeof(line), "%02x ", data[row + i]);
        out += line;
      } else {
        out += "   ";
      }
      if (i == 7) out += ' ';
    }
    out += " |";
    for (std::size_t i = 0; i < 16 && row + i < data.size(); ++i) {
      const unsigned char c = data[row + i];
      out += std::isprint(c) ? static_cast<char>(c) : '.';
    }
    out += "|\n";
  }
  return out;
}

}  // namespace siphoc
