// Deterministic randomness.
//
// Every simulation owns exactly one Rng seeded from the scenario seed; all
// protocol jitter (SIP timer fuzz, AODV RREQ jitter, mobility waypoints,
// radio loss draws) flows through it. Re-running a scenario with the same
// seed reproduces the exact packet-by-packet schedule, which is what makes
// the test suite and the benchmark tables stable.
#pragma once

#include <cstdint>
#include <random>

#include "common/time.hpp"

namespace siphoc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint32_t uniform_int(std::uint32_t lo, std::uint32_t hi) {
    return std::uniform_int_distribution<std::uint32_t>(lo, hi)(engine_);
  }

  std::uint64_t uniform_u64() {
    return std::uniform_int_distribution<std::uint64_t>()(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed duration with the given mean.
  Duration exponential(Duration mean) {
    const double lambda = 1.0 / to_seconds(mean);
    const double secs = std::exponential_distribution<double>(lambda)(engine_);
    return std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(secs));
  }

  /// Uniform duration in [lo, hi).
  Duration jitter(Duration lo, Duration hi) {
    const double secs = uniform(to_seconds(lo), to_seconds(hi));
    return std::chrono::duration_cast<Duration>(
        std::chrono::duration<double>(secs));
  }

  /// Derives an independent child generator (e.g. one per node) so adding a
  /// draw in one component does not shift every other component's stream.
  Rng fork() { return Rng(uniform_u64() | 1); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace siphoc
