// Virtual time primitives used throughout the simulator and protocol stacks.
//
// All simulated time is expressed as a signed 64-bit count of microseconds
// since the start of the simulation. Using a strong typedef (std::chrono
// duration/time_point over a virtual clock) keeps unit errors out of the
// protocol code: a raw integer cannot silently be interpreted as seconds in
// one module and milliseconds in another.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace siphoc {

/// Tag clock for simulated time. Never reads the wall clock; the simulator
/// kernel is the only source of "now".
struct VirtualClock {
  using rep = std::int64_t;
  using period = std::micro;
  using duration = std::chrono::duration<rep, period>;
  using time_point = std::chrono::time_point<VirtualClock>;
  static constexpr bool is_steady = true;
};

using Duration = VirtualClock::duration;
using TimePoint = VirtualClock::time_point;

using std::chrono::hours;
using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::minutes;
using std::chrono::seconds;

/// Formats a time point as fractional seconds, e.g. "12.034567s".
inline std::string format_time(TimePoint t) {
  const auto us = t.time_since_epoch().count();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld.%06llds",
                static_cast<long long>(us / 1'000'000),
                static_cast<long long>(us % 1'000'000 < 0 ? -(us % 1'000'000)
                                                          : us % 1'000'000));
  return buf;
}

/// Converts a duration to floating point seconds (for reporting only).
inline double to_seconds(Duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Converts a duration to floating point milliseconds (for reporting only).
inline double to_millis(Duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace siphoc
