#include "common/logging.hpp"

#include <cstdio>

namespace siphoc {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

Logging& Logging::instance() {
  static Logging g;
  return g;
}

void Logging::emit(LogLevel level, std::string_view component,
                   std::string_view node, std::string message) {
  if (!sink_) return;
  LogRecord rec;
  rec.time = now_ ? now_() : TimePoint{};
  rec.level = level;
  rec.component = std::string(component);
  rec.node = std::string(node);
  rec.message = std::move(message);
  sink_(rec);
}

void Logging::use_stderr() {
  set_sink([](const LogRecord& rec) {
    std::fprintf(stderr, "t=%-12s [%-5s] %-10s %-8s %s\n",
                 format_time(rec.time).c_str(),
                 std::string(to_string(rec.level)).c_str(),
                 rec.component.c_str(), rec.node.c_str(),
                 rec.message.c_str());
  });
}

}  // namespace siphoc
