#include "common/context.hpp"

#include "common/logging.hpp"
#include "common/metrics.hpp"

namespace siphoc {

namespace {
thread_local SimContext* t_current = nullptr;
}  // namespace

SimContext::SimContext()
    : owned_metrics_(std::make_unique<MetricsRegistry>()),
      owned_log_(std::make_unique<Logging>()),
      metrics_(owned_metrics_.get()),
      log_(owned_log_.get()) {}

SimContext::SimContext(GlobalTag)
    : metrics_(&MetricsRegistry::instance()), log_(&Logging::instance()) {}

SimContext::~SimContext() = default;

SimContext& SimContext::global() {
  static SimContext context{GlobalTag{}};
  return context;
}

SimContext& SimContext::current() {
  return t_current != nullptr ? *t_current : global();
}

std::uint64_t SimContext::derive_seed(std::uint64_t root,
                                      std::uint64_t index) {
  // splitmix64 finalizer over a golden-ratio stride: statistically
  // independent streams for adjacent indices, stable across platforms.
  std::uint64_t z = root + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 0x9e3779b97f4a7c15ull;
}

void SimContext::adopt_time_source(const void* owner,
                                   std::function<TimePoint()> now) {
  time_owner_ = owner;
  metrics_->set_time_source(now);
  log_->set_time_source(std::move(now));
}

void SimContext::release_time_source(const void* owner) {
  if (time_owner_ != owner) return;
  time_owner_ = nullptr;
  metrics_->set_time_source(nullptr);
  log_->set_time_source(nullptr);
}

SimContext::Bind::Bind(SimContext& context) : previous_(t_current) {
  t_current = &context;
}

SimContext::Bind::~Bind() { t_current = previous_; }

MetricsRegistry& MetricsRegistry::current() {
  return SimContext::current().metrics();
}

Logging& Logging::current() { return SimContext::current().log(); }

}  // namespace siphoc
