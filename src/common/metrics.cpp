#include "common/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace siphoc {
namespace {

constexpr std::string_view kOverflowLabel = "(overflow)";

// Minimal JSON string escaping: quotes, backslashes, control chars. Metric
// names and node names are ASCII identifiers in practice, but the exporter
// must not emit broken documents for unusual input.
void append_json_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

std::string format_double(double v) {
  // %.17g round-trips but is noisy; %g at 15 digits is lossless for every
  // value the stack produces (byte counts, millisecond latencies).
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  return buf;
}

// CSV fields are identifiers and numbers; quote only when a delimiter,
// quote, or newline forces it (RFC 4180 style).
std::string csv_field(std::string_view s) {
  if (s.find_first_of(",\"\n\r") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += v;
}

void Histogram::merge(const Histogram& other) {
  const std::size_t n = std::min(counts_.size(), other.counts_.size());
  for (std::size_t i = 0; i < n; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::SeriesKey MetricsRegistry::admit(std::string_view name,
                                                  std::string_view node,
                                                  std::string_view component) {
  SeriesKey key{std::string(name), std::string(node), std::string(component)};
  auto& seen = cardinality_[key.name];
  if (auto it = seen.find(key); it != seen.end()) return key;
  if (seen.size() >= label_cap_) {
    SeriesKey overflow{key.name, std::string(kOverflowLabel),
                       std::string(kOverflowLabel)};
    seen.emplace(overflow, 1);  // idempotent; overflow never counts again
    return overflow;
  }
  seen.emplace(key, 1);
  return key;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view node,
                                  std::string_view component) {
  SeriesKey key = admit(name, node, component);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view node,
                              std::string_view component) {
  SeriesKey key = admit(name, node, component);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds,
                                      std::string_view node,
                                      std::string_view component) {
  SeriesKey key = admit(name, node, component);
  auto& slot = histograms_[key];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        std::vector<double>(bounds.begin(), bounds.end()));
  }
  return *slot;
}

void MetricsRegistry::record_span(std::string_view name,
                                  std::string_view component,
                                  std::string_view node, TimePoint t_start,
                                  TimePoint t_end) {
  if (span_capacity_ == 0) {
    ++spans_recorded_;
    return;
  }
  SpanRecord rec{t_start, t_end, std::string(component), std::string(node),
                 std::string(name)};
  if (span_ring_.size() < span_capacity_) {
    span_ring_.push_back(std::move(rec));
  } else {
    span_ring_[span_head_] = std::move(rec);
    span_head_ = (span_head_ + 1) % span_capacity_;
  }
  ++spans_recorded_;
}

void MetricsRegistry::set_span_capacity(std::size_t capacity) {
  // Re-linearise oldest-first, then trim from the front.
  std::vector<SpanRecord> linear = spans();
  if (linear.size() > capacity) {
    linear.erase(linear.begin(),
                 linear.begin() + static_cast<std::ptrdiff_t>(linear.size() -
                                                             capacity));
  }
  span_ring_ = std::move(linear);
  span_capacity_ = capacity;
  span_head_ = 0;
  if (span_ring_.size() == span_capacity_ && span_capacity_ > 0) {
    span_head_ = 0;  // ring is exactly full; next write overwrites the oldest
  }
}

std::vector<SpanRecord> MetricsRegistry::spans() const {
  std::vector<SpanRecord> out;
  out.reserve(span_ring_.size());
  for (std::size_t i = 0; i < span_ring_.size(); ++i) {
    std::size_t idx = i;
    if (span_ring_.size() == span_capacity_) {
      idx = (span_head_ + i) % span_ring_.size();
    }
    out.push_back(span_ring_[idx]);
  }
  return out;
}

std::uint64_t MetricsRegistry::spans_dropped() const {
  return spans_recorded_ - span_ring_.size();
}

std::uint64_t MetricsRegistry::counter_total(std::string_view name) const {
  std::uint64_t total = 0;
  for (const auto& [key, counter] : counters_) {
    if (key.name == name) total += counter->value();
  }
  return total;
}

const Counter* MetricsRegistry::find_counter(std::string_view name,
                                             std::string_view node,
                                             std::string_view component) const {
  SeriesKey key{std::string(name), std::string(node), std::string(component)};
  auto it = counters_.find(key);
  return it == counters_.end() ? nullptr : it->second.get();
}

std::string MetricsRegistry::to_json(std::size_t merged_cells) const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": \"siphoc.metrics.v1\",\n  \"emitted_at_us\": ";
  out += std::to_string(now().time_since_epoch().count());
  if (merged_cells > 0) {
    out += ",\n  \"merged_cells\": " + std::to_string(merged_cells);
  }
  out += ",\n  \"counters\": [";
  bool first = true;
  for (const auto& [key, counter] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    append_json_escaped(out, key.name);
    out += ", \"node\": ";
    append_json_escaped(out, key.node);
    out += ", \"component\": ";
    append_json_escaped(out, key.component);
    out += ", \"value\": " + std::to_string(counter->value()) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  first = true;
  for (const auto& [key, gauge] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    append_json_escaped(out, key.name);
    out += ", \"node\": ";
    append_json_escaped(out, key.node);
    out += ", \"component\": ";
    append_json_escaped(out, key.component);
    out += ", \"value\": " + format_double(gauge->value()) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  first = true;
  for (const auto& [key, histogram] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    append_json_escaped(out, key.name);
    out += ", \"node\": ";
    append_json_escaped(out, key.node);
    out += ", \"component\": ";
    append_json_escaped(out, key.component);
    out += ", \"sum\": " + format_double(histogram->sum());
    out += ", \"count\": " + std::to_string(histogram->count());
    out += ", \"buckets\": [";
    const auto& bounds = histogram->bounds();
    const auto& counts = histogram->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i) out += ", ";
      out += "{\"le\": ";
      out += i < bounds.size() ? format_double(bounds[i]) : "\"+inf\"";
      out += ", \"count\": " + std::to_string(counts[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"spans\": [";
  first = true;
  for (const SpanRecord& s : spans()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    append_json_escaped(out, s.name);
    out += ", \"component\": ";
    append_json_escaped(out, s.component);
    out += ", \"node\": ";
    append_json_escaped(out, s.node);
    out += ", \"t_start_us\": " +
           std::to_string(s.t_start.time_since_epoch().count());
    out += ", \"t_end_us\": " +
           std::to_string(s.t_end.time_since_epoch().count()) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"spans_dropped\": " + std::to_string(spans_dropped());
  out += "\n}\n";
  return out;
}

std::string MetricsRegistry::to_csv() const {
  std::string out = "kind,name,node,component,key,value,value2\n";
  auto row = [&](std::string_view kind, const SeriesKey& key,
                 std::string_view field, const std::string& value,
                 const std::string& value2 = "") {
    out += std::string(kind) + "," + csv_field(key.name) + "," +
           csv_field(key.node) + "," + csv_field(key.component) + "," +
           std::string(field) + "," + value + "," + value2 + "\n";
  };
  for (const auto& [key, counter] : counters_) {
    row("counter", key, "value", std::to_string(counter->value()));
  }
  for (const auto& [key, gauge] : gauges_) {
    row("gauge", key, "value", format_double(gauge->value()));
  }
  for (const auto& [key, histogram] : histograms_) {
    row("histogram", key, "sum", format_double(histogram->sum()));
    row("histogram", key, "count", std::to_string(histogram->count()));
    const auto& bounds = histogram->bounds();
    const auto& counts = histogram->bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      row("histogram", key, "le",
          i < bounds.size() ? format_double(bounds[i]) : "+inf",
          std::to_string(counts[i]));
    }
  }
  for (const SpanRecord& s : spans()) {
    SeriesKey key{s.name, s.node, s.component};
    row("span", key, "span",
        std::to_string(s.t_start.time_since_epoch().count()),
        std::to_string(s.t_end.time_since_epoch().count()));
  }
  return out;
}

bool MetricsRegistry::write_file(const std::string& path,
                                 const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "metrics: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << contents;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "metrics: short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  cardinality_.clear();
  span_ring_.clear();
  span_head_ = 0;
  spans_recorded_ = 0;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [key, c] : other.counters_) {
    counter(key.name, key.node, key.component).add(c->value());
  }
  for (const auto& [key, g] : other.gauges_) {
    gauge(key.name, key.node, key.component).set(g->value());
  }
  for (const auto& [key, h] : other.histograms_) {
    histogram(key.name, h->bounds(), key.node, key.component).merge(*h);
  }
  // Spans append oldest-first through the ring, so capacity trimming drops
  // the globally oldest spans exactly as one accumulating registry would.
  for (const SpanRecord& s : other.spans()) {
    record_span(s.name, s.component, s.node, s.t_start, s.t_end);
  }
  // Ring-evicted spans of the source still count as recorded downstream.
  spans_recorded_ += other.spans_dropped();
}

}  // namespace siphoc
