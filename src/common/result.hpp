// Minimal expected/result type for recoverable errors.
//
// The protocol codecs (SIP grammar, SDP, routing packet formats) must not
// throw on malformed network input -- a peer sending garbage is a normal
// event, not an exceptional one. Result<T> makes the failure path explicit
// at every call site while keeping success access cheap.
//
// C++23 std::expected is not available on this toolchain (GCC 12 / C++20),
// so we carry a small local equivalent with the subset of the API we use.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace siphoc {

/// Error payload: a human-readable message plus an optional machine code.
struct Error {
  std::string message;
  int code = 0;

  static Error make(std::string msg, int code = 0) {
    return Error{std::move(msg), code};
  }
};

/// Result<T>: either a value of T or an Error. Modeled after std::expected.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Result(Error error) : data_(std::in_place_index<1>, std::move(error)) {}

  bool has_value() const { return data_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  T& value() & {
    assert(has_value());
    return std::get<0>(data_);
  }
  const T& value() const& {
    assert(has_value());
    return std::get<0>(data_);
  }
  T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(data_));
  }

  const Error& error() const {
    assert(!has_value());
    return std::get<1>(data_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return has_value() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result<void>: success or an Error.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}

  bool has_value() const { return !error_.has_value(); }
  explicit operator bool() const { return has_value(); }

  const Error& error() const {
    assert(!has_value());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

/// Convenience constructor mirroring std::unexpected.
inline Error fail(std::string message, int code = 0) {
  return Error::make(std::move(message), code);
}

}  // namespace siphoc
