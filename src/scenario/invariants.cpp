#include "scenario/invariants.hpp"

#include "common/metrics.hpp"

namespace siphoc::scenario {

std::string InvariantViolation::to_string() const {
  return "[" + format_time(when) + "] " + invariant + ": " + detail;
}

std::string InvariantReport::to_string() const {
  std::string out = "invariant checks: " + std::to_string(checks) +
                    ", violations: " + std::to_string(violations.size()) +
                    "\n";
  for (const auto& v : violations) {
    out += "  " + v.to_string() + "\n";
  }
  return out;
}

InvariantMonitor::InvariantMonitor(Testbed& bed, const FaultEngine* engine,
                                   InvariantConfig config)
    : bed_(bed), engine_(engine), config_(config) {}

InvariantMonitor::~InvariantMonitor() { stop(); }

void InvariantMonitor::start(Duration period) {
  stop();
  arm(period);
}

void InvariantMonitor::stop() { tick_.cancel(); }

void InvariantMonitor::arm(Duration period) {
  // Fixed-period self-rescheduling (PeriodicTimer draws RNG jitter; the
  // monitor must observe without perturbing the packet schedule).
  tick_ = bed_.sim().schedule(period, [this, period] {
    check();
    arm(period);
  });
}

void InvariantMonitor::check() {
  ++report_.checks;
  bed_.ctx()
      .metrics()
      .counter("invariants.checks_total", "testbed", "invariants")
      .add();
  check_calls_terminate();
  check_transactions_bounded();
  check_slp_purges();
  check_reattaches();
  check_p2p_resolves();
}

void InvariantMonitor::violate(const char* invariant, const std::string& key,
                               std::string detail) {
  if (!reported_.insert(std::string(invariant) + "/" + key).second) return;
  report_.violations.push_back(
      {invariant, std::move(detail), bed_.sim().now()});
  bed_.ctx()
      .metrics()
      .counter("invariants.violations_total", "testbed", "invariants")
      .add();
}

void InvariantMonitor::check_calls_terminate() {
  const TimePoint now = bed_.sim().now();
  for (std::size_t p = 0; p < bed_.phone_count(); ++p) {
    auto& ua = bed_.phone(p).user_agent();
    const Duration budget = ua.transactions().timers().timeout() +
                            config_.grace;
    for (const auto& call : ua.call_snapshots()) {
      const bool pending =
          call.state == sip::UserAgent::CallState::kInviting ||
          call.state == sip::UserAgent::CallState::kRinging;
      if (pending && now - call.started > budget) {
        violate("calls-terminate",
                ua.config().aor.aor() + "/" + std::to_string(call.id),
                ua.config().aor.aor() + " call " + std::to_string(call.id) +
                    " stuck for " + format_time(TimePoint{} +
                                                (now - call.started)));
      }
    }
  }
}

void InvariantMonitor::check_transactions_bounded() {
  const TimePoint now = bed_.sim().now();
  for (std::size_t p = 0; p < bed_.phone_count(); ++p) {
    const auto& txn = bed_.phone(p).user_agent().transactions();
    // Worst case before a transaction must terminate: the 64*T1 timeout,
    // plus the longest linger timer (Timer D for client INVITE; server side
    // lingers at most T4 more).
    const Duration budget = txn.timers().timeout() + txn.timers().timer_d() +
                            txn.timers().t4 + config_.grace;
    const Duration oldest = txn.oldest_transaction_age(now);
    if (oldest > budget) {
      violate("transactions-bounded",
              bed_.phone(p).user_agent().config().aor.aor(),
              bed_.phone(p).user_agent().config().aor.aor() +
                  " has a transaction alive for " +
                  format_time(TimePoint{} + oldest));
    }
  }
}

void InvariantMonitor::check_slp_purges() {
  const TimePoint now = bed_.sim().now();
  for (std::size_t i = 0; i < bed_.size(); ++i) {
    if (!bed_.node_alive(i)) continue;
    auto& slp = bed_.stack(i).slp();
    // Purging is traffic-driven (every lookup and every received SLP frame
    // purges first); the monitor acts as the next lookup, then asserts the
    // purge actually removed everything stale.
    slp.purge_expired();
    for (const auto& entry : slp.cache_contents()) {
      if (entry.expires <= now) {
        violate("slp-purges", bed_.host(i).name() + "/" + entry.key,
                bed_.host(i).name() + " still caches expired " +
                    entry.to_string());
      }
    }
  }
}

void InvariantMonitor::check_reattaches() {
  if (!engine_) return;
  const Duration interval =
      bed_.options().stack.connection.check_interval *
      static_cast<int>(config_.reattach_checks);
  if (!engine_->quiet_for(interval)) return;

  // A live gateway: a running stack on a host that still has its uplink.
  bool gateway_alive = false;
  for (std::size_t i = 0; i < bed_.size(); ++i) {
    if (bed_.node_alive(i) && bed_.host(i).has_wired()) gateway_alive = true;
  }
  if (!gateway_alive) return;

  for (std::size_t i = 0; i < bed_.size(); ++i) {
    if (!bed_.node_alive(i) || bed_.host(i).has_wired()) continue;
    auto* provider = bed_.stack(i).connection_provider();
    if (!provider) continue;
    if (!provider->internet_available()) {
      violate("reattaches", bed_.host(i).name(),
              bed_.host(i).name() +
                  " is offline despite a live gateway and " +
                  format_time(TimePoint{} + interval) + " of quiet air");
    }
  }
}

void InvariantMonitor::check_p2p_resolves() {
  if (!engine_ || !engine_->quiet_for(config_.p2p_quiet)) return;

  for (const auto& domain : bed_.p2p_domains()) {
    // Live ring members; stabilization has had its quiet window, so every
    // survivor's view must agree and every binding must sit (at least) on
    // the member now responsible for its key.
    std::vector<sip::P2pResolver*> live;
    for (auto* member : bed_.p2p_ring(domain)) {
      if (member != nullptr) live.push_back(member);
    }
    if (live.empty()) continue;

    for (std::size_t p = 0; p < bed_.phone_count(); ++p) {
      auto& phone = bed_.phone(p);
      if (!phone.registered()) continue;
      const auto& aor_uri = phone.user_agent().config().aor;
      if (aor_uri.host != domain) continue;
      const std::string aor = aor_uri.aor();

      // The responsible member: the live node whose id is the key's
      // clockwise successor (same arithmetic the resolvers route by).
      const std::uint64_t key = sip::P2pResolver::key_of(aor);
      sip::P2pResolver* owner = live.front();
      std::uint64_t best = owner->node_id() - key;
      for (auto* member : live) {
        const std::uint64_t d = member->node_id() - key;
        if (d < best) {
          best = d;
          owner = member;
        }
      }

      const auto binding = owner->stored(aor);
      if (!binding) {
        violate("p2p-resolves", aor,
                aor + " is registered but its responsible ring node holds "
                      "no binding after stabilization quiesced");
        continue;
      }
      // "No call routes to a dead contact": the stored contact must be an
      // address the Internet can actually deliver to right now.
      const auto contact_ep = binding->contact.numeric_endpoint();
      if (!contact_ep || !bed_.internet().attached(contact_ep->address)) {
        violate("p2p-resolves", aor + "/contact",
                aor + " resolves to unroutable contact " +
                    binding->contact.to_string());
      }
    }
  }
}

}  // namespace siphoc::scenario
