// Chaos engine: deterministic stack-wide fault injection.
//
// A FaultPlan is a declarative timeline of fault events -- node crashes and
// restarts, gateway kills, link partitions, loss/corruption/duplication/
// reordering epochs, radio jamming -- either parsed from a small text format
// or generated from a seed (splitmix64 derivation, so `--chaos seed=N` is
// byte-reproducible). The FaultEngine schedules a plan against a running
// Testbed and exposes the state the invariant monitor needs to know when it
// is fair to demand recovery (docs/RESILIENCE.md documents the model).
//
// Everything here runs in virtual time and draws nothing from the
// simulation RNG: generating or applying a plan never perturbs the packet
// schedule of the workload it torments.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "scenario/scenario.hpp"

namespace siphoc::scenario {

/// One scheduled fault action, `at` relative to when the plan is applied.
struct FaultEvent {
  enum class Kind {
    kCrash,        // destroy the nodes' middleware stacks (Testbed::crash_node)
    kRestart,      // respawn crashed stacks cold
    kKillGateway,  // rip the wired uplink off the nodes
    kPartition,    // forbid radio links between `nodes` and `nodes_b`
    kHeal,         // drop the partition
    kLoss,         // injected loss ramps p0 -> p1 over `ramp`, holds p1
    kCorrupt,      // per-receiver bit-corruption probability = p1
    kDuplicate,    // per-receiver duplication probability = p1
    kReorder,      // per-receiver reorder probability = p1, max delay `ramp`
    kJam,          // radio blackout for `nodes` (stack keeps running)
    kUnjam,
    kRingCrash,    // kill P2P ring members (Testbed::crash_ring_node; the
                   // index is a *ring* index >= 1, applied to every kP2p
                   // domain the testbed serves)
    kRingRestart,  // rejoin crashed ring members through the front door
  };

  Duration at{};
  Kind kind = Kind::kHeal;
  std::vector<std::size_t> nodes;    // targets (empty for medium-wide knobs)
  std::vector<std::size_t> nodes_b;  // partition side B
  double p0 = 0.0;
  double p1 = 0.0;
  Duration ramp{};  // loss ramp length / max reorder delay

  std::string to_string() const;
};

/// A timeline of fault events, sorted by time.
struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Parses the text format (one event per line, '#' comments):
  ///
  ///   at 5s crash 2
  ///   at 12s restart 2
  ///   at 3s partition 0,1 | 2,3
  ///   at 20s heal
  ///   at 8s loss 0 0.4 5s        # ramp 0 -> 40% over 5 s, then hold
  ///   at 30s loss 0 0 0s         # back to clean air
  ///   at 10s corrupt 0.05
  ///   at 10s duplicate 0.02
  ///   at 10s reorder 0.1 25ms
  ///   at 15s jam 1,2
  ///   at 18s unjam 1,2
  ///   at 40s kill-gateway 0
  ///   at 20s ring-crash 2        # P2P ring member (ring index, not node)
  ///   at 35s ring-restart 2
  ///
  /// Durations accept s/ms/us suffixes; a bare number means seconds.
  static Result<FaultPlan> parse(const std::string& text);

  /// Deterministic schedule derived from a seed (splitmix64 sub-streams,
  /// never the simulation RNG). Always contains at least one corruption
  /// epoch and one loss ramp; crashes only hit nodes outside
  /// `protected_nodes` and are always paired with a restart, partitions
  /// with a heal, so the network ends the plan whole. With `ring_nodes`
  /// > 0 (count of *dedicated* P2P ring members, front door excluded) the
  /// plan additionally crashes and restarts one ring member -- drawn after
  /// everything else so plans without ring nodes stay byte-identical to
  /// earlier releases.
  static FaultPlan generate(std::uint64_t seed, Duration duration,
                            std::size_t nodes,
                            const std::vector<std::size_t>& protected_nodes = {},
                            std::size_t ring_nodes = 0);

  /// Canonical text form; parse(to_string()) reproduces the plan.
  std::string to_string() const;
};

/// Applies fault plans to a running Testbed and tracks fault state.
///
/// The engine owns the medium's single link-filter slot for the lifetime of
/// the engine (partitions are implemented through it); scenarios that
/// install their own filter must not use partitions through this engine.
class FaultEngine {
 public:
  explicit FaultEngine(Testbed& bed);
  ~FaultEngine();

  FaultEngine(const FaultEngine&) = delete;
  FaultEngine& operator=(const FaultEngine&) = delete;

  /// Schedules every event of the plan relative to the current virtual time.
  void apply(const FaultPlan& plan);

  // --- manual fault API (immediate; what plan events call internally) -----
  void crash(std::size_t node);
  void restart(std::size_t node);
  void kill_gateway(std::size_t node);
  void partition(std::vector<std::size_t> a, std::vector<std::size_t> b);
  void heal();
  void jam(std::size_t node);
  void unjam(std::size_t node);
  /// Ring faults hit P2P ring member `index` (>= 1) of *every* kP2p
  /// domain the testbed serves.
  void ring_crash(std::size_t index);
  void ring_restart(std::size_t index);
  /// Loss epoch: injected loss ramps from p0 now to p1 at now+ramp, then
  /// holds p1 until the next call. set_loss(0, 0, {}) clears.
  void set_loss(double p0, double p1, Duration ramp);
  void set_corrupt(double p);
  void set_duplicate(double p);
  void set_reorder(double p, Duration max_delay);

  // --- state (consumed by the invariant monitor) --------------------------
  bool partition_active() const { return partition_active_; }
  /// Any fault currently in force: live partition, jammed or dead node,
  /// non-zero injected loss/corruption/duplication/reordering.
  bool faults_active() const;
  /// Virtual time of the most recent fault action (including recoveries --
  /// a restart is also something the network must settle from).
  TimePoint last_disruption() const { return last_disruption_; }
  /// True when no fault is active and none has fired for `window`.
  bool quiet_for(Duration window) const;

  /// Virtual-time narration of every applied action ("[12.000000s] crash
  /// n2"), reproducible byte for byte under a fixed seed.
  const std::vector<std::string>& narration() const { return log_; }

 private:
  void run(const FaultEvent& event);
  void note(const std::string& what);

  Testbed& bed_;
  std::vector<sim::EventHandle> scheduled_;
  std::vector<std::string> log_;
  std::vector<int> side_;  // partition side per node (0 = unassigned)
  bool partition_active_ = false;
  std::vector<std::size_t> jammed_;
  TimePoint last_disruption_{};
};

}  // namespace siphoc::scenario
