#include "scenario/faults.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/context.hpp"
#include "common/random.hpp"

namespace siphoc::scenario {

namespace {

std::string duration_str(Duration d) {
  const auto us = d.count();
  if (us % 1'000'000 == 0) return std::to_string(us / 1'000'000) + "s";
  if (us % 1'000 == 0) return std::to_string(us / 1'000) + "ms";
  return std::to_string(us) + "us";
}

std::string prob_str(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", p);
  return buf;
}

std::string node_list_str(const std::vector<std::size_t>& nodes) {
  std::string out;
  for (std::size_t n : nodes) {
    if (!out.empty()) out += ",";
    out += std::to_string(n);
  }
  return out;
}

std::optional<Duration> parse_duration_token(const std::string& token) {
  if (token.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || value < 0) return std::nullopt;
  const std::string suffix(end);
  double scale_us = 1e6;  // bare number = seconds
  if (suffix == "s" || suffix.empty()) {
    scale_us = 1e6;
  } else if (suffix == "ms") {
    scale_us = 1e3;
  } else if (suffix == "us") {
    scale_us = 1;
  } else {
    return std::nullopt;
  }
  return microseconds(static_cast<std::int64_t>(value * scale_us + 0.5));
}

std::optional<double> parse_prob_token(const std::string& token) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') return std::nullopt;
  if (value < 0.0 || value > 1.0) return std::nullopt;
  return value;
}

std::optional<std::vector<std::size_t>> parse_node_list(
    const std::string& token) {
  std::vector<std::size_t> nodes;
  std::stringstream ss(token);
  std::string part;
  while (std::getline(ss, part, ',')) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(part.c_str(), &end, 10);
    if (end == part.c_str() || *end != '\0') return std::nullopt;
    nodes.push_back(static_cast<std::size_t>(value));
  }
  if (nodes.empty()) return std::nullopt;
  return nodes;
}

/// Quantizes a generated probability to 3 decimals so the canonical text
/// form round-trips exactly.
double quantize(double p) { return std::round(p * 1000.0) / 1000.0; }

Duration quantize_ms(double seconds_value) {
  return milliseconds(static_cast<std::int64_t>(seconds_value * 1000.0 + 0.5));
}

}  // namespace

// ===========================================================================
// FaultEvent / FaultPlan
// ===========================================================================

std::string FaultEvent::to_string() const {
  std::string out = "at " + duration_str(at) + " ";
  switch (kind) {
    case Kind::kCrash:
      out += "crash " + node_list_str(nodes);
      break;
    case Kind::kRestart:
      out += "restart " + node_list_str(nodes);
      break;
    case Kind::kKillGateway:
      out += "kill-gateway " + node_list_str(nodes);
      break;
    case Kind::kPartition:
      out += "partition " + node_list_str(nodes) + " | " +
             node_list_str(nodes_b);
      break;
    case Kind::kHeal:
      out += "heal";
      break;
    case Kind::kLoss:
      out += "loss " + prob_str(p0) + " " + prob_str(p1) + " " +
             duration_str(ramp);
      break;
    case Kind::kCorrupt:
      out += "corrupt " + prob_str(p1);
      break;
    case Kind::kDuplicate:
      out += "duplicate " + prob_str(p1);
      break;
    case Kind::kReorder:
      out += "reorder " + prob_str(p1) + " " + duration_str(ramp);
      break;
    case Kind::kJam:
      out += "jam " + node_list_str(nodes);
      break;
    case Kind::kUnjam:
      out += "unjam " + node_list_str(nodes);
      break;
    case Kind::kRingCrash:
      out += "ring-crash " + node_list_str(nodes);
      break;
    case Kind::kRingRestart:
      out += "ring-restart " + node_list_str(nodes);
      break;
  }
  return out;
}

Result<FaultPlan> FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::stringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::stringstream ss(line);
    std::vector<std::string> tokens;
    std::string token;
    while (ss >> token) tokens.push_back(token);
    if (tokens.empty()) continue;

    const auto error = [&](const std::string& what) {
      return fail("faults line " + std::to_string(line_no) + ": " + what);
    };
    if (tokens[0] != "at" || tokens.size() < 3) {
      return error("expected 'at <time> <command> ...'");
    }
    FaultEvent event;
    const auto at = parse_duration_token(tokens[1]);
    if (!at) return error("bad time '" + tokens[1] + "'");
    event.at = *at;

    const std::string& cmd = tokens[2];
    const auto need = [&](std::size_t count) {
      return tokens.size() == 3 + count;
    };
    const auto nodes_arg = [&](std::size_t index)
        -> std::optional<std::vector<std::size_t>> {
      if (tokens.size() <= 3 + index) return std::nullopt;
      return parse_node_list(tokens[3 + index]);
    };

    if (cmd == "crash" || cmd == "restart" || cmd == "kill-gateway" ||
        cmd == "jam" || cmd == "unjam" || cmd == "ring-crash" ||
        cmd == "ring-restart") {
      if (!need(1)) return error(cmd + " takes one node list");
      const auto nodes = nodes_arg(0);
      if (!nodes) return error("bad node list");
      event.nodes = *nodes;
      event.kind = cmd == "crash"          ? FaultEvent::Kind::kCrash
                   : cmd == "restart"      ? FaultEvent::Kind::kRestart
                   : cmd == "kill-gateway" ? FaultEvent::Kind::kKillGateway
                   : cmd == "jam"          ? FaultEvent::Kind::kJam
                   : cmd == "unjam"        ? FaultEvent::Kind::kUnjam
                   : cmd == "ring-crash"   ? FaultEvent::Kind::kRingCrash
                                           : FaultEvent::Kind::kRingRestart;
    } else if (cmd == "partition") {
      if (!need(3) || tokens[4] != "|") {
        return error("expected 'partition <list> | <list>'");
      }
      const auto a = parse_node_list(tokens[3]);
      const auto b = parse_node_list(tokens[5]);
      if (!a || !b) return error("bad node list");
      event.kind = FaultEvent::Kind::kPartition;
      event.nodes = *a;
      event.nodes_b = *b;
    } else if (cmd == "heal") {
      if (!need(0)) return error("heal takes no arguments");
      event.kind = FaultEvent::Kind::kHeal;
    } else if (cmd == "loss") {
      if (!need(3)) return error("expected 'loss <p0> <p1> <ramp>'");
      const auto p0 = parse_prob_token(tokens[3]);
      const auto p1 = parse_prob_token(tokens[4]);
      const auto ramp = parse_duration_token(tokens[5]);
      if (!p0 || !p1 || !ramp) return error("bad loss parameters");
      event.kind = FaultEvent::Kind::kLoss;
      event.p0 = *p0;
      event.p1 = *p1;
      event.ramp = *ramp;
    } else if (cmd == "corrupt" || cmd == "duplicate") {
      if (!need(1)) return error(cmd + " takes one probability");
      const auto p = parse_prob_token(tokens[3]);
      if (!p) return error("bad probability '" + tokens[3] + "'");
      event.kind = cmd == "corrupt" ? FaultEvent::Kind::kCorrupt
                                    : FaultEvent::Kind::kDuplicate;
      event.p1 = *p;
    } else if (cmd == "reorder") {
      if (!need(2)) return error("expected 'reorder <p> <max-delay>'");
      const auto p = parse_prob_token(tokens[3]);
      const auto delay = parse_duration_token(tokens[4]);
      if (!p || !delay) return error("bad reorder parameters");
      event.kind = FaultEvent::Kind::kReorder;
      event.p1 = *p;
      event.ramp = *delay;
    } else {
      return error("unknown command '" + cmd + "'");
    }
    plan.events.push_back(std::move(event));
  }
  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

FaultPlan FaultPlan::generate(
    std::uint64_t seed, Duration duration, std::size_t nodes,
    const std::vector<std::size_t>& protected_nodes,
    std::size_t ring_nodes) {
  // Never the simulation RNG: the plan generator has its own splitmix64-
  // derived stream, so a chaos run's *workload* packet schedule matches a
  // faultless run of the same seed up to the first injected fault.
  Rng rng(SimContext::derive_seed(seed, 0xfa017));
  FaultPlan plan;
  const double total = to_seconds(duration);
  const auto at = [&](double lo_frac, double hi_frac) {
    return quantize_ms(total * rng.uniform(lo_frac, hi_frac));
  };

  std::vector<std::size_t> expendable;
  for (std::size_t i = 0; i < nodes; ++i) {
    if (std::find(protected_nodes.begin(), protected_nodes.end(), i) ==
        protected_nodes.end()) {
      expendable.push_back(i);
    }
  }

  // Always at least one corruption epoch (the codec-hardening soak needs
  // corrupted frames on the air) ...
  {
    const Duration start = at(0.05, 0.30);
    const Duration stop = start + at(0.20, 0.35);
    const double p = quantize(rng.uniform(0.02, 0.10));
    plan.events.push_back({start, FaultEvent::Kind::kCorrupt, {}, {}, 0, p});
    plan.events.push_back(
        {std::min(stop, quantize_ms(total * 0.9)),
         FaultEvent::Kind::kCorrupt, {}, {}, 0, 0.0});
  }
  // ... and one loss ramp.
  {
    const Duration start = at(0.20, 0.50);
    const Duration ramp = at(0.08, 0.18);
    const Duration stop = start + ramp + at(0.05, 0.15);
    const double p1 = quantize(rng.uniform(0.15, 0.45));
    plan.events.push_back(
        {start, FaultEvent::Kind::kLoss, {}, {}, 0.0, p1, ramp});
    plan.events.push_back({std::min(stop, quantize_ms(total * 0.92)),
                           FaultEvent::Kind::kLoss, {}, {}, 0.0, 0.0,
                           Duration{}});
  }

  // Crash/restart pairs on expendable nodes only, always recovered.
  if (!expendable.empty()) {
    const std::size_t crashes =
        1 + (expendable.size() > 1 && rng.chance(0.5) ? 1 : 0);
    std::vector<std::size_t> pool = expendable;
    for (std::size_t c = 0; c < crashes && !pool.empty(); ++c) {
      const auto pick = rng.uniform_int(
          0, static_cast<std::uint32_t>(pool.size() - 1));
      const std::size_t victim = pool[pick];
      pool.erase(pool.begin() + pick);
      const Duration down_at = at(0.15, 0.55);
      const Duration up_at =
          std::min(down_at + at(0.08, 0.20), quantize_ms(total * 0.88));
      plan.events.push_back(
          {down_at, FaultEvent::Kind::kCrash, {victim}, {}});
      plan.events.push_back(
          {up_at, FaultEvent::Kind::kRestart, {victim}, {}});
    }
  }

  // Contiguous partition (meaningful on the chain/grid topologies the soak
  // uses), always healed.
  if (nodes >= 4 && rng.chance(0.7)) {
    const std::size_t cut =
        1 + rng.uniform_int(0, static_cast<std::uint32_t>(nodes - 3));
    std::vector<std::size_t> a, b;
    for (std::size_t i = 0; i < nodes; ++i) {
      (i <= cut ? a : b).push_back(i);
    }
    const Duration start = at(0.10, 0.45);
    const Duration stop =
        std::min(start + at(0.08, 0.20), quantize_ms(total * 0.85));
    plan.events.push_back(
        {start, FaultEvent::Kind::kPartition, std::move(a), std::move(b)});
    plan.events.push_back({stop, FaultEvent::Kind::kHeal, {}, {}});
  }

  // Optional seasoning: a jam window, duplication and reordering epochs.
  if (!expendable.empty() && rng.chance(0.5)) {
    const std::size_t victim = expendable[rng.uniform_int(
        0, static_cast<std::uint32_t>(expendable.size() - 1))];
    const Duration start = at(0.10, 0.60);
    const Duration stop =
        std::min(start + at(0.05, 0.15), quantize_ms(total * 0.9));
    plan.events.push_back({start, FaultEvent::Kind::kJam, {victim}, {}});
    plan.events.push_back({stop, FaultEvent::Kind::kUnjam, {victim}, {}});
  }
  if (rng.chance(0.5)) {
    const double p = quantize(rng.uniform(0.01, 0.05));
    plan.events.push_back(
        {at(0.10, 0.50), FaultEvent::Kind::kDuplicate, {}, {}, 0, p});
    plan.events.push_back({quantize_ms(total * 0.9),
                           FaultEvent::Kind::kDuplicate, {}, {}, 0, 0.0});
  }
  if (rng.chance(0.5)) {
    const double p = quantize(rng.uniform(0.05, 0.20));
    const Duration delay = milliseconds(rng.uniform_int(5, 40));
    plan.events.push_back(
        {at(0.10, 0.50), FaultEvent::Kind::kReorder, {}, {}, 0, p, delay});
    plan.events.push_back({quantize_ms(total * 0.9),
                           FaultEvent::Kind::kReorder, {}, {}, 0, 0.0,
                           delay});
  }

  // Ring churn last (P2P provider soaks): crash one dedicated ring member
  // mid-run and bring it back early enough for stabilization plus the
  // runtime rejoin to quiesce before the quiet tail. Drawing these after
  // every other stream keeps ring-less plans byte-identical.
  if (ring_nodes > 0) {
    const std::size_t victim =
        1 + rng.uniform_int(0, static_cast<std::uint32_t>(ring_nodes - 1));
    const Duration down_at = at(0.15, 0.50);
    const Duration up_at =
        std::min(down_at + at(0.10, 0.25), quantize_ms(total * 0.8));
    plan.events.push_back(
        {down_at, FaultEvent::Kind::kRingCrash, {victim}, {}});
    plan.events.push_back(
        {up_at, FaultEvent::Kind::kRingRestart, {victim}, {}});
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& event : events) {
    out += event.to_string();
    out += "\n";
  }
  return out;
}

// ===========================================================================
// FaultEngine
// ===========================================================================

FaultEngine::FaultEngine(Testbed& bed) : bed_(bed), side_(bed.size(), 0) {
  // Claim the medium's (single) link-filter slot for partitions.
  bed_.medium().set_link_filter([this](net::NodeId a, net::NodeId b) {
    if (!partition_active_) return true;
    if (a >= side_.size() || b >= side_.size()) return true;
    const int sa = side_[a];
    const int sb = side_[b];
    return sa == 0 || sb == 0 || sa == sb;
  });
}

FaultEngine::~FaultEngine() {
  for (auto& handle : scheduled_) handle.cancel();
  bed_.medium().set_link_filter(nullptr);
}

void FaultEngine::apply(const FaultPlan& plan) {
  for (const auto& event : plan.events) {
    scheduled_.push_back(
        bed_.sim().schedule(event.at, [this, event] { run(event); }));
  }
}

void FaultEngine::run(const FaultEvent& event) {
  using Kind = FaultEvent::Kind;
  switch (event.kind) {
    case Kind::kCrash:
      for (std::size_t n : event.nodes) crash(n);
      break;
    case Kind::kRestart:
      for (std::size_t n : event.nodes) restart(n);
      break;
    case Kind::kKillGateway:
      for (std::size_t n : event.nodes) kill_gateway(n);
      break;
    case Kind::kPartition:
      partition(event.nodes, event.nodes_b);
      break;
    case Kind::kHeal:
      heal();
      break;
    case Kind::kLoss:
      set_loss(event.p0, event.p1, event.ramp);
      break;
    case Kind::kCorrupt:
      set_corrupt(event.p1);
      break;
    case Kind::kDuplicate:
      set_duplicate(event.p1);
      break;
    case Kind::kReorder:
      set_reorder(event.p1, event.ramp);
      break;
    case Kind::kJam:
      for (std::size_t n : event.nodes) jam(n);
      break;
    case Kind::kUnjam:
      for (std::size_t n : event.nodes) unjam(n);
      break;
    case Kind::kRingCrash:
      for (std::size_t n : event.nodes) ring_crash(n);
      break;
    case Kind::kRingRestart:
      for (std::size_t n : event.nodes) ring_restart(n);
      break;
  }
}

void FaultEngine::crash(std::size_t node) {
  if (node >= bed_.size() || !bed_.node_alive(node)) return;
  bed_.crash_node(node);
  note("crash n" + std::to_string(node));
}

void FaultEngine::restart(std::size_t node) {
  if (node >= bed_.size() || bed_.node_alive(node)) return;
  bed_.restart_node(node);
  note("restart n" + std::to_string(node));
}

void FaultEngine::kill_gateway(std::size_t node) {
  if (node >= bed_.size() || !bed_.host(node).has_wired()) return;
  bed_.kill_gateway(node);
  note("kill-gateway n" + std::to_string(node));
}

void FaultEngine::partition(std::vector<std::size_t> a,
                            std::vector<std::size_t> b) {
  std::fill(side_.begin(), side_.end(), 0);
  for (std::size_t n : a) {
    if (n < side_.size()) side_[n] = 1;
  }
  for (std::size_t n : b) {
    if (n < side_.size()) side_[n] = 2;
  }
  partition_active_ = true;
  note("partition " + node_list_str(a) + " | " + node_list_str(b));
}

void FaultEngine::heal() {
  if (!partition_active_) return;
  partition_active_ = false;
  std::fill(side_.begin(), side_.end(), 0);
  note("heal");
}

void FaultEngine::jam(std::size_t node) {
  if (node >= bed_.size() || bed_.medium().jammed(
                                 static_cast<net::NodeId>(node))) {
    return;
  }
  bed_.medium().set_jammed(static_cast<net::NodeId>(node), true);
  jammed_.push_back(node);
  note("jam n" + std::to_string(node));
}

void FaultEngine::unjam(std::size_t node) {
  if (node >= bed_.size() ||
      !bed_.medium().jammed(static_cast<net::NodeId>(node))) {
    return;
  }
  bed_.medium().set_jammed(static_cast<net::NodeId>(node), false);
  std::erase(jammed_, node);
  note("unjam n" + std::to_string(node));
}

void FaultEngine::ring_crash(std::size_t index) {
  bool any = false;
  for (const auto& domain : bed_.p2p_domains()) {
    if (!bed_.ring_node_alive(domain, index)) continue;
    bed_.crash_ring_node(domain, index);
    any = true;
  }
  if (any) note("ring-crash r" + std::to_string(index));
}

void FaultEngine::ring_restart(std::size_t index) {
  bool any = false;
  for (const auto& domain : bed_.p2p_domains()) {
    const auto ring = bed_.p2p_ring(domain);
    if (index == 0 || index >= ring.size() ||
        bed_.ring_node_alive(domain, index)) {
      continue;
    }
    bed_.restart_ring_node(domain, index);
    any = true;
  }
  if (any) note("ring-restart r" + std::to_string(index));
}

void FaultEngine::set_loss(double p0, double p1, Duration ramp) {
  if (p0 <= 0.0 && p1 <= 0.0) {
    bed_.medium().clear_loss_ramp();
    note("loss cleared");
    return;
  }
  const TimePoint now = bed_.sim().now();
  const Duration span = std::max(ramp, Duration(microseconds(1)));
  bed_.medium().set_loss_ramp(now, p0, now + span, p1);
  note("loss " + prob_str(p0) + " -> " + prob_str(p1) + " over " +
       duration_str(ramp));
}

void FaultEngine::set_corrupt(double p) {
  auto knobs = bed_.medium().fault_knobs();
  knobs.corrupt_probability = p;
  bed_.medium().set_fault_knobs(knobs);
  note("corrupt " + prob_str(p));
}

void FaultEngine::set_duplicate(double p) {
  auto knobs = bed_.medium().fault_knobs();
  knobs.duplicate_probability = p;
  bed_.medium().set_fault_knobs(knobs);
  note("duplicate " + prob_str(p));
}

void FaultEngine::set_reorder(double p, Duration max_delay) {
  auto knobs = bed_.medium().fault_knobs();
  knobs.reorder_probability = p;
  if (max_delay > Duration::zero()) knobs.reorder_delay = max_delay;
  bed_.medium().set_fault_knobs(knobs);
  note("reorder " + prob_str(p) + " <= " + duration_str(max_delay));
}

bool FaultEngine::faults_active() const {
  if (partition_active_ || !jammed_.empty()) return true;
  for (std::size_t i = 0; i < bed_.size(); ++i) {
    if (!bed_.node_alive(i)) return true;
  }
  for (const auto& domain : bed_.p2p_domains()) {
    const auto ring = bed_.p2p_ring(domain);
    for (std::size_t i = 1; i < ring.size(); ++i) {
      if (ring[i] == nullptr) return true;  // ring member still down
    }
  }
  const auto& knobs = bed_.medium().fault_knobs();
  if (knobs.corrupt_probability > 0 || knobs.duplicate_probability > 0 ||
      knobs.reorder_probability > 0 || knobs.extra_loss > 0) {
    return true;
  }
  return bed_.medium().fault_loss_probability(bed_.sim().now()) > 0;
}

bool FaultEngine::quiet_for(Duration window) const {
  if (faults_active()) return false;
  return bed_.sim().now() - last_disruption_ >= window;
}

void FaultEngine::note(const std::string& what) {
  last_disruption_ = bed_.sim().now();
  log_.push_back("[" + format_time(last_disruption_) + "] " + what);
}

}  // namespace siphoc::scenario
