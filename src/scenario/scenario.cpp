#include "scenario/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace siphoc::scenario {

NodeStackConfig Testbed::node_stack_config() const {
  NodeStackConfig config = options_.stack;
  config.routing = options_.routing;
  config.olsr.route_hub = route_hub_.get();
  return config;
}

std::uint32_t Testbed::lane_of_phone(const voip::SoftPhone& phone) const {
  for (std::size_t k = 0; k < phones_.size(); ++k) {
    if (phones_[k].get() == &phone) return node_lane(phone_nodes_[k]);
  }
  return 0;
}

Testbed::Testbed(Options options) : options_(std::move(options)) {
  sim_ = std::make_unique<sim::Simulator>(options_.seed, options_.context);
  // Bind for the rest of construction: component constructors register
  // metrics/loggers and must land in this testbed's context.
  SimContext::Bind bind(sim_->ctx());

  if (options_.sim_regions > 0) {
    sim::Simulator::ShardConfig shard;
    shard.regions = static_cast<std::uint32_t>(std::min<std::size_t>(
        options_.sim_regions, std::max<std::size_t>(options_.nodes, 1)));
    shard.lookahead = options_.radio.mac_latency;
    shard.threads = options_.sim_threads;
    sim_->enable_parallelism(shard);
    // Cross-lane hops must cover at least one lookahead window; the radio
    // guarantees this by construction (MAC latency), the wired backbone
    // must be configured to.
    assert(!sim_->sharded() ||
           options_.internet_latency >= options_.radio.mac_latency);
    if (!sim_->sharded()) {
      route_hub_ = std::make_unique<routing::ParallelRouteHub>(*sim_);
    }
  }

  medium_ = std::make_unique<net::RadioMedium>(*sim_, options_.radio);
  internet_ =
      std::make_unique<net::Internet>(*sim_, options_.internet_latency);

  std::vector<net::Position> positions;
  switch (options_.topology) {
    case Topology::kChain:
      positions = net::chain_positions(options_.nodes, options_.spacing);
      break;
    case Topology::kGrid:
      positions = net::grid_positions(options_.nodes, options_.spacing);
      break;
    case Topology::kRandomArea: {
      Rng placement(options_.seed ^ 0x9e3779b97f4a7c15ull);
      for (std::size_t i = 0; i < options_.nodes; ++i) {
        positions.push_back({placement.uniform(0, options_.area),
                             placement.uniform(0, options_.area)});
      }
      break;
    }
  }

  if (sim_->sharded()) {
    // Contiguous spatial strips: order nodes by (x, y, index), slice into
    // equal-size runs, one region lane per slice. A node's *initial*
    // position fixes its home lane for the whole run (mobile nodes keep
    // their lane; the barrier position snapshot keeps deliveries exact as
    // they roam). The assignment depends only on scenario content, so it
    // is identical for every thread count.
    const std::uint32_t regions = sim_->lane_count() - 1;
    std::vector<std::size_t> order(options_.nodes);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const net::Position& pa = positions[a];
      const net::Position& pb = positions[b];
      if (pa.x != pb.x) return pa.x < pb.x;
      if (pa.y != pb.y) return pa.y < pb.y;
      return a < b;
    });
    node_lanes_.assign(options_.nodes, 0);
    for (std::size_t rank = 0; rank < order.size(); ++rank) {
      node_lanes_[order[rank]] = 1 + static_cast<std::uint32_t>(
                                         rank * regions / order.size());
    }
    medium_->configure_lanes([this](net::NodeId mac) {
      // MANET radios use the node index as MAC; anything else (Internet
      // hosts) belongs to the scenario lane.
      return mac < node_lanes_.size() ? node_lanes_[mac] : 0u;
    });
  }

  for (std::size_t i = 0; i < options_.nodes; ++i) {
    // Each node is built on its home lane: its host RNG forks from the
    // lane stream, its timers/events queue on the lane, its instruments
    // register in the lane's metrics registry.
    sim::Simulator::LaneScope lane_scope(*sim_, node_lane(i));
    SimContext::Bind lane_bind(sim_->ctx());
    auto host = std::make_unique<net::Host>(
        *sim_, static_cast<net::NodeId>(i), "n" + std::to_string(i));
    std::shared_ptr<net::MobilityModel> mobility;
    if (options_.mobile) {
      mobility = std::make_shared<net::RandomWaypointMobility>(
          positions[i], options_.waypoint, sim_->rng().fork());
    } else {
      mobility = std::make_shared<net::StaticMobility>(positions[i]);
    }
    host->attach_radio(*medium_, manet_address(i), std::move(mobility));

    stacks_.push_back(std::make_unique<NodeStack>(*host, internet_.get(),
                                                  node_stack_config()));
    hosts_.push_back(std::move(host));
  }
}

Testbed::~Testbed() {
  SimContext::Bind bind(sim_->ctx());
  // Stop middleware before hosts/medium go away (crashed slots are null).
  for (auto& stack : stacks_) {
    if (stack) stack->stop();
  }
  // Backstop for callers that read the main registry after the testbed is
  // gone; a no-op when finalize_metrics() already ran.
  sim_->merge_lane_metrics();
}

void Testbed::start() {
  if (started_) return;
  started_ = true;
  SimContext::Bind bind(sim_->ctx());
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    if (!stacks_[i]) continue;
    sim::Simulator::LaneScope lane_scope(*sim_, node_lane(i));
    SimContext::Bind lane_bind(sim_->ctx());
    stacks_[i]->start();
  }
}

voip::SoftPhone& Testbed::add_phone(std::size_t node,
                                    const std::string& username,
                                    const std::string& domain) {
  voip::SoftPhoneConfig config;
  config.username = username;
  config.domain = domain;
  return add_phone(node, std::move(config));
}

voip::SoftPhone& Testbed::add_phone(std::size_t node,
                                    voip::SoftPhoneConfig config) {
  sim::Simulator::LaneScope lane_scope(*sim_, node_lane(node));
  SimContext::Bind bind(sim_->ctx());
  phones_.push_back(
      std::make_unique<voip::SoftPhone>(host(node), std::move(config)));
  phone_nodes_.push_back(node);
  return *phones_.back();
}

void Testbed::crash_node(std::size_t i) {
  if (!node_alive(i)) return;
  sim::Simulator::LaneScope lane_scope(*sim_, node_lane(i));
  SimContext::Bind bind(sim_->ctx());
  // Radio off before teardown: the dying stack's parting messages (tunnel
  // Disconnects, routing errors) must vanish, like a battery being pulled.
  medium_->set_enabled(static_cast<net::NodeId>(i), false);
  for (std::size_t k = 0; k < phones_.size(); ++k) {
    if (phone_nodes_[k] == i) phones_[k]->power_off();
  }
  stacks_[i]->stop();
  stacks_[i].reset();
}

void Testbed::restart_node(std::size_t i) {
  if (node_alive(i)) return;
  // Rebuild on the node's home lane (a no-op scope when unsharded): the
  // fresh stack's timers and instruments must live with its region even
  // when the restart is driven from a scenario-lane chaos event.
  sim::Simulator::LaneScope lane_scope(*sim_, node_lane(i));
  SimContext::Bind bind(sim_->ctx());
  medium_->set_enabled(static_cast<net::NodeId>(i), true);
  stacks_[i] = std::make_unique<NodeStack>(*hosts_[i], internet_.get(),
                                           node_stack_config());
  if (started_) stacks_[i]->start();
  for (std::size_t k = 0; k < phones_.size(); ++k) {
    if (phone_nodes_[k] == i) phones_[k]->power_on();
  }
}

bool Testbed::register_and_wait(voip::SoftPhone& phone, Duration max_wait) {
  struct Outcome {
    bool done = false;
    bool ok = false;
  };
  SimContext::Bind bind(sim_->ctx());
  auto outcome = std::make_shared<Outcome>();
  // Wrap (not replace) the application's handlers; restore them after.
  const voip::SoftPhoneEvents saved = phone.events();
  voip::SoftPhoneEvents events = saved;
  events.on_registered = [outcome, chained = saved.on_registered](bool ok,
                                                                  int status) {
    outcome->done = true;
    outcome->ok = ok;
    if (chained) chained(ok, status);
  };
  phone.set_events(std::move(events));
  {
    // Registration timers and REGISTER transmission start on the phone's
    // home lane.
    sim::Simulator::LaneScope lane_scope(*sim_, lane_of_phone(phone));
    phone.power_on();
  }
  const TimePoint deadline = sim_->now() + max_wait;
  while (!outcome->done && sim_->now() < deadline) {
    sim_->run_for(milliseconds(10));
  }
  phone.set_events(saved);
  return outcome->ok;
}

Testbed::CallResult Testbed::call_and_wait(voip::SoftPhone& caller,
                                           const std::string& target,
                                           Duration max_wait) {
  struct Outcome {
    bool done = false;
    bool established = false;
    int status = 0;
  };
  SimContext::Bind bind(sim_->ctx());
  auto outcome = std::make_shared<Outcome>();
  const voip::SoftPhoneEvents saved = caller.events();
  voip::SoftPhoneEvents events = saved;
  events.on_established = [outcome,
                           chained = saved.on_established](sip::CallId id) {
    outcome->done = true;
    outcome->established = true;
    if (chained) chained(id);
  };
  events.on_failed = [outcome, chained = saved.on_failed](sip::CallId id,
                                                          int status) {
    outcome->done = true;
    outcome->status = status;
    if (chained) chained(id, status);
  };
  caller.set_events(std::move(events));

  CallResult result;
  const TimePoint started = sim_->now();
  {
    sim::Simulator::LaneScope lane_scope(*sim_, lane_of_phone(caller));
    result.call = caller.dial(target);
  }
  const TimePoint deadline = started + max_wait;
  while (!outcome->done && sim_->now() < deadline) {
    sim_->run_for(milliseconds(1));
  }
  caller.set_events(saved);
  result.established = outcome->established;
  result.setup_time = sim_->now() - started;
  result.failure_status = outcome->done ? outcome->status : 408;
  return result;
}

void Testbed::make_gateway(std::size_t node) {
  SimContext::Bind bind(sim_->ctx());
  const net::Address wired{net::kInternetPrefix.value() + 100 +
                           static_cast<std::uint32_t>(node)};
  host(node).attach_wired(*internet_, wired);
}

sip::Registrar& Testbed::add_provider(const std::string& domain,
                                      bool require_outbound_proxy) {
  ProviderOptions options;
  options.require_outbound_proxy = require_outbound_proxy;
  return add_provider(domain, options);
}

sip::Registrar& Testbed::add_provider(const std::string& domain,
                                      const ProviderOptions& options) {
  SimContext::Bind bind(sim_->ctx());
  net::Host& server = add_internet_host("provider-" + domain);
  sip::RegistrarConfig config;
  config.domain = domain;
  config.require_outbound_proxy = options.require_outbound_proxy;
  config.store_shards = options.store_shards;
  if (options.require_outbound_proxy) {
    // The provider's own outbound proxy is a real box at an address DNS
    // does not reveal -- the polyphone.ethz.ch situation. Clients (or a
    // provisioned SIPHoc proxy) must relay through it.
    net::Host& proxy_host = add_internet_host("obproxy-" + domain);
    config.trusted_proxy = proxy_host.wired_address();
    sip::OutboundProxyConfig ob;
    ob.next_hop = {server.wired_address(), 5060};
    provider_proxies_.push_back(
        std::make_unique<sip::OutboundProxy>(proxy_host, ob));
    provider_proxy_endpoints_[domain] = {proxy_host.wired_address(), 5060};
  }
  internet_->register_domain(domain, server.wired_address());
  providers_.push_back(
      std::make_unique<sip::Registrar>(server, std::move(config)));
  sip::Registrar& registrar = *providers_.back();

  if (options.resolution == Resolution::kP2p) {
    // The ring: one resolver on the front door plus `p2p_nodes` dedicated
    // Internet boxes. Membership is installed up-front here; from then on
    // the resolvers' own stabilization timers keep the view live through
    // crash_ring_node / restart_ring_node churn.
    std::vector<sip::P2pResolver*> ring;
    std::vector<net::Host*> ring_hosts;
    ring.push_back(new sip::P2pResolver(server));
    ring_hosts.push_back(&server);
    p2p_resolvers_.emplace_back(ring.back());
    for (std::size_t i = 0; i < options.p2p_nodes; ++i) {
      net::Host& node = add_internet_host("ring-" + domain + "-" +
                                          std::to_string(i));
      ring.push_back(new sip::P2pResolver(node));
      ring_hosts.push_back(&node);
      p2p_resolvers_.emplace_back(ring.back());
    }
    std::vector<net::Endpoint> members;
    members.reserve(ring.size());
    for (const auto* r : ring) members.push_back(r->endpoint());
    for (auto* r : ring) r->join(members);
    registrar.set_p2p_resolver(ring.front());
    p2p_rings_[domain] = std::move(ring);
    p2p_ring_hosts_[domain] = std::move(ring_hosts);
  }
  return registrar;
}

void Testbed::crash_ring_node(const std::string& domain, std::size_t index) {
  const auto ring_it = p2p_rings_.find(domain);
  if (ring_it == p2p_rings_.end() || index == 0 ||
      index >= ring_it->second.size()) {
    return;
  }
  sip::P2pResolver* victim = ring_it->second[index];
  if (victim == nullptr) return;  // already down
  SimContext::Bind bind(sim_->ctx());
  // Destroying the resolver unbinds its port and cancels its timers and
  // in-flight lookups: from the ring's point of view the node just went
  // silent. Peers discover it through unanswered stabilization probes.
  std::erase_if(p2p_resolvers_,
                [victim](const std::unique_ptr<sip::P2pResolver>& r) {
                  return r.get() == victim;
                });
  ring_it->second[index] = nullptr;
}

void Testbed::restart_ring_node(const std::string& domain,
                                std::size_t index) {
  const auto ring_it = p2p_rings_.find(domain);
  if (ring_it == p2p_rings_.end() || index == 0 ||
      index >= ring_it->second.size()) {
    return;
  }
  if (ring_it->second[index] != nullptr) return;  // already up
  SimContext::Bind bind(sim_->ctx());
  net::Host* ring_host = p2p_ring_hosts_.at(domain).at(index);
  p2p_resolvers_.push_back(std::make_unique<sip::P2pResolver>(*ring_host));
  sip::P2pResolver* node = p2p_resolvers_.back().get();
  ring_it->second[index] = node;
  // Cold boot: empty store, singleton view. The runtime join through the
  // front door brings membership and re-replication to it.
  node->join_ring(ring_it->second.front()->endpoint());
}

bool Testbed::ring_node_alive(const std::string& domain,
                              std::size_t index) const {
  const auto ring_it = p2p_rings_.find(domain);
  return ring_it != p2p_rings_.end() && index < ring_it->second.size() &&
         ring_it->second[index] != nullptr;
}

std::vector<std::string> Testbed::p2p_domains() const {
  std::vector<std::string> domains;
  domains.reserve(p2p_rings_.size());
  for (const auto& [domain, ring] : p2p_rings_) domains.push_back(domain);
  return domains;
}

std::vector<sip::P2pResolver*> Testbed::p2p_ring(
    const std::string& domain) const {
  const auto it = p2p_rings_.find(domain);
  return it != p2p_rings_.end() ? it->second
                                : std::vector<sip::P2pResolver*>{};
}

std::optional<net::Endpoint> Testbed::provider_outbound_proxy(
    const std::string& domain) const {
  const auto it = provider_proxy_endpoints_.find(domain);
  if (it == provider_proxy_endpoints_.end()) return std::nullopt;
  return it->second;
}

net::Host& Testbed::add_internet_host(const std::string& name) {
  SimContext::Bind bind(sim_->ctx());
  const net::Address address{net::kInternetPrefix.value() +
                             next_internet_octet_++};
  auto host = std::make_unique<net::Host>(
      *sim_,
      static_cast<net::NodeId>(1000 + internet_hosts_.size()), name);
  host->attach_wired(*internet_, address);
  internet_hosts_.push_back(std::move(host));
  return *internet_hosts_.back();
}

}  // namespace siphoc::scenario
