#include "scenario/trace.hpp"

#include "routing/aodv_codec.hpp"
#include "routing/olsr_codec.hpp"
#include "rtp/rtp.hpp"
#include "slp/service.hpp"

namespace siphoc::scenario {

TraceRecorder::TraceRecorder(net::RadioMedium& medium, std::size_t capacity)
    : medium_(medium), capacity_(capacity) {
  medium_.set_tap([this](const net::Frame& f, TimePoint t) {
    on_frame(f, t);
  });
}

TraceRecorder::~TraceRecorder() { medium_.set_tap(nullptr); }

void TraceRecorder::on_frame(const net::Frame& frame, TimePoint t) {
  if (filter_ && !filter_(frame)) {
    ++dropped_;
    return;
  }
  ++captured_;
  entries_.push_back({t, frame, net::RadioMedium::classify(frame.datagram)});
  if (entries_.size() > capacity_) entries_.pop_front();
}

namespace {

std::string decode_payload(const TraceRecorder::Entry& e) {
  const Bytes& payload = e.frame.datagram.payload;
  switch (e.traffic_class) {
    case net::TrafficClass::kRouting: {
      if (e.frame.datagram.dst_port == net::kAodvPort) {
        auto decoded = routing::aodv::decode(payload);
        if (!decoded) return "AODV <malformed>";
        std::string out = routing::aodv::describe(decoded->message);
        if (!decoded->extension.empty()) {
          out += " +ext[" + std::to_string(decoded->extension.size()) + "B";
          if (auto block = slp::decode_extension(decoded->extension, e.time)) {
            for (const auto& a : block->advertisements) {
              out += " adv:" + a.type + ":" + a.key;
            }
            for (const auto& q : block->queries) {
              out += " rqst:" + q.type + ":" + q.key;
            }
            for (const auto& rep : block->replies) {
              for (const auto& entry : rep.entries) {
                out += " rply:" + entry.type + ":" + entry.key;
              }
            }
          }
          out += "]";
        }
        return "AODV " + out;
      }
      auto decoded = routing::olsr::decode(payload);
      if (!decoded) return "OLSR <malformed>";
      std::string out = "OLSR";
      for (const auto& m : decoded->messages) {
        out += " " + routing::olsr::describe(m);
        if (!m.extension.empty()) {
          out += " +ext[" + std::to_string(m.extension.size()) + "B]";
        }
      }
      return out;
    }
    case net::TrafficClass::kSip: {
      const std::string text = to_string(payload);
      const auto eol = text.find("\r\n");
      return "SIP " + text.substr(0, eol == std::string::npos ? text.size()
                                                              : eol);
    }
    case net::TrafficClass::kRtp: {
      auto packet = rtp::RtpPacket::decode(payload);
      if (!packet) return "RTP <malformed>";
      return "RTP ssrc=" + std::to_string(packet->ssrc) +
             " seq=" + std::to_string(packet->sequence) +
             " ts=" + std::to_string(packet->timestamp) +
             (packet->marker ? " [talk-spurt]" : "");
    }
    case net::TrafficClass::kTunnel: {
      if (payload.empty()) return "TUNNEL <empty>";
      static const char* names[] = {"?",         "CONNECT", "ACCEPT",
                                    "DATA",      "KEEPALIVE", "KEEPALIVE-ACK",
                                    "DISCONNECT"};
      const unsigned type = payload[0];
      return std::string("TUNNEL ") + (type <= 6 ? names[type] : "?");
    }
    case net::TrafficClass::kSlp:
      return "SLP (multicast baseline)";
    case net::TrafficClass::kOther:
      break;
  }
  return "UDP :" + std::to_string(e.frame.datagram.dst_port);
}

}  // namespace

std::string TraceRecorder::format(const Entry& e) {
  char head[96];
  std::snprintf(head, sizeof(head), "%-12s n%-3u -> %-5s %4zuB  ",
                format_time(e.time).c_str(), e.frame.src_mac,
                e.frame.dst_mac == net::kBroadcastMac
                    ? "*"
                    : ("n" + std::to_string(e.frame.dst_mac)).c_str(),
                e.frame.wire_size());
  return head + decode_payload(e);
}

std::string TraceRecorder::dump() const {
  std::string out;
  for (const auto& e : entries_) {
    out += format(e);
    out += '\n';
  }
  return out;
}

std::vector<TraceRecorder::Entry> TraceRecorder::grep(
    const std::string& needle) const {
  std::vector<Entry> out;
  for (const auto& e : entries_) {
    if (format(e).find(needle) != std::string::npos) out.push_back(e);
  }
  return out;
}

}  // namespace siphoc::scenario
