// TraceRecorder: the testbed's packet analyzer (the role Wireshark plays
// in the paper's Figure 5).
//
// Attaches to the radio medium's tap, keeps a bounded ring of captured
// frames, and renders them as tcpdump-style one-liners with protocol-aware
// decoding: SIP start lines, AODV/OLSR message summaries (including
// piggybacked SLP records), RTP sequence/timestamp, tunnel message types.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "net/medium.hpp"

namespace siphoc::scenario {

class TraceRecorder {
 public:
  struct Entry {
    TimePoint time{};
    net::Frame frame;
    net::TrafficClass traffic_class{};
  };

  /// Installs itself as the medium's tap (replacing any previous tap).
  explicit TraceRecorder(net::RadioMedium& medium,
                         std::size_t capacity = 4096);
  ~TraceRecorder();

  /// Optional capture filter; return false to skip a frame.
  void set_filter(std::function<bool(const net::Frame&)> filter) {
    filter_ = std::move(filter);
  }

  const std::deque<Entry>& entries() const { return entries_; }
  std::size_t captured() const { return captured_; }  // incl. evicted
  std::size_t dropped_by_filter() const { return dropped_; }
  void clear() { entries_.clear(); }

  /// One-line rendering: "12.0345s  n0 -> n1  SIP 498B  INVITE sip:bob@...".
  static std::string format(const Entry& entry);

  /// Whole capture as text.
  std::string dump() const;

  /// Entries whose rendered line contains `needle` (grep over the capture).
  std::vector<Entry> grep(const std::string& needle) const;

 private:
  void on_frame(const net::Frame& frame, TimePoint t);

  net::RadioMedium& medium_;
  std::size_t capacity_;
  std::function<bool(const net::Frame&)> filter_;
  std::deque<Entry> entries_;
  std::size_t captured_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace siphoc::scenario
