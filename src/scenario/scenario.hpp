// Testbed builder: programmatic construction of complete SIPHoc deployments.
//
// This is the emulation counterpart of the paper's physical testbed ("about
// 10 laptops and a bunch of handhelds. Some of the devices are separated by
// firewalls to enforce multihop communication", section 4): it wires the
// simulator, radio medium, Internet segment, per-node hosts, SIPHoc stacks,
// softphones, SIP providers and gateways, and provides blocking-style
// helpers ("place a call, wait for it to establish") that tests, examples
// and benchmarks all share.
#pragma once

#include <memory>
#include <vector>

#include "common/context.hpp"
#include "routing/route_hub.hpp"
#include "siphoc/node_stack.hpp"
#include "sip/outbound_proxy.hpp"
#include "sip/p2p_resolver.hpp"
#include "sip/registrar.hpp"
#include "voip/softphone.hpp"

namespace siphoc::scenario {

enum class Topology { kChain, kGrid, kRandomArea };

struct Options {
  std::uint64_t seed = 42;
  /// Context the testbed's simulation reports into; null means the global
  /// default context (legacy singleton behavior). The parallel cell runner
  /// gives every cell its own.
  SimContext* context = nullptr;
  std::size_t nodes = 2;
  Topology topology = Topology::kChain;
  double spacing = 100;  // metres between chain/grid neighbors
  double area = 500;     // random-area side length
  net::RadioConfig radio;
  RoutingKind routing = RoutingKind::kAodv;
  bool mobile = false;
  net::RandomWaypointConfig waypoint;
  NodeStackConfig stack;  // template; its routing field is overridden
  Duration internet_latency = milliseconds(20);

  // --- intra-simulation parallelism (docs/ARCHITECTURE.md) --------------
  /// Number of spatial regions to shard the simulation into. This is
  /// simulation *content*: any value >= 1 switches the kernel to parallel
  /// mode (region lanes, derived per-lane RNG streams, batched route
  /// recalculation), so results depend on it -- like `seed` or `nodes`.
  /// 0 keeps the classic sequential kernel. 1 enables the parallel hot
  /// loops (route-recalc batching, delivery prefilter) without sharding.
  std::uint32_t sim_regions = 0;
  /// Worker threads executing the simulation. Pure execution policy:
  /// results are byte-identical for any value (asserted by ctest).
  unsigned sim_threads = 1;
};

class Testbed {
 public:
  explicit Testbed(Options options);
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Simulator& sim() { return *sim_; }
  SimContext& ctx() { return sim_->ctx(); }

  /// Home lane of node i: 0 when unsharded, 1 + its region otherwise.
  std::uint32_t node_lane(std::size_t i) const {
    return node_lanes_.empty() ? 0 : node_lanes_.at(i);
  }
  /// Folds every region lane's metrics into the main context (one-shot,
  /// lane order). Call after the last run_for and before exporting
  /// metrics; the destructor calls it as a backstop.
  void finalize_metrics() { sim_->merge_lane_metrics(); }
  /// The route-recalc batching hub (parallel mode with sim_regions <= 1;
  /// null otherwise). Exposed for bench/test introspection.
  routing::ParallelRouteHub* route_hub() { return route_hub_.get(); }

  net::RadioMedium& medium() { return *medium_; }
  net::Internet& internet() { return *internet_; }
  std::size_t size() const { return hosts_.size(); }
  net::Host& host(std::size_t i) { return *hosts_.at(i); }
  NodeStack& stack(std::size_t i) { return *stacks_.at(i); }
  const Options& options() const { return options_; }

  // --- fault injection (the chaos engine's hooks; docs/RESILIENCE.md) ------
  /// Tears down node i's entire middleware stack mid-run: radio silenced
  /// first (the dying stack's goodbyes go nowhere), softphones on the node
  /// power off, then the NodeStack is destroyed. The Host and its phones
  /// survive -- only the middleware dies, like killing the paper's five
  /// SIPHoc processes on one laptop.
  void crash_node(std::size_t i);
  /// Respawns a crashed node: radio back on, a fresh NodeStack is built
  /// from the testbed options and started, and the node's phones power on
  /// again (cold boot: empty routing tables, empty SLP cache, no tunnel).
  void restart_node(std::size_t i);
  /// True while node i has a live middleware stack.
  bool node_alive(std::size_t i) const { return stacks_.at(i) != nullptr; }
  /// Rips the wired uplink off a gateway node; its Gateway Provider
  /// self-detects within one check interval and withdraws the service.
  void kill_gateway(std::size_t i) { host(i).detach_wired(); }

  /// Crashes ring node `index` of `domain`'s P2P ring (kP2p providers
  /// only): the resolver is destroyed mid-run -- its UDP port goes dark,
  /// its stored replicas are lost -- while the Internet host survives for
  /// a later restart. Index 0 is the provider front door (it hosts the
  /// registrar's delegate) and cannot be crashed.
  void crash_ring_node(const std::string& domain, std::size_t index);
  /// Rebuilds a crashed ring node's resolver cold (empty record store) and
  /// rejoins it through the front door -- the runtime join_ring() path
  /// with membership broadcast and key handoff.
  void restart_ring_node(const std::string& domain, std::size_t index);
  /// True while ring node `index` of `domain`'s ring has a live resolver.
  bool ring_node_alive(const std::string& domain, std::size_t index) const;
  /// Domains served by a P2P ring (fault targeting, invariant checks).
  std::vector<std::string> p2p_domains() const;

  std::size_t phone_count() const { return phones_.size(); }
  /// Testbed node a phone was added on (for fault targeting).
  std::size_t phone_node(std::size_t index) const {
    return phone_nodes_.at(index);
  }

  /// MANET address assignment convention: node i owns 10.0.0.(i+1).
  static net::Address manet_address(std::size_t i) {
    return net::Address{net::kManetPrefix.value() +
                        static_cast<std::uint32_t>(i + 1)};
  }

  /// Starts every node's middleware stack.
  void start();
  void run_for(Duration d) { sim_->run_for(d); }

  /// Lets routing (and proactive SLP) converge before the workload starts.
  void settle(Duration d = seconds(5)) { run_for(d); }

  // --- application layer --------------------------------------------------
  /// Creates a softphone on a node, configured exactly as the paper's
  /// Figure 2: account user@domain, outbound proxy localhost.
  voip::SoftPhone& add_phone(std::size_t node, const std::string& username,
                             const std::string& domain = "voicehoc.ch");
  voip::SoftPhone& add_phone(std::size_t node, voip::SoftPhoneConfig config);
  voip::SoftPhone& phone(std::size_t index) { return *phones_.at(index); }

  /// Registers a phone and waits for the result (local 200 in an isolated
  /// MANET, or the provider's verdict when Internet-connected).
  bool register_and_wait(voip::SoftPhone& phone,
                         Duration max_wait = seconds(10));

  struct CallResult {
    bool established = false;
    Duration setup_time{};
    sip::CallId call = 0;
    int failure_status = 0;  // 408 on timeout
  };
  /// Dials and runs the simulation until the call establishes or fails.
  CallResult call_and_wait(voip::SoftPhone& caller, const std::string& target,
                           Duration max_wait = seconds(15));

  // --- Internet side -------------------------------------------------------
  /// Attaches a wired uplink to a MANET node, making it a gateway candidate
  /// (its Gateway Provider will start serving within one advertise period).
  void make_gateway(std::size_t node);

  /// How a provider resolves contacts: the central registrar store, or a
  /// Chord-lite P2P ring of Internet nodes (sip/p2p_resolver.hpp).
  enum class Resolution { kRegistrar, kP2p };

  struct ProviderOptions {
    bool require_outbound_proxy = false;
    /// Registrar binding backend: 0 = sequential single map, >= 1 =
    /// ShardedBindingStore with that many shards.
    std::size_t store_shards = 0;
    Resolution resolution = Resolution::kRegistrar;
    /// Ring nodes spawned *besides* the provider front door when
    /// `resolution == kP2p` (front door included, the ring has
    /// p2p_nodes + 1 members).
    std::size_t p2p_nodes = 4;
  };

  /// Spawns a SIP provider (registrar + domain proxy) on the Internet
  /// segment and registers its domain in DNS. With
  /// `require_outbound_proxy`, the provider only accepts requests relayed
  /// through its own outbound proxy (spawned alongside) -- the
  /// polyphone.ethz.ch situation of paper §3.2.
  sip::Registrar& add_provider(const std::string& domain,
                               bool require_outbound_proxy = false);
  /// Full-options form: store backend selection and P2P ring resolution
  /// (EXPERIMENTS.md E11 compares the two call-setup paths).
  sip::Registrar& add_provider(const std::string& domain,
                               const ProviderOptions& options);

  /// The P2P ring serving a kP2p provider's domain (front door first);
  /// empty for registrar-backed providers. Crashed members are nullptr
  /// until restarted.
  std::vector<sip::P2pResolver*> p2p_ring(const std::string& domain) const;

  /// The endpoint of a provider's dedicated outbound proxy (only for
  /// providers created with require_outbound_proxy). Feed this into
  /// ProxyConfig::provider_outbound_proxies to exercise the open-issue fix.
  std::optional<net::Endpoint> provider_outbound_proxy(
      const std::string& domain) const;

  /// A plain Internet host (for Internet-side softphones).
  net::Host& add_internet_host(const std::string& name);

 private:
  NodeStackConfig node_stack_config() const;
  std::uint32_t lane_of_phone(const voip::SoftPhone& phone) const;

  Options options_;
  std::unique_ptr<sim::Simulator> sim_;
  std::vector<std::uint32_t> node_lanes_;  // node index -> home lane
  std::unique_ptr<routing::ParallelRouteHub> route_hub_;
  std::unique_ptr<net::RadioMedium> medium_;
  std::unique_ptr<net::Internet> internet_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<NodeStack>> stacks_;
  std::vector<std::unique_ptr<voip::SoftPhone>> phones_;
  std::vector<std::size_t> phone_nodes_;  // phones_[k] lives on node phone_nodes_[k]
  std::vector<std::unique_ptr<net::Host>> internet_hosts_;
  std::vector<std::unique_ptr<sip::Registrar>> providers_;
  std::vector<std::unique_ptr<sip::P2pResolver>> p2p_resolvers_;
  std::map<std::string, std::vector<sip::P2pResolver*>> p2p_rings_;
  std::map<std::string, std::vector<net::Host*>> p2p_ring_hosts_;
  std::vector<std::unique_ptr<sip::OutboundProxy>> provider_proxies_;
  std::map<std::string, net::Endpoint> provider_proxy_endpoints_;
  std::uint32_t next_internet_octet_ = 10;
  bool started_ = false;
};

}  // namespace siphoc::scenario
