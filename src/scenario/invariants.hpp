// Recovery invariants: what must stay true of a SIPHoc deployment no matter
// which faults the chaos engine injects (docs/RESILIENCE.md, invariant
// catalog).
//
//   I1 calls-terminate      every started call leaves kInviting/kRinging
//                           within the SIP timeout budget (64*T1 + grace) --
//                           a call parked there is a black hole.
//   I2 transactions-bounded no SIP transaction outlives the RFC 3261 worst
//                           case (64*T1 plus the Timer D / Timer I linger).
//   I3 slp-purges           after a purge pass, no SLP cache anywhere holds
//                           an entry whose lifetime expired -- dead nodes'
//                           advertisements must age out, never be served.
//   I4 reattaches           while the air has been quiet for K connection-
//                           provider check intervals, every live non-gateway
//                           node is Internet-attached whenever a live
//                           gateway remains.
//   I5 p2p-resolves         once ring stabilization has quiesced (faults
//                           over, view steady, nobody suspect), every
//                           registered phone's AOR is stored at the live
//                           ring member responsible for it, and the stored
//                           contact routes to an address that is actually
//                           attached to the Internet -- no lost bindings,
//                           no calls into dead contacts.
//
// The monitor is read-only except for I3's purge pass (it acts as "the next
// lookup" on every node, since purging is traffic-driven) and draws nothing
// from the simulation RNG.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "scenario/faults.hpp"

namespace siphoc::scenario {

struct InvariantConfig {
  /// Slack added on top of the SIP timeout budget for I1/I2.
  Duration grace = seconds(10);
  /// I4 fires only after the engine reports this many connection-provider
  /// check intervals of quiet air.
  std::size_t reattach_checks = 4;
  /// I5 fires only after this much engine quiet (must exceed the rings'
  /// stabilize_interval * (probe_tolerance + 1) so repair has quiesced).
  Duration p2p_quiet = seconds(8);
};

struct InvariantViolation {
  std::string invariant;  // "calls-terminate", "transactions-bounded", ...
  std::string detail;
  TimePoint when{};

  std::string to_string() const;
};

struct InvariantReport {
  std::uint64_t checks = 0;
  std::vector<InvariantViolation> violations;

  bool ok() const { return violations.empty(); }
  std::string to_string() const;
};

class InvariantMonitor {
 public:
  /// `engine` gates I4 (no engine: I4 is only checked when you call
  /// check() yourself at a moment you know the air is clean -- pass the
  /// engine for soak runs).
  InvariantMonitor(Testbed& bed, const FaultEngine* engine = nullptr,
                   InvariantConfig config = {});
  ~InvariantMonitor();

  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  /// Runs every invariant once against the current state.
  void check();

  /// Checks periodically (fixed period, no RNG jitter) until stop().
  void start(Duration period);
  void stop();

  const InvariantReport& report() const { return report_; }

 private:
  void check_calls_terminate();
  void check_transactions_bounded();
  void check_slp_purges();
  void check_reattaches();
  void check_p2p_resolves();
  /// Records a violation once per (invariant, key) -- a call stuck for a
  /// minute is one black hole, not sixty.
  void violate(const char* invariant, const std::string& key,
               std::string detail);
  void arm(Duration period);

  Testbed& bed_;
  const FaultEngine* engine_;
  InvariantConfig config_;
  InvariantReport report_;
  std::set<std::string> reported_;
  sim::EventHandle tick_;
};

}  // namespace siphoc::scenario
