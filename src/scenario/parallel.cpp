#include "scenario/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/metrics.hpp"

namespace siphoc::scenario {

namespace {

void run_one(SimContext& context, Cell& cell) {
  SimContext::Bind bind(context);
  cell.run(context);
}

}  // namespace

std::vector<std::unique_ptr<SimContext>> run_cells(std::vector<Cell> cells,
                                                   unsigned threads) {
  // Pre-create every context up front so the result vector is fixed in
  // submission order before any worker starts; workers only ever touch
  // contexts[i] for cells they claimed, so no synchronization beyond the
  // claim index is needed.
  std::vector<std::unique_ptr<SimContext>> contexts;
  contexts.reserve(cells.size());
  for (const Cell& cell : cells) {
    auto context = std::make_unique<SimContext>();
    context->set_root_seed(cell.seed);
    contexts.push_back(std::move(context));
  }

  const std::size_t n = cells.size();
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(*contexts[i], cells[i]);
    return contexts;
  }

  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      run_one(*contexts[i], cells[i]);
    }
  };

  const std::size_t pool_size =
      std::min<std::size_t>(threads, n);
  std::vector<std::thread> pool;
  pool.reserve(pool_size);
  for (std::size_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return contexts;
}

std::string merged_metrics_json(
    const std::vector<std::unique_ptr<SimContext>>& contexts) {
  MetricsRegistry merged;
  for (const auto& context : contexts) merged.merge_from(context->metrics());
  return merged.to_json(contexts.size());
}

unsigned default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

}  // namespace siphoc::scenario
