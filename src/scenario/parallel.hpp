// Parallel experiment cell runner.
//
// An experiment grid (a bench sweep, a seed sweep) is a list of independent
// (config, seed) cells: each cell builds its own Testbed in its own
// SimContext and runs to a verdict, sharing no mutable state with any other
// cell. That independence is what this runner exploits: a fixed-size thread
// pool fans the cells across cores, and because every cell's output lands
// in its own context, results can be read back -- and per-cell registries
// merged -- in submission order, making tables, --json output and metrics
// sidecars byte-identical to a --threads 1 run.
//
// Determinism contract:
//   * cell k's seed is SimContext::derive_seed(root, k) -- a pure function
//     of the sweep root and the cell index, never of scheduling;
//   * each worker binds the cell's context (SimContext::Bind) for the whole
//     cell body, so even leaf code resolving via current() stays isolated;
//   * contexts are returned in submission order and merge_from() is folded
//     left-to-right over that order.
// See docs/PERFORMANCE.md "Parallel harness".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/context.hpp"

namespace siphoc::scenario {

/// One independent unit of work: the runner creates a fresh SimContext with
/// root_seed = `seed`, binds it on the executing thread, and invokes `run`.
/// The body must reach all process services through the given context (or
/// through current(), which resolves to it) and must not touch the global
/// registry or any state shared with other cells.
struct Cell {
  std::uint64_t seed = 0;
  std::function<void(SimContext&)> run;
};

/// Runs every cell, using up to `threads` worker threads (values <= 1, or a
/// single cell, run inline on the calling thread). Returns the per-cell
/// contexts in submission order regardless of completion order. Cells must
/// not throw.
std::vector<std::unique_ptr<SimContext>> run_cells(std::vector<Cell> cells,
                                                   unsigned threads);

/// Folds the cells' registries into one (submission order, see
/// MetricsRegistry::merge_from) and returns its sidecar JSON with
/// "merged_cells" provenance.
std::string merged_metrics_json(
    const std::vector<std::unique_ptr<SimContext>>& contexts);

/// std::thread::hardware_concurrency with a floor of 1.
unsigned default_thread_count();

}  // namespace siphoc::scenario
