#include "baselines/push_gateway.hpp"

namespace siphoc::baselines {

FixedGatewayClient::FixedGatewayClient(net::Host& host,
                                       FixedGatewayConfig config,
                                       std::function<void(bool)> on_change)
    : host_(host),
      config_(config),
      log_("fixedgw", host.name()),
      on_change_(std::move(on_change)),
      tunnel_(host, [this](bool connected, net::Address) {
        if (on_change_) on_change_(connected || host_.has_wired());
      }) {}

FixedGatewayClient::~FixedGatewayClient() { stop(); }

void FixedGatewayClient::start() {
  if (started_) return;
  started_ = true;
  tick();
  timer_.start(host_.sim(), config_.retry_interval, [this] { tick(); },
               milliseconds(300));
}

void FixedGatewayClient::stop() {
  if (!started_) return;
  started_ = false;
  timer_.stop();
  if (tunnel_.connected()) tunnel_.disconnect();
}

void FixedGatewayClient::tick() {
  if (!started_ || host_.has_wired() || tunnel_.connected()) return;
  ++attempts_;
  // No discovery: always the provisioned endpoint, reachable or not.
  tunnel_.connect(config_.gateway);
}

}  // namespace siphoc::baselines
