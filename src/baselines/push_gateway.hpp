// Baseline [8] (Chen et al., APWCS): push-based VoIP for Internet-enabled
// MANETs with a statically designated gateway.
//
// "the work assumes a fixed topology with one node acting as gateway"
// (paper section 5). The client side therefore skips gateway *discovery*
// entirely: it opens a tunnel to a pre-configured gateway endpoint and
// keeps retrying that one endpoint forever. Bench E4 compares this against
// SIPHoc's Connection Provider on (a) time-to-Internet from cold start and
// (b) behaviour when the designated gateway disappears and another node
// has connectivity -- the fixed scheme never recovers.
#pragma once

#include "siphoc/tunnel.hpp"

namespace siphoc::baselines {

struct FixedGatewayConfig {
  net::Endpoint gateway;  // statically provisioned
  Duration retry_interval = seconds(5);
};

class FixedGatewayClient {
 public:
  FixedGatewayClient(net::Host& host, FixedGatewayConfig config,
                     std::function<void(bool online)> on_change = {});
  ~FixedGatewayClient();

  void start();
  void stop();

  bool internet_available() const {
    return host_.has_wired() || tunnel_.connected();
  }
  net::Address internet_address() const {
    if (host_.has_wired()) return host_.wired_address();
    if (tunnel_.connected()) return tunnel_.tunnel_address();
    return {};
  }
  std::uint64_t connect_attempts() const { return attempts_; }

 private:
  void tick();

  net::Host& host_;
  FixedGatewayConfig config_;
  Logger log_;
  std::function<void(bool)> on_change_;
  TunnelClient tunnel_;
  sim::PeriodicTimer timer_;
  bool started_ = false;
  std::uint64_t attempts_ = 0;
};

}  // namespace siphoc::baselines
