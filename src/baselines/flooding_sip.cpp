#include "baselines/flooding_sip.hpp"

#include <algorithm>

#include "slp/service.hpp"

namespace siphoc::baselines {

namespace {

enum class MsgType : std::uint8_t {
  kBindingFlood = 1,
  kQueryFlood = 2,
};

}  // namespace

FloodingSipDirectory::FloodingSipDirectory(net::Host& host,
                                           FloodingSipConfig config)
    : host_(host), config_(config), log_("floodsip", host.name()) {
  host_.bind(kFloodingSipPort,
             [this](const net::Datagram& d, const net::RxInfo&) {
               on_packet(d);
             });
  if (config_.refresh_interval > Duration::zero()) {
    refresh_timer_.start(host_.sim(), config_.refresh_interval,
                         [this] { refresh(); }, seconds(1));
  }
}

FloodingSipDirectory::~FloodingSipDirectory() {
  refresh_timer_.stop();
  host_.unbind(kFloodingSipPort);
}

void FloodingSipDirectory::register_service(std::string type, std::string key,
                                            std::string value,
                                            Duration lifetime) {
  slp::ServiceEntry e;
  e.type = std::move(type);
  e.key = std::move(key);
  e.value = std::move(value);
  e.origin = host_.manet_address();
  e.version = version_counter_++;
  e.expires = now() + lifetime;
  local_[{e.type, e.key}] = e;
  table_[{e.type, e.key}] = e;
  ++floods_originated_;
  const std::uint32_t flood_id = next_flood_id_++;
  seen_.insert({e.origin, flood_id});
  flood_entry(e, config_.flood_ttl, flood_id);
}

void FloodingSipDirectory::deregister_service(const std::string& type,
                                              const std::string& key) {
  local_.erase({type, key});
  table_.erase({type, key});
}

void FloodingSipDirectory::lookup(std::string type, std::string key,
                                  Duration timeout,
                                  slp::LookupCallback callback) {
  ++stats_.lookups;
  const slp::ServiceEntry* best = nullptr;
  for (const auto& [k, e] : table_) {
    if (e.matches(type, key) && e.expires > now() &&
        (best == nullptr || e.version > best->version)) {
      best = &e;
    }
  }
  if (best != nullptr) {
    ++stats_.hits_local;
    host_.sim().schedule(microseconds(1),
                         [callback = std::move(callback), e = *best] {
                           callback(e);
                         });
    return;
  }

  // Cold miss: flood a query; any node owning the binding re-floods it.
  PendingLookup pending;
  pending.type = type;
  pending.key = key;
  pending.callback = std::move(callback);
  pending.id = next_pending_id_++;
  const std::uint64_t id = pending.id;
  pending.timeout = host_.sim().schedule(timeout, [this, id] {
    const auto it =
        std::find_if(pending_.begin(), pending_.end(),
                     [&](const PendingLookup& p) { return p.id == id; });
    if (it == pending_.end()) return;
    auto cb = std::move(it->callback);
    pending_.erase(it);
    ++stats_.misses;
    cb(std::nullopt);
  });
  pending_.push_back(std::move(pending));

  Bytes wire;
  BufferWriter w(wire);
  w.u8(static_cast<std::uint8_t>(MsgType::kQueryFlood));
  w.u8(config_.flood_ttl);
  const std::uint32_t flood_id = next_flood_id_++;
  seen_.insert({host_.manet_address(), flood_id});
  w.u32(flood_id);
  w.u32(host_.manet_address().value());
  w.str(type);
  w.str(key);
  ++packets_sent_;
  ++floods_originated_;
  host_.send_broadcast(kFloodingSipPort, kFloodingSipPort, std::move(wire));
}

std::vector<slp::ServiceEntry> FloodingSipDirectory::snapshot() const {
  std::vector<slp::ServiceEntry> out;
  for (const auto& [k, e] : table_) {
    if (e.expires > now()) out.push_back(e);
  }
  return out;
}

void FloodingSipDirectory::flood_entry(const slp::ServiceEntry& entry,
                                       std::uint8_t ttl,
                                       std::uint32_t flood_id) {
  Bytes wire;
  BufferWriter w(wire);
  w.u8(static_cast<std::uint8_t>(MsgType::kBindingFlood));
  w.u8(ttl);
  w.u32(flood_id);
  w.u32(entry.origin.value());
  slp::ExtensionBlock block;
  block.advertisements.push_back(entry);
  const Bytes encoded = slp::encode_extension(block, now());
  w.u16(static_cast<std::uint16_t>(encoded.size()));
  w.raw(encoded);
  ++packets_sent_;
  host_.send_broadcast(kFloodingSipPort, kFloodingSipPort, std::move(wire));
}

void FloodingSipDirectory::on_packet(const net::Datagram& d) {
  BufferReader r(d.payload);
  auto type = r.u8();
  auto ttl = r.u8();
  auto flood_id = r.u32();
  auto origin = r.u32();
  if (!type || !ttl || !flood_id || !origin) return;
  if (net::Address{*origin} == host_.manet_address()) return;
  if (!seen_.insert({net::Address{*origin}, *flood_id}).second) return;

  if (static_cast<MsgType>(*type) == MsgType::kBindingFlood) {
    auto len = r.u16();
    if (!len) return;
    auto encoded = r.raw(*len);
    if (!encoded) return;
    auto block = slp::decode_extension(*encoded, now());
    if (!block || block->advertisements.empty()) return;
    for (const auto& e : block->advertisements) {
      const Key key{e.type, e.key};
      const auto it = table_.find(key);
      if (it == table_.end() || e.version >= it->second.version) {
        table_[key] = e;
        resolve_pending(e);
      }
    }
    if (*ttl > 1) {
      const auto fwd = block->advertisements.front();
      const std::uint8_t next_ttl = static_cast<std::uint8_t>(*ttl - 1);
      const std::uint32_t id = *flood_id;
      // Re-encode preserving origin/flood id: re-flood manually.
      host_.sim().schedule(
          host_.rng().jitter(Duration::zero(), config_.forward_jitter),
          [this, fwd, next_ttl, id] {
            Bytes wire;
            BufferWriter w(wire);
            w.u8(static_cast<std::uint8_t>(MsgType::kBindingFlood));
            w.u8(next_ttl);
            w.u32(id);
            w.u32(fwd.origin.value());
            slp::ExtensionBlock block;
            block.advertisements.push_back(fwd);
            const Bytes encoded = slp::encode_extension(block, now());
            w.u16(static_cast<std::uint16_t>(encoded.size()));
            w.raw(encoded);
            ++packets_sent_;
            host_.send_broadcast(kFloodingSipPort, kFloodingSipPort,
                                 std::move(wire));
          });
    }
    return;
  }

  if (static_cast<MsgType>(*type) == MsgType::kQueryFlood) {
    auto qtype = r.str();
    auto qkey = r.str();
    if (!qtype || !qkey) return;
    // Owner answers by re-flooding the binding (the [12] way: there is no
    // unicast path, everything is broadcast).
    for (const auto& [k, e] : local_) {
      if (e.matches(*qtype, *qkey) && e.expires > now()) {
        ++floods_originated_;
        const std::uint32_t id = next_flood_id_++;
        seen_.insert({host_.manet_address(), id});
        flood_entry(e, config_.flood_ttl, id);
        return;
      }
    }
    if (*ttl > 1) {
      const std::uint8_t next_ttl = static_cast<std::uint8_t>(*ttl - 1);
      Bytes wire;
      BufferWriter w(wire);
      w.u8(static_cast<std::uint8_t>(MsgType::kQueryFlood));
      w.u8(next_ttl);
      w.u32(*flood_id);
      w.u32(*origin);
      w.str(*qtype);
      w.str(*qkey);
      const auto delay =
          host_.rng().jitter(Duration::zero(), config_.forward_jitter);
      host_.sim().schedule(delay, [this, wire = std::move(wire)]() mutable {
        ++packets_sent_;
        host_.send_broadcast(kFloodingSipPort, kFloodingSipPort,
                             std::move(wire));
      });
    }
  }
}

void FloodingSipDirectory::refresh() {
  for (const auto& [key, e] : local_) {
    if (e.expires <= now()) continue;
    ++floods_originated_;
    const std::uint32_t id = next_flood_id_++;
    seen_.insert({host_.manet_address(), id});
    flood_entry(e, config_.flood_ttl, id);
  }
}

void FloodingSipDirectory::resolve_pending(const slp::ServiceEntry& entry) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (entry.matches(it->type, it->key)) {
      it->timeout.cancel();
      auto cb = std::move(it->callback);
      it = pending_.erase(it);
      ++stats_.hits_remote;
      cb(entry);
    } else {
      ++it;
    }
  }
}

}  // namespace siphoc::baselines
