// Baseline [12] (Leggio et al., IWWAN): fully distributed SIP session
// initiation via REGISTER broadcast.
//
// "the basic SIP mechanism is extended by incorporating REGISTER broadcast
//  messages which makes the approach inefficient and SIP incompatible"
//  (paper section 5).
//
// Implemented as a slp::Directory so the identical SIPHoc proxy/softphone
// stack runs on top (bench E1/E3 compare the discovery substrate only):
// every register_service() floods the binding network-wide with duplicate
// suppression; every node keeps the full mapping table; lookups are local.
// A cache miss can optionally flood a query (so cold lookups terminate),
// which is still one network-wide flood per event -- the O(N) per-
// registration cost is the point being measured.
#pragma once

#include <map>
#include <set>

#include "common/logging.hpp"
#include "net/host.hpp"
#include "slp/directory.hpp"

namespace siphoc::baselines {

struct FloodingSipConfig {
  std::uint8_t flood_ttl = 16;
  Duration forward_jitter = milliseconds(10);
  /// Re-flood registrations at this interval (0 = only on registration);
  /// [12] refreshes bindings periodically.
  Duration refresh_interval = seconds(30);
};

class FloodingSipDirectory final : public slp::Directory {
 public:
  FloodingSipDirectory(net::Host& host, FloodingSipConfig config = {});
  ~FloodingSipDirectory() override;

  void register_service(std::string type, std::string key, std::string value,
                        Duration lifetime) override;
  void deregister_service(const std::string& type,
                          const std::string& key) override;
  void lookup(std::string type, std::string key, Duration timeout,
              slp::LookupCallback callback) override;
  std::vector<slp::ServiceEntry> snapshot() const override;
  const DirectoryStats& stats() const override { return stats_; }

  std::uint64_t floods_originated() const { return floods_originated_; }
  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  using Key = std::pair<std::string, std::string>;

  TimePoint now() const { return host_.sim().now(); }
  void flood_entry(const slp::ServiceEntry& entry, std::uint8_t ttl,
                   std::uint32_t flood_id);
  void on_packet(const net::Datagram& d);
  void refresh();
  void resolve_pending(const slp::ServiceEntry& entry);

  struct PendingLookup {
    std::string type;
    std::string key;
    slp::LookupCallback callback;
    sim::EventHandle timeout;
    std::uint64_t id;
  };

  net::Host& host_;
  FloodingSipConfig config_;
  Logger log_;
  std::map<Key, slp::ServiceEntry> local_;
  std::map<Key, slp::ServiceEntry> table_;  // network-wide mapping
  std::set<std::pair<net::Address, std::uint32_t>> seen_;
  std::vector<PendingLookup> pending_;
  std::uint32_t next_flood_id_ = 1;
  std::uint32_t version_counter_ = 1;
  std::uint64_t next_pending_id_ = 1;
  std::uint64_t floods_originated_ = 0;
  std::uint64_t packets_sent_ = 0;
  sim::PeriodicTimer refresh_timer_;
  DirectoryStats stats_;
};

/// UDP port for the baseline's dedicated flooding traffic.
inline constexpr std::uint16_t kFloodingSipPort = 5090;

}  // namespace siphoc::baselines
