// Baseline [13] (O'Doherty, Pico SIP): proactive mapping of all SIP clients
// via a periodic HELLO method.
//
// "One of the earliest attempts to adapt SIP to MANETs is based on a
//  pro-active mapping of all SIP clients in the MANET using a HELLO method.
//  This leads to inefficient utilization of resources if the mappings
//  remain unused" (paper section 5).
//
// Every node periodically floods a HELLO carrying its local bindings,
// whether or not anyone will ever call them -- the steady-state overhead is
// O(N) floods per HELLO interval, independent of call activity. Lookups
// are answered from the converged table.
#pragma once

#include <map>
#include <set>

#include "common/logging.hpp"
#include "net/host.hpp"
#include "slp/directory.hpp"

namespace siphoc::baselines {

struct PicoSipConfig {
  Duration hello_interval = seconds(5);
  std::uint8_t flood_ttl = 16;
  Duration entry_lifetime = seconds(15);  // 3 missed HELLOs
  Duration forward_jitter = milliseconds(10);
};

class PicoSipDirectory final : public slp::Directory {
 public:
  PicoSipDirectory(net::Host& host, PicoSipConfig config = {});
  ~PicoSipDirectory() override;

  void register_service(std::string type, std::string key, std::string value,
                        Duration lifetime) override;
  void deregister_service(const std::string& type,
                          const std::string& key) override;
  void lookup(std::string type, std::string key, Duration timeout,
              slp::LookupCallback callback) override;
  std::vector<slp::ServiceEntry> snapshot() const override;
  const DirectoryStats& stats() const override { return stats_; }

  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  using Key = std::pair<std::string, std::string>;

  TimePoint now() const { return host_.sim().now(); }
  void send_hello();
  void on_packet(const net::Datagram& d);
  void resolve_pending(const slp::ServiceEntry& entry);

  struct PendingLookup {
    std::string type;
    std::string key;
    slp::LookupCallback callback;
    sim::EventHandle timeout;
    std::uint64_t id;
  };

  net::Host& host_;
  PicoSipConfig config_;
  Logger log_;
  std::map<Key, slp::ServiceEntry> local_;
  std::map<Key, slp::ServiceEntry> table_;
  std::set<std::pair<net::Address, std::uint32_t>> seen_;
  std::vector<PendingLookup> pending_;
  std::uint32_t hello_seq_ = 0;
  std::uint32_t version_counter_ = 1;
  std::uint64_t next_pending_id_ = 1;
  std::uint64_t packets_sent_ = 0;
  sim::PeriodicTimer hello_timer_;
  DirectoryStats stats_;
};

inline constexpr std::uint16_t kPicoSipPort = 5091;

}  // namespace siphoc::baselines
