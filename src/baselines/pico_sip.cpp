#include "baselines/pico_sip.hpp"

#include <algorithm>

#include "slp/service.hpp"

namespace siphoc::baselines {

PicoSipDirectory::PicoSipDirectory(net::Host& host, PicoSipConfig config)
    : host_(host), config_(config), log_("picosip", host.name()) {
  host_.bind(kPicoSipPort, [this](const net::Datagram& d, const net::RxInfo&) {
    on_packet(d);
  });
  hello_timer_.start(host_.sim(), config_.hello_interval,
                     [this] { send_hello(); }, milliseconds(500));
}

PicoSipDirectory::~PicoSipDirectory() {
  hello_timer_.stop();
  host_.unbind(kPicoSipPort);
}

void PicoSipDirectory::register_service(std::string type, std::string key,
                                        std::string value, Duration lifetime) {
  slp::ServiceEntry e;
  e.type = std::move(type);
  e.key = std::move(key);
  e.value = std::move(value);
  e.origin = host_.manet_address();
  e.version = version_counter_++;
  e.expires = now() + lifetime;
  local_[{e.type, e.key}] = e;
  table_[{e.type, e.key}] = e;
  send_hello();  // push the new binding out promptly
}

void PicoSipDirectory::deregister_service(const std::string& type,
                                          const std::string& key) {
  local_.erase({type, key});
  table_.erase({type, key});
}

void PicoSipDirectory::lookup(std::string type, std::string key,
                              Duration timeout,
                              slp::LookupCallback callback) {
  ++stats_.lookups;
  const slp::ServiceEntry* best = nullptr;
  for (const auto& [k, e] : table_) {
    if (e.matches(type, key) && e.expires > now() &&
        (best == nullptr || e.version > best->version)) {
      best = &e;
    }
  }
  if (best != nullptr) {
    ++stats_.hits_local;
    host_.sim().schedule(microseconds(1),
                         [callback = std::move(callback), e = *best] {
                           callback(e);
                         });
    return;
  }
  // Purely proactive: wait for the next HELLO round to bring the mapping.
  PendingLookup pending;
  pending.type = std::move(type);
  pending.key = std::move(key);
  pending.callback = std::move(callback);
  pending.id = next_pending_id_++;
  const std::uint64_t id = pending.id;
  pending.timeout = host_.sim().schedule(timeout, [this, id] {
    const auto it =
        std::find_if(pending_.begin(), pending_.end(),
                     [&](const PendingLookup& p) { return p.id == id; });
    if (it == pending_.end()) return;
    auto cb = std::move(it->callback);
    pending_.erase(it);
    ++stats_.misses;
    cb(std::nullopt);
  });
  pending_.push_back(std::move(pending));
}

std::vector<slp::ServiceEntry> PicoSipDirectory::snapshot() const {
  std::vector<slp::ServiceEntry> out;
  for (const auto& [k, e] : table_) {
    if (e.expires > now()) out.push_back(e);
  }
  return out;
}

void PicoSipDirectory::send_hello() {
  // HELLO floods even when there is nothing registered -- the "inefficient
  // utilization of resources" the paper calls out is the point.
  slp::ExtensionBlock block;
  for (const auto& [k, e] : local_) {
    if (e.expires <= now()) continue;
    slp::ServiceEntry refreshed = e;
    refreshed.expires = now() + config_.entry_lifetime;
    block.advertisements.push_back(std::move(refreshed));
  }
  Bytes wire;
  BufferWriter w(wire);
  w.u8(config_.flood_ttl);
  const std::uint32_t seq = ++hello_seq_;
  seen_.insert({host_.manet_address(), seq});
  w.u32(seq);
  w.u32(host_.manet_address().value());
  const Bytes encoded = slp::encode_extension(block, now());
  w.u16(static_cast<std::uint16_t>(encoded.size()));
  w.raw(encoded);
  ++packets_sent_;
  host_.send_broadcast(kPicoSipPort, kPicoSipPort, std::move(wire));
}

void PicoSipDirectory::on_packet(const net::Datagram& d) {
  BufferReader r(d.payload);
  auto ttl = r.u8();
  auto seq = r.u32();
  auto origin = r.u32();
  auto len = r.u16();
  if (!ttl || !seq || !origin || !len) return;
  if (net::Address{*origin} == host_.manet_address()) return;
  if (!seen_.insert({net::Address{*origin}, *seq}).second) return;
  auto encoded = r.raw(*len);
  if (!encoded) return;

  auto block = slp::decode_extension(*encoded, now());
  if (block) {
    for (const auto& e : block->advertisements) {
      const Key key{e.type, e.key};
      const auto it = table_.find(key);
      if (it == table_.end() || e.version >= it->second.version) {
        table_[key] = e;
        resolve_pending(e);
      }
    }
  }

  if (*ttl > 1) {
    Bytes wire;
    BufferWriter w(wire);
    w.u8(static_cast<std::uint8_t>(*ttl - 1));
    w.u32(*seq);
    w.u32(*origin);
    w.u16(static_cast<std::uint16_t>(encoded->size()));
    w.raw(*encoded);
    host_.sim().schedule(
        host_.rng().jitter(Duration::zero(), config_.forward_jitter),
        [this, wire = std::move(wire)]() mutable {
          ++packets_sent_;
          host_.send_broadcast(kPicoSipPort, kPicoSipPort, std::move(wire));
        });
  }
}

void PicoSipDirectory::resolve_pending(const slp::ServiceEntry& entry) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (entry.matches(it->type, it->key)) {
      it->timeout.cancel();
      auto cb = std::move(it->callback);
      it = pending_.erase(it);
      ++stats_.hits_remote;
      cb(entry);
    } else {
      ++it;
    }
  }
}

}  // namespace siphoc::baselines
