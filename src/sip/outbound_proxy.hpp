// A provider's dedicated outbound proxy (RFC 3261 stateless proxy).
//
// Some SIP providers -- the paper's polyphone.ethz.ch -- require clients to
// send all requests through a specific outbound proxy that is *not* the
// host the URI domain resolves to. This element models that box: it relays
// requests to a fixed next hop (the provider's registrar), adding its Via,
// and retraces responses. Registrars configured with
// `require_outbound_proxy` accept requests only from this element's
// address.
//
// It also powers the fix for the paper's open issue: the SIPHoc proxy can
// be provisioned with per-domain outbound-proxy endpoints
// (ProxyConfig::provider_outbound_proxies) and will relay through this box
// instead of the DNS-resolved registrar.
#pragma once

#include "common/logging.hpp"
#include "sip/transport.hpp"

namespace siphoc::sip {

struct OutboundProxyConfig {
  std::uint16_t port = 5060;
  net::Endpoint next_hop;  // the provider's registrar/proxy
};

class OutboundProxy {
 public:
  OutboundProxy(net::Host& host, OutboundProxyConfig config);

  struct OutboundProxyStats {
    std::uint64_t requests_relayed = 0;
    std::uint64_t responses_relayed = 0;
    std::uint64_t dropped = 0;
  };
  const OutboundProxyStats& stats() const { return stats_; }

 private:
  void on_message(Message message, net::Endpoint from);

  net::Host& host_;
  OutboundProxyConfig config_;
  Logger log_;
  Transport transport_;
  std::uint64_t branch_counter_ = 0;
  OutboundProxyStats stats_;
};

}  // namespace siphoc::sip
