// SIP user agent core: registration + call control (RFC 3261 UAC/UAS).
//
// This is the SIP engine of the "out-of-the-box VoIP application" (the
// paper's Kphone/Twinkle/Minisip role). It contains *no MANET-specific
// code*: like the paper's Figure 2 configuration, the only thing that
// points it at SIPHoc is `outbound_proxy = 127.0.0.1:5060` -- every request
// it originates is sent to that endpoint and everything else is standard
// SIP. Swap the outbound proxy for a provider address and the same agent
// works against a plain Internet registrar.
#pragma once

#include <map>
#include <vector>

#include "sim/simulator.hpp"
#include "sip/dialog.hpp"
#include "sip/sdp.hpp"
#include "sip/transaction.hpp"

namespace siphoc::sip {

struct UserAgentConfig {
  Uri aor;  // sip:alice@voicehoc.ch
  /// Digest-auth password for the account; empty = never answer 401s.
  std::string password;
  net::Endpoint outbound_proxy{net::kLoopbackAddress, 5060};
  std::uint16_t sip_port = 5070;
  std::uint16_t rtp_port = net::kRtpPortBase;
  Duration register_expires = seconds(3600);
  bool auto_answer = true;
  Duration answer_delay = milliseconds(200);  // ring time before answering
  /// Address advertised in SDP (media must be reachable end to end). Unset:
  /// the host's MANET address at call time.
  net::Address media_address;
};

using CallId = std::uint64_t;

/// Call lifecycle notifications (the softphone UI surface).
struct UserAgentCallbacks {
  std::function<void(CallId, const Uri& peer)> on_incoming;
  std::function<void(CallId)> on_ringing;
  std::function<void(CallId, net::Endpoint remote_rtp)> on_established;
  std::function<void(CallId, int status)> on_failed;
  std::function<void(CallId)> on_ended;
  std::function<void(bool ok, int status)> on_register_result;
  /// Pager-mode instant message received (RFC 3428 MESSAGE).
  std::function<void(const Uri& from, const std::string& text)> on_text;
};

class UserAgent {
 public:
  UserAgent(net::Host& host, UserAgentConfig config);
  ~UserAgent();

  void set_callbacks(UserAgentCallbacks callbacks) {
    callbacks_ = std::move(callbacks);
  }

  // --- registration -------------------------------------------------------
  /// Sends REGISTER via the outbound proxy; refreshes automatically.
  void start_registration();
  void stop_registration();
  bool registered() const { return registered_; }

  // --- calls --------------------------------------------------------------
  /// Initiates a call to an AOR ("sip:bob@voicehoc.ch"). Progress arrives
  /// through the callbacks.
  CallId invite(Uri target);
  void hangup(CallId call);
  /// Mid-call media update (re-INVITE): renegotiates the session with a new
  /// media address (e.g. the node gained a tunnel and must be reached at
  /// its Internet-visible address). on_established fires again with the
  /// peer's (possibly unchanged) RTP endpoint when the update completes.
  void reinvite(CallId call, net::Address new_media_address);
  /// Declines or terminates an unanswered incoming call.
  void reject(CallId call, int status = 486);
  /// Answers an incoming call now (when auto_answer is off).
  void answer(CallId call);

  // --- instant messaging (RFC 3428) ---------------------------------------
  /// Sends a pager-mode text to an AOR through the outbound proxy; the
  /// callback reports delivery (2xx) or failure status (408 on timeout).
  void send_text(Uri target, std::string text,
                 std::function<void(bool ok, int status)> callback = {});

  enum class CallState {
    kIdle,
    kInviting,    // UAC: INVITE sent
    kRinging,     // UAS: 180 sent / UAC: 180 received
    kEstablished,
    kEnded,
  };
  CallState call_state(CallId call) const;
  std::size_t active_calls() const;

  /// Per-call view for the invariant monitor: every started call must reach
  /// a terminal state (established, failed or ended) within the SIP timeout
  /// budget -- a call parked in kInviting/kRinging past 64*T1 is a black
  /// hole.
  struct CallSnapshot {
    CallId id = 0;
    CallState state = CallState::kIdle;
    TimePoint started{};
  };
  std::vector<CallSnapshot> call_snapshots() const;

  /// RTP endpoint this agent listens on for a given call.
  net::Endpoint local_rtp(CallId call) const;

  const UserAgentConfig& config() const { return config_; }
  net::Host& host() { return host_; }
  const TransactionLayer& transactions() const { return txn_; }

 private:
  struct Call {
    CallId id = 0;
    bool outgoing = false;
    CallState state = CallState::kIdle;
    TimePoint started{};  // when the INVITE was sent/received
    Dialog dialog;
    std::optional<Message> invite;             // UAS: pending request
    std::shared_ptr<ServerTransaction> server_txn;
    net::Endpoint remote_rtp;
    std::uint16_t local_rtp_port = 0;
    net::Address media_override;  // set by reinvite()
    sim::EventHandle answer_timer;
  };

  net::Address media_address() const;
  /// Contact host: loopback when sitting behind a localhost outbound proxy
  /// (the SIPHoc deployment), otherwise a routable host address (a phone
  /// registering directly with an Internet provider).
  net::Address contact_address() const;
  Message make_dialogless(std::string method, Uri request_uri);
  void send_register(std::uint32_t expires);
  void handle_request(std::shared_ptr<ServerTransaction> txn,
                      const Message& request);
  void handle_invite(std::shared_ptr<ServerTransaction> txn);
  void handle_reinvite(std::shared_ptr<ServerTransaction> txn, Call& call);
  void handle_bye(std::shared_ptr<ServerTransaction> txn,
                  const Message& request);
  void accept_call(CallId id);
  void on_invite_response(CallId id, const std::optional<Message>& response);
  Call* find_call(CallId id);
  Call* find_call_by_dialog(const Message& request);

  net::Host& host_;
  UserAgentConfig config_;
  Logger log_;
  Transport transport_;
  TransactionLayer txn_;
  UserAgentCallbacks callbacks_;

  bool registered_ = false;
  bool registering_ = false;
  sim::EventHandle register_refresh_;
  std::uint32_t register_cseq_ = 0;
  std::string register_call_id_;
  std::optional<std::string> register_challenge_;  // WWW-Authenticate value
  int auth_attempts_ = 0;

  std::map<CallId, Call> calls_;
  CallId next_call_id_ = 1;
  std::uint16_t next_rtp_port_;
};

}  // namespace siphoc::sip
