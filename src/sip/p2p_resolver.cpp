#include "sip/p2p_resolver.hpp"

#include <algorithm>
#include <charconv>

#include "common/bytes.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"

namespace siphoc::sip {

namespace {

/// Ring-hop count buckets: diameters stay in the single digits for any
/// ring this testbed builds, 16+ means the finger tables are broken.
constexpr double kHopBuckets[] = {1, 2, 3, 4, 6, 8, 12, 16};

/// Clockwise ring distance from `a` to `b` (unsigned wraparound).
std::uint64_t ring_distance(std::uint64_t a, std::uint64_t b) { return b - a; }

std::uint64_t parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  std::from_chars(text.data(), text.data() + text.size(), value);
  return value;
}

/// Splits one protocol line on single spaces.
std::vector<std::string_view> fields(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t space = line.find(' ', pos);
    if (space == std::string_view::npos) {
      out.push_back(line.substr(pos));
      break;
    }
    out.push_back(line.substr(pos, space - pos));
    pos = space + 1;
  }
  return out;
}

}  // namespace

P2pResolver::P2pResolver(net::Host& host, P2pConfig config)
    : host_(host),
      config_(config),
      log_("p2p", host.name()),
      node_id_(id_of({host.wired_address(), config.port})) {
  host_.bind(config_.port, [this](const net::Datagram& d, const net::RxInfo&) {
    on_datagram(d);
  });
  // Replicated records expire like any binding; sweep them on a coarse
  // cadence (no jitter: determinism).
  gc_.start(host_.sim(), seconds(5),
            [this] { records_.purge_expired(host_.sim().now()); });
}

P2pResolver::~P2pResolver() {
  gc_.stop();
  host_.unbind(config_.port);
}

net::Endpoint P2pResolver::endpoint() const {
  return {host_.wired_address(), config_.port};
}

std::uint64_t P2pResolver::id_of(net::Endpoint endpoint) {
  return hash_aor(endpoint.to_string());
}

Counter& P2pResolver::counter(const std::string& name) {
  return host_.sim().ctx().metrics().counter(name, host_.name(), "p2p");
}

void P2pResolver::join(const std::vector<net::Endpoint>& members) {
  std::vector<RingNode> ring;
  ring.reserve(members.size());
  for (const auto& ep : members) ring.push_back({id_of(ep), ep});
  std::sort(ring.begin(), ring.end());
  ring.erase(std::unique(ring.begin(), ring.end(),
                         [](const RingNode& a, const RingNode& b) {
                           return a.id == b.id;
                         }),
             ring.end());

  const auto self = std::find_if(
      ring.begin(), ring.end(),
      [this](const RingNode& n) { return n.id == node_id_; });
  if (self == ring.end()) {
    log_.warn("join(): own endpoint missing from membership");
    return;
  }
  const std::size_t self_index =
      static_cast<std::size_t>(self - ring.begin());
  const std::size_t n = ring.size();

  predecessor_id_ = ring[(self_index + n - 1) % n].id;

  successors_.clear();
  for (std::size_t k = 1; k <= config_.successor_count && k < n; ++k) {
    successors_.push_back(ring[(self_index + k) % n]);
  }

  // Finger k = successor(node_id + 2^k) over the full membership. Dedup:
  // small rings collapse most fingers onto the immediate successor.
  fingers_.clear();
  for (std::uint32_t k = 0; k < 64; ++k) {
    const std::uint64_t target = node_id_ + (1ull << k);
    auto it = std::lower_bound(ring.begin(), ring.end(), RingNode{target, {}});
    if (it == ring.end()) it = ring.begin();
    if (it->id == node_id_) continue;
    fingers_.push_back(*it);
  }
  std::sort(fingers_.begin(), fingers_.end());
  fingers_.erase(std::unique(fingers_.begin(), fingers_.end(),
                             [](const RingNode& a, const RingNode& b) {
                               return a.id == b.id;
                             }),
                 fingers_.end());
  log_.info("joined ring: ", n, " nodes, ", fingers_.size(), " fingers, ",
            successors_.size(), " successors");
}

bool P2pResolver::responsible_for(std::uint64_t key) const {
  if (predecessor_id_ == node_id_ || fingers_.empty()) return true;  // alone
  // Arc (pred, self], allowing for wraparound.
  return ring_distance(predecessor_id_, key) <=
         ring_distance(predecessor_id_, node_id_);
}

const P2pResolver::RingNode* P2pResolver::next_hop(std::uint64_t key) const {
  const std::uint64_t key_distance = ring_distance(node_id_, key);
  const RingNode* best = nullptr;
  std::uint64_t best_distance = 0;
  for (const RingNode& finger : fingers_) {
    const std::uint64_t d = ring_distance(node_id_, finger.id);
    if (d != 0 && d <= key_distance && d >= best_distance) {
      best = &finger;
      best_distance = d;
    }
  }
  if (best == nullptr && !successors_.empty()) best = &successors_.front();
  return best;
}

void P2pResolver::send_line(net::Endpoint dst, const std::string& line) {
  host_.send_udp(config_.port, dst, to_bytes(line));
}

void P2pResolver::store_record(const std::string& aor, const Uri& contact,
                               TimePoint expires, bool replicate) {
  records_.upsert(aor, contact, expires);
  counter("p2p.records_stored_total").add();
  host_.sim().ctx().metrics()
      .gauge("p2p.records", host_.name(), "p2p")
      .set(static_cast<double>(records_.size()));
  if (!replicate) return;
  const std::string line =
      "REP " + aor + " " +
      std::to_string(expires.time_since_epoch().count()) + " " +
      contact.to_string();
  for (const RingNode& succ : successors_) send_line(succ.endpoint, line);
}

void P2pResolver::publish(const std::string& aor, const Uri& contact,
                          TimePoint expires) {
  counter("p2p.puts_total").add();
  const std::uint64_t key = hash_aor(aor);
  if (responsible_for(key)) {
    store_record(aor, contact, expires, /*replicate=*/true);
    return;
  }
  const RingNode* hop = next_hop(key);
  if (hop == nullptr) return;
  send_line(hop->endpoint,
            "PUT " + aor + " " +
                std::to_string(expires.time_since_epoch().count()) + " " +
                contact.to_string());
}

void P2pResolver::unpublish(const std::string& aor) {
  const std::uint64_t key = hash_aor(aor);
  if (responsible_for(key)) {
    records_.erase(aor);
    for (const RingNode& succ : successors_) {
      send_line(succ.endpoint, "RDEL " + aor);
    }
    return;
  }
  if (const RingNode* hop = next_hop(key)) {
    send_line(hop->endpoint, "DEL " + aor);
  }
}

void P2pResolver::resolve(const std::string& aor, ResolveCallback callback) {
  counter("p2p.lookups_total").add();
  const std::uint64_t key = hash_aor(aor);
  auto& metrics = host_.sim().ctx().metrics();
  if (responsible_for(key)) {
    // Zero-hop answer, still asynchronous so callers see one shape.
    auto binding = records_.lookup(aor, host_.sim().now());
    metrics.histogram("p2p.lookup_hops", kHopBuckets, host_.name(), "p2p")
        .observe(0);
    if (!binding) counter("p2p.misses_total").add();
    host_.sim().schedule(Duration::zero(),
                         [callback = std::move(callback),
                          binding = std::move(binding)]() mutable {
                           callback(std::move(binding), 0);
                         });
    return;
  }

  const std::uint64_t request = ++next_request_;
  Pending pending;
  pending.callback = std::move(callback);
  pending.started = host_.sim().now();
  pending.timeout =
      host_.sim().schedule(config_.lookup_timeout, [this, request] {
        const auto it = pending_.find(request);
        if (it == pending_.end()) return;
        auto cb = std::move(it->second.callback);
        pending_.erase(it);
        counter("p2p.timeouts_total").add();
        cb(std::nullopt, -1);
      });
  pending_.emplace(request, std::move(pending));

  const RingNode* hop = next_hop(key);
  send_line(hop->endpoint, "GET " + std::to_string(request) + " " +
                               endpoint().to_string() + " 1 " + aor);
}

void P2pResolver::on_datagram(const net::Datagram& datagram) {
  const std::string line = to_string(datagram.payload);
  const std::size_t space = line.find(' ');
  if (space == std::string::npos) return;
  const std::string_view verb(line.data(), space);
  const std::string_view rest(line.data() + space + 1,
                              line.size() - space - 1);
  if (verb == "PUT" || verb == "REP") {
    const auto f = fields(rest);
    if (f.size() < 3) return;
    const std::string aor(f[0]);
    const TimePoint expires{
        Duration(static_cast<Duration::rep>(parse_u64(f[1])))};
    const auto contact = Uri::parse(f[2]);
    if (!contact) return;
    if (verb == "REP") {
      records_.upsert(aor, *contact, expires);
      return;
    }
    const std::uint64_t key = hash_aor(aor);
    if (responsible_for(key)) {
      store_record(aor, *contact, expires, /*replicate=*/true);
    } else if (const RingNode* hop = next_hop(key)) {
      counter("p2p.forwards_total").add();
      send_line(hop->endpoint, line);
    }
  } else if (verb == "GET") {
    handle_get(rest);
  } else if (verb == "RES") {
    handle_result(rest);
  } else if (verb == "DEL" || verb == "RDEL") {
    const std::string aor(rest);
    const std::uint64_t key = hash_aor(aor);
    if (verb == "RDEL" || responsible_for(key)) {
      records_.erase(aor);
      if (verb == "DEL") {
        for (const RingNode& succ : successors_) {
          send_line(succ.endpoint, "RDEL " + aor);
        }
      }
    } else if (const RingNode* hop = next_hop(key)) {
      send_line(hop->endpoint, line);
    }
  }
}

void P2pResolver::handle_get(std::string_view rest) {
  const auto f = fields(rest);
  if (f.size() < 4) return;
  const std::uint64_t request = parse_u64(f[0]);
  const auto origin = net::Endpoint::parse(f[1]);
  const int hops = static_cast<int>(parse_u64(f[2]));
  const std::string aor(f[3]);
  if (!origin) return;

  const std::uint64_t key = hash_aor(aor);
  if (!responsible_for(key)) {
    if (const RingNode* hop = next_hop(key)) {
      counter("p2p.forwards_total").add();
      send_line(hop->endpoint, "GET " + std::to_string(request) + " " +
                                   std::string(f[1]) + " " +
                                   std::to_string(hops + 1) + " " + aor);
    }
    return;
  }
  const auto binding = records_.lookup(aor, host_.sim().now());
  std::string reply = "RES " + std::to_string(request) + " " +
                      std::to_string(hops) + " ";
  if (binding) {
    reply += "found " +
             std::to_string(binding->expires.time_since_epoch().count()) +
             " " + binding->contact.to_string();
  } else {
    reply += "miss";
  }
  send_line(*origin, reply);
}

void P2pResolver::handle_result(std::string_view rest) {
  const auto f = fields(rest);
  if (f.size() < 3) return;
  const std::uint64_t request = parse_u64(f[0]);
  const int hops = static_cast<int>(parse_u64(f[1]));
  const auto it = pending_.find(request);
  if (it == pending_.end()) return;  // late answer after timeout
  Pending pending = std::move(it->second);
  pending_.erase(it);
  pending.timeout.cancel();

  auto& metrics = host_.sim().ctx().metrics();
  metrics.histogram("p2p.lookup_hops", kHopBuckets, host_.name(), "p2p")
      .observe(hops);
  metrics
      .histogram("p2p.resolve_ms", kLatencyBucketsMs, host_.name(), "p2p")
      .observe(to_millis(host_.sim().now() - pending.started));

  std::optional<ContactBinding> binding;
  if (f[2] == "found" && f.size() >= 5) {
    const TimePoint expires{
        Duration(static_cast<Duration::rep>(parse_u64(f[3])))};
    if (const auto contact = Uri::parse(f[4])) {
      binding = ContactBinding{*contact, expires};
    }
  }
  if (!binding) counter("p2p.misses_total").add();
  pending.callback(std::move(binding), hops);
}

}  // namespace siphoc::sip
