#include "sip/p2p_resolver.hpp"

#include <algorithm>
#include <charconv>

#include "common/bytes.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"

namespace siphoc::sip {

namespace {

/// Ring-hop count buckets: diameters stay in the single digits for any
/// ring this testbed builds, 16+ means the finger tables are broken.
constexpr double kHopBuckets[] = {1, 2, 3, 4, 6, 8, 12, 16};

/// Clockwise ring distance from `a` to `b` (unsigned wraparound).
std::uint64_t ring_distance(std::uint64_t a, std::uint64_t b) { return b - a; }

std::uint64_t parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  std::from_chars(text.data(), text.data() + text.size(), value);
  return value;
}

/// Splits one protocol line on single spaces.
std::vector<std::string_view> fields(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    const std::size_t space = line.find(' ', pos);
    if (space == std::string_view::npos) {
      out.push_back(line.substr(pos));
      break;
    }
    out.push_back(line.substr(pos, space - pos));
    pos = space + 1;
  }
  return out;
}

}  // namespace

P2pResolver::P2pResolver(net::Host& host, P2pConfig config)
    : host_(host),
      config_(config),
      log_("p2p", host.name()),
      node_id_(id_of({host.wired_address(), config.port})) {
  host_.bind(config_.port, [this](const net::Datagram& d, const net::RxInfo&) {
    on_datagram(d);
  });
  // Replicated records expire like any binding; sweep them on a coarse
  // cadence (no jitter: determinism).
  gc_.start(host_.sim(), seconds(5),
            [this] { records_.purge_expired(host_.sim().now()); });
  // Stabilization: successor probing, failure repair, finger fixing. Zero
  // jitter for the same reason; a singleton view makes the tick a no-op.
  maintenance_.start(host_.sim(), config_.stabilize_interval,
                     [this] { on_stabilize_tick(); });
}

P2pResolver::~P2pResolver() {
  gc_.stop();
  maintenance_.stop();
  // Cancel every in-flight resolve's timers: the closures capture `this`
  // and must never fire into a destroyed resolver (ring-node crashes
  // destroy resolvers mid-run).
  for (auto& [request, pending] : pending_) {
    pending.deadline.cancel();
    pending.retry.cancel();
  }
  pending_.clear();
  host_.unbind(config_.port);
}

net::Endpoint P2pResolver::endpoint() const {
  return {host_.wired_address(), config_.port};
}

std::uint64_t P2pResolver::id_of(net::Endpoint endpoint) {
  return hash_aor(endpoint.to_string());
}

Counter& P2pResolver::counter(const std::string& name) {
  return host_.sim().ctx().metrics().counter(name, host_.name(), "p2p");
}

void P2pResolver::count_decode_error() {
  counter("p2p.decode_errors_total").add();
}

// ---------------------------------------------------------------------------
// Membership
// ---------------------------------------------------------------------------

void P2pResolver::join(const std::vector<net::Endpoint>& members) {
  std::vector<RingNode> ring;
  ring.reserve(members.size());
  for (const auto& ep : members) ring.push_back({id_of(ep), ep});
  std::sort(ring.begin(), ring.end());
  ring.erase(std::unique(ring.begin(), ring.end(),
                         [](const RingNode& a, const RingNode& b) {
                           return a.id == b.id;
                         }),
             ring.end());
  const bool self_present = std::any_of(
      ring.begin(), ring.end(),
      [this](const RingNode& n) { return n.id == node_id_; });
  if (!self_present) {
    log_.warn("join(): own endpoint missing from membership");
    return;
  }
  view_ = std::move(ring);
  left_ = false;
  suspects_.clear();
  probe_misses_.clear();
  last_view_change_ = host_.sim().now();
  rebuild_routes();
  log_.info("joined ring: ", view_.size(), " nodes, ", fingers_.size(),
            " fingers, ", successors_.size(), " successors");
}

void P2pResolver::join_ring(net::Endpoint bootstrap) {
  view_ = {{node_id_, endpoint()}};
  left_ = false;
  suspects_.clear();
  probe_misses_.clear();
  last_view_change_ = host_.sim().now();
  rebuild_routes();
  send_line(bootstrap, "JOIN " + endpoint().to_string());
  log_.info("joining ring via ", bootstrap.to_string());
}

void P2pResolver::leave() {
  if (view_.size() <= 1) return;
  // Departure first: by the time the handoff PUTs arrive, peers have
  // removed us and route keys in our old arc to our ex-successor (the
  // LEAVE and the PUTs ride the same FIFO wire to that successor).
  broadcast("LEAVE " + endpoint().to_string());
  const net::Endpoint heir = successors_.empty() ? net::Endpoint{}
                                                 : successors_.front().endpoint;
  const TimePoint now = host_.sim().now();
  std::vector<std::pair<std::string, ContactBinding>> held;
  records_.for_each([&](const std::string& aor, const ContactBinding& b) {
    if (b.expires > now) held.emplace_back(aor, b);
  });
  for (const auto& [aor, binding] : held) {
    if (heir.address.is_unspecified()) break;
    send_line(heir, "PUT " + aor + " " +
                        std::to_string(
                            binding.expires.time_since_epoch().count()) +
                        " " + binding.contact.to_string());
    counter("p2p.stabilize_handoffs_total").add();
  }
  log_.info("leaving ring, handed off ", held.size(), " records");
  view_ = {{node_id_, endpoint()}};
  left_ = true;
  probe_misses_.clear();
  last_view_change_ = now;
  rebuild_routes();
}

void P2pResolver::rebuild_routes() {
  host_.sim().ctx().metrics()
      .gauge("p2p.membership", host_.name(), "p2p")
      .set(static_cast<double>(view_.size()));
  if (view_.size() <= 1) {
    predecessor_id_ = node_id_;
    successors_.clear();
    fingers_.clear();
    return;
  }
  const auto self = std::find_if(
      view_.begin(), view_.end(),
      [this](const RingNode& n) { return n.id == node_id_; });
  const std::size_t self_index =
      static_cast<std::size_t>(self - view_.begin());
  const std::size_t n = view_.size();

  predecessor_id_ = view_[(self_index + n - 1) % n].id;

  successors_.clear();
  for (std::size_t k = 1; k <= config_.successor_count && k < n; ++k) {
    successors_.push_back(view_[(self_index + k) % n]);
  }

  // Finger k = successor(node_id + 2^k) over the full membership. Dedup:
  // small rings collapse most fingers onto the immediate successor.
  fingers_.clear();
  for (std::uint32_t k = 0; k < 64; ++k) {
    const std::uint64_t target = node_id_ + (1ull << k);
    auto it =
        std::lower_bound(view_.begin(), view_.end(), RingNode{target, {}});
    if (it == view_.end()) it = view_.begin();
    if (it->id == node_id_) continue;
    fingers_.push_back(*it);
  }
  std::sort(fingers_.begin(), fingers_.end());
  fingers_.erase(std::unique(fingers_.begin(), fingers_.end(),
                             [](const RingNode& a, const RingNode& b) {
                               return a.id == b.id;
                             }),
                 fingers_.end());
}

bool P2pResolver::add_member(net::Endpoint ep) {
  if (left_) return false;  // a departed node stays out until it rejoins
  const std::uint64_t id = id_of(ep);
  if (id == node_id_) return false;
  const auto it = std::lower_bound(view_.begin(), view_.end(),
                                   RingNode{id, {}});
  if (it != view_.end() && it->id == id) return false;
  view_.insert(it, {id, ep});
  suspects_.erase(id);
  probe_misses_.erase(id);
  last_view_change_ = host_.sim().now();
  rebuild_routes();
  sync_records();
  return true;
}

bool P2pResolver::remove_member(std::uint64_t id) {
  if (id == node_id_) return false;
  const auto it = std::lower_bound(view_.begin(), view_.end(),
                                   RingNode{id, {}});
  if (it == view_.end() || it->id != id) return false;
  view_.erase(it);
  probe_misses_.erase(id);
  last_view_change_ = host_.sim().now();
  rebuild_routes();
  sync_records();
  return true;
}

void P2pResolver::sync_records() {
  // Re-home everything we hold against the *new* arcs: owned records get
  // their replicas refreshed; records we merely replicate are PUT back
  // into the ring so the (possibly new) owner stores them. PUT/REP are
  // idempotent upserts, so convergence is safe to repeat.
  const TimePoint now = host_.sim().now();
  std::vector<std::pair<std::string, ContactBinding>> held;
  records_.for_each([&](const std::string& aor, const ContactBinding& b) {
    if (b.expires > now) held.emplace_back(aor, b);
  });
  for (const auto& [aor, binding] : held) {
    const std::string expires_contact =
        std::to_string(binding.expires.time_since_epoch().count()) + " " +
        binding.contact.to_string();
    if (responsible_for(hash_aor(aor))) {
      for (const RingNode& succ : successors_) {
        send_line(succ.endpoint, "REP " + aor + " " + expires_contact);
      }
    } else if (const RingNode* hop = next_hop(hash_aor(aor))) {
      send_line(hop->endpoint, "PUT " + aor + " " + expires_contact);
    }
    counter("p2p.stabilize_handoffs_total").add();
  }
}

void P2pResolver::broadcast(const std::string& line) {
  for (const RingNode& member : view_) {
    if (member.id == node_id_) continue;
    send_line(member.endpoint, line);
  }
}

void P2pResolver::purge_suspects() {
  const TimePoint now = host_.sim().now();
  for (auto it = suspects_.begin(); it != suspects_.end();) {
    it = it->second <= now ? suspects_.erase(it) : std::next(it);
  }
}

void P2pResolver::on_stabilize_tick() {
  if (view_.size() <= 1) return;
  counter("p2p.stabilize_ticks_total").add();
  purge_suspects();

  // Probes sent on earlier ticks that went unanswered: past the tolerance
  // the successor is dead -- repair the view, tell the ring, re-replicate.
  std::vector<RingNode> dead;
  for (const RingNode& succ : successors_) {
    const auto it = probe_misses_.find(succ.id);
    if (it != probe_misses_.end() && it->second >= config_.probe_tolerance) {
      dead.push_back(succ);
    }
  }
  for (const RingNode& node : dead) declare_dead(node);

  // Probe the (repaired) successor list; PONG clears the miss counter.
  const std::string self_ep = endpoint().to_string();
  for (const RingNode& succ : successors_) {
    ++probe_misses_[succ.id];
    send_line(succ.endpoint,
              "PING " + std::to_string(++next_request_) + " " + self_ep);
    counter("p2p.stabilize_probes_total").add();
  }

  // Finger fixing: recompute the table from the current view.
  rebuild_routes();
}

void P2pResolver::declare_dead(const RingNode& node) {
  counter("p2p.stabilize_failures_total").add();
  suspects_[node.id] = host_.sim().now() + config_.suspect_ttl;
  log_.info("successor ", node.endpoint.to_string(),
            " stopped answering probes; repairing ring");
  remove_member(node.id);
  broadcast("DEAD " + node.endpoint.to_string());
}

bool P2pResolver::stable() const {
  return suspects_.empty() &&
         host_.sim().now() - last_view_change_ >= config_.stabilize_interval;
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

bool P2pResolver::responsible_for(std::uint64_t key) const {
  if (predecessor_id_ == node_id_ || view_.size() <= 1) return true;  // alone
  // Arc (pred, self], allowing for wraparound.
  return ring_distance(predecessor_id_, key) <=
         ring_distance(predecessor_id_, node_id_);
}

const P2pResolver::RingNode* P2pResolver::next_hop(std::uint64_t key) const {
  const std::uint64_t key_distance = ring_distance(node_id_, key);
  const auto suspect = [this](std::uint64_t id) {
    return suspects_.count(id) != 0;
  };
  const RingNode* best = nullptr;
  std::uint64_t best_distance = 0;
  for (const RingNode& finger : fingers_) {
    if (suspect(finger.id)) continue;
    const std::uint64_t d = ring_distance(node_id_, finger.id);
    if (d != 0 && d <= key_distance && d >= best_distance) {
      best = &finger;
      best_distance = d;
    }
  }
  if (best == nullptr) {
    for (const RingNode& succ : successors_) {
      if (!suspect(succ.id)) return &succ;
    }
    // Everyone is under suspicion: trying a suspect beats dropping.
    if (!successors_.empty()) return &successors_.front();
  }
  return best;
}

const P2pResolver::RingNode* P2pResolver::retry_hop(
    std::uint64_t key, const std::vector<std::uint64_t>& tried) const {
  const auto excluded = [&](std::uint64_t id) {
    return std::find(tried.begin(), tried.end(), id) != tried.end();
  };
  const auto suspect = [this](std::uint64_t id) {
    return suspects_.count(id) != 0;
  };
  // First attempt: greedy finger routing, same as a forwarded GET (this is
  // what the hop histogram measures).
  if (tried.empty()) return next_hop(key);
  // Retries skip the greedy path entirely and aim straight at the owner
  // arc: successor(key) stores the record and its `successor_count`
  // successors replicate it, and any holder answers a GET from its local
  // store. Greedy retries would re-converge on the same dead predecessor;
  // walking the holder chain instead leaves a live candidate for any
  // single ring-node loss.
  const auto owner = std::lower_bound(view_.begin(), view_.end(),
                                      RingNode{key, {}});
  const std::size_t n = view_.size();
  if (n > 1) {
    const std::size_t owner_index = static_cast<std::size_t>(
        (owner == view_.end() ? view_.begin() : owner) - view_.begin());
    for (std::size_t i = 0; i <= config_.successor_count && i < n; ++i) {
      const RingNode& holder = view_[(owner_index + i) % n];
      if (holder.id == node_id_ || excluded(holder.id) ||
          suspect(holder.id)) {
        continue;
      }
      return &holder;
    }
  }
  for (const RingNode& succ : successors_) {
    if (!excluded(succ.id) && !suspect(succ.id)) return &succ;
  }
  // Last resort: any untried member, suspicion notwithstanding.
  for (const RingNode& member : view_) {
    if (member.id != node_id_ && !excluded(member.id)) return &member;
  }
  return nullptr;
}

void P2pResolver::send_line(net::Endpoint dst, const std::string& line) {
  host_.send_udp(config_.port, dst, to_bytes(line));
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

void P2pResolver::store_record(const std::string& aor, const Uri& contact,
                               TimePoint expires, bool replicate) {
  records_.upsert(aor, contact, expires);
  counter("p2p.records_stored_total").add();
  host_.sim().ctx().metrics()
      .gauge("p2p.records", host_.name(), "p2p")
      .set(static_cast<double>(records_.size()));
  if (!replicate) return;
  const std::string line =
      "REP " + aor + " " +
      std::to_string(expires.time_since_epoch().count()) + " " +
      contact.to_string();
  for (const RingNode& succ : successors_) send_line(succ.endpoint, line);
}

void P2pResolver::publish(const std::string& aor, const Uri& contact,
                          TimePoint expires) {
  counter("p2p.puts_total").add();
  const std::uint64_t key = hash_aor(aor);
  if (responsible_for(key)) {
    store_record(aor, contact, expires, /*replicate=*/true);
    return;
  }
  const RingNode* hop = next_hop(key);
  if (hop == nullptr) return;
  send_line(hop->endpoint,
            "PUT " + aor + " " +
                std::to_string(expires.time_since_epoch().count()) + " " +
                contact.to_string());
}

void P2pResolver::unpublish(const std::string& aor) {
  const std::uint64_t key = hash_aor(aor);
  if (responsible_for(key)) {
    records_.erase(aor);
    for (const RingNode& succ : successors_) {
      send_line(succ.endpoint, "RDEL " + aor);
    }
    return;
  }
  if (const RingNode* hop = next_hop(key)) {
    send_line(hop->endpoint, "DEL " + aor);
  }
}

// ---------------------------------------------------------------------------
// Resolution with per-hop retry
// ---------------------------------------------------------------------------

void P2pResolver::resolve(const std::string& aor, ResolveCallback callback) {
  counter("p2p.lookups_total").add();
  const std::uint64_t key = hash_aor(aor);
  auto& metrics = host_.sim().ctx().metrics();
  if (responsible_for(key)) {
    // Zero-hop answer, still asynchronous so callers see one shape.
    auto binding = records_.lookup(aor, host_.sim().now());
    metrics.histogram("p2p.lookup_hops", kHopBuckets, host_.name(), "p2p")
        .observe(0);
    if (!binding) counter("p2p.misses_total").add();
    host_.sim().schedule(Duration::zero(),
                         [callback = std::move(callback),
                          binding = std::move(binding)]() mutable {
                           callback(std::move(binding), 0);
                         });
    return;
  }
  if (pending_.size() >= config_.max_pending) {
    counter("p2p.resolve_dropped_total").add();
    host_.sim().schedule(Duration::zero(),
                         [callback = std::move(callback)]() mutable {
                           callback(std::nullopt, -1);
                         });
    return;
  }

  const std::uint64_t request = ++next_request_;
  Pending pending;
  pending.callback = std::move(callback);
  pending.started = host_.sim().now();
  pending.aor = aor;
  pending.key = key;
  pending.deadline =
      host_.sim().schedule(config_.lookup_timeout, [this, request] {
        const auto it = pending_.find(request);
        if (it == pending_.end()) return;
        counter("p2p.timeouts_total").add();
        finish(request, std::nullopt, -1);
      });
  pending_.emplace(request, std::move(pending));
  send_attempt(request);
}

void P2pResolver::send_attempt(std::uint64_t request) {
  const auto it = pending_.find(request);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  const RingNode* hop = retry_hop(pending.key, pending.tried);
  if (hop == nullptr) {
    // Every candidate tried. A replica we hold ourselves still counts as
    // an answer; otherwise the lookup is out of road.
    auto binding = records_.lookup(pending.aor, host_.sim().now());
    if (!binding) counter("p2p.retry_exhausted_total").add();
    finish(request, std::move(binding), pending.attempts);
    return;
  }
  pending.tried.push_back(hop->id);
  ++pending.attempts;
  send_line(hop->endpoint, "GET " + std::to_string(request) + " " +
                               endpoint().to_string() + " 1 " + pending.aor);
  if (pending.attempts <= config_.retry_max) {
    // Exponential per-attempt backoff: 1x, 2x, 4x ... of retry_initial.
    const Duration delay = config_.retry_initial *
                           (1ll << (pending.attempts - 1));
    pending.retry = host_.sim().schedule(
        delay, [this, request] { on_retry(request); });
  }
}

void P2pResolver::on_retry(std::uint64_t request) {
  const auto it = pending_.find(request);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  // The hop we tried never produced an answer: suspect it and go around.
  if (!pending.tried.empty()) {
    suspects_[pending.tried.back()] =
        host_.sim().now() + config_.suspect_ttl;
  }
  counter("p2p.retry_attempts_total").add();
  send_attempt(request);
}

void P2pResolver::finish(std::uint64_t request,
                         std::optional<ContactBinding> binding, int hops) {
  const auto it = pending_.find(request);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  pending_.erase(it);
  pending.deadline.cancel();
  pending.retry.cancel();

  auto& metrics = host_.sim().ctx().metrics();
  if (hops >= 0) {
    metrics.histogram("p2p.lookup_hops", kHopBuckets, host_.name(), "p2p")
        .observe(hops);
    metrics
        .histogram("p2p.resolve_ms", kLatencyBucketsMs, host_.name(), "p2p")
        .observe(to_millis(host_.sim().now() - pending.started));
    if (!binding) counter("p2p.misses_total").add();
  }
  pending.callback(std::move(binding), hops);
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

void P2pResolver::on_datagram(const net::Datagram& datagram) {
  // Traffic from a suspect proves it alive again.
  suspects_.erase(id_of({datagram.src, datagram.src_port}));

  const std::string line = to_string(datagram.payload);
  const std::size_t space = line.find(' ');
  if (space == std::string::npos) {
    count_decode_error();
    return;
  }
  const std::string_view verb(line.data(), space);
  const std::string_view rest(line.data() + space + 1,
                              line.size() - space - 1);
  if (verb == "PUT" || verb == "REP") {
    handle_put(verb, rest);
  } else if (verb == "GET") {
    handle_get(rest);
  } else if (verb == "RES") {
    handle_result(rest);
  } else if (verb == "DEL" || verb == "RDEL") {
    if (rest.empty()) {
      count_decode_error();
      return;
    }
    const std::string aor(rest);
    const std::uint64_t key = hash_aor(aor);
    if (verb == "RDEL" || responsible_for(key)) {
      records_.erase(aor);
      if (verb == "DEL") {
        for (const RingNode& succ : successors_) {
          send_line(succ.endpoint, "RDEL " + aor);
        }
      }
    } else if (const RingNode* hop = next_hop(key)) {
      send_line(hop->endpoint, line);
    }
  } else if (verb == "JOIN" || verb == "JOINED" || verb == "LEAVE" ||
             verb == "DEAD" || verb == "MEMB" || verb == "PING" ||
             verb == "PONG") {
    handle_control(verb, rest);
  } else {
    count_decode_error();
  }
}

void P2pResolver::handle_put(std::string_view verb, std::string_view rest) {
  const auto f = fields(rest);
  if (f.size() < 3) {
    count_decode_error();
    return;
  }
  const std::string aor(f[0]);
  const TimePoint expires{
      Duration(static_cast<Duration::rep>(parse_u64(f[1])))};
  const auto contact = Uri::parse(f[2]);
  if (!contact) {
    count_decode_error();
    return;
  }
  if (verb == "REP") {
    records_.upsert(aor, *contact, expires);
    return;
  }
  const std::uint64_t key = hash_aor(aor);
  if (responsible_for(key)) {
    store_record(aor, *contact, expires, /*replicate=*/true);
  } else if (const RingNode* hop = next_hop(key)) {
    counter("p2p.forwards_total").add();
    send_line(hop->endpoint, "PUT " + aor + " " + std::string(f[1]) + " " +
                                 std::string(f[2]));
  }
}

void P2pResolver::handle_get(std::string_view rest) {
  const auto f = fields(rest);
  if (f.size() < 4) {
    count_decode_error();
    return;
  }
  const std::uint64_t request = parse_u64(f[0]);
  const auto origin = net::Endpoint::parse(f[1]);
  const int hops = static_cast<int>(parse_u64(f[2]));
  const std::string aor(f[3]);
  if (!origin) {
    count_decode_error();
    return;
  }

  const std::uint64_t key = hash_aor(aor);
  // Any live holder answers -- replicas included. That is what lets a
  // lookup survive the owner's crash before stabilization promotes the
  // replica to owner.
  const auto binding = records_.lookup(aor, host_.sim().now());
  if (!binding && !responsible_for(key)) {
    if (hops >= config_.max_hops) {
      counter("p2p.ttl_drops_total").add();
      return;
    }
    if (const RingNode* hop = next_hop(key)) {
      counter("p2p.forwards_total").add();
      send_line(hop->endpoint, "GET " + std::to_string(request) + " " +
                                   std::string(f[1]) + " " +
                                   std::to_string(hops + 1) + " " + aor);
    }
    return;
  }
  std::string reply = "RES " + std::to_string(request) + " " +
                      std::to_string(hops) + " ";
  if (binding) {
    reply += "found " +
             std::to_string(binding->expires.time_since_epoch().count()) +
             " " + binding->contact.to_string();
  } else {
    reply += "miss";
  }
  send_line(*origin, reply);
}

void P2pResolver::handle_result(std::string_view rest) {
  const auto f = fields(rest);
  if (f.size() < 3) {
    count_decode_error();
    return;
  }
  const std::uint64_t request = parse_u64(f[0]);
  const int hops = static_cast<int>(parse_u64(f[1]));
  if (pending_.find(request) == pending_.end()) return;  // late duplicate

  std::optional<ContactBinding> binding;
  if (f[2] == "found") {
    if (f.size() < 5) {
      count_decode_error();
      return;
    }
    const TimePoint expires{
        Duration(static_cast<Duration::rep>(parse_u64(f[3])))};
    const auto contact = Uri::parse(f[4]);
    if (!contact) {
      count_decode_error();
      return;
    }
    binding = ContactBinding{*contact, expires};
  } else if (f[2] != "miss") {
    count_decode_error();
    return;
  }
  finish(request, std::move(binding), hops);
}

void P2pResolver::handle_control(std::string_view verb,
                                 std::string_view rest) {
  const auto f = fields(rest);
  if (verb == "PING") {
    if (f.size() < 2) {
      count_decode_error();
      return;
    }
    const auto origin = net::Endpoint::parse(f[1]);
    if (!origin) {
      count_decode_error();
      return;
    }
    // A probe from a node our view evicted (false suspicion, or we missed
    // its rejoin broadcast): it is demonstrably alive -- take it back.
    add_member(*origin);
    send_line(*origin, "PONG " + std::string(f[0]) + " " +
                           endpoint().to_string());
    return;
  }
  if (verb == "PONG") {
    if (f.size() < 2) {
      count_decode_error();
      return;
    }
    const auto from = net::Endpoint::parse(f[1]);
    if (!from) {
      count_decode_error();
      return;
    }
    probe_misses_.erase(id_of(*from));
    return;
  }
  if (verb == "MEMB") {
    bool any = false;
    for (const auto& token : f) {
      const auto ep = net::Endpoint::parse(token);
      if (!ep) {
        count_decode_error();
        continue;
      }
      any = add_member(*ep) || any;
    }
    if (any) log_.info("installed membership: ", view_.size(), " nodes");
    return;
  }
  // JOIN / JOINED / LEAVE / DEAD all carry exactly one endpoint.
  if (f.size() != 1) {
    count_decode_error();
    return;
  }
  const auto ep = net::Endpoint::parse(f[0]);
  if (!ep) {
    count_decode_error();
    return;
  }
  if (verb == "JOIN") {
    add_member(*ep);
    // Hand the joiner the full membership (it answers with nothing; the
    // broadcast below brings everyone else up to date).
    std::string memb = "MEMB";
    for (const RingNode& member : view_) {
      memb += " " + member.endpoint.to_string();
    }
    send_line(*ep, memb);
    broadcast("JOINED " + ep->to_string());
    return;
  }
  if (verb == "JOINED") {
    add_member(*ep);
    return;
  }
  if (verb == "LEAVE") {
    remove_member(id_of(*ep));
    return;
  }
  // DEAD: a peer's probes to `ep` went unanswered. If that is us, the
  // report is wrong by construction -- re-announce instead of vanishing
  // (unless we really did leave).
  if (id_of(*ep) == node_id_) {
    if (!left_) broadcast("JOINED " + endpoint().to_string());
    return;
  }
  suspects_[id_of(*ep)] = host_.sim().now() + config_.suspect_ttl;
  remove_member(id_of(*ep));
}

}  // namespace siphoc::sip
