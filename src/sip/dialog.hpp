// SIP dialog state (RFC 3261 section 12).
//
// Built from the INVITE request + 2xx response pair, on both the caller
// (UAC) and callee (UAS) side. In-dialog requests (BYE, re-INVITE, the ACK
// for a 2xx) are constructed from this state: request URI = remote target,
// From/To carry the dialog tags, CSeq increments locally.
#pragma once

#include <string>
#include <vector>

#include "sip/message.hpp"

namespace siphoc::sip {

struct Dialog {
  std::string call_id;
  std::string local_tag;
  std::string remote_tag;
  Uri local_uri;      // our From/To identity
  Uri remote_uri;     // peer identity
  Uri remote_target;  // peer Contact; where in-dialog requests go
  std::vector<Uri> route_set;
  std::uint32_t local_cseq = 0;
  std::uint32_t remote_cseq = 0;

  /// Caller side: our INVITE + their 2xx.
  static Result<Dialog> from_uac(const Message& invite, const Message& ok);
  /// Callee side: their INVITE + our 2xx.
  static Result<Dialog> from_uas(const Message& invite, const Message& ok);

  /// Dialog identifier (Call-ID + tags); direction-local.
  std::string id() const { return call_id + ";" + local_tag + ";" + remote_tag; }

  /// Builds an in-dialog request with the next local CSeq.
  Message make_request(std::string method);

  /// True when the message belongs to this dialog (remote request view).
  bool matches_request(const Message& request) const;
};

}  // namespace siphoc::sip
