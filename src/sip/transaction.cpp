#include "sip/transaction.hpp"

#include <algorithm>

#include "common/metrics.hpp"

namespace siphoc::sip {
namespace {

Counter& sip_counter(MetricsRegistry& registry, const std::string& name,
                     const std::string& node) {
  return registry.counter(name, node, "sip");
}

// Response-class series name: "sip.responses_rx.2xx" etc.
std::string class_name(const char* direction, int status) {
  return std::string("sip.responses_") + direction + "." +
         std::to_string(status / 100) + "xx";
}

}  // namespace

// ===========================================================================
// ClientTransaction
// ===========================================================================

ClientTransaction::ClientTransaction(TransactionLayer& layer, Message request,
                                     net::Endpoint destination,
                                     ResponseCallback callback)
    : layer_(layer),
      request_(std::move(request)),
      destination_(destination),
      callback_(std::move(callback)),
      branch_(layer.new_branch()),
      method_(request_.method()),
      state_(method_ == kInvite ? State::kCalling : State::kTrying) {
  Via via;
  via.host = layer_.via_host();
  via.port = layer_.via_port();
  via.params["branch"] = branch_;
  request_.push_via(via);
}

void ClientTransaction::start() {
  started_ = layer_.sim().now();
  sip_counter(layer_.metrics(), "sip.client_tx." + method_, layer_.node()).add();
  layer_.transport().send(request_, destination_);
  retransmit_interval_ = layer_.timers().t1;
  retransmit_timer_ = layer_.sim().schedule(retransmit_interval_,
                                            [this] { retransmit(); });
  timeout_timer_ = layer_.sim().schedule(layer_.timers().timeout(),
                                         [this] { on_timeout(); });
}

void ClientTransaction::retransmit() {
  if (state_ != State::kCalling && state_ != State::kTrying &&
      !(state_ == State::kProceeding && !is_invite())) {
    return;
  }
  sip_counter(layer_.metrics(), "sip.retransmits_total", layer_.node()).add();
  layer_.transport().send(request_, destination_);
  // Timer A doubles unbounded; Timer E doubles capped at T2 (RFC 17.1.2.1).
  retransmit_interval_ = retransmit_interval_ * 2;
  if (!is_invite() && retransmit_interval_ > layer_.timers().t2) {
    retransmit_interval_ = layer_.timers().t2;
  }
  retransmit_timer_ = layer_.sim().schedule(retransmit_interval_,
                                            [this] { retransmit(); });
}

void ClientTransaction::on_timeout() {
  if (state_ == State::kCompleted || state_ == State::kTerminated) return;
  sip_counter(layer_.metrics(), "sip.tx_timeouts_total", layer_.node()).add();
  cancel_timers();
  state_ = State::kTerminated;
  if (callback_) callback_(std::nullopt);
  layer_.reap();
}

void ClientTransaction::on_response(const Message& response) {
  const int status = response.status();
  switch (state_) {
    case State::kCalling:
    case State::kTrying:
    case State::kProceeding: {
      sip_counter(layer_.metrics(), class_name("rx", status), layer_.node()).add();
      if (status >= 200 && is_invite()) {
        // Final answer to our INVITE: the request->final-response interval
        // is the paper's call-setup building block.
        layer_.metrics()
            .histogram("sip.invite_rtt_ms", kLatencyBucketsMs, layer_.node(),
                       "sip")
            .observe(to_millis(layer_.sim().now() - started_));
        layer_.metrics().record_span("invite_transaction", "sip",
                                     layer_.node(), started_,
                                     layer_.sim().now());
      }
      if (status < 200) {
        state_ = State::kProceeding;
        if (is_invite()) retransmit_timer_.cancel();
        if (callback_) callback_(response);
        return;
      }
      // Final response.
      retransmit_timer_.cancel();
      timeout_timer_.cancel();
      if (is_invite() && status >= 300) {
        send_ack_for(response);
        state_ = State::kCompleted;
        kill_timer_ = layer_.sim().schedule(layer_.timers().timer_d(),
                                            [this] { terminate(); });
      } else if (!is_invite()) {
        state_ = State::kCompleted;
        kill_timer_ = layer_.sim().schedule(layer_.timers().t4,
                                            [this] { terminate(); });
      } else {
        // INVITE 2xx: transaction ends immediately; the TU sends the ACK.
        state_ = State::kTerminated;
      }
      if (callback_) callback_(response);
      if (state_ == State::kTerminated) layer_.reap();
      return;
    }
    case State::kCompleted: {
      // Retransmitted final response: re-ACK (INVITE), never re-notify.
      if (is_invite() && status >= 300) send_ack_for(response);
      return;
    }
    case State::kTerminated:
      return;
  }
}

void ClientTransaction::send_ack_for(const Message& response) {
  // RFC 17.1.1.3: ACK for non-2xx reuses the INVITE's branch and To from
  // the response.
  Message ack = Message::request(std::string(kAck), request_.request_uri());
  ack.remove_header("max-forwards");
  for (const auto& [name, value] : request_.raw_headers()) {
    if (name == "via" || name == "from" || name == "call-id" ||
        name == "max-forwards" || name == "route") {
      ack.add_header(name, value);
    }
  }
  if (const auto to = response.header("to")) ack.add_header("to", *to);
  const auto cseq = request_.cseq();
  if (cseq) {
    ack.set_header("cseq", std::to_string(cseq->number) + " ACK");
  }
  layer_.transport().send(ack, destination_);
}

void ClientTransaction::cancel_timers() {
  retransmit_timer_.cancel();
  timeout_timer_.cancel();
  kill_timer_.cancel();
}

void ClientTransaction::terminate() {
  cancel_timers();
  state_ = State::kTerminated;
  layer_.reap();
}

// ===========================================================================
// ServerTransaction
// ===========================================================================

ServerTransaction::ServerTransaction(TransactionLayer& layer, Message request,
                                     net::Endpoint peer)
    : layer_(layer),
      request_(std::move(request)),
      peer_(peer),
      method_(request_.method()),
      started_(layer.sim().now()) {
  if (auto via = request_.top_via()) branch_ = via->branch();
  state_ = is_invite() ? State::kProceeding : State::kTrying;
}

void ServerTransaction::respond(int status, std::string reason) {
  respond(Message::response_to(request_, status, std::move(reason)));
}

void ServerTransaction::respond(Message response) {
  sip_counter(layer_.metrics(), class_name("tx", response.status()), layer_.node()).add();
  last_response_ = std::move(response);
  if (!layer_.transport().send_response(*last_response_)) {
    // Unroutable Via (e.g. symbolic host with no received param): fall back
    // to the datagram source.
    layer_.transport().send(*last_response_, peer_);
  }
  const int status = last_response_->status();
  if (status < 200) {
    state_ = State::kProceeding;
    return;
  }
  if (is_invite()) {
    // Completed: retransmit the final response until the ACK (Timer G/H).
    state_ = State::kCompleted;
    retransmit_interval_ = layer_.timers().t1;
    retransmit_timer_ = layer_.sim().schedule(
        retransmit_interval_, [this] { retransmit_final(); });
    timeout_timer_ =
        layer_.sim().schedule(layer_.timers().timeout(), [this] {
          // Copy the hook first: terminate() requests a reap, but reaping is
          // deferred, so `this` outlives the call.
          const auto timed_out = on_timeout;
          terminate();
          if (timed_out) timed_out();
        });
  } else {
    state_ = State::kCompleted;
    kill_timer_ = layer_.sim().schedule(layer_.timers().timeout(),
                                        [this] { terminate(); });
  }
}

void ServerTransaction::retransmit_final() {
  if (state_ != State::kCompleted || !last_response_) return;
  sip_counter(layer_.metrics(), "sip.retransmits_total", layer_.node()).add();
  if (!layer_.transport().send_response(*last_response_)) {
    layer_.transport().send(*last_response_, peer_);
  }
  retransmit_interval_ =
      std::min(retransmit_interval_ * 2, layer_.timers().t2);
  retransmit_timer_ = layer_.sim().schedule(retransmit_interval_,
                                            [this] { retransmit_final(); });
}

void ServerTransaction::on_retransmitted_request() {
  if ((state_ == State::kProceeding || state_ == State::kCompleted) &&
      last_response_) {
    if (!layer_.transport().send_response(*last_response_)) {
      layer_.transport().send(*last_response_, peer_);
    }
  }
}

void ServerTransaction::handle_ack(const Message& ack) {
  if (state_ != State::kCompleted) return;
  state_ = State::kConfirmed;
  retransmit_timer_.cancel();
  timeout_timer_.cancel();
  kill_timer_ = layer_.sim().schedule(layer_.timers().t4,
                                      [this] { terminate(); });
  if (on_ack) on_ack(ack);
}

void ServerTransaction::terminate() {
  retransmit_timer_.cancel();
  timeout_timer_.cancel();
  kill_timer_.cancel();
  state_ = State::kTerminated;
  layer_.reap();
}

// ===========================================================================
// TransactionLayer
// ===========================================================================

TransactionLayer::TransactionLayer(Transport& transport, std::string via_host,
                                   std::uint16_t via_port, TimerConfig timers)
    : transport_(transport),
      via_host_(std::move(via_host)),
      via_port_(via_port),
      node_(transport.host().name()),
      timers_(timers),
      rng_(transport.host().rng().fork()) {
  transport_.set_handler([this](Message m, net::Endpoint from) {
    on_message(std::move(m), from);
  });
}

TransactionLayer::~TransactionLayer() {
  transport_.set_handler(nullptr);
  // The deferred reap closure captures `this`; the transaction maps cancel
  // their own timers as they are destroyed.
  reap_event_.cancel();
}

std::string TransactionLayer::new_branch() {
  return std::string(kBranchCookie) + via_host_ + "-" +
         std::to_string(++id_counter_) + "-" +
         std::to_string(rng_.uniform_int(0, 0xffffff));
}

std::string TransactionLayer::new_tag() {
  return std::to_string(rng_.uniform_int(0x1000, 0xffffffff));
}

std::string TransactionLayer::new_call_id() {
  return std::to_string(rng_.uniform_u64()) + "@" + via_host_;
}

ClientTransaction* TransactionLayer::send_request(
    Message request, net::Endpoint destination,
    ClientTransaction::ResponseCallback cb) {
  auto txn = std::unique_ptr<ClientTransaction>(new ClientTransaction(
      *this, std::move(request), destination, std::move(cb)));
  ClientTransaction* raw = txn.get();
  clients_[{raw->branch_, raw->method_}] = std::move(txn);
  raw->start();
  return raw;
}

void TransactionLayer::send_stateless(const Message& message,
                                      net::Endpoint destination) {
  transport_.send(message, destination);
}

void TransactionLayer::on_message(Message message, net::Endpoint from) {
  if (message.is_request()) {
    dispatch_request(std::move(message), from);
  } else {
    dispatch_response(message, from);
  }
}

void TransactionLayer::dispatch_request(Message request, net::Endpoint from) {
  std::string branch;
  if (auto via = request.top_via()) branch = via->branch();
  const std::string& method = request.method();

  if (method == kAck) {
    // Non-2xx ACK: same branch as the INVITE. 2xx ACK: new branch -- match
    // by Call-ID + CSeq number against a Completed INVITE transaction.
    if (auto it = servers_.find({branch, std::string(kInvite)});
        it != servers_.end()) {
      it->second->handle_ack(request);
      return;
    }
    const auto cseq = request.cseq();
    for (auto& [key, txn] : servers_) {
      if (txn->method_ != kInvite) continue;
      const auto txn_cseq = txn->request_.cseq();
      if (txn->request_.call_id() == request.call_id() && cseq && txn_cseq &&
          cseq->number == txn_cseq->number) {
        txn->handle_ack(request);
        return;
      }
    }
    // ACK to an unknown transaction: hand to the TU (proxies forward it).
    if (request_handler_) request_handler_(nullptr, request);
    return;
  }

  const auto key = std::make_pair(branch, method);
  if (auto it = servers_.find(key); it != servers_.end()) {
    it->second->on_retransmitted_request();
    return;
  }

  auto txn = std::shared_ptr<ServerTransaction>(
      new ServerTransaction(*this, std::move(request), from));
  sip_counter(metrics(), "sip.server_tx." + txn->method_, node_).add();
  servers_[key] = txn;
  if (request_handler_) {
    request_handler_(txn, txn->request_);
  } else {
    txn->respond(503);
  }
}

void TransactionLayer::dispatch_response(const Message& response,
                                         net::Endpoint from) {
  std::string branch;
  if (auto via = response.top_via()) branch = via->branch();
  std::string method;
  if (auto cseq = response.cseq()) method = cseq->method;

  if (auto it = clients_.find({branch, method}); it != clients_.end()) {
    it->second->on_response(response);
    return;
  }
  if (stray_handler_) stray_handler_(response, from);
}

Duration TransactionLayer::oldest_transaction_age(TimePoint now) const {
  Duration oldest{};
  for (const auto& [key, txn] : clients_) {
    if (txn->terminated()) continue;
    oldest = std::max(oldest, now - txn->started());
  }
  for (const auto& [key, txn] : servers_) {
    if (txn->terminated()) continue;
    oldest = std::max(oldest, now - txn->started());
  }
  return oldest;
}

void TransactionLayer::reap() {
  // Deferred so a transaction never deletes itself mid-callback. Reaping is
  // idempotent, so collapsing concurrent requests into one pending sweep is
  // behavior-neutral (and consumes no extra RNG draws).
  if (reap_event_.pending()) return;
  reap_event_ = sim().schedule(microseconds(1), [this] {
    std::erase_if(clients_,
                  [](const auto& kv) { return kv.second->terminated(); });
    std::erase_if(servers_,
                  [](const auto& kv) { return kv.second->terminated(); });
  });
}

}  // namespace siphoc::sip
