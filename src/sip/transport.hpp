// SIP-over-UDP transport binding (RFC 3261 section 18 subset).
//
// Parses incoming datagrams into Messages, stamps the `received` Via
// parameter when the sent-by address differs from the actual source
// (RFC 18.2.1 -- this is what makes responses routable back through the
// MANET), and serializes outgoing messages.
#pragma once

#include <functional>

#include "common/logging.hpp"
#include "net/host.hpp"
#include "sip/message.hpp"

namespace siphoc::sip {

class Transport {
 public:
  /// `from` is the datagram source; responses to a request go there when the
  /// Via chain is unusable.
  using MessageHandler =
      std::function<void(Message message, net::Endpoint from)>;

  Transport(net::Host& host, std::uint16_t port);
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  void set_handler(MessageHandler handler) { handler_ = std::move(handler); }

  void send(const Message& message, net::Endpoint destination);

  /// Sends a response to wherever its top Via points.
  Result<void> send_response(const Message& response);

  std::uint16_t port() const { return port_; }
  net::Host& host() { return host_; }

  struct TransportStats {
    std::uint64_t messages_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t messages_received = 0;
    std::uint64_t parse_errors = 0;
  };
  const TransportStats& stats() const { return stats_; }

 private:
  void on_datagram(const net::Datagram& d);

  net::Host& host_;
  std::uint16_t port_;
  Logger log_;
  MessageHandler handler_;
  TransportStats stats_;
};

}  // namespace siphoc::sip
