#include "sip/outbound_proxy.hpp"

namespace siphoc::sip {

OutboundProxy::OutboundProxy(net::Host& host, OutboundProxyConfig config)
    : host_(host),
      config_(config),
      log_("obproxy", host.name()),
      transport_(host, config_.port) {
  transport_.set_handler([this](Message m, net::Endpoint from) {
    on_message(std::move(m), from);
  });
}

void OutboundProxy::on_message(Message message, net::Endpoint from) {
  if (message.is_response()) {
    // Pop our Via and retrace.
    auto vias = message.vias();
    if (vias.empty() ||
        vias.front().host != host_.wired_address().to_string()) {
      ++stats_.dropped;
      return;
    }
    message.pop_via();
    const auto next = message.top_via();
    if (!next) {
      ++stats_.dropped;
      return;
    }
    if (const auto dst = next->response_endpoint()) {
      ++stats_.responses_relayed;
      transport_.send(message, *dst);
    } else {
      ++stats_.dropped;
    }
    return;
  }

  const int mf = message.max_forwards();
  if (mf <= 0) {
    ++stats_.dropped;
    if (message.method() != kAck) {
      Message response = Message::response_to(message, 483);
      if (!transport_.send_response(response)) {
        transport_.send(response, from);
      }
    }
    return;
  }
  message.set_max_forwards(mf - 1);

  Via via;
  via.host = host_.wired_address().to_string();
  via.port = config_.port;
  via.params["branch"] =
      std::string(kBranchCookie) + "ob" + std::to_string(++branch_counter_);
  message.push_via(via);
  ++stats_.requests_relayed;
  log_.info("relaying ", message.summary(), " to ",
            config_.next_hop.to_string());
  transport_.send(message, config_.next_hop);
}

}  // namespace siphoc::sip
