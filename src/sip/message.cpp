#include "sip/message.hpp"

#include <algorithm>
#include <charconv>

#include "common/strings.hpp"

namespace siphoc::sip {

namespace {

/// True when the name contains no ASCII uppercase -- the common case for
/// internal lookups ("via", "call-id", ...), which then need no copy.
bool is_ascii_lower(std::string_view s) {
  for (const char c : s) {
    if (c >= 'A' && c <= 'Z') return false;
  }
  return true;
}

/// Expands lowercase compact forms (RFC 3261 7.3.3).
std::string_view expand_compact(std::string_view lower) {
  if (lower.size() != 1) return lower;
  switch (lower.front()) {
    case 'v': return "via";
    case 'f': return "from";
    case 't': return "to";
    case 'i': return "call-id";
    case 'm': return "contact";
    case 'l': return "content-length";
    case 'c': return "content-type";
    default: return lower;
  }
}

/// Canonicalizes a header name without allocating in the common case:
/// already-lowercase names are returned as a view into the input, and only
/// mixed-case wire input is folded into `storage`.
std::string_view canonical_name(std::string_view name, std::string& storage) {
  name = trim(name);
  if (!is_ascii_lower(name)) {
    to_lower_into(name, storage);
    name = storage;
  }
  return expand_compact(name);
}

/// Pretty header names for serialization, hot ones via a static table
/// ("call-id" -> "Call-ID"); anything unknown is title-cased into
/// `storage`.
std::string_view display_name(std::string_view canonical,
                              std::string& storage) {
  static constexpr std::pair<std::string_view, std::string_view> kDisplay[] =
      {{"via", "Via"},
       {"from", "From"},
       {"to", "To"},
       {"call-id", "Call-ID"},
       {"cseq", "CSeq"},
       {"contact", "Contact"},
       {"content-length", "Content-Length"},
       {"content-type", "Content-Type"},
       {"max-forwards", "Max-Forwards"},
       {"expires", "Expires"},
       {"route", "Route"},
       {"record-route", "Record-Route"},
       {"www-authenticate", "WWW-Authenticate"},
       {"authorization", "Authorization"},
       {"user-agent", "User-Agent"}};
  for (const auto& [name, display] : kDisplay) {
    if (name == canonical) return display;
  }
  storage.assign(canonical);
  bool upper_next = true;
  for (char& c : storage) {
    if (upper_next && c >= 'a' && c <= 'z') c = static_cast<char>(c - 32);
    upper_next = c == '-';
  }
  return storage;
}

/// Headers a response mirrors from its request (RFC 3261 8.2.6).
bool is_mirrored_in_response(std::string_view name) {
  static constexpr std::string_view kMirrored[] = {
      "via", "from", "to", "call-id", "cseq", "record-route"};
  for (const auto mirrored : kMirrored) {
    if (name == mirrored) return true;
  }
  return false;
}

}  // namespace

std::string_view default_reason(int status) {
  switch (status) {
    case 100: return "Trying";
    case 180: return "Ringing";
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 480: return "Temporarily Unavailable";
    case 481: return "Call/Transaction Does Not Exist";
    case 486: return "Busy Here";
    case 487: return "Request Terminated";
    case 500: return "Server Internal Error";
    case 503: return "Service Unavailable";
    case 603: return "Decline";
    default: return "Unknown";
  }
}

Message Message::request(std::string method, Uri request_uri) {
  Message m;
  m.is_request_ = true;
  m.method_ = std::move(method);
  m.request_uri_ = std::move(request_uri);
  m.set_max_forwards(70);
  return m;
}

Message Message::response_to(const Message& req, int status,
                             std::string reason) {
  Message m;
  m.is_request_ = false;
  m.status_ = status;
  m.reason_ = reason.empty() ? std::string(default_reason(status))
                             : std::move(reason);
  std::size_t mirrored = 0;
  for (const auto& [name, value] : req.headers_) {
    mirrored += is_mirrored_in_response(name) ? 1 : 0;
  }
  m.headers_.reserve(mirrored);
  for (const auto& [name, value] : req.headers_) {
    if (is_mirrored_in_response(name)) m.headers_.emplace_back(name, value);
  }
  return m;
}

Result<Message> Message::parse(std::string_view text) {
  Message m;
  // Start line.
  auto line_end = text.find("\r\n");
  if (line_end == std::string_view::npos) return fail("sip: no start line");
  const auto start_line = text.substr(0, line_end);
  text.remove_prefix(line_end + 2);

  if (starts_with(start_line, "SIP/2.0 ")) {
    m.is_request_ = false;
    auto rest = start_line.substr(8);
    const auto space = rest.find(' ');
    const auto code_text = rest.substr(0, space);
    const auto [ptr, ec] = std::from_chars(
        code_text.data(), code_text.data() + code_text.size(), m.status_);
    if (ec != std::errc{} || m.status_ < 100 || m.status_ > 699) {
      return fail("sip: bad status code");
    }
    if (space != std::string_view::npos) {
      m.reason_ = std::string(trim(rest.substr(space + 1)));
    }
  } else {
    m.is_request_ = true;
    const auto sp1 = start_line.find(' ');
    const auto sp2 = start_line.rfind(' ');
    if (sp1 == std::string_view::npos || sp2 == sp1) {
      return fail("sip: malformed request line");
    }
    if (start_line.substr(sp2 + 1) != "SIP/2.0") {
      return fail("sip: bad version '" +
                  std::string(start_line.substr(sp2 + 1)) + "'");
    }
    m.method_ = std::string(start_line.substr(0, sp1));
    auto uri = Uri::parse(start_line.substr(sp1 + 1, sp2 - sp1 - 1));
    if (!uri) return uri.error();
    m.request_uri_ = std::move(*uri);
  }

  // Headers until blank line; folded continuation lines are unfolded.
  while (true) {
    line_end = text.find("\r\n");
    if (line_end == std::string_view::npos) {
      return fail("sip: headers not terminated");
    }
    std::string_view line = text.substr(0, line_end);
    text.remove_prefix(line_end + 2);
    if (line.empty()) break;

    if ((line.front() == ' ' || line.front() == '\t') &&
        !m.headers_.empty()) {
      m.headers_.back().second += " ";
      m.headers_.back().second += std::string(trim(line));
      continue;
    }
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) {
      return fail("sip: header without colon: '" + std::string(line) + "'");
    }
    std::string name_storage;
    const auto name = canonical_name(line.substr(0, colon), name_storage);
    const auto value = trim(line.substr(colon + 1));
    // Comma-separated multi-values split into separate entries (Via, Route).
    if (name == "via" || name == "route" || name == "record-route" ||
        name == "contact") {
      for (const auto& part : split_trimmed(value, ',')) {
        m.headers_.emplace_back(name, part);
      }
    } else {
      m.headers_.emplace_back(name, std::string(value));
    }
  }

  // Body: trust Content-Length when present, else take the rest.
  if (const auto cl = m.header("content-length")) {
    std::size_t len = 0;
    const auto [ptr, ec] =
        std::from_chars(cl->data(), cl->data() + cl->size(), len);
    if (ec != std::errc{} || len > text.size()) {
      return fail("sip: bad content-length");
    }
    m.body_ = std::string(text.substr(0, len));
  } else {
    m.body_ = std::string(text);
  }
  return m;
}

std::string Message::serialize() const {
  const std::string uri = is_request_ ? request_uri_.to_string() : "";
  // One allocation: size the output for start line + headers + an
  // (optional) generated Content-Length + blank line + body.
  std::size_t estimate = 2 + body_.size() + 32;
  estimate += is_request_ ? method_.size() + uri.size() + 11
                          : 8 + 4 + reason_.size() + 3;
  for (const auto& [name, value] : headers_) {
    estimate += name.size() + 2 + value.size() + 2;
  }
  std::string out;
  out.reserve(estimate);
  if (is_request_) {
    out += method_;
    out += ' ';
    out += uri;
    out += " SIP/2.0\r\n";
  } else {
    out += "SIP/2.0 ";
    out += std::to_string(status_);
    out += ' ';
    out += reason_;
    out += "\r\n";
  }
  bool have_content_length = false;
  std::string display_storage;
  for (const auto& [name, value] : headers_) {
    if (name == "content-length") have_content_length = true;
    out += display_name(name, display_storage);
    out += ": ";
    out += value;
    out += "\r\n";
  }
  if (!have_content_length) {
    out += "Content-Length: ";
    out += std::to_string(body_.size());
    out += "\r\n";
  }
  out += "\r\n";
  out += body_;
  return out;
}

std::optional<std::string> Message::header(std::string_view name) const {
  std::string storage;
  const auto canonical = canonical_name(name, storage);
  for (const auto& [n, v] : headers_) {
    if (n == canonical) return v;
  }
  return std::nullopt;
}

std::vector<std::string> Message::headers(std::string_view name) const {
  std::string storage;
  const auto canonical = canonical_name(name, storage);
  std::vector<std::string> out;
  for (const auto& [n, v] : headers_) {
    if (n == canonical) out.push_back(v);
  }
  return out;
}

void Message::set_header(std::string_view name, std::string value) {
  remove_header(name);
  add_header(name, std::move(value));
}

void Message::add_header(std::string_view name, std::string value) {
  std::string storage;
  headers_.emplace_back(canonical_name(name, storage), std::move(value));
}

void Message::prepend_header(std::string_view name, std::string value) {
  std::string storage;
  headers_.emplace(headers_.begin(), canonical_name(name, storage),
                   std::move(value));
}

void Message::remove_header(std::string_view name) {
  std::string storage;
  const auto canonical = canonical_name(name, storage);
  std::erase_if(headers_,
                [&](const auto& h) { return h.first == canonical; });
}

void Message::remove_first_header(std::string_view name) {
  std::string storage;
  const auto canonical = canonical_name(name, storage);
  const auto it =
      std::find_if(headers_.begin(), headers_.end(),
                   [&](const auto& h) { return h.first == canonical; });
  if (it != headers_.end()) headers_.erase(it);
}

Result<NameAddr> Message::from() const {
  const auto v = header("from");
  if (!v) return fail("sip: missing From");
  return NameAddr::parse(*v);
}

Result<NameAddr> Message::to() const {
  const auto v = header("to");
  if (!v) return fail("sip: missing To");
  return NameAddr::parse(*v);
}

Result<CSeq> Message::cseq() const {
  const auto v = header("cseq");
  if (!v) return fail("sip: missing CSeq");
  return CSeq::parse(*v);
}

std::string Message::call_id() const {
  return header("call-id").value_or(std::string());
}

Result<Via> Message::top_via() const {
  const auto v = header("via");
  if (!v) return fail("sip: missing Via");
  return Via::parse(*v);
}

std::vector<Via> Message::vias() const {
  std::vector<Via> out;
  for (const auto& v : headers("via")) {
    if (auto via = Via::parse(v)) out.push_back(std::move(*via));
  }
  return out;
}

void Message::push_via(const Via& via) {
  prepend_header("via", via.to_string());
}

void Message::pop_via() { remove_first_header("via"); }

std::optional<NameAddr> Message::contact() const {
  const auto v = header("contact");
  if (!v) return std::nullopt;
  auto na = NameAddr::parse(*v);
  if (!na) return std::nullopt;
  return *na;
}

std::vector<NameAddr> Message::route_set(std::string_view header_name) const {
  std::vector<NameAddr> out;
  for (const auto& v : headers(header_name)) {
    if (auto na = NameAddr::parse(v)) out.push_back(std::move(*na));
  }
  return out;
}

int Message::max_forwards() const {
  const auto v = header("max-forwards");
  if (!v) return 70;
  int mf = 70;
  std::from_chars(v->data(), v->data() + v->size(), mf);
  return mf;
}

void Message::set_max_forwards(int value) {
  set_header("max-forwards", std::to_string(value));
}

void Message::set_body(std::string body, std::string content_type) {
  body_ = std::move(body);
  set_header("content-type", std::move(content_type));
  set_header("content-length", std::to_string(body_.size()));
}

std::string Message::summary() const {
  if (is_request_) {
    return method_ + " " + request_uri_.to_string();
  }
  std::string method;
  if (auto cs = cseq()) method = cs->method;
  return std::to_string(status_) + " " + reason_ + " (" + method + ")";
}

}  // namespace siphoc::sip
