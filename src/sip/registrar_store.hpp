// Registrar binding storage backends (docs/ARCHITECTURE.md, "Provider
// backend").
//
// The paper's providers were real servers (siphoc.ch, netvoip.ch,
// polyphone.ethz.ch); the emulation grew them from a toy std::map into a
// production-shaped engine so the Internet side can sustain millions of
// bindings under a heavy INVITE mix (ROADMAP item 1). Two backends share
// one interface:
//
//   * SingleMapStore -- the seed's std::map, kept as the sequential
//     baseline bench_registrar compares against.
//   * ShardedBindingStore -- consistent-hash over the AOR across N shards;
//     each shard is an open-addressing table whose *read path is lock-free*
//     (epoch-based reclamation, RCU-style immutable entries published with
//     release stores), so the region-sharded kernel's worker threads -- or
//     bench reader threads -- can resolve INVITEs while lane 0 registers.
//     Expiry is a per-shard timer wheel: the maintenance tick touches only
//     the due bucket instead of scanning every binding.
//
// Writers serialize per shard on a mutex (simulation writes come from one
// lane anyway); readers never block and never see a torn entry. Reclaim is
// deferred until every pinned reader epoch has moved past the retire
// epoch -- the classic EBR contract, small enough here to audit.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "sip/uri.hpp"

namespace siphoc::sip {

/// One stored registration: AOR -> contact, with absolute expiry.
struct ContactBinding {
  Uri contact;
  TimePoint expires{};
};

/// Storage behind a Registrar. `now` flows in from the simulation so the
/// store itself stays clock-free (and bench-drivable without a simulator).
class BindingStore {
 public:
  virtual ~BindingStore() = default;

  /// Inserts or refreshes a binding.
  virtual void upsert(const std::string& aor, const Uri& contact,
                      TimePoint expires) = 0;
  /// Removes a binding; false when absent.
  virtual bool erase(const std::string& aor) = 0;
  /// The unexpired binding, if any.
  virtual std::optional<ContactBinding> lookup(const std::string& aor,
                                               TimePoint now) const = 0;
  /// Drops bindings that expired at or before `now`; returns how many.
  virtual std::size_t purge_expired(TimePoint now) = 0;
  /// Stored bindings. Expired-but-not-yet-purged entries may be counted
  /// until the next purge_expired tick (the sharded store's wheel keeps
  /// that window to one maintenance interval).
  virtual std::size_t size() const = 0;
  /// Backend label for logs/bench rows.
  virtual std::string_view name() const = 0;
  /// Visits every stored binding -- expired-but-unpurged entries included;
  /// callers filter by expiry themselves. This is the replica-handoff
  /// iteration the P2P ring needs when membership changes (a node must
  /// re-home or re-replicate what it holds). The sharded backend holds
  /// each shard's write lock while visiting it, so the callback must not
  /// reenter the store.
  virtual void for_each(
      const std::function<void(const std::string& aor,
                               const ContactBinding& binding)>& fn) const = 0;
};

/// The seed's backend: one ordered map, scans to expire. Correct, simple,
/// single-threaded -- the baseline row of bench_registrar.
class SingleMapStore final : public BindingStore {
 public:
  void upsert(const std::string& aor, const Uri& contact,
              TimePoint expires) override;
  bool erase(const std::string& aor) override;
  std::optional<ContactBinding> lookup(const std::string& aor,
                                       TimePoint now) const override;
  std::size_t purge_expired(TimePoint now) override;
  std::size_t size() const override { return bindings_.size(); }
  std::string_view name() const override { return "single-map"; }
  void for_each(
      const std::function<void(const std::string&, const ContactBinding&)>&
          fn) const override;

 private:
  std::map<std::string, ContactBinding> bindings_;
};

/// 64-bit string hash (FNV-1a finalized with a splitmix round): the one
/// hash both the shard ring and the P2P resolver's Chord-lite ring key on,
/// so a gateway and a provider agree on AOR placement by construction.
std::uint64_t hash_aor(std::string_view aor);

class ShardedBindingStore final : public BindingStore {
 public:
  struct Config {
    std::size_t shards = 8;
    /// Ring points per shard; more points -> smoother distribution.
    std::size_t virtual_nodes = 32;
    /// Initial slots per shard (rounded up to a power of two).
    std::size_t initial_capacity = 64;
    /// Timer-wheel geometry: `wheel_slots` buckets of `wheel_granularity`
    /// each; bindings further out than the wheel horizon go to the last
    /// bucket and are re-examined when it comes due.
    Duration wheel_granularity = seconds(1);
    std::size_t wheel_slots = 4096;
  };

  ShardedBindingStore();
  explicit ShardedBindingStore(Config config);
  ~ShardedBindingStore() override;

  ShardedBindingStore(const ShardedBindingStore&) = delete;
  ShardedBindingStore& operator=(const ShardedBindingStore&) = delete;

  void upsert(const std::string& aor, const Uri& contact,
              TimePoint expires) override;
  bool erase(const std::string& aor) override;
  std::optional<ContactBinding> lookup(const std::string& aor,
                                       TimePoint now) const override;
  std::size_t purge_expired(TimePoint now) override;
  std::size_t size() const override;
  std::string_view name() const override { return "sharded"; }
  void for_each(
      const std::function<void(const std::string&, const ContactBinding&)>&
          fn) const override;

  std::size_t shard_count() const { return shards_.size(); }
  /// Which shard owns `aor` on the consistent-hash ring (bench/test
  /// introspection; also the distribution check's probe).
  std::size_t shard_of(std::string_view aor) const;
  /// Bindings stored in one shard.
  std::size_t shard_size(std::size_t shard) const;

 private:
  static constexpr std::uint64_t kIdleEpoch = ~0ull;
  static constexpr std::size_t kMaxReaders = 256;

  /// Immutable once published; replaced wholesale on refresh.
  struct Entry {
    std::uint64_t hash = 0;
    std::string aor;
    Uri contact;
    TimePoint expires{};
  };
  /// Tombstone marker: slot was occupied, probes continue past it.
  static Entry* tombstone() {
    static Entry t;
    return &t;
  }

  /// Open-addressing slot array. Slots hold published Entry pointers;
  /// capacity is a power of two, linear probing.
  struct Table {
    explicit Table(std::size_t capacity)
        : mask(capacity - 1),
          slots(std::make_unique<std::atomic<Entry*>[]>(capacity)) {}
    std::size_t mask;
    std::unique_ptr<std::atomic<Entry*>[]> slots;
    std::size_t capacity() const { return mask + 1; }
  };

  struct WheelItem {
    std::uint64_t hash;
    std::string aor;
    TimePoint expires;  // the expiry this item was filed under
  };

  struct Shard {
    mutable std::mutex write_mutex;
    std::atomic<Table*> table{nullptr};
    std::size_t used = 0;             // occupied + tombstoned slots
    std::atomic<std::size_t> size{0};  // live entries
    std::vector<std::vector<WheelItem>> wheel;
    // Deferred reclamation, guarded by write_mutex.
    std::vector<std::pair<std::uint64_t, Entry*>> retired_entries;
    std::vector<std::pair<std::uint64_t, Table*>> retired_tables;
  };

  struct alignas(64) ReaderSlot {
    std::atomic<std::uint64_t> epoch{kIdleEpoch};
  };

  /// Pins the calling thread's reader slot to the current epoch for the
  /// duration of a lookup; unpin on destruction. Threads beyond
  /// kMaxReaders fall back to taking the shard's write mutex (correct,
  /// just not lock-free).
  class ReadGuard;

  std::size_t reader_slot_index() const;
  std::size_t shard_for_hash(std::uint64_t hash) const;
  void retire_entry(Shard& shard, Entry* entry);
  void retire_table(Shard& shard, Table* table);
  /// Frees retired garbage every pinned reader has moved past.
  void collect(Shard& shard);
  std::uint64_t min_pinned_epoch() const;
  void grow(Shard& shard);
  /// Writer-side probe: the slot index holding `aor`, or the first
  /// insertable slot (empty or tombstone). Requires write_mutex.
  Entry* find_entry(const Table& table, std::uint64_t hash,
                    std::string_view aor, std::size_t* slot_out) const;
  std::size_t wheel_index(TimePoint expires) const;
  void file_in_wheel(Shard& shard, std::uint64_t hash, const std::string& aor,
                     TimePoint expires);

  Config config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;  // point -> shard
  std::vector<std::size_t> wheel_cursor_;  // per shard: next due bucket
  std::vector<TimePoint> wheel_floor_;     // per shard: time cursor sits at
  std::atomic<std::uint64_t> global_epoch_{1};
  std::uint64_t store_id_ = 0;  // reader-slot cache key, process-unique
  mutable std::atomic<std::uint32_t> reader_count_{0};
  mutable std::array<ReaderSlot, kMaxReaders> readers_;
};

}  // namespace siphoc::sip
