// SIP HTTP-Digest authentication (RFC 3261 section 22, RFC 2617 subset:
// algorithm=MD5, no qop). Providers challenge REGISTER with 401 +
// WWW-Authenticate; the user agent answers with an Authorization header
// computed from its password. Everything passes transparently through the
// SIPHoc proxy chain -- authentication stays end to end between phone and
// provider, as in the paper's real-provider tests.
#pragma once

#include <map>
#include <string>

#include "common/result.hpp"
#include "sip/message.hpp"

namespace siphoc::sip {

/// Parsed `WWW-Authenticate: Digest realm="...", nonce="..."`.
struct DigestChallenge {
  std::string realm;
  std::string nonce;
  /// RFC 2617 §3.2.1: the previous nonce expired but the digest itself
  /// was acceptable -- the client may retry with the new nonce without
  /// re-prompting for credentials.
  bool stale = false;

  static Result<DigestChallenge> parse(std::string_view header);
  std::string to_string() const;
};

/// Parsed `Authorization: Digest username=..., realm=..., nonce=...,
/// uri=..., response=...`.
struct DigestAuthorization {
  std::string username;
  std::string realm;
  std::string nonce;
  std::string uri;
  std::string response;

  static Result<DigestAuthorization> parse(std::string_view header);
  std::string to_string() const;
};

/// response = MD5(MD5(user:realm:password) : nonce : MD5(method:uri)).
std::string digest_response(const std::string& username,
                            const std::string& realm,
                            const std::string& password,
                            const std::string& nonce,
                            const std::string& method,
                            const std::string& uri);

/// Builds the Authorization header answering `challenge` for `request`.
DigestAuthorization answer_challenge(const DigestChallenge& challenge,
                                     const std::string& username,
                                     const std::string& password,
                                     const Message& request);

/// Server-side check of an Authorization header against the credential.
bool verify_authorization(const DigestAuthorization& auth,
                          const std::string& password,
                          const std::string& method);

}  // namespace siphoc::sip
