#include "sip/sdp.hpp"

#include <charconv>

#include "common/strings.hpp"

namespace siphoc::sip {

Result<Sdp> Sdp::parse(std::string_view text) {
  Sdp sdp;
  bool have_connection = false;
  for (auto& raw_line : split(text, '\n')) {
    std::string_view line = raw_line;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.size() < 2 || line[1] != '=') continue;
    const char kind = line[0];
    const auto value = line.substr(2);
    switch (kind) {
      case 'o': {
        const auto fields = split_trimmed(value, ' ');
        if (fields.size() >= 3) {
          sdp.origin_user = fields[0];
          std::from_chars(fields[1].data(),
                          fields[1].data() + fields[1].size(),
                          sdp.session_id);
          std::from_chars(fields[2].data(),
                          fields[2].data() + fields[2].size(),
                          sdp.session_version);
        }
        break;
      }
      case 's':
        sdp.session_name = std::string(value);
        break;
      case 'c': {
        const auto fields = split_trimmed(value, ' ');
        if (fields.size() == 3) {
          if (const auto addr = net::Address::parse(fields[2])) {
            sdp.connection = *addr;
            have_connection = true;
          }
        }
        break;
      }
      case 'm': {
        const auto fields = split_trimmed(value, ' ');
        if (fields.size() < 4) return fail("sdp: malformed m= line");
        SdpMedia media;
        media.type = fields[0];
        unsigned port = 0;
        const auto [p, ec] = std::from_chars(
            fields[1].data(), fields[1].data() + fields[1].size(), port);
        if (ec != std::errc{} || port > 65535) {
          return fail("sdp: bad media port");
        }
        media.port = static_cast<std::uint16_t>(port);
        media.proto = fields[2];
        media.payload_types.clear();
        for (std::size_t i = 3; i < fields.size(); ++i) {
          int pt = 0;
          std::from_chars(fields[i].data(),
                          fields[i].data() + fields[i].size(), pt);
          media.payload_types.push_back(pt);
        }
        sdp.media.push_back(std::move(media));
        break;
      }
      default:
        break;  // v=, t=, a= etc. tolerated and ignored
    }
  }
  if (!have_connection) return fail("sdp: missing c= line");
  if (sdp.media.empty()) return fail("sdp: no media lines");
  return sdp;
}

std::string Sdp::serialize() const {
  std::string out = "v=0\r\n";
  out += "o=" + origin_user + " " + std::to_string(session_id) + " " +
         std::to_string(session_version) + " IN IP4 " +
         connection.to_string() + "\r\n";
  out += "s=" + session_name + "\r\n";
  out += "c=IN IP4 " + connection.to_string() + "\r\n";
  out += "t=0 0\r\n";
  for (const auto& m : media) {
    out += "m=" + m.type + " " + std::to_string(m.port) + " " + m.proto;
    for (const int pt : m.payload_types) out += " " + std::to_string(pt);
    out += "\r\n";
    for (const int pt : m.payload_types) {
      if (pt == 0) out += "a=rtpmap:0 PCMU/8000\r\n";
    }
  }
  return out;
}

Result<net::Endpoint> Sdp::audio_endpoint() const {
  for (const auto& m : media) {
    if (m.type == "audio") return net::Endpoint{connection, m.port};
  }
  return fail("sdp: no audio stream");
}

Sdp Sdp::audio(net::Address address, std::uint16_t rtp_port,
               std::uint64_t session_id) {
  Sdp sdp;
  sdp.connection = address;
  sdp.session_id = session_id;
  sdp.session_version = 1;
  sdp.media.push_back(SdpMedia{"audio", rtp_port, "RTP/AVP", {0}});
  return sdp;
}

}  // namespace siphoc::sip
