#include "sip/transport.hpp"

namespace siphoc::sip {

Transport::Transport(net::Host& host, std::uint16_t port)
    : host_(host), port_(port), log_("sip", host.name()) {
  host_.bind(port_, [this](const net::Datagram& d, const net::RxInfo&) {
    on_datagram(d);
  });
}

Transport::~Transport() { host_.unbind(port_); }

void Transport::send(const Message& message, net::Endpoint destination) {
  const std::string wire = message.serialize();
  ++stats_.messages_sent;
  stats_.bytes_sent += wire.size();
  log_.trace("TX to ", destination.to_string(), ": ", message.summary());
  host_.send_udp(port_, destination, to_bytes(wire));
}

Result<void> Transport::send_response(const Message& response) {
  auto via = response.top_via();
  if (!via) return via.error();
  auto dst = via->response_endpoint();
  if (!dst) return dst.error();
  send(response, *dst);
  return {};
}

void Transport::on_datagram(const net::Datagram& d) {
  auto message = Message::parse(to_string(d.payload));
  if (!message) {
    ++stats_.parse_errors;
    log_.warn("unparseable SIP datagram from ", d.source().to_string(), ": ",
              message.error().message);
    return;
  }
  ++stats_.messages_received;

  // RFC 18.2.1: stamp `received` when the Via sent-by does not match the
  // packet source, so responses can retrace the actual path.
  if (message->is_request()) {
    auto vias = message->headers("via");
    if (!vias.empty()) {
      if (auto top = Via::parse(vias.front())) {
        const auto claimed = net::Address::parse(top->host);
        if (!claimed || *claimed != d.src) {
          top->params["received"] = d.src.to_string();
          message->remove_first_header("via");
          message->prepend_header("via", top->to_string());
        }
      }
    }
  }

  log_.trace("RX from ", d.source().to_string(), ": ", message->summary());
  if (handler_) handler_(std::move(*message), d.source());
}

}  // namespace siphoc::sip
