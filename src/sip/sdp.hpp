// SDP (RFC 4566 subset) -- the session descriptions carried in INVITE/200
// bodies. The softphone offers one G.711 (PCMU/8000) audio stream; the
// answer echoes the codec with the callee's own RTP endpoint. That endpoint
// pair is what the RTP engines use to exchange voice across the MANET.
#pragma once

#include <string>
#include <vector>

#include "common/result.hpp"
#include "net/address.hpp"

namespace siphoc::sip {

struct SdpMedia {
  std::string type = "audio";
  std::uint16_t port = 0;
  std::string proto = "RTP/AVP";
  std::vector<int> payload_types = {0};  // 0 = PCMU/8000 (G.711 u-law)
};

struct Sdp {
  std::string session_name = "-";
  std::string origin_user = "-";
  std::uint64_t session_id = 0;
  std::uint64_t session_version = 0;
  net::Address connection;  // c= line
  std::vector<SdpMedia> media;

  static Result<Sdp> parse(std::string_view text);
  std::string serialize() const;

  /// Convenience: first audio stream endpoint.
  Result<net::Endpoint> audio_endpoint() const;

  /// Builds the standard one-stream G.711 offer/answer.
  static Sdp audio(net::Address address, std::uint16_t rtp_port,
                   std::uint64_t session_id);
};

inline constexpr std::string_view kSdpContentType = "application/sdp";

}  // namespace siphoc::sip
