// Serverless contact resolution: a Chord-lite DHT ring among gateway /
// Internet nodes, in the spirit of the IAX-based P2P VoIP architecture
// (PAPERS.md). Instead of one provider registrar owning every binding,
// each AOR hashes onto the same 64-bit ring the sharded store uses
// (hash_aor), and the node whose id succeeds the key stores the binding
// (replicated to `successor_count` successors). Lookups hop greedily
// through finger tables -- O(log n) hops, each paying one wired RTT -- so
// gateway-centric vs P2P call-setup cost becomes a measurable tradeoff
// (EXPERIMENTS.md E11/E12) rather than prose.
//
// The overlay is *live* (docs/RESILIENCE.md, "ring faults"): a maintenance
// timer probes the successor list, repairs membership when probes go
// unanswered, rebuilds fingers, and re-replicates records on every
// membership change so each binding keeps `successor_count` live replicas.
// Nodes join and leave at runtime (join_ring() / leave()) with key
// handoff; lookups carry a per-hop timeout and retry through the next
// live finger/successor with exponential backoff and a dead-node
// suspicion list, so a query survives any single ring-node loss mid-
// flight. "Lite" still applies to discovery: membership changes are
// broadcast to the (small) ring rather than discovered through full
// Chord stabilization gossip -- deterministic, and the measured
// quantities (hops, per-hop latency, storage spread, repair time) are
// preserved.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "sip/registrar_store.hpp"

namespace siphoc::sip {

struct P2pConfig {
  std::uint16_t port = 5070;
  /// Bindings are replicated to this many ring successors of the
  /// responsible node, so a node loss does not lose the binding.
  std::size_t successor_count = 2;
  /// End-to-end resolve budget; the per-attempt retry ladder lives inside
  /// this window.
  Duration lookup_timeout = seconds(2);
  /// Maintenance timer period: successor probing, failure repair, finger
  /// fixing. Zero jitter -- stabilization must not perturb the
  /// deterministic packet schedule.
  Duration stabilize_interval = seconds(2);
  /// Consecutive unanswered probes before a successor is declared dead.
  int probe_tolerance = 2;
  /// First per-hop GET timeout; doubles per retry attempt.
  Duration retry_initial = milliseconds(250);
  /// Retransmissions through an alternate hop after the first GET.
  int retry_max = 3;
  /// How long a node stays on the dead-node suspicion list (next_hop
  /// avoids suspects) before it gets another chance.
  Duration suspect_ttl = seconds(10);
  /// In-flight resolve cap: beyond this, new resolves fail immediately
  /// (p2p.resolve_dropped_total) instead of growing pending_ unbounded.
  std::size_t max_pending = 64;
  /// GET forwarding TTL: queries caught in a routing loop mid-churn are
  /// dropped (p2p.ttl_drops_total), not forwarded forever.
  int max_hops = 32;
};

class P2pResolver {
 public:
  P2pResolver(net::Host& host, P2pConfig config = {});
  ~P2pResolver();

  P2pResolver(const P2pResolver&) = delete;
  P2pResolver& operator=(const P2pResolver&) = delete;

  /// This node's position on the hash ring (derived from its endpoint).
  std::uint64_t node_id() const { return node_id_; }
  net::Endpoint endpoint() const;
  net::Host& host() { return host_; }

  /// Installs ring state in one shot: `members` is every ring node's
  /// endpoint (self included). The testbed uses this to bootstrap a ring;
  /// from then on the maintenance timer keeps the view live.
  void join(const std::vector<net::Endpoint>& members);
  /// Runtime join through a live member: announces this node to
  /// `bootstrap`, which replies with the full membership and broadcasts
  /// the arrival; existing members hand off records in the new arc.
  void join_ring(net::Endpoint bootstrap);
  /// Graceful departure: hands every held record off into the ring, then
  /// broadcasts the departure and reverts to a singleton view.
  void leave();

  /// Stores aor -> contact at the responsible node (routed through the
  /// ring from here, hop by hop).
  void publish(const std::string& aor, const Uri& contact, TimePoint expires);
  void unpublish(const std::string& aor);

  /// Resolves an AOR through the ring. The callback receives the binding
  /// (or nullopt on miss/timeout) and the number of ring hops the query
  /// travelled (-1 on timeout/drop).
  using ResolveCallback =
      std::function<void(std::optional<ContactBinding>, int hops)>;
  void resolve(const std::string& aor, ResolveCallback callback);

  /// Bindings this node is responsible for (replicas included).
  std::size_t stored_records() const { return records_.size(); }
  /// The unexpired record this node holds for `aor`, if any (invariant
  /// monitor / test introspection; no metrics side effects).
  std::optional<ContactBinding> stored(const std::string& aor) const {
    return records_.lookup(aor, host_.sim().now());
  }
  /// Live members in this node's view (self included).
  std::size_t view_size() const { return view_.size(); }
  /// True while the view has been steady for a stabilization interval and
  /// nobody is under suspicion -- the registrar answers resolver misses
  /// with 480 + Retry-After instead of 404 while this is false.
  bool stable() const;
  /// The ring id an AOR hashes to (== hash_aor; test introspection).
  static std::uint64_t key_of(const std::string& aor) {
    return hash_aor(aor);
  }

 private:
  struct RingNode {
    std::uint64_t id;
    net::Endpoint endpoint;
    bool operator<(const RingNode& other) const { return id < other.id; }
  };
  struct Pending {
    ResolveCallback callback;
    sim::EventHandle deadline;  // end-to-end lookup_timeout
    sim::EventHandle retry;     // per-attempt hop timeout
    TimePoint started{};
    std::string aor;
    std::uint64_t key = 0;
    int attempts = 0;
    std::vector<std::uint64_t> tried;  // first-hop ids already attempted
  };

  static std::uint64_t id_of(net::Endpoint endpoint);

  void on_datagram(const net::Datagram& datagram);
  void handle_put(std::string_view verb, std::string_view rest);
  void handle_get(std::string_view rest);
  void handle_result(std::string_view rest);
  void handle_control(std::string_view verb, std::string_view rest);
  /// True when this node's arc (pred, self] covers `key`.
  bool responsible_for(std::uint64_t key) const;
  /// The ring node to forward a message keyed on `key` to: the closest
  /// preceding live finger, falling back to the first live successor.
  /// Suspects are skipped unless every candidate is suspect.
  const RingNode* next_hop(std::uint64_t key) const;
  /// First-hop choice for attempt N of a lookup: greedy (== next_hop) for
  /// the first attempt, then straight at the owner/replica chain of `key`
  /// -- any holder answers from its local store, so a single dead node
  /// always leaves a live candidate. Skips `tried` and suspects.
  const RingNode* retry_hop(std::uint64_t key,
                            const std::vector<std::uint64_t>& tried) const;
  void send_line(net::Endpoint dst, const std::string& line);
  void store_record(const std::string& aor, const Uri& contact,
                    TimePoint expires, bool replicate);
  Counter& counter(const std::string& name);
  void count_decode_error();

  // --- live membership -----------------------------------------------------
  /// Recomputes predecessor, successor list and fingers from view_.
  void rebuild_routes();
  /// Adds/removes a member; on change: rebuild + re-replicate. Returns
  /// true when the view actually changed.
  bool add_member(net::Endpoint ep);
  bool remove_member(std::uint64_t id);
  /// Re-homes every held record after a membership change: records this
  /// node owns are re-replicated to the (new) successor list; records it
  /// merely holds are PUT back into the ring so the new owner has them.
  void sync_records();
  void broadcast(const std::string& line);
  void on_stabilize_tick();
  void declare_dead(const RingNode& node);
  void purge_suspects();
  void send_attempt(std::uint64_t request);
  void on_retry(std::uint64_t request);
  void finish(std::uint64_t request, std::optional<ContactBinding> binding,
              int hops);

  net::Host& host_;
  P2pConfig config_;
  Logger log_;
  std::uint64_t node_id_;
  std::uint64_t predecessor_id_ = 0;
  std::vector<RingNode> view_;        // full membership incl self, sorted
  std::vector<RingNode> fingers_;     // dedup'd, sorted by id
  std::vector<RingNode> successors_;  // ring order after self
  std::map<std::uint64_t, TimePoint> suspects_;   // id -> suspicion expiry
  std::map<std::uint64_t, int> probe_misses_;     // id -> unanswered probes
  /// Set by leave(): a departed node ignores membership traffic (late
  /// PINGs / JOINED broadcasts must not resurrect it) until it rejoins.
  bool left_ = false;
  TimePoint last_view_change_{};
  SingleMapStore records_;            // keys this node is responsible for
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_request_ = 0;
  sim::PeriodicTimer gc_;
  sim::PeriodicTimer maintenance_;
};

}  // namespace siphoc::sip
