// Serverless contact resolution: a Chord-lite DHT ring among gateway /
// Internet nodes, in the spirit of the IAX-based P2P VoIP architecture
// (PAPERS.md). Instead of one provider registrar owning every binding,
// each AOR hashes onto the same 64-bit ring the sharded store uses
// (hash_aor), and the node whose id succeeds the key stores the binding
// (replicated to `successor_count` successors). Lookups hop greedily
// through finger tables -- O(log n) hops, each paying one wired RTT -- so
// gateway-centric vs P2P call-setup cost becomes a measurable tradeoff
// (EXPERIMENTS.md E11) rather than prose.
//
// "Lite": ring membership is wired up-front by the testbed from the full
// node set (join()), not discovered through Chord's stabilization
// protocol; this keeps the emulation deterministic while preserving the
// measured quantities (hops, per-hop latency, storage spread).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "sip/registrar_store.hpp"

namespace siphoc::sip {

struct P2pConfig {
  std::uint16_t port = 5070;
  /// Bindings are replicated to this many ring successors of the
  /// responsible node, so a node loss does not lose the binding.
  std::size_t successor_count = 2;
  Duration lookup_timeout = seconds(2);
};

class P2pResolver {
 public:
  P2pResolver(net::Host& host, P2pConfig config = {});
  ~P2pResolver();

  P2pResolver(const P2pResolver&) = delete;
  P2pResolver& operator=(const P2pResolver&) = delete;

  /// This node's position on the hash ring (derived from its endpoint).
  std::uint64_t node_id() const { return node_id_; }
  net::Endpoint endpoint() const;

  /// Installs ring state: `members` is every ring node's endpoint (self
  /// included). Finger table and successor list are computed from the
  /// sorted membership -- the Chord-lite substitute for stabilization.
  void join(const std::vector<net::Endpoint>& members);

  /// Stores aor -> contact at the responsible node (routed through the
  /// ring from here, hop by hop).
  void publish(const std::string& aor, const Uri& contact, TimePoint expires);
  void unpublish(const std::string& aor);

  /// Resolves an AOR through the ring. The callback receives the binding
  /// (or nullopt on miss/timeout) and the number of ring hops the query
  /// travelled.
  using ResolveCallback =
      std::function<void(std::optional<ContactBinding>, int hops)>;
  void resolve(const std::string& aor, ResolveCallback callback);

  /// Bindings this node is responsible for (replicas included).
  std::size_t stored_records() const { return records_.size(); }
  /// The ring id an AOR hashes to (== hash_aor; test introspection).
  static std::uint64_t key_of(const std::string& aor) {
    return hash_aor(aor);
  }

 private:
  struct RingNode {
    std::uint64_t id;
    net::Endpoint endpoint;
    bool operator<(const RingNode& other) const { return id < other.id; }
  };
  struct Pending {
    ResolveCallback callback;
    sim::EventHandle timeout;
    TimePoint started{};
  };

  static std::uint64_t id_of(net::Endpoint endpoint);

  void on_datagram(const net::Datagram& datagram);
  void handle_put(std::string_view rest);
  void handle_get(std::string_view rest);
  void handle_result(std::string_view rest);
  /// True when this node's arc (pred, self] covers `key`.
  bool responsible_for(std::uint64_t key) const;
  /// The ring node to forward a message keyed on `key` to: the closest
  /// finger preceding the key, falling back to our successor.
  const RingNode* next_hop(std::uint64_t key) const;
  void send_line(net::Endpoint dst, const std::string& line);
  void store_record(const std::string& aor, const Uri& contact,
                    TimePoint expires, bool replicate);
  Counter& counter(const std::string& name);

  net::Host& host_;
  P2pConfig config_;
  Logger log_;
  std::uint64_t node_id_;
  std::uint64_t predecessor_id_ = 0;
  std::vector<RingNode> fingers_;     // dedup'd, sorted by id
  std::vector<RingNode> successors_;  // ring order after self
  SingleMapStore records_;            // keys this node is responsible for
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_request_ = 0;
  sim::PeriodicTimer gc_;
};

}  // namespace siphoc::sip
