#include "sip/registrar.hpp"

#include <charconv>

#include "common/md5.hpp"
#include "common/metrics.hpp"
#include "sip/auth.hpp"

namespace siphoc::sip {

namespace {

Counter& reg_counter(MetricsRegistry& registry, const std::string& name,
                     const std::string& domain) {
  return registry.counter(name, domain, "registrar");
}

}  // namespace

Registrar::Registrar(net::Host& host, RegistrarConfig config)
    : host_(host),
      config_(std::move(config)),
      log_("registrar", config_.domain),
      transport_(host, config_.port) {
  transport_.set_handler([this](Message m, net::Endpoint from) {
    on_message(std::move(m), from);
  });
}

std::optional<Registrar::Binding> Registrar::binding(
    const std::string& aor) const {
  const auto it = bindings_.find(aor);
  if (it == bindings_.end() || it->second.expires <= host_.sim().now()) {
    return std::nullopt;
  }
  return it->second;
}

std::size_t Registrar::binding_count() const {
  std::size_t n = 0;
  for (const auto& [aor, b] : bindings_) {
    if (b.expires > host_.sim().now()) ++n;
  }
  return n;
}

void Registrar::on_message(Message message, net::Endpoint from) {
  if (message.is_response()) {
    forward_response(std::move(message));
    return;
  }
  if (config_.require_outbound_proxy && from.address != config_.trusted_proxy) {
    log_.info("rejecting ", message.summary(), " from ",
              from.address.to_string(), ": not via our outbound proxy");
    ++stats_.registers_rejected;
    reg_counter(host_.sim().ctx().metrics(),
                "registrar.registers_rejected_total", config_.domain)
        .add();
    if (message.method() != kAck) respond(message, 403, from);
    return;
  }
  if (message.method() == kRegister) {
    handle_register(std::move(message), from);
  } else {
    forward_request(std::move(message), from);
  }
}

void Registrar::respond(const Message& request, int status,
                        net::Endpoint from) {
  Message response = Message::response_to(request, status);
  if (!transport_.send_response(response)) {
    transport_.send(response, from);
  }
}

bool Registrar::check_authorization(const Message& request,
                                    net::Endpoint from) {
  if (!config_.require_auth) return true;

  const auto issue_challenge = [&] {
    DigestChallenge challenge;
    challenge.realm = config_.domain;
    challenge.nonce =
        md5_hex(config_.domain + std::to_string(++nonce_counter_) +
                std::to_string(host_.rng().uniform_u64()));
    issued_nonces_[challenge.nonce] = host_.sim().now() + minutes(5);
    Message response = Message::response_to(request, 401, "Unauthorized");
    response.add_header("www-authenticate", challenge.to_string());
    if (!transport_.send_response(response)) {
      transport_.send(response, from);
    }
  };

  const auto header = request.header("authorization");
  if (!header) {
    issue_challenge();
    return false;
  }
  const auto auth = DigestAuthorization::parse(*header);
  if (!auth) {
    issue_challenge();
    return false;
  }
  const auto nonce_it = issued_nonces_.find(auth->nonce);
  if (nonce_it == issued_nonces_.end() ||
      nonce_it->second <= host_.sim().now()) {
    issue_challenge();  // stale or foreign nonce: challenge afresh
    return false;
  }
  const auto cred = config_.credentials.find(auth->username);
  if (cred == config_.credentials.end() ||
      !verify_authorization(*auth, cred->second, request.method())) {
    ++stats_.registers_rejected;
    reg_counter(host_.sim().ctx().metrics(),
                "registrar.registers_rejected_total", config_.domain)
        .add();
    log_.info("bad credentials for '", auth->username, "'");
    respond(request, 403, from);
    return false;
  }
  return true;
}

void Registrar::handle_register(Message request, net::Endpoint from) {
  const auto to = request.to();
  if (!to) {
    respond(request, 400, from);
    return;
  }
  if (!check_authorization(request, from)) return;
  const std::string aor = to->uri.aor();

  std::uint32_t expires =
      static_cast<std::uint32_t>(to_seconds(config_.max_expires));
  if (const auto h = request.header("expires")) {
    std::from_chars(h->data(), h->data() + h->size(), expires);
  }

  const auto contact = request.contact();
  if (expires == 0) {
    bindings_.erase(aor);
    host_.sim().ctx().metrics()
        .gauge("registrar.bindings", config_.domain, "registrar")
        .set(static_cast<double>(bindings_.size()));
    log_.info("unregistered ", aor);
  } else if (contact) {
    Binding b;
    b.contact = contact->uri;
    b.expires = host_.sim().now() + seconds(expires);
    bindings_[aor] = std::move(b);
    ++stats_.registers_accepted;
    reg_counter(host_.sim().ctx().metrics(),
                "registrar.registers_accepted_total", config_.domain)
        .add();
    host_.sim().ctx().metrics()
        .gauge("registrar.bindings", config_.domain, "registrar")
        .set(static_cast<double>(bindings_.size()));
    log_.info("registered ", aor, " -> ", contact->uri.to_string(),
              " expires=", expires);
  } else {
    respond(request, 400, from);
    return;
  }

  Message ok = Message::response_to(request, 200);
  if (contact) {
    ok.add_header("contact", contact->to_string() + ";expires=" +
                                 std::to_string(expires));
  }
  if (!transport_.send_response(ok)) transport_.send(ok, from);
}

void Registrar::forward_request(Message request, net::Endpoint from) {
  // Loop/expiry guard.
  const int mf = request.max_forwards();
  if (mf <= 0) {
    if (request.method() != kAck) respond(request, 483, from);
    return;
  }
  request.set_max_forwards(mf - 1);

  // Destination: a numeric request URI forwards directly (in-dialog
  // requests addressed to a contact); a domain URI is looked up in the
  // bindings.
  net::Endpoint dst;
  if (const auto numeric = request.request_uri().numeric_endpoint();
      numeric && !host_.owns_address(numeric->address)) {
    dst = *numeric;
  } else {
    const std::string aor = request.request_uri().aor();
    const auto b = binding(aor);
    if (!b) {
      ++stats_.requests_failed;
      reg_counter(host_.sim().ctx().metrics(),
                  "registrar.requests_failed_total", config_.domain)
          .add();
      log_.info(request.method(), " for ", aor, ": no binding -> 404");
      if (request.method() != kAck) respond(request, 404, from);
      return;
    }
    const auto contact_ep = b->contact.numeric_endpoint();
    if (!contact_ep) {
      ++stats_.requests_failed;
      reg_counter(host_.sim().ctx().metrics(),
                  "registrar.requests_failed_total", config_.domain)
          .add();
      if (request.method() != kAck) respond(request, 502, from);
      return;
    }
    dst = *contact_ep;
  }

  Via via;
  via.host = host_.wired_address().to_string();
  via.port = config_.port;
  via.params["branch"] =
      std::string(kBranchCookie) + "reg" +
      std::to_string(host_.rng().uniform_int(0, 0xffffff));
  request.push_via(via);
  ++stats_.requests_forwarded;
  reg_counter(host_.sim().ctx().metrics(),
              "registrar.requests_forwarded_total", config_.domain)
      .add();
  transport_.send(request, dst);
}

void Registrar::forward_response(Message response) {
  // Pop our Via, forward to the next one.
  auto vias = response.vias();
  if (vias.empty()) return;
  if (vias.front().host != host_.wired_address().to_string()) {
    log_.warn("response with foreign top Via, dropping");
    return;
  }
  response.pop_via();
  auto next = response.top_via();
  if (!next) return;
  auto dst = next->response_endpoint();
  if (!dst) return;
  transport_.send(response, *dst);
}

}  // namespace siphoc::sip
