#include "sip/registrar.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <vector>

#include "common/md5.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "sip/auth.hpp"
#include "sip/p2p_resolver.hpp"

namespace siphoc::sip {

namespace {

/// Wall-clock store-lookup buckets, nanoseconds: a hash probe lands in the
/// double digits, a map walk over millions in the thousands.
constexpr double kLookupNsBuckets[] = {50,   100,   250,   500,   1000,
                                       2500, 5000,  10000, 25000, 100000};

}  // namespace

Registrar::Registrar(net::Host& host, RegistrarConfig config)
    : host_(host),
      config_(std::move(config)),
      log_("registrar", config_.domain),
      transport_(host, config_.port) {
  if (config_.store_shards > 0) {
    ShardedBindingStore::Config sc;
    sc.shards = config_.store_shards;
    store_ = std::make_unique<ShardedBindingStore>(sc);
  } else {
    store_ = std::make_unique<SingleMapStore>();
  }
  transport_.set_handler([this](Message m, net::Endpoint from) {
    on_message(std::move(m), from);
  });
  // Zero jitter: the tick must not perturb the deterministic RNG streams.
  maintenance_.start(host_.sim(), config_.maintenance_interval,
                     [this] { maintenance_tick(); });
}

Registrar::~Registrar() { maintenance_.stop(); }

Counter& Registrar::counter(const char* name) {
  return host_.sim().ctx().metrics().counter(name, config_.domain,
                                             "registrar");
}

std::uint64_t Registrar::read_counter(const char* name) const {
  const Counter* c = host_.sim().ctx().metrics().find_counter(
      name, config_.domain, "registrar");
  return c != nullptr ? c->value() : 0;
}

std::uint64_t Registrar::registers_accepted() const {
  return read_counter("registrar.registers_accepted_total");
}
std::uint64_t Registrar::registers_rejected() const {
  return read_counter("registrar.registers_rejected_total");
}
std::uint64_t Registrar::requests_forwarded() const {
  return read_counter("registrar.requests_forwarded_total");
}
std::uint64_t Registrar::requests_failed() const {
  return read_counter("registrar.requests_failed_total");
}

void Registrar::maintenance_tick() {
  // Expired digest nonces die on the timer (they used to accumulate one
  // per challenge, forever), and the table is hard-capped: above the cap
  // the nonces closest to expiry are evicted first.
  const TimePoint now = host_.sim().now();
  for (auto it = issued_nonces_.begin(); it != issued_nonces_.end();) {
    it = it->second <= now ? issued_nonces_.erase(it) : std::next(it);
  }
  if (issued_nonces_.size() > config_.nonce_cap) {
    std::vector<std::pair<TimePoint, std::string>> by_expiry;
    by_expiry.reserve(issued_nonces_.size());
    for (const auto& [nonce, expires] : issued_nonces_) {
      by_expiry.emplace_back(expires, nonce);
    }
    std::sort(by_expiry.begin(), by_expiry.end());
    const std::size_t excess = issued_nonces_.size() - config_.nonce_cap;
    for (std::size_t i = 0; i < excess; ++i) {
      issued_nonces_.erase(by_expiry[i].second);
    }
  }
  host_.sim().ctx().metrics()
      .gauge("registrar.nonces", config_.domain, "registrar")
      .set(static_cast<double>(issued_nonces_.size()));

  // One wheel turn: only the due expiry buckets are touched.
  if (store_->purge_expired(now) > 0) {
    host_.sim().ctx().metrics()
        .gauge("registrar.bindings", config_.domain, "registrar")
        .set(static_cast<double>(store_->size()));
  }
}

std::optional<Registrar::Binding> Registrar::store_lookup(
    const std::string& aor) const {
  if (!config_.measure_lookup_wall) {
    return store_->lookup(aor, host_.sim().now());
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto result = store_->lookup(aor, host_.sim().now());
  const auto t1 = std::chrono::steady_clock::now();
  host_.sim().ctx().metrics()
      .histogram("registrar.lookup_ns", kLookupNsBuckets, config_.domain,
                 "registrar")
      .observe(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
  return result;
}

std::optional<Registrar::Binding> Registrar::binding(
    const std::string& aor) const {
  return store_lookup(aor);
}

std::size_t Registrar::binding_count() const { return store_->size(); }

void Registrar::on_message(Message message, net::Endpoint from) {
  if (message.is_response()) {
    forward_response(std::move(message));
    return;
  }
  if (config_.require_outbound_proxy && from.address != config_.trusted_proxy) {
    log_.info("rejecting ", message.summary(), " from ",
              from.address.to_string(), ": not via our outbound proxy");
    counter("registrar.registers_rejected_total").add();
    if (message.method() != kAck) respond(message, 403, from);
    return;
  }
  if (message.method() == kRegister) {
    handle_register(std::move(message), from);
  } else {
    forward_request(std::move(message), from);
  }
}

void Registrar::respond(const Message& request, int status,
                        net::Endpoint from) {
  Message response = Message::response_to(request, status);
  if (!transport_.send_response(response)) {
    transport_.send(response, from);
  }
}

bool Registrar::check_authorization(const Message& request,
                                    net::Endpoint from) {
  if (!config_.require_auth) return true;

  const auto issue_challenge = [&](bool stale) {
    DigestChallenge challenge;
    challenge.realm = config_.domain;
    challenge.stale = stale;
    challenge.nonce =
        md5_hex(config_.domain + std::to_string(++nonce_counter_) +
                std::to_string(host_.rng().uniform_u64()));
    issued_nonces_[challenge.nonce] =
        host_.sim().now() + config_.nonce_lifetime;
    Message response = Message::response_to(request, 401, "Unauthorized");
    response.add_header("www-authenticate", challenge.to_string());
    if (!transport_.send_response(response)) {
      transport_.send(response, from);
    }
  };

  const auto header = request.header("authorization");
  if (!header) {
    issue_challenge(/*stale=*/false);
    return false;
  }
  const auto auth = DigestAuthorization::parse(*header);
  if (!auth) {
    issue_challenge(/*stale=*/false);
    return false;
  }
  const auto nonce_it = issued_nonces_.find(auth->nonce);
  if (nonce_it == issued_nonces_.end() ||
      nonce_it->second <= host_.sim().now()) {
    // The client answered a nonce we no longer honor (expired or evicted):
    // re-challenge with stale=true so it retries with the fresh nonce
    // without re-prompting for credentials (RFC 2617 §3.2.1).
    issue_challenge(/*stale=*/true);
    return false;
  }
  const auto cred = config_.credentials.find(auth->username);
  if (cred == config_.credentials.end() ||
      !verify_authorization(*auth, cred->second, request.method())) {
    counter("registrar.registers_rejected_total").add();
    log_.info("bad credentials for '", auth->username, "'");
    respond(request, 403, from);
    return false;
  }
  return true;
}

void Registrar::handle_register(Message request, net::Endpoint from) {
  const auto to = request.to();
  if (!to) {
    respond(request, 400, from);
    return;
  }
  if (!check_authorization(request, from)) return;
  const std::string aor = to->uri.aor();

  std::uint32_t expires =
      static_cast<std::uint32_t>(to_seconds(config_.max_expires));
  if (const auto h = request.header("expires")) {
    std::from_chars(h->data(), h->data() + h->size(), expires);
  }

  // RFC 3261 §10.2.2: "Contact: *" is only valid with "Expires: 0" and
  // wipes every binding of the AOR.
  const auto contact_header = request.header("contact");
  const bool wildcard = contact_header && trim(*contact_header) == "*";
  if (wildcard && expires != 0) {
    respond(request, 400, from);
    return;
  }

  const std::optional<NameAddr> contact =
      wildcard ? std::nullopt : request.contact();
  if (expires == 0) {
    if (p2p_ != nullptr) {
      p2p_->unpublish(aor);
    } else {
      store_->erase(aor);
    }
    host_.sim().ctx().metrics()
        .gauge("registrar.bindings", config_.domain, "registrar")
        .set(static_cast<double>(store_->size()));
    log_.info("unregistered ", aor, wildcard ? " (wildcard)" : "");
  } else if (contact) {
    const TimePoint binding_expires = host_.sim().now() + seconds(expires);
    if (p2p_ != nullptr) {
      // Serverless mode: the binding lives in the Chord-lite ring, keyed
      // by the same hash the sharded store uses.
      p2p_->publish(aor, contact->uri, binding_expires);
    } else {
      store_->upsert(aor, contact->uri, binding_expires);
    }
    counter("registrar.registers_accepted_total").add();
    host_.sim().ctx().metrics()
        .gauge("registrar.bindings", config_.domain, "registrar")
        .set(static_cast<double>(store_->size()));
    log_.info("registered ", aor, " -> ", contact->uri.to_string(),
              " expires=", expires);
  } else {
    respond(request, 400, from);
    return;
  }

  Message ok = Message::response_to(request, 200);
  if (contact) {
    ok.add_header("contact", contact->to_string() + ";expires=" +
                                 std::to_string(expires));
  }
  if (!transport_.send_response(ok)) transport_.send(ok, from);
}

void Registrar::forward_request(Message request, net::Endpoint from) {
  // Loop/expiry guard.
  const int mf = request.max_forwards();
  if (mf <= 0) {
    if (request.method() != kAck) respond(request, 483, from);
    return;
  }
  request.set_max_forwards(mf - 1);

  // Destination: a numeric request URI forwards directly (in-dialog
  // requests addressed to a contact); a domain URI is looked up in the
  // bindings.
  if (const auto numeric = request.request_uri().numeric_endpoint();
      numeric && !host_.owns_address(numeric->address)) {
    Binding direct;
    direct.contact = request.request_uri();
    direct.expires = host_.sim().now() + seconds(1);
    forward_to_binding(std::move(request), from, direct);
    return;
  }

  const std::string aor = request.request_uri().aor();
  if (p2p_ != nullptr) {
    // Ring resolution: O(log n) hops through the gateways' finger tables;
    // the request parks here until the ring answers or times out.
    p2p_->resolve(aor, [this, request = std::move(request), from](
                           std::optional<ContactBinding> binding, int) mutable {
      if (!binding && !p2p_->stable()) {
        // The ring is mid-repair: the binding may exist on a node we could
        // not reach yet. 480 + Retry-After tells the proxy to try again
        // after stabilization instead of surfacing a terminal 404.
        counter("registrar.retry_after_total").add();
        log_.info(request.method(), " for ", request.request_uri().aor(),
                  ": ring unstable -> 480 retry-after");
        if (request.method() != kAck) {
          Message response = Message::response_to(request, 480);
          response.set_header("retry-after", "1");
          if (!transport_.send_response(response)) {
            transport_.send(response, from);
          }
        }
        return;
      }
      forward_to_binding(std::move(request), from, std::move(binding));
    });
    return;
  }
  forward_to_binding(std::move(request), from, store_lookup(aor));
}

void Registrar::forward_to_binding(Message request, net::Endpoint from,
                                   std::optional<Binding> binding) {
  if (!binding) {
    counter("registrar.requests_failed_total").add();
    log_.info(request.method(), " for ", request.request_uri().aor(),
              ": no binding -> 404");
    if (request.method() != kAck) respond(request, 404, from);
    return;
  }
  const auto contact_ep = binding->contact.numeric_endpoint();
  if (!contact_ep) {
    counter("registrar.requests_failed_total").add();
    if (request.method() != kAck) respond(request, 502, from);
    return;
  }

  Via via;
  via.host = host_.wired_address().to_string();
  via.port = config_.port;
  via.params["branch"] =
      std::string(kBranchCookie) + "reg" +
      std::to_string(host_.rng().uniform_int(0, 0xffffff));
  request.push_via(via);
  counter("registrar.requests_forwarded_total").add();
  transport_.send(request, *contact_ep);
}

void Registrar::forward_response(Message response) {
  // Pop our Via, forward to the next one.
  auto vias = response.vias();
  if (vias.empty()) return;
  if (vias.front().host != host_.wired_address().to_string()) {
    log_.warn("response with foreign top Via, dropping");
    return;
  }
  response.pop_via();
  auto next = response.top_via();
  if (!next) return;
  auto dst = next->response_endpoint();
  if (!dst) return;
  transport_.send(response, *dst);
}

}  // namespace siphoc::sip
