#include "sip/registrar_store.hpp"

#include <algorithm>
#include <cassert>

namespace siphoc::sip {

// ---------------------------------------------------------------------------
// SingleMapStore
// ---------------------------------------------------------------------------

void SingleMapStore::upsert(const std::string& aor, const Uri& contact,
                            TimePoint expires) {
  bindings_[aor] = ContactBinding{contact, expires};
}

bool SingleMapStore::erase(const std::string& aor) {
  return bindings_.erase(aor) > 0;
}

std::optional<ContactBinding> SingleMapStore::lookup(const std::string& aor,
                                                     TimePoint now) const {
  const auto it = bindings_.find(aor);
  if (it == bindings_.end() || it->second.expires <= now) return std::nullopt;
  return it->second;
}

std::size_t SingleMapStore::purge_expired(TimePoint now) {
  std::size_t purged = 0;
  for (auto it = bindings_.begin(); it != bindings_.end();) {
    if (it->second.expires <= now) {
      it = bindings_.erase(it);
      ++purged;
    } else {
      ++it;
    }
  }
  return purged;
}

void SingleMapStore::for_each(
    const std::function<void(const std::string&, const ContactBinding&)>& fn)
    const {
  for (const auto& [aor, binding] : bindings_) fn(aor, binding);
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::uint64_t hash_aor(std::string_view aor) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (const char c : aor) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return splitmix64(h);
}

// ---------------------------------------------------------------------------
// ShardedBindingStore
// ---------------------------------------------------------------------------

namespace {
/// Monotonic identity for reader-slot caching: survives a store being
/// destroyed and another allocated at the same address.
std::atomic<std::uint64_t> g_store_ids{1};
}  // namespace

class ShardedBindingStore::ReadGuard {
 public:
  ReadGuard(const ShardedBindingStore& store, ReaderSlot& slot) : slot_(slot) {
    // Pin-and-verify loop: publish the epoch we read, then re-read. Once
    // the two agree the writer's collector is guaranteed to observe the
    // pin before freeing anything retired in that epoch.
    std::uint64_t e = store.global_epoch_.load(std::memory_order_seq_cst);
    for (;;) {
      slot_.epoch.store(e, std::memory_order_seq_cst);
      const std::uint64_t e2 =
          store.global_epoch_.load(std::memory_order_seq_cst);
      if (e2 == e) break;
      e = e2;
    }
  }
  ~ReadGuard() { slot_.epoch.store(kIdleEpoch, std::memory_order_release); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  ReaderSlot& slot_;
};

ShardedBindingStore::ShardedBindingStore()
    : ShardedBindingStore(Config{}) {}

ShardedBindingStore::ShardedBindingStore(Config config)
    : config_(config) {
  config_.shards = std::max<std::size_t>(1, config_.shards);
  config_.virtual_nodes = std::max<std::size_t>(1, config_.virtual_nodes);
  config_.wheel_slots = std::max<std::size_t>(2, config_.wheel_slots);
  if (config_.wheel_granularity <= Duration::zero()) {
    config_.wheel_granularity = seconds(1);
  }
  const std::size_t capacity =
      round_up_pow2(std::max<std::size_t>(8, config_.initial_capacity));
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->table.store(new Table(capacity), std::memory_order_release);
    shard->wheel.resize(config_.wheel_slots);
    shards_.push_back(std::move(shard));
  }
  wheel_cursor_.assign(config_.shards, 0);
  wheel_floor_.assign(config_.shards, TimePoint{});

  // Consistent-hash ring: virtual_nodes points per shard, placed by mixing
  // (shard, replica). Lookup walks clockwise to the next point.
  ring_.reserve(config_.shards * config_.virtual_nodes);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    for (std::size_t v = 0; v < config_.virtual_nodes; ++v) {
      const std::uint64_t point =
          splitmix64((static_cast<std::uint64_t>(s) << 32) | v);
      ring_.emplace_back(point, static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
  store_id_ = g_store_ids.fetch_add(1, std::memory_order_relaxed);
}

ShardedBindingStore::~ShardedBindingStore() {
  for (auto& shard : shards_) {
    Table* table = shard->table.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < table->capacity(); ++i) {
      Entry* e = table->slots[i].load(std::memory_order_relaxed);
      if (e != nullptr && e != tombstone()) delete e;
    }
    delete table;
    for (auto& [epoch, entry] : shard->retired_entries) delete entry;
    for (auto& [epoch, t] : shard->retired_tables) delete t;
  }
}

std::size_t ShardedBindingStore::reader_slot_index() const {
  thread_local std::vector<std::pair<std::uint64_t, std::size_t>> cache;
  for (const auto& [id, idx] : cache) {
    if (id == store_id_) return idx;
  }
  const std::size_t idx =
      reader_count_.fetch_add(1, std::memory_order_relaxed);
  cache.emplace_back(store_id_, idx);
  return idx;
}

std::size_t ShardedBindingStore::shard_for_hash(std::uint64_t hash) const {
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), hash,
      [](std::uint64_t h, const auto& point) { return h < point.first; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::size_t ShardedBindingStore::shard_of(std::string_view aor) const {
  return shard_for_hash(hash_aor(aor));
}

std::size_t ShardedBindingStore::shard_size(std::size_t shard) const {
  return shards_.at(shard)->size.load(std::memory_order_relaxed);
}

std::size_t ShardedBindingStore::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    n += shard->size.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t ShardedBindingStore::min_pinned_epoch() const {
  std::uint64_t min_epoch = kIdleEpoch;
  const std::size_t active = std::min<std::size_t>(
      reader_count_.load(std::memory_order_relaxed), kMaxReaders);
  for (std::size_t i = 0; i < active; ++i) {
    const std::uint64_t e = readers_[i].epoch.load(std::memory_order_seq_cst);
    min_epoch = std::min(min_epoch, e);
  }
  return min_epoch;
}

void ShardedBindingStore::retire_entry(Shard& shard, Entry* entry) {
  shard.retired_entries.emplace_back(
      global_epoch_.load(std::memory_order_relaxed), entry);
}

void ShardedBindingStore::retire_table(Shard& shard, Table* table) {
  shard.retired_tables.emplace_back(
      global_epoch_.load(std::memory_order_relaxed), table);
}

void ShardedBindingStore::collect(Shard& shard) {
  global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (shard.retired_entries.empty() && shard.retired_tables.empty()) return;
  const std::uint64_t safe = min_pinned_epoch();  // free strictly below this
  auto sweep = [safe](auto& retired, auto deleter) {
    std::size_t kept = 0;
    for (auto& item : retired) {
      if (item.first < safe) {
        deleter(item.second);
      } else {
        retired[kept++] = item;
      }
    }
    retired.resize(kept);
  };
  sweep(shard.retired_entries, [](Entry* e) { delete e; });
  sweep(shard.retired_tables, [](Table* t) { delete t; });
}

ShardedBindingStore::Entry* ShardedBindingStore::find_entry(
    const Table& table, std::uint64_t hash, std::string_view aor,
    std::size_t* slot_out) const {
  std::size_t idx = hash & table.mask;
  std::size_t first_free = table.capacity();  // first tombstone on the path
  for (;;) {
    Entry* e = table.slots[idx].load(std::memory_order_acquire);
    if (e == nullptr) {
      *slot_out = first_free != table.capacity() ? first_free : idx;
      return nullptr;
    }
    if (e == tombstone()) {
      if (first_free == table.capacity()) first_free = idx;
    } else if (e->hash == hash && e->aor == aor) {
      *slot_out = idx;
      return e;
    }
    idx = (idx + 1) & table.mask;
  }
}

void ShardedBindingStore::grow(Shard& shard) {
  Table* old_table = shard.table.load(std::memory_order_acquire);
  Table* new_table = new Table(old_table->capacity() * 2);
  std::size_t live = 0;
  for (std::size_t i = 0; i < old_table->capacity(); ++i) {
    Entry* e = old_table->slots[i].load(std::memory_order_relaxed);
    if (e == nullptr || e == tombstone()) continue;
    std::size_t idx = e->hash & new_table->mask;
    while (new_table->slots[idx].load(std::memory_order_relaxed) != nullptr) {
      idx = (idx + 1) & new_table->mask;
    }
    new_table->slots[idx].store(e, std::memory_order_relaxed);
    ++live;
  }
  shard.used = live;  // tombstones do not survive the rehash
  shard.table.store(new_table, std::memory_order_release);
  retire_table(shard, old_table);
}

std::size_t ShardedBindingStore::wheel_index(TimePoint expires) const {
  const auto ticks = expires.time_since_epoch() / config_.wheel_granularity;
  return static_cast<std::size_t>(ticks) % config_.wheel_slots;
}

void ShardedBindingStore::file_in_wheel(Shard& shard, std::uint64_t hash,
                                        const std::string& aor,
                                        TimePoint expires) {
  shard.wheel[wheel_index(expires)].push_back(WheelItem{hash, aor, expires});
}

void ShardedBindingStore::upsert(const std::string& aor, const Uri& contact,
                                 TimePoint expires) {
  const std::uint64_t hash = hash_aor(aor);
  Shard& shard = *shards_[shard_for_hash(hash)];
  std::lock_guard<std::mutex> lock(shard.write_mutex);

  Table* table = shard.table.load(std::memory_order_acquire);
  if ((shard.used + 1) * 10 > table->capacity() * 7) {
    grow(shard);
    table = shard.table.load(std::memory_order_acquire);
  }

  auto* entry = new Entry{hash, aor, contact, expires};
  std::size_t slot = 0;
  Entry* existing = find_entry(*table, hash, aor, &slot);
  if (existing != nullptr) {
    table->slots[slot].store(entry, std::memory_order_release);
    retire_entry(shard, existing);
  } else {
    if (table->slots[slot].load(std::memory_order_relaxed) == nullptr) {
      ++shard.used;
    }
    table->slots[slot].store(entry, std::memory_order_release);
    shard.size.fetch_add(1, std::memory_order_relaxed);
  }
  file_in_wheel(shard, hash, aor, expires);
  collect(shard);
}

bool ShardedBindingStore::erase(const std::string& aor) {
  const std::uint64_t hash = hash_aor(aor);
  Shard& shard = *shards_[shard_for_hash(hash)];
  std::lock_guard<std::mutex> lock(shard.write_mutex);

  Table* table = shard.table.load(std::memory_order_acquire);
  std::size_t slot = 0;
  Entry* existing = find_entry(*table, hash, aor, &slot);
  if (existing == nullptr) return false;
  table->slots[slot].store(tombstone(), std::memory_order_release);
  shard.size.fetch_sub(1, std::memory_order_relaxed);
  retire_entry(shard, existing);
  collect(shard);
  return true;
}

std::optional<ContactBinding> ShardedBindingStore::lookup(
    const std::string& aor, TimePoint now) const {
  const std::uint64_t hash = hash_aor(aor);
  const Shard& shard = *shards_[shard_for_hash(hash)];

  const std::size_t reader = reader_slot_index();
  if (reader >= kMaxReaders) {
    // Reader population exceeded the slot array: stay correct by joining
    // the writer lock instead of pinning an epoch.
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    std::size_t slot = 0;
    const Entry* e =
        find_entry(*shard.table.load(std::memory_order_acquire), hash, aor,
                   &slot);
    if (e == nullptr || e->expires <= now) return std::nullopt;
    return ContactBinding{e->contact, e->expires};
  }

  ReadGuard guard(*this, readers_[reader]);
  const Table* table = shard.table.load(std::memory_order_acquire);
  std::size_t idx = hash & table->mask;
  for (;;) {
    const Entry* e = table->slots[idx].load(std::memory_order_acquire);
    if (e == nullptr) return std::nullopt;
    if (e != tombstone() && e->hash == hash && e->aor == aor) {
      if (e->expires <= now) return std::nullopt;
      return ContactBinding{e->contact, e->expires};  // copied while pinned
    }
    idx = (idx + 1) & table->mask;
  }
}

std::size_t ShardedBindingStore::purge_expired(TimePoint now) {
  std::size_t purged = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    const auto drain = [&](std::vector<WheelItem>& bucket) {
      std::size_t kept = 0;
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        WheelItem& item = bucket[i];
        if (item.expires > now) {
          // Not yet due: filed a full wheel turn out, or falls later in
          // the granule containing `now`. Keep for a later pass.
          if (kept != i) bucket[kept] = std::move(item);
          ++kept;
          continue;
        }
        Table* table = shard.table.load(std::memory_order_acquire);
        std::size_t slot = 0;
        Entry* e = find_entry(*table, item.hash, item.aor, &slot);
        // Refreshed entries carry a newer expiry than the wheel item that
        // pointed at them; only still-stale entries die.
        if (e != nullptr && e->expires <= now) {
          table->slots[slot].store(tombstone(), std::memory_order_release);
          shard.size.fetch_sub(1, std::memory_order_relaxed);
          retire_entry(shard, e);
          ++purged;
        }
      }
      bucket.resize(kept);
    };
    // Walk the wheel from the shard's floor up to `now`, one granule at a
    // time; only the due buckets are touched, never the whole table. Only
    // fully elapsed granules advance the cursor -- the granule containing
    // `now` is drained in place (items due mid-granule must not wait a
    // whole wheel lap) but stays current until it fully elapses.
    while (wheel_floor_[s] + config_.wheel_granularity <= now) {
      drain(shard.wheel[wheel_cursor_[s]]);
      wheel_cursor_[s] = (wheel_cursor_[s] + 1) % config_.wheel_slots;
      wheel_floor_[s] += config_.wheel_granularity;
    }
    if (wheel_floor_[s] <= now) drain(shard.wheel[wheel_cursor_[s]]);
    collect(shard);
  }
  return purged;
}

void ShardedBindingStore::for_each(
    const std::function<void(const std::string&, const ContactBinding&)>& fn)
    const {
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    // Writer-side walk under the shard lock: entries cannot be retired
    // underneath us, and the visit order (shard, then slot) is stable for
    // a given key population -- determinism for the handoff sweeps.
    std::lock_guard<std::mutex> lock(shard.write_mutex);
    const Table* table = shard.table.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < table->capacity(); ++i) {
      const Entry* e = table->slots[i].load(std::memory_order_acquire);
      if (e == nullptr || e == tombstone()) continue;
      fn(e->aor, ContactBinding{e->contact, e->expires});
    }
  }
}

}  // namespace siphoc::sip
