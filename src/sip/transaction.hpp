// SIP transactions (RFC 3261 section 17).
//
// Implements the four state machines -- INVITE/non-INVITE x client/server --
// with the standard timers (A/B/D client-INVITE, E/F/K client-non-INVITE,
// G/H/I server-INVITE, J server-non-INVITE) over unreliable UDP transport.
//
// One documented deviation: the server INVITE transaction also absorbs 2xx
// retransmission and ACK matching (RFC 3261 pushes 2xx handling up to the
// TU to support forking proxies; this stack's UAs are talking point to
// point, so keeping it in the transaction keeps the UA core simple). The
// ACK for a 2xx arrives on a *new* branch, so it is matched by Call-ID +
// CSeq number instead of branch.
#pragma once

#include <map>
#include <memory>

#include "common/random.hpp"
#include "sim/simulator.hpp"
#include "sip/transport.hpp"

namespace siphoc::sip {

struct TimerConfig {
  Duration t1 = milliseconds(500);
  Duration t2 = seconds(4);
  Duration t4 = seconds(5);
  Duration timeout() const { return 64 * t1; }  // Timers B, F, H, J base
  Duration timer_d() const { return seconds(32); }
};

class TransactionLayer;

/// Handle to a client transaction; the response callback fires for every
/// forwarded response (1xx then final) and once with nullopt on timeout.
class ClientTransaction {
 public:
  using ResponseCallback =
      std::function<void(std::optional<Message> response)>;

  /// The chaos engine tears whole node stacks down mid-run; pending timer
  /// events capture `this` and must not outlive the transaction.
  ~ClientTransaction() { cancel_timers(); }

  const std::string& branch() const { return branch_; }
  bool terminated() const { return state_ == State::kTerminated; }
  /// When the request was first transmitted (invariant monitor bounds the
  /// lifetime of live transactions against this).
  TimePoint started() const { return started_; }
  void cancel_timers();

 private:
  friend class TransactionLayer;
  enum class State { kCalling, kTrying, kProceeding, kCompleted, kTerminated };

  ClientTransaction(TransactionLayer& layer, Message request,
                    net::Endpoint destination, ResponseCallback callback);

  void start();
  void on_response(const Message& response);
  void retransmit();
  void on_timeout();
  void terminate();
  bool is_invite() const { return method_ == kInvite; }
  void send_ack_for(const Message& response);

  TransactionLayer& layer_;
  Message request_;
  net::Endpoint destination_;
  ResponseCallback callback_;
  std::string branch_;
  std::string method_;
  State state_;
  TimePoint started_{};  // transaction RTT span start
  Duration retransmit_interval_{};
  sim::EventHandle retransmit_timer_;
  sim::EventHandle timeout_timer_;
  sim::EventHandle kill_timer_;
};

/// Handle to a server transaction; the TU responds through it.
class ServerTransaction
    : public std::enable_shared_from_this<ServerTransaction> {
 public:
  /// See ~ClientTransaction: pending timers must die with the transaction.
  ~ServerTransaction() {
    retransmit_timer_.cancel();
    timeout_timer_.cancel();
    kill_timer_.cancel();
  }

  /// Sends (and takes responsibility for retransmitting) a response.
  void respond(Message response);
  /// Convenience: build the response from the original request.
  void respond(int status, std::string reason = {});

  const Message& request() const { return request_; }
  /// Source endpoint of the request datagram (fallback response route).
  net::Endpoint peer() const { return peer_; }
  bool terminated() const { return state_ == State::kTerminated; }
  /// When the request arrived (see ClientTransaction::started).
  TimePoint started() const { return started_; }

  /// TU hook: invoked when the ACK completing a final response arrives
  /// (INVITE transactions only).
  std::function<void(const Message& ack)> on_ack;
  /// TU hook: invoked when an INVITE final response was retransmitted for
  /// the full timeout budget and no ACK ever arrived -- the peer is gone
  /// and the UAS core must tear the nascent dialog down (RFC 3261
  /// 13.3.1.4). Without this the call is a black hole: the chaos soak's
  /// calls-terminate invariant exists to catch exactly that.
  std::function<void()> on_timeout;

 private:
  friend class TransactionLayer;
  enum class State { kTrying, kProceeding, kCompleted, kConfirmed,
                     kTerminated };

  ServerTransaction(TransactionLayer& layer, Message request,
                    net::Endpoint peer);

  void on_retransmitted_request();
  void handle_ack(const Message& ack);
  void retransmit_final();
  void terminate();
  bool is_invite() const { return method_ == kInvite; }

  TransactionLayer& layer_;
  Message request_;
  net::Endpoint peer_;
  std::string branch_;
  std::string method_;
  State state_ = State::kTrying;
  TimePoint started_{};
  std::optional<Message> last_response_;
  Duration retransmit_interval_{};
  sim::EventHandle retransmit_timer_;
  sim::EventHandle timeout_timer_;
  sim::EventHandle kill_timer_;
};

/// Owns all transactions of one SIP endpoint and dispatches messages
/// between the transport and the transaction user.
class TransactionLayer {
 public:
  /// `via_host`/`via_port`: the sent-by this element writes into the Via
  /// headers of requests it originates.
  TransactionLayer(Transport& transport, std::string via_host,
                   std::uint16_t via_port, TimerConfig timers = {});
  ~TransactionLayer();

  /// TU request handler: fires once per new server transaction. ACKs for
  /// 2xx responses are routed to the matching server transaction's on_ack;
  /// ACKs with no transaction fall through to this handler.
  using RequestHandler =
      std::function<void(std::shared_ptr<ServerTransaction>, const Message&)>;
  void set_request_handler(RequestHandler handler) {
    request_handler_ = std::move(handler);
  }

  /// Responses that match no client transaction (stray/forwarded) --
  /// proxies care, UAs usually ignore.
  using StrayHandler = std::function<void(const Message&, net::Endpoint)>;
  void set_stray_handler(StrayHandler handler) {
    stray_handler_ = std::move(handler);
  }

  /// Starts a client transaction: pushes a Via with a fresh branch onto the
  /// request and transmits it to `destination`.
  ClientTransaction* send_request(Message request, net::Endpoint destination,
                                  ClientTransaction::ResponseCallback cb);

  /// Sends a message outside any transaction (ACK for 2xx).
  void send_stateless(const Message& message, net::Endpoint destination);

  std::string new_branch();
  std::string new_tag();
  std::string new_call_id();

  Transport& transport() { return transport_; }
  sim::Simulator& sim() { return transport_.host().sim(); }
  MetricsRegistry& metrics() { return sim().ctx().metrics(); }
  const TimerConfig& timers() const { return timers_; }
  const std::string& via_host() const { return via_host_; }
  std::uint16_t via_port() const { return via_port_; }
  /// Node label for registry series (the owning host's name).
  const std::string& node() const { return node_; }

  std::size_t client_count() const { return clients_.size(); }
  std::size_t server_count() const { return servers_.size(); }

  /// Age of the oldest non-terminated transaction, or zero when none are
  /// live. The invariant monitor asserts this never exceeds the RFC 3261
  /// worst case (64*T1 plus linger timers) -- a transaction that outlives
  /// it is a leak.
  Duration oldest_transaction_age(TimePoint now) const;

  /// Drops terminated transactions (called internally; public for tests).
  void reap();

 private:
  friend class ClientTransaction;
  friend class ServerTransaction;

  void on_message(Message message, net::Endpoint from);
  void dispatch_request(Message request, net::Endpoint from);
  void dispatch_response(const Message& response, net::Endpoint from);

  Transport& transport_;
  std::string via_host_;
  std::uint16_t via_port_;
  std::string node_;
  TimerConfig timers_;
  Rng rng_;
  RequestHandler request_handler_;
  StrayHandler stray_handler_;

  // client key: branch + method (RFC 17.1.3)
  std::map<std::pair<std::string, std::string>,
           std::unique_ptr<ClientTransaction>>
      clients_;
  // server key: branch + method (ACK matches INVITE; see header comment)
  std::map<std::pair<std::string, std::string>,
           std::shared_ptr<ServerTransaction>>
      servers_;
  sim::EventHandle reap_event_;  // at most one deferred reap in flight
  std::uint64_t id_counter_ = 0;
};

}  // namespace siphoc::sip
