#include "sip/uri.hpp"

#include <charconv>

#include "common/strings.hpp"

namespace siphoc::sip {

Result<Uri> Uri::parse(std::string_view text) {
  Uri uri;
  text = trim(text);

  const auto colon = text.find(':');
  if (colon == std::string_view::npos) return fail("uri: missing scheme");
  const auto scheme = text.substr(0, colon);
  if (!iequals(scheme, "sip") && !iequals(scheme, "sips")) {
    return fail("uri: unsupported scheme '" + std::string(scheme) + "'");
  }
  uri.scheme = to_lower(scheme);
  text.remove_prefix(colon + 1);

  // Split off ;params.
  std::string_view host_part = text;
  const auto semi = text.find(';');
  if (semi != std::string_view::npos) {
    host_part = text.substr(0, semi);
    for (const auto& p : split_trimmed(text.substr(semi + 1), ';')) {
      auto [k, v] = split_kv(p, '=');
      uri.params[to_lower(k)] = v;
    }
  }

  const auto at = host_part.find('@');
  if (at != std::string_view::npos) {
    uri.user = std::string(host_part.substr(0, at));
    host_part.remove_prefix(at + 1);
  }
  if (host_part.empty()) return fail("uri: empty host");

  const auto port_colon = host_part.rfind(':');
  if (port_colon != std::string_view::npos) {
    const auto port_text = host_part.substr(port_colon + 1);
    unsigned port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
        port > 65535) {
      return fail("uri: bad port '" + std::string(port_text) + "'");
    }
    uri.port = static_cast<std::uint16_t>(port);
    host_part = host_part.substr(0, port_colon);
  }
  uri.host = std::string(host_part);
  return uri;
}

std::string Uri::to_string() const {
  std::string out = scheme + ":";
  if (!user.empty()) out += user + "@";
  out += host;
  if (port != 0) out += ":" + std::to_string(port);
  for (const auto& [k, v] : params) {
    out += ";" + k;
    if (!v.empty()) out += "=" + v;
  }
  return out;
}

std::optional<net::Endpoint> Uri::numeric_endpoint() const {
  const auto addr = net::Address::parse(host);
  if (!addr) return std::nullopt;
  return net::Endpoint{*addr, port != 0 ? port : std::uint16_t{5060}};
}

Uri Uri::from_endpoint(net::Endpoint ep, std::string user) {
  Uri uri;
  uri.user = std::move(user);
  uri.host = ep.address.to_string();
  uri.port = ep.port;
  return uri;
}

}  // namespace siphoc::sip
