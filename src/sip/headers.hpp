// Typed SIP header values (RFC 3261 section 20 subset):
//   NameAddr -- From / To / Contact / Route / Record-Route
//   Via      -- transport hop trace with branch parameter
//   CSeq     -- command sequence
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "sip/uri.hpp"

namespace siphoc::sip {

/// `"Display Name" <sip:user@host>;param=value`
struct NameAddr {
  std::string display;
  Uri uri;
  std::map<std::string, std::string> params;

  static Result<NameAddr> parse(std::string_view text);
  std::string to_string() const;

  std::string tag() const {
    const auto it = params.find("tag");
    return it == params.end() ? std::string() : it->second;
  }
  void set_tag(std::string tag) { params["tag"] = std::move(tag); }

  friend bool operator==(const NameAddr&, const NameAddr&) = default;
};

/// `SIP/2.0/UDP host:port;branch=z9hG4bK...;received=...`
struct Via {
  std::string host;
  std::uint16_t port = 5060;
  std::map<std::string, std::string> params;

  static Result<Via> parse(std::string_view text);
  std::string to_string() const;

  std::string branch() const {
    const auto it = params.find("branch");
    return it == params.end() ? std::string() : it->second;
  }

  /// Where to send the response: received param wins over sent-by host.
  Result<net::Endpoint> response_endpoint() const;

  friend bool operator==(const Via&, const Via&) = default;
};

/// `314159 INVITE`
struct CSeq {
  std::uint32_t number = 0;
  std::string method;

  static Result<CSeq> parse(std::string_view text);
  std::string to_string() const {
    return std::to_string(number) + " " + method;
  }

  friend bool operator==(const CSeq&, const CSeq&) = default;
};

/// RFC 3261 branch cookie; all compliant branches start with it.
inline constexpr std::string_view kBranchCookie = "z9hG4bK";

}  // namespace siphoc::sip
