// Internet SIP provider: registrar + stateless domain proxy.
//
// Plays the role of the paper's providers (siphoc.ch, netvoip.ch,
// polyphone.ethz.ch): stores REGISTER bindings for its domain and forwards
// requests addressed to its users to their registered contact.
//
// The binding storage is pluggable (sip/registrar_store.hpp): the seed's
// single ordered map remains the default, `store_shards >= 1` switches to
// the consistent-hash ShardedBindingStore (lock-free lookups, per-shard
// expiry wheels) that bench_registrar sizes at a million bindings, and
// set_p2p_resolver() replaces central storage entirely with a Chord-lite
// ring among gateway nodes (sip/p2p_resolver.hpp) -- REGISTER publishes
// into the ring, INVITE resolution hops through it.
//
// The `require_outbound_proxy` switch reproduces the polyphone.ethz.ch
// interoperability failure of paper section 3.2: such a provider only
// accepts requests relayed through its own outbound proxy; direct requests
// are rejected with 403. Since SIPHoc overwrites the client's
// outbound-proxy setting with localhost, the SIPHoc proxy can only deduce
// the provider's address from the URI domain via DNS -- which reaches the
// registrar directly and fails. ("This is an open issue which we plan to
// address in the near future.")
#pragma once

#include <map>
#include <memory>

#include "common/logging.hpp"
#include "common/metrics.hpp"
#include "sim/simulator.hpp"
#include "sip/registrar_store.hpp"
#include "sip/transport.hpp"

namespace siphoc::sip {

class P2pResolver;

struct RegistrarConfig {
  std::string domain;  // "voicehoc.ch"
  std::uint16_t port = 5060;
  bool require_outbound_proxy = false;
  net::Address trusted_proxy;  // only source accepted when required
  Duration max_expires = seconds(3600);
  /// Digest authentication (RFC 3261 §22): REGISTER is challenged with 401
  /// unless it carries a valid Authorization for a known account.
  bool require_auth = false;
  std::map<std::string, std::string> credentials;  // username -> password
  /// Binding backend: 0 keeps the sequential single-map store; >= 1 uses
  /// the consistent-hash ShardedBindingStore with that many shards.
  std::size_t store_shards = 0;
  /// Digest-nonce hygiene: issued nonces older than `nonce_lifetime` are
  /// purged by the maintenance timer, and the table never exceeds
  /// `nonce_cap` entries (oldest evicted first).
  Duration nonce_lifetime = minutes(5);
  std::size_t nonce_cap = 4096;
  /// Cadence of the maintenance tick (nonce purge + expiry-wheel turn).
  Duration maintenance_interval = seconds(1);
  /// Sample wall-clock store-lookup latency into `registrar.lookup_ns`.
  /// Off by default: wall time is nondeterministic, and identity-checked
  /// sidecars must stay byte-equal across --sim-threads. bench_registrar
  /// turns it on.
  bool measure_lookup_wall = false;
};

class Registrar {
 public:
  Registrar(net::Host& host, RegistrarConfig config);
  ~Registrar();

  using Binding = ContactBinding;

  /// Serverless resolution backend: when set, REGISTER publishes into the
  /// Chord-lite ring through this node and request forwarding resolves
  /// asynchronously over the ring; the local store stays empty. Wire up
  /// before traffic starts (scenario::Testbed does).
  void set_p2p_resolver(P2pResolver* p2p) { p2p_ = p2p; }
  bool p2p_mode() const { return p2p_ != nullptr; }

  std::optional<Binding> binding(const std::string& aor) const;
  std::size_t binding_count() const;
  const RegistrarConfig& config() const { return config_; }
  BindingStore& store() { return *store_; }
  /// Outstanding digest nonces (bounded; see nonce_cap).
  std::size_t nonce_count() const { return issued_nonces_.size(); }

  // Stats live on the SimContext MetricsRegistry (docs/METRICS.md,
  // "Registrar"); these accessors read the registry series back for tests
  // and examples.
  std::uint64_t registers_accepted() const;
  std::uint64_t registers_rejected() const;
  std::uint64_t requests_forwarded() const;
  std::uint64_t requests_failed() const;

 private:
  void on_message(Message message, net::Endpoint from);
  void handle_register(Message request, net::Endpoint from);
  /// True when the REGISTER may proceed; otherwise a 401 challenge (or 403
  /// for unknown/bad credentials) has been sent.
  bool check_authorization(const Message& request, net::Endpoint from);
  void forward_request(Message request, net::Endpoint from);
  /// Tail of forward_request once the binding is known (sync from the
  /// store, async from the P2P ring).
  void forward_to_binding(Message request, net::Endpoint from,
                          std::optional<Binding> binding);
  void forward_response(Message response);
  void respond(const Message& request, int status, net::Endpoint from);
  void maintenance_tick();
  std::uint64_t read_counter(const char* name) const;
  Counter& counter(const char* name);
  std::optional<Binding> store_lookup(const std::string& aor) const;

  net::Host& host_;
  RegistrarConfig config_;
  Logger log_;
  Transport transport_;
  std::unique_ptr<BindingStore> store_;
  P2pResolver* p2p_ = nullptr;
  std::map<std::string, TimePoint> issued_nonces_;
  std::uint64_t nonce_counter_ = 0;
  sim::PeriodicTimer maintenance_;
};

}  // namespace siphoc::sip
