// Internet SIP provider: registrar + stateless domain proxy.
//
// Plays the role of the paper's providers (siphoc.ch, netvoip.ch,
// polyphone.ethz.ch): stores REGISTER bindings for its domain and forwards
// requests addressed to its users to their registered contact.
//
// The `require_outbound_proxy` switch reproduces the polyphone.ethz.ch
// interoperability failure of paper section 3.2: such a provider only
// accepts requests relayed through its own outbound proxy; direct requests
// are rejected with 403. Since SIPHoc overwrites the client's
// outbound-proxy setting with localhost, the SIPHoc proxy can only deduce
// the provider's address from the URI domain via DNS -- which reaches the
// registrar directly and fails. ("This is an open issue which we plan to
// address in the near future.")
#pragma once

#include <map>

#include "common/logging.hpp"
#include "sim/simulator.hpp"
#include "sip/transport.hpp"

namespace siphoc::sip {

struct RegistrarConfig {
  std::string domain;  // "voicehoc.ch"
  std::uint16_t port = 5060;
  bool require_outbound_proxy = false;
  net::Address trusted_proxy;  // only source accepted when required
  Duration max_expires = seconds(3600);
  /// Digest authentication (RFC 3261 §22): REGISTER is challenged with 401
  /// unless it carries a valid Authorization for a known account.
  bool require_auth = false;
  std::map<std::string, std::string> credentials;  // username -> password
};

class Registrar {
 public:
  Registrar(net::Host& host, RegistrarConfig config);

  struct Binding {
    Uri contact;
    TimePoint expires{};
  };

  std::optional<Binding> binding(const std::string& aor) const;
  std::size_t binding_count() const;
  const RegistrarConfig& config() const { return config_; }

  struct RegistrarStats {
    std::uint64_t registers_accepted = 0;
    std::uint64_t registers_rejected = 0;
    std::uint64_t requests_forwarded = 0;
    std::uint64_t requests_failed = 0;
  };
  const RegistrarStats& stats() const { return stats_; }

 private:
  void on_message(Message message, net::Endpoint from);
  void handle_register(Message request, net::Endpoint from);
  /// True when the REGISTER may proceed; otherwise a 401 challenge (or 403
  /// for unknown/bad credentials) has been sent.
  bool check_authorization(const Message& request, net::Endpoint from);
  void forward_request(Message request, net::Endpoint from);
  void forward_response(Message response);
  void respond(const Message& request, int status, net::Endpoint from);

  net::Host& host_;
  RegistrarConfig config_;
  Logger log_;
  Transport transport_;
  std::map<std::string, Binding> bindings_;  // AOR -> contact
  std::map<std::string, TimePoint> issued_nonces_;
  std::uint64_t nonce_counter_ = 0;
  RegistrarStats stats_;
};

}  // namespace siphoc::sip
