// SIP URI (RFC 3261 section 19.1, subset: sip scheme, user@host:port and
// ;parameters). Hosts may be domain names ("voicehoc.ch") or numeric
// addresses; the transport layer decides how to resolve them.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "net/address.hpp"

namespace siphoc::sip {

struct Uri {
  std::string scheme = "sip";
  std::string user;
  std::string host;
  std::uint16_t port = 0;  // 0 = unspecified (defaults to 5060 on resolve)
  std::map<std::string, std::string> params;

  static Result<Uri> parse(std::string_view text);
  std::string to_string() const;

  /// Address-of-record: "user@host" -- the key under which contacts are
  /// advertised in MANET SLP and stored by registrars.
  std::string aor() const { return user + "@" + host; }

  /// Numeric hosts resolve directly; domain hosts need DNS.
  std::optional<net::Endpoint> numeric_endpoint() const;

  /// Builds a URI pointing at a concrete endpoint (Contact construction).
  static Uri from_endpoint(net::Endpoint ep, std::string user = {});

  friend bool operator==(const Uri&, const Uri&) = default;
};

}  // namespace siphoc::sip
