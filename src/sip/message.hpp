// SIP message model, parser and serializer (RFC 3261 wire format).
//
// Messages travel as real text -- the same bytes Kphone or Twinkle would
// emit -- so the packet_trace example can show genuine "INVITE
// sip:bob@voicehoc.ch SIP/2.0" datagrams crossing the MANET, and the
// parser is exercised against the exact grammar subset the middleware
// needs: request/status line, headers (with compact-form aliases), body.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "sip/headers.hpp"

namespace siphoc::sip {

// Methods used by the deployment.
inline constexpr std::string_view kRegister = "REGISTER";
inline constexpr std::string_view kInvite = "INVITE";
inline constexpr std::string_view kAck = "ACK";
inline constexpr std::string_view kBye = "BYE";
inline constexpr std::string_view kCancel = "CANCEL";
inline constexpr std::string_view kOptions = "OPTIONS";
inline constexpr std::string_view kMessage = "MESSAGE";  // RFC 3428 paging IM

class Message {
 public:
  /// Builds a request skeleton (start line only; callers add headers).
  static Message request(std::string method, Uri request_uri);
  /// Builds a response to `req`: copies Via stack, From, To, Call-ID, CSeq
  /// per RFC 3261 8.2.6.
  static Message response_to(const Message& req, int status,
                             std::string reason = {});

  static Result<Message> parse(std::string_view text);
  std::string serialize() const;

  bool is_request() const { return is_request_; }
  bool is_response() const { return !is_request_; }

  const std::string& method() const { return method_; }
  const Uri& request_uri() const { return request_uri_; }
  void set_request_uri(Uri uri) { request_uri_ = std::move(uri); }
  int status() const { return status_; }
  const std::string& reason() const { return reason_; }

  // --- raw header access (ordered; names case-insensitive) ---------------
  std::optional<std::string> header(std::string_view name) const;
  std::vector<std::string> headers(std::string_view name) const;
  void set_header(std::string_view name, std::string value);   // replace all
  void add_header(std::string_view name, std::string value);   // append
  void prepend_header(std::string_view name, std::string value);
  void remove_header(std::string_view name);
  /// Removes only the first instance (Via pop, Route pop).
  void remove_first_header(std::string_view name);
  const std::vector<std::pair<std::string, std::string>>& raw_headers() const {
    return headers_;
  }

  // --- typed accessors ----------------------------------------------------
  Result<NameAddr> from() const;
  Result<NameAddr> to() const;
  Result<CSeq> cseq() const;
  std::string call_id() const;
  Result<Via> top_via() const;
  std::vector<Via> vias() const;
  void push_via(const Via& via);
  void pop_via();
  std::optional<NameAddr> contact() const;
  std::vector<NameAddr> route_set(std::string_view header_name) const;
  int max_forwards() const;
  void set_max_forwards(int value);

  const std::string& body() const { return body_; }
  void set_body(std::string body, std::string content_type);

  /// Compact one-liner for logs: "INVITE sip:bob@... (3 Vias)".
  std::string summary() const;

 private:
  bool is_request_ = true;
  std::string method_;
  Uri request_uri_;
  int status_ = 0;
  std::string reason_;
  std::vector<std::pair<std::string, std::string>> headers_;
  std::string body_;
};

/// Default reason phrases for the status codes the stack emits.
std::string_view default_reason(int status);

}  // namespace siphoc::sip
