#include "sip/auth.hpp"

#include "common/md5.hpp"
#include "common/strings.hpp"

namespace siphoc::sip {

namespace {

/// Parses `Digest k1="v1", k2=v2, ...` into a map; values may be quoted.
Result<std::map<std::string, std::string>> parse_digest_params(
    std::string_view header) {
  header = trim(header);
  if (!istarts_with(header, "Digest")) return fail("auth: not Digest");
  header.remove_prefix(6);
  std::map<std::string, std::string> params;
  for (const auto& field : split_trimmed(header, ',')) {
    auto [key, value] = split_kv(field, '=');
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    }
    params[to_lower(key)] = value;
  }
  return params;
}

}  // namespace

Result<DigestChallenge> DigestChallenge::parse(std::string_view header) {
  auto params = parse_digest_params(header);
  if (!params) return params.error();
  DigestChallenge c;
  c.realm = (*params)["realm"];
  c.nonce = (*params)["nonce"];
  c.stale = to_lower((*params)["stale"]) == "true";
  if (c.realm.empty() || c.nonce.empty()) {
    return fail("auth: challenge missing realm/nonce");
  }
  return c;
}

std::string DigestChallenge::to_string() const {
  return "Digest realm=\"" + realm + "\", nonce=\"" + nonce +
         (stale ? "\", stale=true, algorithm=MD5" : "\", algorithm=MD5");
}

Result<DigestAuthorization> DigestAuthorization::parse(
    std::string_view header) {
  auto params = parse_digest_params(header);
  if (!params) return params.error();
  DigestAuthorization a;
  a.username = (*params)["username"];
  a.realm = (*params)["realm"];
  a.nonce = (*params)["nonce"];
  a.uri = (*params)["uri"];
  a.response = (*params)["response"];
  if (a.username.empty() || a.nonce.empty() || a.response.empty()) {
    return fail("auth: authorization missing fields");
  }
  return a;
}

std::string DigestAuthorization::to_string() const {
  return "Digest username=\"" + username + "\", realm=\"" + realm +
         "\", nonce=\"" + nonce + "\", uri=\"" + uri + "\", response=\"" +
         response + "\", algorithm=MD5";
}

std::string digest_response(const std::string& username,
                            const std::string& realm,
                            const std::string& password,
                            const std::string& nonce,
                            const std::string& method,
                            const std::string& uri) {
  const std::string ha1 = md5_hex(username + ":" + realm + ":" + password);
  const std::string ha2 = md5_hex(method + ":" + uri);
  return md5_hex(ha1 + ":" + nonce + ":" + ha2);
}

DigestAuthorization answer_challenge(const DigestChallenge& challenge,
                                     const std::string& username,
                                     const std::string& password,
                                     const Message& request) {
  DigestAuthorization a;
  a.username = username;
  a.realm = challenge.realm;
  a.nonce = challenge.nonce;
  a.uri = request.request_uri().to_string();
  a.response = digest_response(username, challenge.realm, password,
                               challenge.nonce, request.method(), a.uri);
  return a;
}

bool verify_authorization(const DigestAuthorization& auth,
                          const std::string& password,
                          const std::string& method) {
  const std::string expected = digest_response(
      auth.username, auth.realm, password, auth.nonce, method, auth.uri);
  return expected == auth.response;
}

}  // namespace siphoc::sip
