#include "sip/user_agent.hpp"

#include "sip/auth.hpp"

namespace siphoc::sip {

UserAgent::UserAgent(net::Host& host, UserAgentConfig config)
    : host_(host),
      config_(std::move(config)),
      log_("ua", host.name()),
      transport_(host, config_.sip_port),
      // The UA talks to its outbound proxy on the same host, so loopback is
      // a valid sent-by: responses retrace through that proxy.
      txn_(transport_, net::kLoopbackAddress.to_string(), config_.sip_port),
      next_rtp_port_(config_.rtp_port) {
  txn_.set_request_handler(
      [this](std::shared_ptr<ServerTransaction> txn, const Message& request) {
        handle_request(std::move(txn), request);
      });
}

UserAgent::~UserAgent() {
  register_refresh_.cancel();
  for (auto& [id, call] : calls_) call.answer_timer.cancel();
}

net::Address UserAgent::media_address() const {
  if (!config_.media_address.is_unspecified()) return config_.media_address;
  if (!host_.manet_address().is_unspecified()) return host_.manet_address();
  return host_.wired_address();
}

net::Address UserAgent::contact_address() const {
  if (config_.outbound_proxy.address.is_loopback()) {
    return net::kLoopbackAddress;
  }
  return media_address();
}

// --------------------------------------------------------------------------
// Registration
// --------------------------------------------------------------------------

Message UserAgent::make_dialogless(std::string method, Uri request_uri) {
  Message m = Message::request(std::move(method), std::move(request_uri));
  NameAddr from;
  from.uri = config_.aor;
  from.set_tag(txn_.new_tag());
  m.add_header("from", from.to_string());
  NameAddr to;
  to.uri = config_.aor;
  m.add_header("to", to.to_string());
  m.add_header("call-id", txn_.new_call_id());
  return m;
}

void UserAgent::start_registration() {
  registering_ = true;
  if (register_call_id_.empty()) register_call_id_ = txn_.new_call_id();
  send_register(
      static_cast<std::uint32_t>(to_seconds(config_.register_expires)));
}

void UserAgent::stop_registration() {
  registering_ = false;
  register_refresh_.cancel();
  if (registered_) send_register(0);
  registered_ = false;
}

void UserAgent::send_register(std::uint32_t expires) {
  // RFC 10.2: request URI is the domain, To/From the AOR.
  Uri domain_uri;
  domain_uri.host = config_.aor.host;
  Message reg = make_dialogless(std::string(kRegister), domain_uri);
  reg.set_header("call-id", register_call_id_);
  reg.set_header("cseq", std::to_string(++register_cseq_) + " REGISTER");

  NameAddr contact;
  contact.uri = Uri::from_endpoint(
      {contact_address(), config_.sip_port}, config_.aor.user);
  reg.add_header("contact", contact.to_string());
  reg.add_header("expires", std::to_string(expires));

  // Answer an outstanding digest challenge (RFC 3261 §22.2).
  if (register_challenge_ && !config_.password.empty()) {
    if (const auto challenge =
            DigestChallenge::parse(*register_challenge_)) {
      reg.add_header("authorization",
                     answer_challenge(*challenge, config_.aor.user,
                                      config_.password, reg)
                         .to_string());
    }
  }

  log_.info("REGISTER ", config_.aor.aor(), " expires=", expires);
  txn_.send_request(
      std::move(reg), config_.outbound_proxy,
      [this, expires](const std::optional<Message>& response) {
        if (!response) {
          registered_ = false;
          log_.warn("REGISTER timed out");
          if (callbacks_.on_register_result)
            callbacks_.on_register_result(false, 408);
          return;
        }
        if (response->status() < 200) return;
        if (response->status() == 401 && !config_.password.empty() &&
            auth_attempts_ < 2) {
          // Challenged: retry with credentials.
          ++auth_attempts_;
          register_challenge_ = response->header("www-authenticate");
          if (register_challenge_) {
            log_.info("REGISTER challenged, answering with credentials");
            send_register(expires);
            return;
          }
        }
        const bool ok = response->status() < 300;
        if (ok) auth_attempts_ = 0;
        registered_ = ok && expires > 0;
        log_.info("REGISTER -> ", response->status(), " ",
                  response->reason());
        if (callbacks_.on_register_result)
          callbacks_.on_register_result(ok, response->status());
        if (registered_ && registering_) {
          // Refresh at half the granted lifetime.
          register_refresh_.cancel();
          register_refresh_ = host_.sim().schedule(
              config_.register_expires / 2, [this] {
                if (registering_) start_registration();
              });
        }
      });
}

// --------------------------------------------------------------------------
// UAC: outgoing calls
// --------------------------------------------------------------------------

CallId UserAgent::invite(Uri target) {
  const CallId id = next_call_id_++;
  Call& call = calls_[id];
  call.id = id;
  call.outgoing = true;
  call.state = CallState::kInviting;
  call.started = host_.sim().now();
  call.local_rtp_port = next_rtp_port_;
  next_rtp_port_ += 2;  // leave room for RTCP, as real phones do

  Message inv = Message::request(std::string(kInvite), target);
  NameAddr from;
  from.uri = config_.aor;
  from.set_tag(txn_.new_tag());
  inv.add_header("from", from.to_string());
  NameAddr to;
  to.uri = target;
  inv.add_header("to", to.to_string());
  inv.add_header("call-id", txn_.new_call_id());
  inv.add_header("cseq", "1 INVITE");
  NameAddr contact;
  contact.uri = Uri::from_endpoint({contact_address(), config_.sip_port},
                                   config_.aor.user);
  inv.add_header("contact", contact.to_string());

  const Sdp offer = Sdp::audio(media_address(), call.local_rtp_port,
                               host_.rng().uniform_u64() >> 16);
  inv.set_body(offer.serialize(), std::string(kSdpContentType));

  call.invite = inv;
  log_.info("calling ", target.aor());
  txn_.send_request(std::move(inv), config_.outbound_proxy,
                    [this, id](const std::optional<Message>& response) {
                      on_invite_response(id, response);
                    });
  return id;
}

void UserAgent::on_invite_response(CallId id,
                                   const std::optional<Message>& response) {
  Call* call = find_call(id);
  if (call == nullptr || call->state == CallState::kEnded) return;

  if (!response) {
    call->state = CallState::kEnded;
    if (callbacks_.on_failed) callbacks_.on_failed(id, 408);
    return;
  }
  const int status = response->status();
  if (status < 200) {
    if (status == 180 || status == 183) {
      call->state = CallState::kRinging;
      if (callbacks_.on_ringing) callbacks_.on_ringing(id);
    }
    return;
  }
  if (status >= 300) {
    call->state = CallState::kEnded;
    if (callbacks_.on_failed) callbacks_.on_failed(id, status);
    return;
  }

  // 2xx: build the dialog and ACK through the proxy chain.
  auto dialog = Dialog::from_uac(*call->invite, *response);
  if (!dialog) {
    log_.warn("cannot build dialog: ", dialog.error().message);
    call->state = CallState::kEnded;
    if (callbacks_.on_failed) callbacks_.on_failed(id, 500);
    return;
  }
  call->dialog = std::move(*dialog);

  Message ack = call->dialog.make_request(std::string(kAck));
  Via via;
  via.host = txn_.via_host();
  via.port = txn_.via_port();
  via.params["branch"] = txn_.new_branch();
  ack.push_via(via);
  txn_.send_stateless(ack, config_.outbound_proxy);

  auto sdp = Sdp::parse(response->body());
  if (sdp) {
    if (auto ep = sdp->audio_endpoint()) call->remote_rtp = *ep;
  }
  call->state = CallState::kEstablished;
  if (callbacks_.on_established)
    callbacks_.on_established(id, call->remote_rtp);
}

void UserAgent::hangup(CallId id) {
  Call* call = find_call(id);
  if (call == nullptr) return;
  if (call->state == CallState::kEstablished) {
    Message bye = call->dialog.make_request(std::string(kBye));
    txn_.send_request(std::move(bye), config_.outbound_proxy,
                      [this, id](const std::optional<Message>&) {
                        if (callbacks_.on_ended) callbacks_.on_ended(id);
                      });
    call->state = CallState::kEnded;
    return;
  }
  // Caller abandons an unanswered outgoing call: CANCEL (RFC 3261 9.1).
  if (call->outgoing && call->invite &&
      (call->state == CallState::kInviting ||
       call->state == CallState::kRinging)) {
    Message cancel =
        Message::request(std::string(kCancel), call->invite->request_uri());
    for (const auto& [name, value] : call->invite->raw_headers()) {
      if (name == "from" || name == "to" || name == "call-id") {
        cancel.add_header(name, value);
      }
    }
    if (const auto cseq = call->invite->cseq()) {
      cancel.add_header("cseq",
                        std::to_string(cseq->number) + " CANCEL");
    }
    log_.info("cancelling call ", id);
    txn_.send_request(std::move(cancel), config_.outbound_proxy,
                      [](const std::optional<Message>&) {});
    // The 487 to the INVITE (or its timeout) delivers on_failed.
    return;
  }
  if (!call->outgoing && call->server_txn &&
      call->state != CallState::kEnded) {
    reject(id, 486);
  }
}

void UserAgent::reinvite(CallId id, net::Address new_media_address) {
  Call* call = find_call(id);
  if (call == nullptr || call->state != CallState::kEstablished) return;
  call->media_override = new_media_address;

  Message inv = call->dialog.make_request(std::string(kInvite));
  NameAddr contact;
  contact.uri = Uri::from_endpoint({contact_address(), config_.sip_port},
                                   config_.aor.user);
  inv.add_header("contact", contact.to_string());
  const Sdp offer = Sdp::audio(new_media_address, call->local_rtp_port,
                               host_.rng().uniform_u64() >> 16);
  inv.set_body(offer.serialize(), std::string(kSdpContentType));
  log_.info("re-INVITE call ", id, ", media now at ",
            new_media_address.to_string());
  txn_.send_request(
      std::move(inv), config_.outbound_proxy,
      [this, id](const std::optional<Message>& response) {
        Call* call = find_call(id);
        if (call == nullptr || call->state != CallState::kEstablished) return;
        if (!response || response->status() >= 300) {
          // Update failed: keep the session as it was (RFC 3261 14.1).
          log_.warn("re-INVITE failed");
          return;
        }
        if (response->status() < 200) return;
        Message ack = call->dialog.make_request(std::string(kAck));
        Via via;
        via.host = txn_.via_host();
        via.port = txn_.via_port();
        via.params["branch"] = txn_.new_branch();
        ack.push_via(via);
        txn_.send_stateless(ack, config_.outbound_proxy);
        if (auto sdp = Sdp::parse(response->body())) {
          if (auto ep = sdp->audio_endpoint()) call->remote_rtp = *ep;
        }
        if (callbacks_.on_established)
          callbacks_.on_established(id, call->remote_rtp);
      });
}

void UserAgent::reject(CallId id, int status) {
  Call* call = find_call(id);
  if (call == nullptr || call->outgoing || !call->server_txn) return;
  call->answer_timer.cancel();
  call->server_txn->respond(status);
  call->state = CallState::kEnded;
}

// --------------------------------------------------------------------------
// Instant messaging
// --------------------------------------------------------------------------

void UserAgent::send_text(Uri target, std::string text,
                          std::function<void(bool, int)> callback) {
  Message m = Message::request(std::string(kMessage), target);
  NameAddr from;
  from.uri = config_.aor;
  from.set_tag(txn_.new_tag());
  m.add_header("from", from.to_string());
  NameAddr to;
  to.uri = std::move(target);
  m.add_header("to", to.to_string());
  m.add_header("call-id", txn_.new_call_id());
  m.add_header("cseq", "1 MESSAGE");
  m.set_body(std::move(text), "text/plain");
  txn_.send_request(std::move(m), config_.outbound_proxy,
                    [callback = std::move(callback)](
                        const std::optional<Message>& response) {
                      if (!callback) return;
                      if (!response) {
                        callback(false, 408);
                      } else if (response->status() >= 200) {
                        callback(response->status() < 300,
                                 response->status());
                      }
                    });
}

// --------------------------------------------------------------------------
// UAS: incoming requests
// --------------------------------------------------------------------------

void UserAgent::handle_request(std::shared_ptr<ServerTransaction> txn,
                               const Message& request) {
  if (txn == nullptr) return;  // stray ACK: the transaction layer matched none
  const std::string& method = request.method();
  if (method == kInvite) {
    handle_invite(std::move(txn));
  } else if (method == kBye) {
    handle_bye(std::move(txn), request);
  } else if (method == kOptions) {
    txn->respond(200);
  } else if (method == kMessage) {
    txn->respond(200);
    if (callbacks_.on_text) {
      const auto from = request.from();
      callbacks_.on_text(from ? from->uri : Uri{}, request.body());
    }
  } else if (method == kCancel) {
    txn->respond(200);
    // Find the ringing call with this Call-ID and terminate it.
    for (auto& [id, call] : calls_) {
      if (!call.outgoing && call.invite &&
          call.invite->call_id() == request.call_id() &&
          (call.state == CallState::kRinging ||
           call.state == CallState::kIdle)) {
        call.answer_timer.cancel();
        if (call.server_txn) call.server_txn->respond(487);
        call.state = CallState::kEnded;
        if (callbacks_.on_ended) callbacks_.on_ended(id);
        break;
      }
    }
  } else {
    txn->respond(501, "Not Implemented");
  }
}

void UserAgent::handle_invite(std::shared_ptr<ServerTransaction> txn) {
  const Message& request = txn->request();
  // In-dialog re-INVITE: renegotiate media on the existing call.
  for (auto& [cid, call] : calls_) {
    if (call.state == CallState::kEstablished &&
        call.dialog.matches_request(request)) {
      handle_reinvite(std::move(txn), call);
      return;
    }
  }
  const CallId id = next_call_id_++;
  Call& call = calls_[id];
  call.id = id;
  call.outgoing = false;
  call.started = host_.sim().now();
  call.invite = request;
  call.server_txn = txn;
  call.local_rtp_port = next_rtp_port_;
  next_rtp_port_ += 2;

  auto sdp = Sdp::parse(request.body());
  if (!sdp) {
    txn->respond(400, "Bad SDP");
    call.state = CallState::kEnded;
    return;
  }
  if (auto ep = sdp->audio_endpoint()) call.remote_rtp = *ep;

  // Ring.
  Message ringing = Message::response_to(request, 180);
  auto to = ringing.to();
  if (to && to->tag().empty()) {
    to->set_tag(txn_.new_tag());
    ringing.set_header("to", to->to_string());
  }
  txn->respond(std::move(ringing));
  call.state = CallState::kRinging;

  const auto from = request.from();
  if (callbacks_.on_incoming) {
    callbacks_.on_incoming(id, from ? from->uri : Uri{});
  }
  if (config_.auto_answer) {
    call.answer_timer = host_.sim().schedule(config_.answer_delay,
                                             [this, id] { accept_call(id); });
  }
}

void UserAgent::handle_reinvite(std::shared_ptr<ServerTransaction> txn,
                                Call& call) {
  const Message& request = txn->request();
  auto sdp = Sdp::parse(request.body());
  if (!sdp) {
    txn->respond(488, "Not Acceptable Here");
    return;
  }
  // Track the peer's new offer; update the remote CSeq for the dialog.
  if (const auto cseq = request.cseq()) {
    call.dialog.remote_cseq = cseq->number;
  }
  net::Endpoint new_remote = call.remote_rtp;
  if (auto ep = sdp->audio_endpoint()) new_remote = *ep;

  Message ok = Message::response_to(request, 200);
  NameAddr contact;
  contact.uri = Uri::from_endpoint({contact_address(), config_.sip_port},
                                   config_.aor.user);
  ok.add_header("contact", contact.to_string());
  const net::Address media = call.media_override.is_unspecified()
                                 ? media_address()
                                 : call.media_override;
  const Sdp answer = Sdp::audio(media, call.local_rtp_port,
                                host_.rng().uniform_u64() >> 16);
  ok.set_body(answer.serialize(), std::string(kSdpContentType));
  const CallId id = call.id;
  txn->on_ack = [this, id, new_remote](const Message&) {
    Call* call = find_call(id);
    if (call == nullptr || call->state != CallState::kEstablished) return;
    call->remote_rtp = new_remote;
    log_.info("re-INVITE on call ", id, " completed; peer media at ",
              new_remote.to_string());
    if (callbacks_.on_established)
      callbacks_.on_established(id, call->remote_rtp);
  };
  txn->respond(std::move(ok));
}

void UserAgent::answer(CallId id) { accept_call(id); }

void UserAgent::accept_call(CallId id) {
  Call* call = find_call(id);
  if (call == nullptr || call->outgoing || !call->server_txn ||
      call->state != CallState::kRinging) {
    return;
  }
  const Message& request = *call->invite;

  Message ok = Message::response_to(request, 200);
  auto to = ok.to();
  if (to && to->tag().empty()) {
    to->set_tag(txn_.new_tag());
    ok.set_header("to", to->to_string());
  }
  NameAddr contact;
  contact.uri = Uri::from_endpoint({contact_address(), config_.sip_port},
                                   config_.aor.user);
  ok.add_header("contact", contact.to_string());
  const Sdp answer = Sdp::audio(media_address(), call->local_rtp_port,
                                host_.rng().uniform_u64() >> 16);
  ok.set_body(answer.serialize(), std::string(kSdpContentType));

  auto dialog = Dialog::from_uas(request, ok);
  call->server_txn->on_ack = [this, id](const Message&) {
    Call* call = find_call(id);
    if (call == nullptr || call->state != CallState::kRinging) return;
    call->state = CallState::kEstablished;
    if (callbacks_.on_established)
      callbacks_.on_established(id, call->remote_rtp);
  };
  call->server_txn->on_timeout = [this, id] {
    Call* call = find_call(id);
    if (call == nullptr || call->state != CallState::kRinging) return;
    // Our 200 was never ACKed: the caller vanished mid-handshake
    // (partition, crash). Tear the nascent dialog down instead of ringing
    // forever.
    log_.info("call ", id, " never ACKed; abandoning");
    call->state = CallState::kEnded;
    if (callbacks_.on_failed) callbacks_.on_failed(id, 408);
  };
  call->server_txn->respond(std::move(ok));
  if (dialog) call->dialog = std::move(*dialog);
}

void UserAgent::handle_bye(std::shared_ptr<ServerTransaction> txn,
                           const Message& request) {
  Call* call = find_call_by_dialog(request);
  txn->respond(call != nullptr ? 200 : 481);
  if (call != nullptr && call->state != CallState::kEnded) {
    call->state = CallState::kEnded;
    if (callbacks_.on_ended) callbacks_.on_ended(call->id);
  }
}

// --------------------------------------------------------------------------
// Lookup
// --------------------------------------------------------------------------

UserAgent::Call* UserAgent::find_call(CallId id) {
  const auto it = calls_.find(id);
  return it == calls_.end() ? nullptr : &it->second;
}

UserAgent::Call* UserAgent::find_call_by_dialog(const Message& request) {
  for (auto& [id, call] : calls_) {
    if (call.state == CallState::kEstablished &&
        call.dialog.matches_request(request)) {
      return &call;
    }
    // BYE can also race the ACK: match ringing incoming calls by Call-ID.
    if (call.invite && call.invite->call_id() == request.call_id() &&
        call.state != CallState::kEnded) {
      return &call;
    }
  }
  return nullptr;
}

UserAgent::CallState UserAgent::call_state(CallId id) const {
  const auto it = calls_.find(id);
  return it == calls_.end() ? CallState::kIdle : it->second.state;
}

std::size_t UserAgent::active_calls() const {
  std::size_t n = 0;
  for (const auto& [id, call] : calls_) {
    if (call.state == CallState::kEstablished) ++n;
  }
  return n;
}

std::vector<UserAgent::CallSnapshot> UserAgent::call_snapshots() const {
  std::vector<CallSnapshot> out;
  out.reserve(calls_.size());
  for (const auto& [id, call] : calls_) {
    out.push_back({call.id, call.state, call.started});
  }
  return out;
}

net::Endpoint UserAgent::local_rtp(CallId id) const {
  const auto it = calls_.find(id);
  if (it == calls_.end()) return {};
  return {media_address(), it->second.local_rtp_port};
}

}  // namespace siphoc::sip
