#include "sip/headers.hpp"

#include <charconv>

#include "common/strings.hpp"

namespace siphoc::sip {

namespace {

void parse_params(std::string_view text,
                  std::map<std::string, std::string>& out) {
  for (const auto& p : split_trimmed(text, ';')) {
    auto [k, v] = split_kv(p, '=');
    out[to_lower(k)] = v;
  }
}

}  // namespace

Result<NameAddr> NameAddr::parse(std::string_view text) {
  NameAddr na;
  text = trim(text);

  const auto lt = text.find('<');
  if (lt != std::string_view::npos) {
    const auto gt = text.find('>', lt);
    if (gt == std::string_view::npos) return fail("name-addr: missing '>'");
    auto display = trim(text.substr(0, lt));
    if (display.size() >= 2 && display.front() == '"' &&
        display.back() == '"') {
      display = display.substr(1, display.size() - 2);
    }
    na.display = std::string(display);
    auto uri = Uri::parse(text.substr(lt + 1, gt - lt - 1));
    if (!uri) return uri.error();
    na.uri = std::move(*uri);
    if (gt + 1 < text.size()) {
      auto rest = text.substr(gt + 1);
      const auto semi = rest.find(';');
      if (semi != std::string_view::npos) {
        parse_params(rest.substr(semi + 1), na.params);
      }
    }
    return na;
  }

  // addr-spec form: params after ';' belong to the header, not the URI.
  const auto semi = text.find(';');
  auto uri = Uri::parse(semi == std::string_view::npos ? text
                                                       : text.substr(0, semi));
  if (!uri) return uri.error();
  na.uri = std::move(*uri);
  if (semi != std::string_view::npos) {
    parse_params(text.substr(semi + 1), na.params);
  }
  return na;
}

std::string NameAddr::to_string() const {
  std::string out;
  if (!display.empty()) out += "\"" + display + "\" ";
  out += "<" + uri.to_string() + ">";
  for (const auto& [k, v] : params) {
    out += ";" + k;
    if (!v.empty()) out += "=" + v;
  }
  return out;
}

Result<Via> Via::parse(std::string_view text) {
  Via via;
  text = trim(text);
  if (!istarts_with(text, "SIP/2.0/")) return fail("via: bad protocol");
  text.remove_prefix(8);
  const auto space = text.find(' ');
  if (space == std::string_view::npos) return fail("via: missing sent-by");
  const auto transport = text.substr(0, space);
  if (!iequals(transport, "UDP")) {
    return fail("via: unsupported transport '" + std::string(transport) + "'");
  }
  text = trim(text.substr(space + 1));

  std::string_view sent_by = text;
  const auto semi = text.find(';');
  if (semi != std::string_view::npos) {
    sent_by = trim(text.substr(0, semi));
    parse_params(text.substr(semi + 1), via.params);
  }
  const auto colon = sent_by.rfind(':');
  if (colon != std::string_view::npos) {
    const auto port_text = sent_by.substr(colon + 1);
    unsigned port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
        port > 65535) {
      return fail("via: bad port");
    }
    via.port = static_cast<std::uint16_t>(port);
    sent_by = sent_by.substr(0, colon);
  }
  if (sent_by.empty()) return fail("via: empty host");
  via.host = std::string(sent_by);
  return via;
}

std::string Via::to_string() const {
  std::string out = "SIP/2.0/UDP " + host + ":" + std::to_string(port);
  for (const auto& [k, v] : params) {
    out += ";" + k;
    if (!v.empty()) out += "=" + v;
  }
  return out;
}

Result<net::Endpoint> Via::response_endpoint() const {
  std::string addr_text = host;
  if (const auto it = params.find("received"); it != params.end()) {
    addr_text = it->second;
  }
  const auto addr = net::Address::parse(addr_text);
  if (!addr) return fail("via: non-numeric sent-by without received param");
  return net::Endpoint{*addr, port};
}

Result<CSeq> CSeq::parse(std::string_view text) {
  text = trim(text);
  const auto space = text.find(' ');
  if (space == std::string_view::npos) return fail("cseq: missing method");
  CSeq cseq;
  const auto num_text = text.substr(0, space);
  const auto [ptr, ec] = std::from_chars(
      num_text.data(), num_text.data() + num_text.size(), cseq.number);
  if (ec != std::errc{} || ptr != num_text.data() + num_text.size()) {
    return fail("cseq: bad number");
  }
  cseq.method = std::string(trim(text.substr(space + 1)));
  if (cseq.method.empty()) return fail("cseq: empty method");
  return cseq;
}

}  // namespace siphoc::sip
