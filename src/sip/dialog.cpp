#include "sip/dialog.hpp"

namespace siphoc::sip {

Result<Dialog> Dialog::from_uac(const Message& invite, const Message& ok) {
  Dialog d;
  d.call_id = invite.call_id();
  auto from = invite.from();
  if (!from) return from.error();
  d.local_tag = from->tag();
  d.local_uri = from->uri;
  auto to = ok.to();
  if (!to) return to.error();
  d.remote_tag = to->tag();
  d.remote_uri = to->uri;
  const auto contact = ok.contact();
  if (!contact) return fail("dialog: 2xx without Contact");
  d.remote_target = contact->uri;
  // RFC 12.1.2: UAC route set = Record-Route of the response, reversed.
  for (const auto& rr : ok.route_set("record-route")) {
    d.route_set.insert(d.route_set.begin(), rr.uri);
  }
  auto cseq = invite.cseq();
  if (!cseq) return cseq.error();
  d.local_cseq = cseq->number;
  return d;
}

Result<Dialog> Dialog::from_uas(const Message& invite, const Message& ok) {
  Dialog d;
  d.call_id = invite.call_id();
  auto to = ok.to();
  if (!to) return to.error();
  d.local_tag = to->tag();
  d.local_uri = to->uri;
  auto from = invite.from();
  if (!from) return from.error();
  d.remote_tag = from->tag();
  d.remote_uri = from->uri;
  const auto contact = invite.contact();
  if (!contact) return fail("dialog: INVITE without Contact");
  d.remote_target = contact->uri;
  // RFC 12.1.1: UAS route set = Record-Route of the request, in order.
  for (const auto& rr : invite.route_set("record-route")) {
    d.route_set.push_back(rr.uri);
  }
  auto cseq = invite.cseq();
  if (!cseq) return cseq.error();
  d.remote_cseq = cseq->number;
  d.local_cseq = 0;
  return d;
}

Message Dialog::make_request(std::string method) {
  const bool is_ack = method == kAck;
  Message m = Message::request(std::move(method), remote_target);
  NameAddr from;
  from.uri = local_uri;
  from.set_tag(local_tag);
  m.add_header("from", from.to_string());
  NameAddr to;
  to.uri = remote_uri;
  if (!remote_tag.empty()) to.set_tag(remote_tag);
  m.add_header("to", to.to_string());
  m.add_header("call-id", call_id);
  // RFC 13.2.2.4: the ACK for a 2xx uses the INVITE's CSeq number.
  const std::uint32_t number = is_ack ? local_cseq : ++local_cseq;
  m.add_header("cseq", std::to_string(number) + " " + m.method());
  for (const auto& route : route_set) {
    m.add_header("route", "<" + route.to_string() + ">");
  }
  return m;
}

bool Dialog::matches_request(const Message& request) const {
  if (request.call_id() != call_id) return false;
  const auto from = request.from();
  const auto to = request.to();
  if (!from || !to) return false;
  return from->tag() == remote_tag && to->tag() == local_tag;
}

}  // namespace siphoc::sip
