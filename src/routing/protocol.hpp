// Routing protocol interface and the RoutingHandler extension seam.
//
// The paper's MANET SLP "works by piggybacking service information onto
// routing messages ... by capturing routing messages (using the libipq
// library under linux) and extending them with service information. To
// assure generality, the routing specific functionality is encapsulated
// within a routing handler" (section 2).
//
// In this emulation the interception point is explicit: every routing
// daemon frames its control packets as [base message][extension bytes] and
// calls the installed RoutingHandler
//   * right before transmission, to collect extension bytes to append, and
//   * right after reception, handing over the extension bytes it stripped.
// A handler may additionally *answer* a flooded request (AODV RREQ) --
// the daemon then emits an RREP on the handler's behalf carrying the reply
// extension, which simultaneously establishes the route to the answering
// node. That coupling of service resolution with route establishment is the
// core SIPHoc idea.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "common/bytes.hpp"
#include "common/metrics.hpp"
#include "net/address.hpp"

namespace siphoc::routing {

/// What kind of routing packet the extension rides on.
enum class PacketKind : std::uint8_t {
  kAodvRreq,
  kAodvRrep,
  kAodvRerr,
  kAodvHello,
  kOlsrHello,
  kOlsrTc,
};

std::string_view to_string(PacketKind kind);

/// Metadata about the routing packet being extended/inspected.
struct PacketInfo {
  PacketKind kind{};
  net::Address originator;  // node that created the packet
  net::Address target;      // RREQ: sought destination (may be unspecified
                            // for pure service-discovery floods)
};

/// Result of inspecting an incoming extension.
struct HandlerVerdict {
  /// True when the handler wants to answer a flooded request; the daemon
  /// sends a reply packet (AODV: RREP) carrying `reply_extension`.
  bool answer = false;
  Bytes reply_extension;
};

class RoutingHandler {
 public:
  virtual ~RoutingHandler() = default;

  /// Called before a routing packet is serialized onto the wire. Returns
  /// the extension bytes to append (empty = nothing to piggyback).
  virtual Bytes on_outgoing(const PacketInfo& info) = 0;

  /// Called for every received routing packet that carried extension bytes
  /// (and also with an empty span, so handlers can observe the control
  /// traffic pattern). `from` is the packet originator.
  virtual HandlerVerdict on_incoming(const PacketInfo& info,
                                     std::span<const std::uint8_t> extension,
                                     net::Address from) = 0;
};

/// Statistics every routing daemon exposes (overhead benches read these).
struct RoutingStats {
  std::uint64_t control_packets_sent = 0;
  std::uint64_t control_bytes_sent = 0;
  std::uint64_t extension_bytes_sent = 0;
  std::uint64_t route_discoveries = 0;
  std::uint64_t discovery_failures = 0;
  std::uint64_t route_errors_sent = 0;
};

/// Registry series shared by both daemons: the same three names with the
/// component label telling AODV from OLSR, so overhead benches can sum
/// across protocols without knowing which one ran. Bound once per daemon
/// instance against its simulation's registry; see docs/METRICS.md for the
/// catalog entry of each name.
struct RoutingMetrics {
  RoutingMetrics(MetricsRegistry& registry, std::string_view component,
                 std::string_view node)
      : control_packets(registry.counter("routing.control_packets_total",
                                         node, component)),
        control_bytes(registry.counter("routing.control_bytes_total", node,
                                       component)),
        piggyback_bytes(registry.counter("routing.piggyback_bytes_total",
                                         node, component)),
        decode_errors(registry.counter("routing.decode_errors_total", node,
                                       component)) {}

  Counter& control_packets;
  Counter& control_bytes;
  Counter& piggyback_bytes;
  /// Control packets rejected by the codec (CRC mismatch, truncation,
  /// unknown type) -- the chaos engine's corruption injector feeds this.
  Counter& decode_errors;
};

/// Common surface of the MANET routing daemons (AODV, OLSR).
class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::string_view name() const = 0;
  virtual void start() = 0;
  virtual void stop() = 0;

  /// Installs the piggyback seam (at most one handler, the MANET SLP
  /// daemon's protocol plugin).
  virtual void set_handler(RoutingHandler* handler) = 0;

  /// Floods a service-discovery request carrying `extension` through the
  /// network. Reactive protocols implement this as a destination-less RREQ;
  /// proactive protocols may not need it (return false). Used by MANET SLP
  /// for cache-miss lookups.
  virtual bool flood_query(Bytes extension) = 0;

  /// Asks the daemon to (re)announce piggybacked state soon -- proactive
  /// protocols trigger an early HELLO/TC round. Reactive protocols may
  /// ignore it (their state rides on demand).
  virtual void nudge_advertisement() {}

  virtual const RoutingStats& stats() const = 0;
};

}  // namespace siphoc::routing
