// OLSR (RFC 3626) message formats.
//
// Subset: HELLO (link sensing + neighbor/MPR signalling) and TC (topology
// dissemination). Each message carries a trailing length-prefixed extension
// block -- the MANET SLP piggyback attachment point. For the proactive
// protocol this is where service advertisements ride: on HELLO they reach
// the 1-hop neighborhood, on TC they are MPR-flooded through the whole
// network, which is how every node's SLP cache converges without any
// dedicated SLP traffic (paper Figure 4).
#pragma once

#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/address.hpp"

namespace siphoc::routing::olsr {

enum class MsgType : std::uint8_t {
  kHello = 1,
  kTc = 2,
};

/// Neighbor status codes advertised in HELLO (condensed link codes).
enum class LinkCode : std::uint8_t {
  kAsym = 0,  // heard them, symmetry not confirmed
  kSym = 1,   // bidirectional link confirmed
  kMpr = 2,   // symmetric + selected as our multipoint relay
};

struct Hello {
  std::uint8_t willingness = 3;  // WILL_DEFAULT
  struct LinkGroup {
    LinkCode code = LinkCode::kSym;
    std::vector<net::Address> neighbors;
  };
  std::vector<LinkGroup> links;
};

struct Tc {
  std::uint16_t ansn = 0;  // advertised neighbor sequence number
  std::vector<net::Address> advertised;  // MPR selectors
};

struct Message {
  MsgType type = MsgType::kHello;
  std::uint16_t vtime_ms = 6000;  // validity of the carried information
  net::Address originator;
  std::uint8_t ttl = 1;
  std::uint8_t hop_count = 0;
  std::uint16_t msg_seq = 0;
  Hello hello;  // valid when type == kHello
  Tc tc;        // valid when type == kTc
  Bytes extension;
};

struct Packet {
  std::uint16_t pkt_seq = 0;
  std::vector<Message> messages;
};

Bytes encode(const Packet& packet);
Result<Packet> decode(std::span<const std::uint8_t> data);

std::string describe(const Message& message);

}  // namespace siphoc::routing::olsr
