#include "routing/aodv.hpp"

#include <algorithm>

namespace siphoc::routing {

using aodv::Rerr;
using aodv::Rrep;
using aodv::Rreq;

Aodv::Metrics::Metrics(MetricsRegistry& r, std::string_view node)
    : registry(&r),
      routing(r, "aodv", node),
      rreq_originated(r.counter("aodv.rreq_originated_total", node, "aodv")),
      rreq_forwarded(r.counter("aodv.rreq_forwarded_total", node, "aodv")),
      rrep_tx(r.counter("aodv.rrep_tx_total", node, "aodv")),
      rerr_tx(r.counter("aodv.rerr_tx_total", node, "aodv")),
      hello_tx(r.counter("aodv.hello_tx_total", node, "aodv")),
      discoveries(r.counter("aodv.route_discoveries_total", node, "aodv")),
      discovery_failures(
          r.counter("aodv.discovery_failures_total", node, "aodv")),
      discovery_ms(r.histogram("routing.route_discovery_ms",
                               kLatencyBucketsMs, node, "aodv")) {}

Aodv::Aodv(net::Host& host, AodvConfig config)
    : host_(host), config_(config), log_("aodv", host.name()),
      metrics_(host.sim().ctx().metrics(), host.name()) {
  table_.set_callbacks([this](const AodvRoute& r) { install_fib(r); },
                       [this](const AodvRoute& r) { remove_fib(r); });
}

Aodv::~Aodv() { stop(); }

void Aodv::start() {
  if (running_) return;
  running_ = true;
  // The routing daemon owns the FIB: the convenience on-link /24 route the
  // radio installs would make every MANET address look one hop away and
  // suppress on-demand discovery. Only protocol-learned /32 routes remain.
  host_.remove_route(net::kManetPrefix, net::kManetPrefixLen);
  host_.bind(net::kAodvPort, [this](const net::Datagram& d,
                                    const net::RxInfo& rx) { on_packet(d, rx); });
  host_.set_route_resolver(
      [this](net::Datagram d) { return on_no_route(std::move(d)); });
  host_.set_link_failure_listener([this](const net::Frame& f) {
    if (f.dst_mac == net::kBroadcastMac || host_.medium() == nullptr) return;
    if (const auto neighbor = host_.medium()->address_of(f.dst_mac)) {
      handle_link_break(*neighbor);
    }
  });
  if (config_.use_hello) {
    hello_timer_.start(host_.sim(), config_.hello_interval,
                       [this] { send_hello(); }, milliseconds(100));
  }
  housekeeping_timer_.start(host_.sim(), milliseconds(500), [this] {
    table_.expire(now());
    check_neighbors();
    const TimePoint t = now();
    std::erase_if(rreq_seen_, [&](const auto& kv) { return kv.second <= t; });
  });
}

void Aodv::stop() {
  if (!running_) return;
  running_ = false;
  hello_timer_.stop();
  housekeeping_timer_.stop();
  for (auto& [dst, pending] : discoveries_) pending.timeout.cancel();
  discoveries_.clear();
  host_.unbind(net::kAodvPort);
  host_.set_route_resolver(nullptr);
  host_.set_link_failure_listener(nullptr);
  host_.clear_routes(net::Interface::kRadio);
  host_.add_route({net::kManetPrefix, net::kManetPrefixLen, std::nullopt,
                   net::Interface::kRadio, /*metric=*/100});
}

std::size_t Aodv::buffered_count() const {
  std::size_t n = 0;
  for (const auto& [dst, p] : discoveries_) n += p.buffered.size();
  return n;
}

// --------------------------------------------------------------------------
// TX
// --------------------------------------------------------------------------

void Aodv::send_packet(const aodv::Message& message, net::Address unicast_to,
                       const PacketInfo& info) {
  Bytes ext;
  if (handler_ != nullptr) ext = handler_->on_outgoing(info);
  Bytes wire = aodv::encode(message, ext);
  ++stats_.control_packets_sent;
  stats_.control_bytes_sent += wire.size();
  stats_.extension_bytes_sent += ext.size();
  metrics_.routing.control_packets.add();
  metrics_.routing.control_bytes.add(wire.size());
  metrics_.routing.piggyback_bytes.add(ext.size());
  switch (info.kind) {
    case PacketKind::kAodvHello: metrics_.hello_tx.add(); break;
    case PacketKind::kAodvRrep: metrics_.rrep_tx.add(); break;
    case PacketKind::kAodvRerr: metrics_.rerr_tx.add(); break;
    default: break;
  }
  if (unicast_to.is_unspecified()) {
    host_.send_broadcast(net::kAodvPort, net::kAodvPort, std::move(wire));
  } else {
    host_.send_udp(net::kAodvPort, {unicast_to, net::kAodvPort},
                   std::move(wire));
  }
}

void Aodv::broadcast_rreq(Rreq rreq, const Bytes& query_ext) {
  PacketInfo info{PacketKind::kAodvRreq, self(), rreq.dst};
  Bytes ext;
  if (handler_ != nullptr) ext = handler_->on_outgoing(info);
  // A service-discovery flood carries its query in the extension block,
  // merged after whatever the handler wanted to piggyback anyway.
  ext.insert(ext.end(), query_ext.begin(), query_ext.end());
  Bytes wire = aodv::encode(rreq, ext);
  ++stats_.control_packets_sent;
  stats_.control_bytes_sent += wire.size();
  stats_.extension_bytes_sent += ext.size();
  metrics_.routing.control_packets.add();
  metrics_.routing.control_bytes.add(wire.size());
  metrics_.routing.piggyback_bytes.add(ext.size());
  metrics_.rreq_originated.add();
  host_.send_broadcast(net::kAodvPort, net::kAodvPort, std::move(wire));
}

void Aodv::send_hello() {
  // RFC 3561 6.9: HELLO is an RREP with dst = self and hop count 0.
  const PacketInfo info{PacketKind::kAodvHello, self(), self()};
  Bytes ext;
  if (handler_ != nullptr) ext = handler_->on_outgoing(info);
  const auto lifetime = static_cast<std::uint32_t>(
      to_millis(config_.allowed_hello_loss * config_.hello_interval));
  // HELLO inputs change rarely (seqno on discovery activity, the piggyback
  // block on SLP churn); steady-state beacons reuse the previous wire
  // image instead of re-encoding every interval.
  if (!hello_wire_valid_ || hello_wire_seqno_ != seqno_ ||
      hello_wire_lifetime_ != lifetime || hello_wire_ext_ != ext) {
    Rrep hello;
    hello.dst = self();
    hello.dst_seqno = seqno_;
    hello.hop_count = 0;
    hello.lifetime_ms = lifetime;
    hello.is_hello = true;
    hello_wire_ = aodv::encode(hello, ext);
    hello_wire_ext_ = ext;
    hello_wire_seqno_ = seqno_;
    hello_wire_lifetime_ = lifetime;
    hello_wire_valid_ = true;
  }
  Bytes wire = hello_wire_;  // the send path consumes its buffer
  ++stats_.control_packets_sent;
  stats_.control_bytes_sent += wire.size();
  stats_.extension_bytes_sent += ext.size();
  metrics_.routing.control_packets.add();
  metrics_.routing.control_bytes.add(wire.size());
  metrics_.routing.piggyback_bytes.add(ext.size());
  metrics_.hello_tx.add();
  host_.send_broadcast(net::kAodvPort, net::kAodvPort, std::move(wire));
}

// --------------------------------------------------------------------------
// RX
// --------------------------------------------------------------------------

void Aodv::on_packet(const net::Datagram& d, const net::RxInfo&) {
  auto decoded = aodv::decode(d.payload);
  if (!decoded) {
    metrics_.routing.decode_errors.add();
    log_.warn("malformed AODV packet from ", d.src.to_string(), ": ",
              decoded.error().message);
    return;
  }
  if (d.corrupted) {
    // Chaos-engine ground truth: a bit-flipped packet slipped past the CRC
    // trailer. The soak asserts this never happens (see docs/RESILIENCE.md).
    host_.sim().ctx().metrics()
        .counter("chaos.corrupt_accepted_total", host_.name(), "aodv")
        .add();
  }
  // The datagram source is the transmitting previous hop: control packets
  // travel link-locally (broadcast or one-hop unicast re-originated per hop).
  const net::Address from = d.src;
  on_neighbor_heard(from);

  if (const auto* rreq = std::get_if<Rreq>(&decoded->message)) {
    handle_rreq(*rreq, decoded->extension, from);
  } else if (const auto* rrep = std::get_if<Rrep>(&decoded->message)) {
    handle_rrep(*rrep, decoded->extension, from);
  } else if (const auto* rerr = std::get_if<Rerr>(&decoded->message)) {
    handle_rerr(*rerr, from);
  }
}

void Aodv::handle_rreq(const Rreq& m, const Bytes& ext, net::Address from) {
  if (m.orig == self()) return;  // own flood echoed back

  const auto key = std::make_pair(m.orig, m.rreq_id);
  const bool duplicate = rreq_seen_.contains(key);
  rreq_seen_[key] = now() + config_.rreq_id_cache_ttl;

  // Reverse route to the previous hop and to the originator (RFC 6.5).
  table_.update(from, 0, false, 1, from, now() + config_.active_route_timeout);
  table_.update(m.orig, m.orig_seqno, true,
                static_cast<std::uint8_t>(m.hop_count + 1), from,
                now() + config_.net_traversal_time());

  if (duplicate) return;

  // Hand the extension to the SLP plugin; it may answer the flood.
  HandlerVerdict verdict;
  if (handler_ != nullptr) {
    verdict = handler_->on_incoming(
        PacketInfo{PacketKind::kAodvRreq, m.orig, m.dst}, ext, m.orig);
  }

  const bool is_service_query = m.dst.is_unspecified();
  if (is_service_query) {
    if (verdict.answer) {
      // Service hit: reply like a destination would, advertising a route to
      // ourselves, with the reply extension piggybacked on the RREP.
      seqno_ = std::max(seqno_ + 1, seqno_);
      Rrep reply;
      reply.dst = self();
      reply.dst_seqno = seqno_;
      reply.orig = m.orig;
      reply.hop_count = 0;
      reply.lifetime_ms =
          static_cast<std::uint32_t>(to_millis(config_.my_route_timeout()));
      Bytes wire = aodv::encode(reply, verdict.reply_extension);
      ++stats_.control_packets_sent;
      stats_.control_bytes_sent += wire.size();
      stats_.extension_bytes_sent += verdict.reply_extension.size();
      metrics_.routing.control_packets.add();
      metrics_.routing.control_bytes.add(wire.size());
      metrics_.routing.piggyback_bytes.add(verdict.reply_extension.size());
      metrics_.rrep_tx.add();
      host_.send_udp(net::kAodvPort, {from, net::kAodvPort}, std::move(wire));
      return;  // answered floods are not propagated further by this node
    }
  } else {
    if (m.dst == self()) {
      // RFC 6.6.1: destination replies; seqno maxed with requested.
      if (m.unknown_seqno ||
          static_cast<std::int32_t>(m.dst_seqno - seqno_) > 0) {
        seqno_ = std::max(seqno_, m.dst_seqno);
      }
      ++seqno_;
      Rrep reply;
      reply.dst = self();
      reply.dst_seqno = seqno_;
      reply.orig = m.orig;
      reply.hop_count = 0;
      reply.lifetime_ms =
          static_cast<std::uint32_t>(to_millis(config_.my_route_timeout()));
      send_packet(reply, from,
                  PacketInfo{PacketKind::kAodvRrep, self(), m.orig});
      return;
    }
    // Intermediate node with a fresh-enough route replies (RFC 6.6.2).
    const AodvRoute* route = table_.active(m.dst, now());
    if (route != nullptr && route->valid_seqno && !m.unknown_seqno &&
        static_cast<std::int32_t>(route->seqno - m.dst_seqno) >= 0) {
      Rrep reply;
      reply.dst = m.dst;
      reply.dst_seqno = route->seqno;
      reply.orig = m.orig;
      reply.hop_count = route->hop_count;
      reply.lifetime_ms = static_cast<std::uint32_t>(
          to_millis(route->expires - now()));
      table_.add_precursor(m.dst, from);
      send_packet(reply, from,
                  PacketInfo{PacketKind::kAodvRrep, self(), m.orig});
      return;
    }
  }

  // Propagate the flood.
  if (m.ttl <= 1) return;
  Rreq fwd = m;
  fwd.hop_count += 1;
  fwd.ttl -= 1;
  // Re-encode with the original extension (the query travels with the
  // flood); the local handler's own outgoing piggyback is not re-added to
  // forwarded packets to keep flood size bounded.
  Bytes wire = aodv::encode(fwd, ext);
  ++stats_.control_packets_sent;
  stats_.control_bytes_sent += wire.size();
  metrics_.routing.control_packets.add();
  metrics_.routing.control_bytes.add(wire.size());
  metrics_.rreq_forwarded.add();
  host_.send_broadcast(net::kAodvPort, net::kAodvPort, std::move(wire));
}

void Aodv::handle_rrep(const Rrep& m, const Bytes& ext, net::Address from) {
  if (m.is_hello) {
    // Neighbor liveness + 1-hop route.
    table_.update(m.dst, m.dst_seqno, true, 1, m.dst,
                  now() + milliseconds(m.lifetime_ms));
    if (handler_ != nullptr && !ext.empty()) {
      handler_->on_incoming(PacketInfo{PacketKind::kAodvHello, m.dst, m.dst},
                            ext, m.dst);
    }
    return;
  }

  // Forward route to the RREP destination (RFC 6.7).
  table_.update(from, 0, false, 1, from, now() + config_.active_route_timeout);
  table_.update(m.dst, m.dst_seqno, true,
                static_cast<std::uint8_t>(m.hop_count + 1), from,
                now() + milliseconds(m.lifetime_ms));

  if (handler_ != nullptr && !ext.empty()) {
    handler_->on_incoming(PacketInfo{PacketKind::kAodvRrep, m.dst, m.orig},
                          ext, m.dst);
  }

  if (m.orig == self()) {
    // Our discovery completed.
    flush_buffered(m.dst);
    // A service-discovery flood (dst unspecified at request time) completes
    // via the pending entry keyed on the unspecified address.
    flush_buffered(net::Address{});
    return;
  }

  // Forward the RREP along the reverse route toward the originator.
  const AodvRoute* reverse = table_.active(m.orig, now());
  if (reverse == nullptr) {
    log_.debug("no reverse route for RREP to ", m.orig.to_string());
    return;
  }
  Rrep fwd = m;
  fwd.hop_count += 1;
  table_.add_precursor(m.dst, reverse->next_hop);
  const AodvRoute* forward = table_.find(m.dst);
  if (forward != nullptr) table_.add_precursor(m.orig, forward->next_hop);
  Bytes wire = aodv::encode(fwd, ext);
  ++stats_.control_packets_sent;
  stats_.control_bytes_sent += wire.size();
  stats_.extension_bytes_sent += ext.size();
  metrics_.routing.control_packets.add();
  metrics_.routing.control_bytes.add(wire.size());
  metrics_.routing.piggyback_bytes.add(ext.size());
  host_.send_udp(net::kAodvPort, {reverse->next_hop, net::kAodvPort},
                 std::move(wire));
}

void Aodv::handle_rerr(const Rerr& m, net::Address from) {
  std::vector<std::pair<net::Address, std::uint32_t>> propagate;
  std::set<net::Address> precursors;
  for (const auto& u : m.destinations) {
    const AodvRoute* r = table_.find(u.dst);
    if (r != nullptr && r->valid && r->next_hop == from) {
      auto pre = table_.invalidate(u.dst);
      precursors.insert(pre.begin(), pre.end());
      propagate.emplace_back(u.dst, u.seqno);
    }
  }
  if (!propagate.empty()) {
    send_rerr(propagate,
              std::vector<net::Address>(precursors.begin(), precursors.end()));
  }
}

// --------------------------------------------------------------------------
// Discovery
// --------------------------------------------------------------------------

bool Aodv::on_no_route(net::Datagram d) {
  if (!running_) return false;
  if (!d.dst.in_prefix(net::kManetPrefix, net::kManetPrefixLen)) return false;
  auto& pending = discoveries_[d.dst];
  if (pending.buffered.size() >= config_.max_buffered_per_dst) {
    pending.buffered.pop_front();
  }
  const net::Address dst = d.dst;
  pending.buffered.push_back(std::move(d));
  if (pending.buffered.size() == 1 && pending.retries == 0 &&
      pending.ttl == 0) {
    start_discovery(dst);
  }
  return true;
}

void Aodv::start_discovery(net::Address dst) {
  auto& pending = discoveries_[dst];
  pending.ttl = config_.ttl_start;
  pending.retries = 0;
  pending.started = now();
  ++stats_.route_discoveries;
  metrics_.discoveries.add();
  send_rreq_for(dst, pending);
}

void Aodv::send_rreq_for(net::Address dst, PendingDiscovery& pending) {
  ++rreq_id_;
  ++seqno_;
  Rreq rreq;
  rreq.rreq_id = rreq_id_;
  rreq.dst = dst;
  rreq.orig = self();
  rreq.orig_seqno = seqno_;
  rreq.ttl = static_cast<std::uint8_t>(pending.ttl);
  const AodvRoute* known = table_.find(dst);
  if (known != nullptr && known->valid_seqno) {
    rreq.dst_seqno = known->seqno;
    rreq.unknown_seqno = false;
  }
  rreq_seen_[{self(), rreq.rreq_id}] = now() + config_.rreq_id_cache_ttl;
  broadcast_rreq(rreq, pending.service_query ? pending.query_extension
                                             : Bytes{});

  const Duration wait = config_.ring_traversal_time(pending.ttl) *
                        (1 << pending.retries);
  pending.timeout.cancel();
  pending.timeout = host_.sim().schedule(
      wait, [this, dst] { on_discovery_timeout(dst); });
}

void Aodv::on_discovery_timeout(net::Address dst) {
  const auto it = discoveries_.find(dst);
  if (it == discoveries_.end()) return;
  auto& pending = it->second;

  // Expanding ring search, then full-diameter retries (RFC 6.4).
  if (pending.ttl < config_.ttl_threshold) {
    pending.ttl += config_.ttl_increment;
    send_rreq_for(dst, pending);
    return;
  }
  if (pending.ttl < config_.net_diameter) {
    pending.ttl = config_.net_diameter;
    send_rreq_for(dst, pending);
    return;
  }
  if (pending.retries < config_.rreq_retries) {
    ++pending.retries;
    send_rreq_for(dst, pending);
    return;
  }
  ++stats_.discovery_failures;
  metrics_.discovery_failures.add();
  log_.debug("route discovery for ",
             dst.is_unspecified() ? std::string("<service>") : dst.to_string(),
             " failed after ", pending.retries, " retries; dropping ",
             pending.buffered.size(), " datagrams");
  discoveries_.erase(it);
}

void Aodv::flush_buffered(net::Address dst) {
  const auto it = discoveries_.find(dst);
  if (it == discoveries_.end()) return;
  auto buffered = std::move(it->second.buffered);
  metrics_.discovery_ms.observe(to_millis(now() - it->second.started));
  metrics_.registry->record_span("route_discovery", "aodv", host_.name(),
                                 it->second.started, now());
  it->second.timeout.cancel();
  discoveries_.erase(it);
  for (auto& d : buffered) host_.send_datagram(std::move(d));
}

bool Aodv::flood_query(Bytes extension) {
  if (!running_) return false;
  auto& pending = discoveries_[net::Address{}];
  pending.service_query = true;
  pending.query_extension = std::move(extension);
  pending.ttl = config_.net_diameter;  // service floods go network-wide
  pending.retries = 0;
  pending.started = now();
  ++stats_.route_discoveries;
  metrics_.discoveries.add();
  send_rreq_for(net::Address{}, pending);
  return true;
}

// --------------------------------------------------------------------------
// Liveness
// --------------------------------------------------------------------------

void Aodv::on_neighbor_heard(net::Address neighbor) {
  if (neighbor == self() || neighbor.is_unspecified()) return;
  neighbors_[neighbor] = now();
  table_.refresh(neighbor, now() + config_.active_route_timeout);
}

void Aodv::check_neighbors() {
  if (!config_.use_hello) return;
  const Duration max_silence =
      config_.allowed_hello_loss * config_.hello_interval +
      milliseconds(300);
  std::vector<net::Address> lost;
  for (const auto& [addr, last] : neighbors_) {
    if (now() - last > max_silence) lost.push_back(addr);
  }
  for (const auto& addr : lost) {
    neighbors_.erase(addr);
    handle_link_break(addr);
  }
}

void Aodv::handle_link_break(net::Address neighbor) {
  neighbors_.erase(neighbor);
  auto broken = table_.on_link_break(neighbor);
  if (broken.empty()) return;
  log_.debug("link to ", neighbor.to_string(), " broke, ", broken.size(),
             " routes lost");
  send_rerr(broken, {});
}

void Aodv::send_rerr(
    const std::vector<std::pair<net::Address, std::uint32_t>>& unreachable,
    const std::vector<net::Address>& precursors) {
  Rerr rerr;
  for (const auto& [dst, seqno] : unreachable) {
    rerr.destinations.push_back({dst, seqno});
  }
  ++stats_.route_errors_sent;
  if (precursors.size() == 1) {
    send_packet(rerr, precursors.front(),
                PacketInfo{PacketKind::kAodvRerr, self(), net::Address{}});
  } else {
    // Multiple (or unknown) precursors: broadcast, as RFC 3561 6.11 allows.
    send_packet(rerr, net::Address{},
                PacketInfo{PacketKind::kAodvRerr, self(), net::Address{}});
  }
}

// --------------------------------------------------------------------------
// FIB mirroring
// --------------------------------------------------------------------------

void Aodv::install_fib(const AodvRoute& route) {
  host_.add_route({route.dst, 32, route.next_hop, net::Interface::kRadio,
                   route.hop_count});
}

void Aodv::remove_fib(const AodvRoute& route) {
  host_.remove_route(route.dst, 32);
}

}  // namespace siphoc::routing
