// ParallelRouteHub: batches same-due OLSR route recalculations and runs
// their compute phase across the simulator's worker pool.
//
// In a dense MANET one TC flood debounces a route recalculation on *every*
// node, all due at the same virtual instant (reception time +
// route_recalc_delay). Sequentially that is the single heaviest tick in a
// city-scale run. The hub coalesces those same-due recalcs into one event
// and splits each node's calculation in two:
//   * compute: snapshot + BFS over the node's own link/topology tables --
//     a pure function of per-node state, safe to fan out via
//     Simulator::parallel_for;
//   * commit: FIB writes, applied sequentially in request order, so route
//     installation order (and therefore every downstream observable) stays
//     deterministic for any thread count.
//
// The hub changes the event interleaving relative to per-node recalc
// events (one batch event instead of N), so like region count it is a
// *content* switch: the testbed enables it only in parallel mode
// (Options::sim_regions >= 1), never based on thread count. It is used in
// unsharded parallel runs; region-sharded runs already recalculate
// concurrently lane-by-lane and keep the per-node path.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/time.hpp"
#include "sim/simulator.hpp"

namespace siphoc::routing {

class Olsr;

class ParallelRouteHub {
 public:
  explicit ParallelRouteHub(sim::Simulator& sim) : sim_(sim) {}

  /// Enqueues `node` for a recalculation `delay` from now; nodes landing on
  /// the same due instant share one batch event.
  void request(Olsr& node, Duration delay);

  /// Drops every pending reference to `node` (stopping/destroyed daemons).
  void forget(Olsr& node);

  // Introspection for tests/benches.
  std::uint64_t batches_fired() const { return batches_fired_; }
  std::uint64_t recalcs_batched() const { return recalcs_batched_; }

 private:
  void fire(TimePoint due);

  sim::Simulator& sim_;
  std::map<TimePoint, std::vector<Olsr*>> pending_;
  std::uint64_t batches_fired_ = 0;
  std::uint64_t recalcs_batched_ = 0;
};

}  // namespace siphoc::routing
