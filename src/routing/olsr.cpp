#include "routing/olsr.hpp"

#include <algorithm>
#include <queue>

#include "routing/route_hub.hpp"

namespace siphoc::routing {

using olsr::Hello;
using olsr::LinkCode;
using olsr::Message;
using olsr::MsgType;
using olsr::Packet;
using olsr::Tc;

Olsr::Metrics::Metrics(MetricsRegistry& r, std::string_view node)
    : routing(r, "olsr", node),
      hello_tx(r.counter("olsr.hello_tx_total", node, "olsr")),
      tc_tx(r.counter("olsr.tc_tx_total", node, "olsr")),
      tc_forwarded(r.counter("olsr.tc_forwarded_total", node, "olsr")) {}

Olsr::Olsr(net::Host& host, OlsrConfig config)
    : host_(host), config_(config), log_("olsr", host.name()),
      metrics_(host.sim().ctx().metrics(), host.name()) {}

Olsr::~Olsr() {
  stop();
  if (config_.route_hub != nullptr) config_.route_hub->forget(*this);
}

void Olsr::start() {
  if (running_) return;
  running_ = true;
  // The daemon owns the FIB (see Aodv::start): drop the on-link /24 so
  // only computed routes are used.
  host_.remove_route(net::kManetPrefix, net::kManetPrefixLen);
  host_.bind(net::kOlsrPort, [this](const net::Datagram& d,
                                    const net::RxInfo& rx) { on_packet(d, rx); });
  hello_timer_.start(host_.sim(), config_.hello_interval,
                     [this] { send_hello(); }, milliseconds(200));
  tc_timer_.start(host_.sim(), config_.tc_interval, [this] { send_tc(); },
                  milliseconds(400));
  housekeeping_timer_.start(host_.sim(), milliseconds(500),
                            [this] { expire_state(); });
}

void Olsr::stop() {
  if (!running_) return;
  running_ = false;
  hello_timer_.stop();
  tc_timer_.stop();
  housekeeping_timer_.stop();
  route_calc_.cancel();
  route_calc_pending_ = false;
  if (config_.route_hub != nullptr) config_.route_hub->forget(*this);
  host_.unbind(net::kOlsrPort);
  for (const auto& [dst, entry] : installed_routes_) host_.remove_route(dst, 32);
  installed_routes_.clear();
  // Forget the input snapshot: the empty FIB now corresponds to empty
  // inputs, so a restart must not early-out of its first recalculation.
  route_sym_last_.clear();
  route_edges_last_.clear();
  host_.add_route({net::kManetPrefix, net::kManetPrefixLen, std::nullopt,
                   net::Interface::kRadio, /*metric=*/100});
}

void Olsr::nudge_advertisement() {
  if (!running_) return;
  send_hello();
  send_tc();
}

std::set<net::Address> Olsr::symmetric_neighbors() const {
  std::set<net::Address> out;
  for (const auto& [addr, link] : links_) {
    if (link.sym_until > now()) out.insert(addr);
  }
  return out;
}

bool Olsr::has_route(net::Address dst) const {
  return installed_routes_.contains(dst);
}

// --------------------------------------------------------------------------
// TX
// --------------------------------------------------------------------------

void Olsr::send_hello() {
  Message m;
  m.type = MsgType::kHello;
  m.vtime_ms = static_cast<std::uint16_t>(to_millis(config_.neighbor_hold));
  m.originator = self();
  m.ttl = 1;  // HELLO never leaves the 1-hop neighborhood
  m.msg_seq = ++msg_seq_;

  Hello::LinkGroup sym{LinkCode::kSym, {}};
  Hello::LinkGroup mpr{LinkCode::kMpr, {}};
  Hello::LinkGroup asym{LinkCode::kAsym, {}};
  for (const auto& [addr, link] : links_) {
    if (link.sym_until > now()) {
      (mprs_.contains(addr) ? mpr : sym).neighbors.push_back(addr);
    } else if (link.last_heard + config_.neighbor_hold > now()) {
      asym.neighbors.push_back(addr);
    }
  }
  for (auto* g : {&mpr, &sym, &asym}) {
    if (!g->neighbors.empty()) m.hello.links.push_back(*g);
  }

  if (handler_ != nullptr) {
    m.extension = handler_->on_outgoing(
        PacketInfo{PacketKind::kOlsrHello, self(), net::Address{}});
  }
  metrics_.hello_tx.add();
  transmit(std::move(m));
}

void Olsr::send_tc() {
  // RFC 3626 9.3: TC only when we have MPR selectors (someone routes
  // through us) -- but SIPHoc-style piggybacking still needs the proactive
  // channel, so we also emit a TC when the handler has payload to ship.
  Bytes ext;
  if (handler_ != nullptr) {
    ext = handler_->on_outgoing(
        PacketInfo{PacketKind::kOlsrTc, self(), net::Address{}});
  }
  if (selectors_.empty() && ext.empty()) return;

  Message m;
  m.type = MsgType::kTc;
  m.vtime_ms = static_cast<std::uint16_t>(to_millis(config_.topology_hold));
  m.originator = self();
  m.ttl = 255;
  m.msg_seq = ++msg_seq_;
  m.tc.ansn = ++ansn_;
  m.tc.advertised.assign(selectors_.begin(), selectors_.end());
  m.extension = std::move(ext);
  duplicates_.insert({self(), m.msg_seq});
  duplicate_ttl_[{self(), m.msg_seq}] = now() + seconds(30);
  metrics_.tc_tx.add();
  transmit(std::move(m));
}

void Olsr::transmit(Message message) {
  Packet p;
  p.pkt_seq = ++pkt_seq_;
  stats_.extension_bytes_sent += message.extension.size();
  metrics_.routing.piggyback_bytes.add(message.extension.size());
  p.messages.push_back(std::move(message));
  Bytes wire = olsr::encode(p);
  ++stats_.control_packets_sent;
  stats_.control_bytes_sent += wire.size();
  metrics_.routing.control_packets.add();
  metrics_.routing.control_bytes.add(wire.size());
  host_.send_broadcast(net::kOlsrPort, net::kOlsrPort, std::move(wire));
}

// --------------------------------------------------------------------------
// RX
// --------------------------------------------------------------------------

void Olsr::on_packet(const net::Datagram& d, const net::RxInfo&) {
  auto packet = olsr::decode(d.payload);
  if (!packet) {
    metrics_.routing.decode_errors.add();
    log_.warn("malformed OLSR packet from ", d.src.to_string(), ": ",
              packet.error().message);
    return;
  }
  if (d.corrupted) {
    // Chaos-engine ground truth: corruption survived the CRC trailer; the
    // chaos soak asserts this counter stays zero.
    host_.sim().ctx().metrics()
        .counter("chaos.corrupt_accepted_total", host_.name(), "olsr")
        .add();
  }
  const net::Address prev_hop = d.src;
  for (const auto& m : packet->messages) {
    if (m.originator == self()) continue;

    if (m.type == MsgType::kHello) {
      process_hello(m, prev_hop);
      if (handler_ != nullptr) {
        handler_->on_incoming(
            PacketInfo{PacketKind::kOlsrHello, m.originator, net::Address{}},
            m.extension, m.originator);
      }
      continue;
    }

    // TC: duplicate-suppressed processing + MPR forwarding.
    const auto key = std::make_pair(m.originator, m.msg_seq);
    if (duplicates_.contains(key)) continue;
    duplicates_.insert(key);
    duplicate_ttl_[key] = now() + seconds(30);

    process_tc(m);
    if (handler_ != nullptr) {
      handler_->on_incoming(
          PacketInfo{PacketKind::kOlsrTc, m.originator, net::Address{}},
          m.extension, m.originator);
    }
    maybe_forward(m, prev_hop);
  }
}

void Olsr::process_hello(const Message& m, net::Address from) {
  auto& link = links_[from];
  link.last_heard = now();

  // Symmetry check: do they list us in any group?
  bool lists_us = false;
  bool selects_us_mpr = false;
  for (const auto& g : m.hello.links) {
    for (const auto& n : g.neighbors) {
      if (n == self()) {
        lists_us = true;
        if (g.code == LinkCode::kMpr) selects_us_mpr = true;
      }
    }
  }
  if (lists_us) link.sym_until = now() + config_.neighbor_hold;
  link.is_mpr_of_us = selects_us_mpr;
  if (selects_us_mpr) {
    selectors_.insert(from);
  } else {
    selectors_.erase(from);
  }

  // Two-hop neighborhood: their symmetric neighbors (excluding us).
  std::set<net::Address> their_neighbors;
  for (const auto& g : m.hello.links) {
    if (g.code == LinkCode::kAsym) continue;
    for (const auto& n : g.neighbors) {
      if (n != self()) their_neighbors.insert(n);
    }
  }
  two_hop_[from] = std::move(their_neighbors);

  select_mprs();
  schedule_route_calc();
}

void Olsr::process_tc(const Message& m) {
  // RFC 9.5: keep only the newest advertisement set per originator.
  // Refresh surviving edges in place first, then drop the stale-ANSN
  // remainder: a periodic TC that re-advertises the same neighbor set
  // then leaves topology_ untouched (same entries, same positions), which
  // is what lets calculate_routes() early-out on its input snapshot.
  for (const auto& dest : m.tc.advertised) {
    const auto it = std::find_if(
        topology_.begin(), topology_.end(), [&](const TopologyEdge& e) {
          return e.last_hop == m.originator && e.dest == dest;
        });
    if (it != topology_.end()) {
      it->ansn = m.tc.ansn;
      it->expires = now() + config_.topology_hold;
    } else {
      topology_.push_back(
          {m.originator, dest, m.tc.ansn, now() + config_.topology_hold});
    }
  }
  std::erase_if(topology_, [&](const TopologyEdge& e) {
    return e.last_hop == m.originator &&
           static_cast<std::int16_t>(m.tc.ansn - e.ansn) > 0;
  });
  schedule_route_calc();
}

void Olsr::maybe_forward(const Message& m, net::Address prev_hop) {
  // Default forwarding algorithm: retransmit only if the previous hop has
  // selected us as MPR, the link is symmetric, and TTL allows it.
  if (m.ttl <= 1) return;
  if (!is_symmetric(prev_hop)) return;
  const auto it = links_.find(prev_hop);
  if (it == links_.end() || !it->second.is_mpr_of_us) return;

  Message fwd = m;
  fwd.ttl -= 1;
  fwd.hop_count += 1;
  metrics_.tc_forwarded.add();
  transmit(std::move(fwd));
}

// --------------------------------------------------------------------------
// MPR selection (RFC 8.3.1, greedy heuristic)
// --------------------------------------------------------------------------

void Olsr::select_mprs() {
  std::set<net::Address> neighbors = symmetric_neighbors();

  // Two-hop nodes strictly two hops away.
  std::set<net::Address> uncovered;
  for (const auto& n : neighbors) {
    const auto it = two_hop_.find(n);
    if (it == two_hop_.end()) continue;
    for (const auto& t : it->second) {
      if (t != self() && !neighbors.contains(t)) uncovered.insert(t);
    }
  }

  std::set<net::Address> mprs;
  // First: neighbors that are the only path to some two-hop node.
  for (const auto& t : uncovered) {
    net::Address only;
    int count = 0;
    for (const auto& n : neighbors) {
      const auto it = two_hop_.find(n);
      if (it != two_hop_.end() && it->second.contains(t)) {
        only = n;
        ++count;
      }
    }
    if (count == 1) mprs.insert(only);
  }
  for (const auto& n : mprs) {
    const auto it = two_hop_.find(n);
    if (it == two_hop_.end()) continue;
    for (const auto& t : it->second) uncovered.erase(t);
  }
  // Greedy: repeatedly pick the neighbor covering the most remaining.
  while (!uncovered.empty()) {
    net::Address best;
    std::size_t best_cover = 0;
    for (const auto& n : neighbors) {
      if (mprs.contains(n)) continue;
      const auto it = two_hop_.find(n);
      if (it == two_hop_.end()) continue;
      std::size_t cover = 0;
      for (const auto& t : it->second) {
        if (uncovered.contains(t)) ++cover;
      }
      if (cover > best_cover) {
        best_cover = cover;
        best = n;
      }
    }
    if (best_cover == 0) break;  // leftover two-hop nodes are unreachable
    mprs.insert(best);
    for (const auto& t : two_hop_.at(best)) uncovered.erase(t);
  }
  mprs_ = std::move(mprs);
}

// --------------------------------------------------------------------------
// Route calculation (hop-count Dijkstra == BFS over links + topology)
// --------------------------------------------------------------------------

void Olsr::schedule_route_calc() {
  if (route_calc_pending_) return;
  route_calc_pending_ = true;
  if (config_.route_hub != nullptr) {
    config_.route_hub->request(*this, config_.route_recalc_delay);
    return;
  }
  route_calc_ = host_.sim().schedule(config_.route_recalc_delay, [this] {
    route_calc_pending_ = false;
    calculate_routes();
  });
}

void Olsr::calculate_routes() {
  if (compute_routes()) commit_routes();
}

bool Olsr::compute_routes() {
  if (!running_) return false;
  struct Hop {
    net::Address next_hop;
    int distance = 0;
  };
  // Snapshot the routing inputs: the symmetric neighbor set (sorted, which
  // is also the BFS seed order) and the live topology edges in scan order.
  // Routes are a pure function of these, so when the snapshot matches the
  // previous run the BFS below would reproduce installed_routes_
  // bit-for-bit -- skip it. That is by far the common case: every HELLO
  // and TC debounces into a recalc, but a converged network's periodic
  // refreshes leave the inputs untouched.
  const TimePoint t = now();
  route_sym_scratch_.clear();
  for (const auto& [addr, link] : links_) {
    if (link.sym_until > t) route_sym_scratch_.push_back(addr);
  }
  std::sort(route_sym_scratch_.begin(), route_sym_scratch_.end());
  route_edges_scratch_.clear();
  for (const auto& e : topology_) {
    if (e.expires <= t) continue;
    route_edges_scratch_.push_back(e.last_hop);
    route_edges_scratch_.push_back(e.dest);
  }
  if (route_sym_scratch_ == route_sym_last_ &&
      route_edges_scratch_ == route_edges_last_) {
    return false;
  }
  route_sym_last_ = route_sym_scratch_;
  route_edges_last_ = route_edges_scratch_;

  // Adjacency from TC edges (last_hop -> dest) in both directions: links
  // are bidirectional once symmetric. Indexed up front so the BFS is
  // O(V + E) instead of rescanning the whole topology set per visited
  // node; per-node neighbor lists keep topology_ scan order so
  // equal-distance tie-breaks pick the same next hop a linear scan would.
  std::unordered_map<net::Address, std::vector<net::Address>> adjacency;
  adjacency.reserve(route_edges_scratch_.size());
  for (std::size_t i = 0; i + 1 < route_edges_scratch_.size(); i += 2) {
    adjacency[route_edges_scratch_[i]].push_back(route_edges_scratch_[i + 1]);
    adjacency[route_edges_scratch_[i + 1]].push_back(route_edges_scratch_[i]);
  }

  std::unordered_map<net::Address, Hop> reach;
  std::queue<net::Address> frontier;
  for (const auto& n : route_sym_scratch_) {
    reach[n] = {n, 1};
    frontier.push(n);
  }
  while (!frontier.empty()) {
    const net::Address u = frontier.front();
    frontier.pop();
    const Hop hop = reach.at(u);
    const auto adj = adjacency.find(u);
    if (adj == adjacency.end()) continue;
    for (const net::Address v : adj->second) {
      if (v == self() || reach.contains(v)) continue;
      reach[v] = {hop.next_hop, hop.distance + 1};
      frontier.push(v);
    }
  }

  pending_installed_.clear();
  for (const auto& [dst, hop] : reach) {
    pending_installed_.emplace(dst, std::make_pair(hop.next_hop, hop.distance));
  }
  return true;
}

void Olsr::commit_routes() {
  // Mirror into the host FIB: touch only routes whose next hop or metric
  // actually changed, drop vanished ones. Steady state (converged
  // network, periodic TCs) then costs zero FIB writes.
  for (const auto& [dst, entry] : pending_installed_) {
    const auto it = installed_routes_.find(dst);
    if (it != installed_routes_.end() && it->second == entry) continue;
    host_.add_route(
        {dst, 32, entry.first, net::Interface::kRadio, entry.second});
  }
  for (const auto& [dst, entry] : installed_routes_) {
    if (!pending_installed_.contains(dst)) host_.remove_route(dst, 32);
  }
  installed_routes_ = std::move(pending_installed_);
  pending_installed_ = {};
}

void Olsr::expire_state() {
  const TimePoint t = now();
  bool changed = false;
  for (auto it = links_.begin(); it != links_.end();) {
    if (it->second.last_heard + config_.neighbor_hold <= t) {
      selectors_.erase(it->first);
      two_hop_.erase(it->first);
      it = links_.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  const auto before = topology_.size();
  std::erase_if(topology_,
                [&](const TopologyEdge& e) { return e.expires <= t; });
  changed = changed || topology_.size() != before;
  std::erase_if(duplicate_ttl_, [&](const auto& kv) {
    if (kv.second <= t) {
      duplicates_.erase(kv.first);
      return true;
    }
    return false;
  });
  if (changed) {
    select_mprs();
    schedule_route_calc();
  }
}

}  // namespace siphoc::routing
