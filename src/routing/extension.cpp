#include "routing/protocol.hpp"

namespace siphoc::routing {

std::string_view to_string(PacketKind kind) {
  switch (kind) {
    case PacketKind::kAodvRreq:
      return "AODV-RREQ";
    case PacketKind::kAodvRrep:
      return "AODV-RREP";
    case PacketKind::kAodvRerr:
      return "AODV-RERR";
    case PacketKind::kAodvHello:
      return "AODV-HELLO";
    case PacketKind::kOlsrHello:
      return "OLSR-HELLO";
    case PacketKind::kOlsrTc:
      return "OLSR-TC";
  }
  return "?";
}

}  // namespace siphoc::routing
