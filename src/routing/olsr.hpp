// OLSR daemon (RFC 3626 subset) over the emulated host stack.
//
// Implements link sensing with symmetry confirmation via HELLO, two-hop
// neighborhood tracking, greedy MPR selection, TC origination by nodes with
// MPR selectors, MPR-based default forwarding with duplicate suppression,
// a topology set with validity times, and hop-count shortest-path (Dijkstra)
// route computation mirrored into the host FIB.
//
// SIPHoc integration: the RoutingHandler seam fires for every originated
// HELLO and TC, and for every *first* reception of a message carrying an
// extension (forwarded copies keep the original extension, so a TC floods
// the advertisement to every node -- the proactive piggyback channel).
#pragma once

#include <map>
#include <set>
#include <unordered_map>

#include "net/host.hpp"
#include "routing/olsr_codec.hpp"
#include "routing/protocol.hpp"

namespace siphoc::routing {

class ParallelRouteHub;

struct OlsrConfig {
  Duration hello_interval = seconds(2);
  Duration tc_interval = seconds(5);
  Duration neighbor_hold = seconds(6);
  Duration topology_hold = seconds(15);
  Duration route_recalc_delay = milliseconds(20);
  /// When set, route recalculations are batched through the hub (parallel
  /// compute, sequential commit; routing/route_hub.hpp) instead of each
  /// node scheduling its own recalc event. Non-owning; the testbed wires
  /// it in parallel mode only, since batching changes event interleaving.
  ParallelRouteHub* route_hub = nullptr;
};

class Olsr final : public Protocol {
 public:
  Olsr(net::Host& host, OlsrConfig config = {});
  ~Olsr() override;

  std::string_view name() const override { return "olsr"; }
  void start() override;
  void stop() override;
  void set_handler(RoutingHandler* handler) override { handler_ = handler; }

  /// OLSR is proactive: there is no on-demand flood; lookups are served
  /// from converged caches. Returns false so callers fall back to waiting.
  bool flood_query(Bytes) override { return false; }

  /// Early advertisement round: emit HELLO and TC now instead of waiting
  /// for the next period (used right after a registration so the new SIP
  /// binding propagates promptly).
  void nudge_advertisement() override;

  const RoutingStats& stats() const override { return stats_; }

  // Introspection for tests.
  std::set<net::Address> symmetric_neighbors() const;
  const std::set<net::Address>& mpr_set() const { return mprs_; }
  const std::set<net::Address>& mpr_selectors() const { return selectors_; }
  bool has_route(net::Address dst) const;

 private:
  struct LinkInfo {
    TimePoint last_heard{};
    TimePoint sym_until{};  // symmetric while now < sym_until
    bool is_mpr_of_us = false;
  };
  struct TopologyEdge {
    net::Address last_hop;  // TC originator
    net::Address dest;      // advertised neighbor
    std::uint16_t ansn = 0;
    TimePoint expires{};
  };

  struct Metrics {
    Metrics(MetricsRegistry& registry, std::string_view node);
    RoutingMetrics routing;
    Counter& hello_tx;
    Counter& tc_tx;
    Counter& tc_forwarded;
  };

  net::Address self() const { return host_.manet_address(); }
  TimePoint now() const { return host_.sim().now(); }

  void send_hello();
  void send_tc();
  void transmit(olsr::Message message);
  void on_packet(const net::Datagram& d, const net::RxInfo& rx);
  void process_hello(const olsr::Message& m, net::Address from);
  void process_tc(const olsr::Message& m);
  void maybe_forward(const olsr::Message& m, net::Address prev_hop);

  void select_mprs();
  void schedule_route_calc();
  void calculate_routes();
  /// Compute phase: input snapshot, early-out, BFS. Touches only this
  /// node's tables (no FIB/metrics/log/RNG access), so the hub may run it
  /// on a worker thread. Returns true when commit_routes() has work.
  bool compute_routes();
  /// Commit phase: mirrors the computed table into the host FIB (always on
  /// the simulation thread, in deterministic order).
  void commit_routes();
  void expire_state();

  bool is_symmetric(net::Address n) const {
    const auto it = links_.find(n);
    return it != links_.end() && it->second.sym_until > now();
  }

  net::Host& host_;
  OlsrConfig config_;
  Logger log_;
  RoutingHandler* handler_ = nullptr;
  bool running_ = false;

  std::uint16_t pkt_seq_ = 0;
  std::uint16_t msg_seq_ = 0;
  std::uint16_t ansn_ = 0;

  std::unordered_map<net::Address, LinkInfo> links_;
  // neighbor -> its symmetric neighbors (from HELLO) = two-hop candidates.
  std::unordered_map<net::Address, std::set<net::Address>> two_hop_;
  std::set<net::Address> mprs_;       // we relay through these
  std::set<net::Address> selectors_;  // these relay through us
  std::vector<TopologyEdge> topology_;
  std::set<std::pair<net::Address, std::uint16_t>> duplicates_;
  std::map<std::pair<net::Address, std::uint16_t>, TimePoint> duplicate_ttl_;

  // dst -> (next_hop, metric) currently mirrored into the host FIB; lets
  // route recalculation skip FIB writes for unchanged entries.
  std::map<net::Address, std::pair<net::Address, int>> installed_routes_;
  // compute_routes() output awaiting commit_routes().
  std::map<net::Address, std::pair<net::Address, int>> pending_installed_;
  // Input snapshot from the last route calculation (sorted symmetric
  // neighbors; live topology edges as flat last_hop/dest pairs in scan
  // order) plus reusable scratch, so unchanged-input recalcs early-out
  // without allocating.
  std::vector<net::Address> route_sym_last_;
  std::vector<net::Address> route_sym_scratch_;
  std::vector<net::Address> route_edges_last_;
  std::vector<net::Address> route_edges_scratch_;
  sim::PeriodicTimer hello_timer_;
  sim::PeriodicTimer tc_timer_;
  sim::PeriodicTimer housekeeping_timer_;
  sim::EventHandle route_calc_;
  bool route_calc_pending_ = false;
  RoutingStats stats_;
  Metrics metrics_;

  friend class ParallelRouteHub;  // drives compute/commit and the debounce flag
};

}  // namespace siphoc::routing
