// AODV (RFC 3561) message formats.
//
// Field layout follows the RFC; two pragmatic deviations, both documented:
//   * every packet ends with a length-prefixed extension block -- that is
//     the attachment point for MANET SLP piggybacking (RFC 3561 also allows
//     trailing extensions, so this stays in the spirit of the format), and
//   * RREQ carries an explicit remaining-TTL byte because the emulated
//     link-local broadcasts cannot reuse the IP TTL across rebroadcasts.
#pragma once

#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "net/address.hpp"

namespace siphoc::routing::aodv {

enum class Type : std::uint8_t {
  kRreq = 1,
  kRrep = 2,
  kRerr = 3,
};

struct Rreq {
  std::uint8_t hop_count = 0;
  std::uint8_t ttl = 0;  // remaining flood radius (expanding ring search)
  std::uint32_t rreq_id = 0;
  net::Address dst;  // unspecified for pure service-discovery floods
  std::uint32_t dst_seqno = 0;
  bool unknown_seqno = true;
  net::Address orig;
  std::uint32_t orig_seqno = 0;
};

struct Rrep {
  std::uint8_t hop_count = 0;
  net::Address dst;   // node the route leads to
  std::uint32_t dst_seqno = 0;
  net::Address orig;  // node that asked (RREQ originator)
  std::uint32_t lifetime_ms = 0;
  bool is_hello = false;
};

struct Rerr {
  struct Unreachable {
    net::Address dst;
    std::uint32_t seqno = 0;
  };
  std::vector<Unreachable> destinations;
};

using Message = std::variant<Rreq, Rrep, Rerr>;

/// Serializes message + extension block into a wire packet.
Bytes encode(const Message& message, std::span<const std::uint8_t> extension);

struct Decoded {
  Message message;
  Bytes extension;
};

Result<Decoded> decode(std::span<const std::uint8_t> packet);

/// Human-readable one-liner (packet_trace example).
std::string describe(const Message& message);

}  // namespace siphoc::routing::aodv
