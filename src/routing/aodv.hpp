// AODV daemon (RFC 3561 subset) over the emulated host stack.
//
// Implements: on-demand route discovery with expanding ring search and
// binary exponential retry, destination/originator sequence numbers, RREQ-ID
// duplicate suppression, reverse/forward route setup, HELLO-based neighbor
// liveness, link-layer failure feedback, RERR propagation along precursor
// lists, and packet buffering during discovery.
//
// Additionally exposes the two SIPHoc integration points:
//   * the RoutingHandler seam on every RREQ/RREP/HELLO (piggybacking), and
//   * flood_query(): a destination-less RREQ used as a service-discovery
//     flood; any node whose handler answers replies with an RREP that
//     carries the reply extension *and* establishes the route back to it.
#pragma once

#include <deque>
#include <map>
#include <unordered_map>

#include "net/host.hpp"
#include "routing/aodv_codec.hpp"
#include "routing/protocol.hpp"
#include "routing/routing_table.hpp"

namespace siphoc::routing {

struct AodvConfig {
  Duration hello_interval = seconds(1);
  int allowed_hello_loss = 2;
  Duration active_route_timeout = seconds(3);
  Duration node_traversal_time = milliseconds(40);
  int net_diameter = 35;
  int rreq_retries = 2;
  int ttl_start = 2;
  int ttl_increment = 2;
  int ttl_threshold = 7;
  std::size_t max_buffered_per_dst = 16;
  Duration rreq_id_cache_ttl = seconds(3);
  bool use_hello = true;

  Duration net_traversal_time() const {
    return 2 * node_traversal_time * net_diameter;
  }
  Duration ring_traversal_time(int ttl) const {
    return 2 * node_traversal_time * (ttl + 2);
  }
  Duration my_route_timeout() const { return 2 * active_route_timeout; }
};

class Aodv final : public Protocol {
 public:
  Aodv(net::Host& host, AodvConfig config = {});
  ~Aodv() override;

  std::string_view name() const override { return "aodv"; }
  void start() override;
  void stop() override;
  void set_handler(RoutingHandler* handler) override { handler_ = handler; }
  bool flood_query(Bytes extension) override;
  const RoutingStats& stats() const override { return stats_; }

  const AodvTable& table() const { return table_; }
  const AodvConfig& config() const { return config_; }

  /// Number of datagrams currently buffered awaiting discovery.
  std::size_t buffered_count() const;

 private:
  struct PendingDiscovery {
    int ttl = 0;
    int retries = 0;
    std::deque<net::Datagram> buffered;
    sim::EventHandle timeout;
    bool service_query = false;
    Bytes query_extension;
    TimePoint started{};  // discovery latency span start
  };

  struct Metrics {
    Metrics(MetricsRegistry& registry, std::string_view node);
    MetricsRegistry* registry;  // the simulation's registry (spans)
    RoutingMetrics routing;
    Counter& rreq_originated;
    Counter& rreq_forwarded;
    Counter& rrep_tx;
    Counter& rerr_tx;
    Counter& hello_tx;
    Counter& discoveries;
    Counter& discovery_failures;
    Histogram& discovery_ms;
  };

  net::Address self() const { return host_.manet_address(); }
  TimePoint now() const { return host_.sim().now(); }

  // --- packet TX ---------------------------------------------------------
  void send_packet(const aodv::Message& message, net::Address unicast_to,
                   const PacketInfo& info);
  void broadcast_rreq(aodv::Rreq rreq, const Bytes& query_ext);
  void send_hello();

  // --- packet RX ---------------------------------------------------------
  void on_packet(const net::Datagram& d, const net::RxInfo& rx);
  void handle_rreq(const aodv::Rreq& m, const Bytes& ext, net::Address from);
  void handle_rrep(const aodv::Rrep& m, const Bytes& ext, net::Address from);
  void handle_rerr(const aodv::Rerr& m, net::Address from);

  // --- discovery ---------------------------------------------------------
  bool on_no_route(net::Datagram d);
  void start_discovery(net::Address dst);
  void send_rreq_for(net::Address dst, PendingDiscovery& pending);
  void on_discovery_timeout(net::Address dst);
  void flush_buffered(net::Address dst);

  // --- neighbor/liveness --------------------------------------------------
  void on_neighbor_heard(net::Address neighbor);
  void check_neighbors();
  void handle_link_break(net::Address neighbor);
  void send_rerr(const std::vector<std::pair<net::Address, std::uint32_t>>&
                     unreachable,
                 const std::vector<net::Address>& precursors);

  void install_fib(const AodvRoute& route);
  void remove_fib(const AodvRoute& route);

  net::Host& host_;
  AodvConfig config_;
  Logger log_;
  RoutingHandler* handler_ = nullptr;
  bool running_ = false;

  AodvTable table_;
  std::uint32_t seqno_ = 1;
  std::uint32_t rreq_id_ = 0;
  std::map<net::Address, PendingDiscovery> discoveries_;
  // (orig, rreq_id) -> expiry, for duplicate suppression.
  std::map<std::pair<net::Address, std::uint32_t>, TimePoint> rreq_seen_;
  std::unordered_map<net::Address, TimePoint> neighbors_;  // last heard

  sim::PeriodicTimer hello_timer_;
  sim::PeriodicTimer housekeeping_timer_;
  RoutingStats stats_;
  Metrics metrics_;

  // HELLO wire-image cache: beacons re-encode only when an input (seqno,
  // lifetime, piggyback block) changed since the last one. Mirrors the
  // input-snapshot early-out OLSR's route calculation uses.
  Bytes hello_wire_;
  Bytes hello_wire_ext_;
  std::uint32_t hello_wire_seqno_ = 0;
  std::uint32_t hello_wire_lifetime_ = 0;
  bool hello_wire_valid_ = false;
};

}  // namespace siphoc::routing
