// AODV routing table (RFC 3561 section 6.2).
//
// Distinct from the host forwarding table: this one carries the protocol
// state (sequence numbers, lifetimes, precursor lists, validity) and mirrors
// its valid entries into the host FIB via callbacks.
#pragma once

#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "net/address.hpp"

namespace siphoc::routing {

struct AodvRoute {
  net::Address dst;
  std::uint32_t seqno = 0;
  bool valid_seqno = false;
  std::uint8_t hop_count = 0;
  net::Address next_hop;
  TimePoint expires{};
  bool valid = false;
  std::set<net::Address> precursors;
};

class AodvTable {
 public:
  /// Invoked when an entry becomes usable / stops being usable; the daemon
  /// wires these to host FIB add/remove.
  using RouteCallback = std::function<void(const AodvRoute&)>;

  void set_callbacks(RouteCallback installed, RouteCallback removed) {
    installed_ = std::move(installed);
    removed_ = std::move(removed);
  }

  const AodvRoute* find(net::Address dst) const;
  AodvRoute* find(net::Address dst);

  /// Valid, unexpired entry or nullptr.
  const AodvRoute* active(net::Address dst, TimePoint now) const;

  /// Creates or updates an entry following the RFC 3561 update rules
  /// (section 6.2: newer seqno, or same seqno with fewer hops, or invalid
  /// entry). Returns the entry if it was applied.
  AodvRoute* update(net::Address dst, std::uint32_t seqno, bool valid_seqno,
                    std::uint8_t hop_count, net::Address next_hop,
                    TimePoint expires);

  /// Extends the lifetime of an entry (route in active use).
  void refresh(net::Address dst, TimePoint expires);

  /// Marks invalid, bumps seqno (RFC 6.11), returns affected precursors.
  std::vector<net::Address> invalidate(net::Address dst);

  /// Invalidates every route whose next hop is `neighbor`; returns the list
  /// of (dst, seqno) pairs for the RERR.
  std::vector<std::pair<net::Address, std::uint32_t>> on_link_break(
      net::Address neighbor);

  /// Drops entries whose lifetime passed (valid -> invalid).
  void expire(TimePoint now);

  void add_precursor(net::Address dst, net::Address precursor);

  std::size_t size() const { return routes_.size(); }
  std::size_t valid_count() const;

 private:
  void notify_installed(const AodvRoute& r) {
    if (installed_) installed_(r);
  }
  void notify_removed(const AodvRoute& r) {
    if (removed_) removed_(r);
  }

  std::unordered_map<net::Address, AodvRoute> routes_;
  RouteCallback installed_;
  RouteCallback removed_;
};

}  // namespace siphoc::routing
