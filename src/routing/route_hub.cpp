#include "routing/route_hub.hpp"

#include "routing/olsr.hpp"

namespace siphoc::routing {

void ParallelRouteHub::request(Olsr& node, Duration delay) {
  const TimePoint due = sim_.now() + delay;
  auto [it, fresh] = pending_.try_emplace(due);
  it->second.push_back(&node);
  if (fresh) sim_.schedule(delay, [this, due] { fire(due); });
}

void ParallelRouteHub::forget(Olsr& node) {
  for (auto& [due, nodes] : pending_) std::erase(nodes, &node);
}

void ParallelRouteHub::fire(TimePoint due) {
  const auto it = pending_.find(due);
  if (it == pending_.end()) return;
  std::vector<Olsr*> batch = std::move(it->second);
  pending_.erase(it);
  if (batch.empty()) return;
  ++batches_fired_;
  recalcs_batched_ += batch.size();
  // Clear the debounce flags first: a recalculation triggered *by* this
  // batch (none today -- commits don't emit packets -- but cheap to be
  // correct about) must re-arm rather than be swallowed.
  for (Olsr* node : batch) node->route_calc_pending_ = false;
  std::vector<std::uint8_t> changed(batch.size(), 0);
  sim_.parallel_for(batch.size(), [&](std::size_t k) {
    changed[k] = batch[k]->compute_routes() ? 1 : 0;
  });
  for (std::size_t k = 0; k < batch.size(); ++k) {
    if (changed[k] != 0) batch[k]->commit_routes();
  }
}

}  // namespace siphoc::routing
