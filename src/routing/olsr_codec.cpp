#include "routing/olsr_codec.hpp"

namespace siphoc::routing::olsr {

namespace {

void encode_message(BufferWriter& w, const Message& m) {
  w.u8(static_cast<std::uint8_t>(m.type));
  w.u16(m.vtime_ms);
  w.u32(m.originator.value());
  w.u8(m.ttl);
  w.u8(m.hop_count);
  w.u16(m.msg_seq);
  switch (m.type) {
    case MsgType::kHello: {
      w.u8(m.hello.willingness);
      w.u8(static_cast<std::uint8_t>(m.hello.links.size()));
      for (const auto& group : m.hello.links) {
        w.u8(static_cast<std::uint8_t>(group.code));
        w.u16(static_cast<std::uint16_t>(group.neighbors.size()));
        for (const auto& n : group.neighbors) w.u32(n.value());
      }
      break;
    }
    case MsgType::kTc: {
      w.u16(m.tc.ansn);
      w.u16(static_cast<std::uint16_t>(m.tc.advertised.size()));
      for (const auto& n : m.tc.advertised) w.u32(n.value());
      break;
    }
  }
  w.u16(static_cast<std::uint16_t>(m.extension.size()));
  w.raw(m.extension);
}

Result<Message> decode_message(BufferReader& r) {
  Message m;
  auto type = r.u8();
  if (!type) return type.error();
  if (*type != static_cast<std::uint8_t>(MsgType::kHello) &&
      *type != static_cast<std::uint8_t>(MsgType::kTc)) {
    return fail("olsr: unknown message type " + std::to_string(*type));
  }
  m.type = static_cast<MsgType>(*type);
  auto vtime = r.u16();
  if (!vtime) return vtime.error();
  m.vtime_ms = *vtime;
  auto orig = r.u32();
  if (!orig) return orig.error();
  m.originator = net::Address{*orig};
  auto ttl = r.u8();
  if (!ttl) return ttl.error();
  m.ttl = *ttl;
  auto hops = r.u8();
  if (!hops) return hops.error();
  m.hop_count = *hops;
  auto seq = r.u16();
  if (!seq) return seq.error();
  m.msg_seq = *seq;

  switch (m.type) {
    case MsgType::kHello: {
      auto will = r.u8();
      if (!will) return will.error();
      m.hello.willingness = *will;
      auto groups = r.u8();
      if (!groups) return groups.error();
      for (std::uint8_t g = 0; g < *groups; ++g) {
        Hello::LinkGroup group;
        auto code = r.u8();
        if (!code) return code.error();
        group.code = static_cast<LinkCode>(*code);
        auto count = r.u16();
        if (!count) return count.error();
        for (std::uint16_t i = 0; i < *count; ++i) {
          auto addr = r.u32();
          if (!addr) return addr.error();
          group.neighbors.push_back(net::Address{*addr});
        }
        m.hello.links.push_back(std::move(group));
      }
      break;
    }
    case MsgType::kTc: {
      auto ansn = r.u16();
      if (!ansn) return ansn.error();
      m.tc.ansn = *ansn;
      auto count = r.u16();
      if (!count) return count.error();
      for (std::uint16_t i = 0; i < *count; ++i) {
        auto addr = r.u32();
        if (!addr) return addr.error();
        m.tc.advertised.push_back(net::Address{*addr});
      }
      break;
    }
  }

  auto ext_len = r.u16();
  if (!ext_len) return ext_len.error();
  auto ext = r.raw(*ext_len);
  if (!ext) return ext.error();
  m.extension = std::move(*ext);
  return m;
}

}  // namespace

Bytes encode(const Packet& packet) {
  Bytes out;
  BufferWriter w(out);
  w.u16(packet.pkt_seq);
  w.u8(static_cast<std::uint8_t>(packet.messages.size()));
  for (const auto& m : packet.messages) encode_message(w, m);
  // Integrity trailer (see aodv_codec.cpp): corrupted packets must fail
  // decode as a whole rather than poison the topology set.
  w.u32(crc32(out));
  return out;
}

Result<Packet> decode(std::span<const std::uint8_t> data) {
  if (data.size() < 4) return fail("olsr: packet shorter than CRC trailer");
  const std::span<const std::uint8_t> head = data.first(data.size() - 4);
  BufferReader trailer(data.subspan(data.size() - 4));
  if (const auto want = trailer.u32(); !want || *want != crc32(head)) {
    return fail("olsr: CRC mismatch");
  }
  BufferReader r(head);
  Packet p;
  auto seq = r.u16();
  if (!seq) return seq.error();
  p.pkt_seq = *seq;
  auto count = r.u8();
  if (!count) return count.error();
  for (std::uint8_t i = 0; i < *count; ++i) {
    auto m = decode_message(r);
    if (!m) return m.error();
    p.messages.push_back(std::move(*m));
  }
  return p;
}

std::string describe(const Message& m) {
  switch (m.type) {
    case MsgType::kHello: {
      std::string s = "HELLO from " + m.originator.to_string() + " links={";
      for (const auto& g : m.hello.links) {
        for (const auto& n : g.neighbors) {
          s += n.to_string();
          s += g.code == LinkCode::kMpr   ? "(mpr),"
               : g.code == LinkCode::kSym ? "(sym),"
                                          : "(asym),";
        }
      }
      s += "}";
      return s;
    }
    case MsgType::kTc: {
      std::string s = "TC from " + m.originator.to_string() +
                      " ansn=" + std::to_string(m.tc.ansn) + " adv={";
      for (const auto& n : m.tc.advertised) s += n.to_string() + ",";
      s += "}";
      return s;
    }
  }
  return "?";
}

}  // namespace siphoc::routing::olsr
