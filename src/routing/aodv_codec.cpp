#include "routing/aodv_codec.hpp"

namespace siphoc::routing::aodv {

namespace {

void encode_body(BufferWriter& w, const Rreq& m) {
  w.u8(static_cast<std::uint8_t>(Type::kRreq));
  w.u8(m.hop_count);
  w.u8(m.ttl);
  w.u8(m.unknown_seqno ? 1 : 0);
  w.u32(m.rreq_id);
  w.u32(m.dst.value());
  w.u32(m.dst_seqno);
  w.u32(m.orig.value());
  w.u32(m.orig_seqno);
}

void encode_body(BufferWriter& w, const Rrep& m) {
  w.u8(static_cast<std::uint8_t>(Type::kRrep));
  w.u8(m.hop_count);
  w.u8(m.is_hello ? 1 : 0);
  w.u32(m.dst.value());
  w.u32(m.dst_seqno);
  w.u32(m.orig.value());
  w.u32(m.lifetime_ms);
}

void encode_body(BufferWriter& w, const Rerr& m) {
  w.u8(static_cast<std::uint8_t>(Type::kRerr));
  w.u8(static_cast<std::uint8_t>(m.destinations.size()));
  for (const auto& u : m.destinations) {
    w.u32(u.dst.value());
    w.u32(u.seqno);
  }
}

Result<Rreq> decode_rreq(BufferReader& r) {
  Rreq m;
  auto hop = r.u8();
  if (!hop) return hop.error();
  m.hop_count = *hop;
  auto ttl = r.u8();
  if (!ttl) return ttl.error();
  m.ttl = *ttl;
  auto unknown = r.u8();
  if (!unknown) return unknown.error();
  m.unknown_seqno = *unknown != 0;
  auto id = r.u32();
  if (!id) return id.error();
  m.rreq_id = *id;
  auto dst = r.u32();
  if (!dst) return dst.error();
  m.dst = net::Address{*dst};
  auto dseq = r.u32();
  if (!dseq) return dseq.error();
  m.dst_seqno = *dseq;
  auto orig = r.u32();
  if (!orig) return orig.error();
  m.orig = net::Address{*orig};
  auto oseq = r.u32();
  if (!oseq) return oseq.error();
  m.orig_seqno = *oseq;
  return m;
}

Result<Rrep> decode_rrep(BufferReader& r) {
  Rrep m;
  auto hop = r.u8();
  if (!hop) return hop.error();
  m.hop_count = *hop;
  auto hello = r.u8();
  if (!hello) return hello.error();
  m.is_hello = *hello != 0;
  auto dst = r.u32();
  if (!dst) return dst.error();
  m.dst = net::Address{*dst};
  auto dseq = r.u32();
  if (!dseq) return dseq.error();
  m.dst_seqno = *dseq;
  auto orig = r.u32();
  if (!orig) return orig.error();
  m.orig = net::Address{*orig};
  auto lifetime = r.u32();
  if (!lifetime) return lifetime.error();
  m.lifetime_ms = *lifetime;
  return m;
}

Result<Rerr> decode_rerr(BufferReader& r) {
  Rerr m;
  auto count = r.u8();
  if (!count) return count.error();
  for (std::uint8_t i = 0; i < *count; ++i) {
    auto dst = r.u32();
    if (!dst) return dst.error();
    auto seq = r.u32();
    if (!seq) return seq.error();
    m.destinations.push_back({net::Address{*dst}, *seq});
  }
  return m;
}

}  // namespace

// Exact wire size of the message body (type byte included), so encode()
// reserves once instead of growing through vector doublings.
struct BodySize {
  std::size_t operator()(const Rreq&) const { return 24; }
  std::size_t operator()(const Rrep&) const { return 19; }
  std::size_t operator()(const Rerr& m) const {
    return 2 + 8 * m.destinations.size();
  }
};

Bytes encode(const Message& message, std::span<const std::uint8_t> extension) {
  Bytes out;
  out.reserve(std::visit(BodySize{}, message) + 2 + extension.size() + 4);
  BufferWriter w(out);
  std::visit([&](const auto& m) { encode_body(w, m); }, message);
  w.u16(static_cast<std::uint16_t>(extension.size()));
  w.raw(extension);
  // Integrity trailer over everything above: a bit-flipped packet (chaos
  // engine corruption, hostile peer) fails here before any field is
  // believed, so it can never seed a routing-table or SLP-cache entry.
  w.u32(crc32(out));
  return out;
}

Result<Decoded> decode(std::span<const std::uint8_t> packet) {
  if (packet.size() < 4) return fail("aodv: packet shorter than CRC trailer");
  const std::span<const std::uint8_t> head = packet.first(packet.size() - 4);
  BufferReader trailer(packet.subspan(packet.size() - 4));
  if (const auto want = trailer.u32(); !want || *want != crc32(head)) {
    return fail("aodv: CRC mismatch");
  }
  BufferReader r(head);
  auto type = r.u8();
  if (!type) return type.error();

  Decoded out{Rreq{}, {}};
  switch (static_cast<Type>(*type)) {
    case Type::kRreq: {
      auto m = decode_rreq(r);
      if (!m) return m.error();
      out.message = *m;
      break;
    }
    case Type::kRrep: {
      auto m = decode_rrep(r);
      if (!m) return m.error();
      out.message = *m;
      break;
    }
    case Type::kRerr: {
      auto m = decode_rerr(r);
      if (!m) return m.error();
      out.message = *m;
      break;
    }
    default:
      return fail("aodv: unknown packet type " + std::to_string(*type));
  }

  auto ext_len = r.u16();
  if (!ext_len) return ext_len.error();
  auto ext = r.raw(*ext_len);
  if (!ext) return ext.error();
  out.extension = std::move(*ext);
  return out;
}

std::string describe(const Message& message) {
  struct Visitor {
    std::string operator()(const Rreq& m) const {
      return "RREQ id=" + std::to_string(m.rreq_id) + " orig=" +
             m.orig.to_string() + " dst=" +
             (m.dst.is_unspecified() ? std::string("<service-discovery>")
                                     : m.dst.to_string()) +
             " hops=" + std::to_string(m.hop_count) +
             " ttl=" + std::to_string(m.ttl);
    }
    std::string operator()(const Rrep& m) const {
      if (m.is_hello) return "HELLO from " + m.dst.to_string();
      return "RREP dst=" + m.dst.to_string() + " orig=" + m.orig.to_string() +
             " hops=" + std::to_string(m.hop_count) +
             " lifetime=" + std::to_string(m.lifetime_ms) + "ms";
    }
    std::string operator()(const Rerr& m) const {
      std::string s = "RERR unreachable={";
      for (const auto& u : m.destinations) s += u.dst.to_string() + ",";
      s += "}";
      return s;
    }
  };
  return std::visit(Visitor{}, message);
}

}  // namespace siphoc::routing::aodv
