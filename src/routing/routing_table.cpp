#include "routing/routing_table.hpp"

namespace siphoc::routing {

const AodvRoute* AodvTable::find(net::Address dst) const {
  const auto it = routes_.find(dst);
  return it == routes_.end() ? nullptr : &it->second;
}

AodvRoute* AodvTable::find(net::Address dst) {
  const auto it = routes_.find(dst);
  return it == routes_.end() ? nullptr : &it->second;
}

const AodvRoute* AodvTable::active(net::Address dst, TimePoint now) const {
  const AodvRoute* r = find(dst);
  return (r != nullptr && r->valid && r->expires > now) ? r : nullptr;
}

AodvRoute* AodvTable::update(net::Address dst, std::uint32_t seqno,
                             bool valid_seqno, std::uint8_t hop_count,
                             net::Address next_hop, TimePoint expires) {
  auto& r = routes_[dst];
  const bool fresh = r.dst.is_unspecified();
  if (fresh) r.dst = dst;

  // RFC 3561 6.2: accept when (i) no entry, (ii) incoming seqno newer,
  // (iii) equal seqno but smaller hop count, (iv) entry invalid.
  const bool newer =
      valid_seqno &&
      (!r.valid_seqno ||
       static_cast<std::int32_t>(seqno - r.seqno) > 0);
  const bool equal_better =
      valid_seqno && r.valid_seqno && seqno == r.seqno &&
      hop_count < r.hop_count;
  const bool applies = fresh || !r.valid || newer || equal_better ||
                       (!valid_seqno && !r.valid_seqno);
  if (!applies) {
    // Still refresh lifetime when the data confirms the current route.
    if (r.valid && r.next_hop == next_hop && expires > r.expires)
      r.expires = expires;
    return nullptr;
  }

  if (valid_seqno) {
    r.seqno = seqno;
    r.valid_seqno = true;
  }
  r.hop_count = hop_count;
  r.next_hop = next_hop;
  r.expires = expires;
  r.valid = true;
  notify_installed(r);  // fresh entry, or next hop changed: (re)install
  return &r;
}

void AodvTable::refresh(net::Address dst, TimePoint expires) {
  AodvRoute* r = find(dst);
  if (r != nullptr && r->valid && expires > r->expires) r->expires = expires;
}

std::vector<net::Address> AodvTable::invalidate(net::Address dst) {
  AodvRoute* r = find(dst);
  if (r == nullptr || !r->valid) return {};
  r->valid = false;
  if (r->valid_seqno) ++r->seqno;  // RFC 6.11: increment on invalidation
  notify_removed(*r);
  std::vector<net::Address> precursors(r->precursors.begin(),
                                       r->precursors.end());
  r->precursors.clear();
  return precursors;
}

std::vector<std::pair<net::Address, std::uint32_t>> AodvTable::on_link_break(
    net::Address neighbor) {
  std::vector<std::pair<net::Address, std::uint32_t>> broken;
  for (auto& [dst, r] : routes_) {
    if (r.valid && r.next_hop == neighbor) {
      r.valid = false;
      if (r.valid_seqno) ++r.seqno;
      notify_removed(r);
      broken.emplace_back(dst, r.seqno);
      r.precursors.clear();
    }
  }
  return broken;
}

void AodvTable::expire(TimePoint now) {
  for (auto& [dst, r] : routes_) {
    if (r.valid && r.expires <= now) {
      r.valid = false;
      notify_removed(r);
      r.precursors.clear();
    }
  }
}

void AodvTable::add_precursor(net::Address dst, net::Address precursor) {
  AodvRoute* r = find(dst);
  if (r != nullptr) r->precursors.insert(precursor);
}

std::size_t AodvTable::valid_count() const {
  std::size_t n = 0;
  for (const auto& [dst, r] : routes_) {
    if (r.valid) ++n;
  }
  return n;
}

}  // namespace siphoc::routing
