// SoftPhone: the out-of-the-box VoIP application (the paper's Kphone /
// Twinkle / Minisip role).
//
// Configuration mirrors the paper's Figure 2: a SIP user account (username
// + provider domain) and an outbound proxy. "By specifying the outbound-
// proxy to be localhost, we make sure that all the SIP traffic is routed
// through the SIPHoc proxy running locally" -- that single setting is the
// only coupling between this application and the MANET middleware.
//
// On an established call the phone streams G.711 voice over RTP to the
// negotiated media endpoint and keeps listener-side quality statistics.
#pragma once

#include <map>

#include "rtp/session.hpp"
#include "sip/user_agent.hpp"

namespace siphoc::voip {

struct SoftPhoneConfig {
  std::string username;          // "Alice"
  std::string domain;            // "voicehoc.ch"  (the SIP provider)
  std::string password;          // digest-auth secret (empty = no auth)
  net::Endpoint outbound_proxy{net::kLoopbackAddress, 5060};
  std::uint16_t sip_port = 5070;
  std::uint16_t rtp_port = net::kRtpPortBase;
  bool auto_answer = true;
  Duration answer_delay = milliseconds(200);
  Duration register_expires = seconds(3600);
  rtp::TalkSpurtConfig voice;
  Duration playout_delay = milliseconds(60);
  /// Address advertised for media; unset = the host's MANET address.
  net::Address media_address;

  sip::Uri aor() const {
    sip::Uri uri;
    uri.user = username;
    uri.host = domain;
    return uri;
  }
};

/// Call lifecycle events surfaced to the "user".
struct SoftPhoneEvents {
  std::function<void(sip::CallId, const sip::Uri& peer)> on_incoming;
  std::function<void(sip::CallId)> on_ringing;
  std::function<void(sip::CallId)> on_established;
  std::function<void(sip::CallId, int status)> on_failed;
  std::function<void(sip::CallId)> on_ended;
  std::function<void(bool ok, int status)> on_registered;
  /// Incoming text message (the paper's intro: "a wireless phone and text
  /// communicator").
  std::function<void(const sip::Uri& from, const std::string& text)> on_text;
};

class SoftPhone {
 public:
  SoftPhone(net::Host& host, SoftPhoneConfig config);
  ~SoftPhone();

  void set_events(SoftPhoneEvents events) { events_ = std::move(events); }
  /// Current handlers (copyable); lets harness helpers wrap-and-restore
  /// instead of clobbering application callbacks.
  SoftPhoneEvents events() const { return events_; }

  /// Registers the account (the paper's step 1); refreshes automatically.
  void power_on();
  void power_off();
  bool registered() const { return ua_.registered(); }

  /// Dials an AOR ("bob@voicehoc.ch") or full URI ("sip:bob@voicehoc.ch").
  sip::CallId dial(const std::string& target);
  void hang_up(sip::CallId call);
  void answer(sip::CallId call) { ua_.answer(call); }
  void reject(sip::CallId call) { ua_.reject(call); }

  /// Sends a text to an AOR ("bob@voicehoc.ch"); delivery result via cb.
  void send_text(const std::string& target, std::string text,
                 std::function<void(bool ok, int status)> callback = {});

  sip::UserAgent::CallState call_state(sip::CallId call) const {
    return ua_.call_state(call);
  }
  bool in_call(sip::CallId call) const {
    return call_state(call) == sip::UserAgent::CallState::kEstablished;
  }

  /// Voice quality for a call; valid while established and after it ends.
  std::optional<rtp::Session::Report> call_report(sip::CallId call) const;

  sip::UserAgent& user_agent() { return ua_; }
  const SoftPhoneConfig& config() const { return config_; }

 private:
  void on_established(sip::CallId id, net::Endpoint remote_rtp);
  void on_call_over(sip::CallId id);

  net::Host& host_;
  SoftPhoneConfig config_;
  Logger log_;
  sip::UserAgent ua_;
  SoftPhoneEvents events_;
  std::map<sip::CallId, std::unique_ptr<rtp::Session>> media_;
  std::map<sip::CallId, rtp::Session::Report> final_reports_;
};

}  // namespace siphoc::voip
