#include "voip/softphone.hpp"

namespace siphoc::voip {

namespace {

sip::UserAgentConfig to_ua_config(const SoftPhoneConfig& config) {
  sip::UserAgentConfig ua;
  ua.aor = config.aor();
  ua.password = config.password;
  ua.outbound_proxy = config.outbound_proxy;
  ua.sip_port = config.sip_port;
  ua.rtp_port = config.rtp_port;
  ua.register_expires = config.register_expires;
  ua.auto_answer = config.auto_answer;
  ua.answer_delay = config.answer_delay;
  ua.media_address = config.media_address;
  return ua;
}

}  // namespace

SoftPhone::SoftPhone(net::Host& host, SoftPhoneConfig config)
    : host_(host),
      config_(std::move(config)),
      log_("phone", host.name()),
      ua_(host, to_ua_config(config_)) {
  sip::UserAgentCallbacks callbacks;
  callbacks.on_incoming = [this](sip::CallId id, const sip::Uri& peer) {
    log_.info("incoming call from ", peer.aor(), " -- ringing");
    if (events_.on_incoming) events_.on_incoming(id, peer);
  };
  callbacks.on_ringing = [this](sip::CallId id) {
    if (events_.on_ringing) events_.on_ringing(id);
  };
  callbacks.on_established = [this](sip::CallId id, net::Endpoint remote) {
    on_established(id, remote);
  };
  callbacks.on_failed = [this](sip::CallId id, int status) {
    log_.info("call ", id, " failed: ", status);
    on_call_over(id);
    if (events_.on_failed) events_.on_failed(id, status);
  };
  callbacks.on_ended = [this](sip::CallId id) {
    log_.info("call ", id, " ended");
    on_call_over(id);
    if (events_.on_ended) events_.on_ended(id);
  };
  callbacks.on_register_result = [this](bool ok, int status) {
    if (events_.on_registered) events_.on_registered(ok, status);
  };
  callbacks.on_text = [this](const sip::Uri& from, const std::string& text) {
    log_.info("text from ", from.aor(), ": ", text);
    if (events_.on_text) events_.on_text(from, text);
  };
  ua_.set_callbacks(std::move(callbacks));
}

SoftPhone::~SoftPhone() {
  for (auto& [id, session] : media_) session->stop();
}

void SoftPhone::power_on() { ua_.start_registration(); }

void SoftPhone::power_off() {
  for (auto& [id, session] : media_) session->stop();
  ua_.stop_registration();
}

sip::CallId SoftPhone::dial(const std::string& target) {
  const std::string text =
      target.rfind("sip:", 0) == 0 ? target : "sip:" + target;
  auto uri = sip::Uri::parse(text);
  if (!uri) {
    log_.warn("cannot dial '", target, "': ", uri.error().message);
    return 0;
  }
  return ua_.invite(std::move(*uri));
}

void SoftPhone::hang_up(sip::CallId call) { ua_.hangup(call); }

void SoftPhone::send_text(const std::string& target, std::string text,
                          std::function<void(bool, int)> callback) {
  const std::string uri_text =
      target.rfind("sip:", 0) == 0 ? target : "sip:" + target;
  auto uri = sip::Uri::parse(uri_text);
  if (!uri) {
    if (callback) callback(false, 400);
    return;
  }
  ua_.send_text(std::move(*uri), std::move(text), std::move(callback));
}

void SoftPhone::on_established(sip::CallId id, net::Endpoint remote_rtp) {
  log_.info("call ", id, " established, media to ", remote_rtp.to_string());
  // A re-INVITE re-fires this with a new remote endpoint: tear the old
  // session down first (it owns the port bindings).
  if (const auto it = media_.find(id); it != media_.end()) {
    if (it->second->report().packets_sent > 0 ||
        it->second->report().packets_received > 0) {
      final_reports_[id] = it->second->report();
    }
    it->second->stop();
    media_.erase(it);
  }
  rtp::SessionConfig media;
  media.local_port = ua_.local_rtp(id).port;
  media.remote = remote_rtp;
  media.voice = config_.voice;
  media.playout_delay = config_.playout_delay;
  auto session = std::make_unique<rtp::Session>(host_, media);
  session->start();
  media_[id] = std::move(session);
  if (events_.on_established) events_.on_established(id);
}

void SoftPhone::on_call_over(sip::CallId id) {
  const auto it = media_.find(id);
  if (it == media_.end()) return;
  final_reports_[id] = it->second->report();
  it->second->stop();
  media_.erase(it);
}

std::optional<rtp::Session::Report> SoftPhone::call_report(
    sip::CallId call) const {
  if (const auto it = media_.find(call); it != media_.end()) {
    return it->second->report();
  }
  if (const auto it = final_reports_.find(call); it != final_reports_.end()) {
    return it->second;
  }
  return std::nullopt;
}

}  // namespace siphoc::voip
