// docs_check: enforce the tooling doc contract (sibling of metrics_check).
//
// The docs describe a concrete set of runnable binaries and command-line
// flags; this tool fails CI when code grows a surface the docs never
// mention -- the drift this repo's doc set has repeatedly accumulated
// (bench flags missing from PERFORMANCE.md, benches missing from the
// catalog table).
//
//   docs_check benches <bench-dir> <doc.md> [more docs...]
//       Every bench_*.cpp in <bench-dir> defines a binary; its name must
//       appear in at least one of the given docs.
//
//   docs_check flags <source-file> <doc.md> [more docs...]
//       Scans the source for command-line flag string literals (a whole
//       literal of the form --word[-word...]) and reports every flag not
//       mentioned in any of the given docs. Run against the tools that
//       parse argv: examples/scenario_runner.cpp, bench/bench_table.hpp.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "docs_check: cannot open %s\n",
                 path.string().c_str());
    std::exit(2);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string read_docs(int argc, char** argv, int first) {
  std::string all;
  for (int i = first; i < argc; ++i) {
    all += read_file(argv[i]);
    all += '\n';
  }
  return all;
}

/// A string literal is a flag when the whole literal is "--word" with
/// lowercase words separated by single dashes ("--sim-threads"). Literals
/// that merely *contain* a flag ("--chaos: unknown parameter") are prose,
/// not surface, and are skipped.
bool is_flag_literal(const std::string& s) {
  if (s.size() < 3 || s.compare(0, 2, "--") != 0) return false;
  bool last_dash = true;  // no leading dash after the "--"
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '-') {
      if (last_dash) return false;
      last_dash = true;
    } else if (std::islower(static_cast<unsigned char>(c)) != 0) {
      last_dash = false;
    } else {
      return false;
    }
  }
  return !last_dash;
}

/// Key=value option keys are surface too: a whole literal like "seed=" or
/// "p2p=" (lowercase/digit words, single dashes, trailing '=') is how the
/// runner parses its --chaos / --sweep parameters, and each must appear in
/// the docs verbatim ("seed=N" counts -- the match is on the key prefix).
bool is_option_key_literal(const std::string& s) {
  if (s.size() < 2 || s.back() != '=') return false;
  if (std::islower(static_cast<unsigned char>(s.front())) == 0) return false;
  bool last_dash = false;
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    const char c = s[i];
    if (c == '-') {
      if (last_dash) return false;
      last_dash = true;
    } else if (std::islower(static_cast<unsigned char>(c)) != 0 ||
               std::isdigit(static_cast<unsigned char>(c)) != 0) {
      last_dash = false;
    } else {
      return false;
    }
  }
  return !last_dash;
}

std::set<std::string> flag_literals(const std::string& text) {
  std::set<std::string> flags;
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) break;
    const std::string literal = text.substr(pos + 1, end - pos - 1);
    if (is_flag_literal(literal) || is_option_key_literal(literal)) {
      flags.insert(literal);
    }
    pos = end + 1;
  }
  return flags;
}

int run_flags_mode(const fs::path& source, int argc, char** argv, int first) {
  const std::string docs = read_docs(argc, argv, first);
  const auto flags = flag_literals(read_file(source));
  if (flags.empty()) {
    std::fprintf(stderr, "docs_check: no flag literals found in %s\n",
                 source.string().c_str());
    return 2;
  }
  int bad = 0;
  for (const auto& flag : flags) {
    if (docs.find(flag) == std::string::npos) {
      std::fprintf(stderr, "UNDOCUMENTED flag %s (parsed by %s)\n",
                   flag.c_str(), source.string().c_str());
      ++bad;
    }
  }
  std::printf("docs_check flags: %zu flags in %s, %d undocumented\n",
              flags.size(), source.filename().string().c_str(), bad);
  return bad == 0 ? 0 : 1;
}

int run_benches_mode(const fs::path& bench_dir, int argc, char** argv,
                     int first) {
  const std::string docs = read_docs(argc, argv, first);
  int bad = 0;
  std::size_t benches = 0;
  std::vector<fs::path> entries;
  for (const auto& entry : fs::directory_iterator(bench_dir)) {
    if (entry.is_regular_file()) entries.push_back(entry.path());
  }
  std::sort(entries.begin(), entries.end());
  for (const auto& path : entries) {
    const std::string stem = path.stem().string();
    if (path.extension() != ".cpp" || stem.compare(0, 6, "bench_") != 0) {
      continue;
    }
    ++benches;
    if (docs.find(stem) == std::string::npos) {
      std::fprintf(stderr,
                   "UNDOCUMENTED bench %s (%s exists but no doc mentions "
                   "the binary)\n",
                   stem.c_str(), path.string().c_str());
      ++bad;
    }
  }
  if (benches == 0) {
    std::fprintf(stderr, "docs_check: no bench_*.cpp under %s\n",
                 bench_dir.string().c_str());
    return 2;
  }
  std::printf("docs_check benches: %zu benches, %d undocumented\n", benches,
              bad);
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(
        stderr,
        "usage: docs_check benches <bench-dir>   <doc.md> [more docs...]\n"
        "       docs_check flags   <source-file> <doc.md> [more docs...]\n");
    return 2;
  }
  const std::string mode = argv[1];
  if (mode == "benches") return run_benches_mode(argv[2], argc, argv, 3);
  if (mode == "flags") return run_flags_mode(argv[2], argc, argv, 3);
  std::fprintf(stderr, "unknown mode %s\n", mode.c_str());
  return 2;
}
