// metrics_check: enforce the observability doc contract (docs/METRICS.md).
//
// The catalog in docs/METRICS.md is the authoritative list of metric and
// span names this stack may emit. This tool fails CI when code or emitted
// sidecars drift from it:
//
//   metrics_check source  <src-dir>  <METRICS.md>
//       Scans *.cpp/*.hpp under <src-dir> for registry instrument calls --
//       counter("..."), gauge("..."), histogram("..."), record_span("...")
//       -- and reports every literal name not documented in the catalog.
//
//   metrics_check sidecar <file.json> <METRICS.md>
//       Validates a siphoc.metrics.v1 sidecar: required schema keys are
//       present and every series/span name is documented.
//
// Catalog format: any `backtick.quoted` token in METRICS.md counts as a
// documented name. Dynamic names use wildcard segments in angle brackets,
// e.g. `sip.client_tx.<method>` matches sip.client_tx.INVITE. Code that
// builds a name by concatenation ("sip.client_tx." + method) is checked by
// prefix against a pattern's fixed head.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "metrics_check: cannot open %s\n",
                 path.string().c_str());
    std::exit(2);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '.' || c == '<' || c == '>';
}

/// Every `token` in the markdown that looks like an identifier (letters,
/// digits, '_', '.', and <wildcard> segments) is a documented name.
std::set<std::string> parse_catalog(const std::string& markdown) {
  std::set<std::string> names;
  std::size_t i = 0;
  while ((i = markdown.find('`', i)) != std::string::npos) {
    const std::size_t end = markdown.find('`', i + 1);
    if (end == std::string::npos) break;
    const std::string token = markdown.substr(i + 1, end - i - 1);
    i = end + 1;
    if (token.empty()) continue;
    // A pattern starting with a wildcard would match every name and void
    // the contract; require a literal head (prose like `<wildcard>` in the
    // doc is thereby ignored too).
    if (token.front() == '<') continue;
    bool ok = true;
    for (const char c : token) ok = ok && name_char(c);
    if (ok) names.insert(token);
  }
  return names;
}

/// True when `name` matches `pattern`, where each <segment> in the pattern
/// matches one or more name characters (no backtracking needed: wildcards
/// are anchored by the literal text that follows them).
bool wildcard_match(const std::string& pattern, const std::string& name) {
  std::size_t pi = 0, ni = 0;
  while (pi < pattern.size()) {
    if (pattern[pi] == '<') {
      const std::size_t close = pattern.find('>', pi);
      if (close == std::string::npos) return false;  // malformed pattern
      pi = close + 1;
      // The wildcard must consume at least one character, then everything
      // up to the next literal character of the pattern.
      if (ni >= name.size()) return false;
      if (pi == pattern.size()) return true;  // trailing wildcard eats rest
      const char anchor = pattern[pi];
      std::size_t stop = name.find(anchor, ni + 1);
      if (stop == std::string::npos) return false;
      ni = stop;
    } else {
      if (ni >= name.size() || name[ni] != pattern[pi]) return false;
      ++pi;
      ++ni;
    }
  }
  return ni == name.size();
}

bool documented(const std::set<std::string>& catalog, const std::string& name,
                bool is_prefix) {
  if (!is_prefix && catalog.count(name) != 0) return true;
  for (const auto& pattern : catalog) {
    if (is_prefix) {
      // Concatenated name: the literal must be the fixed head of a
      // documented wildcard pattern (e.g. "sip.client_tx." against
      // sip.client_tx.<method>).
      const std::size_t open = pattern.find('<');
      if (open != std::string::npos && pattern.compare(0, open, name) == 0) {
        return true;
      }
    } else if (pattern.find('<') != std::string::npos &&
               wildcard_match(pattern, name)) {
      return true;
    }
  }
  return false;
}

struct Use {
  std::string name;
  bool is_prefix = false;  // literal is a concatenation head ("x." + y)
  std::string where;
};

/// Extracts the string literal opening at text[at] (== '"'); sets
/// `is_prefix` when the literal is followed by '+' (runtime concatenation).
std::optional<Use> extract_literal(const std::string& text, std::size_t at) {
  const std::size_t end = text.find('"', at + 1);
  if (end == std::string::npos) return std::nullopt;
  Use use;
  use.name = text.substr(at + 1, end - at - 1);
  std::size_t after = end + 1;
  while (after < text.size() &&
         std::isspace(static_cast<unsigned char>(text[after])) != 0) {
    ++after;
  }
  use.is_prefix = after < text.size() && text[after] == '+';
  return use;
}

void scan_source(const std::string& text, const std::string& file,
                 std::vector<Use>& out) {
  static const char* kCalls[] = {"counter(", "gauge(", "histogram(",
                                 "record_span("};
  for (const char* call : kCalls) {
    const std::string needle = call;
    std::size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      std::size_t quote = pos + needle.size();
      pos += needle.size();
      // Tolerate a line break between the call and its first argument.
      while (quote < text.size() &&
             std::isspace(static_cast<unsigned char>(text[quote])) != 0) {
        ++quote;
      }
      if (quote >= text.size() || text[quote] != '"') continue;
      auto use = extract_literal(text, quote);
      if (!use || use->name.empty()) continue;
      // Only registry series names: skip helper definitions whose literal
      // is a component label or unrelated string (names carry a dot, spans
      // an underscore).
      if (use->name.find('.') == std::string::npos &&
          use->name.find('_') == std::string::npos) {
        continue;
      }
      const std::size_t line =
          1 + static_cast<std::size_t>(
                  std::count(text.begin(), text.begin() + quote, '\n'));
      use->where = file + ":" + std::to_string(line);
      out.push_back(std::move(*use));
    }
  }
}

int run_source_mode(const fs::path& src_dir, const fs::path& doc_path) {
  const auto catalog = parse_catalog(read_file(doc_path));
  if (catalog.empty()) {
    std::fprintf(stderr, "metrics_check: no names parsed from %s\n",
                 doc_path.string().c_str());
    return 2;
  }
  std::vector<Use> uses;
  for (const auto& entry : fs::recursive_directory_iterator(src_dir)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext != ".cpp" && ext != ".hpp") continue;
    scan_source(read_file(entry.path()), entry.path().string(), uses);
  }
  int bad = 0;
  std::size_t checked = 0;
  for (const auto& use : uses) {
    ++checked;
    if (!documented(catalog, use.name, use.is_prefix)) {
      std::fprintf(stderr, "UNDOCUMENTED metric name \"%s%s\" at %s\n",
                   use.name.c_str(), use.is_prefix ? "<...>" : "",
                   use.where.c_str());
      ++bad;
    }
  }
  std::printf("metrics_check source: %zu instrument calls, %d undocumented\n",
              checked, bad);
  return bad == 0 ? 0 : 1;
}

/// Collects the value of every "name": "..." pair in the sidecar. The
/// siphoc.metrics.v1 schema only uses the "name" key for series and span
/// names, so no structural JSON parse is needed.
std::vector<std::string> sidecar_names(const std::string& json) {
  std::vector<std::string> names;
  const std::string needle = "\"name\":";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    while (pos < json.size() &&
           std::isspace(static_cast<unsigned char>(json[pos])) != 0) {
      ++pos;
    }
    if (pos >= json.size() || json[pos] != '"') continue;
    const std::size_t end = json.find('"', pos + 1);
    if (end == std::string::npos) break;
    names.push_back(json.substr(pos + 1, end - pos - 1));
    pos = end + 1;
  }
  return names;
}

int run_sidecar_mode(const fs::path& json_path, const fs::path& doc_path) {
  const std::string json = read_file(json_path);
  const auto catalog = parse_catalog(read_file(doc_path));

  int bad = 0;
  static const char* kRequiredKeys[] = {
      "\"schema\": \"siphoc.metrics.v1\"", "\"emitted_at_us\"",
      "\"counters\"",                      "\"gauges\"",
      "\"histograms\"",                    "\"spans\"",
      "\"spans_dropped\""};
  for (const char* key : kRequiredKeys) {
    if (json.find(key) == std::string::npos) {
      std::fprintf(stderr, "sidecar missing required key %s\n", key);
      ++bad;
    }
  }

  // Merged-parallel sidecars (bench --threads / scenario_runner --sweep)
  // additionally carry "merged_cells": the number of per-simulation
  // registries folded into the export. Optional, but when present it must
  // be a positive integer.
  const std::string merged_key = "\"merged_cells\":";
  if (const std::size_t at = json.find(merged_key); at != std::string::npos) {
    std::size_t pos = at + merged_key.size();
    while (pos < json.size() &&
           std::isspace(static_cast<unsigned char>(json[pos])) != 0) {
      ++pos;
    }
    std::size_t digits = 0;
    while (pos + digits < json.size() &&
           std::isdigit(static_cast<unsigned char>(json[pos + digits])) != 0) {
      ++digits;
    }
    if (digits == 0 || (digits == 1 && json[pos] == '0')) {
      std::fprintf(stderr,
                   "sidecar \"merged_cells\" must be a positive integer\n");
      ++bad;
    }
  }

  const auto names = sidecar_names(json);
  if (names.empty()) {
    std::fprintf(stderr, "sidecar contains no named series at all\n");
    ++bad;
  }
  std::set<std::string> reported;
  for (const auto& name : names) {
    if (!documented(catalog, name, /*is_prefix=*/false) &&
        reported.insert(name).second) {
      std::fprintf(stderr, "UNDOCUMENTED sidecar name \"%s\"\n",
                   name.c_str());
      ++bad;
    }
  }
  std::printf("metrics_check sidecar: %zu names, %d problems\n", names.size(),
              bad);
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) {
    std::fprintf(stderr,
                 "usage: metrics_check source  <src-dir>    <METRICS.md>\n"
                 "       metrics_check sidecar <file.json>  <METRICS.md>\n");
    return 2;
  }
  const std::string mode = argv[1];
  if (mode == "source") return run_source_mode(argv[2], argv[3]);
  if (mode == "sidecar") return run_sidecar_mode(argv[2], argv[3]);
  std::fprintf(stderr, "unknown mode %s\n", mode.c_str());
  return 2;
}
