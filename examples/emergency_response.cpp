// emergency_response: the paper's emergency scenario (section 1) -- "MANETs
// are further envisioned as playing a significant role in emergency
// response situations in which the network infrastructure might temporarily
// be broken".
//
// A team of responders with mobile nodes spreads over an area. The fixed
// infrastructure is gone; calls run purely ad hoc. Midway, one vehicle
// regains an uplink (satellite/LTE), its Gateway Provider starts serving,
// every node's Connection Provider attaches through the tunnel, and a call
// to headquarters on the public Internet succeeds.
#include <cstdio>

#include "scenario/scenario.hpp"

using namespace siphoc;

int main() {
  scenario::Options options;
  options.nodes = 8;
  options.topology = scenario::Topology::kChain;  // a search line
  options.spacing = 95;
  options.routing = RoutingKind::kAodv;

  scenario::Testbed bed(options);
  // Headquarters: a SIP provider + an operator phone on the Internet.
  auto& provider = bed.add_provider("rescue.org");
  auto& hq_host = bed.add_internet_host("hq");
  voip::SoftPhoneConfig hq_config;
  hq_config.username = "hq";
  hq_config.domain = "rescue.org";
  // The Internet phone registers directly with its provider -- no MANET.
  hq_config.outbound_proxy = {
      *bed.internet().resolve("rescue.org"), 5060};
  hq_config.media_address = hq_host.wired_address();
  voip::SoftPhone hq(hq_host, hq_config);

  bed.start();
  std::printf("== emergency response: 8 mobile nodes, infrastructure down ==\n\n");

  auto& leader = bed.add_phone(0, "leader", "rescue.org");
  auto& medic = bed.add_phone(5, "medic", "rescue.org");
  bed.settle(seconds(2));

  // Phase 1: isolated MANET -- team-internal calls work without any server.
  bed.register_and_wait(leader);
  bed.register_and_wait(medic);
  const auto local = bed.call_and_wait(leader, "medic@rescue.org");
  std::printf("[phase 1] isolated MANET, leader -> medic (5 hops): %s "
              "(%.0f ms)\n",
              local.established ? "connected" : "FAILED",
              to_millis(local.setup_time));
  if (local.established) {
    bed.run_for(seconds(5));
    leader.hang_up(local.call);
    bed.run_for(seconds(1));
  }

  // Phase 2: node 3's vehicle regains an uplink.
  std::printf("\n[phase 2] node 3 regains an Internet uplink...\n");
  bed.make_gateway(3);
  hq.power_on();
  // Gateway Provider advertises, Connection Providers discover + tunnel.
  bed.run_for(seconds(15));
  std::printf("  gateway serving: %s, tunnel clients: %zu\n",
              bed.stack(3).gateway_provider()->serving() ? "yes" : "no",
              bed.stack(3).gateway_provider()->tunnel_server().client_count());
  std::printf("  leader online: %s   medic online: %s\n",
              bed.stack(0).internet_available() ? "yes" : "no",
              bed.stack(5).internet_available() ? "yes" : "no");

  // Re-register so the official rescue.org addresses reach the provider.
  bed.register_and_wait(leader);
  std::printf("  provider bindings at rescue.org: %zu\n",
              provider.binding_count());

  // Phase 3: call from the field to headquarters on the Internet.
  const auto uplink = bed.call_and_wait(leader, "hq@rescue.org");
  std::printf("\n[phase 3] leader -> hq@rescue.org (via gateway tunnel): %s "
              "(%.0f ms)\n",
              uplink.established ? "connected" : "FAILED",
              to_millis(uplink.setup_time));
  if (uplink.established) {
    bed.run_for(seconds(8));
    leader.hang_up(uplink.call);
    bed.run_for(seconds(1));
    if (const auto rep = leader.call_report(uplink.call)) {
      std::printf("  field<->HQ voice: %.1f ms mean delay, %.2f%% loss, "
                  "MOS %.2f\n",
                  rep->mean_delay_ms, rep->effective_loss_percent,
                  rep->quality.mos);
    }
  }

  // Phase 4: a call from the Internet into the MANET (paper section 3.2:
  // "also VoIP calls from the Internet to users in the MANET become
  // possible").
  struct Outcome {
    bool done = false, ok = false;
  } outcome;
  voip::SoftPhoneEvents events;
  events.on_established = [&](sip::CallId) { outcome = {true, true}; };
  events.on_failed = [&](sip::CallId, int) { outcome = {true, false}; };
  hq.set_events(std::move(events));
  const auto t0 = bed.sim().now();
  const auto call = hq.dial("leader@rescue.org");
  while (!outcome.done && bed.sim().now() < t0 + seconds(15)) {
    bed.run_for(milliseconds(10));
  }
  std::printf("\n[phase 4] hq -> leader@rescue.org (Internet into MANET): %s\n",
              outcome.ok ? "connected" : "FAILED");
  if (outcome.ok) {
    bed.run_for(seconds(5));
    hq.hang_up(call);
    bed.run_for(seconds(1));
  }

  const bool success = local.established && uplink.established && outcome.ok;
  std::printf("\nemergency scenario %s.\n",
              success ? "complete" : "had failures");
  return success ? 0 : 1;
}
