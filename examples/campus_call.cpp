// campus_call: the paper's university-campus scenario (section 1) --
// "VoIP over a MANET would provide users with a free communication system"
// in a densely populated area.
//
// A 5x5 grid of nodes (dorms across a campus), OLSR routing (proactive:
// contact bindings converge via TC piggybacking before anyone calls),
// several users registering, then a round of concurrent calls with voice.
#include <cstdio>
#include <vector>

#include "scenario/scenario.hpp"

using namespace siphoc;

int main() {
  scenario::Options options;
  options.nodes = 25;
  options.topology = scenario::Topology::kGrid;
  options.spacing = 90;
  options.routing = RoutingKind::kOlsr;

  scenario::Testbed bed(options);
  bed.start();
  std::printf("== campus: 25 nodes in a 5x5 grid, OLSR + proactive SLP ==\n\n");

  const std::vector<std::pair<std::size_t, const char*>> users = {
      {0, "ada"}, {4, "bela"}, {12, "chloe"}, {20, "dan"}, {24, "emre"},
      {7, "fred"}};
  std::vector<voip::SoftPhone*> phones;
  for (const auto& [node, name] : users) {
    phones.push_back(&bed.add_phone(node, name, "campus.edu"));
  }

  // Let OLSR elect MPRs and build routes.
  bed.settle(seconds(8));

  for (std::size_t i = 0; i < phones.size(); ++i) {
    const bool ok = bed.register_and_wait(*phones[i]);
    std::printf("register %-6s on node %-2zu : %s\n", users[i].second,
                users[i].first, ok ? "200 OK" : "FAILED");
  }

  // Proactive SLP: every node's cache should now hold all six bindings.
  bed.run_for(seconds(12));
  std::printf("\nSLP convergence (entries known per sampled node):\n");
  for (const std::size_t node : {0, 12, 24}) {
    std::printf("  node %-2zu knows %zu service entries\n", node,
                bed.stack(node).slp().snapshot().size());
  }

  // Corner-to-corner and cross calls, concurrently active.
  std::printf("\nplacing calls...\n");
  const auto r1 = bed.call_and_wait(*phones[0], "emre@campus.edu");
  std::printf("  ada   -> emre  (corner to corner): %s, %.1f ms\n",
              r1.established ? "ok" : "FAILED", to_millis(r1.setup_time));
  const auto r2 = bed.call_and_wait(*phones[1], "dan@campus.edu");
  std::printf("  bela  -> dan                     : %s, %.1f ms\n",
              r2.established ? "ok" : "FAILED", to_millis(r2.setup_time));
  const auto r3 = bed.call_and_wait(*phones[2], "fred@campus.edu");
  std::printf("  chloe -> fred                    : %s, %.1f ms\n",
              r3.established ? "ok" : "FAILED", to_millis(r3.setup_time));

  std::printf("\nthree concurrent calls talking for 15 s...\n");
  bed.run_for(seconds(15));

  const struct {
    voip::SoftPhone* phone;
    scenario::Testbed::CallResult result;
    const char* label;
  } calls[] = {{phones[0], r1, "ada->emre"},
               {phones[1], r2, "bela->dan"},
               {phones[2], r3, "chloe->fred"}};
  for (const auto& c : calls) {
    if (!c.result.established) continue;
    c.phone->hang_up(c.result.call);
  }
  bed.run_for(seconds(1));

  std::printf("\nvoice quality (caller side):\n");
  std::printf("  %-12s %8s %8s %7s %7s %6s\n", "call", "sent", "rcvd",
              "loss%", "jit ms", "MOS");
  for (const auto& c : calls) {
    if (!c.result.established) continue;
    const auto rep = c.phone->call_report(c.result.call);
    if (!rep) continue;
    std::printf("  %-12s %8llu %8llu %7.2f %7.2f %6.2f\n", c.label,
                static_cast<unsigned long long>(rep->packets_sent),
                static_cast<unsigned long long>(rep->packets_received),
                rep->effective_loss_percent, rep->jitter_ms,
                rep->quality.mos);
  }

  const bool all = r1.established && r2.established && r3.established;
  std::printf("\ncampus scenario %s.\n", all ? "complete" : "had failures");
  return all ? 0 : 1;
}
