// Quickstart: the paper's Figure 3 walkthrough, end to end.
//
// Two laptops in an ad hoc network, no server anywhere. Alice and Bob run
// out-of-the-box softphones configured exactly like the paper's Figure 2
// (account user@voicehoc.ch, outbound proxy = localhost). The example
// prints the eight steps of Figure 3 as they happen, then streams a few
// seconds of G.711 voice and reports call quality.
//
//   ./quickstart [hops]    (default 3: a 4-node chain, multihop like the
//                           firewall-separated testbed laptops)
#include <cstdio>
#include <string>

#include "scenario/scenario.hpp"

using namespace siphoc;

int main(int argc, char** argv) {
  const int hops = argc > 1 ? std::max(1, std::atoi(argv[1])) : 3;

  // Uncomment for a full middleware log:
  // Logging::instance().use_stderr();
  // Logging::instance().set_level(LogLevel::kInfo);

  scenario::Options options;
  options.nodes = static_cast<std::size_t>(hops) + 1;
  options.topology = scenario::Topology::kChain;
  options.spacing = 100;  // radio range 120 m -> only neighbors hear you
  options.routing = RoutingKind::kAodv;

  scenario::Testbed bed(options);
  bed.start();
  std::printf("== SIPHoc quickstart: %zu nodes, %d hop(s), AODV ==\n\n",
              bed.size(), hops);

  // The five components of Figure 1 are now running on every node.
  std::printf("Each node runs: SIPHoc proxy, MANET SLP (piggyback plugin),\n"
              "Gateway Provider, Connection Provider. Phones attach via\n"
              "outbound proxy = 127.0.0.1:5060 (Figure 2 config).\n\n");

  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(bed.size() - 1, "bob");
  bed.settle(seconds(2));  // let routing daemons boot

  // Steps 1-2: Alice's phone registers; her proxy advertises via MANET SLP.
  const bool alice_ok = bed.register_and_wait(alice);
  std::printf("[step 1] alice@voicehoc.ch REGISTER -> local proxy: %s\n",
              alice_ok ? "200 OK" : "FAILED");
  std::printf("[step 2] proxy advertised contact in MANET SLP: %s\n",
              bed.stack(0).slp().snapshot().empty() ? "no" : "yes");

  // Steps 3-4: Bob does the same on the far node.
  const bool bob_ok = bed.register_and_wait(bob);
  std::printf("[step 3] bob@voicehoc.ch REGISTER -> local proxy: %s\n",
              bob_ok ? "200 OK" : "FAILED");
  std::printf("[step 4] proxy advertised contact in MANET SLP: %s\n\n",
              bed.stack(bed.size() - 1).slp().snapshot().empty() ? "no"
                                                                 : "yes");

  // Figure 4: the MANET SLP state on Bob's node.
  std::printf("MANET SLP state on node %zu (Figure 4):\n", bed.size() - 1);
  for (const auto& entry : bed.stack(bed.size() - 1).slp().snapshot()) {
    std::printf("  %s\n", entry.to_string().c_str());
  }
  std::printf("\n");

  // Steps 5-8: Alice calls Bob. INVITE -> local proxy -> SLP lookup
  // (piggybacked on an AODV RREQ flood) -> forwarded to Bob's proxy ->
  // delivered to Bob's phone, which rings and answers.
  std::printf("[step 5] alice dials bob@voicehoc.ch (INVITE -> local proxy)\n");
  const auto result = bed.call_and_wait(alice, "bob@voicehoc.ch");
  std::printf("[step 6] proxy consulted MANET SLP (lookups: %llu, hits: %llu)\n",
              static_cast<unsigned long long>(bed.stack(0).slp().stats().lookups),
              static_cast<unsigned long long>(
                  bed.stack(0).slp().stats().hits_local +
                  bed.stack(0).slp().stats().hits_remote));
  std::printf("[step 7] INVITE forwarded across the MANET\n");
  std::printf("[step 8] call %s after %.1f ms\n\n",
              result.established ? "ESTABLISHED" : "FAILED",
              to_millis(result.setup_time));
  if (!result.established) return 1;

  // Talk for a while, then hang up and report voice quality.
  std::printf("streaming G.711 voice for 10 s over %d hop(s)...\n", hops);
  bed.run_for(seconds(10));
  alice.hang_up(result.call);
  bed.run_for(seconds(1));

  if (const auto report = alice.call_report(result.call)) {
    std::printf("\nvoice quality at alice (listener side):\n");
    std::printf("  packets: %llu sent, %llu received, %llu lost, %llu late\n",
                static_cast<unsigned long long>(report->packets_sent),
                static_cast<unsigned long long>(report->packets_received),
                static_cast<unsigned long long>(report->packets_lost),
                static_cast<unsigned long long>(report->late_drops));
    std::printf("  delay: %.1f ms mean / %.1f ms max, jitter %.2f ms\n",
                report->mean_delay_ms, report->max_delay_ms,
                report->jitter_ms);
    std::printf("  E-model: R=%.1f  MOS=%.2f\n", report->quality.r_factor,
                report->quality.mos);
    if (report->remote_loss_percent) {
      std::printf("  far end heard our stream with %.2f%% loss (via RTCP)\n",
                  *report->remote_loss_percent);
    }
  }
  std::printf("\ncall ended. quickstart complete.\n");
  return 0;
}
