// internet_call: reproduces the paper's SIP provider interoperability test
// (section 3.2).
//
// "We have tested this feature with three different SIP providers ...
//  Typically, SIP providers have their SIP proxy running on the domain they
//  assign the SIP addresses from. If that is the case (as for siphoc.ch and
//  netvoip.ch), one can make phone calls to and from the Internet without a
//  problem. However, a problem occurs if the SIP provider requires a
//  special outbound proxy to be set in the VoIP configuration (as for
//  polyphone.ethz.ch). ... This is an open issue."
//
// Three providers are spawned on the emulated Internet; the third demands
// its own outbound proxy. A MANET phone registers with each through the
// gateway; the first two succeed, the third reproduces the documented
// failure (403 from the provider).
#include <cstdio>

#include "scenario/scenario.hpp"

using namespace siphoc;

int main() {
  scenario::Options options;
  options.nodes = 4;
  options.topology = scenario::Topology::kChain;
  options.spacing = 100;
  options.routing = RoutingKind::kAodv;

  scenario::Testbed bed(options);
  bed.add_provider("siphoc.ch");
  bed.add_provider("netvoip.ch");
  bed.add_provider("polyphone.ethz.ch", /*require_outbound_proxy=*/true);

  bed.start();
  bed.make_gateway(0);
  std::printf("== SIP provider interoperability (paper section 3.2) ==\n\n");

  // Node 3 is three hops from the gateway; let the tunnel come up.
  bed.settle(seconds(12));
  std::printf("node 3 attached to the Internet: %s\n\n",
              bed.stack(3).internet_available() ? "yes" : "no");

  const char* domains[] = {"siphoc.ch", "netvoip.ch", "polyphone.ethz.ch"};
  const bool expected[] = {true, true, false};
  bool all_as_expected = true;

  for (int i = 0; i < 3; ++i) {
    auto& phone = bed.add_phone(3, std::string("user") + std::to_string(i),
                                domains[i]);
    int last_status = 0;
    voip::SoftPhoneEvents events;
    bool done = false, ok = false;
    events.on_registered = [&](bool success, int status) {
      done = true;
      ok = success;
      last_status = status;
    };
    phone.set_events(std::move(events));
    phone.power_on();
    const auto deadline = bed.sim().now() + seconds(30);
    while (!done && bed.sim().now() < deadline) bed.run_for(milliseconds(20));
    phone.set_events({});

    const char* verdict = ok ? "REGISTERED" : "FAILED";
    std::printf("%-20s -> %-10s (status %d)%s\n", domains[i], verdict,
                last_status,
                ok == expected[i] ? "" : "   << UNEXPECTED");
    if (i == 2 && !ok) {
      std::printf("    ^ the polyphone.ethz.ch open issue: the provider\n"
                  "      requires its own outbound proxy, but SIPHoc\n"
                  "      overwrote that setting with localhost, so the\n"
                  "      proxy could only route via the DNS domain.\n");
    }
    all_as_expected = all_as_expected && (ok == expected[i]);
  }

  std::printf("\ninterop outcome matches the paper: %s\n",
              all_as_expected ? "yes" : "NO");
  return all_as_expected ? 0 : 1;
}
