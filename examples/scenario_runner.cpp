// scenario_runner: drive a SIPHoc deployment from a scenario script.
//
// The paper was presented as a live demo; this tool is the repeatable
// version of that demo. It reads a small line-oriented script (or runs a
// built-in one) describing a MANET, phones, and a sequence of actions, and
// narrates what happens -- with optional live packet decoding.
//
//   ./scenario_runner            # run the built-in demo script
//   ./scenario_runner my.scn     # run a script file
//
// Options:
//   --metrics PATH       write the metrics sidecar (JSON, siphoc.metrics.v1)
//   --metrics-csv PATH   same registry contents as CSV
//   --sweep seeds=K      run the script K times; cell k simulates with seed
//                        derive_seed(script seed, k) in its own SimContext.
//                        Narration prints per cell in seed order and the
//                        metrics sidecars become the merged registries of
//                        all cells ("merged_cells": K).
//   --threads T          worker threads for --sweep (default 1); output is
//                        byte-identical for every T
//   --sim-threads N      worker threads *inside* each simulation (region
//                        sharding; needs a `regions` script line). Pure
//                        execution policy: output is byte-identical for
//                        every N (docs/ARCHITECTURE.md)
//   --faults FILE        apply a FaultPlan file (docs/RESILIENCE.md format)
//                        to the scripted scenario; recovery invariants are
//                        monitored and violations fail the run
//   --chaos seed=N duration=D [p2p=R]
//                        ignore the script: run the built-in chaos soak --
//                        a 6-node MANET with two gateways and a call
//                        workload under a fault plan generated from seed N
//                        (byte-reproducible; non-zero exit on any invariant
//                        violation or corrupted-frame acceptance). p2p=R
//                        backs the provider with a Chord-lite ring of R
//                        dedicated members; the plan then also crashes and
//                        restarts a ring member, I5 (p2p-resolves) is
//                        asserted, and lookup success after stabilization
//                        must be 100%. Byte-reproducible for any
//                        --sim-threads.
//
// Script commands (one per line; '#' starts a comment):
//   nodes N chain|grid|random SPACING aodv|olsr   -- build the MANET
//   seed VALUE                                    -- RNG seed (before nodes)
//   regions R                                     -- shard the simulation
//                                                    into R spatial regions
//                                                    (before nodes; changes
//                                                    results like seed does;
//                                                    disables live tracing)
//   gateway NODE                                  -- wired uplink on a node
//   provider DOMAIN [p2p N | shards N]            -- Internet SIP provider;
//                                                    `p2p N` resolves through
//                                                    a Chord-lite ring of N
//                                                    extra nodes, `shards N`
//                                                    uses the N-shard binding
//                                                    store
//   phone NODE USER DOMAIN                        -- out-of-the-box phone
//   settle SECONDS                                -- let protocols converge
//   register USER                                 -- power on + REGISTER
//   call USER TARGET-AOR                          -- place + await a call
//   text USER TARGET-AOR MESSAGE...               -- send an instant message
//   wait SECONDS                                  -- run the simulation
//   hangup USER                                   -- end USER's last call
//   slp NODE                                      -- dump a node's SLP view
//   trace on|off                                  -- live packet decoding
#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "common/context.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "scenario/faults.hpp"
#include "scenario/invariants.hpp"
#include "scenario/parallel.hpp"
#include "scenario/scenario.hpp"
#include "scenario/trace.hpp"

using namespace siphoc;

namespace {

const char kBuiltinScript[] = R"(# built-in demo: Figure 3 + a text message
seed 7
nodes 4 chain 100 aodv
phone 0 alice voicehoc.ch
phone 3 bob voicehoc.ch
settle 3
register alice
register bob
slp 3
call alice bob@voicehoc.ch
wait 5
text bob alice@voicehoc.ch voice works, texting too
wait 2
hangup alice
wait 1
)";

struct Runner {
  std::unique_ptr<scenario::Testbed> bed;
  std::unique_ptr<scenario::TraceRecorder> trace;
  // Declared after `bed` so they are destroyed first (the engine unhooks
  // the medium's link filter in its destructor).
  std::unique_ptr<scenario::FaultEngine> engine;
  std::unique_ptr<scenario::InvariantMonitor> monitor;
  const scenario::FaultPlan* fault_plan = nullptr;
  bool trace_live = false;
  std::map<std::string, voip::SoftPhone*> phones;
  std::map<std::string, std::size_t> phone_nodes;  // user -> testbed node
  std::map<std::string, sip::CallId> last_call;
  std::uint64_t seed = 42;
  std::uint32_t regions = 0;   // `regions` script line; simulation content
  unsigned sim_threads = 1;    // --sim-threads; pure execution policy
  std::atomic<int> errors{0};
  // Sweep-cell plumbing: narration goes to `out` (a memstream when the
  // runner is one cell of a --sweep), the testbed simulates inside `ctx`,
  // and the cell's seed is derive_seed(script seed, cell index) so cells
  // stay decorrelated no matter what the script's `seed` line says.
  FILE* out = stdout;
  SimContext* ctx = nullptr;
  bool sweep = false;
  std::uint64_t cell_index = 0;
  std::uint64_t effective_seed = 0;

  // Sharded narration (docs/ARCHITECTURE.md): softphone callbacks fire on
  // region lanes, potentially on worker threads, so they must not write to
  // `out` directly. say() appends to the calling lane's buffer (no two
  // lanes share one, so no lock) stamped with virtual time, and
  // flush_narration() replays everything in (time, lane) order at the next
  // command boundary -- byte-identical output for any --sim-threads.
  // Unsharded runs print straight through, exactly as before.
  struct Narration {
    TimePoint when;
    std::uint32_t lane = 0;
    std::string text;
  };
  std::vector<std::vector<Narration>> pending_lines;

#if defined(__GNUC__)
  __attribute__((format(printf, 2, 3)))
#endif
  void say(const char* fmt, ...) {
    va_list args;
    va_start(args, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    if (bed && bed->sim().sharded()) {
      const std::uint32_t lane = bed->sim().current_lane();
      pending_lines[lane].push_back({bed->sim().now(), lane, buf});
      return;
    }
    std::fputs(buf, out);
  }

  void flush_narration() {
    std::vector<Narration> all;
    for (auto& lines : pending_lines) {
      all.insert(all.end(), std::make_move_iterator(lines.begin()),
                 std::make_move_iterator(lines.end()));
      lines.clear();
    }
    // stable: per-lane insertion order survives as the (when, lane) tie-break.
    std::stable_sort(all.begin(), all.end(),
                     [](const Narration& a, const Narration& b) {
                       return a.when != b.when ? a.when < b.when
                                               : a.lane < b.lane;
                     });
    for (const auto& line : all) std::fputs(line.text.c_str(), out);
  }

  std::uint64_t pick_seed() {
    effective_seed = sweep ? SimContext::derive_seed(seed, cell_index) : seed;
    return effective_seed;
  }

  void fail(const std::string& why) {
    say("  !! %s\n", why.c_str());
    ++errors;
  }

  scenario::Options base_options() {
    scenario::Options o;
    o.context = ctx;
    o.seed = pick_seed();
    o.sim_regions = regions;
    o.sim_threads = sim_threads;
    return o;
  }

  void ensure_bed() {
    if (!bed) {
      bed = std::make_unique<scenario::Testbed>(base_options());
      pending_lines.assign(bed->sim().lane_count(), {});
    }
  }

  void run_line(const std::string& raw) {
    std::string line = raw.substr(0, raw.find('#'));
    std::istringstream is(line);
    std::string cmd;
    if (!(is >> cmd)) return;
    std::fprintf(out, "> %s\n", std::string(trim(line)).c_str());

    if (cmd == "seed") {
      is >> seed;
    } else if (cmd == "regions") {
      is >> regions;
    } else if (cmd == "nodes") {
      std::size_t n = 2;
      std::string topo = "chain", routing = "aodv";
      double spacing = 100;
      is >> n >> topo >> spacing >> routing;
      scenario::Options o = base_options();
      o.nodes = n;
      o.spacing = spacing;
      o.topology = topo == "grid"     ? scenario::Topology::kGrid
                   : topo == "random" ? scenario::Topology::kRandomArea
                                      : scenario::Topology::kChain;
      o.routing = routing == "olsr" ? RoutingKind::kOlsr : RoutingKind::kAodv;
      monitor.reset();
      engine.reset();
      trace.reset();
      bed = std::make_unique<scenario::Testbed>(o);
      pending_lines.assign(bed->sim().lane_count(), {});
      if (!bed->sim().sharded()) {
        // The recorder taps every frame on the medium; with region lanes
        // running concurrently that tap would race, so sharded runs skip it.
        trace = std::make_unique<scenario::TraceRecorder>(bed->medium());
      }
      bed->start();
      std::fprintf(out, "  %zu nodes, %s, %s routing\n", n, topo.c_str(),
                   routing.c_str());
      // Note: the banner must not mention --sim-threads; output is
      // promised byte-identical across thread counts.
      if (bed->sim().sharded()) {
        std::fprintf(out, "  %u region lanes\n", bed->sim().lane_count() - 1);
      }
      if (fault_plan) {
        engine = std::make_unique<scenario::FaultEngine>(*bed);
        monitor =
            std::make_unique<scenario::InvariantMonitor>(*bed, engine.get());
        engine->apply(*fault_plan);
        monitor->start(seconds(1));
        std::fprintf(out, "  fault plan armed: %zu event(s)\n",
                     fault_plan->events.size());
      }
    } else if (cmd == "gateway") {
      ensure_bed();
      std::size_t node = 0;
      is >> node;
      bed->make_gateway(node);
    } else if (cmd == "provider") {
      ensure_bed();
      std::string domain;
      is >> domain;
      scenario::Testbed::ProviderOptions opts;
      std::string backend;
      if (is >> backend) {
        std::size_t n = 0;
        is >> n;
        if (backend == "p2p") {
          opts.resolution = scenario::Testbed::Resolution::kP2p;
          if (n > 0) opts.p2p_nodes = n;
        } else if (backend == "shards") {
          opts.store_shards = n;
        }
      }
      bed->add_provider(domain, opts);
    } else if (cmd == "phone") {
      ensure_bed();
      std::size_t node = 0;
      std::string user, domain;
      is >> node >> user >> domain;
      auto& phone = bed->add_phone(node, user, domain);
      voip::SoftPhoneEvents ev;
      ev.on_incoming = [this, user](sip::CallId, const sip::Uri& from) {
        say("  [%s] ringing: call from %s\n", user.c_str(),
            from.aor().c_str());
      };
      ev.on_text = [this, user](const sip::Uri& from,
                                const std::string& text) {
        say("  [%s] text from %s: \"%s\"\n", user.c_str(),
            from.aor().c_str(), text.c_str());
      };
      ev.on_ended = [this, user](sip::CallId) {
        say("  [%s] call ended\n", user.c_str());
      };
      phone.set_events(std::move(ev));
      phones[user] = &phone;
      phone_nodes[user] = node;
    } else if (cmd == "settle" || cmd == "wait") {
      ensure_bed();
      double s = 1;
      is >> s;
      bed->run_for(std::chrono::duration_cast<Duration>(
          std::chrono::duration<double>(s)));
      flush_narration();
    } else if (cmd == "register") {
      std::string user;
      is >> user;
      const auto it = phones.find(user);
      if (it == phones.end()) return fail("unknown phone " + user);
      const bool ok = bed->register_and_wait(*it->second);
      flush_narration();
      std::fprintf(out, "  [%s] REGISTER -> %s\n", user.c_str(),
                   ok ? "200 OK" : "FAILED");
      if (!ok) ++errors;
    } else if (cmd == "call") {
      std::string user, target;
      is >> user >> target;
      const auto it = phones.find(user);
      if (it == phones.end()) return fail("unknown phone " + user);
      const auto result = bed->call_and_wait(*it->second, target);
      flush_narration();
      if (result.established) {
        last_call[user] = result.call;
        std::fprintf(out, "  [%s] call to %s established in %.1f ms\n",
                     user.c_str(), target.c_str(),
                     to_millis(result.setup_time));
      } else {
        fail("call failed with status " +
             std::to_string(result.failure_status));
      }
    } else if (cmd == "text") {
      std::string user, target;
      is >> user >> target;
      std::string text;
      std::getline(is, text);
      const auto it = phones.find(user);
      if (it == phones.end()) return fail("unknown phone " + user);
      sim::Simulator::LaneScope lane(bed->sim(),
                                     bed->node_lane(phone_nodes.at(user)));
      it->second->send_text(target, std::string(trim(text)),
                            [this](bool ok, int status) {
                              if (!ok) {
                                fail("text delivery failed (" +
                                     std::to_string(status) + ")");
                              }
                            });
    } else if (cmd == "hangup") {
      std::string user;
      is >> user;
      const auto it = last_call.find(user);
      if (it == last_call.end()) return fail("no call to hang up");
      {
        sim::Simulator::LaneScope lane(bed->sim(),
                                       bed->node_lane(phone_nodes.at(user)));
        phones.at(user)->hang_up(it->second);
      }
      if (const auto rep = phones.at(user)->call_report(it->second)) {
        std::fprintf(out, "  [%s] call quality: MOS %.2f, %.2f%% loss\n",
                     user.c_str(), rep->quality.mos,
                     rep->effective_loss_percent);
      }
    } else if (cmd == "slp") {
      std::size_t node = 0;
      is >> node;
      if (!bed || node >= bed->size()) return fail("bad node");
      std::fprintf(out, "  MANET SLP on node %zu:\n", node);
      for (const auto& e : bed->stack(node).slp().snapshot()) {
        std::fprintf(out, "    %s\n", e.to_string().c_str());
      }
    } else if (cmd == "trace") {
      std::string mode;
      is >> mode;
      trace_live = mode == "on";
      if (trace_live && bed && bed->sim().sharded()) {
        std::fprintf(out,
                     "  (live tracing unavailable in sharded runs; use "
                     "regions 0)\n");
        trace_live = false;
      }
      if (!trace_live && trace) {
        std::fprintf(out, "  (captured %zu frames)\n", trace->captured());
      }
    } else {
      fail("unknown command '" + cmd + "'");
    }
  }

  /// Final accounting: drain buffered narration, fold region-lane metrics
  /// into the exportable registry, then one last invariant sweep, the
  /// engine's narration, and violations counted as errors.
  void finish() {
    flush_narration();
    if (bed) bed->finalize_metrics();
    if (!monitor) return;
    monitor->stop();
    monitor->check();
    for (const auto& line : engine->narration()) {
      std::fprintf(out, "  %s\n", line.c_str());
    }
    std::fprintf(out, "%s", monitor->report().to_string().c_str());
    errors += static_cast<int>(monitor->report().violations.size());
  }
};

/// The --chaos soak: a six-node chain with gateways at both ends, a call
/// workload between two protected nodes, and a seed-derived fault plan
/// tormenting everything else. All output is virtual-time only, so a given
/// seed reproduces byte for byte -- including across --sim-threads in the
/// p2p variant, whose region count is pinned (simulation content) while
/// the thread count stays pure execution policy.
int run_chaos(std::uint64_t seed, double duration_s, std::size_t p2p_nodes,
              unsigned sim_threads, const std::string& metrics_path,
              const std::string& metrics_csv_path) {
  using scenario::FaultEngine;
  using scenario::FaultPlan;
  using scenario::InvariantMonitor;
  const auto duration = std::chrono::duration_cast<Duration>(
      std::chrono::duration<double>(duration_s));
  std::printf("== chaos soak: seed %llu, %.0f s of faults%s ==\n",
              static_cast<unsigned long long>(seed), duration_s,
              p2p_nodes > 0 ? ", P2P provider" : "");

  scenario::Options o;
  o.seed = seed;
  o.nodes = 6;
  o.topology = scenario::Topology::kChain;
  o.spacing = 80;
  if (p2p_nodes > 0) {
    // Pinned region count (content, like seed); --sim-threads then only
    // changes who executes the lanes, never what happens.
    o.sim_regions = 2;
    o.sim_threads = sim_threads;
  }
  scenario::Testbed bed(o);
  bed.make_gateway(0);
  bed.make_gateway(5);
  if (p2p_nodes > 0) {
    scenario::Testbed::ProviderOptions po;
    po.resolution = scenario::Testbed::Resolution::kP2p;
    po.p2p_nodes = p2p_nodes;
    bed.add_provider("voicehoc.ch", po);
  }
  bed.start();
  auto& alice = bed.add_phone(1, "alice");
  auto& bob = bed.add_phone(4, "bob");
  bed.settle(seconds(5));
  bed.register_and_wait(alice);
  bed.register_and_wait(bob);

  // Nodes 1 and 4 carry the phones and stay up; everything else is fair
  // game for the plan. In p2p mode the gateways are protected too -- ring
  // churn is the subject under test, and stable gateways keep the phones'
  // tunnel contacts fixed so I5's dead-contact check bites on the ring,
  // not on gateway failover. The plan then also crashes and restarts one
  // dedicated ring member.
  const std::vector<std::size_t> protected_nodes =
      p2p_nodes > 0 ? std::vector<std::size_t>{0, 1, 4, 5}
                    : std::vector<std::size_t>{1, 4};
  const FaultPlan plan =
      FaultPlan::generate(seed, duration, o.nodes, protected_nodes,
                          p2p_nodes);
  std::printf("-- fault plan (reproduce with the same seed) --\n%s",
              plan.to_string().c_str());

  FaultEngine engine(bed);
  InvariantMonitor monitor(bed, &engine);
  engine.apply(plan);
  monitor.start(seconds(1));

  std::size_t attempts = 0;
  std::size_t established = 0;
  const TimePoint end = bed.sim().now() + duration;
  while (bed.sim().now() < end) {
    ++attempts;
    const auto result = bed.call_and_wait(alice, "bob@voicehoc.ch",
                                          seconds(8));
    if (result.established) {
      ++established;
      bed.run_for(seconds(3));
      alice.hang_up(result.call);
    }
    bed.run_for(seconds(2));
  }

  // The generated plan always restores the network; give the stacks quiet
  // air to recover in, then demand they actually did.
  bed.run_for(seconds(45));
  monitor.stop();
  monitor.check();

  // P2P acceptance: after stabilization quiesced, every registered AOR
  // must resolve through the ring's front door -- 100%, not "mostly".
  int p2p_failures = 0;
  if (p2p_nodes > 0) {
    const auto ring = bed.p2p_ring("voicehoc.ch");
    std::size_t alive = 0;
    for (const auto* member : ring) alive += member != nullptr ? 1 : 0;
    std::printf("-- p2p ring: %zu/%zu members live --\n", alive,
                ring.size());
    if (alive != ring.size()) ++p2p_failures;

    std::size_t lookups = 0;
    std::size_t hits = 0;
    for (const char* aor : {"alice@voicehoc.ch", "bob@voicehoc.ch"}) {
      bool done = false;
      bool hit = false;
      ring.front()->resolve(aor,
                            [&](std::optional<sip::ContactBinding> binding,
                                int) {
                              done = true;
                              hit = binding.has_value();
                            });
      const TimePoint deadline = bed.sim().now() + seconds(3);
      while (!done && bed.sim().now() < deadline) {
        bed.run_for(milliseconds(50));
      }
      ++lookups;
      hits += hit ? 1 : 0;
      std::printf("  resolve %s: %s\n", aor, hit ? "found" : "MISS");
    }
    std::printf("p2p lookup success after stabilization: %zu/%zu\n", hits,
                lookups);
    if (hits != lookups) ++p2p_failures;
  }

  std::printf("-- applied faults --\n");
  for (const auto& line : engine.narration()) {
    std::printf("  %s\n", line.c_str());
  }
  const auto& ms = bed.medium().stats();
  std::printf(
      "workload: %zu call attempts, %zu established (failures during fault "
      "epochs are expected)\n",
      attempts, established);
  std::printf(
      "injected: %llu corrupted, %llu duplicated, %llu reordered frames\n",
      static_cast<unsigned long long>(ms.frames_corrupted),
      static_cast<unsigned long long>(ms.frames_duplicated),
      static_cast<unsigned long long>(ms.frames_reordered));

  int failures = static_cast<int>(monitor.report().violations.size()) +
                 p2p_failures;
  const auto accepted =
      bed.ctx().metrics().counter_total("chaos.corrupt_accepted_total");
  if (accepted > 0) {
    std::printf(
        "!! %llu corrupted frame(s) decoded successfully -- codec "
        "hardening breach\n",
        static_cast<unsigned long long>(accepted));
    ++failures;
  }
  std::printf("%s", monitor.report().to_string().c_str());

  auto& registry = bed.ctx().metrics();
  if (!metrics_path.empty() &&
      !MetricsRegistry::write_file(metrics_path, registry.to_json())) {
    ++failures;
  }
  if (!metrics_csv_path.empty() &&
      !MetricsRegistry::write_file(metrics_csv_path, registry.to_csv())) {
    ++failures;
  }

  std::printf("\nchaos soak finished with %d failure(s).\n", failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string script_path;
  std::string metrics_path;
  std::string metrics_csv_path;
  std::string faults_path;
  std::size_t sweep_seeds = 0;
  unsigned threads = 1;
  unsigned sim_threads = 1;
  bool chaos = false;
  std::uint64_t chaos_seed = 1;
  double chaos_duration = 120.0;
  std::size_t chaos_p2p = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--metrics-csv" && i + 1 < argc) {
      metrics_csv_path = argv[++i];
    } else if (arg == "--faults" && i + 1 < argc) {
      faults_path = argv[++i];
    } else if (arg == "--chaos") {
      chaos = true;
      // Consume trailing key=value tokens: seed=N duration=D p2p=N.
      while (i + 1 < argc && std::string(argv[i + 1]).find('=') !=
                                 std::string::npos) {
        const std::string spec = argv[++i];
        if (spec.rfind("seed=", 0) == 0) {
          chaos_seed = std::strtoull(spec.c_str() + 5, nullptr, 10);
        } else if (spec.rfind("duration=", 0) == 0) {
          chaos_duration = std::strtod(spec.c_str() + 9, nullptr);
        } else if (spec.rfind("p2p=", 0) == 0) {
          chaos_p2p = static_cast<std::size_t>(
              std::strtoull(spec.c_str() + 4, nullptr, 10));
        } else {
          std::fprintf(stderr, "--chaos: unknown parameter %s\n",
                       spec.c_str());
          return 2;
        }
      }
      if (chaos_duration <= 0) {
        std::fprintf(stderr, "--chaos: duration must be positive\n");
        return 2;
      }
    } else if (arg == "--sweep" && i + 1 < argc) {
      std::string spec = argv[++i];
      if (spec.rfind("seeds=", 0) == 0) spec = spec.substr(6);
      const long k = std::strtol(spec.c_str(), nullptr, 10);
      if (k < 1) {
        std::fprintf(stderr, "--sweep expects seeds=K with K >= 1\n");
        return 2;
      }
      sweep_seeds = static_cast<std::size_t>(k);
    } else if (arg == "--threads" && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      threads = n > 1 ? static_cast<unsigned>(n) : 1;
    } else if (arg == "--sim-threads" && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      sim_threads = n > 1 ? static_cast<unsigned>(n) : 1;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else {
      script_path = arg;
    }
  }

  if (chaos) {
    return run_chaos(chaos_seed, chaos_duration, chaos_p2p, sim_threads,
                     metrics_path, metrics_csv_path);
  }

  scenario::FaultPlan fault_plan;
  bool have_faults = false;
  if (!faults_path.empty()) {
    std::ifstream file(faults_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", faults_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << file.rdbuf();
    auto parsed = scenario::FaultPlan::parse(ss.str());
    if (!parsed) {
      std::fprintf(stderr, "%s: %s\n", faults_path.c_str(),
                   parsed.error().message.c_str());
      return 2;
    }
    fault_plan = std::move(*parsed);
    have_faults = true;
  }

  std::string script;
  if (!script_path.empty()) {
    std::ifstream file(script_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", script_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << file.rdbuf();
    script = ss.str();
    std::printf("== scenario: %s ==\n", script_path.c_str());
  } else {
    script = kBuiltinScript;
    std::printf("== built-in demo scenario ==\n");
  }

  if (sweep_seeds == 0) {
    // Single run, exactly as before the sweep mode existed: simulate in the
    // process-global context and export its registry.
    Runner runner;
    runner.sim_threads = sim_threads;
    if (have_faults) runner.fault_plan = &fault_plan;
    for (const auto& line : split(script, '\n')) {
      runner.run_line(line);
    }
    runner.finish();

    auto& registry = MetricsRegistry::instance();
    if (!metrics_path.empty()) {
      if (MetricsRegistry::write_file(metrics_path, registry.to_json())) {
        std::printf("metrics sidecar written to %s\n", metrics_path.c_str());
      } else {
        ++runner.errors;
      }
    }
    if (!metrics_csv_path.empty() &&
        !MetricsRegistry::write_file(metrics_csv_path, registry.to_csv())) {
      ++runner.errors;
    }

    std::printf("\nscenario finished with %d error(s).\n", runner.errors.load());
    return runner.errors == 0 ? 0 : 1;
  }

  // Sweep: one isolated cell per seed. Each cell narrates into a memstream
  // so workers never interleave on stdout; buffers are replayed in seed
  // order afterwards, making the output byte-identical for any --threads.
  struct CellResult {
    std::string output;
    int errors = 0;
    std::uint64_t seed = 0;
  };
  std::vector<CellResult> results(sweep_seeds);
  std::vector<scenario::Cell> cells;
  cells.reserve(sweep_seeds);
  for (std::size_t k = 0; k < sweep_seeds; ++k) {
    cells.push_back({0, [k, &results, &script, &fault_plan, have_faults,
                         sim_threads](SimContext& ctx) {
                       char* buf = nullptr;
                       std::size_t len = 0;
                       FILE* f = open_memstream(&buf, &len);
                       {
                         Runner runner;
                         runner.out = f != nullptr ? f : stdout;
                         runner.ctx = &ctx;
                         runner.sweep = true;
                         runner.cell_index = k;
                         runner.sim_threads = sim_threads;
                         if (have_faults) runner.fault_plan = &fault_plan;
                         for (const auto& line : split(script, '\n')) {
                           runner.run_line(line);
                         }
                         runner.finish();
                         results[k].errors = runner.errors.load();
                         results[k].seed = runner.effective_seed;
                       }
                       if (f != nullptr) {
                         std::fclose(f);
                         results[k].output.assign(buf, len);
                         std::free(buf);
                       }
                     }});
  }
  const auto contexts = scenario::run_cells(std::move(cells), threads);

  int errors = 0;
  for (std::size_t k = 0; k < sweep_seeds; ++k) {
    std::printf("\n-- sweep cell %zu (seed %llu) --\n", k,
                static_cast<unsigned long long>(results[k].seed));
    std::fwrite(results[k].output.data(), 1, results[k].output.size(),
                stdout);
    errors += results[k].errors;
  }

  MetricsRegistry merged;
  for (const auto& context : contexts) merged.merge_from(context->metrics());
  if (!metrics_path.empty()) {
    if (MetricsRegistry::write_file(metrics_path,
                                    merged.to_json(contexts.size()))) {
      std::printf("metrics sidecar written to %s (%zu cells merged)\n",
                  metrics_path.c_str(), contexts.size());
    } else {
      ++errors;
    }
  }
  if (!metrics_csv_path.empty() &&
      !MetricsRegistry::write_file(metrics_csv_path, merged.to_csv())) {
    ++errors;
  }

  std::printf("\nsweep of %zu seed(s) finished with %d error(s).\n",
              sweep_seeds, errors);
  return errors == 0 ? 0 : 1;
}
