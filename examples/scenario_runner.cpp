// scenario_runner: drive a SIPHoc deployment from a scenario script.
//
// The paper was presented as a live demo; this tool is the repeatable
// version of that demo. It reads a small line-oriented script (or runs a
// built-in one) describing a MANET, phones, and a sequence of actions, and
// narrates what happens -- with optional live packet decoding.
//
//   ./scenario_runner            # run the built-in demo script
//   ./scenario_runner my.scn     # run a script file
//
// Options:
//   --metrics PATH       write the metrics sidecar (JSON, siphoc.metrics.v1)
//   --metrics-csv PATH   same registry contents as CSV
//   --sweep seeds=K      run the script K times; cell k simulates with seed
//                        derive_seed(script seed, k) in its own SimContext.
//                        Narration prints per cell in seed order and the
//                        metrics sidecars become the merged registries of
//                        all cells ("merged_cells": K).
//   --threads T          worker threads for --sweep (default 1); output is
//                        byte-identical for every T
//
// Script commands (one per line; '#' starts a comment):
//   nodes N chain|grid|random SPACING aodv|olsr   -- build the MANET
//   seed VALUE                                    -- RNG seed (before nodes)
//   gateway NODE                                  -- wired uplink on a node
//   provider DOMAIN                               -- Internet SIP provider
//   phone NODE USER DOMAIN                        -- out-of-the-box phone
//   settle SECONDS                                -- let protocols converge
//   register USER                                 -- power on + REGISTER
//   call USER TARGET-AOR                          -- place + await a call
//   text USER TARGET-AOR MESSAGE...               -- send an instant message
//   wait SECONDS                                  -- run the simulation
//   hangup USER                                   -- end USER's last call
//   slp NODE                                      -- dump a node's SLP view
//   trace on|off                                  -- live packet decoding
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "common/context.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "scenario/parallel.hpp"
#include "scenario/scenario.hpp"
#include "scenario/trace.hpp"

using namespace siphoc;

namespace {

const char kBuiltinScript[] = R"(# built-in demo: Figure 3 + a text message
seed 7
nodes 4 chain 100 aodv
phone 0 alice voicehoc.ch
phone 3 bob voicehoc.ch
settle 3
register alice
register bob
slp 3
call alice bob@voicehoc.ch
wait 5
text bob alice@voicehoc.ch voice works, texting too
wait 2
hangup alice
wait 1
)";

struct Runner {
  std::unique_ptr<scenario::Testbed> bed;
  std::unique_ptr<scenario::TraceRecorder> trace;
  bool trace_live = false;
  std::map<std::string, voip::SoftPhone*> phones;
  std::map<std::string, sip::CallId> last_call;
  std::uint64_t seed = 42;
  int errors = 0;
  // Sweep-cell plumbing: narration goes to `out` (a memstream when the
  // runner is one cell of a --sweep), the testbed simulates inside `ctx`,
  // and the cell's seed is derive_seed(script seed, cell index) so cells
  // stay decorrelated no matter what the script's `seed` line says.
  FILE* out = stdout;
  SimContext* ctx = nullptr;
  bool sweep = false;
  std::uint64_t cell_index = 0;
  std::uint64_t effective_seed = 0;

  std::uint64_t pick_seed() {
    effective_seed = sweep ? SimContext::derive_seed(seed, cell_index) : seed;
    return effective_seed;
  }

  void fail(const std::string& why) {
    std::fprintf(out, "  !! %s\n", why.c_str());
    ++errors;
  }

  void ensure_bed() {
    if (!bed) {
      scenario::Options o;
      o.context = ctx;
      o.seed = pick_seed();
      bed = std::make_unique<scenario::Testbed>(o);
    }
  }

  void run_line(const std::string& raw) {
    std::string line = raw.substr(0, raw.find('#'));
    std::istringstream is(line);
    std::string cmd;
    if (!(is >> cmd)) return;
    std::fprintf(out, "> %s\n", std::string(trim(line)).c_str());

    if (cmd == "seed") {
      is >> seed;
    } else if (cmd == "nodes") {
      std::size_t n = 2;
      std::string topo = "chain", routing = "aodv";
      double spacing = 100;
      is >> n >> topo >> spacing >> routing;
      scenario::Options o;
      o.context = ctx;
      o.seed = pick_seed();
      o.nodes = n;
      o.spacing = spacing;
      o.topology = topo == "grid"     ? scenario::Topology::kGrid
                   : topo == "random" ? scenario::Topology::kRandomArea
                                      : scenario::Topology::kChain;
      o.routing = routing == "olsr" ? RoutingKind::kOlsr : RoutingKind::kAodv;
      bed = std::make_unique<scenario::Testbed>(o);
      trace = std::make_unique<scenario::TraceRecorder>(bed->medium());
      bed->start();
      std::fprintf(out, "  %zu nodes, %s, %s routing\n", n, topo.c_str(),
                   routing.c_str());
    } else if (cmd == "gateway") {
      ensure_bed();
      std::size_t node = 0;
      is >> node;
      bed->make_gateway(node);
    } else if (cmd == "provider") {
      ensure_bed();
      std::string domain;
      is >> domain;
      bed->add_provider(domain);
    } else if (cmd == "phone") {
      ensure_bed();
      std::size_t node = 0;
      std::string user, domain;
      is >> node >> user >> domain;
      auto& phone = bed->add_phone(node, user, domain);
      voip::SoftPhoneEvents ev;
      ev.on_incoming = [this, user](sip::CallId, const sip::Uri& from) {
        std::fprintf(out, "  [%s] ringing: call from %s\n", user.c_str(),
                     from.aor().c_str());
      };
      ev.on_text = [this, user](const sip::Uri& from,
                                const std::string& text) {
        std::fprintf(out, "  [%s] text from %s: \"%s\"\n", user.c_str(),
                     from.aor().c_str(), text.c_str());
      };
      ev.on_ended = [this, user](sip::CallId) {
        std::fprintf(out, "  [%s] call ended\n", user.c_str());
      };
      phone.set_events(std::move(ev));
      phones[user] = &phone;
    } else if (cmd == "settle" || cmd == "wait") {
      ensure_bed();
      double s = 1;
      is >> s;
      bed->run_for(std::chrono::duration_cast<Duration>(
          std::chrono::duration<double>(s)));
    } else if (cmd == "register") {
      std::string user;
      is >> user;
      const auto it = phones.find(user);
      if (it == phones.end()) return fail("unknown phone " + user);
      const bool ok = bed->register_and_wait(*it->second);
      std::fprintf(out, "  [%s] REGISTER -> %s\n", user.c_str(),
                   ok ? "200 OK" : "FAILED");
      if (!ok) ++errors;
    } else if (cmd == "call") {
      std::string user, target;
      is >> user >> target;
      const auto it = phones.find(user);
      if (it == phones.end()) return fail("unknown phone " + user);
      const auto result = bed->call_and_wait(*it->second, target);
      if (result.established) {
        last_call[user] = result.call;
        std::fprintf(out, "  [%s] call to %s established in %.1f ms\n",
                     user.c_str(), target.c_str(),
                     to_millis(result.setup_time));
      } else {
        fail("call failed with status " +
             std::to_string(result.failure_status));
      }
    } else if (cmd == "text") {
      std::string user, target;
      is >> user >> target;
      std::string text;
      std::getline(is, text);
      const auto it = phones.find(user);
      if (it == phones.end()) return fail("unknown phone " + user);
      it->second->send_text(target, std::string(trim(text)),
                            [this](bool ok, int status) {
                              if (!ok) {
                                fail("text delivery failed (" +
                                     std::to_string(status) + ")");
                              }
                            });
    } else if (cmd == "hangup") {
      std::string user;
      is >> user;
      const auto it = last_call.find(user);
      if (it == last_call.end()) return fail("no call to hang up");
      phones.at(user)->hang_up(it->second);
      if (const auto rep = phones.at(user)->call_report(it->second)) {
        std::fprintf(out, "  [%s] call quality: MOS %.2f, %.2f%% loss\n",
                     user.c_str(), rep->quality.mos,
                     rep->effective_loss_percent);
      }
    } else if (cmd == "slp") {
      std::size_t node = 0;
      is >> node;
      if (!bed || node >= bed->size()) return fail("bad node");
      std::fprintf(out, "  MANET SLP on node %zu:\n", node);
      for (const auto& e : bed->stack(node).slp().snapshot()) {
        std::fprintf(out, "    %s\n", e.to_string().c_str());
      }
    } else if (cmd == "trace") {
      std::string mode;
      is >> mode;
      trace_live = mode == "on";
      if (!trace_live && trace) {
        std::fprintf(out, "  (captured %zu frames)\n", trace->captured());
      }
    } else {
      fail("unknown command '" + cmd + "'");
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string script_path;
  std::string metrics_path;
  std::string metrics_csv_path;
  std::size_t sweep_seeds = 0;
  unsigned threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--metrics-csv" && i + 1 < argc) {
      metrics_csv_path = argv[++i];
    } else if (arg == "--sweep" && i + 1 < argc) {
      std::string spec = argv[++i];
      if (spec.rfind("seeds=", 0) == 0) spec = spec.substr(6);
      const long k = std::strtol(spec.c_str(), nullptr, 10);
      if (k < 1) {
        std::fprintf(stderr, "--sweep expects seeds=K with K >= 1\n");
        return 2;
      }
      sweep_seeds = static_cast<std::size_t>(k);
    } else if (arg == "--threads" && i + 1 < argc) {
      const long n = std::strtol(argv[++i], nullptr, 10);
      threads = n > 1 ? static_cast<unsigned>(n) : 1;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else {
      script_path = arg;
    }
  }

  std::string script;
  if (!script_path.empty()) {
    std::ifstream file(script_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", script_path.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << file.rdbuf();
    script = ss.str();
    std::printf("== scenario: %s ==\n", script_path.c_str());
  } else {
    script = kBuiltinScript;
    std::printf("== built-in demo scenario ==\n");
  }

  if (sweep_seeds == 0) {
    // Single run, exactly as before the sweep mode existed: simulate in the
    // process-global context and export its registry.
    Runner runner;
    for (const auto& line : split(script, '\n')) {
      runner.run_line(line);
    }

    auto& registry = MetricsRegistry::instance();
    if (!metrics_path.empty()) {
      if (MetricsRegistry::write_file(metrics_path, registry.to_json())) {
        std::printf("metrics sidecar written to %s\n", metrics_path.c_str());
      } else {
        ++runner.errors;
      }
    }
    if (!metrics_csv_path.empty() &&
        !MetricsRegistry::write_file(metrics_csv_path, registry.to_csv())) {
      ++runner.errors;
    }

    std::printf("\nscenario finished with %d error(s).\n", runner.errors);
    return runner.errors == 0 ? 0 : 1;
  }

  // Sweep: one isolated cell per seed. Each cell narrates into a memstream
  // so workers never interleave on stdout; buffers are replayed in seed
  // order afterwards, making the output byte-identical for any --threads.
  struct CellResult {
    std::string output;
    int errors = 0;
    std::uint64_t seed = 0;
  };
  std::vector<CellResult> results(sweep_seeds);
  std::vector<scenario::Cell> cells;
  cells.reserve(sweep_seeds);
  for (std::size_t k = 0; k < sweep_seeds; ++k) {
    cells.push_back({0, [k, &results, &script](SimContext& ctx) {
                       char* buf = nullptr;
                       std::size_t len = 0;
                       FILE* f = open_memstream(&buf, &len);
                       {
                         Runner runner;
                         runner.out = f != nullptr ? f : stdout;
                         runner.ctx = &ctx;
                         runner.sweep = true;
                         runner.cell_index = k;
                         for (const auto& line : split(script, '\n')) {
                           runner.run_line(line);
                         }
                         results[k].errors = runner.errors;
                         results[k].seed = runner.effective_seed;
                       }
                       if (f != nullptr) {
                         std::fclose(f);
                         results[k].output.assign(buf, len);
                         std::free(buf);
                       }
                     }});
  }
  const auto contexts = scenario::run_cells(std::move(cells), threads);

  int errors = 0;
  for (std::size_t k = 0; k < sweep_seeds; ++k) {
    std::printf("\n-- sweep cell %zu (seed %llu) --\n", k,
                static_cast<unsigned long long>(results[k].seed));
    std::fwrite(results[k].output.data(), 1, results[k].output.size(),
                stdout);
    errors += results[k].errors;
  }

  MetricsRegistry merged;
  for (const auto& context : contexts) merged.merge_from(context->metrics());
  if (!metrics_path.empty()) {
    if (MetricsRegistry::write_file(metrics_path,
                                    merged.to_json(contexts.size()))) {
      std::printf("metrics sidecar written to %s (%zu cells merged)\n",
                  metrics_path.c_str(), contexts.size());
    } else {
      ++errors;
    }
  }
  if (!metrics_csv_path.empty() &&
      !MetricsRegistry::write_file(metrics_csv_path, merged.to_csv())) {
    ++errors;
  }

  std::printf("\nsweep of %zu seed(s) finished with %d error(s).\n",
              sweep_seeds, errors);
  return errors == 0 ? 0 : 1;
}
