// field_chat: text messaging over an isolated MANET.
//
// The paper's introduction: "any handheld device ... can be transformed
// into a wireless phone AND TEXT COMMUNICATOR simply by adding a small
// piece of software". This example runs a three-way text conversation over
// a multihop ad hoc network using SIP MESSAGE (RFC 3428) through the same
// SIPHoc proxies that carry calls -- no server, no infrastructure.
#include <cstdio>
#include <string>

#include "scenario/scenario.hpp"

using namespace siphoc;

int main() {
  scenario::Options options;
  options.nodes = 6;
  options.topology = scenario::Topology::kChain;
  options.spacing = 100;
  options.routing = RoutingKind::kAodv;

  scenario::Testbed bed(options);
  bed.start();
  std::printf("== field chat: 6-node chain, SIP MESSAGE over SIPHoc ==\n\n");

  auto& ana = bed.add_phone(0, "ana");
  auto& ben = bed.add_phone(3, "ben");
  auto& cho = bed.add_phone(5, "cho");
  bed.settle(seconds(2));
  for (auto* p : {&ana, &ben, &cho}) bed.register_and_wait(*p);

  const auto receiver = [&](const char* who) {
    voip::SoftPhoneEvents ev;
    ev.on_text = [who, &bed](const sip::Uri& from, const std::string& text) {
      std::printf("  t=%-10s %-4s <- %-18s \"%s\"\n",
                  format_time(bed.sim().now()).c_str(), who,
                  from.aor().c_str(), text.c_str());
    };
    return ev;
  };
  ana.set_events(receiver("ana"));
  ben.set_events(receiver("ben"));
  cho.set_events(receiver("cho"));

  int failures = 0;
  const auto track = [&failures](bool ok, int status) {
    if (!ok) {
      std::printf("  !! delivery failed (%d)\n", status);
      ++failures;
    }
  };

  std::printf("conversation (ana at hop 0, ben at hop 3, cho at hop 5):\n");
  ana.send_text("ben@voicehoc.ch", "ben, status report?", track);
  bed.run_for(seconds(2));
  ben.send_text("ana@voicehoc.ch", "east sector clear", track);
  bed.run_for(seconds(2));
  ana.send_text("cho@voicehoc.ch", "cho, meet ben at the bridge", track);
  bed.run_for(seconds(2));
  cho.send_text("ana@voicehoc.ch", "on my way (5 hops away!)", track);
  cho.send_text("ben@voicehoc.ch", "eta 10 min", track);
  bed.run_for(seconds(3));

  std::printf("\n%s\n", failures == 0 ? "all texts delivered."
                                      : "some deliveries FAILED.");
  return failures == 0 ? 0 : 1;
}
