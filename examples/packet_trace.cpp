// packet_trace: reproduces the paper's Figures 4 and 5.
//
// Figure 4 -- the MANET SLP process state after the proxy advertised the
//             user's contact address.
// Figure 5 -- "Snapshot of a packet analyzer showing an AODV route reply
//             with encapsulated SIP contact information."
//
// A medium tap plays the role of Wireshark: it decodes every AODV control
// packet on the air and, when one carries a MANET SLP extension block,
// prints the decoded service records and a hex dump of the frame payload.
#include <cstdio>

#include "common/metrics.hpp"
#include "routing/aodv_codec.hpp"
#include "scenario/scenario.hpp"
#include "slp/service.hpp"

using namespace siphoc;

int main() {
  scenario::Options options;
  options.nodes = 4;
  options.topology = scenario::Topology::kChain;
  options.spacing = 100;
  options.routing = RoutingKind::kAodv;

  scenario::Testbed bed(options);

  int shown = 0;
  bed.medium().set_tap([&](const net::Frame& frame, TimePoint t) {
    if (frame.datagram.dst_port != net::kAodvPort) return;
    auto decoded = routing::aodv::decode(frame.datagram.payload);
    if (!decoded || decoded->extension.empty() || shown >= 6) return;
    auto block = slp::decode_extension(decoded->extension, t);
    if (!block || block->empty()) return;
    // Figure 5 is about SIP contact information; skip the gateway-discovery
    // floods the Connection Providers emit at boot.
    const auto mentions_sip = [&] {
      for (const auto& q : block->queries)
        if (q.type == slp::kSipContactService) return true;
      for (const auto& rep : block->replies)
        for (const auto& e : rep.entries)
          if (e.type == slp::kSipContactService) return true;
      for (const auto& a : block->advertisements)
        if (a.type == slp::kSipContactService) return true;
      return false;
    };
    if (!mentions_sip()) return;
    ++shown;

    std::printf("----- packet %d, t=%s -----------------------------------\n",
                shown, format_time(t).c_str());
    std::printf("%s  (from node %u)\n",
                routing::aodv::describe(decoded->message).c_str(),
                frame.src_mac);
    for (const auto& q : block->queries) {
      std::printf("  piggybacked SrvRqst: service:%s:%s (query id %u)\n",
                  q.type.c_str(), q.key.c_str(), q.id);
    }
    for (const auto& rep : block->replies) {
      for (const auto& e : rep.entries) {
        std::printf("  piggybacked SrvRply: %s\n", e.to_string().c_str());
      }
    }
    for (const auto& a : block->advertisements) {
      std::printf("  piggybacked advert : %s\n", a.to_string().c_str());
    }
    std::printf("  raw AODV payload (%zu bytes):\n%s\n",
                frame.datagram.payload.size(),
                hex_dump(frame.datagram.payload).c_str());
  });

  bed.start();
  auto& alice = bed.add_phone(0, "alice");
  auto& bob = bed.add_phone(3, "bob");
  bed.settle(seconds(2));

  bed.register_and_wait(alice);
  bed.register_and_wait(bob);

  std::printf("=== Figure 4: MANET SLP state on node 0 after REGISTER ===\n");
  std::printf("plugin: aodv (reactive piggyback: queries on RREQ, replies "
              "on RREP)\n");
  for (const auto& entry : bed.stack(0).slp().snapshot()) {
    std::printf("  %s\n", entry.to_string().c_str());
  }
  std::printf("\n=== Figure 5: routing packets with SLP payload during call "
              "setup ===\n\n");

  const auto result = bed.call_and_wait(alice, "bob@voicehoc.ch");
  std::printf("call %s in %.1f ms; %d piggybacked routing packets captured\n",
              result.established ? "established" : "failed",
              to_millis(result.setup_time), shown);

  std::printf("\n=== Figure 4 (after call): node 0 learned Bob's contact ===\n");
  for (const auto& entry : bed.stack(0).slp().snapshot()) {
    std::printf("  %s\n", entry.to_string().c_str());
  }
  auto& registry = MetricsRegistry::instance();
  if (MetricsRegistry::write_file("packet_trace.metrics.json",
                                  registry.to_json())) {
    std::printf("\nmetrics sidecar: packet_trace.metrics.json\n");
  }
  return result.established ? 0 : 1;
}
