// Property / fuzz tests: every parser in the system must reject or
// tolerate arbitrary and mutated input without crashing, and round-trip
// identity must hold for arbitrary valid values. Network input is hostile
// input: a MANET accepts packets from anyone in radio range.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/metrics.hpp"
#include "common/random.hpp"
#include "net/host.hpp"
#include "net/internet.hpp"
#include "net/packet.hpp"
#include "rtp/rtp.hpp"
#include "sip/message.hpp"
#include "sip/p2p_resolver.hpp"
#include "sip/sdp.hpp"
#include "siphoc/tunnel.hpp"
#include "slp/service.hpp"

namespace siphoc {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.uniform_int(0, static_cast<std::uint32_t>(max_len)));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

std::string mutate(std::string text, Rng& rng) {
  if (text.empty()) return text;
  const int edits = static_cast<int>(rng.uniform_int(1, 8));
  for (int i = 0; i < edits; ++i) {
    const auto pos = rng.uniform_int(0, static_cast<std::uint32_t>(
                                            text.size() - 1));
    switch (rng.uniform_int(0, 2)) {
      case 0:  // flip a byte
        text[pos] = static_cast<char>(rng.uniform_int(1, 255));
        break;
      case 1:  // delete a span
        text.erase(pos, rng.uniform_int(1, 16));
        break;
      default:  // duplicate a span
        text.insert(pos, text.substr(pos, rng.uniform_int(1, 16)));
        break;
    }
    if (text.empty()) break;
  }
  return text;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, SipParserSurvivesRandomText) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const Bytes junk = random_bytes(rng, 512);
    (void)sip::Message::parse(to_string(junk));
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, SipParserSurvivesMutatedMessages) {
  Rng rng(GetParam() ^ 0xabcd);
  const std::string valid =
      "INVITE sip:bob@voicehoc.ch SIP/2.0\r\n"
      "Via: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK1\r\n"
      "From: <sip:alice@voicehoc.ch>;tag=1\r\n"
      "To: <sip:bob@voicehoc.ch>\r\n"
      "Call-ID: x@y\r\n"
      "CSeq: 1 INVITE\r\n"
      "Contact: <sip:alice@10.0.0.1:5070>\r\n"
      "Content-Length: 3\r\n"
      "\r\n"
      "sdp";
  for (int i = 0; i < 500; ++i) {
    auto m = sip::Message::parse(mutate(valid, rng));
    if (m) {
      // Whatever parsed must serialize and re-parse without crashing.
      (void)sip::Message::parse(m->serialize());
    }
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, SipRoundTripIsStable) {
  // serialize(parse(x)) must be a fixed point: parse it again and the
  // serialized form must not change (idempotent canonicalization).
  Rng rng(GetParam() ^ 0x1234);
  const std::string valid =
      "SIP/2.0 180 Ringing\r\n"
      "Via: SIP/2.0/UDP 10.0.0.2:5060;branch=z9hG4bK2\r\n"
      "Via: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK1;received=10.0.0.9\r\n"
      "From: \"A\" <sip:a@x>;tag=11\r\n"
      "To: <sip:b@x>;tag=22\r\n"
      "Call-ID: z@x\r\n"
      "CSeq: 7 INVITE\r\n"
      "\r\n";
  auto m1 = sip::Message::parse(valid);
  ASSERT_TRUE(m1);
  const std::string s1 = m1->serialize();
  auto m2 = sip::Message::parse(s1);
  ASSERT_TRUE(m2);
  EXPECT_EQ(m2->serialize(), s1);
}

TEST_P(FuzzSeeds, SdpParserSurvives) {
  Rng rng(GetParam() ^ 0x5678);
  const std::string valid =
      sip::Sdp::audio(net::Address(10, 0, 0, 1), 8000, 1).serialize();
  for (int i = 0; i < 500; ++i) {
    (void)sip::Sdp::parse(mutate(valid, rng));
    (void)sip::Sdp::parse(to_string(random_bytes(rng, 256)));
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, SlpExtensionDecoderSurvives) {
  Rng rng(GetParam() ^ 0x9abc);
  // Mutated valid blocks.
  slp::ExtensionBlock block;
  slp::ServiceEntry e;
  e.type = "sip-contact";
  e.key = "alice@voicehoc.ch";
  e.value = "10.0.0.1:5060";
  e.origin = net::Address(10, 0, 0, 1);
  e.expires = TimePoint{} + seconds(60);
  block.advertisements.push_back(e);
  block.queries.push_back({1, net::Address(10, 0, 0, 2), "gateway", ""});
  const Bytes valid = slp::encode_extension(block, TimePoint{});
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = valid;
    const auto pos =
        rng.uniform_int(0, static_cast<std::uint32_t>(mutated.size() - 1));
    mutated[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    (void)slp::decode_extension(mutated, TimePoint{});
    (void)slp::decode_extension(random_bytes(rng, 128), TimePoint{});
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, SlpExtensionDecoderRejectsTruncation) {
  // Every strict prefix of a valid extension block is hostile input: length
  // fields inside must never read past the buffer or decode into entries.
  Rng rng(GetParam() ^ 0x9abd);
  slp::ExtensionBlock block;
  slp::ServiceEntry e;
  e.type = "sip-contact";
  e.key = "bob@voicehoc.ch";
  e.value = "10.0.0.2:5060";
  e.origin = net::Address(10, 0, 0, 2);
  e.expires = TimePoint{} + seconds(120);
  block.advertisements.push_back(e);
  block.advertisements.push_back(e);
  block.queries.push_back({7, net::Address(10, 0, 0, 3), "gateway", ""});
  const Bytes valid = slp::encode_extension(block, TimePoint{});
  ASSERT_TRUE(slp::decode_extension(valid, TimePoint{}));
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const Bytes cut(valid.begin(), valid.begin() + len);
    (void)slp::decode_extension(cut, TimePoint{});
    // Truncation plus a bit flip in what remains.
    if (len > 0) {
      Bytes mangled = cut;
      const auto pos =
          rng.uniform_int(0, static_cast<std::uint32_t>(mangled.size() - 1));
      mangled[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      (void)slp::decode_extension(mangled, TimePoint{});
    }
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, TunnelFrameDecoderSurvives) {
  Rng rng(GetParam() ^ 0x70b1);
  // Pure noise never decodes into a believable frame by luck alone --
  // with a CRC32 trailer the expected false-accept rate over 2000 random
  // buffers is ~2000/2^32.
  for (int i = 0; i < 2000; ++i) {
    const auto decoded = tunnel::decode_frame(random_bytes(rng, 160));
    if (decoded) {
      // If one ever slips through the CRC, it must at least carry a known
      // MsgType (decode_frame's contract).
      EXPECT_GE(static_cast<int>(decoded->type),
                static_cast<int>(tunnel::MsgType::kConnect));
      EXPECT_LE(static_cast<int>(decoded->type),
                static_cast<int>(tunnel::MsgType::kDisconnect));
    }
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, TunnelFrameRejectsBitFlipsAndTruncation) {
  Rng rng(GetParam() ^ 0x70b2);
  Bytes payload(32);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const Bytes valid = tunnel::encode_frame(tunnel::MsgType::kData, payload);
  ASSERT_TRUE(tunnel::decode_frame(valid));
  // Any single bit flip breaks the CRC -- including flips of the type
  // byte, so corruption can never turn a kData into a kDisconnect.
  for (std::size_t pos = 0; pos < valid.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mangled = valid;
      mangled[pos] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(tunnel::decode_frame(mangled))
          << "bit " << bit << " of byte " << pos << " accepted";
    }
  }
  // Every truncation is rejected too (the trailer no longer lines up).
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const Bytes cut(valid.begin(), valid.begin() + len);
    EXPECT_FALSE(tunnel::decode_frame(cut)) << "length " << len << " accepted";
  }
}

TEST(TunnelFrameTest, MsgTypeAbuseIsRejected) {
  // A frame whose CRC is valid but whose type byte is outside the MsgType
  // range must not decode: re-sign a forged type with a correct checksum
  // by building it the same way encode_frame does.
  for (int forged : {0, 7, 64, 255}) {
    Bytes frame = tunnel::encode_frame(tunnel::MsgType::kKeepalive);
    // Rewrite the type byte, then fix up the CRC trailer over the prefix so
    // only the *type check* can reject it.
    frame[0] = static_cast<std::uint8_t>(forged);
    const std::uint32_t crc =
        crc32(std::span(frame.data(), frame.size() - 4));
    frame[frame.size() - 4] = static_cast<std::uint8_t>(crc >> 24);
    frame[frame.size() - 3] = static_cast<std::uint8_t>(crc >> 16);
    frame[frame.size() - 2] = static_cast<std::uint8_t>(crc >> 8);
    frame[frame.size() - 1] = static_cast<std::uint8_t>(crc);
    EXPECT_FALSE(tunnel::decode_frame(frame)) << "type " << forged;
  }
}

TEST(TunnelFrameTest, ShortKeepaliveAcksAreHandled) {
  // Keepalive acks are the smallest frames on the wire; the decoder must
  // accept the canonical empty-payload form and reject every shorter blob.
  const Bytes ack = tunnel::encode_frame(tunnel::MsgType::kKeepaliveAck);
  const auto decoded = tunnel::decode_frame(ack);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->type, tunnel::MsgType::kKeepaliveAck);
  EXPECT_TRUE(decoded->payload.empty());
  for (std::size_t len = 0; len < ack.size(); ++len) {
    EXPECT_FALSE(
        tunnel::decode_frame(Bytes(ack.begin(), ack.begin() + len)));
  }
}

TEST_P(FuzzSeeds, DatagramDecoderSurvives) {
  Rng rng(GetParam() ^ 0xdef0);
  for (int i = 0; i < 1000; ++i) {
    (void)net::Datagram::decode(random_bytes(rng, 96));
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, RtpDecoderSurvives) {
  Rng rng(GetParam() ^ 0x4242);
  for (int i = 0; i < 1000; ++i) {
    (void)rtp::RtpPacket::decode(random_bytes(rng, 200));
  }
  SUCCEED();
}

TEST_P(FuzzSeeds, UriRoundTripProperty) {
  Rng rng(GetParam() ^ 0x7777);
  const char* users[] = {"alice", "b0b", "x.y_z", ""};
  const char* hosts[] = {"voicehoc.ch", "10.0.0.1", "a-b.example.org"};
  for (int i = 0; i < 200; ++i) {
    sip::Uri uri;
    uri.user = users[rng.uniform_int(0, 3)];
    uri.host = hosts[rng.uniform_int(0, 2)];
    if (rng.chance(0.5)) {
      uri.port = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    }
    if (rng.chance(0.5)) uri.params["transport"] = "udp";
    if (rng.chance(0.3)) uri.params["lr"] = "";
    auto parsed = sip::Uri::parse(uri.to_string());
    ASSERT_TRUE(parsed) << uri.to_string();
    EXPECT_EQ(*parsed, uri);
  }
}

// ---------------------------------------------------------------------------
// P2P ring line protocol (sip/p2p_resolver.cpp): a ring node's UDP port is
// open to anyone on the Internet side, so every PUT/GET/RES/DEL and
// control line is hostile input. Malformed lines must be *counted*
// (p2p.decode_errors_total) and never crash or wedge the ring.
// ---------------------------------------------------------------------------

/// Three live ring nodes plus an attacker host that injects raw datagrams
/// into node 0's resolver port.
class P2pFuzzRig {
 public:
  explicit P2pFuzzRig(std::uint64_t seed)
      : sim_(seed), internet_(sim_, milliseconds(5)) {
    std::vector<net::Endpoint> members;
    for (int i = 0; i < 3; ++i) {
      auto host = std::make_unique<net::Host>(
          sim_, static_cast<net::NodeId>(150 + i),
          "ring-f" + std::to_string(i));
      host->attach_wired(internet_, net::Address(192, 0, 2, 60 + i));
      auto resolver = std::make_unique<sip::P2pResolver>(*host);
      members.push_back(resolver->endpoint());
      hosts_.push_back(std::move(host));
      resolvers_.push_back(std::move(resolver));
    }
    members_ = members;
    for (auto& r : resolvers_) r->join(members);
    attacker_ = std::make_unique<net::Host>(
        sim_, static_cast<net::NodeId>(199), "attacker");
    attacker_->attach_wired(internet_, net::Address(192, 0, 2, 99));
  }

  void inject(const std::string& line) {
    attacker_->send_udp(5070, resolvers_[0]->endpoint(), to_bytes(line));
  }

  double decode_errors() {
    double total = 0;
    for (int i = 0; i < 3; ++i) {
      const auto* c = sim_.ctx().metrics().find_counter(
          "p2p.decode_errors_total", "ring-f" + std::to_string(i), "p2p");
      if (c != nullptr) total += c->value();
    }
    return total;
  }

  /// The ring must still work after a storm: reinstall the true
  /// membership (fuzzed JOIN/DEAD lines may have perturbed views), then
  /// publish and resolve a binding end to end.
  void expect_still_functional() {
    for (auto& r : resolvers_) r->join(members_);
    const std::string aor = "survivor@voicehoc.ch";
    resolvers_[0]->publish(
        aor, sip::Uri::from_endpoint({net::Address(192, 0, 2, 77), 5060}, "u"),
        sim_.now() + seconds(600));
    sim_.run_for(seconds(1));
    bool done = false, hit = false;
    resolvers_[1]->resolve(aor,
                           [&](std::optional<sip::ContactBinding> b, int) {
                             done = true;
                             hit = b.has_value();
                           });
    const TimePoint deadline = sim_.now() + seconds(5);
    while (!done && sim_.now() < deadline) sim_.run_for(milliseconds(5));
    EXPECT_TRUE(done);
    EXPECT_TRUE(hit) << "ring wedged by hostile input";
  }

  sim::Simulator sim_;
  net::Internet internet_;
  std::vector<net::Endpoint> members_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<sip::P2pResolver>> resolvers_;
  std::unique_ptr<net::Host> attacker_;
};

/// One valid exemplar of every protocol line the ring parses.
const std::vector<std::string>& p2p_exemplar_lines() {
  static const std::vector<std::string> lines = {
      "PUT alice@voicehoc.ch 123456789 sip:u@192.0.2.77:5060",
      "REP alice@voicehoc.ch 123456789 sip:u@192.0.2.77:5060",
      "GET 42 192.0.2.99:5070 1 alice@voicehoc.ch",
      "RES 42 3 found 123456789 sip:u@192.0.2.77:5060",
      "RES 42 3 miss",
      "DEL alice@voicehoc.ch",
      "RDEL alice@voicehoc.ch",
      "JOIN 192.0.2.99:5070",
      "JOINED 192.0.2.99:5070",
      "LEAVE 192.0.2.61:5070",
      "DEAD 192.0.2.62:5070",
      "MEMB 192.0.2.60:5070 192.0.2.61:5070 192.0.2.62:5070",
      "PING 7 192.0.2.61:5070",
      "PONG 7 192.0.2.61:5070",
  };
  return lines;
}

TEST_P(FuzzSeeds, P2pRingSurvivesRandomDatagrams) {
  P2pFuzzRig rig(GetParam() ^ 0x2b20);
  Rng rng(GetParam() ^ 0x2b2b);
  for (int i = 0; i < 400; ++i) {
    rig.inject(to_string(random_bytes(rng, 200)));
    if (i % 50 == 0) rig.sim_.run_for(milliseconds(20));
  }
  rig.sim_.run_for(seconds(1));
  EXPECT_GT(rig.decode_errors(), 0.0);
  rig.expect_still_functional();
}

TEST_P(FuzzSeeds, P2pRingSurvivesMutatedProtocolLines) {
  P2pFuzzRig rig(GetParam());
  Rng rng(GetParam() ^ 0x3c3c);
  for (int round = 0; round < 40; ++round) {
    for (const auto& line : p2p_exemplar_lines()) {
      rig.inject(mutate(line, rng));
    }
    rig.sim_.run_for(milliseconds(20));
  }
  rig.sim_.run_for(seconds(1));
  rig.expect_still_functional();
}

TEST_P(FuzzSeeds, P2pRingSurvivesTruncationAndBitFlips) {
  P2pFuzzRig rig(GetParam() ^ 0x4d40);
  Rng rng(GetParam() ^ 0x4d4d);
  for (const auto& line : p2p_exemplar_lines()) {
    // Every strict prefix, plus the same prefix with one bit flipped.
    for (std::size_t len = 0; len < line.size(); ++len) {
      rig.inject(line.substr(0, len));
      if (len > 0) {
        std::string flipped = line.substr(0, len);
        const auto pos = rng.uniform_int(
            0, static_cast<std::uint32_t>(flipped.size() - 1));
        flipped[pos] = static_cast<char>(
            static_cast<std::uint8_t>(flipped[pos]) ^
            (1u << rng.uniform_int(0, 7)));
        rig.inject(flipped);
      }
    }
    rig.sim_.run_for(milliseconds(50));
  }
  rig.sim_.run_for(seconds(1));
  EXPECT_GT(rig.decode_errors(), 0.0);
  rig.expect_still_functional();
}

TEST(P2pProtocolAbuseTest, UnknownVerbsAndFieldAbuseAreCountedNotFatal) {
  P2pFuzzRig rig(4242);
  const std::vector<std::string> abuse = {
      "NOPE alice@voicehoc.ch",          // unknown verb
      "noverbatall",                     // no space at all
      "PUT",                             // verb only (no rest -> no space)
      "PUT a@x",                         // too few PUT fields
      "PUT a@x notanumber ???",          // unparseable contact URI
      "GET 1 nonsense 1 a@x",            // unparseable origin endpoint
      "GET 1 192.0.2.99:5070 1",         // too few GET fields
      "RES 1 2",                         // too few RES fields
      "RES 1 2 bogus",                   // neither found nor miss (dropped
                                         // as a late duplicate: uncounted)
      "RES 1 2 found 3",                 // found w/o contact (ditto)
      "DEL ",                            // empty aor
      "JOIN ",                           // empty endpoint
      "JOIN not-an-endpoint",            // unparseable endpoint
      "JOIN 1.2.3.4:5 6.7.8.9:10",       // too many endpoints
      "DEAD what.is.this",               // unparseable endpoint
      "PING 7",                          // missing origin
      "PONG 7 gibberish",                // unparseable origin
      "MEMB ???",                        // unparseable member
  };
  const double before = rig.decode_errors();
  for (const auto& line : abuse) rig.inject(line);
  rig.sim_.run_for(seconds(1));
  // The two RES abuses die on the late-duplicate check (request 1 is not
  // pending) before field validation, so they are dropped uncounted.
  EXPECT_GE(rig.decode_errors() - before,
            static_cast<double>(abuse.size() - 2))
      << "every abusive line must count at least one decode error";
  rig.expect_still_functional();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace siphoc
