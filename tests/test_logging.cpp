// Tests: logging plumbing and host stack edge cases not covered elsewhere.
#include <gtest/gtest.h>

#include "net/host.hpp"
#include "sim/simulator.hpp"

namespace siphoc {
namespace {

class LogCapture {
 public:
  LogCapture() {
    Logging::instance().set_sink([this](const LogRecord& rec) {
      records.push_back(rec);
    });
    Logging::instance().set_level(LogLevel::kDebug);
  }
  ~LogCapture() {
    Logging::instance().set_sink(nullptr);
    Logging::instance().set_level(LogLevel::kOff);
  }
  std::vector<LogRecord> records;
};

TEST(LoggingTest, RecordsCarryComponentNodeAndTime) {
  sim::Simulator sim;  // registers the time source
  LogCapture capture;
  Logger log("proxy", "n3");
  sim.run_for(seconds(2));
  log.info("hello ", 42, " world");
  ASSERT_EQ(capture.records.size(), 1u);
  const auto& rec = capture.records.front();
  EXPECT_EQ(rec.component, "proxy");
  EXPECT_EQ(rec.node, "n3");
  EXPECT_EQ(rec.message, "hello 42 world");
  EXPECT_EQ(rec.level, LogLevel::kInfo);
  EXPECT_EQ(rec.time, TimePoint{} + seconds(2));
}

TEST(LoggingTest, LevelFiltering) {
  LogCapture capture;
  Logging::instance().set_level(LogLevel::kWarn);
  Logger log("test");
  log.debug("dropped");
  log.info("dropped");
  log.warn("kept");
  log.error("kept");
  EXPECT_EQ(capture.records.size(), 2u);
}

TEST(LoggingTest, OffLevelMeansNoSinkCalls) {
  LogCapture capture;
  Logging::instance().set_level(LogLevel::kOff);
  Logger log("test");
  log.error("still dropped");
  EXPECT_TRUE(capture.records.empty());
}

TEST(LoggingTest, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kTrace), "trace");
  EXPECT_EQ(to_string(LogLevel::kError), "error");
  EXPECT_EQ(to_string(LogLevel::kOff), "off");
}

TEST(HostEdgeTest, InjectRespectsTtl) {
  sim::Simulator sim;
  net::Host host(sim, 0, "h");
  net::Datagram d;
  d.dst = net::Address(10, 0, 0, 99);  // not ours: would forward
  d.ttl = 1;
  host.inject(d, net::Interface::kTunnel);
  EXPECT_EQ(host.stats().ttl_drops, 1u);
  EXPECT_EQ(host.stats().forwarded, 0u);
}

TEST(HostEdgeTest, NoListenerCountsDrop) {
  sim::Simulator sim;
  net::Host host(sim, 0, "h");
  host.send_udp(1000, {net::kLoopbackAddress, 2000}, to_bytes("x"));
  sim.run_for(milliseconds(1));
  EXPECT_EQ(host.stats().no_listener_drops, 1u);
  EXPECT_EQ(host.stats().udp_delivered, 0u);
}

TEST(HostEdgeTest, UnbindStopsDelivery) {
  sim::Simulator sim;
  net::Host host(sim, 0, "h");
  int got = 0;
  host.bind(1000, [&](const net::Datagram&, const net::RxInfo&) { ++got; });
  host.send_udp(999, {net::kLoopbackAddress, 1000}, to_bytes("a"));
  sim.run_for(milliseconds(1));
  host.unbind(1000);
  host.send_udp(999, {net::kLoopbackAddress, 1000}, to_bytes("b"));
  sim.run_for(milliseconds(1));
  EXPECT_EQ(got, 1);
  EXPECT_TRUE(host.bound(1000) == false);
}

TEST(HostEdgeTest, OwnsAddressAcrossInterfaces) {
  sim::Simulator sim;
  net::Internet internet(sim);
  net::RadioMedium medium(sim, net::RadioConfig{});
  net::Host host(sim, 0, "h");
  host.attach_radio(medium, net::Address(10, 0, 0, 1),
                    std::make_shared<net::StaticMobility>(net::Position{}));
  host.attach_wired(internet, net::Address(192, 0, 2, 5));
  host.attach_tunnel(net::Address(10, 8, 0, 1), [](net::Datagram) {});
  EXPECT_TRUE(host.owns_address(net::Address(10, 0, 0, 1)));
  EXPECT_TRUE(host.owns_address(net::Address(192, 0, 2, 5)));
  EXPECT_TRUE(host.owns_address(net::Address(10, 8, 0, 1)));
  EXPECT_TRUE(host.owns_address(net::kLoopbackAddress));
  EXPECT_FALSE(host.owns_address(net::Address(10, 0, 0, 2)));
  host.detach_tunnel();
  EXPECT_FALSE(host.owns_address(net::Address(10, 8, 0, 1)));
}

TEST(HostEdgeTest, RouteReplacementNotDuplication) {
  sim::Simulator sim;
  net::Host host(sim, 0, "h");
  const std::size_t before = host.routes().size();
  host.add_route({net::Address(10, 0, 0, 9), 32, net::Address(10, 0, 0, 2),
                  net::Interface::kRadio, 2});
  host.add_route({net::Address(10, 0, 0, 9), 32, net::Address(10, 0, 0, 3),
                  net::Interface::kRadio, 1});
  EXPECT_EQ(host.routes().size(), before + 1);
  const auto r = host.lookup_route(net::Address(10, 0, 0, 9));
  ASSERT_TRUE(r);
  EXPECT_EQ(r->next_hop, net::Address(10, 0, 0, 3));
}

}  // namespace
}  // namespace siphoc
