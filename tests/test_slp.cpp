// Tests: SLP service model, extension codec, MANET SLP over both routing
// plugins (parameterized), multicast SLP baseline, and the piggyback
// ablation.
#include <gtest/gtest.h>

#include "routing/aodv.hpp"
#include "routing/olsr.hpp"
#include "slp/manet_slp.hpp"
#include "slp/multicast_slp.hpp"

namespace siphoc::slp {
namespace {

using net::Address;

TEST(ServiceEntryTest, MatchingRules) {
  ServiceEntry e;
  e.type = "sip-contact";
  e.key = "alice@voicehoc.ch";
  EXPECT_TRUE(e.matches("sip-contact", "alice@voicehoc.ch"));
  EXPECT_TRUE(e.matches("sip-contact", ""));  // wildcard key
  EXPECT_FALSE(e.matches("gateway", ""));
  EXPECT_FALSE(e.matches("sip-contact", "bob@voicehoc.ch"));
}

TEST(ExtensionCodecTest, RoundTripAllRecordTypes) {
  const TimePoint now = TimePoint{} + seconds(100);
  ExtensionBlock block;
  ServiceEntry e;
  e.type = "sip-contact";
  e.key = "alice@voicehoc.ch";
  e.value = "10.0.0.1:5060";
  e.origin = Address(10, 0, 0, 1);
  e.version = 3;
  e.expires = now + seconds(60);
  block.advertisements.push_back(e);
  block.queries.push_back({42, Address(10, 0, 0, 2), "gateway", ""});
  block.replies.push_back({42, {e}});

  const Bytes wire = encode_extension(block, now);
  // Decode at a receiver whose clock reads differently: lifetimes rebase.
  const TimePoint rx_now = TimePoint{} + seconds(500);
  auto decoded = decode_extension(wire, rx_now);
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->advertisements.size(), 1u);
  ASSERT_EQ(decoded->queries.size(), 1u);
  ASSERT_EQ(decoded->replies.size(), 1u);
  const auto& a = decoded->advertisements.front();
  EXPECT_EQ(a.key, "alice@voicehoc.ch");
  EXPECT_EQ(a.value, "10.0.0.1:5060");
  EXPECT_EQ(a.version, 3u);
  EXPECT_EQ(a.expires, rx_now + seconds(60));
  EXPECT_EQ(decoded->queries.front().id, 42u);
  EXPECT_EQ(decoded->queries.front().key, "");
}

TEST(ExtensionCodecTest, EmptyBlockEncodesEmpty) {
  EXPECT_TRUE(encode_extension({}, TimePoint{}).empty());
  auto decoded = decode_extension({}, TimePoint{});
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->empty());
}

TEST(ExtensionCodecTest, ExpiredEntryEncodesZeroLifetime) {
  const TimePoint now = TimePoint{} + seconds(100);
  ExtensionBlock block;
  ServiceEntry e;
  e.type = "t";
  e.expires = now - seconds(1);  // already expired
  block.advertisements.push_back(e);
  auto decoded = decode_extension(encode_extension(block, now), now);
  ASSERT_TRUE(decoded);
  EXPECT_LE(decoded->advertisements.front().expires, now);
}

TEST(ExtensionCodecTest, GarbageRejected) {
  Bytes junk = {0x05, 0xff, 0xff};
  EXPECT_FALSE(decode_extension(junk, TimePoint{}));
}

// ---------------------------------------------------------------------------
// MANET SLP over real routing daemons, parameterized on the plugin.
// ---------------------------------------------------------------------------

enum class Plugin { kAodv, kOlsr };

class ManetSlpTest : public ::testing::TestWithParam<Plugin> {
 protected:
  void build(std::size_t n) {
    sim_ = std::make_unique<sim::Simulator>(21);
    medium_ = std::make_unique<net::RadioMedium>(*sim_, net::RadioConfig{});
    for (std::size_t i = 0; i < n; ++i) {
      auto host = std::make_unique<net::Host>(
          *sim_, static_cast<net::NodeId>(i), "n" + std::to_string(i));
      host->attach_radio(
          *medium_, Address{net::kManetPrefix.value() +
                            static_cast<std::uint32_t>(i) + 1},
          std::make_shared<net::StaticMobility>(
              net::Position{100.0 * static_cast<double>(i), 0}));
      hosts_.push_back(std::move(host));
      if (GetParam() == Plugin::kAodv) {
        daemons_.push_back(std::make_unique<routing::Aodv>(*hosts_.back()));
      } else {
        daemons_.push_back(std::make_unique<routing::Olsr>(*hosts_.back()));
      }
      dirs_.push_back(std::make_unique<ManetSlp>(
          *hosts_.back(), *daemons_.back(),
          GetParam() == Plugin::kAodv ? ManetSlpConfig::for_aodv()
                                      : ManetSlpConfig::for_olsr()));
      daemons_.back()->start();
    }
    // Proactive plugins need convergence time.
    sim_->run_for(GetParam() == Plugin::kOlsr ? seconds(12) : seconds(2));
  }

  std::optional<ServiceEntry> lookup_blocking(std::size_t node,
                                              const std::string& type,
                                              const std::string& key,
                                              Duration timeout = seconds(8)) {
    std::optional<ServiceEntry> result;
    bool done = false;
    dirs_[node]->lookup(type, key, timeout,
                        [&](std::optional<ServiceEntry> entry) {
                          result = std::move(entry);
                          done = true;
                        });
    const TimePoint deadline = sim_->now() + timeout + seconds(1);
    while (!done && sim_->now() < deadline) sim_->run_for(milliseconds(10));
    return result;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::RadioMedium> medium_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<routing::Protocol>> daemons_;
  std::vector<std::unique_ptr<ManetSlp>> dirs_;
};

TEST_P(ManetSlpTest, LocalRegistrationAnswersImmediately) {
  build(2);
  dirs_[0]->register_service("sip-contact", "alice@x", "10.0.0.1:5060",
                             minutes(1));
  const auto hit = lookup_blocking(0, "sip-contact", "alice@x");
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->value, "10.0.0.1:5060");
  EXPECT_EQ(dirs_[0]->stats().hits_local, 1u);
}

TEST_P(ManetSlpTest, RemoteLookupAcrossMultipleHops) {
  build(4);
  dirs_[3]->register_service("sip-contact", "bob@x", "10.0.0.4:5060",
                             minutes(1));
  if (GetParam() == Plugin::kOlsr) sim_->run_for(seconds(10));
  const auto hit = lookup_blocking(0, "sip-contact", "bob@x");
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->value, "10.0.0.4:5060");
  EXPECT_EQ(hit->origin, Address(10, 0, 0, 4));
}

TEST_P(ManetSlpTest, WildcardKeyFindsAnyOfType) {
  build(3);
  dirs_[2]->register_service("gateway", "default", "10.0.0.3:5100",
                             minutes(1));
  if (GetParam() == Plugin::kOlsr) sim_->run_for(seconds(10));
  const auto hit = lookup_blocking(0, "gateway", "");
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->value, "10.0.0.3:5100");
}

TEST_P(ManetSlpTest, MissTimesOut) {
  build(2);
  const auto miss = lookup_blocking(0, "sip-contact", "nobody@x", seconds(3));
  EXPECT_FALSE(miss);
  EXPECT_EQ(dirs_[0]->stats().misses, 1u);
}

TEST_P(ManetSlpTest, ReRegistrationSupersedes) {
  build(3);
  dirs_[2]->register_service("sip-contact", "carol@x", "10.0.0.3:5060",
                             minutes(1));
  if (GetParam() == Plugin::kOlsr) sim_->run_for(seconds(10));
  ASSERT_TRUE(lookup_blocking(0, "sip-contact", "carol@x"));
  // Carol moves: now registered on node 1 with a newer... the same user on
  // a different node. Version counters are per-node, so emulate the move
  // by a fresh registration on node 1 and a deregistration on node 2.
  dirs_[2]->deregister_service("sip-contact", "carol@x");
  dirs_[1]->register_service("sip-contact", "carol@x", "10.0.0.2:5060",
                             minutes(1));
  if (GetParam() == Plugin::kOlsr) sim_->run_for(seconds(10));
  const auto hit = lookup_blocking(1, "sip-contact", "carol@x");
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->value, "10.0.0.2:5060");
}

TEST_P(ManetSlpTest, PiggybackDisabledAblationNeverResolvesRemote) {
  // Rebuild with the ablation config: piggybacking off.
  sim_ = std::make_unique<sim::Simulator>(5);
  medium_ = std::make_unique<net::RadioMedium>(*sim_, net::RadioConfig{});
  for (std::size_t i = 0; i < 2; ++i) {
    auto host = std::make_unique<net::Host>(
        *sim_, static_cast<net::NodeId>(i), "n" + std::to_string(i));
    host->attach_radio(
        *medium_,
        Address{net::kManetPrefix.value() + static_cast<std::uint32_t>(i) + 1},
        std::make_shared<net::StaticMobility>(
            net::Position{50.0 * static_cast<double>(i), 0}));
    hosts_.push_back(std::move(host));
    if (GetParam() == Plugin::kAodv) {
      daemons_.push_back(std::make_unique<routing::Aodv>(*hosts_.back()));
    } else {
      daemons_.push_back(std::make_unique<routing::Olsr>(*hosts_.back()));
    }
    ManetSlpConfig config = GetParam() == Plugin::kAodv
                                ? ManetSlpConfig::for_aodv()
                                : ManetSlpConfig::for_olsr();
    config.piggyback_enabled = false;
    dirs_.push_back(
        std::make_unique<ManetSlp>(*hosts_.back(), *daemons_.back(), config));
    daemons_.back()->start();
  }
  sim_->run_for(seconds(10));
  dirs_[1]->register_service("sip-contact", "bob@x", "10.0.0.2:5060",
                             minutes(1));
  sim_->run_for(seconds(10));
  EXPECT_FALSE(lookup_blocking(0, "sip-contact", "bob@x", seconds(3)));
}

TEST_P(ManetSlpTest, SnapshotShowsLocalAndLearned) {
  build(2);
  dirs_[0]->register_service("sip-contact", "a@x", "10.0.0.1:5060",
                             minutes(1));
  dirs_[1]->register_service("sip-contact", "b@x", "10.0.0.2:5060",
                             minutes(1));
  if (GetParam() == Plugin::kOlsr) {
    sim_->run_for(seconds(10));
  } else {
    // Reactive: pull b's entry via a lookup.
    ASSERT_TRUE(lookup_blocking(0, "sip-contact", "b@x"));
  }
  const auto snapshot = dirs_[0]->snapshot();
  EXPECT_GE(snapshot.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Plugins, ManetSlpTest,
                         ::testing::Values(Plugin::kAodv, Plugin::kOlsr),
                         [](const auto& info) {
                           return info.param == Plugin::kAodv ? "Aodv"
                                                              : "Olsr";
                         });

// ---------------------------------------------------------------------------
// Multicast SLP baseline
// ---------------------------------------------------------------------------

class MulticastSlpTest : public ::testing::Test {
 protected:
  void build(std::size_t n) {
    sim_ = std::make_unique<sim::Simulator>(31);
    medium_ = std::make_unique<net::RadioMedium>(*sim_, net::RadioConfig{});
    for (std::size_t i = 0; i < n; ++i) {
      auto host = std::make_unique<net::Host>(
          *sim_, static_cast<net::NodeId>(i), "n" + std::to_string(i));
      host->attach_radio(
          *medium_, Address{net::kManetPrefix.value() +
                            static_cast<std::uint32_t>(i) + 1},
          std::make_shared<net::StaticMobility>(
              net::Position{100.0 * static_cast<double>(i), 0}));
      hosts_.push_back(std::move(host));
      daemons_.push_back(std::make_unique<routing::Aodv>(*hosts_.back()));
      daemons_.back()->start();
      dirs_.push_back(std::make_unique<MulticastSlp>(*hosts_.back()));
    }
    sim_->run_for(seconds(2));
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::RadioMedium> medium_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<routing::Aodv>> daemons_;
  std::vector<std::unique_ptr<MulticastSlp>> dirs_;
};

TEST_F(MulticastSlpTest, FloodedLookupResolvesAcrossHops) {
  build(4);
  dirs_[3]->register_service("sip-contact", "bob@x", "10.0.0.4:5060",
                             minutes(1));
  std::optional<ServiceEntry> result;
  bool done = false;
  dirs_[0]->lookup("sip-contact", "bob@x", seconds(8),
                   [&](std::optional<ServiceEntry> e) {
                     result = std::move(e);
                     done = true;
                   });
  const TimePoint deadline = sim_->now() + seconds(9);
  while (!done && sim_->now() < deadline) sim_->run_for(milliseconds(10));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->value, "10.0.0.4:5060");
  // Dedicated SLP packets were spent (the baseline's cost).
  std::uint64_t packets = 0;
  for (const auto& d : dirs_) packets += d->packets_sent();
  EXPECT_GE(packets, 4u);  // query flood through the chain + reply
}

TEST_F(MulticastSlpTest, MissTimesOutWithoutReply) {
  build(3);
  bool done = false;
  std::optional<ServiceEntry> result;
  dirs_[0]->lookup("sip-contact", "ghost@x", seconds(2),
                   [&](std::optional<ServiceEntry> e) {
                     result = std::move(e);
                     done = true;
                   });
  sim_->run_for(seconds(4));
  EXPECT_TRUE(done);
  EXPECT_FALSE(result);
}

TEST_F(MulticastSlpTest, DuplicateFloodsSuppressed) {
  build(3);
  dirs_[2]->register_service("gateway", "default", "10.0.0.3:5100",
                             minutes(1));
  bool done = false;
  dirs_[0]->lookup("gateway", "", seconds(5),
                   [&](std::optional<ServiceEntry>) { done = true; });
  sim_->run_for(seconds(6));
  EXPECT_TRUE(done);
  // Each node relays a given (origin, xid) flood at most once: with 3 nodes
  // the query appears on air at most 3 times.
  std::uint64_t packets = 0;
  for (const auto& d : dirs_) packets += d->packets_sent();
  EXPECT_LE(packets, 4u);
}

}  // namespace
}  // namespace siphoc::slp
