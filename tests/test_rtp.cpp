// Tests: RTP codec, jitter buffer, receiver statistics, E-model scoring,
// talk-spurt source, and a full two-way session over the wired segment.
#include <gtest/gtest.h>

#include "rtp/session.hpp"

namespace siphoc::rtp {
namespace {

TEST(RtpCodecTest, RoundTrip) {
  RtpPacket p;
  p.payload_type = kPayloadPcmu;
  p.marker = true;
  p.sequence = 0xBEEF;
  p.timestamp = 123456;
  p.ssrc = 0xCAFEBABE;
  p.payload = Bytes(160, 0xd5);
  auto decoded = RtpPacket::decode(p.encode());
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->marker);
  EXPECT_EQ(decoded->sequence, 0xBEEF);
  EXPECT_EQ(decoded->timestamp, 123456u);
  EXPECT_EQ(decoded->ssrc, 0xCAFEBABEu);
  EXPECT_EQ(decoded->payload.size(), 160u);
}

TEST(RtpCodecTest, RejectsBadVersionAndTruncation) {
  Bytes bad = {0x00, 0x00, 0x00, 0x00};
  EXPECT_FALSE(RtpPacket::decode(bad));
  Bytes tiny = {0x80};
  EXPECT_FALSE(RtpPacket::decode(tiny));
}

TEST(RtpCodecTest, VoicePacketCarriesSendTime) {
  const TimePoint sent = TimePoint{} + seconds(42) + microseconds(77);
  const RtpPacket p = make_voice_packet(1, 160, 7, false, sent);
  EXPECT_EQ(p.payload.size(), kPcmuFrameBytes);
  const auto recovered = voice_packet_sent_time(p);
  ASSERT_TRUE(recovered);
  EXPECT_EQ(*recovered, sent);
}

TEST(JitterBufferTest, InOrderPlayout) {
  JitterBuffer jb(milliseconds(60));
  const TimePoint t0 = TimePoint{} + seconds(1);
  for (std::uint16_t i = 0; i < 3; ++i) {
    RtpPacket p;
    p.sequence = i;
    EXPECT_TRUE(jb.insert(p, t0 + milliseconds(5), t0));
  }
  EXPECT_EQ(jb.depth(), 3u);
  EXPECT_FALSE(jb.pop_due(t0 + milliseconds(30)));  // not due yet
  int played = 0;
  while (jb.pop_due(t0 + milliseconds(60))) ++played;
  EXPECT_EQ(played, 3);
  EXPECT_EQ(jb.played(), 3u);
}

TEST(JitterBufferTest, LatePacketDropped) {
  JitterBuffer jb(milliseconds(60));
  const TimePoint sent = TimePoint{} + seconds(1);
  RtpPacket p;
  p.sequence = 1;
  EXPECT_FALSE(jb.insert(p, sent + milliseconds(100), sent));
  EXPECT_EQ(jb.late_drops(), 1u);
}

TEST(JitterBufferTest, DuplicateDropped) {
  JitterBuffer jb(milliseconds(60));
  const TimePoint sent = TimePoint{} + seconds(1);
  RtpPacket p;
  p.sequence = 5;
  EXPECT_TRUE(jb.insert(p, sent, sent));
  EXPECT_FALSE(jb.insert(p, sent + milliseconds(1), sent));
  EXPECT_EQ(jb.duplicate_drops(), 1u);
}

TEST(JitterBufferTest, PacketOlderThanPlayedIsLate) {
  JitterBuffer jb(milliseconds(60));
  const TimePoint sent = TimePoint{} + seconds(1);
  RtpPacket newer;
  newer.sequence = 10;
  jb.insert(newer, sent, sent);
  jb.pop_due(sent + milliseconds(60));
  RtpPacket older;
  older.sequence = 9;
  EXPECT_FALSE(jb.insert(older, sent + milliseconds(61), sent));
}

TEST(JitterBufferTest, ReorderWithinDelayIsFine) {
  JitterBuffer jb(milliseconds(60));
  const TimePoint t0 = TimePoint{} + seconds(1);
  RtpPacket p2;
  p2.sequence = 2;
  RtpPacket p1;
  p1.sequence = 1;
  jb.insert(p2, t0 + milliseconds(10), t0 + milliseconds(20));
  jb.insert(p1, t0 + milliseconds(15), t0);
  // Playout order follows sequence numbers, not arrival.
  auto first = jb.pop_due(t0 + milliseconds(100));
  ASSERT_TRUE(first);
  EXPECT_EQ(first->sequence, 1);
}

TEST(ReceiverStatsTest, LossAndExpected) {
  ReceiverStats stats;
  const TimePoint t0 = TimePoint{} + seconds(1);
  for (std::uint16_t seq : {1, 2, 4, 5, 8}) {  // 3, 6, 7 lost
    RtpPacket p;
    p.sequence = seq;
    stats.on_packet(p, t0 + milliseconds(seq * 20 + 5),
                    t0 + milliseconds(seq * 20));
  }
  EXPECT_EQ(stats.received(), 5u);
  EXPECT_EQ(stats.expected(), 8u);
  EXPECT_EQ(stats.lost(), 3u);
  EXPECT_NEAR(stats.loss_fraction(), 3.0 / 8.0, 1e-9);
}

TEST(ReceiverStatsTest, SequenceWraparound) {
  ReceiverStats stats;
  const TimePoint t0 = TimePoint{} + seconds(1);
  std::uint16_t seqs[] = {65534, 65535, 0, 1};
  int i = 0;
  for (const auto seq : seqs) {
    RtpPacket p;
    p.sequence = seq;
    stats.on_packet(p, t0 + milliseconds(20 * i + 2), t0 + milliseconds(20 * i));
    ++i;
  }
  EXPECT_EQ(stats.expected(), 4u);
  EXPECT_EQ(stats.lost(), 0u);
}

TEST(ReceiverStatsTest, ConstantDelayMeansZeroJitter) {
  ReceiverStats stats;
  const TimePoint t0 = TimePoint{} + seconds(1);
  for (std::uint16_t i = 0; i < 50; ++i) {
    RtpPacket p;
    p.sequence = i;
    stats.on_packet(p, t0 + milliseconds(i * 20 + 7),
                    t0 + milliseconds(i * 20));
  }
  EXPECT_DOUBLE_EQ(stats.jitter_ms(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_delay_ms(), 7.0);
}

TEST(ReceiverStatsTest, VariableDelayRaisesJitter) {
  ReceiverStats stats;
  Rng rng(5);
  const TimePoint t0 = TimePoint{} + seconds(1);
  for (std::uint16_t i = 0; i < 200; ++i) {
    RtpPacket p;
    p.sequence = i;
    const auto extra = milliseconds(rng.uniform_int(0, 30));
    stats.on_packet(p, t0 + milliseconds(i * 20) + extra,
                    t0 + milliseconds(i * 20));
  }
  EXPECT_GT(stats.jitter_ms(), 1.0);
}

// E-model properties over a parameter sweep.
class EModelLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(EModelLossSweep, MosDecreasesWithLoss) {
  const double loss = GetParam();
  const auto base = score_call({50.0, loss});
  const auto worse = score_call({50.0, loss + 5.0});
  EXPECT_LE(worse.mos, base.mos);
  EXPECT_GE(base.mos, 1.0);
  EXPECT_LE(base.mos, 4.5);
}

INSTANTIATE_TEST_SUITE_P(LossLevels, EModelLossSweep,
                         ::testing::Values(0.0, 1.0, 2.0, 5.0, 10.0, 20.0,
                                           40.0));

class EModelDelaySweep : public ::testing::TestWithParam<double> {};

TEST_P(EModelDelaySweep, MosDecreasesWithDelay) {
  const double delay = GetParam();
  const auto base = score_call({delay, 0.0});
  const auto worse = score_call({delay + 50.0, 0.0});
  EXPECT_LE(worse.mos, base.mos);
}

INSTANTIATE_TEST_SUITE_P(Delays, EModelDelaySweep,
                         ::testing::Values(10.0, 50.0, 100.0, 150.0, 200.0,
                                           400.0));

TEST(EModelTest, AnchorValues) {
  // Clean narrow-band G.711: toll quality.
  const auto clean = score_call({20.0, 0.0});
  EXPECT_GT(clean.mos, 4.2);
  // 20% loss: unusable.
  const auto bad = score_call({20.0, 20.0});
  EXPECT_LT(bad.mos, 3.0);
}

TEST(VoiceSourceTest, AlwaysOnEmitsEveryTick) {
  TalkSpurtConfig config;
  config.always_on = true;
  VoiceSource source(config, Rng(1));
  int emitted = 0, markers = 0;
  for (int i = 0; i < 100; ++i) {
    const auto tick = source.tick(TimePoint{} + milliseconds(20 * i));
    if (tick.emit) ++emitted;
    if (tick.spurt_start) ++markers;
  }
  EXPECT_EQ(emitted, 100);
  EXPECT_EQ(markers, 1);
}

TEST(VoiceSourceTest, VadDutyCycleNearBradyModel) {
  TalkSpurtConfig config;  // 1.0 s talk / 1.35 s silence -> ~43% duty
  VoiceSource source(config, Rng(7));
  int emitted = 0;
  const int ticks = 50000;  // 1000 s of call
  for (int i = 0; i < ticks; ++i) {
    if (source.tick(TimePoint{} + milliseconds(20 * i)).emit) ++emitted;
  }
  const double duty = static_cast<double>(emitted) / ticks;
  EXPECT_GT(duty, 0.32);
  EXPECT_LT(duty, 0.53);
}

TEST(VoiceSourceTest, MarkerOnEverySpurtStart) {
  TalkSpurtConfig config;
  VoiceSource source(config, Rng(9));
  bool was_talking = false;
  for (int i = 0; i < 20000; ++i) {
    const auto tick = source.tick(TimePoint{} + milliseconds(20 * i));
    if (tick.emit && !was_talking) {
      EXPECT_TRUE(tick.spurt_start);
    }
    was_talking = tick.emit;
  }
}

TEST(SessionTest, TwoWayStreamOverWire) {
  sim::Simulator sim(3);
  net::Internet internet(sim, milliseconds(15));
  net::Host a(sim, 0, "a"), b(sim, 1, "b");
  a.attach_wired(internet, net::Address(192, 0, 2, 1));
  b.attach_wired(internet, net::Address(192, 0, 2, 2));

  SessionConfig ca;
  ca.local_port = 8000;
  ca.remote = {net::Address(192, 0, 2, 2), 8000};
  ca.voice.always_on = true;
  SessionConfig cb;
  cb.local_port = 8000;
  cb.remote = {net::Address(192, 0, 2, 1), 8000};
  cb.voice.always_on = true;

  Session sa(a, ca), sb(b, cb);
  sa.start();
  sb.start();
  sim.run_for(seconds(10));
  sa.stop();
  sb.stop();

  const auto ra = sa.report();
  EXPECT_NEAR(static_cast<double>(ra.packets_sent), 500, 5);
  EXPECT_NEAR(static_cast<double>(ra.packets_received), 500, 5);
  EXPECT_EQ(ra.packets_lost, 0u);
  EXPECT_NEAR(ra.mean_delay_ms, 15.0, 1.0);
  EXPECT_GT(ra.quality.mos, 4.0);
}

TEST(SessionTest, ReportSurvivesStop) {
  sim::Simulator sim(3);
  net::Internet internet(sim, milliseconds(5));
  net::Host a(sim, 0, "a");
  a.attach_wired(internet, net::Address(192, 0, 2, 1));
  SessionConfig c;
  c.local_port = 8000;
  c.remote = {net::Address(192, 0, 2, 9), 8000};  // nobody there
  c.voice.always_on = true;
  Session s(a, c);
  s.start();
  sim.run_for(seconds(2));
  s.stop();
  EXPECT_GT(s.report().packets_sent, 90u);
  EXPECT_EQ(s.report().packets_received, 0u);
}

}  // namespace
}  // namespace siphoc::rtp
