// Tests: the three related-work baselines -- flooding-SIP [12], Pico-SIP
// proactive HELLO [13], fixed-gateway push [8] -- behave as their papers
// describe, including the failure modes the SIPHoc paper calls out.
#include <gtest/gtest.h>

#include "baselines/flooding_sip.hpp"
#include "baselines/pico_sip.hpp"
#include "baselines/push_gateway.hpp"
#include "routing/aodv.hpp"
#include "slp/manet_slp.hpp"

namespace siphoc::baselines {
namespace {

using net::Address;

class BaselineNet : public ::testing::Test {
 protected:
  void build(std::size_t n) {
    sim_ = std::make_unique<sim::Simulator>(41);
    medium_ = std::make_unique<net::RadioMedium>(*sim_, net::RadioConfig{});
    internet_ = std::make_unique<net::Internet>(*sim_, milliseconds(20));
    for (std::size_t i = 0; i < n; ++i) {
      hosts_.push_back(std::make_unique<net::Host>(
          *sim_, static_cast<net::NodeId>(i), "n" + std::to_string(i)));
      hosts_.back()->attach_radio(
          *medium_, Address{net::kManetPrefix.value() +
                            static_cast<std::uint32_t>(i) + 1},
          std::make_shared<net::StaticMobility>(
              net::Position{100.0 * static_cast<double>(i), 0}));
      daemons_.push_back(std::make_unique<routing::Aodv>(*hosts_.back()));
      daemons_.back()->start();
    }
    sim_->run_for(seconds(2));
  }

  template <typename Dir>
  std::optional<slp::ServiceEntry> lookup_blocking(Dir& dir,
                                                   const std::string& type,
                                                   const std::string& key,
                                                   Duration timeout) {
    std::optional<slp::ServiceEntry> result;
    bool done = false;
    dir.lookup(type, key, timeout, [&](std::optional<slp::ServiceEntry> e) {
      result = std::move(e);
      done = true;
    });
    const TimePoint deadline = sim_->now() + timeout + seconds(1);
    while (!done && sim_->now() < deadline) sim_->run_for(milliseconds(10));
    return result;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::RadioMedium> medium_;
  std::unique_ptr<net::Internet> internet_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<routing::Aodv>> daemons_;
};

TEST_F(BaselineNet, FloodingSipRegistrationReachesEveryNode) {
  build(4);
  std::vector<std::unique_ptr<FloodingSipDirectory>> dirs;
  for (auto& h : hosts_) dirs.push_back(std::make_unique<FloodingSipDirectory>(*h));
  dirs[0]->register_service("sip-contact", "alice@x", "10.0.0.1:5060",
                            minutes(1));
  sim_->run_for(seconds(1));
  // Every node's table has the binding after ONE registration flood.
  for (auto& d : dirs) {
    EXPECT_EQ(d->snapshot().size(), 1u);
  }
  // But it cost at least one broadcast per node.
  std::uint64_t packets = 0;
  for (auto& d : dirs) packets += d->packets_sent();
  EXPECT_GE(packets, 4u);
}

TEST_F(BaselineNet, FloodingSipColdLookupViaQueryFlood) {
  build(3);
  std::vector<std::unique_ptr<FloodingSipDirectory>> dirs;
  FloodingSipConfig config;
  config.refresh_interval = Duration::zero();  // isolate the query path
  for (auto& h : hosts_) {
    dirs.push_back(std::make_unique<FloodingSipDirectory>(*h, config));
  }
  // Register AFTER building node 0's view would miss -- simulate a node
  // that joined late: clear by registering only on node 2 and querying
  // before any refresh.
  dirs[2]->register_service("sip-contact", "bob@x", "10.0.0.3:5060",
                            minutes(1));
  sim_->run_for(seconds(1));
  // n0 already has it (the registration flood). Make a genuinely cold
  // query: ask for an entry registered with flooding suppressed by
  // distance... instead verify the miss path times out for absent keys.
  EXPECT_FALSE(
      lookup_blocking(*dirs[0], "sip-contact", "ghost@x", seconds(2)));
  // And warm lookups hit locally.
  const auto hit =
      lookup_blocking(*dirs[0], "sip-contact", "bob@x", seconds(2));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->value, "10.0.0.3:5060");
}

TEST_F(BaselineNet, FloodingSipPeriodicRefreshKeepsCostAccruing) {
  build(3);
  FloodingSipConfig config;
  config.refresh_interval = seconds(5);
  std::vector<std::unique_ptr<FloodingSipDirectory>> dirs;
  for (auto& h : hosts_) {
    dirs.push_back(std::make_unique<FloodingSipDirectory>(*h, config));
  }
  dirs[0]->register_service("sip-contact", "alice@x", "10.0.0.1:5060",
                            minutes(5));
  sim_->run_for(seconds(1));
  std::uint64_t early = 0;
  for (auto& d : dirs) early += d->packets_sent();
  sim_->run_for(seconds(30));
  std::uint64_t late = 0;
  for (auto& d : dirs) late += d->packets_sent();
  // The idle network keeps paying: ~6 refresh floods in 30 s.
  EXPECT_GT(late, early + 10);
}

TEST_F(BaselineNet, PicoSipConvergesProactively) {
  build(4);
  std::vector<std::unique_ptr<PicoSipDirectory>> dirs;
  for (auto& h : hosts_) dirs.push_back(std::make_unique<PicoSipDirectory>(*h));
  dirs[3]->register_service("sip-contact", "bob@x", "10.0.0.4:5060",
                            minutes(5));
  sim_->run_for(seconds(8));  // > one HELLO interval
  const auto hit =
      lookup_blocking(*dirs[0], "sip-contact", "bob@x", seconds(1));
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit->value, "10.0.0.4:5060");
}

TEST_F(BaselineNet, PicoSipFloodsEvenWithNothingToSay) {
  build(3);
  std::vector<std::unique_ptr<PicoSipDirectory>> dirs;
  for (auto& h : hosts_) dirs.push_back(std::make_unique<PicoSipDirectory>(*h));
  // No registrations anywhere -- "inefficient utilization of resources if
  // the mappings remain unused".
  sim_->run_for(seconds(30));
  std::uint64_t packets = 0;
  for (auto& d : dirs) packets += d->packets_sent();
  EXPECT_GT(packets, 15u);  // 3 nodes x ~6 HELLO floods, each relayed
}

TEST_F(BaselineNet, PicoSipEntriesExpireWithoutRefresh) {
  build(2);
  std::vector<std::unique_ptr<PicoSipDirectory>> dirs;
  for (auto& h : hosts_) dirs.push_back(std::make_unique<PicoSipDirectory>(*h));
  dirs[1]->register_service("sip-contact", "bob@x", "10.0.0.2:5060",
                            minutes(5));
  sim_->run_for(seconds(8));
  ASSERT_TRUE(lookup_blocking(*dirs[0], "sip-contact", "bob@x", seconds(1)));
  // The registering node goes dark: entries age out at other nodes.
  medium_->set_enabled(1, false);
  sim_->run_for(seconds(30));
  EXPECT_FALSE(lookup_blocking(*dirs[0], "sip-contact", "bob@x", seconds(1)));
}

TEST_F(BaselineNet, FixedGatewayConnectsToProvisionedEndpoint) {
  build(3);
  hosts_[0]->attach_wired(*internet_, Address(192, 0, 2, 100));
  TunnelServer server(*hosts_[0]);
  server.start();
  FixedGatewayConfig config;
  config.gateway = {Address(10, 0, 0, 1), net::kTunnelPort};
  FixedGatewayClient client(*hosts_[2], config);
  client.start();
  sim_->run_for(seconds(10));
  EXPECT_TRUE(client.internet_available());
}

TEST_F(BaselineNet, FixedGatewayNeverFailsOver) {
  build(3);
  // Gateway at n0 (provisioned); a second uplink exists at n2's neighbor...
  hosts_[0]->attach_wired(*internet_, Address(192, 0, 2, 100));
  TunnelServer server0(*hosts_[0]);
  server0.start();
  FixedGatewayConfig config;
  config.gateway = {Address(10, 0, 0, 1), net::kTunnelPort};
  FixedGatewayClient client(*hosts_[1], config);
  client.start();
  sim_->run_for(seconds(10));
  ASSERT_TRUE(client.internet_available());

  // The provisioned gateway dies; another gateway comes up at n2.
  server0.stop();
  hosts_[0]->detach_wired();
  medium_->set_enabled(0, false);
  hosts_[2]->attach_wired(*internet_, Address(192, 0, 2, 102));
  TunnelServer server2(*hosts_[2]);
  server2.start();
  sim_->run_for(seconds(60));

  // The fixed scheme keeps hammering the dead endpoint and never recovers
  // -- the topology assumption the paper criticizes in [8].
  EXPECT_FALSE(client.internet_available());
  EXPECT_GT(client.connect_attempts(), 3u);
}

}  // namespace
}  // namespace siphoc::baselines
