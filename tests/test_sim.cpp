// Unit tests: discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <random>

#include "sim/simulator.hpp"

namespace siphoc::sim {
namespace {

TEST(SimulatorTest, TimeAdvancesToEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule(milliseconds(5), [&] { order.push_back(2); });
  sim.schedule(milliseconds(20), [&] { order.push_back(3); });
  sim.run_until(TimePoint{} + milliseconds(15));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(sim.now(), TimePoint{} + milliseconds(15));
  sim.run_for(milliseconds(10));
  ASSERT_EQ(order.size(), 3u);
}

TEST(SimulatorTest, SameTimestampFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(milliseconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.schedule(milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run_to_completion();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFireIsSafe) {
  Simulator sim;
  auto handle = sim.schedule(milliseconds(1), [] {});
  sim.run_to_completion();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op, no crash
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(milliseconds(1), recurse);
  };
  sim.schedule(milliseconds(1), recurse);
  sim.run_to_completion();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), TimePoint{} + milliseconds(5));
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(SimulatorTest, RunUntilAdvancesEvenWhenEmpty) {
  Simulator sim;
  sim.run_until(TimePoint{} + seconds(100));
  EXPECT_EQ(sim.now(), TimePoint{} + seconds(100));
}

TEST(SimulatorTest, StaleHandleDoesNotCancelRecycledSlot) {
  Simulator sim;
  bool first = false, second = false;
  auto h1 = sim.schedule(milliseconds(1), [&] { first = true; });
  sim.run_for(milliseconds(2));
  EXPECT_TRUE(first);
  // h1's pool slot is free now and the next schedule may reuse it; the
  // stale handle's generation no longer matches, so cancel is a no-op.
  auto h2 = sim.schedule(milliseconds(1), [&] { second = true; });
  h1.cancel();
  EXPECT_TRUE(h2.pending());
  sim.run_for(milliseconds(2));
  EXPECT_TRUE(second);
}

// Stress: >100k events with many identical timestamps, cancellations both
// before the run and from inside callbacks, plus events scheduling new
// events (recycling pool slots mid-run). Execution must follow strict
// (when, schedule-order) lexicographic order and cancelled events must
// never fire.
TEST(SimulatorTest, StressStrictOrderWithInterleavedCancellations) {
  Simulator sim;
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> dt_us(0, 20000);

  struct Rec {
    TimePoint when{};
    bool cancelled = false;
    bool fired = false;
  };
  constexpr std::size_t kInitial = 120000;
  constexpr std::size_t kCapacity = 140000;
  // recs index == schedule-call order == the simulator's FIFO tie-break
  // sequence. Reserved up front so callbacks may push while iterating.
  std::vector<Rec> recs;
  std::vector<EventHandle> handles;
  recs.reserve(kCapacity);
  handles.reserve(kCapacity);

  TimePoint last_when = TimePoint::min();
  std::size_t last_idx = 0;
  std::size_t fired_count = 0;
  std::size_t order_violations = 0;
  std::size_t cancelled_fired = 0;
  std::size_t wrong_now = 0;

  std::function<void(std::size_t)> on_fire = [&](std::size_t idx) {
    Rec& rec = recs[idx];
    if (rec.cancelled || rec.fired) ++cancelled_fired;
    rec.fired = true;
    if (sim.now() != rec.when) ++wrong_now;
    const bool in_order =
        fired_count == 0 || rec.when > last_when ||
        (rec.when == last_when && idx > last_idx);
    if (!in_order) ++order_violations;
    last_when = rec.when;
    last_idx = idx;
    ++fired_count;

    // Interleave: occasionally cancel a random still-pending event...
    if (idx % 7 == 0) {
      std::uniform_int_distribution<std::size_t> pick(0, recs.size() - 1);
      const std::size_t j = pick(rng);
      if (j != idx && !recs[j].fired && !recs[j].cancelled) {
        handles[j].cancel();
        recs[j].cancelled = true;
      }
    }
    // ...and occasionally schedule a fresh event into a recycled slot.
    if (idx % 16 == 0 && recs.size() < kCapacity) {
      const TimePoint when = sim.now() + microseconds(dt_us(rng) / 4);
      const std::size_t j = recs.size();
      recs.push_back({when});
      handles.push_back(sim.schedule_at(when, [&on_fire, j] { on_fire(j); }));
    }
  };

  for (std::size_t i = 0; i < kInitial; ++i) {
    const TimePoint when = TimePoint{} + microseconds(dt_us(rng));
    recs.push_back({when});
    handles.push_back(sim.schedule_at(when, [&on_fire, i] { on_fire(i); }));
  }
  // Cancel a slice up front, before anything has run.
  std::uniform_int_distribution<std::size_t> pick(0, kInitial - 1);
  for (int i = 0; i < 15000; ++i) {
    const std::size_t j = pick(rng);
    if (!recs[j].cancelled) {
      handles[j].cancel();
      recs[j].cancelled = true;
      EXPECT_FALSE(handles[j].pending());
    }
  }

  sim.run_to_completion();

  std::size_t cancelled = 0;
  std::size_t missing = 0;
  for (const Rec& r : recs) {
    if (r.cancelled) {
      ++cancelled;
      if (r.fired) ++cancelled_fired;
    } else if (!r.fired) {
      ++missing;
    }
  }
  EXPECT_EQ(order_violations, 0u);
  EXPECT_EQ(cancelled_fired, 0u);
  EXPECT_EQ(wrong_now, 0u);
  EXPECT_EQ(missing, 0u);
  EXPECT_EQ(fired_count, recs.size() - cancelled);
  EXPECT_GE(fired_count, 100000u);
  EXPECT_EQ(sim.events_executed(), fired_count);
}

TEST(PeriodicTimerTest, FiresRepeatedlyUntilStopped) {
  Simulator sim;
  PeriodicTimer timer;
  int count = 0;
  timer.start(sim, milliseconds(100), [&] { ++count; });
  sim.run_for(milliseconds(550));
  EXPECT_EQ(count, 5);
  timer.stop();
  sim.run_for(seconds(1));
  EXPECT_EQ(count, 5);
}

TEST(PeriodicTimerTest, StopFromWithinCallback) {
  Simulator sim;
  PeriodicTimer timer;
  int count = 0;
  timer.start(sim, milliseconds(10), [&] {
    if (++count == 3) timer.stop();
  });
  sim.run_for(seconds(1));
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTimerTest, JitterStaysNearPeriod) {
  Simulator sim(123);
  PeriodicTimer timer;
  std::vector<TimePoint> fires;
  timer.start(sim, milliseconds(100), [&] { fires.push_back(sim.now()); },
              milliseconds(20));
  sim.run_for(seconds(2));
  timer.stop();
  ASSERT_GE(fires.size(), 10u);
  for (std::size_t i = 1; i < fires.size(); ++i) {
    const auto gap = fires[i] - fires[i - 1];
    EXPECT_GE(gap, milliseconds(60));
    EXPECT_LE(gap, milliseconds(140));
  }
}

TEST(PeriodicTimerTest, RestartReplacesSchedule) {
  Simulator sim;
  PeriodicTimer timer;
  int a = 0, b = 0;
  timer.start(sim, milliseconds(10), [&] { ++a; });
  sim.run_for(milliseconds(25));
  timer.start(sim, milliseconds(10), [&] { ++b; });
  sim.run_for(milliseconds(25));
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 2);
}

}  // namespace
}  // namespace siphoc::sim
