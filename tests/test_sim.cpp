// Unit tests: discrete-event simulation kernel.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace siphoc::sim {
namespace {

TEST(SimulatorTest, TimeAdvancesToEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule(milliseconds(5), [&] { order.push_back(2); });
  sim.schedule(milliseconds(20), [&] { order.push_back(3); });
  sim.run_until(TimePoint{} + milliseconds(15));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(sim.now(), TimePoint{} + milliseconds(15));
  sim.run_for(milliseconds(10));
  ASSERT_EQ(order.size(), 3u);
}

TEST(SimulatorTest, SameTimestampFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(milliseconds(1), [&order, i] { order.push_back(i); });
  }
  sim.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto handle = sim.schedule(milliseconds(1), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run_to_completion();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, CancelAfterFireIsSafe) {
  Simulator sim;
  auto handle = sim.schedule(milliseconds(1), [] {});
  sim.run_to_completion();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op, no crash
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(milliseconds(1), recurse);
  };
  sim.schedule(milliseconds(1), recurse);
  sim.run_to_completion();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), TimePoint{} + milliseconds(5));
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(SimulatorTest, RunUntilAdvancesEvenWhenEmpty) {
  Simulator sim;
  sim.run_until(TimePoint{} + seconds(100));
  EXPECT_EQ(sim.now(), TimePoint{} + seconds(100));
}

TEST(PeriodicTimerTest, FiresRepeatedlyUntilStopped) {
  Simulator sim;
  PeriodicTimer timer;
  int count = 0;
  timer.start(sim, milliseconds(100), [&] { ++count; });
  sim.run_for(milliseconds(550));
  EXPECT_EQ(count, 5);
  timer.stop();
  sim.run_for(seconds(1));
  EXPECT_EQ(count, 5);
}

TEST(PeriodicTimerTest, StopFromWithinCallback) {
  Simulator sim;
  PeriodicTimer timer;
  int count = 0;
  timer.start(sim, milliseconds(10), [&] {
    if (++count == 3) timer.stop();
  });
  sim.run_for(seconds(1));
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTimerTest, JitterStaysNearPeriod) {
  Simulator sim(123);
  PeriodicTimer timer;
  std::vector<TimePoint> fires;
  timer.start(sim, milliseconds(100), [&] { fires.push_back(sim.now()); },
              milliseconds(20));
  sim.run_for(seconds(2));
  timer.stop();
  ASSERT_GE(fires.size(), 10u);
  for (std::size_t i = 1; i < fires.size(); ++i) {
    const auto gap = fires[i] - fires[i - 1];
    EXPECT_GE(gap, milliseconds(60));
    EXPECT_LE(gap, milliseconds(140));
  }
}

TEST(PeriodicTimerTest, RestartReplacesSchedule) {
  Simulator sim;
  PeriodicTimer timer;
  int a = 0, b = 0;
  timer.start(sim, milliseconds(10), [&] { ++a; });
  sim.run_for(milliseconds(25));
  timer.start(sim, milliseconds(10), [&] { ++b; });
  sim.run_for(milliseconds(25));
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 2);
}

}  // namespace
}  // namespace siphoc::sim
