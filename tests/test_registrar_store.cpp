// Tests: registrar binding-store backends (single-map baseline vs the
// consistent-hash sharded store) and the registrar rework riding on them --
// RFC 3261 §10.2.2 wildcard deregistration, the require_outbound_proxy 403
// path, digest-nonce expiry (401 + stale=true) and the bounded nonce table.
#include <gtest/gtest.h>

#include <set>

#include "sip/auth.hpp"
#include "sip/p2p_resolver.hpp"
#include "sip/registrar.hpp"
#include "sip/registrar_store.hpp"
#include "sip/user_agent.hpp"

namespace siphoc::sip {
namespace {

Uri contact_uri(std::uint32_t octet, const std::string& user) {
  return Uri::from_endpoint({net::Address(192, 0, 2, octet), 5060}, user);
}

TimePoint at(int s) { return TimePoint{} + seconds(s); }

// ---------------------------------------------------------------------------
// Store backends
// ---------------------------------------------------------------------------

template <typename Store>
class BindingStoreTest : public ::testing::Test {
 protected:
  Store store_;
};

using StoreBackends = ::testing::Types<SingleMapStore, ShardedBindingStore>;
TYPED_TEST_SUITE(BindingStoreTest, StoreBackends);

TYPED_TEST(BindingStoreTest, UpsertLookupEraseRoundTrip) {
  auto& store = this->store_;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.lookup("alice@voicehoc.ch", at(0)));

  store.upsert("alice@voicehoc.ch", contact_uri(1, "alice"), at(60));
  EXPECT_EQ(store.size(), 1u);
  const auto found = store.lookup("alice@voicehoc.ch", at(1));
  ASSERT_TRUE(found);
  EXPECT_EQ(found->contact.host, "192.0.2.1");
  EXPECT_EQ(found->expires, at(60));

  // Refresh replaces the contact wholesale.
  store.upsert("alice@voicehoc.ch", contact_uri(2, "alice"), at(120));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.lookup("alice@voicehoc.ch", at(1))->contact.host,
            "192.0.2.2");

  EXPECT_TRUE(store.erase("alice@voicehoc.ch"));
  EXPECT_FALSE(store.erase("alice@voicehoc.ch"));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.lookup("alice@voicehoc.ch", at(1)));
}

TYPED_TEST(BindingStoreTest, ExpiredBindingsInvisibleAndPurgeable) {
  auto& store = this->store_;
  store.upsert("a@x", contact_uri(1, "a"), at(10));
  store.upsert("b@x", contact_uri(2, "b"), at(20));
  store.upsert("c@x", contact_uri(3, "c"), at(30));

  // Expiry boundary is inclusive: a binding expiring *at* now is dead.
  EXPECT_FALSE(store.lookup("a@x", at(10)));
  EXPECT_TRUE(store.lookup("b@x", at(10)));

  EXPECT_EQ(store.purge_expired(at(20)), 2u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.lookup("c@x", at(25)));
  EXPECT_EQ(store.purge_expired(at(20)), 0u);  // idempotent
}

TYPED_TEST(BindingStoreTest, RefreshOutlivesOriginalExpiry) {
  auto& store = this->store_;
  store.upsert("a@x", contact_uri(1, "a"), at(10));
  store.upsert("a@x", contact_uri(1, "a"), at(100));  // refreshed
  // Purging past the *original* expiry must not kill the refreshed
  // binding (the sharded store's wheel item for t=10 is lazily
  // invalidated, not trusted).
  EXPECT_EQ(store.purge_expired(at(50)), 0u);
  EXPECT_TRUE(store.lookup("a@x", at(50)));
}

TEST(ShardedStoreTest, SurvivesGrowthWellPastInitialCapacity) {
  ShardedBindingStore::Config config;
  config.shards = 4;
  config.initial_capacity = 8;  // force repeated table growth
  ShardedBindingStore store(config);

  constexpr int kUsers = 5000;
  for (int i = 0; i < kUsers; ++i) {
    store.upsert("user" + std::to_string(i) + "@x",
                 contact_uri(1 + (i % 200), "u"), at(1000 + i));
  }
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kUsers));
  for (int i = 0; i < kUsers; ++i) {
    const auto found = store.lookup("user" + std::to_string(i) + "@x", at(1));
    ASSERT_TRUE(found) << "user" << i;
    EXPECT_EQ(found->expires, at(1000 + i));
  }
  // Tombstone churn: delete every other key, re-insert, everything still
  // resolvable afterwards.
  for (int i = 0; i < kUsers; i += 2) {
    EXPECT_TRUE(store.erase("user" + std::to_string(i) + "@x"));
  }
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kUsers / 2));
  for (int i = 0; i < kUsers; i += 2) {
    store.upsert("user" + std::to_string(i) + "@x", contact_uri(7, "u"),
                 at(9000));
  }
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kUsers));
  EXPECT_EQ(store.lookup("user0@x", at(1))->contact.host, "192.0.2.7");
}

TEST(ShardedStoreTest, ConsistentHashSpreadsAcrossAllShards) {
  ShardedBindingStore::Config config;
  config.shards = 8;
  ShardedBindingStore store(config);
  EXPECT_EQ(store.shard_count(), 8u);

  for (int i = 0; i < 8000; ++i) {
    store.upsert("user" + std::to_string(i) + "@voicehoc.ch",
                 contact_uri(1, "u"), at(100));
  }
  std::size_t total = 0, smallest = 8000, largest = 0;
  for (std::size_t s = 0; s < store.shard_count(); ++s) {
    const std::size_t n = store.shard_size(s);
    total += n;
    smallest = std::min(smallest, n);
    largest = std::max(largest, n);
  }
  EXPECT_EQ(total, 8000u);
  EXPECT_GT(smallest, 0u);        // every shard participates
  EXPECT_LT(largest, 8000u / 2);  // no shard hoards the keyspace
  // shard_of agrees with where the data landed.
  const std::size_t s0 = store.shard_of("user0@voicehoc.ch");
  EXPECT_LT(s0, store.shard_count());
}

TEST(ShardedStoreTest, WheelHandlesHorizonWraparound) {
  ShardedBindingStore::Config config;
  config.shards = 1;
  config.wheel_slots = 4;  // tiny horizon: 4 x 1s
  ShardedBindingStore store(config);
  // Expiry 10 granules out wraps the 4-slot wheel more than twice; the
  // purge pass must re-examine (not drop) it each lap until it is due.
  store.upsert("far@x", contact_uri(1, "far"), at(10));
  EXPECT_EQ(store.purge_expired(at(5)), 0u);
  EXPECT_TRUE(store.lookup("far@x", at(5)));
  EXPECT_EQ(store.purge_expired(at(10)), 1u);
  EXPECT_FALSE(store.lookup("far@x", at(10)));
}

TEST(ShardedStoreTest, HashSharedWithP2pRing) {
  // The store's placement hash and the Chord-lite ring key must be the
  // same function, or a gateway and a provider would disagree on AOR
  // placement.
  EXPECT_EQ(hash_aor("alice@voicehoc.ch"),
            P2pResolver::key_of("alice@voicehoc.ch"));
  EXPECT_NE(hash_aor("alice@voicehoc.ch"), hash_aor("bob@voicehoc.ch"));
}

// ---------------------------------------------------------------------------
// Registrar rework: wildcard deregistration, 403 path, nonce hygiene
// ---------------------------------------------------------------------------

/// Drives a Registrar with hand-crafted SIP messages over a real transport
/// (no user agent in the way), capturing every response.
class RegistrarFixture : public ::testing::Test {
 protected:
  RegistrarFixture()
      : sim_(23),
        internet_(sim_, milliseconds(10)),
        provider_host_(sim_, 100, "provider"),
        client_host_(sim_, 0, "client") {
    provider_host_.attach_wired(internet_, net::Address(192, 0, 2, 10));
    client_host_.attach_wired(internet_, net::Address(192, 0, 2, 1));
    internet_.register_domain("voicehoc.ch", net::Address(192, 0, 2, 10));
  }

  void start_registrar(RegistrarConfig config) {
    config.domain = "voicehoc.ch";
    registrar_.reset();  // release port 5060 before rebinding
    transport_.reset();
    registrar_ = std::make_unique<Registrar>(provider_host_, config);
    transport_ = std::make_unique<Transport>(client_host_, 5060);
    transport_->set_handler([this](Message m, net::Endpoint) {
      responses_.push_back(std::move(m));
    });
  }

  /// Sends a request with our Via on top so the response finds its way
  /// back, then runs the simulation until it does (or 2s pass).
  void send_and_wait(Message request) {
    Via via;
    via.host = client_host_.wired_address().to_string();
    via.port = 5060;
    via.params["branch"] = std::string(kBranchCookie) + "t" +
                           std::to_string(++branch_);
    request.push_via(via);
    const std::size_t had = responses_.size();
    transport_->send(request, {net::Address(192, 0, 2, 10), 5060});
    const TimePoint deadline = sim_.now() + seconds(2);
    while (responses_.size() == had && sim_.now() < deadline) {
      sim_.run_for(milliseconds(10));
    }
  }

  Message make_register(const std::string& user, int expires,
                        const std::string& contact = "") {
    Uri domain;
    domain.host = "voicehoc.ch";
    Message m = Message::request(std::string(kRegister), domain);
    NameAddr aor;
    aor.uri = *Uri::parse("sip:" + user + "@voicehoc.ch");
    m.add_header("from", aor.to_string());
    m.add_header("to", aor.to_string());
    m.add_header("call-id", user + "-reg");
    m.add_header("cseq", std::to_string(++cseq_) + " REGISTER");
    if (contact.empty()) {
      NameAddr c;
      c.uri = contact_uri(1, user);
      m.add_header("contact", c.to_string());
    } else {
      m.add_header("contact", contact);
    }
    m.add_header("expires", std::to_string(expires));
    return m;
  }

  Message make_invite(const std::string& user) {
    Uri target = *Uri::parse("sip:" + user + "@voicehoc.ch");
    Message m = Message::request(std::string(kInvite), target);
    NameAddr from;
    from.uri = *Uri::parse("sip:caller@voicehoc.ch");
    from.set_tag("t1");
    m.add_header("from", from.to_string());
    NameAddr to;
    to.uri = target;
    m.add_header("to", to.to_string());
    m.add_header("call-id", user + "-inv" + std::to_string(cseq_));
    m.add_header("cseq", std::to_string(++cseq_) + " INVITE");
    m.add_header("max-forwards", "70");
    return m;
  }

  int last_status() const {
    return responses_.empty() ? 0 : responses_.back().status();
  }

  sim::Simulator sim_;
  net::Internet internet_;
  net::Host provider_host_, client_host_;
  std::unique_ptr<Registrar> registrar_;
  std::unique_ptr<Transport> transport_;
  std::vector<Message> responses_;
  std::uint64_t branch_ = 0;
  std::uint64_t cseq_ = 0;
};

TEST_F(RegistrarFixture, WildcardContactDeregistersEverything) {
  start_registrar({});
  send_and_wait(make_register("alice", 3600));
  ASSERT_EQ(last_status(), 200);
  ASSERT_TRUE(registrar_->binding("alice@voicehoc.ch"));

  // RFC 3261 §10.2.2: "Contact: *" + "Expires: 0" wipes the bindings.
  send_and_wait(make_register("alice", 0, "*"));
  EXPECT_EQ(last_status(), 200);
  EXPECT_FALSE(registrar_->binding("alice@voicehoc.ch"));

  // A subsequent INVITE for the deregistered user must 404.
  send_and_wait(make_invite("alice"));
  EXPECT_EQ(last_status(), 404);
}

TEST_F(RegistrarFixture, WildcardWithNonzeroExpiresRejected) {
  start_registrar({});
  // "Contact: *" is only valid together with "Expires: 0".
  send_and_wait(make_register("alice", 60, "*"));
  EXPECT_EQ(last_status(), 400);
}

TEST_F(RegistrarFixture, RequireOutboundProxyRejectsDirectRequests) {
  RegistrarConfig config;
  config.require_outbound_proxy = true;
  config.trusted_proxy = net::Address(192, 0, 2, 99);  // not the client
  start_registrar(config);

  const auto rejected_before = registrar_->registers_rejected();
  send_and_wait(make_register("alice", 3600));
  EXPECT_EQ(last_status(), 403);
  EXPECT_FALSE(registrar_->binding("alice@voicehoc.ch"));
  EXPECT_EQ(registrar_->registers_rejected(), rejected_before + 1);

  // Non-REGISTER requests arriving directly are rejected the same way.
  send_and_wait(make_invite("alice"));
  EXPECT_EQ(last_status(), 403);
}

TEST_F(RegistrarFixture, ExpiredNonceGetsStaleRechallenge) {
  RegistrarConfig config;
  config.require_auth = true;
  config.credentials["alice"] = "secret";
  config.nonce_lifetime = seconds(2);
  start_registrar(config);

  // First REGISTER: plain 401 challenge (no stale flag).
  send_and_wait(make_register("alice", 3600));
  ASSERT_EQ(last_status(), 401);
  const auto challenge_hdr = responses_.back().header("www-authenticate");
  ASSERT_TRUE(challenge_hdr);
  const auto challenge = DigestChallenge::parse(*challenge_hdr);
  ASSERT_TRUE(challenge);
  EXPECT_FALSE(challenge->stale);

  // Let the nonce expire (and the maintenance timer purge it).
  sim_.run_for(seconds(5));

  // Correct credentials against the dead nonce: 401 again, but with
  // stale=true so the client retries without re-prompting (RFC 2617
  // §3.2.1).
  Message stale_attempt = make_register("alice", 3600);
  stale_attempt.add_header(
      "authorization",
      answer_challenge(*challenge, "alice", "secret", stale_attempt)
          .to_string());
  send_and_wait(std::move(stale_attempt));
  ASSERT_EQ(last_status(), 401);
  const auto rechallenge =
      DigestChallenge::parse(*responses_.back().header("www-authenticate"));
  ASSERT_TRUE(rechallenge);
  EXPECT_TRUE(rechallenge->stale);
  EXPECT_NE(rechallenge->nonce, challenge->nonce);

  // Answering the fresh nonce succeeds.
  Message good = make_register("alice", 3600);
  good.add_header(
      "authorization",
      answer_challenge(*rechallenge, "alice", "secret", good).to_string());
  send_and_wait(std::move(good));
  EXPECT_EQ(last_status(), 200);
  EXPECT_TRUE(registrar_->binding("alice@voicehoc.ch"));
}

TEST_F(RegistrarFixture, NonceTableStaysBoundedUnderChurn) {
  RegistrarConfig config;
  config.require_auth = true;
  config.credentials["alice"] = "secret";
  config.nonce_lifetime = minutes(30);  // nothing expires during the soak
  config.nonce_cap = 64;
  start_registrar(config);

  // Soak: hundreds of unauthenticated REGISTERs, each minting a nonce.
  // The seed's registrar kept every one forever; the cap must hold.
  for (int i = 0; i < 400; ++i) {
    send_and_wait(make_register("alice", 3600));
    EXPECT_EQ(last_status(), 401);
  }
  sim_.run_for(seconds(2));  // at least one maintenance tick
  EXPECT_LE(registrar_->nonce_count(), config.nonce_cap);

  // And expiry-based purge: with a short lifetime everything drains.
  RegistrarConfig short_lived;
  short_lived.require_auth = true;
  short_lived.credentials["alice"] = "secret";
  short_lived.nonce_lifetime = seconds(1);
  start_registrar(short_lived);
  for (int i = 0; i < 10; ++i) send_and_wait(make_register("alice", 3600));
  EXPECT_GT(registrar_->nonce_count(), 0u);
  sim_.run_for(seconds(3));
  EXPECT_EQ(registrar_->nonce_count(), 0u);
}

TEST_F(RegistrarFixture, ShardedBackendServesRegistersAndInvites) {
  RegistrarConfig config;
  config.store_shards = 4;
  start_registrar(config);
  EXPECT_EQ(registrar_->store().name(), "sharded");

  send_and_wait(make_register("alice", 3600));
  ASSERT_EQ(last_status(), 200);
  const auto binding = registrar_->binding("alice@voicehoc.ch");
  ASSERT_TRUE(binding);
  EXPECT_EQ(binding->contact.host, "192.0.2.1");

  // Expires: 0 with the concrete contact also unbinds (non-wildcard path).
  send_and_wait(make_register("alice", 0));
  EXPECT_EQ(last_status(), 200);
  EXPECT_FALSE(registrar_->binding("alice@voicehoc.ch"));
  send_and_wait(make_invite("alice"));
  EXPECT_EQ(last_status(), 404);
}

TEST_F(RegistrarFixture, ShardedExpiryIsWheelDrivenNotLookupDriven) {
  RegistrarConfig config;
  config.store_shards = 2;
  start_registrar(config);

  send_and_wait(make_register("alice", 2));
  ASSERT_EQ(last_status(), 200);
  EXPECT_EQ(registrar_->binding_count(), 1u);
  // After expiry + a maintenance tick, the wheel purged the binding: the
  // count drops without any lookup having touched it.
  sim_.run_for(seconds(4));
  EXPECT_EQ(registrar_->binding_count(), 0u);
  EXPECT_FALSE(registrar_->binding("alice@voicehoc.ch"));
}

}  // namespace
}  // namespace siphoc::sip
