// Unit tests: per-simulation contexts (common/context.hpp).
//
// The regression surface here is exactly what the singleton era could not
// express: two simulations in one process, each with its own registry, log
// sink and time source, with no cross-talk in either construction order.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "common/context.hpp"
#include "common/metrics.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

namespace siphoc {
namespace {

TEST(SimContextTest, DeriveSeedIsDeterministicDistinctAndNonZero) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t root : {std::uint64_t{0}, std::uint64_t{42},
                             std::uint64_t{0xdeadbeefULL}}) {
    for (std::uint64_t k = 0; k < 64; ++k) {
      const auto s = SimContext::derive_seed(root, k);
      EXPECT_NE(s, 0u);
      EXPECT_EQ(s, SimContext::derive_seed(root, k));
      EXPECT_TRUE(seen.insert(s).second)
          << "collision at root=" << root << " k=" << k;
    }
  }
}

TEST(SimContextTest, CurrentFallsBackToGlobalAndBindNests) {
  EXPECT_EQ(&SimContext::current(), &SimContext::global());
  SimContext a, b;
  {
    SimContext::Bind bind_a(a);
    EXPECT_EQ(&SimContext::current(), &a);
    {
      SimContext::Bind bind_b(b);
      EXPECT_EQ(&SimContext::current(), &b);
    }
    EXPECT_EQ(&SimContext::current(), &a);
  }
  EXPECT_EQ(&SimContext::current(), &SimContext::global());
}

TEST(SimContextTest, TwoSimulatorsCoexistOnOneThread) {
  SimContext ctx_a, ctx_b;
  sim::Simulator sim_a(7, &ctx_a);
  sim::Simulator sim_b(9, &ctx_b);

  // Interleave: run A a bit, then B, then A again. Each simulation's
  // events must land in its own registry only.
  sim_a.schedule(milliseconds(1), [&] {
    SimContext::current().metrics().counter("test.ticks_total", "a").add();
  });
  sim_b.schedule(milliseconds(1), [&] {
    SimContext::current().metrics().counter("test.ticks_total", "b").add(2);
  });
  sim_a.schedule(milliseconds(5), [&] {
    SimContext::current().metrics().counter("test.ticks_total", "a").add();
  });

  const auto global_before =
      MetricsRegistry::instance().counter_total("test.ticks_total");
  sim_a.run_for(milliseconds(2));
  sim_b.run_for(milliseconds(2));
  sim_a.run_for(milliseconds(10));

  EXPECT_EQ(ctx_a.metrics().counter_total("test.ticks_total"), 2u);
  EXPECT_EQ(ctx_b.metrics().counter_total("test.ticks_total"), 2u);
  EXPECT_EQ(MetricsRegistry::instance().counter_total("test.ticks_total"),
            global_before);
}

TEST(SimContextTest, TimeSourceSurvivesEarlierOwnerDestruction) {
  // Regression: before owner-tagged adoption, destroying the *first*
  // simulator cleared the shared time source out from under the second one,
  // freezing every later timestamp at epoch.
  SimContext ctx;
  auto first = std::make_unique<sim::Simulator>(1, &ctx);
  sim::Simulator second(2, &ctx);
  second.schedule(milliseconds(30), [] {});
  second.run_to_completion();
  first.reset();  // must not clobber `second`'s adoption

  EXPECT_EQ(ctx.metrics().now(), second.now());
  EXPECT_EQ(ctx.metrics().now(), TimePoint{} + milliseconds(30));

  // And a clean release: once the active owner dies, the hook resets
  // instead of dangling into a destroyed simulator.
  {
    sim::Simulator third(3, &ctx);
    third.schedule(milliseconds(5), [] {});
    third.run_to_completion();
    EXPECT_EQ(ctx.metrics().now(), TimePoint{} + milliseconds(5));
  }
  EXPECT_EQ(ctx.metrics().now(), TimePoint{});
}

// Builds a small chain testbed in `ctx`, runs a fixed workload, and returns
// the registry's CSV export (deterministic, unlike JSON's emitted_at_us
// header which samples the time source at export time).
std::string run_cell_csv(SimContext& ctx, std::uint64_t seed,
                         std::size_t nodes) {
  scenario::Options o;
  o.context = &ctx;
  o.seed = seed;
  o.nodes = nodes;
  scenario::Testbed bed(o);
  bed.start();
  bed.settle(seconds(3));
  return ctx.metrics().to_csv();
}

TEST(SimContextTest, CellResultsIndependentOfExecutionOrder) {
  // Two different cells, run A-then-B and B-then-A: each cell's sidecar
  // must be byte-identical across orders (no leakage through globals).
  std::string a1, b1, a2, b2;
  {
    SimContext ca, cb;
    a1 = run_cell_csv(ca, 11, 3);
    b1 = run_cell_csv(cb, 12, 4);
  }
  {
    SimContext ca, cb;
    b2 = run_cell_csv(cb, 12, 4);
    a2 = run_cell_csv(ca, 11, 3);
  }
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(b1, b2);
  EXPECT_NE(a1, b1);  // different (seed, size) cells measure differently
}

}  // namespace
}  // namespace siphoc
