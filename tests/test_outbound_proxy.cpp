// Tests: the provider outbound-proxy element (stateless relay) in
// isolation -- request relaying, Via handling, loop guard, stray drops.
#include <gtest/gtest.h>

#include "sip/outbound_proxy.hpp"

namespace siphoc::sip {
namespace {

class ObProxyFixture : public ::testing::Test {
 protected:
  ObProxyFixture()
      : sim_(29),
        internet_(sim_, milliseconds(5)),
        client_host_(sim_, 0, "client"),
        proxy_host_(sim_, 1, "obproxy"),
        server_host_(sim_, 2, "registrar") {
    client_host_.attach_wired(internet_, net::Address(192, 0, 2, 1));
    proxy_host_.attach_wired(internet_, net::Address(192, 0, 2, 2));
    server_host_.attach_wired(internet_, net::Address(192, 0, 2, 3));
    OutboundProxyConfig config;
    config.next_hop = {net::Address(192, 0, 2, 3), 5060};
    proxy_ = std::make_unique<OutboundProxy>(proxy_host_, config);

    client_host_.bind(5060, [this](const net::Datagram& d,
                                   const net::RxInfo&) {
      if (auto m = Message::parse(to_string(d.payload))) {
        client_rx_.push_back(std::move(*m));
      }
    });
    server_host_.bind(5060, [this](const net::Datagram& d,
                                   const net::RxInfo&) {
      if (auto m = Message::parse(to_string(d.payload))) {
        server_rx_.push_back(std::move(*m));
      }
    });
  }

  Message make_request() {
    Message m = Message::request("REGISTER", *Uri::parse("sip:auth.org"));
    m.add_header("via", "SIP/2.0/UDP 192.0.2.1:5060;branch=z9hG4bKcli");
    m.add_header("from", "<sip:carol@auth.org>;tag=1");
    m.add_header("to", "<sip:carol@auth.org>");
    m.add_header("call-id", "x@client");
    m.add_header("cseq", "1 REGISTER");
    return m;
  }

  void send_to_proxy(const Message& m) {
    client_host_.send_udp(5060, {net::Address(192, 0, 2, 2), 5060},
                          to_bytes(m.serialize()));
  }

  sim::Simulator sim_;
  net::Internet internet_;
  net::Host client_host_, proxy_host_, server_host_;
  std::unique_ptr<OutboundProxy> proxy_;
  std::vector<Message> client_rx_, server_rx_;
};

TEST_F(ObProxyFixture, RelaysRequestWithViaAndDecrementsMaxForwards) {
  send_to_proxy(make_request());
  sim_.run_for(milliseconds(100));
  ASSERT_EQ(server_rx_.size(), 1u);
  const auto& relayed = server_rx_.front();
  EXPECT_EQ(relayed.method(), "REGISTER");
  EXPECT_EQ(relayed.vias().size(), 2u);
  EXPECT_EQ(relayed.top_via()->host, "192.0.2.2");
  EXPECT_EQ(relayed.max_forwards(), 69);
  EXPECT_EQ(proxy_->stats().requests_relayed, 1u);
}

TEST_F(ObProxyFixture, ResponseRetracesToClient) {
  send_to_proxy(make_request());
  sim_.run_for(milliseconds(100));
  ASSERT_EQ(server_rx_.size(), 1u);
  // The registrar answers 200 via the proxy's Via.
  Message ok = Message::response_to(server_rx_.front(), 200);
  server_host_.send_udp(5060, {net::Address(192, 0, 2, 2), 5060},
                        to_bytes(ok.serialize()));
  sim_.run_for(milliseconds(100));
  ASSERT_EQ(client_rx_.size(), 1u);
  EXPECT_EQ(client_rx_.front().status(), 200);
  // The proxy's Via was popped; only the client's remains.
  EXPECT_EQ(client_rx_.front().vias().size(), 1u);
  EXPECT_EQ(proxy_->stats().responses_relayed, 1u);
}

TEST_F(ObProxyFixture, MaxForwardsZeroRejected483) {
  Message m = make_request();
  m.set_max_forwards(0);
  send_to_proxy(m);
  sim_.run_for(milliseconds(100));
  EXPECT_TRUE(server_rx_.empty());
  ASSERT_EQ(client_rx_.size(), 1u);
  EXPECT_EQ(client_rx_.front().status(), 483);
  EXPECT_EQ(proxy_->stats().dropped, 1u);
}

TEST_F(ObProxyFixture, ResponseWithForeignTopViaDropped) {
  Message stray = Message::parse(
      "SIP/2.0 200 OK\r\n"
      "Via: SIP/2.0/UDP 192.0.2.99:5060;branch=z9hG4bKforeign\r\n"
      "CSeq: 1 REGISTER\r\n"
      "\r\n").value();
  server_host_.send_udp(5060, {net::Address(192, 0, 2, 2), 5060},
                        to_bytes(stray.serialize()));
  sim_.run_for(milliseconds(100));
  EXPECT_TRUE(client_rx_.empty());
  EXPECT_EQ(proxy_->stats().dropped, 1u);
}

TEST_F(ObProxyFixture, ResponseWithOnlyOurViaDropped) {
  // After popping our Via there is nowhere to send the response.
  Message orphan = Message::parse(
      "SIP/2.0 200 OK\r\n"
      "Via: SIP/2.0/UDP 192.0.2.2:5060;branch=z9hG4bKob1\r\n"
      "CSeq: 1 REGISTER\r\n"
      "\r\n").value();
  server_host_.send_udp(5060, {net::Address(192, 0, 2, 2), 5060},
                        to_bytes(orphan.serialize()));
  sim_.run_for(milliseconds(100));
  EXPECT_TRUE(client_rx_.empty());
  EXPECT_EQ(proxy_->stats().dropped, 1u);
}

}  // namespace
}  // namespace siphoc::sip
